// Recursive-descent parser for LDL1 / LDL1.5 programs.
//
// Grammar (informal):
//
//   program    := (clause | query)*
//   clause     := literal [ (":-" | "<-" | "<--") body ] "."
//   query      := ("?" | "?-") literal "."
//   body       := literal ("," literal)*
//   literal    := ("!" | "~" | "not") predlit
//               | prefix-builtin "(" args ")"        e.g.  +(C1, C2, C)
//               | expr cmpop expr                    e.g.  Px + Py < 100
//               | predlit
//   predlit    := name [ "(" args ")" ]
//   term       := int | -int | atom | Var | "_" | "string"
//               | functor "(" args ")"
//               | "{" [args] "}"                     set enumeration
//               | "<" term ">"                       grouping / set pattern
//               | "[" [args] ["|" term] "]"          list sugar
//               | "(" args ")"                       tuple head term (>=2 args)
//   expr       := mul (("+" | "-") mul)*             lowered to $add/$sub
//   mul        := prim (("*" | "/") prim)*           lowered to $mul/$div
//   prim       := term | "(" expr ")"
//
// Anonymous variables are renamed apart at parse time.
#ifndef LDL1_PARSER_PARSER_H_
#define LDL1_PARSER_PARSER_H_

#include <string_view>

#include "ast/ast.h"
#include "base/interner.h"
#include "base/status.h"

namespace ldl {

// Reserved functors produced by lowering infix arithmetic.
inline constexpr const char kAddFunctor[] = "$add";
inline constexpr const char kSubFunctor[] = "$sub";
inline constexpr const char kMulFunctor[] = "$mul";
inline constexpr const char kDivFunctor[] = "$div";

// Parses a whole program (rules, facts, queries).
StatusOr<ProgramAst> ParseProgram(std::string_view source, Interner* interner);

// Parses a single term (testing / API convenience).
StatusOr<TermExpr> ParseTermText(std::string_view source, Interner* interner);

// Parses a single literal, e.g. "young(john, S)" (API convenience for
// posing queries).
StatusOr<LiteralAst> ParseLiteralText(std::string_view source, Interner* interner);

}  // namespace ldl

#endif  // LDL1_PARSER_PARSER_H_
