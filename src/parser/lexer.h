// Tokenizer for the LDL1 surface syntax.
//
// Comments run from '%' or '#' to end of line. Identifiers beginning with a
// lower-case letter are names (atoms / functors / predicate symbols);
// identifiers beginning with an upper-case letter or '_' are variables.
// '_' alone is the anonymous variable. The token kLAngle/kRAngle is
// context-dependent: the parser resolves it to either a grouping bracket
// (<X>) or a comparison (X < Y).
#ifndef LDL1_PARSER_LEXER_H_
#define LDL1_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace ldl {

enum class TokenKind : uint8_t {
  kEof = 0,
  kInt,        // 42
  kName,       // lower-case identifier
  kVarName,    // upper-case or '_'-prefixed identifier
  kAnonVar,    // bare '_'
  kString,     // "text"
  kLParen, kRParen,      // ( )
  kLBrace, kRBrace,      // { }
  kLBracket, kRBracket,  // [ ]
  kLAngle, kRAngle,      // < >  (grouping or comparison; parser decides)
  kComma,      // ,
  kDot,        // .
  kPipe,       // |
  kIf,         // ":-" or "<-" or "<--"
  kQuery,      // "?" or "?-"
  kBang,       // "!" or "~" (negation)
  kEq,         // =
  kNeq,        // /= or !=
  kLe,         // <=
  kGe,         // >=
  kPlus,       // +
  kMinus,      // -
  kStar,       // *
  kSlash,      // /
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;       // identifier / string payload
  int64_t int_value = 0;  // kInt payload
  int line = 0;           // 1-based
  int column = 0;         // 1-based
};

// Tokenizes `source`; returns a vector terminated by a kEof token, or a
// ParseError naming the offending line/column.
StatusOr<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace ldl

#endif  // LDL1_PARSER_LEXER_H_
