#include "parser/parser.h"

#include <utility>

#include "base/str_util.h"
#include "parser/lexer.h"

namespace ldl {

namespace {

bool IsComparisonToken(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEq:
    case TokenKind::kNeq:
    case TokenKind::kLAngle:
    case TokenKind::kLe:
    case TokenKind::kRAngle:
    case TokenKind::kGe:
      return true;
    default:
      return false;
  }
}

BuiltinKind ComparisonBuiltin(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEq: return BuiltinKind::kEq;
    case TokenKind::kNeq: return BuiltinKind::kNeq;
    case TokenKind::kLAngle: return BuiltinKind::kLt;
    case TokenKind::kLe: return BuiltinKind::kLe;
    case TokenKind::kRAngle: return BuiltinKind::kGt;
    case TokenKind::kGe: return BuiltinKind::kGe;
    default: return BuiltinKind::kNone;
  }
}

// Maps operator tokens that may open a prefix built-in predicate, e.g.
// "+(C1, C2, C)".
const char* PrefixBuiltinName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kEq: return "=";
    case TokenKind::kNeq: return "/=";
    default: return nullptr;
  }
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, Interner* interner)
      : tokens_(std::move(tokens)), interner_(interner) {}

  StatusOr<ProgramAst> ParseProgramToplevel() {
    ProgramAst program;
    while (!Check(TokenKind::kEof)) {
      if (Check(TokenKind::kQuery)) {
        Advance();
        LDL_ASSIGN_OR_RETURN(LiteralAst goal, ParseLiteral());
        LDL_RETURN_IF_ERROR(Expect(TokenKind::kDot, "after query"));
        program.queries.push_back(QueryAst{std::move(goal)});
        continue;
      }
      LDL_ASSIGN_OR_RETURN(RuleAst rule, ParseClause());
      program.rules.push_back(std::move(rule));
    }
    return program;
  }

  StatusOr<TermExpr> ParseSingleTerm() {
    LDL_ASSIGN_OR_RETURN(TermExpr term, ParseTerm());
    LDL_RETURN_IF_ERROR(Expect(TokenKind::kEof, "after term"));
    return term;
  }

  StatusOr<LiteralAst> ParseSingleLiteral() {
    LDL_ASSIGN_OR_RETURN(LiteralAst literal, ParseLiteral());
    if (Check(TokenKind::kDot)) Advance();
    LDL_RETURN_IF_ERROR(Expect(TokenKind::kEof, "after literal"));
    return literal;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }

  Status ErrorHere(std::string message) const {
    const Token& token = Peek();
    return ParseError(StrCat(message, ", got ", TokenKindName(token.kind),
                             token.text.empty() ? "" : StrCat(" '", token.text, "'"),
                             " at line ", token.line, ", column ", token.column));
  }

  Status Expect(TokenKind kind, std::string_view context) {
    if (Match(kind)) return Status::OK();
    return ErrorHere(StrCat("expected ", TokenKindName(kind), " ", context));
  }

  StatusOr<RuleAst> ParseClause() {
    RuleAst rule;
    LDL_ASSIGN_OR_RETURN(rule.head, ParseLiteral());
    if (rule.head.negated) {
      return ParseError("rule head may not be negated");
    }
    if (Match(TokenKind::kIf)) {
      do {
        LDL_ASSIGN_OR_RETURN(LiteralAst literal, ParseLiteral());
        rule.body.push_back(std::move(literal));
      } while (Match(TokenKind::kComma));
    }
    if (rule.head.builtin != BuiltinKind::kNone) {
      return ParseError(StrCat("rule head may not be the built-in predicate '",
                               BuiltinName(rule.head.builtin), "'"));
    }
    LDL_RETURN_IF_ERROR(Expect(TokenKind::kDot, "at end of clause"));
    return rule;
  }

  StatusOr<LiteralAst> ParseLiteral() {
    bool negated = false;
    if (Match(TokenKind::kBang)) {
      negated = true;
    } else if (Check(TokenKind::kName) && Peek().text == "not" &&
               Peek(1).kind != TokenKind::kLParen) {
      Advance();
      negated = true;
    }

    // Prefix built-in predicate: +(A, B, C), =(X, Y), ...
    if (const char* name = PrefixBuiltinName(Peek().kind);
        name != nullptr && Peek(1).kind == TokenKind::kLParen) {
      Advance();  // operator token
      Advance();  // '('
      LDL_ASSIGN_OR_RETURN(std::vector<TermExpr> args, ParseArgs());
      LDL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after built-in arguments"));
      BuiltinKind builtin = LookupBuiltin(name, args.size());
      if (builtin == BuiltinKind::kNone) {
        return ParseError(StrCat("built-in '", name, "' does not take ",
                                 args.size(), " arguments"));
      }
      LiteralAst literal;
      literal.negated = negated;
      literal.builtin = builtin;
      literal.args = std::move(args);
      return literal;
    }

    LDL_ASSIGN_OR_RETURN(TermExpr lhs, ParseExpr());

    if (IsComparisonToken(Peek().kind)) {
      BuiltinKind builtin = ComparisonBuiltin(Advance().kind);
      LDL_ASSIGN_OR_RETURN(TermExpr rhs, ParseExpr());
      LiteralAst literal;
      literal.negated = negated;
      literal.builtin = builtin;
      literal.args.push_back(std::move(lhs));
      literal.args.push_back(std::move(rhs));
      return literal;
    }

    // Otherwise the expression must be predicate-shaped.
    LiteralAst literal;
    literal.negated = negated;
    if (lhs.kind == TermExprKind::kFunc) {
      std::string_view functor = interner_->Lookup(lhs.symbol);
      if (functor == kTupleFunctor || StartsWith(functor, "$")) {
        return ParseError(StrCat("expected a literal, found term '", functor, "'"));
      }
      literal.predicate = lhs.symbol;
      literal.args = std::move(lhs.args);
    } else if (lhs.kind == TermExprKind::kAtom) {
      literal.predicate = lhs.symbol;  // 0-ary predicate
    } else {
      return ParseError("expected a literal");
    }
    literal.builtin =
        LookupBuiltin(interner_->Lookup(literal.predicate), literal.args.size());
    return literal;
  }

  StatusOr<std::vector<TermExpr>> ParseArgs() {
    std::vector<TermExpr> args;
    do {
      LDL_ASSIGN_OR_RETURN(TermExpr term, ParseTerm());
      args.push_back(std::move(term));
    } while (Match(TokenKind::kComma));
    return args;
  }

  // Infix arithmetic; lowered to $add/$sub/$mul/$div function terms.
  StatusOr<TermExpr> ParseExpr() {
    LDL_ASSIGN_OR_RETURN(TermExpr lhs, ParseMul());
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      const char* functor = Advance().kind == TokenKind::kPlus ? kAddFunctor : kSubFunctor;
      LDL_ASSIGN_OR_RETURN(TermExpr rhs, ParseMul());
      std::vector<TermExpr> args;
      args.push_back(std::move(lhs));
      args.push_back(std::move(rhs));
      lhs = TermExpr::Func(interner_->Intern(functor), std::move(args));
    }
    return lhs;
  }

  StatusOr<TermExpr> ParseMul() {
    LDL_ASSIGN_OR_RETURN(TermExpr lhs, ParsePrim());
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash)) {
      const char* functor = Advance().kind == TokenKind::kStar ? kMulFunctor : kDivFunctor;
      LDL_ASSIGN_OR_RETURN(TermExpr rhs, ParsePrim());
      std::vector<TermExpr> args;
      args.push_back(std::move(lhs));
      args.push_back(std::move(rhs));
      lhs = TermExpr::Func(interner_->Intern(functor), std::move(args));
    }
    return lhs;
  }

  StatusOr<TermExpr> ParsePrim() {
    if (Check(TokenKind::kLParen)) {
      // In expression context a parenthesis groups a sub-expression.
      Advance();
      LDL_ASSIGN_OR_RETURN(TermExpr inner, ParseExpr());
      if (Check(TokenKind::kComma)) {
        // It was actually a tuple term: finish parsing it as one.
        std::vector<TermExpr> elements;
        elements.push_back(std::move(inner));
        while (Match(TokenKind::kComma)) {
          LDL_ASSIGN_OR_RETURN(TermExpr element, ParseTerm());
          elements.push_back(std::move(element));
        }
        LDL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after tuple"));
        return TermExpr::Func(interner_->Intern(kTupleFunctor), std::move(elements));
      }
      LDL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after expression"));
      return inner;
    }
    return ParseTerm();
  }

  StatusOr<TermExpr> ParseTerm() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kInt: {
        Advance();
        return TermExpr::Int(token.int_value);
      }
      case TokenKind::kMinus: {
        Advance();
        if (!Check(TokenKind::kInt)) {
          return ErrorHere("expected an integer after unary '-'");
        }
        const Token& number = Advance();
        return TermExpr::Int(-number.int_value);
      }
      case TokenKind::kString: {
        Advance();
        return TermExpr::String(interner_->Intern(token.text));
      }
      case TokenKind::kVarName: {
        Advance();
        return TermExpr::Var(interner_->Intern(token.text));
      }
      case TokenKind::kAnonVar: {
        Advance();
        return TermExpr::Var(interner_->Fresh("_anon"));
      }
      case TokenKind::kName: {
        Advance();
        Symbol name = interner_->Intern(token.text);
        if (Match(TokenKind::kLParen)) {
          LDL_ASSIGN_OR_RETURN(std::vector<TermExpr> args, ParseArgs());
          LDL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after arguments"));
          return TermExpr::Func(name, std::move(args));
        }
        return TermExpr::Atom(name);
      }
      case TokenKind::kLBrace: {
        Advance();
        std::vector<TermExpr> elements;
        if (!Check(TokenKind::kRBrace)) {
          LDL_ASSIGN_OR_RETURN(elements, ParseArgs());
        }
        LDL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "after set elements"));
        return TermExpr::SetEnum(std::move(elements));
      }
      case TokenKind::kLAngle: {
        Advance();
        LDL_ASSIGN_OR_RETURN(TermExpr inner, ParseTerm());
        LDL_RETURN_IF_ERROR(Expect(TokenKind::kRAngle, "after grouped term"));
        return TermExpr::Group(std::move(inner));
      }
      case TokenKind::kLBracket:
        return ParseList();
      case TokenKind::kLParen: {
        Advance();
        LDL_ASSIGN_OR_RETURN(std::vector<TermExpr> elements, ParseArgs());
        LDL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after tuple"));
        if (elements.size() == 1) return std::move(elements[0]);
        return TermExpr::Func(interner_->Intern(kTupleFunctor), std::move(elements));
      }
      default:
        return ErrorHere("expected a term");
    }
  }

  StatusOr<TermExpr> ParseList() {
    LDL_RETURN_IF_ERROR(Expect(TokenKind::kLBracket, "at list start"));
    std::vector<TermExpr> elements;
    TermExpr tail = TermExpr::Atom(interner_->Intern("[]"));
    if (!Check(TokenKind::kRBracket)) {
      LDL_ASSIGN_OR_RETURN(elements, ParseArgs());
      if (Match(TokenKind::kPipe)) {
        LDL_ASSIGN_OR_RETURN(tail, ParseTerm());
      }
    }
    LDL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "after list"));
    Symbol cons = interner_->Intern(".");
    for (auto it = elements.rbegin(); it != elements.rend(); ++it) {
      std::vector<TermExpr> args;
      args.push_back(std::move(*it));
      args.push_back(std::move(tail));
      tail = TermExpr::Func(cons, std::move(args));
    }
    return tail;
  }

  std::vector<Token> tokens_;
  Interner* interner_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<ProgramAst> ParseProgram(std::string_view source, Interner* interner) {
  LDL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens), interner).ParseProgramToplevel();
}

StatusOr<TermExpr> ParseTermText(std::string_view source, Interner* interner) {
  LDL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens), interner).ParseSingleTerm();
}

StatusOr<LiteralAst> ParseLiteralText(std::string_view source, Interner* interner) {
  LDL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens), interner).ParseSingleLiteral();
}

}  // namespace ldl
