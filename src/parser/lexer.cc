#include "parser/lexer.h"

#include <cctype>

#include "base/str_util.h"

namespace ldl {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kInt: return "integer";
    case TokenKind::kName: return "name";
    case TokenKind::kVarName: return "variable";
    case TokenKind::kAnonVar: return "'_'";
    case TokenKind::kString: return "string";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLAngle: return "'<'";
    case TokenKind::kRAngle: return "'>'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kIf: return "':-'";
    case TokenKind::kQuery: return "'?'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNeq: return "'/='";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
  }
  return "<token>";
}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  StatusOr<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    for (;;) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      Token token;
      token.line = line_;
      token.column = column_;
      Status status = Next(&token);
      if (!status.ok()) return status;
      tokens.push_back(std::move(token));
    }
    Token eof;
    eof.kind = TokenKind::kEof;
    eof.line = line_;
    eof.column = column_;
    tokens.push_back(std::move(eof));
    return tokens;
  }

 private:
  bool AtEnd() const { return pos_ >= source_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      while (!AtEnd() && isspace(static_cast<unsigned char>(Peek()))) Advance();
      if (!AtEnd() && (Peek() == '%' || Peek() == '#')) {
        while (!AtEnd() && Peek() != '\n') Advance();
        continue;
      }
      break;
    }
  }

  Status ErrorHere(std::string message) const {
    return ParseError(StrCat(message, " at line ", line_, ", column ", column_));
  }

  Status Next(Token* token) {
    char c = Peek();
    if (isdigit(static_cast<unsigned char>(c))) return LexInt(token);
    if (isalpha(static_cast<unsigned char>(c)) || c == '_') return LexIdent(token);
    switch (c) {
      case '"':
        return LexString(token);
      case '(': Advance(); token->kind = TokenKind::kLParen; return Status::OK();
      case ')': Advance(); token->kind = TokenKind::kRParen; return Status::OK();
      case '{': Advance(); token->kind = TokenKind::kLBrace; return Status::OK();
      case '}': Advance(); token->kind = TokenKind::kRBrace; return Status::OK();
      case '[': Advance(); token->kind = TokenKind::kLBracket; return Status::OK();
      case ']': Advance(); token->kind = TokenKind::kRBracket; return Status::OK();
      case ',': Advance(); token->kind = TokenKind::kComma; return Status::OK();
      case '.': Advance(); token->kind = TokenKind::kDot; return Status::OK();
      case '|': Advance(); token->kind = TokenKind::kPipe; return Status::OK();
      case '~': Advance(); token->kind = TokenKind::kBang; return Status::OK();
      case '+': Advance(); token->kind = TokenKind::kPlus; return Status::OK();
      case '*': Advance(); token->kind = TokenKind::kStar; return Status::OK();
      case '=': Advance(); token->kind = TokenKind::kEq; return Status::OK();
      case '-':
        Advance();
        token->kind = TokenKind::kMinus;
        return Status::OK();
      case '!':
        Advance();
        if (Peek() == '=') {
          Advance();
          token->kind = TokenKind::kNeq;
        } else {
          token->kind = TokenKind::kBang;
        }
        return Status::OK();
      case '/':
        Advance();
        if (Peek() == '=') {
          Advance();
          token->kind = TokenKind::kNeq;
        } else {
          token->kind = TokenKind::kSlash;
        }
        return Status::OK();
      case ':':
        Advance();
        if (Peek() == '-') {
          Advance();
          token->kind = TokenKind::kIf;
          return Status::OK();
        }
        return ErrorHere("expected ':-'");
      case '?':
        Advance();
        if (Peek() == '-') Advance();
        token->kind = TokenKind::kQuery;
        return Status::OK();
      case '<':
        Advance();
        if (Peek() == '-') {
          Advance();
          while (Peek() == '-') Advance();  // accept "<-" and "<--"
          token->kind = TokenKind::kIf;
        } else if (Peek() == '=') {
          Advance();
          token->kind = TokenKind::kLe;
        } else {
          token->kind = TokenKind::kLAngle;
        }
        return Status::OK();
      case '>':
        Advance();
        if (Peek() == '=') {
          Advance();
          token->kind = TokenKind::kGe;
        } else {
          token->kind = TokenKind::kRAngle;
        }
        return Status::OK();
      default:
        return ErrorHere(StrCat("unexpected character '", std::string(1, c), "'"));
    }
  }

  Status LexInt(Token* token) {
    int64_t value = 0;
    while (!AtEnd() && isdigit(static_cast<unsigned char>(Peek()))) {
      // Checked accumulation: "value * 10 + digit" with raw signed ops is
      // undefined behavior once the literal exceeds int64.
      if (__builtin_mul_overflow(value, 10, &value) ||
          __builtin_add_overflow(value, Advance() - '0', &value)) {
        return ErrorHere("integer literal exceeds the int64 range");
      }
    }
    if (!AtEnd() && (isalpha(static_cast<unsigned char>(Peek())) || Peek() == '_')) {
      return ErrorHere("identifier may not start with a digit");
    }
    token->kind = TokenKind::kInt;
    token->int_value = value;
    return Status::OK();
  }

  Status LexIdent(Token* token) {
    std::string text;
    while (!AtEnd() && (isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_' || Peek() == '\'')) {
      text += Advance();
    }
    if (text == "_") {
      token->kind = TokenKind::kAnonVar;
      return Status::OK();
    }
    char first = text[0];
    token->kind = (isupper(static_cast<unsigned char>(first)) || first == '_')
                      ? TokenKind::kVarName
                      : TokenKind::kName;
    token->text = std::move(text);
    return Status::OK();
  }

  Status LexString(Token* token) {
    Advance();  // opening quote
    std::string text;
    for (;;) {
      if (AtEnd()) return ErrorHere("unterminated string");
      char c = Advance();
      if (c == '"') break;
      if (c == '\\') {
        if (AtEnd()) return ErrorHere("unterminated escape");
        char escaped = Advance();
        switch (escaped) {
          case 'n': text += '\n'; break;
          case 't': text += '\t'; break;
          case '\\': text += '\\'; break;
          case '"': text += '"'; break;
          default:
            return ErrorHere(StrCat("unknown escape '\\", std::string(1, escaped), "'"));
        }
        continue;
      }
      text += c;
    }
    token->kind = TokenKind::kString;
    token->text = std::move(text);
    return Status::OK();
  }

  std::string_view source_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view source) {
  return Lexer(source).Run();
}

}  // namespace ldl
