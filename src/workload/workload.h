// Synthetic EDB generators shared by tests, examples and benchmarks.
//
// All generators are deterministic in their seed and emit LDL1 fact text
// that Session::Load accepts, so every experiment in EXPERIMENTS.md is
// reproducible from the command line.
#ifndef LDL1_WORKLOAD_WORKLOAD_H_
#define LDL1_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>

namespace ldl {

// Deterministic xorshift64* generator (no global state, no <random> cost).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }
  // Uniform in [0, bound).
  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

 private:
  uint64_t state_;
};

// parent(p0, p1). parent(p1, p2). ... -- a chain of n+1 people.
std::string ParentChain(size_t n, const std::string& pred = "parent");

// A random forest: each person i in [1, n) gets a parent drawn uniformly
// from [0, i).
std::string ParentRandomTree(size_t n, uint64_t seed,
                             const std::string& pred = "parent");

// A random directed graph: `edges` edges over `nodes` nodes (self-loops
// filtered, duplicates possible and harmless).
std::string RandomGraph(size_t nodes, size_t edges, uint64_t seed,
                        const std::string& pred = "edge");

// The §6 running example's base relations: `roots` sibling root people
// (siblings(r_i, r_j) for all pairs), each root carrying a complete tree of
// branching `branching` and depth `depth` via p(parent, child). People are
// named x0, x1, ...; person "x0" is the first root. Leaves have no
// children, so young/2 succeeds on them.
struct SameGenerationWorkload {
  std::string facts;
  std::string a_leaf;        // name of some leaf (query target)
  std::string an_inner;      // name of some inner node (has descendants)
  size_t person_count = 0;
};
SameGenerationWorkload MakeSameGeneration(size_t roots, size_t branching,
                                          size_t depth);

// supplies(s<i>, part<j>). -- `suppliers` suppliers with `parts_per` parts
// each (parts drawn from a pool of `part_pool` names).
std::string SupplierParts(size_t suppliers, size_t parts_per, size_t part_pool,
                          uint64_t seed);

// Bill-of-materials: part_of(p<i>, p<j>) child edges forming a DAG rooted
// at p0 (every part i >= 1 has a parent drawn from [0, i)); leaf parts get
// cost(p<i>, c). Returns facts plus the root/leaf names.
struct BomWorkload {
  std::string facts;
  std::string root;
  size_t part_count = 0;
  size_t leaf_count = 0;
};
BomWorkload MakeBom(size_t parts, uint64_t seed, int64_t max_cost = 50);

// book(title<i>, price). -- `n` books with prices in [1, max_price].
std::string Books(size_t n, int64_t max_price, uint64_t seed);

// A synthetic stratified program (not facts): `layers` layers, each with
// `per_layer` predicates; rules chain predicates within and across layers,
// with a negation per layer crossing. Used to benchmark Stratify.
std::string SyntheticStratifiedProgram(size_t layers, size_t per_layer);

}  // namespace ldl

#endif  // LDL1_WORKLOAD_WORKLOAD_H_
