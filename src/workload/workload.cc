#include "workload/workload.h"

#include <vector>

#include "base/str_util.h"

namespace ldl {

std::string ParentChain(size_t n, const std::string& pred) {
  std::string out;
  out.reserve(n * (pred.size() + 16));
  for (size_t i = 0; i < n; ++i) {
    StrAppend(out, pred, "(p", i, ", p", i + 1, ").\n");
  }
  return out;
}

std::string ParentRandomTree(size_t n, uint64_t seed, const std::string& pred) {
  Rng rng(seed);
  std::string out;
  out.reserve(n * (pred.size() + 16));
  for (size_t i = 1; i < n; ++i) {
    StrAppend(out, pred, "(p", rng.Below(i), ", p", i, ").\n");
  }
  return out;
}

std::string RandomGraph(size_t nodes, size_t edges, uint64_t seed,
                        const std::string& pred) {
  Rng rng(seed);
  std::string out;
  out.reserve(edges * (pred.size() + 16));
  for (size_t e = 0; e < edges; ++e) {
    uint64_t from = rng.Below(nodes);
    uint64_t to = rng.Below(nodes);
    if (from == to) to = (to + 1) % nodes;
    StrAppend(out, pred, "(n", from, ", n", to, ").\n");
  }
  return out;
}

SameGenerationWorkload MakeSameGeneration(size_t roots, size_t branching,
                                          size_t depth) {
  SameGenerationWorkload result;
  std::string& out = result.facts;
  size_t next_id = 0;
  std::vector<size_t> root_ids;
  auto name = [](size_t id) { return StrCat("x", id); };

  for (size_t r = 0; r < roots; ++r) root_ids.push_back(next_id++);
  for (size_t i = 0; i < root_ids.size(); ++i) {
    for (size_t j = i + 1; j < root_ids.size(); ++j) {
      StrAppend(out, "siblings(", name(root_ids[i]), ", ", name(root_ids[j]),
                ").\n");
      StrAppend(out, "siblings(", name(root_ids[j]), ", ", name(root_ids[i]),
                ").\n");
    }
  }

  // Breadth-first tree construction per root.
  std::vector<size_t> frontier = root_ids;
  for (size_t level = 0; level < depth; ++level) {
    std::vector<size_t> next_frontier;
    for (size_t parent : frontier) {
      for (size_t b = 0; b < branching; ++b) {
        size_t child = next_id++;
        StrAppend(out, "p(", name(parent), ", ", name(child), ").\n");
        next_frontier.push_back(child);
      }
    }
    frontier = std::move(next_frontier);
  }
  result.person_count = next_id;
  result.a_leaf = frontier.empty() ? name(root_ids[0]) : name(frontier[0]);
  result.an_inner = name(root_ids[0]);
  return result;
}

std::string SupplierParts(size_t suppliers, size_t parts_per, size_t part_pool,
                          uint64_t seed) {
  Rng rng(seed);
  std::string out;
  out.reserve(suppliers * parts_per * 24);
  for (size_t s = 0; s < suppliers; ++s) {
    for (size_t k = 0; k < parts_per; ++k) {
      StrAppend(out, "supplies(s", s, ", part", rng.Below(part_pool), ").\n");
    }
  }
  return out;
}

BomWorkload MakeBom(size_t parts, uint64_t seed, int64_t max_cost) {
  Rng rng(seed);
  BomWorkload result;
  std::string& out = result.facts;
  std::vector<bool> has_child(parts, false);
  for (size_t i = 1; i < parts; ++i) {
    size_t parent = rng.Below(i);
    StrAppend(out, "part_of(p", parent, ", p", i, ").\n");
    has_child[parent] = true;
  }
  for (size_t i = 0; i < parts; ++i) {
    if (!has_child[i]) {
      StrAppend(out, "cost(p", i, ", ", 1 + rng.Below(max_cost), ").\n");
      ++result.leaf_count;
    }
  }
  result.root = "p0";
  result.part_count = parts;
  return result;
}

std::string Books(size_t n, int64_t max_price, uint64_t seed) {
  Rng rng(seed);
  std::string out;
  out.reserve(n * 24);
  for (size_t i = 0; i < n; ++i) {
    StrAppend(out, "book(title", i, ", ", 1 + rng.Below(max_price), ").\n");
  }
  return out;
}

std::string SyntheticStratifiedProgram(size_t layers, size_t per_layer) {
  std::string out;
  // Layer 0: EDB facts.
  for (size_t p = 0; p < per_layer; ++p) {
    StrAppend(out, "base", p, "(a, b).\n");
  }
  for (size_t layer = 1; layer <= layers; ++layer) {
    for (size_t p = 0; p < per_layer; ++p) {
      std::string head = StrCat("l", layer, "p", p);
      std::string below = layer == 1 ? StrCat("base", p)
                                     : StrCat("l", layer - 1, "p", p);
      // Recursion within the layer plus a positive dependency downward.
      StrAppend(out, head, "(X, Y) :- ", below, "(X, Y).\n");
      StrAppend(out, head, "(X, Y) :- ", head, "(X, Z), ", below, "(Z, Y).\n");
      // One negation per layer, chained through p0, so the minimal layering
      // is exactly `layers` deep.
      if (p == 0 && layer > 1) {
        StrAppend(out, head, "(X, X) :- ", StrCat("base", p), "(X, _), !",
                  StrCat("l", layer - 1, "p0"), "(X, X).\n");
      }
    }
  }
  return out;
}

}  // namespace ldl
