// Pattern matching and unification over LDL1 terms.
//
// Bottom-up evaluation matches rule patterns (terms with variables) against
// ground U-facts. Because set terms are interpreted as mathematical sets,
// matching is *enumerative*: the pattern {X, Y} matches the ground set
// {1, 2} in two ways (X=1,Y=2 and X=2,Y=1) and matches {1} with X=Y=1.
// Likewise scons(X, S) matches a ground set G by choosing X in G and
// S = G or S = G \ {X}. MatchTerm therefore takes a continuation that is
// invoked once per solution.
#ifndef LDL1_TERM_UNIFY_H_
#define LDL1_TERM_UNIFY_H_

#include <functional>

#include "term/term.h"
#include "term/term_ops.h"

namespace ldl {

// Continuation invoked with *subst extended to a solution. Return true to
// continue enumerating, false to stop.
using MatchCont = std::function<bool()>;

// Enumerates all extensions of *subst under which `pattern` instantiated
// equals `ground`. `ground` must be ground. Returns false iff the
// continuation stopped the enumeration (returned false); the substitution is
// rolled back to its entry state before returning either way.
bool MatchTerm(TermFactory& factory, const Term* pattern, const Term* ground,
               Subst* subst, const MatchCont& yield);

// Matches a vector of patterns against a vector of ground terms
// simultaneously (the common case: rule literal args against a fact tuple).
bool MatchArgs(TermFactory& factory, std::span<const Term* const> patterns,
               std::span<const Term* const> ground, Subst* subst,
               const MatchCont& yield);

// Deterministic first-order unification of two patterns, treating set terms
// as rigid (two set patterns unify only element-wise in canonical order) and
// with the occurs check. Used by rewrite passes and tests; evaluation uses
// MatchTerm. On success extends *subst and returns true; on failure the
// substitution is rolled back and the function returns false.
bool UnifyRigid(TermFactory& factory, const Term* a, const Term* b, Subst* subst);

}  // namespace ldl

#endif  // LDL1_TERM_UNIFY_H_
