#include "term/term_ops.h"

#include <algorithm>
#include <cassert>

namespace ldl {

void Subst::Bind(Symbol var, const Term* value) {
  assert(Lookup(var) == nullptr && "variable already bound");
  trail_.emplace_back(var, value);
}

const Term* Subst::Lookup(Symbol var) const {
  for (auto it = trail_.rbegin(); it != trail_.rend(); ++it) {
    if (it->first == var) return it->second;
  }
  return nullptr;
}

const Term* Subst::Walk(const Term* t) const {
  while (t->is_var()) {
    const Term* bound = Lookup(t->symbol());
    if (bound == nullptr) return t;
    t = bound;
  }
  return t;
}

void Subst::RollbackTo(size_t mark) {
  assert(mark <= trail_.size());
  trail_.resize(mark);
}

bool IsSconsSymbol(const TermFactory& factory, Symbol symbol) {
  return factory.scons_symbol() == symbol;
}

const Term* ApplySubst(TermFactory& factory, const Term* t, const Subst& subst) {
  if (t->ground() && !t->has_scons()) return t;
  switch (t->kind()) {
    case TermKind::kInt:
    case TermKind::kAtom:
    case TermKind::kString:
      return t;
    case TermKind::kVar: {
      const Term* walked = subst.Walk(t);
      if (walked == t) return t;
      return ApplySubst(factory, walked, subst);
    }
    case TermKind::kFunc: {
      std::vector<const Term*> args;
      args.reserve(t->size());
      for (const Term* arg : t->args()) {
        const Term* instantiated = ApplySubst(factory, arg, subst);
        if (instantiated == nullptr) return nullptr;
        args.push_back(instantiated);
      }
      if (IsSconsSymbol(factory, t->symbol()) && t->size() == 2) {
        const Term* element = args[0];
        const Term* set = args[1];
        if (set->is_set() && element->ground() && set->ground()) {
          return factory.SetInsert(element, set);
        }
        if (set->ground() && !set->is_set()) {
          // scons applied to a non-set: outside U.
          return nullptr;
        }
        // Not yet fully instantiated: keep the application symbolic.
      }
      return factory.MakeFunc(t->symbol(), args);
    }
    case TermKind::kSet: {
      std::vector<const Term*> elements;
      elements.reserve(t->size());
      for (const Term* element : t->args()) {
        const Term* instantiated = ApplySubst(factory, element, subst);
        if (instantiated == nullptr) return nullptr;
        elements.push_back(instantiated);
      }
      return factory.MakeSet(elements);
    }
  }
  return t;
}

namespace {
void CollectVarsImpl(const Term* t, std::vector<Symbol>* out) {
  if (t->ground()) return;
  if (t->is_var()) {
    if (std::find(out->begin(), out->end(), t->symbol()) == out->end()) {
      out->push_back(t->symbol());
    }
    return;
  }
  for (const Term* arg : t->args()) CollectVarsImpl(arg, out);
}
}  // namespace

void CollectVars(const Term* t, std::vector<Symbol>* out) {
  CollectVarsImpl(t, out);
}

bool OccursIn(const Term* t, Symbol var) {
  if (t->ground()) return false;
  if (t->is_var()) return t->symbol() == var;
  for (const Term* arg : t->args()) {
    if (OccursIn(arg, var)) return true;
  }
  return false;
}

size_t TermSize(const Term* t) {
  size_t total = 1;
  for (const Term* arg : t->args()) total += TermSize(arg);
  return total;
}

size_t TermDepth(const Term* t) {
  size_t deepest = 0;
  for (const Term* arg : t->args()) deepest = std::max(deepest, TermDepth(arg));
  return deepest + 1;
}

}  // namespace ldl
