// Substitutions and structural operations over terms.
#ifndef LDL1_TERM_TERM_OPS_H_
#define LDL1_TERM_TERM_OPS_H_

#include <cstddef>
#include <vector>

#include "term/term.h"

namespace ldl {

// A binding environment: variable symbol -> term. Implemented as a flat
// binding trail so the evaluator can cheaply mark/rollback during
// backtracking joins. Lookups scan backwards; rule patterns have few
// variables, so linear scan beats hashing in practice.
class Subst {
 public:
  Subst() = default;

  // Binds `var` to `value`. `var` must not already be bound.
  void Bind(Symbol var, const Term* value);

  // Returns the binding for `var`, or nullptr if unbound.
  const Term* Lookup(Symbol var) const;

  // Resolves a term through variable bindings: while `t` is a bound
  // variable, follow the binding. Returns the final term (which may still
  // be an unbound variable or a non-ground structure).
  const Term* Walk(const Term* t) const;

  // Trail position for backtracking.
  size_t Mark() const { return trail_.size(); }
  // Undoes all bindings made since `mark`.
  void RollbackTo(size_t mark);

  size_t size() const { return trail_.size(); }
  bool empty() const { return trail_.empty(); }
  void Clear() { trail_.clear(); }

  // The trail in binding order.
  const std::vector<std::pair<Symbol, const Term*>>& trail() const { return trail_; }

 private:
  std::vector<std::pair<Symbol, const Term*>> trail_;
};

// Instantiates `t` under `subst`, rebuilding interned structure:
//   * variables are replaced by their bindings (unbound variables remain),
//   * scons(e, S) applications with both sides resolved are *evaluated* to
//     the set {e} U S,
//   * set literals are re-canonicalized after substitution.
//
// Returns nullptr when the instantiated term falls outside the LDL1
// universe U, i.e. when an scons is applied to a non-set (paper §2.2,
// restriction (1) on built-in functions). Callers treat nullptr as "no
// U-fact produced".
const Term* ApplySubst(TermFactory& factory, const Term* t, const Subst& subst);

// Appends the distinct variables of `t` to `out` in first-occurrence order.
void CollectVars(const Term* t, std::vector<Symbol>* out);

// True if `var` occurs in `t`.
bool OccursIn(const Term* t, Symbol var);

// Number of nodes in the term tree (sets count their elements).
size_t TermSize(const Term* t);

// Depth of nesting (constants/vars have depth 1).
size_t TermDepth(const Term* t);

// True if the symbol is the reserved scons function name in `factory`'s
// interner. scons is the one function symbol with evaluation semantics.
bool IsSconsSymbol(const TermFactory& factory, Symbol symbol);

}  // namespace ldl

#endif  // LDL1_TERM_TERM_OPS_H_
