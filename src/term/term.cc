#include "term/term.h"

#include <algorithm>
#include <cassert>
#include <new>

#include "base/hash.h"
#include "base/str_util.h"

namespace ldl {

namespace {
constexpr uint64_t kKindSeed[] = {0x11, 0x22, 0x33, 0x44, 0x55, 0x66};
}  // namespace

bool TermFactory::TermStructuralEq::operator()(const Term* a, const Term* b) const {
  if (a == b) return true;
  if (a->kind() != b->kind() || a->hash() != b->hash()) return false;
  switch (a->kind()) {
    case TermKind::kInt:
      return a->int_value() == b->int_value();
    case TermKind::kAtom:
    case TermKind::kString:
    case TermKind::kVar:
      return a->symbol() == b->symbol();
    case TermKind::kFunc:
      if (a->symbol() != b->symbol() || a->size() != b->size()) return false;
      break;
    case TermKind::kSet:
      if (a->size() != b->size()) return false;
      break;
  }
  // Children are already interned, so pointer comparison suffices.
  for (uint32_t i = 0; i < a->size(); ++i) {
    if (a->arg(i) != b->arg(i)) return false;
  }
  return true;
}

uint64_t TermFactory::ComputeHash(const Term& t) {
  uint64_t h = kKindSeed[static_cast<int>(t.kind_)];
  switch (t.kind_) {
    case TermKind::kInt:
      h = HashCombine(h, HashMix(static_cast<uint64_t>(t.int_value_)));
      break;
    case TermKind::kAtom:
    case TermKind::kString:
    case TermKind::kVar:
      h = HashCombine(h, HashMix(t.symbol_));
      break;
    case TermKind::kFunc:
      h = HashCombine(h, HashMix(t.symbol_));
      [[fallthrough]];
    case TermKind::kSet:
      for (uint32_t i = 0; i < t.size_; ++i) {
        h = HashCombine(h, t.args_[i]->hash());
      }
      break;
  }
  return h;
}

TermFactory::TermFactory(Interner* interner) : interner_(interner) {
  cons_symbol_ = interner_->Intern(".");
  scons_symbol_ = interner_->Intern("scons");
  tuple_symbol_ = interner_->Intern("tuple");
  Term probe;
  probe.kind_ = TermKind::kSet;
  probe.ground_ = true;
  probe.size_ = 0;
  probe.symbol_ = 0;
  probe.int_value_ = 0;
  probe.args_ = nullptr;
  probe.has_scons_ = false;
  probe.hash_ = ComputeHash(probe);
  empty_set_ = Intern(probe);
  empty_list_ = MakeAtom("[]");
}

const Term* TermFactory::Intern(const Term& candidate,
                                std::span<const Term* const> args) {
  Stripe& stripe = StripeFor(candidate.hash_);
  std::lock_guard<std::mutex> lock(stripe.mu);
  // Find-or-insert must be one critical section: two workers racing to
  // create the same term must agree on a single canonical pointer, or
  // pointer-equality (and with it Relation dedup and the plan matcher)
  // breaks.
  auto it = stripe.table.find(&candidate);
  if (it != stripe.table.end()) return *it;
  void* mem = stripe.arena.Allocate(sizeof(Term), alignof(Term));
  Term* owned = new (mem) Term(candidate);
  if (!args.empty()) {
    const Term** copy = stripe.arena.NewArray<const Term*>(args.size());
    std::copy(args.begin(), args.end(), copy);
    owned->args_ = copy;
  }
  stripe.table.insert(owned);
  if (owned->kind_ == TermKind::kSet) ++stripe.set_interned;
  return owned;
}

size_t TermFactory::interned_count() const {
  size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    total += stripe.table.size();
  }
  return total;
}

size_t TermFactory::arena_bytes() const {
  size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    total += stripe.arena.bytes_allocated();
  }
  return total;
}

size_t TermFactory::set_interned_count() const {
  size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    total += stripe.set_interned;
  }
  return total;
}

const Term* TermFactory::MakeInt(int64_t value) {
  Term probe;
  probe.kind_ = TermKind::kInt;
  probe.ground_ = true;
  probe.has_scons_ = false;
  probe.size_ = 0;
  probe.symbol_ = 0;
  probe.int_value_ = value;
  probe.args_ = nullptr;
  probe.hash_ = ComputeHash(probe);
  return Intern(probe);
}

const Term* TermFactory::MakeAtom(Symbol name) {
  Term probe;
  probe.kind_ = TermKind::kAtom;
  probe.ground_ = true;
  probe.has_scons_ = false;
  probe.size_ = 0;
  probe.symbol_ = name;
  probe.int_value_ = 0;
  probe.args_ = nullptr;
  probe.hash_ = ComputeHash(probe);
  return Intern(probe);
}

const Term* TermFactory::MakeAtom(std::string_view name) {
  return MakeAtom(interner_->Intern(name));
}

const Term* TermFactory::MakeString(Symbol text) {
  Term probe;
  probe.kind_ = TermKind::kString;
  probe.ground_ = true;
  probe.has_scons_ = false;
  probe.size_ = 0;
  probe.symbol_ = text;
  probe.int_value_ = 0;
  probe.args_ = nullptr;
  probe.hash_ = ComputeHash(probe);
  return Intern(probe);
}

const Term* TermFactory::MakeString(std::string_view text) {
  return MakeString(interner_->Intern(text));
}

const Term* TermFactory::MakeVar(Symbol name) {
  Term probe;
  probe.kind_ = TermKind::kVar;
  probe.ground_ = false;
  probe.has_scons_ = false;
  probe.size_ = 0;
  probe.symbol_ = name;
  probe.int_value_ = 0;
  probe.args_ = nullptr;
  probe.hash_ = ComputeHash(probe);
  return Intern(probe);
}

const Term* TermFactory::MakeVar(std::string_view name) {
  return MakeVar(interner_->Intern(name));
}

const Term* TermFactory::MakeFunc(Symbol name, std::span<const Term* const> args) {
  assert(!args.empty() && "0-ary function terms are atoms");
  Term probe;
  probe.kind_ = TermKind::kFunc;
  probe.ground_ = true;
  probe.has_scons_ = (name == scons_symbol_);
  for (const Term* arg : args) {
    probe.ground_ = probe.ground_ && arg->ground();
    probe.has_scons_ = probe.has_scons_ || arg->has_scons();
  }
  probe.size_ = static_cast<uint32_t>(args.size());
  probe.symbol_ = name;
  probe.int_value_ = 0;
  probe.args_ = args.data();
  probe.hash_ = ComputeHash(probe);
  return Intern(probe, args);
}

const Term* TermFactory::MakeFunc(std::string_view name,
                                  std::span<const Term* const> args) {
  return MakeFunc(interner_->Intern(name), args);
}

const Term* TermFactory::InternCanonicalSet(std::span<const Term* const> elements) {
  if (elements.empty()) return empty_set_;
  Term probe;
  probe.kind_ = TermKind::kSet;
  probe.ground_ = true;
  probe.has_scons_ = false;
  for (const Term* element : elements) {
    probe.ground_ = probe.ground_ && element->ground();
    probe.has_scons_ = probe.has_scons_ || element->has_scons();
  }
  probe.size_ = static_cast<uint32_t>(elements.size());
  probe.symbol_ = 0;
  probe.int_value_ = 0;
  probe.args_ = elements.data();
  probe.hash_ = ComputeHash(probe);
  return Intern(probe, elements);
}

const Term* TermFactory::MakeSet(std::span<const Term* const> elements) {
  if (elements.empty()) return empty_set_;
  std::vector<const Term*> canonical(elements.begin(), elements.end());
  std::sort(canonical.begin(), canonical.end(),
            [this](const Term* a, const Term* b) {
              return CompareTerms(*this, a, b) < 0;
            });
  canonical.erase(std::unique(canonical.begin(), canonical.end()), canonical.end());
  return InternCanonicalSet(canonical);
}

const Term* TermFactory::SetBuilder::Build() {
  std::sort(elements_.begin(), elements_.end(),
            [this](const Term* a, const Term* b) {
              return CompareTerms(*factory_, a, b) < 0;
            });
  elements_.erase(std::unique(elements_.begin(), elements_.end()),
                  elements_.end());
  const Term* result = factory_->InternCanonicalSet(elements_);
  elements_.clear();
  return result;
}

const Term* TermFactory::SetInsert(const Term* element, const Term* set) {
  assert(set->is_set());
  std::span<const Term* const> elems = set->args();
  // Elements are interned, so structural equality is pointer equality and
  // lower_bound lands on the element itself when present.
  auto pos = std::lower_bound(elems.begin(), elems.end(), element,
                              [this](const Term* a, const Term* b) {
                                return CompareTerms(*this, a, b) < 0;
                              });
  if (pos != elems.end() && *pos == element) return set;
  std::vector<const Term*> merged;
  merged.reserve(elems.size() + 1);
  merged.insert(merged.end(), elems.begin(), pos);
  merged.push_back(element);
  merged.insert(merged.end(), pos, elems.end());
  return InternCanonicalSet(merged);
}

const Term* TermFactory::SetUnion(const Term* a, const Term* b) {
  assert(a->is_set() && b->is_set());
  if (a == b || b->size() == 0) return a;
  if (a->size() == 0) return b;
  std::span<const Term* const> lhs = a->args();
  std::span<const Term* const> rhs = b->args();
  std::vector<const Term*> merged;
  merged.reserve(lhs.size() + rhs.size());
  size_t i = 0;
  size_t j = 0;
  while (i < lhs.size() && j < rhs.size()) {
    int cmp = CompareTerms(*this, lhs[i], rhs[j]);
    if (cmp < 0) {
      merged.push_back(lhs[i++]);
    } else if (cmp > 0) {
      merged.push_back(rhs[j++]);
    } else {
      merged.push_back(lhs[i++]);
      ++j;
    }
  }
  merged.insert(merged.end(), lhs.begin() + i, lhs.end());
  merged.insert(merged.end(), rhs.begin() + j, rhs.end());
  // A no-growth merge means one operand contains the other; reuse it
  // without an interner probe.
  if (merged.size() == lhs.size()) return a;
  if (merged.size() == rhs.size()) return b;
  return InternCanonicalSet(merged);
}

const Term* TermFactory::SetDifference(const Term* a, const Term* b) {
  assert(a->is_set() && b->is_set());
  if (a == b || a->size() == 0) return empty_set_;
  if (b->size() == 0) return a;
  std::span<const Term* const> lhs = a->args();
  std::span<const Term* const> rhs = b->args();
  std::vector<const Term*> kept;
  kept.reserve(lhs.size());
  size_t j = 0;
  for (const Term* element : lhs) {
    while (j < rhs.size() && CompareTerms(*this, rhs[j], element) < 0) ++j;
    if (j < rhs.size() && rhs[j] == element) {
      ++j;
      continue;
    }
    kept.push_back(element);
  }
  if (kept.size() == lhs.size()) return a;
  return InternCanonicalSet(kept);
}

const Term* TermFactory::SetIntersect(const Term* a, const Term* b) {
  assert(a->is_set() && b->is_set());
  if (a == b) return a;
  if (a->size() == 0) return a;
  if (b->size() == 0) return b;
  std::span<const Term* const> lhs = a->args();
  std::span<const Term* const> rhs = b->args();
  std::vector<const Term*> common;
  common.reserve(std::min(lhs.size(), rhs.size()));
  size_t i = 0;
  size_t j = 0;
  while (i < lhs.size() && j < rhs.size()) {
    int cmp = CompareTerms(*this, lhs[i], rhs[j]);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      common.push_back(lhs[i++]);
      ++j;
    }
  }
  if (common.size() == lhs.size()) return a;
  if (common.size() == rhs.size()) return b;
  return InternCanonicalSet(common);
}

bool TermFactory::SetContains(const Term* set, const Term* element) const {
  assert(set->is_set());
  // Elements are sorted under CompareTerms; binary search.
  uint32_t lo = 0;
  uint32_t hi = set->size();
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    int cmp = CompareTerms(*this, set->arg(mid), element);
    if (cmp == 0) return true;
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

const Term* TermFactory::EmptyList() { return empty_list_; }

const Term* TermFactory::MakeCons(const Term* head, const Term* tail) {
  const Term* args[] = {head, tail};
  return MakeFunc(cons_symbol_, args);
}

bool TermFactory::IsCons(const Term* t) const {
  return t->is_func() && t->symbol() == cons_symbol_ && t->size() == 2;
}

bool TermFactory::IsEmptyList(const Term* t) const { return t == empty_list_; }

int CompareTerms(const TermFactory& factory, const Term* a, const Term* b) {
  if (a == b) return 0;
  if (a->kind() != b->kind()) {
    return static_cast<int>(a->kind()) < static_cast<int>(b->kind()) ? -1 : 1;
  }
  const Interner& interner = *factory.interner_;
  switch (a->kind()) {
    case TermKind::kInt: {
      if (a->int_value() == b->int_value()) return 0;
      return a->int_value() < b->int_value() ? -1 : 1;
    }
    case TermKind::kAtom:
    case TermKind::kString:
    case TermKind::kVar: {
      int cmp = interner.Lookup(a->symbol()).compare(interner.Lookup(b->symbol()));
      return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    case TermKind::kFunc: {
      int cmp = interner.Lookup(a->symbol()).compare(interner.Lookup(b->symbol()));
      if (cmp != 0) return cmp < 0 ? -1 : 1;
      if (a->size() != b->size()) return a->size() < b->size() ? -1 : 1;
      for (uint32_t i = 0; i < a->size(); ++i) {
        int arg_cmp = CompareTerms(factory, a->arg(i), b->arg(i));
        if (arg_cmp != 0) return arg_cmp;
      }
      return 0;
    }
    case TermKind::kSet: {
      if (a->size() != b->size()) return a->size() < b->size() ? -1 : 1;
      for (uint32_t i = 0; i < a->size(); ++i) {
        int arg_cmp = CompareTerms(factory, a->arg(i), b->arg(i));
        if (arg_cmp != 0) return arg_cmp;
      }
      return 0;
    }
  }
  return 0;
}

void TermFactory::AppendTo(const Term* t, std::string* out) const {
  switch (t->kind()) {
    case TermKind::kInt:
      StrAppend(*out, t->int_value());
      break;
    case TermKind::kAtom:
    case TermKind::kVar:
      StrAppend(*out, interner_->Lookup(t->symbol()));
      break;
    case TermKind::kString:
      StrAppend(*out, '"', interner_->Lookup(t->symbol()), '"');
      break;
    case TermKind::kFunc: {
      if (IsCons(t) || IsEmptyList(t)) {
        // Render list chains as [a, b | Tail].
        StrAppend(*out, '[');
        const Term* node = t;
        bool first = true;
        while (IsCons(node)) {
          if (!first) StrAppend(*out, ", ");
          first = false;
          AppendTo(node->arg(0), out);
          node = node->arg(1);
        }
        if (!IsEmptyList(node)) {
          StrAppend(*out, " | ");
          AppendTo(node, out);
        }
        StrAppend(*out, ']');
        break;
      }
      // The reserved tuple functor (§4.2 head terms) prints as "(a, b)".
      if (t->symbol() != tuple_symbol_) {
        StrAppend(*out, interner_->Lookup(t->symbol()));
      }
      StrAppend(*out, '(');
      for (uint32_t i = 0; i < t->size(); ++i) {
        if (i > 0) StrAppend(*out, ", ");
        AppendTo(t->arg(i), out);
      }
      StrAppend(*out, ')');
      break;
    }
    case TermKind::kSet: {
      StrAppend(*out, '{');
      for (uint32_t i = 0; i < t->size(); ++i) {
        if (i > 0) StrAppend(*out, ", ");
        AppendTo(t->arg(i), out);
      }
      StrAppend(*out, '}');
      break;
    }
  }
}

std::string TermFactory::ToString(const Term* t) const {
  std::string out;
  AppendTo(t, &out);
  return out;
}

}  // namespace ldl
