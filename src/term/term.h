// Terms of the LDL1 universe (paper §2.2) and their factory.
//
// The LDL1 universe U is the omega-closure of the Herbrand universe under
// finite subsets and (non-scons) function application: U_0 is all variable-
// free simple terms; U_n adds all finite subsets of U_{n-1} and closes under
// function application. This module realizes U with hash-consed immutable
// terms: every structurally distinct term exists exactly once per
// TermFactory, so
//
//   * structural equality is pointer equality,
//   * hashing a term is O(1) (cached),
//   * finite sets are stored sorted and deduplicated under a total term
//     order, so set equality is also pointer equality.
//
// Variables are included as a term kind so that rule patterns can be
// represented uniformly; ground terms (members of U proper) are flagged.
// Terms are allocated from arenas owned by the factory and are never
// individually freed ("manual memory for terms").
//
// Concurrency: interning is striped. The hash table is sharded into
// kStripeCount independent stripes, each with its own mutex, hash set and
// arena; a term lands in the stripe selected by its structural hash. The
// find-or-insert is atomic per stripe, so pointer-equality canonicalization
// holds even when the parallel evaluator's workers intern concurrently --
// two workers racing to create f(a, b) always receive the same pointer.
// Terms are immutable once published, so readers never take a lock.
#ifndef LDL1_TERM_TERM_H_
#define LDL1_TERM_TERM_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/arena.h"
#include "base/interner.h"

namespace ldl {

enum class TermKind : uint8_t {
  kInt = 0,    // 64-bit integer constant
  kAtom,       // symbolic constant, e.g. john
  kString,     // quoted string constant, e.g. "War and Peace"
  kFunc,       // f(t1, ..., tn), n >= 1, f != scons
  kSet,        // finite set {t1, ..., tn}, canonical: sorted, deduplicated
  kVar,        // variable; only appears in rule patterns, never in U-facts
};

// Immutable, interned term. Create only through TermFactory.
class Term {
 public:
  Term& operator=(const Term&) = delete;

  TermKind kind() const { return kind_; }
  bool is_int() const { return kind_ == TermKind::kInt; }
  bool is_atom() const { return kind_ == TermKind::kAtom; }
  bool is_string() const { return kind_ == TermKind::kString; }
  bool is_func() const { return kind_ == TermKind::kFunc; }
  bool is_set() const { return kind_ == TermKind::kSet; }
  bool is_var() const { return kind_ == TermKind::kVar; }

  // True iff no variable occurs in the term, i.e. the term is an element
  // of the LDL1 universe U.
  bool ground() const { return ground_; }

  // True iff an scons application occurs anywhere in the term. A ground term
  // with has_scons() still needs evaluation before it denotes an element of
  // U (scons(a, {b}) denotes {a, b}).
  bool has_scons() const { return has_scons_; }

  // Atom / string / function / variable name. Meaningless for kInt, kSet.
  Symbol symbol() const { return symbol_; }

  // Integer payload; only for kInt.
  int64_t int_value() const { return int_value_; }

  // Function arity or set cardinality; 0 for other kinds.
  uint32_t size() const { return size_; }

  // i-th function argument / set element (set elements are sorted by the
  // factory's total term order).
  const Term* arg(uint32_t i) const { return args_[i]; }
  std::span<const Term* const> args() const { return {args_, size_}; }

  uint64_t hash() const { return hash_; }

 private:
  friend class TermFactory;
  Term() = default;
  Term(const Term&) = default;  // factory-internal: copying a probe to the arena

  TermKind kind_;
  bool ground_;
  bool has_scons_;
  uint32_t size_;
  Symbol symbol_;
  int64_t int_value_;
  uint64_t hash_;
  const Term* const* args_;
};

// Total order over terms. Kind rank first (kInt < kAtom < kString < kFunc <
// kSet < kVar), then payload: integers by value; atoms/strings by symbol
// text; functions by name, arity, then args lexicographically; sets by
// cardinality then elements lexicographically; variables by name. Returns
// <0, 0, >0. The order depends on the interner's text, not insertion order,
// so it is stable across runs.
class TermFactory;
int CompareTerms(const TermFactory& factory, const Term* a, const Term* b);

// Creates and interns terms. Thread-safe via striped (lock-sharded) hash
// interning: concurrent Make* calls from parallel-evaluation workers are
// safe and return canonical pointers. One factory per engine.
class TermFactory {
 public:
  explicit TermFactory(Interner* interner);

  TermFactory(const TermFactory&) = delete;
  TermFactory& operator=(const TermFactory&) = delete;

  const Term* MakeInt(int64_t value);
  const Term* MakeAtom(Symbol name);
  const Term* MakeAtom(std::string_view name);
  const Term* MakeString(Symbol text);
  const Term* MakeString(std::string_view text);
  const Term* MakeVar(Symbol name);
  const Term* MakeVar(std::string_view name);
  // f(args...); f must not be scons (use SetInsert) and arity must be >= 1.
  const Term* MakeFunc(Symbol name, std::span<const Term* const> args);
  const Term* MakeFunc(std::string_view name, std::span<const Term* const> args);
  // {elements...}: sorts and deduplicates. Elements need not be ground (a
  // non-ground set only appears transiently in rule patterns).
  const Term* MakeSet(std::span<const Term* const> elements);
  const Term* EmptySet() const { return empty_set_; }

  // Accumulates set elements and canonicalizes (sort + dedup + intern) once
  // at Build(), instead of paying a full re-canonicalization per insertion
  // the way an scons-chain of SetInsert calls would. Element hashes are
  // already cached on the interned terms, so Build() costs one sort over
  // cached-hash pointers plus a single interner probe. Reusable: Build()
  // resets the builder. Movable so evaluation-side partition maps can own
  // builders.
  class SetBuilder {
   public:
    explicit SetBuilder(TermFactory* factory) : factory_(factory) {}
    SetBuilder(SetBuilder&&) = default;
    SetBuilder& operator=(SetBuilder&&) = default;

    void Reserve(size_t n) { elements_.reserve(n); }
    void Add(const Term* element) { elements_.push_back(element); }
    size_t size() const { return elements_.size(); }
    bool empty() const { return elements_.empty(); }

    // Sorts and dedups the accumulated elements in place, interns the
    // canonical set, and resets the builder for reuse.
    const Term* Build();

   private:
    TermFactory* factory_;
    std::vector<const Term*> elements_;
  };

  // scons(element, set): {element} U set. `set` must be kSet. One binary
  // search plus a linear splice; no re-sort.
  const Term* SetInsert(const Term* element, const Term* set);
  // Set union; both must be kSet. Linear merge of the canonical operands;
  // returns an operand unchanged when the other is a subset of it.
  const Term* SetUnion(const Term* a, const Term* b);
  // Set difference a \ b; both must be kSet. Linear merge.
  const Term* SetDifference(const Term* a, const Term* b);
  // Set intersection; both must be kSet. Linear merge.
  const Term* SetIntersect(const Term* a, const Term* b);
  // Membership test against a canonical set (binary search).
  bool SetContains(const Term* set, const Term* element) const;

  // Lists are sugar over function terms: '.'(head, tail) and the atom '[]'.
  const Term* EmptyList();
  const Term* MakeCons(const Term* head, const Term* tail);
  bool IsCons(const Term* t) const;
  bool IsEmptyList(const Term* t) const;

  // Renders the term using the factory's interner: f(a, {1, 2}, X).
  std::string ToString(const Term* t) const;
  void AppendTo(const Term* t, std::string* out) const;

  Interner* interner() const { return interner_; }
  // Totals across all stripes; each stripe is locked briefly, so the result
  // is a consistent-enough snapshot for stats and tests.
  size_t interned_count() const;
  size_t arena_bytes() const;
  // Distinct set terms interned so far (monotone). Evaluation entry points
  // record the per-run delta as EvalStats::set_interns.
  size_t set_interned_count() const;

  // Number of lock stripes the intern table is sharded into.
  static constexpr size_t kStripeCount = 16;

  // The reserved scons function symbol (paper §2.1).
  Symbol scons_symbol() const { return scons_symbol_; }

 private:
  friend int CompareTerms(const TermFactory& factory, const Term* a, const Term* b);

  struct TermHash {
    size_t operator()(const Term* t) const { return t->hash(); }
  };
  struct TermStructuralEq {
    bool operator()(const Term* a, const Term* b) const;
  };

  // One lock shard of the intern table. Each stripe owns the arena its
  // terms (and their argument arrays) are copied into, so allocation and
  // publication happen under one lock acquisition.
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_set<const Term*, TermHash, TermStructuralEq> table;
    Arena arena;
    size_t set_interned = 0;  // kSet terms newly published in this stripe
  };

  Stripe& StripeFor(uint64_t hash) {
    // Top bits select the stripe; the hash table consumes the low bits.
    return stripes_[(hash >> 60) & (kStripeCount - 1)];
  }

  // Atomically finds-or-inserts `candidate` (stack-allocated probe) in its
  // stripe. On a miss the probe and `args` (when non-empty) are copied into
  // the stripe's arena before the new term is published.
  const Term* Intern(const Term& candidate, std::span<const Term* const> args = {});
  // Interns a set whose elements are already sorted (strictly ascending
  // under CompareTerms) and deduplicated; the merge-based set operations and
  // SetBuilder land here, skipping MakeSet's re-sort.
  const Term* InternCanonicalSet(std::span<const Term* const> elements);
  static uint64_t ComputeHash(const Term& t);

  Interner* interner_;
  Stripe stripes_[kStripeCount];
  const Term* empty_set_;
  Symbol cons_symbol_;
  Symbol scons_symbol_;
  Symbol tuple_symbol_;
  const Term* empty_list_;
};

}  // namespace ldl

#endif  // LDL1_TERM_TERM_H_
