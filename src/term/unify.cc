#include "term/unify.h"

#include <cassert>

namespace ldl {

namespace {

// Recursive matcher. Returns false iff the continuation asked to stop.
// On every return the substitution is exactly as it was on entry.
bool MatchImpl(TermFactory& factory, const Term* pattern, const Term* ground,
               Subst* subst, const MatchCont& yield);

// Matches patterns[i..] against ground[i..] conjunctively.
bool MatchSeq(TermFactory& factory, std::span<const Term* const> patterns,
              std::span<const Term* const> ground, size_t i, Subst* subst,
              const MatchCont& yield) {
  if (i == patterns.size()) return yield();
  return MatchImpl(factory, patterns[i], ground[i], subst,
                   [&]() { return MatchSeq(factory, patterns, ground, i + 1, subst, yield); });
}

// Set matching: assign each pattern element to some element of the ground
// set such that the instantiated elements cover the ground set exactly.
// `cover` counts how many pattern elements are currently matched to each
// ground element; `uncovered` counts ground elements with cover 0.
bool MatchSetElements(TermFactory& factory, const Term* pattern, const Term* ground,
                      uint32_t i, std::vector<uint32_t>* cover, uint32_t* uncovered,
                      Subst* subst, const MatchCont& yield) {
  uint32_t remaining = pattern->size() - i;
  if (*uncovered > remaining) return true;  // prune: cannot cover the rest
  if (i == pattern->size()) {
    assert(*uncovered == 0);
    return yield();
  }
  const Term* element_pattern = pattern->arg(i);
  for (uint32_t j = 0; j < ground->size(); ++j) {
    bool keep_going = MatchImpl(
        factory, element_pattern, ground->arg(j), subst, [&]() {
          if ((*cover)[j]++ == 0) --*uncovered;
          bool cont = MatchSetElements(factory, pattern, ground, i + 1, cover,
                                       uncovered, subst, yield);
          if (--(*cover)[j] == 0) ++*uncovered;
          return cont;
        });
    if (!keep_going) return false;
  }
  return true;
}

bool MatchImpl(TermFactory& factory, const Term* pattern, const Term* ground,
               Subst* subst, const MatchCont& yield) {
  assert(ground->ground() && !ground->has_scons());
  pattern = subst->Walk(pattern);

  if (pattern->is_var()) {
    size_t mark = subst->Mark();
    subst->Bind(pattern->symbol(), ground);
    bool keep_going = yield();
    subst->RollbackTo(mark);
    return keep_going;
  }

  if (pattern->ground()) {
    const Term* value = pattern;
    if (pattern->has_scons()) {
      // Evaluate residual scons applications; nullptr means outside U.
      value = ApplySubst(factory, pattern, *subst);
      if (value == nullptr) return true;
    }
    return value == ground ? yield() : true;
  }

  switch (pattern->kind()) {
    case TermKind::kInt:
    case TermKind::kAtom:
    case TermKind::kString:
    case TermKind::kVar:
      return true;  // unreachable: handled above
    case TermKind::kFunc: {
      if (IsSconsSymbol(factory, pattern->symbol()) && pattern->size() == 2) {
        // scons(E, S) denotes {E} U S: the ground side must be a non-empty
        // set G; E matches an element x of G and S matches G or G \ {x}.
        if (!ground->is_set() || ground->size() == 0) return true;
        const Term* element_pattern = pattern->arg(0);
        const Term* set_pattern = pattern->arg(1);
        for (uint32_t j = 0; j < ground->size(); ++j) {
          const Term* x = ground->arg(j);
          bool keep_going = MatchImpl(factory, element_pattern, x, subst, [&]() {
            // Candidate 1: S = G \ {x}.
            std::vector<const Term*> rest;
            rest.reserve(ground->size() - 1);
            for (uint32_t k = 0; k < ground->size(); ++k) {
              if (k != j) rest.push_back(ground->arg(k));
            }
            const Term* without = factory.MakeSet(rest);
            if (!MatchImpl(factory, set_pattern, without, subst, yield)) return false;
            // Candidate 2: S = G (x also in S).
            return MatchImpl(factory, set_pattern, ground, subst, yield);
          });
          if (!keep_going) return false;
        }
        return true;
      }
      if (!ground->is_func() || ground->symbol() != pattern->symbol() ||
          ground->size() != pattern->size()) {
        return true;
      }
      return MatchSeq(factory, pattern->args(), ground->args(), 0, subst, yield);
    }
    case TermKind::kSet: {
      if (!ground->is_set()) return true;
      if (pattern->size() == 0) return ground->size() == 0 ? yield() : true;
      if (ground->size() == 0) return true;  // non-empty pattern vs {}
      std::vector<uint32_t> cover(ground->size(), 0);
      uint32_t uncovered = ground->size();
      return MatchSetElements(factory, pattern, ground, 0, &cover, &uncovered,
                              subst, yield);
    }
  }
  return true;
}

}  // namespace

bool MatchTerm(TermFactory& factory, const Term* pattern, const Term* ground,
               Subst* subst, const MatchCont& yield) {
  size_t mark = subst->Mark();
  bool keep_going = MatchImpl(factory, pattern, ground, subst, yield);
  subst->RollbackTo(mark);
  return keep_going;
}

bool MatchArgs(TermFactory& factory, std::span<const Term* const> patterns,
               std::span<const Term* const> ground, Subst* subst,
               const MatchCont& yield) {
  assert(patterns.size() == ground.size());
  size_t mark = subst->Mark();
  bool keep_going = MatchSeq(factory, patterns, ground, 0, subst, yield);
  subst->RollbackTo(mark);
  return keep_going;
}

namespace {

bool UnifyImpl(TermFactory& factory, const Term* a, const Term* b, Subst* subst) {
  a = subst->Walk(a);
  b = subst->Walk(b);
  if (a == b) return true;
  if (a->is_var()) {
    const Term* bound_b = ApplySubst(factory, b, *subst);
    if (bound_b == nullptr || OccursIn(bound_b, a->symbol())) return false;
    subst->Bind(a->symbol(), bound_b);
    return true;
  }
  if (b->is_var()) return UnifyImpl(factory, b, a, subst);
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case TermKind::kInt:
      return a->int_value() == b->int_value();
    case TermKind::kAtom:
    case TermKind::kString:
      return a->symbol() == b->symbol();
    case TermKind::kVar:
      return false;  // unreachable
    case TermKind::kFunc:
      if (a->symbol() != b->symbol() || a->size() != b->size()) return false;
      break;
    case TermKind::kSet:
      if (a->size() != b->size()) return false;
      break;
  }
  for (uint32_t i = 0; i < a->size(); ++i) {
    if (!UnifyImpl(factory, a->arg(i), b->arg(i), subst)) return false;
  }
  return true;
}

}  // namespace

bool UnifyRigid(TermFactory& factory, const Term* a, const Term* b, Subst* subst) {
  size_t mark = subst->Mark();
  if (UnifyImpl(factory, a, b, subst)) return true;
  subst->RollbackTo(mark);
  return false;
}

}  // namespace ldl
