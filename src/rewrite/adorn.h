// Predicate adornment (paper §6, following [BR87]).
//
// Starting from the query's binding pattern, every reachable IDB predicate
// is specialized per adornment: p with adornment "bf" becomes a new
// predicate p__bf whose defining rules are the original rules with body
// predicates adorned according to the rule's sip. Grouped argument
// positions are always adorned 'f' (§6, footnote 6).
#ifndef LDL1_REWRITE_ADORN_H_
#define LDL1_REWRITE_ADORN_H_

#include <string>
#include <unordered_map>

#include "base/status.h"
#include "program/ir.h"
#include "term/term.h"

namespace ldl {

struct AdornedInfo {
  PredId original = kInvalidPred;
  std::string adornment;
};

struct AdornedProgram {
  ProgramIr rules;
  // The adorned predicate answering the query.
  PredId query_pred = kInvalidPred;
  std::string query_adornment;
  // Adorned predicate -> (original predicate, adornment).
  std::unordered_map<PredId, AdornedInfo> adorned;

  bool IsAdorned(PredId pred) const { return adorned.count(pred) > 0; }
};

// Computes the adornment of the query goal: argument i is 'b' iff it is
// ground and not a grouped position of the goal predicate.
std::string QueryAdornment(const Catalog& catalog, const LiteralIr& goal);

// Adorns the program for `goal`. The goal predicate must be intensional
// (have rules); EDB-only goals need no magic. New adorned predicates are
// registered in the catalog as "<name>__<adornment>".
StatusOr<AdornedProgram> AdornProgram(const ProgramIr& program, Catalog* catalog,
                                      const LiteralIr& goal);

}  // namespace ldl

#endif  // LDL1_REWRITE_ADORN_H_
