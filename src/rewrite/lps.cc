#include "rewrite/lps.h"

#include <algorithm>

#include "base/str_util.h"

namespace ldl {

Status TranslateLpsRule(const LpsRule& rule, Symbol domain_pred,
                        Interner* interner, ProgramAst* out) {
  if (rule.quantifiers.empty()) {
    return InvalidArgumentError("LPS rule must have at least one quantifier");
  }
  if (rule.head.negated || rule.head.builtin != BuiltinKind::kNone) {
    return InvalidArgumentError("LPS head must be a positive predicate");
  }

  size_t n = rule.quantifiers.size();
  Symbol g_functor = interner->Fresh("g");
  Symbol a_pred = interner->Fresh("lps_a");
  Symbol b_pred = interner->Fresh("lps_b");
  Symbol c_pred = interner->Fresh("lps_c");
  Symbol d_pred = interner->Fresh("lps_d");

  // Common pieces. The auxiliary predicates are keyed by *all* head
  // variables plus the quantifier sets (the paper's sketch only passes
  // X1..Xn, which loses head variables the body mentions, e.g. the Y of
  // subset(X, Y)); the domain predicate enumerates value combinations for
  // this full key.
  std::vector<TermExpr> set_vars;      // X1..Xn
  std::vector<TermExpr> element_vars;  // x1..xn
  std::vector<Symbol> key_symbols;
  for (const TermExpr& arg : rule.head.args) arg.CollectVars(&key_symbols);
  for (const LpsQuantifier& q : rule.quantifiers) {
    set_vars.push_back(TermExpr::Var(q.set_var));
    element_vars.push_back(TermExpr::Var(q.element_var));
    if (std::find(key_symbols.begin(), key_symbols.end(), q.set_var) ==
        key_symbols.end()) {
      key_symbols.push_back(q.set_var);
    }
  }
  std::vector<TermExpr> key_vars;
  for (Symbol symbol : key_symbols) key_vars.push_back(TermExpr::Var(symbol));
  TermExpr g_tuple = TermExpr::Func(g_functor, element_vars);
  auto domain_literal = [&]() {
    LiteralAst l;
    l.predicate = domain_pred;
    l.args = key_vars;
    return l;
  };
  auto member_literals = [&](std::vector<LiteralAst>* body) {
    for (size_t i = 0; i < n; ++i) {
      LiteralAst member;
      member.builtin = BuiltinKind::kMember;
      member.args.push_back(element_vars[i]);
      member.args.push_back(set_vars[i]);
      body->push_back(std::move(member));
    }
  };

  // a(Key.., g(x1..xn)) :- dom(Key..), B1..Bm, member(x1,X1)..member(xn,Xn).
  RuleAst a_rule;
  a_rule.head.predicate = a_pred;
  a_rule.head.args = key_vars;
  a_rule.head.args.push_back(g_tuple);
  a_rule.body.push_back(domain_literal());
  member_literals(&a_rule.body);
  for (const LiteralAst& b : rule.body) a_rule.body.push_back(b);
  out->rules.push_back(std::move(a_rule));

  // b(Key.., g(x1..xn)) :- dom(Key..), member(x1,X1)..member(xn,Xn).
  RuleAst b_rule;
  b_rule.head.predicate = b_pred;
  b_rule.head.args = key_vars;
  b_rule.head.args.push_back(g_tuple);
  b_rule.body.push_back(domain_literal());
  member_literals(&b_rule.body);
  out->rules.push_back(std::move(b_rule));

  // c(X1..Xn, <S>) :- a(X1..Xn, S).   d likewise from b.
  for (auto [grouped, source] : {std::pair{c_pred, a_pred}, {d_pred, b_pred}}) {
    RuleAst rule_cd;
    TermExpr s = TermExpr::Var(interner->Fresh("S"));
    rule_cd.head.predicate = grouped;
    rule_cd.head.args = key_vars;
    rule_cd.head.args.push_back(TermExpr::Group(s));
    LiteralAst src;
    src.predicate = source;
    src.args = key_vars;
    src.args.push_back(s);
    rule_cd.body.push_back(std::move(src));
    out->rules.push_back(std::move(rule_cd));
  }

  // head :- d(X1..Xn, S), c(X1..Xn, S).
  RuleAst head_rule;
  head_rule.head = rule.head;
  TermExpr s = TermExpr::Var(interner->Fresh("S"));
  for (auto pred : {d_pred, c_pred}) {
    LiteralAst l;
    l.predicate = pred;
    l.args = key_vars;
    l.args.push_back(s);
    head_rule.body.push_back(std::move(l));
  }
  out->rules.push_back(std::move(head_rule));
  return Status::OK();
}

}  // namespace ldl
