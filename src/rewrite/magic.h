// Generalized Magic Sets rewriting for admissible programs (paper §6).
//
// Given an adorned program and a query, produces:
//   * one magic predicate m_p__a per adorned predicate (arity = number of
//     bound positions);
//   * modified rules: each adorned rule gains the magic literal of its head
//     in front of its body;
//   * magic rules: for each adorned (including negated) body literal, a
//     rule deriving its magic predicate from the head's magic predicate and
//     the preceding body literals (left-to-right sip). Negated literals and
//     built-ins that are unevaluable within the prefix are dropped from
//     magic-rule bodies -- dropping only weakens the restriction, never the
//     answers;
//   * the seed fact for the query's magic predicate.
//
// The rewritten program is generally not layered (§6); evaluate it with
// Engine::EvaluateSaturating. Adorned and magic predicates are reused across
// rewrites of the same goal shape; supplementary sup$ predicates are minted
// fresh per rewrite (cache the MagicProgram if you re-ask the same goal in a
// hot loop).
#ifndef LDL1_REWRITE_MAGIC_H_
#define LDL1_REWRITE_MAGIC_H_

#include <vector>

#include "base/status.h"
#include "rewrite/adorn.h"

namespace ldl {

struct MagicOptions {
  // Use supplementary predicates: per rule, the chain
  //   sup_0(bound head vars)        <- m_head(bound head args).
  //   sup_j(live vars after L_j)    <- sup_{j-1}(...), L_j.
  // with magic rules reading sup_{j-1} and the modified rule reading sup_n.
  // This shares every body-prefix join between the magic rules and the
  // modified rule instead of recomputing it ([BR87]'s supplementary magic;
  // the paper notes in §6 that the related methods extend to LDL1 the same
  // way). Body literals are ordered by binding propagation first, so the
  // chain is evaluable left-to-right.
  bool supplementary = false;
};

struct MagicProgram {
  ProgramIr rules;
  // Query the answers from this (adorned) predicate.
  PredId answer_pred = kInvalidPred;
  // Extensional predicates the evaluation database must be seeded with.
  std::vector<PredId> edb_preds;
  // For inspection: adorned predicate -> its magic predicate.
  std::unordered_map<PredId, PredId> magic_of;
};

// Runs adornment + magic rewriting for `goal` over `program`.
StatusOr<MagicProgram> MagicRewrite(const ProgramIr& program, Catalog* catalog,
                                    const LiteralIr& goal,
                                    const MagicOptions& options = {});

}  // namespace ldl

#endif  // LDL1_REWRITE_MAGIC_H_
