#include "rewrite/magic.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "base/str_util.h"
#include "term/term_ops.h"

namespace ldl {

namespace {

// Bound argument patterns of a literal/head under an adornment.
std::vector<const Term*> BoundArgs(const std::vector<const Term*>& args,
                                   const std::string& adornment) {
  std::vector<const Term*> result;
  for (size_t i = 0; i < args.size() && i < adornment.size(); ++i) {
    if (adornment[i] == 'b') result.push_back(args[i]);
  }
  return result;
}

// Filters a magic-rule body prefix: keeps positive relational literals, and
// built-ins that become evaluable given the variables bound so far (seeded
// with the magic guard's variables). Negated literals are dropped (sound:
// the restriction only weakens).
std::vector<LiteralIr> FilterPrefix(const std::vector<LiteralIr>& prefix,
                                    const std::vector<const Term*>& seed_args) {
  std::vector<LiteralIr> kept;
  std::vector<LiteralIr> pending_builtins;
  for (const LiteralIr& literal : prefix) {
    if (literal.negated) continue;
    if (literal.is_builtin()) {
      pending_builtins.push_back(literal);
    } else {
      kept.push_back(literal);
    }
  }
  if (pending_builtins.empty()) return kept;

  // Keep a built-in only if it has an evaluable mode given bindings from the
  // magic guard and the kept literals (iterated to fixpoint).
  std::vector<Symbol> bound;
  for (const Term* arg : seed_args) CollectVars(arg, &bound);
  for (const LiteralIr& literal : kept) {
    for (const Term* arg : literal.args) CollectVars(arg, &bound);
  }
  auto term_bound = [&](const Term* t) {
    std::vector<Symbol> vars;
    CollectVars(t, &vars);
    for (Symbol var : vars) {
      if (std::find(bound.begin(), bound.end(), var) == bound.end()) return false;
    }
    return true;
  };
  auto ready = [&](const LiteralIr& l) {
    auto b = [&](size_t i) { return term_bound(l.args[i]); };
    switch (l.builtin) {
      case BuiltinKind::kEq: return b(0) || b(1);
      case BuiltinKind::kMember:
      case BuiltinKind::kSubset: return b(1);
      case BuiltinKind::kUnion: return (b(0) && b(1)) || b(2);
      case BuiltinKind::kIntersection:
      case BuiltinKind::kDifference: return b(0) && b(1);
      case BuiltinKind::kPartition: return b(0) || (b(1) && b(2));
      case BuiltinKind::kCard: return b(0);
      case BuiltinKind::kPlus:
      case BuiltinKind::kMinus:
      case BuiltinKind::kTimes: return b(0) + b(1) + b(2) >= 2;
      case BuiltinKind::kDiv:
      case BuiltinKind::kMod: return b(0) && b(1);
      default: return b(0) && (l.args.size() < 2 || b(1));
    }
  };
  bool changed = true;
  std::vector<bool> taken(pending_builtins.size(), false);
  while (changed) {
    changed = false;
    for (size_t i = 0; i < pending_builtins.size(); ++i) {
      if (taken[i] || !ready(pending_builtins[i])) continue;
      taken[i] = true;
      changed = true;
      kept.push_back(pending_builtins[i]);
      for (const Term* arg : pending_builtins[i].args) CollectVars(arg, &bound);
    }
  }
  return kept;
}

void CollectBoundVars(const std::vector<const Term*>& patterns,
                      std::vector<Symbol>* bound) {
  for (const Term* pattern : patterns) CollectVars(pattern, bound);
}

bool AllVarsIn(const Term* t, const std::vector<Symbol>& bound) {
  std::vector<Symbol> vars;
  CollectVars(t, &vars);
  for (Symbol var : vars) {
    if (std::find(bound.begin(), bound.end(), var) == bound.end()) return false;
  }
  return true;
}

// Builds the supplementary-magic rewriting for one adorned rule. Returns
// false (without emitting) when no evaluable left-to-right schedule exists;
// the caller falls back to the plain rewriting.
bool EmitSupplementary(const RuleIr& rule, PredId head_magic,
                       const std::vector<const Term*>& head_bound,
                       const AdornedProgram& adorned, Catalog* catalog,
                       const std::function<PredId(PredId)>& magic_pred,
                       MagicProgram* result) {
  size_t n = rule.body.size();
  if (n == 0) return false;

  // Schedule: positives in textual order; built-ins and negations flushed as
  // soon as they become evaluable. Mirrors the left-to-right sip.
  std::vector<Symbol> bound;
  CollectBoundVars(head_bound, &bound);
  std::vector<bool> scheduled(n, false);
  // steps[k]: literal indices evaluated at chain step k (>= 1 literal each).
  std::vector<std::vector<int>> steps;

  auto builtin_ready = [&](const LiteralIr& l) {
    auto b = [&](size_t i) { return AllVarsIn(l.args[i], bound); };
    if (l.negated) {
      for (size_t i = 0; i < l.args.size(); ++i) {
        if (!b(i)) return false;
      }
      return true;
    }
    switch (l.builtin) {
      case BuiltinKind::kEq: return b(0) || b(1);
      case BuiltinKind::kMember:
      case BuiltinKind::kSubset: return b(1);
      case BuiltinKind::kUnion: return (b(0) && b(1)) || b(2);
      case BuiltinKind::kIntersection:
      case BuiltinKind::kDifference: return b(0) && b(1);
      case BuiltinKind::kPartition: return b(0) || (b(1) && b(2));
      case BuiltinKind::kCard: return b(0);
      case BuiltinKind::kPlus:
      case BuiltinKind::kMinus:
      case BuiltinKind::kTimes: return b(0) + b(1) + b(2) >= 2;
      case BuiltinKind::kDiv:
      case BuiltinKind::kMod: return b(0) && b(1);
      default: return false;
    }
  };
  auto negation_ready = [&](size_t index) {
    // Ready when every variable shared with other literals or the head is
    // bound (locals are existential under the negation).
    std::vector<Symbol> vars;
    for (const Term* arg : rule.body[index].args) CollectVars(arg, &vars);
    for (Symbol var : vars) {
      if (std::find(bound.begin(), bound.end(), var) != bound.end()) continue;
      bool elsewhere = false;
      for (const Term* head_arg : rule.head_args) {
        if (OccursIn(head_arg, var)) elsewhere = true;
      }
      for (size_t j = 0; j < n && !elsewhere; ++j) {
        if (j == index) continue;
        for (const Term* arg : rule.body[j].args) {
          if (OccursIn(arg, var)) {
            elsewhere = true;
            break;
          }
        }
      }
      if (elsewhere) return false;
    }
    return true;
  };
  auto bind_literal = [&](size_t index) {
    for (const Term* arg : rule.body[index].args) CollectVars(arg, &bound);
  };

  size_t remaining = n;
  while (remaining > 0) {
    std::vector<int> step;
    // Flush ready non-positive literals.
    bool flushed = true;
    while (flushed) {
      flushed = false;
      for (size_t i = 0; i < n; ++i) {
        const LiteralIr& literal = rule.body[i];
        if (scheduled[i] || (!literal.is_builtin() && !literal.negated)) continue;
        bool ready = literal.is_builtin() ? builtin_ready(literal)
                                          : negation_ready(i);
        if (!ready) continue;
        scheduled[i] = true;
        --remaining;
        step.push_back(static_cast<int>(i));
        if (!literal.negated) bind_literal(i);
        flushed = true;
      }
    }
    // Next positive literal in textual order.
    for (size_t i = 0; i < n; ++i) {
      const LiteralIr& literal = rule.body[i];
      if (scheduled[i] || literal.is_builtin() || literal.negated) continue;
      scheduled[i] = true;
      --remaining;
      step.push_back(static_cast<int>(i));
      bind_literal(i);
      break;
    }
    if (step.empty()) {
      if (remaining > 0) return false;  // stuck: unready built-ins/negations
      break;
    }
    steps.push_back(std::move(step));
  }
  if (steps.empty()) return false;

  auto used_later = [&](size_t from_step, Symbol var) {
    for (const Term* arg : rule.head_args) {
      if (OccursIn(arg, var)) return true;
    }
    for (size_t k = from_step; k < steps.size(); ++k) {
      for (int index : steps[k]) {
        for (const Term* arg : rule.body[index].args) {
          if (OccursIn(arg, var)) return true;
        }
      }
    }
    return false;
  };

  Interner* interner = catalog->interner();
  auto make_sup = [&](const std::vector<Symbol>& vars) {
    PredId pred = catalog->GetOrCreate(interner->Fresh("sup"),
                                       static_cast<uint32_t>(vars.size()));
    catalog->mutable_info(pred).has_rules = true;
    return pred;
  };
  // sup heads reuse the variable Term pointers found in the rule (every
  // bound var symbol occurs somewhere in the head or body).
  std::unordered_map<Symbol, const Term*> var_terms;
  {
    std::function<void(const Term*)> scan = [&](const Term* t) {
      if (t->is_var()) {
        var_terms.emplace(t->symbol(), t);
        return;
      }
      for (const Term* arg : t->args()) scan(arg);
    };
    for (const Term* arg : rule.head_args) scan(arg);
    for (const LiteralIr& literal : rule.body) {
      for (const Term* arg : literal.args) scan(arg);
    }
  }
  auto vars_to_terms = [&](const std::vector<Symbol>& vars) {
    std::vector<const Term*> terms;
    for (Symbol var : vars) terms.push_back(var_terms.at(var));
    return terms;
  };

  // V_0: bound head variables still needed later.
  std::vector<Symbol> head_bound_vars;
  CollectBoundVars(head_bound, &head_bound_vars);
  std::vector<Symbol> v_prev;
  for (Symbol var : head_bound_vars) {
    if (used_later(0, var) &&
        std::find(v_prev.begin(), v_prev.end(), var) == v_prev.end()) {
      v_prev.push_back(var);
    }
  }
  PredId sup_prev = make_sup(v_prev);
  {
    RuleIr sup0;
    sup0.head_pred = sup_prev;
    sup0.head_args = vars_to_terms(v_prev);
    sup0.source_index = rule.source_index;
    LiteralIr guard;
    guard.pred = head_magic;
    guard.args = head_bound;
    sup0.body.push_back(std::move(guard));
    result->rules.rules.push_back(std::move(sup0));
  }

  std::vector<Symbol> bound_so_far = head_bound_vars;
  for (size_t k = 0; k < steps.size(); ++k) {
    // Magic rules for adorned literals in this step read sup_{k-1} plus any
    // same-step literals scheduled before them (deferred built-ins may bind
    // the adorned literal's arguments within the step).
    for (size_t t = 0; t < steps[k].size(); ++t) {
      const LiteralIr& literal = rule.body[steps[k][t]];
      if (literal.is_builtin() || !adorned.IsAdorned(literal.pred)) continue;
      const AdornedInfo& callee_info = adorned.adorned.at(literal.pred);
      RuleIr magic_rule;
      magic_rule.head_pred = magic_pred(literal.pred);
      magic_rule.head_args = BoundArgs(literal.args, callee_info.adornment);
      magic_rule.source_index = rule.source_index;
      LiteralIr sup_lit;
      sup_lit.pred = sup_prev;
      sup_lit.args = vars_to_terms(v_prev);
      magic_rule.body.push_back(std::move(sup_lit));
      for (size_t u = 0; u < t; ++u) {
        const LiteralIr& earlier = rule.body[steps[k][u]];
        if (!earlier.negated) magic_rule.body.push_back(earlier);
      }
      result->rules.rules.push_back(std::move(magic_rule));
    }

    // Advance the bound set with this step's positive literals.
    for (int index : steps[k]) {
      const LiteralIr& literal = rule.body[index];
      if (literal.negated) continue;
      for (const Term* arg : literal.args) CollectVars(arg, &bound_so_far);
    }

    if (k + 1 == steps.size()) {
      // Final step feeds the modified rule directly.
      RuleIr modified;
      modified.head_pred = rule.head_pred;
      modified.head_args = rule.head_args;
      modified.group_index = rule.group_index;
      modified.group_var = rule.group_var;
      modified.source_index = rule.source_index;
      LiteralIr sup_lit;
      sup_lit.pred = sup_prev;
      sup_lit.args = vars_to_terms(v_prev);
      modified.body.push_back(std::move(sup_lit));
      for (int index : steps[k]) modified.body.push_back(rule.body[index]);
      result->rules.rules.push_back(std::move(modified));
      return true;
    }

    // Live set after this step.
    std::vector<Symbol> v_next;
    for (Symbol var : bound_so_far) {
      if (used_later(k + 1, var) &&
          std::find(v_next.begin(), v_next.end(), var) == v_next.end()) {
        v_next.push_back(var);
      }
    }
    RuleIr sup_rule;
    PredId sup_next = make_sup(v_next);
    sup_rule.head_pred = sup_next;
    sup_rule.head_args = vars_to_terms(v_next);
    sup_rule.source_index = rule.source_index;
    LiteralIr sup_lit;
    sup_lit.pred = sup_prev;
    sup_lit.args = vars_to_terms(v_prev);
    sup_rule.body.push_back(std::move(sup_lit));
    for (int index : steps[k]) sup_rule.body.push_back(rule.body[index]);
    result->rules.rules.push_back(std::move(sup_rule));
    sup_prev = sup_next;
    v_prev = std::move(v_next);
  }
  return true;
}

}  // namespace

StatusOr<MagicProgram> MagicRewrite(const ProgramIr& program, Catalog* catalog,
                                    const LiteralIr& goal,
                                    const MagicOptions& options) {
  LDL_ASSIGN_OR_RETURN(AdornedProgram adorned, AdornProgram(program, catalog, goal));

  MagicProgram result;
  result.answer_pred = adorned.query_pred;

  // Create magic predicates.
  auto magic_pred = [&](PredId adorned_pred) -> PredId {
    auto it = result.magic_of.find(adorned_pred);
    if (it != result.magic_of.end()) return it->second;
    const AdornedInfo& info = adorned.adorned.at(adorned_pred);
    size_t bound_count = static_cast<size_t>(
        std::count(info.adornment.begin(), info.adornment.end(), 'b'));
    PredId id = catalog->GetOrCreate(
        StrCat("m_", catalog->interner()->Lookup(catalog->info(adorned_pred).name)),
        static_cast<uint32_t>(bound_count));
    catalog->mutable_info(id).has_rules = true;
    result.magic_of.emplace(adorned_pred, id);
    return id;
  };

  for (const RuleIr& rule : adorned.rules.rules) {
    const AdornedInfo& head_info = adorned.adorned.at(rule.head_pred);
    PredId head_magic = magic_pred(rule.head_pred);
    std::vector<const Term*> head_bound =
        BoundArgs(rule.head_args, head_info.adornment);

    if (options.supplementary &&
        EmitSupplementary(rule, head_magic, head_bound, adorned, catalog,
                          magic_pred, &result)) {
      continue;
    }

    // Magic rules for adorned body literals, one per occurrence.
    for (size_t j = 0; j < rule.body.size(); ++j) {
      const LiteralIr& literal = rule.body[j];
      if (literal.is_builtin() || !adorned.IsAdorned(literal.pred)) continue;
      const AdornedInfo& callee_info = adorned.adorned.at(literal.pred);
      RuleIr magic_rule;
      magic_rule.head_pred = magic_pred(literal.pred);
      magic_rule.head_args = BoundArgs(literal.args, callee_info.adornment);
      magic_rule.source_index = rule.source_index;
      LiteralIr head_magic_lit;
      head_magic_lit.pred = head_magic;
      head_magic_lit.args = head_bound;
      magic_rule.body.push_back(std::move(head_magic_lit));
      std::vector<LiteralIr> prefix(rule.body.begin(), rule.body.begin() + j);
      for (LiteralIr& kept : FilterPrefix(prefix, head_bound)) {
        magic_rule.body.push_back(std::move(kept));
      }
      result.rules.rules.push_back(std::move(magic_rule));
    }

    // Modified rule: magic guard in front.
    RuleIr modified = rule;
    LiteralIr guard;
    guard.pred = head_magic;
    guard.args = head_bound;
    modified.body.insert(modified.body.begin(), std::move(guard));
    result.rules.rules.push_back(std::move(modified));
  }

  // Seed: m_query(<bound goal args>).
  RuleIr seed;
  seed.head_pred = magic_pred(adorned.query_pred);
  seed.head_args = BoundArgs(goal.args, adorned.query_adornment);
  result.rules.rules.push_back(std::move(seed));

  // EDB predicates referenced by the rewritten program.
  std::vector<bool> seen(catalog->size(), false);
  for (const RuleIr& rule : result.rules.rules) {
    for (const LiteralIr& literal : rule.body) {
      if (literal.is_builtin()) continue;
      if (!catalog->info(literal.pred).has_rules && !seen[literal.pred]) {
        seen[literal.pred] = true;
        result.edb_preds.push_back(literal.pred);
      }
    }
  }
  return result;
}

}  // namespace ldl
