// Translation of LPS (Kuper's "Logic Programming with Sets") rules into
// LDL1 (paper §5, Theorem 3).
//
// An LPS rule has the form
//
//   head <-- (ALL x1 in X1) ... (ALL xn in Xn) [B1, ..., Bm]
//
// and holds when the body conjunction is true for *every* combination of
// elements of the (finite) sets X1..Xn. The translation builds, per
// combination of X1..Xn values, the set of g-tuples for which the body
// holds (the a/c rules) and the set of all combinations (the b/d rules);
// the head fires when the two sets coincide.
//
// Bottom-up safety: LPS evaluates rules against given sets; bottom-up we
// need the candidate set tuples to come from somewhere. The caller supplies
// a domain predicate (arity n) whose facts enumerate the X1..Xn
// combinations to consider -- this is the substitution documented in
// DESIGN.md; on those combinations the translation agrees with LPS.
//
// Caveat reproduced from the paper: the sketch does not handle empty Xi
// (the universally quantified body over an empty set should be vacuously
// true, but the grouped sets are empty and the d-rule fails). The paper
// calls fixing this "a straight-forward task"; we keep the sketch faithful
// and document the behavior.
#ifndef LDL1_REWRITE_LPS_H_
#define LDL1_REWRITE_LPS_H_

#include <vector>

#include "ast/ast.h"
#include "base/interner.h"
#include "base/status.h"

namespace ldl {

struct LpsQuantifier {
  Symbol element_var;  // x_i
  Symbol set_var;      // X_i
};

struct LpsRule {
  LiteralAst head;
  std::vector<LpsQuantifier> quantifiers;
  std::vector<LiteralAst> body;
};

// Translates one LPS rule. `domain_pred` names the predicate enumerating
// candidate value combinations for all head variables plus the quantifier
// sets (in head-occurrence order, quantifier sets not already in the head
// appended). The generated rules are appended to `out`.
Status TranslateLpsRule(const LpsRule& rule, Symbol domain_pred,
                        Interner* interner, ProgramAst* out);

}  // namespace ldl

#endif  // LDL1_REWRITE_LPS_H_
