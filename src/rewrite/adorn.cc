#include "rewrite/adorn.h"

#include <algorithm>
#include <deque>

#include "base/str_util.h"
#include "rewrite/sip.h"

namespace ldl {

namespace {

std::string AdornedName(const Catalog& catalog, PredId pred,
                        const std::string& adornment) {
  return StrCat(catalog.interner()->Lookup(catalog.info(pred).name), "__",
                adornment);
}

}  // namespace

std::string QueryAdornment(const Catalog& catalog, const LiteralIr& goal) {
  const PredicateInfo& info = catalog.info(goal.pred);
  std::string adornment;
  for (size_t i = 0; i < goal.args.size(); ++i) {
    bool grouped = i < info.grouped_args.size() && info.grouped_args[i];
    adornment.push_back(!grouped && goal.args[i]->ground() ? 'b' : 'f');
  }
  return adornment;
}

StatusOr<AdornedProgram> AdornProgram(const ProgramIr& program, Catalog* catalog,
                                      const LiteralIr& goal) {
  if (goal.is_builtin() || goal.negated) {
    return InvalidArgumentError("magic rewriting needs a positive relational goal");
  }
  if (!catalog->info(goal.pred).has_rules) {
    return InvalidArgumentError(
        StrCat("goal predicate ", catalog->DebugName(goal.pred),
               " is extensional; magic rewriting does not apply"));
  }

  // Rules indexed by head predicate.
  std::unordered_map<PredId, std::vector<const RuleIr*>> rules_by_head;
  for (const RuleIr& rule : program.rules) {
    rules_by_head[rule.head_pred].push_back(&rule);
  }

  AdornedProgram result;
  result.query_adornment = QueryAdornment(*catalog, goal);

  // (pred, adornment) -> adorned pred id.
  std::unordered_map<std::string, PredId> adorned_ids;
  std::deque<std::pair<PredId, std::string>> worklist;

  auto get_adorned = [&](PredId pred, const std::string& adornment) -> PredId {
    std::string key = StrCat(pred, "/", adornment);
    auto it = adorned_ids.find(key);
    if (it != adorned_ids.end()) return it->second;
    PredId id = catalog->GetOrCreate(AdornedName(*catalog, pred, adornment),
                                     catalog->info(pred).arity);
    PredicateInfo& info = catalog->mutable_info(id);
    info.has_rules = true;
    info.grouped_args = catalog->info(pred).grouped_args;
    adorned_ids.emplace(std::move(key), id);
    result.adorned.emplace(id, AdornedInfo{pred, adornment});
    worklist.emplace_back(pred, adornment);
    return id;
  };

  result.query_pred = get_adorned(goal.pred, result.query_adornment);

  while (!worklist.empty()) {
    auto [pred, adornment] = std::move(worklist.front());
    worklist.pop_front();
    PredId adorned_head = adorned_ids.at(StrCat(pred, "/", adornment));

    for (const RuleIr* rule : rules_by_head[pred]) {
      RuleIr adorned_rule = *rule;
      adorned_rule.head_pred = adorned_head;
      Sip sip = BuildLeftToRightSip(*catalog, *rule, adornment);
      for (size_t j = 0; j < adorned_rule.body.size(); ++j) {
        LiteralIr& literal = adorned_rule.body[j];
        if (literal.is_builtin()) continue;
        if (!catalog->info(literal.pred).has_rules) continue;  // EDB stays
        literal.pred = get_adorned(literal.pred, sip.literal_adornments[j]);
      }
      result.rules.rules.push_back(std::move(adorned_rule));
    }
  }
  return result;
}

}  // namespace ldl
