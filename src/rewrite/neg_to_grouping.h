// The §3.3 transformation: grouping can express negation.
//
// Every negated body literal !p(T1..Tn) is replaced by the positive literal
// g$(T1..Tn, {bottom}) with the auxiliary rules (bottom is the reserved
// constant whose use is prohibited in source programs):
//
//   dom$(T1..Tn)    :- <the positive literals of the original body>.
//   ok$(W.., bottom) :- dom$(W..).
//   ok$(W.., S)      :- dom$(W..), p(W..), S = {(W..)}.
//   g$(W.., <S>)     :- ok$(W.., S).
//
// For a tuple in dom$, the group for g$ is {bottom} exactly when p fails on
// it, and {bottom, {(W..)}} otherwise. (The paper's scheme uses an
// unrestricted fact ok(T, bottom); the dom$ predicate restricts it to the
// active domain so the transformed program stays safe for bottom-up
// evaluation -- it does not change the meaning on the original predicates.)
//
// The transformed program is positive, and it is admissible whenever the
// input is.
#ifndef LDL1_REWRITE_NEG_TO_GROUPING_H_
#define LDL1_REWRITE_NEG_TO_GROUPING_H_

#include "ast/ast.h"
#include "base/interner.h"
#include "base/status.h"

namespace ldl {

// The reserved constant (paper's "bottom"/_|_).
inline constexpr const char kBottomAtom[] = "$bottom";

// Rewrites every negated literal. Returns kInvalidArgument if the program
// mentions the reserved bottom constant.
StatusOr<ProgramAst> EliminateNegation(const ProgramAst& program,
                                       Interner* interner);

}  // namespace ldl

#endif  // LDL1_REWRITE_NEG_TO_GROUPING_H_
