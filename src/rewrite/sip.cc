#include "rewrite/sip.h"

#include <algorithm>

#include "term/term_ops.h"

namespace ldl {

namespace {

bool Contains(const std::vector<Symbol>& vars, Symbol var) {
  return std::find(vars.begin(), vars.end(), var) != vars.end();
}

bool TermBound(const Term* t, const std::vector<Symbol>& bound) {
  std::vector<Symbol> vars;
  CollectVars(t, &vars);
  for (Symbol var : vars) {
    if (!Contains(bound, var)) return false;
  }
  return true;
}

void BindTermVars(const Term* t, std::vector<Symbol>* bound) {
  std::vector<Symbol> vars;
  CollectVars(t, &vars);
  for (Symbol var : vars) {
    if (!Contains(*bound, var)) bound->push_back(var);
  }
}

// Static built-in binding propagation (mirrors eval/builtins.cc modes).
bool PropagateBuiltinStatic(const LiteralIr& literal, std::vector<Symbol>* bound) {
  auto arg_bound = [&](size_t i) { return TermBound(literal.args[i], *bound); };
  auto bind = [&](size_t i) { BindTermVars(literal.args[i], bound); };
  size_t before = bound->size();
  if (literal.negated) return false;
  switch (literal.builtin) {
    case BuiltinKind::kEq:
      if (arg_bound(0)) bind(1);
      if (arg_bound(1)) bind(0);
      break;
    case BuiltinKind::kMember:
    case BuiltinKind::kSubset:
      if (arg_bound(1)) bind(0);
      break;
    case BuiltinKind::kUnion:
      if (arg_bound(0) && arg_bound(1)) bind(2);
      if (arg_bound(2)) {
        bind(0);
        bind(1);
      }
      break;
    case BuiltinKind::kIntersection:
    case BuiltinKind::kDifference:
      if (arg_bound(0) && arg_bound(1)) bind(2);
      break;
    case BuiltinKind::kPartition:
      if (arg_bound(0)) {
        bind(1);
        bind(2);
      }
      if (arg_bound(1) && arg_bound(2)) bind(0);
      break;
    case BuiltinKind::kCard:
      if (arg_bound(0)) bind(1);
      break;
    case BuiltinKind::kPlus:
    case BuiltinKind::kMinus:
    case BuiltinKind::kTimes:
      if (arg_bound(0) + arg_bound(1) + arg_bound(2) >= 2) {
        bind(0);
        bind(1);
        bind(2);
      }
      break;
    case BuiltinKind::kDiv:
    case BuiltinKind::kMod:
      if (arg_bound(0) && arg_bound(1)) bind(2);
      break;
    default:
      break;
  }
  return bound->size() > before;
}

}  // namespace

std::string AdornLiteral(const Catalog& catalog, const LiteralIr& literal,
                         const std::vector<Symbol>& bound_vars) {
  const PredicateInfo& info = catalog.info(literal.pred);
  std::string adornment;
  adornment.reserve(literal.args.size());
  for (size_t i = 0; i < literal.args.size(); ++i) {
    // §6 footnote 6: a grouped argument position never receives bindings.
    bool grouped = i < info.grouped_args.size() && info.grouped_args[i];
    bool bound = !grouped && TermBound(literal.args[i], bound_vars);
    adornment.push_back(bound ? 'b' : 'f');
  }
  return adornment;
}

Sip BuildLeftToRightSip(const Catalog& catalog, const RuleIr& rule,
                        const std::string& head_adornment) {
  Sip sip;
  sip.literal_adornments.resize(rule.body.size());

  // Bound head variables: the 'b' positions, never the grouped one.
  std::vector<Symbol> bound;
  for (size_t i = 0; i < rule.head_args.size(); ++i) {
    if (i < head_adornment.size() && head_adornment[i] == 'b' &&
        static_cast<int>(i) != rule.group_index) {
      BindTermVars(rule.head_args[i], &bound);
    }
  }

  std::vector<int> positive_sources = {-1};  // p_h
  for (size_t j = 0; j < rule.body.size(); ++j) {
    const LiteralIr& literal = rule.body[j];
    if (literal.is_builtin()) {
      PropagateBuiltinStatic(literal, &bound);
      continue;
    }
    std::string adornment = AdornLiteral(catalog, literal, bound);
    sip.literal_adornments[j] = adornment;

    // Record the arc when bindings actually flow.
    std::vector<Symbol> label;
    for (const Term* arg : literal.args) {
      std::vector<Symbol> vars;
      CollectVars(arg, &vars);
      for (Symbol var : vars) {
        if (Contains(bound, var) && !Contains(label, var)) label.push_back(var);
      }
    }
    if (!label.empty()) {
      SipArc arc;
      arc.sources = positive_sources;
      arc.target = static_cast<int>(j);
      arc.vars = std::move(label);
      sip.arcs.push_back(std::move(arc));
    }

    if (!literal.negated) {
      for (const Term* arg : literal.args) BindTermVars(arg, &bound);
      positive_sources.push_back(static_cast<int>(j));
    }
  }

  // Built-ins may become ready late; run the propagation to fixpoint so
  // bound_after reflects the full body.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const LiteralIr& literal : rule.body) {
      if (literal.is_builtin()) {
        changed = PropagateBuiltinStatic(literal, &bound) || changed;
      }
    }
  }
  sip.bound_after = std::move(bound);
  return sip;
}

}  // namespace ldl
