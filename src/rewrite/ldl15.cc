#include "rewrite/ldl15.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "base/str_util.h"

namespace ldl {

namespace {

// A head argument needs no rewriting if it is group-free or is exactly <Var>.
bool IsBaseHeadArg(const TermExpr& arg) {
  if (!arg.ContainsGroup()) return true;
  return arg.is_group() && arg.args[0].is_var();
}

// Collects head variables that occur outside any <...> (the paper's Z).
void CollectVarsOutsideGroups(const TermExpr& term, std::vector<Symbol>* out) {
  if (term.is_group()) return;
  if (term.is_var()) {
    if (std::find(out->begin(), out->end(), term.symbol) == out->end()) {
      out->push_back(term.symbol);
    }
    return;
  }
  for (const TermExpr& arg : term.args) CollectVarsOutsideGroups(arg, out);
}

// Finds an outermost group in `term`, replaces it with a fresh variable, and
// returns the extracted payload (which may contain nested groups). Returns
// true if a group was found.
bool ExtractOutermostGroup(TermExpr* term, Symbol fresh_var, TermExpr* payload) {
  if (term->is_group()) {
    *payload = std::move(term->args[0]);
    *term = TermExpr::Var(fresh_var);
    return true;
  }
  for (TermExpr& arg : term->args) {
    if (ExtractOutermostGroup(&arg, fresh_var, payload)) return true;
  }
  return false;
}

// Replaces every group occurrence in `term` by a fresh variable; records the
// (payload, variable) pairs in order.
void SkeletonizeGroups(TermExpr* term, Interner* interner,
                       std::vector<std::pair<TermExpr, Symbol>>* nested) {
  if (term->is_group()) {
    TermExpr payload = std::move(term->args[0]);
    Symbol var = interner->Fresh("U");
    nested->emplace_back(std::move(payload), var);
    *term = TermExpr::Var(var);
    return;
  }
  for (TermExpr& arg : term->args) SkeletonizeGroups(&arg, interner, nested);
}

// Renames every variable of `term` apart (fresh names), so a pattern can be
// reused in an auxiliary rule without capturing the caller's variables.
// Shared variables within the term stay shared.
void RenameApart(TermExpr* term, Interner* interner,
                 std::unordered_map<Symbol, Symbol>* renaming) {
  if (term->is_var()) {
    auto it = renaming->find(term->symbol);
    if (it == renaming->end()) {
      it = renaming->emplace(term->symbol, interner->Fresh("R")).first;
    }
    term->symbol = it->second;
    return;
  }
  for (TermExpr& arg : term->args) RenameApart(&arg, interner, renaming);
}

class Expander {
 public:
  Expander(Interner* interner, const Ldl15Options& options)
      : interner_(interner), options_(options) {}

  StatusOr<ProgramAst> Run(const ProgramAst& program) {
    ProgramAst result;
    for (const QueryAst& query : program.queries) {
      for (const TermExpr& arg : query.goal.args) {
        if (arg.ContainsGroup()) {
          return NotWellFormedError(
              "grouping brackets are not allowed in queries");
        }
      }
      result.queries.push_back(query);
    }
    std::deque<RuleAst> pending(program.rules.begin(), program.rules.end());
    size_t generated = 0;  // rules beyond the input program
    while (!pending.empty()) {
      size_t total = result.rules.size() + pending.size();
      generated = total > program.rules.size() ? total - program.rules.size() : 0;
      if (generated > options_.max_generated_rules) {
        return ResourceExhaustedError("LDL1.5 expansion exceeded rule limit");
      }
      RuleAst rule = std::move(pending.front());
      pending.pop_front();
      LDL_ASSIGN_OR_RETURN(bool changed, Step(&rule, &pending));
      if (!changed) result.rules.push_back(std::move(rule));
    }
    return result;
  }

 private:
  TermExpr FreshVar(std::string_view prefix) {
    return TermExpr::Var(interner_->Fresh(prefix));
  }
  Symbol FreshPred(std::string_view prefix) { return interner_->Fresh(prefix); }

  // Applies one rewriting step. If the rule was rewritten, pushes the
  // replacement rules onto `pending` and returns true.
  StatusOr<bool> Step(RuleAst* rule, std::deque<RuleAst>* pending) {
    // §4.1 body groups first.
    for (size_t i = 0; i < rule->body.size(); ++i) {
      for (size_t a = 0; a < rule->body[i].args.size(); ++a) {
        if (rule->body[i].args[a].ContainsGroup()) {
          if (rule->body[i].negated) {
            return NotWellFormedError(
                "grouping brackets are not allowed inside negated literals");
          }
          if (rule->body[i].builtin != BuiltinKind::kNone) {
            return NotWellFormedError(
                "grouping brackets are not allowed inside built-in literals");
          }
          RewriteBodyGroup(rule, i, pending);
          return true;
        }
      }
    }
    // §4.2 head terms.
    std::vector<size_t> group_args;
    for (size_t a = 0; a < rule->head.args.size(); ++a) {
      if (rule->head.args[a].ContainsGroup()) group_args.push_back(a);
    }
    bool all_base = true;
    for (size_t a : group_args) {
      if (!IsBaseHeadArg(rule->head.args[a])) all_base = false;
    }
    if (group_args.size() <= 1 && all_base) return false;  // plain LDL1

    if (group_args.size() >= 2) {
      RewriteDistribution(*rule, group_args, pending);
      return true;
    }
    size_t position = group_args[0];
    const TermExpr& arg = rule->head.args[position];
    if (arg.is_group()) {
      LDL_RETURN_IF_ERROR(RewriteGrouping(*rule, position, pending));
    } else {
      LDL_RETURN_IF_ERROR(RewriteNesting(*rule, position, pending));
    }
    return true;
  }

  static LiteralAst MemberLit(TermExpr element, TermExpr set) {
    LiteralAst l;
    l.builtin = BuiltinKind::kMember;
    l.args.push_back(std::move(element));
    l.args.push_back(std::move(set));
    return l;
  }
  static LiteralAst PredLit(Symbol pred, std::vector<TermExpr> args) {
    LiteralAst l;
    l.predicate = pred;
    l.args = std::move(args);
    return l;
  }

  // Emits the uniformity-check predicate for sets carrying `payload`-shaped
  // elements, where candidate sets come from dom_pred/1. Returns the collect
  // predicate: collect$(S, S) holds iff S is a non-empty set all of whose
  // elements match `payload` (nested groups denoting non-empty sets that are
  // recursively uniform). This generalizes the paper's flat collect rule;
  // note the non-emptiness at every level is inherited from grouping's
  // "non-empty finite" semantics (§2.2) and agrees with the paper's own
  // transformation, under which collect(S, S) fails for S = {}.
  Symbol MakeUniformityCheck(const TermExpr& payload, Symbol dom_pred,
                             std::deque<RuleAst>* pending) {
    // Skeleton with nested groups replaced by fresh variables, then all
    // variables renamed apart from the caller's.
    TermExpr skel = payload;
    std::vector<std::pair<TermExpr, Symbol>> nested;
    SkeletonizeGroups(&skel, interner_, &nested);
    std::unordered_map<Symbol, Symbol> renaming;
    RenameApart(&skel, interner_, &renaming);

    Symbol collect_pred = FreshPred("collect");
    TermExpr c = FreshVar("C");
    TermExpr y = FreshVar("Y");

    RuleAst collect_rule;
    collect_rule.head.predicate = collect_pred;
    collect_rule.head.args.push_back(c);
    collect_rule.head.args.push_back(TermExpr::Group(y));
    collect_rule.body.push_back(PredLit(dom_pred, {c}));
    collect_rule.body.push_back(MemberLit(skel, c));
    for (const auto& [inner_payload, u_var] : nested) {
      TermExpr renamed_u = TermExpr::Var(renaming.at(u_var));
      // Candidate inner sets: the values at this position across dom's sets.
      Symbol inner_dom = FreshPred("gdom");
      RuleAst dom_rule;
      dom_rule.head.predicate = inner_dom;
      dom_rule.head.args.push_back(renamed_u);
      dom_rule.body.push_back(PredLit(dom_pred, {c}));
      dom_rule.body.push_back(MemberLit(skel, c));
      pending->push_back(std::move(dom_rule));
      Symbol inner_collect = MakeUniformityCheck(inner_payload, inner_dom, pending);
      collect_rule.body.push_back(PredLit(inner_collect, {renamed_u, renamed_u}));
    }
    {
      LiteralAst eq;
      eq.builtin = BuiltinKind::kEq;
      eq.args.push_back(y);
      eq.args.push_back(skel);
      collect_rule.body.push_back(std::move(eq));
    }
    pending->push_back(std::move(collect_rule));
    return collect_pred;
  }

  // Appends to `out` the literals that iterate and check one <payload>
  // occurrence whose set value is `set_term`, with candidate sets supplied
  // by dom_pred/1:  member(skel, set), collect$(set, set), then recursively
  // for each nested group.
  void EmitIterationChain(const TermExpr& payload, const TermExpr& set_term,
                          Symbol dom_pred, std::vector<LiteralAst>* out,
                          std::deque<RuleAst>* pending) {
    TermExpr skel = payload;
    std::vector<std::pair<TermExpr, Symbol>> nested;
    SkeletonizeGroups(&skel, interner_, &nested);
    out->push_back(MemberLit(skel, set_term));
    Symbol collect_pred = MakeUniformityCheck(payload, dom_pred, pending);
    out->push_back(PredLit(collect_pred, {set_term, set_term}));

    for (size_t index = 0; index < nested.size(); ++index) {
      const TermExpr& inner_payload = nested[index].first;
      Symbol u_var = nested[index].second;
      // Inner candidate sets for the iteration chain.
      Symbol inner_dom = FreshPred("gdom");
      TermExpr dskel = payload;
      std::vector<std::pair<TermExpr, Symbol>> dnested;
      SkeletonizeGroups(&dskel, interner_, &dnested);
      std::unordered_map<Symbol, Symbol> renaming;
      RenameApart(&dskel, interner_, &renaming);
      TermExpr c = FreshVar("C");
      RuleAst dom_rule;
      dom_rule.head.predicate = inner_dom;
      dom_rule.head.args.push_back(TermExpr::Var(renaming.at(dnested[index].second)));
      dom_rule.body.push_back(PredLit(dom_pred, {c}));
      dom_rule.body.push_back(MemberLit(dskel, c));
      pending->push_back(std::move(dom_rule));

      EmitIterationChain(inner_payload, TermExpr::Var(u_var), inner_dom, out,
                         pending);
    }
  }

  // §4.1: one outermost <t> occurrence in body literal `index`.
  void RewriteBodyGroup(RuleAst* rule, size_t index, std::deque<RuleAst>* pending) {
    LiteralAst& literal = rule->body[index];
    Symbol set_var = interner_->Fresh("S");
    TermExpr payload;
    for (TermExpr& arg : literal.args) {
      if (ExtractOutermostGroup(&arg, set_var, &payload)) break;
    }
    TermExpr set_term = TermExpr::Var(set_var);

    // dom$(S) :- <literal with <t> replaced by S>; restricts the auxiliary
    // predicates to sets that actually occur (bottom-up safety).
    Symbol dom_pred = FreshPred("dom");
    RuleAst dom_rule;
    dom_rule.head.predicate = dom_pred;
    dom_rule.head.args.push_back(set_term);
    dom_rule.body.push_back(literal);
    pending->push_back(std::move(dom_rule));

    std::vector<LiteralAst> chain;
    EmitIterationChain(payload, set_term, dom_pred, &chain, pending);
    for (LiteralAst& l : chain) rule->body.push_back(std::move(l));
    pending->push_back(std::move(*rule));
  }

  // §4.2 (i): several head arguments contain groups; split them off.
  void RewriteDistribution(const RuleAst& rule, const std::vector<size_t>& positions,
                           std::deque<RuleAst>* pending) {
    std::vector<Symbol> z;
    for (const TermExpr& arg : rule.head.args) CollectVarsOutsideGroups(arg, &z);

    RuleAst final_rule;
    final_rule.head.predicate = rule.head.predicate;
    final_rule.head.args = rule.head.args;
    final_rule.body = rule.body;

    for (size_t position : positions) {
      Symbol part_pred = FreshPred("part");
      // part$(Z, term_i) :- body.
      RuleAst part_rule;
      part_rule.head.predicate = part_pred;
      for (Symbol var : z) part_rule.head.args.push_back(TermExpr::Var(var));
      part_rule.head.args.push_back(rule.head.args[position]);
      part_rule.body = rule.body;
      pending->push_back(std::move(part_rule));

      // Final rule: term_i -> fresh Y_i, body += part$(Z, Y_i).
      TermExpr fresh = FreshVar("Y");
      final_rule.head.args[position] = fresh;
      LiteralAst part_lit;
      part_lit.predicate = part_pred;
      for (Symbol var : z) part_lit.args.push_back(TermExpr::Var(var));
      part_lit.args.push_back(fresh);
      final_rule.body.push_back(std::move(part_lit));
    }
    pending->push_back(std::move(final_rule));
  }

  // Decomposes a group payload g(u_1..u_k) into its variable arguments (the
  // paper's Y) and non-variable arguments (term_1..term_n).
  struct Decomposition {
    bool has_functor = false;
    Symbol functor = 0;
    std::vector<TermExpr> original_args;  // u_1..u_k (or the payload itself)
    std::vector<Symbol> key_vars;         // Y (distinct, occurrence order)
    std::vector<size_t> term_positions;   // indices of non-variable u_j
  };

  Decomposition Decompose(const TermExpr& payload) {
    Decomposition d;
    if (payload.kind == TermExprKind::kFunc) {
      d.has_functor = true;
      d.functor = payload.symbol;
      d.original_args = payload.args;
    } else {
      d.original_args.push_back(payload);
    }
    for (size_t j = 0; j < d.original_args.size(); ++j) {
      const TermExpr& u = d.original_args[j];
      if (u.is_var()) {
        if (std::find(d.key_vars.begin(), d.key_vars.end(), u.symbol) ==
            d.key_vars.end()) {
          d.key_vars.push_back(u.symbol);
        }
      } else {
        d.term_positions.push_back(j);
      }
    }
    return d;
  }

  // §4.2 (ii) / (ii)': head argument is <t>, t non-variable.
  Status RewriteGrouping(const RuleAst& rule, size_t position,
                         std::deque<RuleAst>* pending) {
    const TermExpr& payload = rule.head.args[position].args[0];
    Decomposition d = Decompose(payload);

    // Key for the intermediate grouping: Y, or Z u Y under (ii)'.
    std::vector<Symbol> key = d.key_vars;
    if (options_.alternative_grouping) {
      std::vector<Symbol> z;
      for (const TermExpr& arg : rule.head.args) CollectVarsOutsideGroups(arg, &z);
      for (Symbol var : d.key_vars) {
        if (std::find(z.begin(), z.end(), var) == z.end()) z.push_back(var);
      }
      key = std::move(z);
    }
    return EmitGroupingChain(rule, position, /*top_level_group=*/true, key, d,
                             pending);
  }

  // §4.2 (iii): head argument is a non-group term containing groups.
  Status RewriteNesting(const RuleAst& rule, size_t position,
                        std::deque<RuleAst>* pending) {
    const TermExpr& arg = rule.head.args[position];
    if (arg.kind != TermExprKind::kFunc) {
      return UnsupportedError(
          "groups nested inside set enumerations in rule heads are not "
          "supported");
    }
    Decomposition d = Decompose(arg);
    // Nesting keys by Z: all head variables outside groups (paper (iii)).
    std::vector<Symbol> key;
    for (const TermExpr& head_arg : rule.head.args) {
      CollectVarsOutsideGroups(head_arg, &key);
    }
    return EmitGroupingChain(rule, position, /*top_level_group=*/false, key, d,
                             pending);
  }

  // Shared emission for (ii)/(ii)'/(iii):
  //   q$(key, term_1..term_n)   :- body.                 [recursed]
  //   q1$(key, rebuilt)         :- q$(key, V_1..V_n).
  //   p(..., <S> or S, ...)     :- q1$(key, S), body.    [recursed]
  Status EmitGroupingChain(const RuleAst& rule, size_t position,
                           bool top_level_group, const std::vector<Symbol>& key,
                           const Decomposition& d, std::deque<RuleAst>* pending) {
    Symbol q_pred = FreshPred("q");
    Symbol q1_pred = FreshPred("q1");

    // q$(key, term_1..term_n) :- body.
    RuleAst q_rule;
    q_rule.head.predicate = q_pred;
    for (Symbol var : key) q_rule.head.args.push_back(TermExpr::Var(var));
    for (size_t j : d.term_positions) {
      q_rule.head.args.push_back(d.original_args[j]);
    }
    q_rule.body = rule.body;
    pending->push_back(std::move(q_rule));

    // q1$(key, rebuilt) :- q$(key, V_1..V_n).
    RuleAst q1_rule;
    q1_rule.head.predicate = q1_pred;
    for (Symbol var : key) q1_rule.head.args.push_back(TermExpr::Var(var));
    std::vector<TermExpr> rebuilt_args = d.original_args;
    LiteralAst q_lit;
    q_lit.predicate = q_pred;
    for (Symbol var : key) q_lit.args.push_back(TermExpr::Var(var));
    for (size_t j : d.term_positions) {
      TermExpr fresh = FreshVar("V");
      rebuilt_args[j] = fresh;
      q_lit.args.push_back(fresh);
    }
    TermExpr rebuilt = d.has_functor
                           ? TermExpr::Func(d.functor, std::move(rebuilt_args))
                           : std::move(rebuilt_args[0]);
    q1_rule.head.args.push_back(std::move(rebuilt));
    q1_rule.body.push_back(std::move(q_lit));
    pending->push_back(std::move(q1_rule));

    // p(..., <S>/S, ...) :- q1$(key, S), body.
    RuleAst caller;
    caller.head = rule.head;
    TermExpr s = FreshVar("S");
    caller.head.args[position] = top_level_group ? TermExpr::Group(s) : s;
    LiteralAst q1_lit;
    q1_lit.predicate = q1_pred;
    for (Symbol var : key) q1_lit.args.push_back(TermExpr::Var(var));
    q1_lit.args.push_back(s);
    caller.body.push_back(std::move(q1_lit));
    for (const LiteralAst& literal : rule.body) caller.body.push_back(literal);
    pending->push_back(std::move(caller));
    return Status::OK();
  }

  Interner* interner_;
  Ldl15Options options_;
};

}  // namespace

StatusOr<ProgramAst> ExpandLdl15(const ProgramAst& program, Interner* interner,
                                 const Ldl15Options& options) {
  return Expander(interner, options).Run(program);
}

}  // namespace ldl
