// Sideways information passing strategies (paper §6).
//
// A sip for a rule (given the bound head arguments) describes how bindings
// flow from the head and already-evaluated body literals into each body
// literal. We implement the canonical left-to-right sip, subject to the
// paper's constraints:
//
//   * the head's grouped argument <X> never passes bindings into the body
//     (§6, footnote 6): the grouped head position is always free;
//   * bindings into a callee's grouped argument positions are suppressed
//     likewise (its adornment stays 'f' there);
//   * negated body literals receive bindings but contribute none;
//   * built-ins contribute bindings only once an evaluable mode is reached.
#ifndef LDL1_REWRITE_SIP_H_
#define LDL1_REWRITE_SIP_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "program/catalog.h"
#include "program/ir.h"

namespace ldl {

struct SipArc {
  // Source literal indices (-1 denotes the bound-head pseudo-node p_h).
  std::vector<int> sources;
  int target = -1;          // body literal index receiving bindings
  std::vector<Symbol> vars; // the arc label chi
};

struct Sip {
  // Per body literal (textual index): the adornment its predicate receives
  // ('b'/'f' per argument). Empty string for built-ins.
  std::vector<std::string> literal_adornments;
  // Variables bound after the whole body (for diagnostics/tests).
  std::vector<Symbol> bound_after;
  std::vector<SipArc> arcs;
};

// Builds the left-to-right sip for `rule` under `head_adornment` (one char
// per head argument; 'f' is forced at the grouped position).
Sip BuildLeftToRightSip(const Catalog& catalog, const RuleIr& rule,
                        const std::string& head_adornment);

// Computes the adornment of one goal/literal given the currently bound
// variables: position i is 'b' iff the argument is fully bound and not a
// grouped argument position of the callee.
std::string AdornLiteral(const Catalog& catalog, const LiteralIr& literal,
                         const std::vector<Symbol>& bound_vars);

}  // namespace ldl

#endif  // LDL1_REWRITE_SIP_H_
