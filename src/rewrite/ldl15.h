// LDL1.5 -> LDL1 macro expansion (paper §4).
//
// §4.1: grouping brackets <t> in rule *bodies* are set patterns: the
// enclosing argument must be a set of uniform structure t, and t's
// variables range over its elements. Each occurrence is rewritten with a
// fresh domain/collect predicate pair:
//
//     p(...) :- q(..., <t>, ...), rest.
//  =>
//     dom$k(S)          :- q(..., S, ...).          (S fresh)
//     collect$k(S, <Y>) :- dom$k(S), member(t, S), Y = t.   (Y fresh)
//     p(...)            :- q(..., S, ...), member(t, S), collect$k(S, S), rest.
//
// collect$k(S, S) holds exactly when every element of S matches the
// pattern t (and S is non-empty), which is the paper's uniform-structure
// condition; member(t, S) makes t's variables range over the elements.
// (The domain predicate makes the paper's scheme safe for bottom-up
// evaluation: it restricts S to sets that actually occur.)
//
// §4.2: complex head terms are expanded with the paper's three rules --
// (i) Distribution, (ii) Grouping, (iii) Nesting -- including the
// degenerate cases, until each head argument is either a group-free term
// or a top-level <Var>. The alternative semantics (ii)' (grouping keyed by
// X and Y) is available via Ldl15Options.
#ifndef LDL1_REWRITE_LDL15_H_
#define LDL1_REWRITE_LDL15_H_

#include "ast/ast.h"
#include "base/interner.h"
#include "base/status.h"

namespace ldl {

struct Ldl15Options {
  // Use the paper's alternative grouping semantics (ii)': nested groups are
  // keyed by the outer variables X *and* the enclosing functor's variables
  // Y, instead of Y alone.
  bool alternative_grouping = false;
  // Safety valve for runaway expansions.
  size_t max_generated_rules = 4096;
};

// Expands every LDL1.5 construct; the result contains grouping brackets only
// as single top-level <Var> head arguments and is accepted by LowerProgram.
StatusOr<ProgramAst> ExpandLdl15(const ProgramAst& program, Interner* interner,
                                 const Ldl15Options& options = {});

}  // namespace ldl

#endif  // LDL1_REWRITE_LDL15_H_
