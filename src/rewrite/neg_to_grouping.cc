#include "rewrite/neg_to_grouping.h"

#include "base/str_util.h"

namespace ldl {

namespace {

bool MentionsBottom(const TermExpr& term, Symbol bottom) {
  if ((term.kind == TermExprKind::kAtom || term.kind == TermExprKind::kFunc) &&
      term.symbol == bottom) {
    return true;
  }
  for (const TermExpr& arg : term.args) {
    if (MentionsBottom(arg, bottom)) return true;
  }
  return false;
}

}  // namespace

StatusOr<ProgramAst> EliminateNegation(const ProgramAst& program,
                                       Interner* interner) {
  Symbol bottom = interner->Intern(kBottomAtom);
  Symbol tuple_functor = interner->Intern(kTupleFunctor);

  ProgramAst result;
  result.queries = program.queries;

  for (const RuleAst& rule : program.rules) {
    for (const LiteralAst& literal : rule.body) {
      for (const TermExpr& arg : literal.args) {
        if (MentionsBottom(arg, bottom)) {
          return InvalidArgumentError(
              StrCat("programs may not mention the reserved constant ",
                     kBottomAtom, " (paper §3.3)"));
        }
      }
    }

    RuleAst rewritten;
    rewritten.head = rule.head;
    std::vector<LiteralAst> positives;
    for (const LiteralAst& literal : rule.body) {
      if (!literal.negated) positives.push_back(literal);
    }

    for (const LiteralAst& literal : rule.body) {
      if (!literal.negated) {
        rewritten.body.push_back(literal);
        continue;
      }
      if (literal.builtin != BuiltinKind::kNone) {
        // Negated built-ins are not predicates over stored relations; the
        // grouping transformation does not apply. Keep them.
        rewritten.body.push_back(literal);
        continue;
      }
      size_t arity = literal.args.size();
      Symbol dom_pred = interner->Fresh("negdom");
      Symbol ok_pred = interner->Fresh("ok");
      Symbol g_pred = interner->Fresh("g");

      // Fresh variables W1..Wn for the auxiliary rules.
      std::vector<TermExpr> w;
      for (size_t i = 0; i < arity; ++i) {
        w.push_back(TermExpr::Var(interner->Fresh("W")));
      }
      auto w_literal = [&](Symbol pred) {
        LiteralAst l;
        l.predicate = pred;
        l.args = w;
        return l;
      };

      // dom$(T1..Tn) :- positives.
      RuleAst dom_rule;
      dom_rule.head.predicate = dom_pred;
      dom_rule.head.args = literal.args;
      dom_rule.body = positives;
      result.rules.push_back(std::move(dom_rule));

      // ok$(W.., bottom) :- dom$(W..).
      RuleAst ok_bottom;
      ok_bottom.head.predicate = ok_pred;
      ok_bottom.head.args = w;
      ok_bottom.head.args.push_back(TermExpr::Atom(bottom));
      ok_bottom.body.push_back(w_literal(dom_pred));
      result.rules.push_back(std::move(ok_bottom));

      // ok$(W.., S) :- dom$(W..), p(W..), S = {(W..)}.
      RuleAst ok_hit;
      TermExpr s = TermExpr::Var(interner->Fresh("S"));
      ok_hit.head.predicate = ok_pred;
      ok_hit.head.args = w;
      ok_hit.head.args.push_back(s);
      ok_hit.body.push_back(w_literal(dom_pred));
      {
        LiteralAst p_lit;
        p_lit.predicate = literal.predicate;
        p_lit.args = w;
        ok_hit.body.push_back(std::move(p_lit));
        LiteralAst eq;
        eq.builtin = BuiltinKind::kEq;
        eq.args.push_back(s);
        TermExpr inner = arity == 1
                             ? w[0]
                             : (arity == 0 ? TermExpr::Atom(interner->Intern("$unit"))
                                           : TermExpr::Func(tuple_functor, w));
        std::vector<TermExpr> singleton;
        singleton.push_back(std::move(inner));
        eq.args.push_back(TermExpr::SetEnum(std::move(singleton)));
        ok_hit.body.push_back(std::move(eq));
      }
      result.rules.push_back(std::move(ok_hit));

      // g$(W.., <S>) :- ok$(W.., S).
      RuleAst g_rule;
      g_rule.head.predicate = g_pred;
      g_rule.head.args = w;
      g_rule.head.args.push_back(TermExpr::Group(s));
      g_rule.body.push_back(w_literal(ok_pred));
      g_rule.body.back().args.push_back(s);
      result.rules.push_back(std::move(g_rule));

      // Caller: !p(T..) -> g$(T.., {bottom}).
      LiteralAst g_call;
      g_call.predicate = g_pred;
      g_call.args = literal.args;
      std::vector<TermExpr> bottom_only;
      bottom_only.push_back(TermExpr::Atom(bottom));
      g_call.args.push_back(TermExpr::SetEnum(std::move(bottom_only)));
      rewritten.body.push_back(std::move(g_call));
    }
    result.rules.push_back(std::move(rewritten));
  }
  return result;
}

}  // namespace ldl
