// Evaluation of built-in predicates (paper §2.2 restrictions (2)-(4), plus
// the arithmetic predicates the paper's examples use).
//
// Built-ins follow the paper's convention: type mismatches make the
// predicate *false* (no solutions), not an error. Mode errors (a built-in
// reached with insufficient bindings despite literal reordering) and
// enumeration blow-ups are reported as Status errors.
#ifndef LDL1_EVAL_BUILTINS_H_
#define LDL1_EVAL_BUILTINS_H_

#include <optional>

#include "base/status.h"
#include "program/ir.h"
#include "term/unify.h"

namespace ldl {

struct BuiltinLimits {
  // union(S1,S2,S3) with only S3 bound enumerates 3^|S3| pairs; subset /
  // partition enumerate 2^n. Sets larger than these caps raise
  // kResourceExhausted instead of silently exploding.
  size_t max_union_enumeration = 12;
  size_t max_subset_enumeration = 20;
};

// True when `literal` has an evaluable mode under the current bindings
// (e.g. member's second argument instantiates to a ground term). Negated
// built-ins require all arguments ground.
bool BuiltinReady(TermFactory& factory, const LiteralIr& literal, const Subst& subst);

// Enumerates all solutions of `literal` under *subst, invoking `yield` per
// solution (with *subst extended). Sets *keep_going to false iff the
// continuation stopped the enumeration. The substitution is restored before
// returning.
Status EvalBuiltin(TermFactory& factory, const LiteralIr& literal, Subst* subst,
                   const MatchCont& yield, bool* keep_going,
                   const BuiltinLimits& limits = {});

// Overflow-checked int64 arithmetic. nullopt when the mathematical result
// does not fit in int64 (and for division/modulo by zero, including the
// INT64_MIN / -1 corner, whose quotient exceeds INT64_MAX). Built-ins
// treat an overflowed operation like any other value outside the integer
// domain: the predicate is simply not satisfied.
std::optional<int64_t> CheckedAdd(int64_t a, int64_t b);
std::optional<int64_t> CheckedSub(int64_t a, int64_t b);
std::optional<int64_t> CheckedMul(int64_t a, int64_t b);
std::optional<int64_t> CheckedDiv(int64_t a, int64_t b);
std::optional<int64_t> CheckedMod(int64_t a, int64_t b);

// Evaluates a ground arithmetic expression term: integers and $add/$sub/
// $mul/$div applications. nullopt for anything else (including division by
// zero and results that overflow int64).
std::optional<int64_t> EvalArith(const TermFactory& factory, const Term* t);

// If `t` is a ground arithmetic expression, returns the integer term it
// denotes; otherwise returns `t` unchanged.
const Term* NormalizeArith(TermFactory& factory, const Term* t);

}  // namespace ldl

#endif  // LDL1_EVAL_BUILTINS_H_
