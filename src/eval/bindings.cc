#include "eval/bindings.h"

#include "base/str_util.h"

namespace ldl {

const Term* InstantiateGround(TermFactory& factory, const Term* pattern,
                              const Subst& subst, bool* ground) {
  const Term* instantiated = ApplySubst(factory, pattern, subst);
  if (instantiated == nullptr) {
    *ground = true;  // outside U, not an unbound-variable problem
    return nullptr;
  }
  if (!instantiated->ground()) {
    *ground = false;
    return nullptr;
  }
  *ground = true;
  return instantiated;
}

InstantiationResult InstantiateArgs(TermFactory& factory,
                                    std::span<const Term* const> patterns,
                                    const Subst& subst) {
  InstantiationResult result;
  result.tuple.reserve(patterns.size());
  for (const Term* pattern : patterns) {
    bool ground = true;
    const Term* value = InstantiateGround(factory, pattern, subst, &ground);
    if (value == nullptr) {
      if (ground) {
        result.outside_universe = true;
      } else {
        result.unbound = true;
      }
      return result;
    }
    result.tuple.push_back(value);
  }
  return result;
}

std::string FormatTuple(const TermFactory& factory, const Tuple& tuple) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) StrAppend(out, ", ");
    factory.AppendTo(tuple[i], &out);
  }
  StrAppend(out, ")");
  return out;
}

std::string FormatFact(const TermFactory& factory, const Catalog& catalog,
                       PredId pred, const Tuple& tuple) {
  std::string out(catalog.interner()->Lookup(catalog.info(pred).name));
  if (!tuple.empty()) StrAppend(out, FormatTuple(factory, tuple));
  return out;
}

}  // namespace ldl
