// Rule body evaluation: a backtracking nested-loop join with sideways
// information passing over the database.
//
// Body literals are statically reordered so that built-ins run as soon as
// their inputs are bound and negated literals run once fully ground
// (negation-as-failure against completed lower strata). By default the
// (rule, order) pair is compiled into a JoinPlan (see eval/plan.h): simple
// positive literals execute as probe-spec + match-program steps over a flat
// slot array, probing composite hash indexes on all statically bound
// columns; complex literals fall back to generic unification. The legacy
// substitution interpreter is kept behind a flag for equivalence testing.
#ifndef LDL1_EVAL_RULE_EVAL_H_
#define LDL1_EVAL_RULE_EVAL_H_

#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "base/status.h"
#include "eval/batch.h"
#include "eval/bindings.h"
#include "eval/builtins.h"
#include "eval/plan.h"
#include "eval/relation.h"
#include "program/ir.h"
#include "term/term_ops.h"

namespace ldl {

// Row-id window restricting which facts a body literal occurrence sees.
// Semi-naive evaluation points one occurrence at a delta window.
struct LiteralWindow {
  size_t from = 0;
  size_t to = std::numeric_limits<size_t>::max();
};

// The one authoritative list of evaluation counters. The struct fields,
// EvalStats::Add, and every printer (REPL :stats, bench counters) are all
// generated from this X-macro, so adding a counter here is the whole job --
// nothing can silently drop it from stat folding, which parallel evaluation
// (per-worker stats merged at the round barrier) depends on being complete.
#define LDL_EVAL_STATS_FIELDS(X)                                      \
  X(iterations)      /* fixpoint rounds */                            \
  X(rule_firings)    /* rule (variant) applications */                \
  X(solutions)       /* body solutions found */                       \
  X(facts_derived)   /* new facts inserted */                         \
  X(tuples_matched)  /* candidate tuples fed to the matcher */        \
  X(index_probes)    /* index lookups issued */                       \
  X(probe_hits)      /* rows returned by index lookups */             \
  X(plan_cache_hits) /* compiled-plan cache hits */                   \
  X(parallel_tasks)  /* tasks dispatched to the worker pool */        \
  X(delta_shards)    /* delta windows split into row-range shards */  \
  X(strata_skipped)  /* incremental: strata untouched by the update */ \
  X(strata_delta)    /* incremental: strata resumed from deltas */    \
  X(strata_recomputed) /* incremental: strata cleared and re-derived */ \
  X(strata_regrown)  /* incremental: grouping strata regrown per key */ \
  X(groups_built)    /* grouping partitions canonicalized + interned */ \
  X(groups_reused)   /* grouping partitions reused from the group cache */ \
  X(group_regrows)   /* partitions regrown in place by kGroupRegrow */  \
  X(set_interns)     /* distinct set terms interned by this evaluation */ \
  X(strata_overdeleted) /* incremental: strata taken through DRed over-delete */ \
  X(rederive_rounds) /* DRed: rederivation fixpoint rounds */           \
  X(count_decrements) /* deletion fast path: derivation-count decrements */ \
  X(plans_reordered) /* cost-based orders adopted that differ from syntactic */ \
  X(replans)         /* delta variants switched orders mid-fixpoint */

struct EvalStats {
#define LDL_EVAL_STATS_DECLARE(name) size_t name = 0;
  LDL_EVAL_STATS_FIELDS(LDL_EVAL_STATS_DECLARE)
#undef LDL_EVAL_STATS_DECLARE

  void Add(const EvalStats& other) {
#define LDL_EVAL_STATS_ADD(name) name += other.name;
    LDL_EVAL_STATS_FIELDS(LDL_EVAL_STATS_ADD)
#undef LDL_EVAL_STATS_ADD
  }

  // Visits ("name", value) for every counter, in declaration order.
  template <typename Fn>
  void ForEachField(Fn&& fn) const {
#define LDL_EVAL_STATS_VISIT(name) fn(#name, name);
    LDL_EVAL_STATS_FIELDS(LDL_EVAL_STATS_VISIT)
#undef LDL_EVAL_STATS_VISIT
  }
};

// --- Static boundness analysis ------------------------------------------
//
// Shared between the syntactic orderer below and the cost-based planner
// (eval/cost.h); both must agree on when a literal is evaluable so the two
// modes reject exactly the same rules.

// True when every variable of `t` appears in `bound`.
bool TermVarsBound(const Term* t, const std::vector<Symbol>& bound);

// Static boundness propagation mirroring the runtime modes in builtins.cc
// (see also wellformed.cc): true when the built-in (or negated literal) has
// enough bound arguments to run. Positive relational literals are always
// ready.
bool LiteralStaticallyReady(const LiteralIr& literal,
                            const std::vector<Symbol>& bound);

// Adds every variable occurring in `literal`'s arguments to `bound`.
void BindLiteralVars(const LiteralIr& literal, std::vector<Symbol>* bound);

// Number of argument positions whose variables are all in `bound` (join
// selectivity heuristic).
int BoundArgCount(const LiteralIr& literal, const std::vector<Symbol>& bound);

// For each body literal of `rule`: if it is a negated relational literal,
// the variables it shares with the head or another literal (readiness only
// requires those; variables local to the literal are existential under the
// negation, paper §6 rule 5). Empty for every other literal.
std::vector<std::vector<Symbol>> NegationSharedVars(const RuleIr& rule);

// Computes the evaluation order for `rule`'s body. If forced_first >= 0 that
// literal occurrence is scheduled first (semi-naive delta variant).
// `initially_bound` seeds the boundness analysis (e.g. head variables bound
// by a top-down call pattern). Returns kNotWellFormed if no evaluable order
// exists (a built-in or negation never becomes ready).
StatusOr<std::vector<int>> OrderBodyLiterals(
    const Catalog& catalog, const RuleIr& rule, int forced_first = -1,
    const std::vector<Symbol>* initially_bound = nullptr);

class RuleEvaluator {
 public:
  // Yield for body solutions; return false to stop the enumeration.
  using SolutionFn = std::function<bool(const SolutionView&)>;

  // `order` must come from OrderBodyLiterals for the same rule. When `plan`
  // is null and `use_plan` is set, the evaluator compiles its own plan;
  // callers on the hot path pass a PlanCache-owned plan instead. With
  // `use_plan` false the legacy substitution interpreter runs (kept for
  // equivalence testing against the compiled executor).
  RuleEvaluator(TermFactory* factory, const RuleIr* rule, std::vector<int> order,
                BuiltinLimits limits = {},
                std::shared_ptr<const JoinPlan> plan = nullptr,
                bool use_plan = true);

  // Enumerates body solutions against `db`. `windows` is indexed by body
  // literal position (not evaluation order); empty means "full relation" for
  // every literal.
  Status ForEachSolution(const Database& db, const std::vector<LiteralWindow>& windows,
                         const SolutionFn& yield, EvalStats* stats);

  // Block-at-a-time enumeration through the batch kernels in eval/batch.h:
  // completed solutions arrive in TupleBlocks instead of one SolutionView
  // per callback. Requires a compiled plan (use_plan); solution order,
  // derivation multiplicity, and every EvalStats counter match
  // ForEachSolution exactly (DESIGN.md §12). The executor is built on first
  // use and reused across calls.
  Status ForEachBlock(const Database& db, const std::vector<LiteralWindow>& windows,
                      const BlockFn& sink, EvalStats* stats,
                      size_t block_rows = kDefaultBlockRows);

  // Like ForEachSolution, but starts from a pre-seeded substitution (e.g.
  // head variables bound from a tuple being rederived) and always runs the
  // legacy interpreter, whose generic unification honors the seed bindings.
  // `subst` is mutated during the enumeration; callers own its rollback.
  Status ForEachSolutionSeeded(const Database& db,
                               const std::vector<LiteralWindow>& windows,
                               Subst* subst, const SolutionFn& yield,
                               EvalStats* stats);

  // Builds the head fact for one solution. Uses the plan's precompiled slot
  // reads when the head is simple; otherwise instantiates the head patterns
  // through a substitution materialized from the view.
  InstantiationResult InstantiateHead(const SolutionView& view) const;

  const RuleIr& rule() const { return *rule_; }
  // Null on the legacy interpreter path.
  const JoinPlan* plan() const { return plan_.get(); }
  bool has_plan() const { return plan_ != nullptr; }

 private:
  Status EvalFrom(const Database& db, const std::vector<LiteralWindow>& windows,
                  size_t depth, Subst* subst, const SolutionFn& yield,
                  EvalStats* stats, bool* keep_going);

  Status ExecStep(const Database& db, const std::vector<LiteralWindow>& windows,
                  size_t depth, const SolutionFn& yield, EvalStats* stats,
                  bool* keep_going);

  TermFactory* factory_;
  const RuleIr* rule_;
  std::vector<int> order_;
  BuiltinLimits limits_;
  std::shared_ptr<const JoinPlan> plan_;  // null => legacy interpreter
  std::vector<const Term*> slots_;        // plan executor bindings
  std::unique_ptr<BlockExecutor> batch_;  // built on first ForEachBlock
};

}  // namespace ldl

#endif  // LDL1_EVAL_RULE_EVAL_H_
