// Rule body evaluation: a backtracking nested-loop join with sideways
// information passing over the database.
//
// Body literals are statically reordered so that built-ins run as soon as
// their inputs are bound and negated literals run once fully ground
// (negation-as-failure against completed lower strata). Positive literals
// use per-column hash indexes when a probe argument is ground under the
// current bindings.
#ifndef LDL1_EVAL_RULE_EVAL_H_
#define LDL1_EVAL_RULE_EVAL_H_

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "base/status.h"
#include "eval/builtins.h"
#include "eval/relation.h"
#include "program/ir.h"
#include "term/term_ops.h"

namespace ldl {

// Row-id window restricting which facts a body literal occurrence sees.
// Semi-naive evaluation points one occurrence at a delta window.
struct LiteralWindow {
  size_t from = 0;
  size_t to = std::numeric_limits<size_t>::max();
};

struct EvalStats {
  size_t iterations = 0;        // fixpoint rounds
  size_t rule_firings = 0;      // rule (variant) applications
  size_t solutions = 0;         // body solutions found
  size_t facts_derived = 0;     // new facts inserted
  size_t tuples_matched = 0;    // candidate tuples fed to the matcher
  size_t index_probes = 0;

  void Add(const EvalStats& other) {
    iterations += other.iterations;
    rule_firings += other.rule_firings;
    solutions += other.solutions;
    facts_derived += other.facts_derived;
    tuples_matched += other.tuples_matched;
    index_probes += other.index_probes;
  }
};

// Computes the evaluation order for `rule`'s body. If forced_first >= 0 that
// literal occurrence is scheduled first (semi-naive delta variant).
// `initially_bound` seeds the boundness analysis (e.g. head variables bound
// by a top-down call pattern). Returns kNotWellFormed if no evaluable order
// exists (a built-in or negation never becomes ready).
StatusOr<std::vector<int>> OrderBodyLiterals(
    const Catalog& catalog, const RuleIr& rule, int forced_first = -1,
    const std::vector<Symbol>* initially_bound = nullptr);

class RuleEvaluator {
 public:
  // `order` must come from OrderBodyLiterals for the same rule.
  RuleEvaluator(TermFactory* factory, const RuleIr* rule, std::vector<int> order,
                BuiltinLimits limits = {});

  // Enumerates body solutions against `db`. `windows` is indexed by body
  // literal position (not evaluation order); empty means "full relation" for
  // every literal. `yield` returns false to stop the enumeration early.
  Status ForEachSolution(const Database& db, const std::vector<LiteralWindow>& windows,
                         const std::function<bool(const Subst&)>& yield,
                         EvalStats* stats);

  const RuleIr& rule() const { return *rule_; }

 private:
  Status EvalFrom(const Database& db, const std::vector<LiteralWindow>& windows,
                  size_t depth, Subst* subst,
                  const std::function<bool(const Subst&)>& yield, EvalStats* stats,
                  bool* keep_going);

  TermFactory* factory_;
  const RuleIr* rule_;
  std::vector<int> order_;
  BuiltinLimits limits_;
};

}  // namespace ldl

#endif  // LDL1_EVAL_RULE_EVAL_H_
