// Rule body evaluation: a backtracking nested-loop join with sideways
// information passing over the database.
//
// Body literals are statically reordered so that built-ins run as soon as
// their inputs are bound and negated literals run once fully ground
// (negation-as-failure against completed lower strata). By default the
// (rule, order) pair is compiled into a JoinPlan (see eval/plan.h): simple
// positive literals execute as probe-spec + match-program steps over a flat
// slot array, probing composite hash indexes on all statically bound
// columns; complex literals fall back to generic unification. The legacy
// substitution interpreter is kept behind a flag for equivalence testing.
#ifndef LDL1_EVAL_RULE_EVAL_H_
#define LDL1_EVAL_RULE_EVAL_H_

#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "base/status.h"
#include "eval/bindings.h"
#include "eval/builtins.h"
#include "eval/plan.h"
#include "eval/relation.h"
#include "program/ir.h"
#include "term/term_ops.h"

namespace ldl {

// Row-id window restricting which facts a body literal occurrence sees.
// Semi-naive evaluation points one occurrence at a delta window.
struct LiteralWindow {
  size_t from = 0;
  size_t to = std::numeric_limits<size_t>::max();
};

struct EvalStats {
  size_t iterations = 0;        // fixpoint rounds
  size_t rule_firings = 0;      // rule (variant) applications
  size_t solutions = 0;         // body solutions found
  size_t facts_derived = 0;     // new facts inserted
  size_t tuples_matched = 0;    // candidate tuples fed to the matcher
  size_t index_probes = 0;      // index lookups issued
  size_t probe_hits = 0;        // rows returned by index lookups
  size_t plan_cache_hits = 0;   // compiled-plan cache hits

  void Add(const EvalStats& other) {
    iterations += other.iterations;
    rule_firings += other.rule_firings;
    solutions += other.solutions;
    facts_derived += other.facts_derived;
    tuples_matched += other.tuples_matched;
    index_probes += other.index_probes;
    probe_hits += other.probe_hits;
    plan_cache_hits += other.plan_cache_hits;
  }
};

// Computes the evaluation order for `rule`'s body. If forced_first >= 0 that
// literal occurrence is scheduled first (semi-naive delta variant).
// `initially_bound` seeds the boundness analysis (e.g. head variables bound
// by a top-down call pattern). Returns kNotWellFormed if no evaluable order
// exists (a built-in or negation never becomes ready).
StatusOr<std::vector<int>> OrderBodyLiterals(
    const Catalog& catalog, const RuleIr& rule, int forced_first = -1,
    const std::vector<Symbol>* initially_bound = nullptr);

class RuleEvaluator {
 public:
  // Yield for body solutions; return false to stop the enumeration.
  using SolutionFn = std::function<bool(const SolutionView&)>;

  // `order` must come from OrderBodyLiterals for the same rule. When `plan`
  // is null and `use_plan` is set, the evaluator compiles its own plan;
  // callers on the hot path pass a PlanCache-owned plan instead. With
  // `use_plan` false the legacy substitution interpreter runs (kept for
  // equivalence testing against the compiled executor).
  RuleEvaluator(TermFactory* factory, const RuleIr* rule, std::vector<int> order,
                BuiltinLimits limits = {},
                std::shared_ptr<const JoinPlan> plan = nullptr,
                bool use_plan = true);

  // Enumerates body solutions against `db`. `windows` is indexed by body
  // literal position (not evaluation order); empty means "full relation" for
  // every literal.
  Status ForEachSolution(const Database& db, const std::vector<LiteralWindow>& windows,
                         const SolutionFn& yield, EvalStats* stats);

  // Builds the head fact for one solution. Uses the plan's precompiled slot
  // reads when the head is simple; otherwise instantiates the head patterns
  // through a substitution materialized from the view.
  InstantiationResult InstantiateHead(const SolutionView& view) const;

  const RuleIr& rule() const { return *rule_; }
  // Null on the legacy interpreter path.
  const JoinPlan* plan() const { return plan_.get(); }

 private:
  Status EvalFrom(const Database& db, const std::vector<LiteralWindow>& windows,
                  size_t depth, Subst* subst, const SolutionFn& yield,
                  EvalStats* stats, bool* keep_going);

  Status ExecStep(const Database& db, const std::vector<LiteralWindow>& windows,
                  size_t depth, const SolutionFn& yield, EvalStats* stats,
                  bool* keep_going);

  TermFactory* factory_;
  const RuleIr* rule_;
  std::vector<int> order_;
  BuiltinLimits limits_;
  std::shared_ptr<const JoinPlan> plan_;  // null => legacy interpreter
  std::vector<const Term*> slots_;        // plan executor bindings
};

}  // namespace ldl

#endif  // LDL1_EVAL_RULE_EVAL_H_
