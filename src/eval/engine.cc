#include "eval/engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "base/str_util.h"
#include "eval/bindings.h"
#include "eval/cost.h"
#include "program/impact.h"
#include "term/unify.h"

namespace ldl {

namespace {

// Delta windows below this row count are not worth sharding: the per-task
// dispatch overhead would exceed the join work.
constexpr size_t kMinShardRows = 64;

// Body literal occurrences whose predicate is in `idb` (candidates for
// semi-naive delta positioning).
std::vector<int> RecursiveOccurrences(const RuleIr& rule,
                                      const std::vector<bool>& idb) {
  std::vector<int> result;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const LiteralIr& literal = rule.body[i];
    if (!literal.is_builtin() && !literal.negated && literal.pred < idb.size() &&
        idb[literal.pred]) {
      result.push_back(static_cast<int>(i));
    }
  }
  return result;
}

// Rounds a cardinality estimate into a profile counter (est_rows).
uint64_t EstimateToCounter(double est) {
  if (!(est > 0.0)) return 0;  // also filters NaN
  return static_cast<uint64_t>(std::llround(std::min(est, 9e18)));
}

// Folds the counters a RuleEvaluator run collected into the rule's profile
// entry (the EvalStats fields that have a per-rule meaning).
void AttributeStats(RuleProfileEntry* entry, const EvalStats& run) {
  RuleProfile& counters = entry->counters;
  counters.solutions += run.solutions;
  counters.facts_derived += run.facts_derived;
  counters.tuples_matched += run.tuples_matched;
  counters.index_probes += run.index_probes;
  counters.probe_hits += run.probe_hits;
  counters.groups_built += run.groups_built;
  counters.groups_reused += run.groups_reused;
  counters.group_regrows += run.group_regrows;
}

// Accumulates the factory's set-intern delta across a scope into
// EvalStats::set_interns. The count of *distinct* sets interned by an
// evaluation is determined by the computed model, not by scheduling, so the
// counter stays inside the serial == parallel determinism contract.
class ScopedSetInternCounter {
 public:
  ScopedSetInternCounter(const TermFactory* factory, EvalStats* stats)
      : factory_(factory), stats_(stats),
        before_(factory->set_interned_count()) {}
  ~ScopedSetInternCounter() {
    stats_->set_interns += factory_->set_interned_count() - before_;
  }

 private:
  const TermFactory* factory_;
  EvalStats* stats_;
  size_t before_;
};

// Enumerates `evaluator`'s body solutions into `produced`, one head row per
// solution, using the batch pipeline when `options.batch` is on and the
// evaluator has a compiled plan, the scalar executor otherwise. Both paths
// buffer productions -- inserting while enumerating would invalidate row
// references for self-recursive rules -- and both skip outside-U heads.
// Simple heads on the batch path are built straight from plan slots
// (EmitHeadBlock); complex heads instantiate per row through a SolutionView
// over the block row, exactly as the scalar path does.
Status EnumerateIntoRows(RuleEvaluator& evaluator, const Database& db,
                         const std::vector<LiteralWindow>& windows,
                         const EvalOptions& options, RowBuffer* produced,
                         EvalStats* stats) {
  Status inner;
  Status status;
  if (options.batch && evaluator.has_plan()) {
    const JoinPlan& plan = *evaluator.plan();
    status = evaluator.ForEachBlock(
        db, windows,
        [&](const TupleBlock& block) {
          if (plan.head_simple()) {
            if (!EmitHeadBlock(plan, block, produced)) {
              inner = InternalError("head variable unbound in a body solution");
              return false;
            }
            return true;
          }
          for (uint32_t idx : block.sel()) {
            SolutionView view(&plan, {block.row(idx), block.width()});
            InstantiationResult inst = evaluator.InstantiateHead(view);
            if (inst.unbound) {
              inner = InternalError("head variable unbound in a body solution");
              return false;
            }
            if (!inst.outside_universe) produced->AppendRow(inst.tuple.data());
          }
          return true;
        },
        stats, options.batch_block_rows);
  } else {
    status = evaluator.ForEachSolution(
        db, windows,
        [&](const SolutionView& view) {
          InstantiationResult inst = evaluator.InstantiateHead(view);
          if (inst.unbound) {
            inner = InternalError("head variable unbound in a body solution");
            return false;
          }
          if (!inst.outside_universe) produced->AppendRow(inst.tuple.data());
          return true;
        },
        stats);
  }
  LDL_RETURN_IF_ERROR(status);
  return inner;
}

}  // namespace

RuleProfileEntry* Engine::ProfileEntry(EvalProfile* profile, const RuleIr& rule,
                                       int rule_index, int stratum) {
  if (profile == nullptr) return nullptr;
  RuleProfileEntry& entry = profile->EntryFor(rule_index, stratum);
  if (entry.label.empty()) {
    entry.label = FormatRuleLabel(*factory_, *catalog_, rule);
  }
  return &entry;
}

Status Engine::ApplyRule(const RuleIr& rule, const std::vector<int>& order,
                         const std::vector<LiteralWindow>& windows, Database* db,
                         const EvalOptions& options, EvalStats* stats,
                         bool* derived, RuleProfileEntry* entry) {
  // When profiling, counters collect into a rule-local EvalStats first so
  // this application's share can be attributed before folding into the
  // evaluation totals.
  EvalStats local_stats;
  EvalStats* s = entry != nullptr ? &local_stats : stats;
  ScopedWallTimer timer(entry != nullptr ? &entry->counters.wall_ns : nullptr);

  std::shared_ptr<const JoinPlan> plan;
  if (options.use_compiled_plans) {
    plan = plans_->Get(rule, order, &s->plan_cache_hits);
  }
  RuleEvaluator evaluator(factory_, &rule, order, options.builtin_limits,
                          std::move(plan), options.use_compiled_plans);
  ++s->rule_firings;

  RowBuffer produced(rule.head_args.size());
  LDL_RETURN_IF_ERROR(
      EnumerateIntoRows(evaluator, *db, windows, options, &produced, s));

  for (size_t i = 0; i < produced.size(); ++i) {
    if (db->AddFact(rule.head_pred, produced.row(i))) {
      *derived = true;
      ++s->facts_derived;
    }
  }
  if (entry != nullptr) {
    ++entry->counters.firings;
    AttributeStats(entry, local_stats);
    stats->Add(local_stats);
  }
  if (db->TotalFacts() > options.max_facts) {
    return ResourceExhaustedError(
        StrCat("database exceeded max_facts = ", options.max_facts,
               " (non-terminating program?)"));
  }
  return Status::OK();
}

Status Engine::ApplyGroupingRule(const RuleIr& rule, Database* db,
                                 const EvalOptions& options, EvalStats* stats,
                                 bool* derived,
                                 std::vector<GroupResult>* results_out,
                                 RuleProfileEntry* entry) {
  EvalStats local_stats;
  EvalStats* s = entry != nullptr ? &local_stats : stats;
  ScopedWallTimer timer(entry != nullptr ? &entry->counters.wall_ns : nullptr);

  // A grouping rule's body reads only strictly lower layers, which no rule
  // of this stratum mutates -- so the per-rule snapshot here prices the same
  // relations as the pre-stratum snapshot the parallel grouping path takes,
  // and both paths choose the same order.
  std::vector<int> order;
  if (options.cost_based) {
    LDL_ASSIGN_OR_RETURN(
        order, OrderBodyLiteralsCostBased(*catalog_, rule,
                                          CostModel::Snapshot(*db, *catalog_)));
  } else {
    LDL_ASSIGN_OR_RETURN(order, OrderBodyLiterals(*catalog_, rule));
  }
  std::shared_ptr<const JoinPlan> plan;
  if (options.use_compiled_plans) {
    plan = plans_->Get(rule, order, &s->plan_cache_hits);
  }
  RuleEvaluator evaluator(factory_, &rule, std::move(order), options.builtin_limits,
                          std::move(plan), options.use_compiled_plans);
  ++s->rule_firings;
  LDL_ASSIGN_OR_RETURN(std::vector<GroupResult> groups,
                       ComputeGroups(*factory_, evaluator, *db, s, nullptr,
                                     options.batch, options.batch_block_rows));
  for (const GroupResult& group : groups) {
    if (db->AddFact(rule.head_pred, group.fact)) {
      *derived = true;
      ++s->facts_derived;
    }
  }
  if (entry != nullptr) {
    ++entry->counters.firings;
    AttributeStats(entry, local_stats);
    stats->Add(local_stats);
  }
  if (results_out != nullptr) *results_out = std::move(groups);
  return Status::OK();
}

WorkerPool* Engine::EnsurePool(int num_threads) {
  if (pool_ == nullptr || pool_->thread_count() != num_threads) {
    pool_ = std::make_unique<WorkerPool>(num_threads);
  }
  return pool_.get();
}

Status Engine::RunTasksParallel(const std::vector<RuleTask>& tasks, Database* db,
                                const EvalOptions& options, EvalStats* stats,
                                bool* derived) {
  if (tasks.empty()) return Status::OK();
  // Pre-size the relation deque so const relation() lookups from workers
  // never mutate it; the round itself only reads the database.
  db->Grow();
  const Database& snapshot = *db;
  // Staged head rows per task: parallel delta shards are block streams into
  // flat row buffers the merge barrier drains in task order.
  std::vector<RowBuffer> produced;
  produced.reserve(tasks.size());
  for (const RuleTask& task : tasks) {
    produced.emplace_back(task.rule->head_args.size());
  }
  std::vector<EvalStats> task_stats(tasks.size());
  std::vector<Status> task_status(tasks.size(), Status::OK());
  // Per-task wall time, measured on the worker that ran the task (merged
  // into the rule's profile at the barrier below). Unused when profiling is
  // off -- the sink stays null and the timer never reads the clock.
  std::vector<uint64_t> task_wall(tasks.size(), 0);
  EnsurePool(options.num_threads)->Run(tasks.size(), [&](size_t i) {
    const RuleTask& task = tasks[i];
    EvalStats& local = task_stats[i];
    ScopedWallTimer timer(task.profile_entry != nullptr ? &task_wall[i]
                                                        : nullptr);
    // Plans were prefetched on the scheduling thread (one cache probe per
    // variant instead of one per worker); the evaluator itself is task-local.
    RuleEvaluator evaluator(factory_, task.rule, *task.order,
                            options.builtin_limits, task.plan,
                            options.use_compiled_plans);
    ++local.rule_firings;
    task_status[i] = EnumerateIntoRows(evaluator, snapshot, task.windows,
                                       options, &produced[i], &local);
  });
  // Merge barrier: single-threaded, in task order, so insertion order --
  // hence row ids, delta windows, and the final model -- is deterministic
  // and independent of worker scheduling. Profile attribution also happens
  // here (never on workers), so no entry is written concurrently.
  stats->parallel_tasks += tasks.size();
  for (size_t i = 0; i < tasks.size(); ++i) {
    LDL_RETURN_IF_ERROR(task_status[i]);
    stats->Add(task_stats[i]);
    size_t inserted = 0;
    for (size_t r = 0; r < produced[i].size(); ++r) {
      if (db->AddFact(tasks[i].rule->head_pred, produced[i].row(r))) {
        *derived = true;
        ++stats->facts_derived;
        ++inserted;
      }
    }
    if (RuleProfileEntry* entry = tasks[i].profile_entry; entry != nullptr) {
      RuleProfile& counters = entry->counters;
      if (tasks[i].counts_firing) ++counters.firings;
      counters.delta_rows += tasks[i].delta_rows;
      counters.wall_ns += task_wall[i];
      ++counters.parallel_tasks;
      counters.facts_derived += inserted;
      AttributeStats(entry, task_stats[i]);
      // AttributeStats folds the task's facts_derived too, but workers only
      // stage tuples -- their facts_derived is always zero; the real count
      // is `inserted`, added above.
    }
  }
  if (db->TotalFacts() > options.max_facts) {
    return ResourceExhaustedError(
        StrCat("database exceeded max_facts = ", options.max_facts,
               " (non-terminating program?)"));
  }
  return Status::OK();
}

Status Engine::Fixpoint(const ProgramIr& program, const std::vector<int>& rule_indices,
                        int stratum_index, Database* db, const EvalOptions& options,
                        EvalStats* stats, bool* derived_any, EvalProfile* profile,
                        const FixpointSeed* seed) {
  // IDB predicates of this fixpoint: heads of the participating rules.
  std::vector<bool> idb(catalog_->size(), false);
  for (int r : rule_indices) idb[program.rules[r].head_pred] = true;

  // Delta carriers: the IDB heads, plus the seed's externally changed
  // predicates when resuming incrementally.
  std::vector<bool> delta_preds = idb;
  if (seed != nullptr) {
    for (PredId p = 0; p < delta_preds.size() && p < seed->delta_preds->size();
         ++p) {
      if ((*seed->delta_preds)[p]) delta_preds[p] = true;
    }
  }
  // A seeded resume always runs the semi-naive machinery: the model is
  // already a fixpoint over the pre-update inputs, so only the delta rows
  // can produce anything new.
  const bool seminaive =
      options.mode == EvalOptions::Mode::kSemiNaive || seed != nullptr;

  const bool parallel = options.num_threads > 1;

  struct Compiled {
    const RuleIr* rule;
    std::vector<int> default_order;
    std::shared_ptr<const JoinPlan> default_plan;  // prefetched when parallel
    // (occurrence, order) pairs for semi-naive delta variants.
    std::vector<std::pair<int, std::vector<int>>> delta_variants;
    std::vector<std::shared_ptr<const JoinPlan>> delta_plans;  // parallel only
    // Whether each variant has an ordering choice at all: with fewer than
    // two positive literals besides the pinned occurrence there is nothing
    // to reorder, and the per-round replanning pass (snapshot + re-cost)
    // skips the variant -- this keeps the planner's per-round overhead at
    // zero for the common linear-recursion shape.
    std::vector<bool> replannable;
    // Profile entry (null when profiling is off); cached across rounds, so
    // the profile's rule table must not reallocate (ReserveRules).
    RuleProfileEntry* entry = nullptr;
  };
  // Entry-time cost model for the initial order choice. Taken before round
  // 0 touches the database, on the scheduling thread, so serial and
  // parallel evaluations plan from the same snapshot. Seeded resumes (the
  // incremental insert/delete paths) always order syntactically: their
  // windows are tiny, so per-call planning would dominate the
  // microsecond-scale maintenance work it is meant to save.
  const bool cost_based = options.cost_based && seed == nullptr;
  CostModel entry_model;
  if (cost_based) entry_model = CostModel::Snapshot(*db, *catalog_);
  auto choose_order = [&](const RuleIr& rule,
                          int forced) -> StatusOr<std::vector<int>> {
    if (!cost_based) return OrderBodyLiterals(*catalog_, rule, forced);
    StatusOr<std::vector<int>> order =
        OrderBodyLiteralsCostBased(*catalog_, rule, entry_model, forced);
    if (order.ok()) {
      // Observability: count adopted cost-based orders that differ from
      // what the syntactic heuristic would have picked.
      StatusOr<std::vector<int>> syntactic =
          OrderBodyLiterals(*catalog_, rule, forced);
      if (syntactic.ok() && syntactic.value() != order.value()) {
        ++stats->plans_reordered;
      }
    }
    return order;
  };

  std::vector<Compiled> compiled;
  compiled.reserve(rule_indices.size());
  for (int r : rule_indices) {
    const RuleIr& rule = program.rules[r];
    Compiled c;
    c.rule = &rule;
    c.entry = ProfileEntry(profile, rule, r, stratum_index);
    LDL_ASSIGN_OR_RETURN(c.default_order, choose_order(rule, -1));
    if (c.entry != nullptr && cost_based) {
      // Round 0 applies the default order over the full database; log its
      // estimate so mis-estimates show up next to `solutions`.
      c.entry->counters.est_rows += EstimateToCounter(
          EstimateOrderCost(rule, c.default_order, entry_model).out_rows);
    }
    if (seminaive) {
      int positives = 0;
      for (const LiteralIr& literal : rule.body) {
        if (!literal.is_builtin() && !literal.negated) ++positives;
      }
      for (int occurrence : RecursiveOccurrences(rule, delta_preds)) {
        c.replannable.push_back(positives >= 3);
        StatusOr<std::vector<int>> order = choose_order(rule, occurrence);
        if (!order.ok()) {
          // Windows bind to body positions, not evaluation slots, so the
          // default order stays correct for any delta occurrence; forcing
          // the occurrence first is only a join-ordering optimization. Fall
          // back when a seeded occurrence (e.g. an EDB predicate the
          // default analysis never fronts) has no evaluable forced order.
          if (seed == nullptr) return order.status();
          c.delta_variants.emplace_back(occurrence, c.default_order);
          continue;
        }
        c.delta_variants.emplace_back(occurrence, std::move(order).value());
      }
    }
    if (parallel && options.use_compiled_plans) {
      // PlanCache is not thread-safe; resolve every plan a worker could need
      // up front on this thread.
      c.default_plan =
          plans_->Get(rule, c.default_order, &stats->plan_cache_hits);
      for (const auto& [occurrence, order] : c.delta_variants) {
        c.delta_plans.push_back(
            plans_->Get(rule, order, &stats->plan_cache_hits));
      }
    }
    compiled.push_back(std::move(c));
  }

  // Low watermarks: from scratch, round 0 consumes everything and the
  // deltas start at the pre-round row counts; a seeded resume starts each
  // delta carrier at its previous-evaluation watermark so the first round
  // consumes exactly the inserted rows.
  std::vector<size_t> low(catalog_->size(), 0);
  for (PredId p = 0; p < catalog_->size(); ++p) {
    if (!delta_preds[p]) continue;
    if (seed != nullptr) {
      size_t mark =
          p < seed->watermarks->size() ? (*seed->watermarks)[p] : 0;
      low[p] = std::min(mark, db->relation(p).row_count());
    } else if (seminaive) {
      low[p] = db->relation(p).row_count();
    }
  }
  // Full-application task list (round 0 and every naive round).
  auto full_round_tasks = [&compiled]() {
    std::vector<RuleTask> tasks;
    tasks.reserve(compiled.size());
    for (const Compiled& c : compiled) {
      tasks.push_back({c.rule, &c.default_order, c.default_plan, {}, c.entry,
                       /*counts_firing=*/true, /*delta_rows=*/0});
    }
    return tasks;
  };
  // Serial counterpart of a parallel full round: every rule applied against
  // explicit [0, row_count) round-start windows, so rule N never sees rule
  // N-1's (or its own) same-round inserts. This is exactly the snapshot the
  // parallel path reads, which keeps firing and round counts -- hence
  // profiles -- identical across pool widths.
  auto serial_full_round = [&](bool* derived) -> Status {
    std::vector<size_t> snap(catalog_->size());
    for (PredId p = 0; p < catalog_->size(); ++p) {
      snap[p] = db->relation(p).row_count();
    }
    for (const Compiled& c : compiled) {
      std::vector<LiteralWindow> windows(c.rule->body.size());
      for (size_t i = 0; i < c.rule->body.size(); ++i) {
        const LiteralIr& literal = c.rule->body[i];
        if (!literal.is_builtin() && !literal.negated) {
          windows[i] = {0, snap[literal.pred]};
        }
      }
      LDL_RETURN_IF_ERROR(ApplyRule(*c.rule, c.default_order, windows, db,
                                    options, stats, derived, c.entry));
    }
    return Status::OK();
  };

  bool derived = false;
  if (seed == nullptr) {
    // Round 0: every rule over the full database. A seeded resume skips it;
    // the database already holds the pre-update fixpoint.
    if (parallel) {
      LDL_RETURN_IF_ERROR(
          RunTasksParallel(full_round_tasks(), db, options, stats, &derived));
    } else {
      LDL_RETURN_IF_ERROR(serial_full_round(&derived));
    }
    *derived_any = *derived_any || derived;
    ++stats->iterations;
  }

  if (!seminaive) {
    while (derived) {
      if (stats->iterations >= options.max_rounds) {
        return ResourceExhaustedError("fixpoint exceeded max_rounds");
      }
      derived = false;
      if (parallel) {
        LDL_RETURN_IF_ERROR(
            RunTasksParallel(full_round_tasks(), db, options, stats, &derived));
      } else {
        LDL_RETURN_IF_ERROR(serial_full_round(&derived));
      }
      *derived_any = *derived_any || derived;
      ++stats->iterations;
    }
    return Status::OK();
  }

  // Semi-naive rounds: one body occurrence ranges over the delta window,
  // everything else over the full relation.
  for (;;) {
    if (stats->iterations >= options.max_rounds) {
      return ResourceExhaustedError("fixpoint exceeded max_rounds");
    }
    // Snapshot delta windows [low, high) per predicate.
    std::vector<size_t> high(catalog_->size(), 0);
    bool any_delta = false;
    for (PredId p = 0; p < catalog_->size(); ++p) {
      if (!delta_preds[p]) continue;
      high[p] = db->relation(p).row_count();
      if (high[p] > low[p]) any_delta = true;
    }
    if (!any_delta) break;

    // Adaptive replanning: delta windows have wildly different
    // cardinalities than the full relations the entry-time orders were
    // priced against, and the balance drifts as the fixpoint grows the IDB.
    // Re-cost each live delta variant against this round's window sizes
    // ([low, high) for the pinned occurrence, [0, low) for later carriers)
    // and switch its order when the current one is estimated at more than
    // replan_cost_ratio times the best. Every input is a round-start
    // snapshot read on the scheduling thread, so serial and parallel runs
    // replan identically and determinism is preserved.
    // Variants with no ordering choice (fewer than two movable positives)
    // are skipped wholesale; when none qualifies the snapshot is never
    // taken, so linear recursion pays nothing per round.
    bool any_replannable = false;
    if (cost_based) {
      for (const Compiled& c : compiled) {
        for (size_t v = 0; v < c.delta_variants.size(); ++v) {
          if (c.replannable[v]) any_replannable = true;
        }
      }
    }
    if (cost_based && any_replannable) {
      CostModel round_model = CostModel::Snapshot(*db, *catalog_);
      std::vector<double> literal_rows;  // per body position; < 0 = model
      for (Compiled& c : compiled) {
        for (size_t v = 0; v < c.delta_variants.size(); ++v) {
          if (!c.replannable[v]) continue;
          auto& [occurrence, order] = c.delta_variants[v];
          PredId delta_pred = c.rule->body[occurrence].pred;
          if (high[delta_pred] <= low[delta_pred]) continue;
          literal_rows.assign(c.rule->body.size(), -1.0);
          for (size_t i = 0; i < c.rule->body.size(); ++i) {
            const LiteralIr& literal = c.rule->body[i];
            if (literal.is_builtin() || literal.negated) continue;
            if (static_cast<int>(i) > occurrence &&
                literal.pred < delta_preds.size() &&
                delta_preds[literal.pred]) {
              literal_rows[i] = static_cast<double>(low[literal.pred]);
            }
          }
          literal_rows[occurrence] =
              static_cast<double>(high[delta_pred] - low[delta_pred]);
          OrderCost current_cost =
              EstimateOrderCost(*c.rule, order, round_model, &literal_rows);
          StatusOr<std::vector<int>> best = OrderBodyLiteralsCostBased(
              *catalog_, *c.rule, round_model, occurrence,
              /*initially_bound=*/nullptr, &literal_rows);
          // A failed forced order keeps the current (fallback) one.
          if (best.ok() && best.value() != order) {
            OrderCost best_cost = EstimateOrderCost(*c.rule, best.value(),
                                                    round_model, &literal_rows);
            if (current_cost.total_work >
                options.replan_cost_ratio * best_cost.total_work) {
              order = std::move(best).value();
              current_cost = best_cost;
              ++stats->replans;
              if (parallel && options.use_compiled_plans) {
                c.delta_plans[v] =
                    plans_->Get(*c.rule, order, &stats->plan_cache_hits);
              }
            }
          }
          if (c.entry != nullptr) {
            c.entry->counters.est_rows +=
                EstimateToCounter(current_cost.out_rows);
          }
        }
      }
    }

    derived = false;
    if (parallel) {
      // Build this round's task list: one task per live delta variant, with
      // large delta windows sharded by row range so one hot predicate still
      // spreads across the pool.
      std::vector<RuleTask> tasks;
      for (const Compiled& c : compiled) {
        for (size_t v = 0; v < c.delta_variants.size(); ++v) {
          const auto& [occurrence, order] = c.delta_variants[v];
          PredId delta_pred = c.rule->body[occurrence].pred;
          size_t from = low[delta_pred];
          size_t to = high[delta_pred];
          if (to <= from) continue;
          std::shared_ptr<const JoinPlan> plan =
              c.delta_plans.empty() ? nullptr : c.delta_plans[v];
          size_t rows = to - from;
          size_t shards = 1;
          if (rows >= kMinShardRows) {
            shards = std::min<size_t>(
                static_cast<size_t>(options.num_threads) * 2,
                (rows + kMinShardRows - 1) / kMinShardRows);
          }
          if (shards > 1) stats->delta_shards += shards;
          size_t chunk = (rows + shards - 1) / shards;
          for (size_t s = 0; s < shards; ++s) {
            size_t shard_from = from + s * chunk;
            size_t shard_to = std::min(to, shard_from + chunk);
            if (shard_from >= shard_to) break;
            std::vector<LiteralWindow> windows(c.rule->body.size());
            // Exact decomposition, mirroring the serial path: carrier
            // positions after the pinned occurrence see only pre-round rows
            // so each multi-delta solution is enumerated by exactly one
            // variant. Other positions keep the default full window -- the
            // round reads an immutable snapshot, so "full" is the
            // round-start state.
            for (size_t i = occurrence + 1; i < c.rule->body.size(); ++i) {
              const LiteralIr& literal = c.rule->body[i];
              if (!literal.is_builtin() && !literal.negated &&
                  literal.pred < delta_preds.size() &&
                  delta_preds[literal.pred]) {
                windows[i] = {0, low[literal.pred]};
              }
            }
            windows[occurrence] = {shard_from, shard_to};
            // Only the variant's first shard counts as a firing; delta_rows
            // is per shard and sums to the variant's window, so both stay
            // independent of the shard split.
            tasks.push_back({c.rule, &order, plan, std::move(windows), c.entry,
                             /*counts_firing=*/s == 0,
                             /*delta_rows=*/shard_to - shard_from});
          }
        }
      }
      LDL_RETURN_IF_ERROR(RunTasksParallel(tasks, db, options, stats, &derived));
    } else {
      // Round-start snapshot for the non-delta occurrences: the parallel
      // path reads an immutable pre-round database, so the serial windows
      // pin every positive literal to [0, row_count-at-round-start) (the
      // delta occurrence to its [low, high) slice) to match.
      //
      // Exact decomposition across delta carriers: when several body
      // positions carry deltas, the variant pinning occurrence i gives
      // carrier positions *before* i the full round-start window (NEW) and
      // carrier positions *after* i only the pre-round rows (OLD,
      // [0, low)). Every solution touching >= 1 delta row is then found by
      // exactly one variant -- the one pinning its *first* delta position --
      // so derivation counts stay exact under multi-delta joins.
      std::vector<size_t> snap(catalog_->size());
      for (PredId p = 0; p < catalog_->size(); ++p) {
        snap[p] = db->relation(p).row_count();
      }
      for (const Compiled& c : compiled) {
        for (const auto& [occurrence, order] : c.delta_variants) {
          PredId delta_pred = c.rule->body[occurrence].pred;
          if (high[delta_pred] <= low[delta_pred]) continue;
          std::vector<LiteralWindow> windows(c.rule->body.size());
          for (size_t i = 0; i < c.rule->body.size(); ++i) {
            const LiteralIr& literal = c.rule->body[i];
            if (!literal.is_builtin() && !literal.negated) {
              const bool carrier = literal.pred < delta_preds.size() &&
                                   delta_preds[literal.pred];
              windows[i] = carrier && static_cast<int>(i) > occurrence
                               ? LiteralWindow{0, low[literal.pred]}
                               : LiteralWindow{0, snap[literal.pred]};
            }
          }
          windows[occurrence] = {low[delta_pred], high[delta_pred]};
          if (c.entry != nullptr) {
            c.entry->counters.delta_rows += high[delta_pred] - low[delta_pred];
          }
          LDL_RETURN_IF_ERROR(ApplyRule(*c.rule, order, windows, db, options,
                                        stats, &derived, c.entry));
        }
      }
    }
    for (PredId p = 0; p < catalog_->size(); ++p) {
      if (delta_preds[p]) low[p] = high[p];
    }
    *derived_any = *derived_any || derived;
    ++stats->iterations;
    if (!derived) {
      // No new facts this round; remaining deltas (rows added late in the
      // round) still need one more pass, which the loop header handles via
      // the watermark comparison.
      continue;
    }
  }
  return Status::OK();
}

Status Engine::EvaluateStratum(const ProgramIr& program, const std::vector<int>& rules,
                               int stratum_index, Database* db,
                               const EvalOptions& options, EvalStats* stats,
                               EvalProfile* profile) {
  // Stratum rollup: wall time over the whole stratum, plus the deltas the
  // stratum contributes to the round/fact/task totals.
  uint64_t stratum_wall = 0;
  ScopedWallTimer stratum_timer(profile != nullptr ? &stratum_wall : nullptr);
  const uint64_t rounds_before = stats->iterations;
  const uint64_t facts_before = stats->facts_derived;
  const uint64_t tasks_before = stats->parallel_tasks;

  std::vector<int> grouping_rules;
  std::vector<int> normal_rules;
  bool derived = false;
  for (int r : rules) {
    const RuleIr& rule = program.rules[r];
    if (rule.is_fact()) {
      InstantiationResult inst = InstantiateArgs(*factory_, rule.head_args, Subst());
      if (inst.unbound) {
        return NotWellFormedError("fact with unbound variables");
      }
      RuleProfileEntry* entry = ProfileEntry(profile, rule, r, stratum_index);
      if (entry != nullptr) ++entry->counters.firings;
      if (!inst.outside_universe && db->AddFact(rule.head_pred, inst.tuple)) {
        ++stats->facts_derived;
        if (entry != nullptr) ++entry->counters.facts_derived;
      }
    } else if (rule.is_grouping()) {
      grouping_rules.push_back(r);
    } else {
      normal_rules.push_back(r);
    }
  }

  // Lemma 3.2.3: grouping rules fire once, over the stratum's input model
  // (their bodies depend only on strictly lower layers). With several
  // grouping rules and a pool available, their group computations -- which
  // only read the input model -- run concurrently; inserts happen at the
  // barrier in rule order, exactly as the serial loop would.
  if (options.num_threads > 1 && grouping_rules.size() > 1) {
    struct GroupTask {
      const RuleIr* rule;
      std::vector<int> order;
      std::shared_ptr<const JoinPlan> plan;
      RuleProfileEntry* entry;
    };
    std::vector<GroupTask> tasks;
    tasks.reserve(grouping_rules.size());
    CostModel group_model;
    if (options.cost_based) group_model = CostModel::Snapshot(*db, *catalog_);
    for (int r : grouping_rules) {
      const RuleIr& rule = program.rules[r];
      GroupTask task{&rule, {}, nullptr,
                     ProfileEntry(profile, rule, r, stratum_index)};
      if (options.cost_based) {
        LDL_ASSIGN_OR_RETURN(
            task.order, OrderBodyLiteralsCostBased(*catalog_, rule, group_model));
      } else {
        LDL_ASSIGN_OR_RETURN(task.order, OrderBodyLiterals(*catalog_, rule));
      }
      if (options.use_compiled_plans) {
        task.plan = plans_->Get(rule, task.order, &stats->plan_cache_hits);
      }
      tasks.push_back(std::move(task));
    }
    db->Grow();
    const Database& snapshot = *db;
    std::vector<std::vector<GroupResult>> groups(tasks.size());
    std::vector<EvalStats> task_stats(tasks.size());
    std::vector<Status> task_status(tasks.size(), Status::OK());
    std::vector<uint64_t> task_wall(tasks.size(), 0);
    EnsurePool(options.num_threads)->Run(tasks.size(), [&](size_t i) {
      const GroupTask& task = tasks[i];
      ScopedWallTimer timer(task.entry != nullptr ? &task_wall[i] : nullptr);
      RuleEvaluator evaluator(factory_, task.rule, task.order,
                              options.builtin_limits, task.plan,
                              options.use_compiled_plans);
      ++task_stats[i].rule_firings;
      StatusOr<std::vector<GroupResult>> result =
          ComputeGroups(*factory_, evaluator, snapshot, &task_stats[i], nullptr,
                        options.batch, options.batch_block_rows);
      if (result.ok()) {
        groups[i] = std::move(result).value();
      } else {
        task_status[i] = result.status();
      }
    });
    stats->parallel_tasks += tasks.size();
    for (size_t i = 0; i < tasks.size(); ++i) {
      LDL_RETURN_IF_ERROR(task_status[i]);
      stats->Add(task_stats[i]);
      size_t inserted = 0;
      for (const GroupResult& group : groups[i]) {
        if (db->AddFact(tasks[i].rule->head_pred, group.fact)) {
          derived = true;
          ++stats->facts_derived;
          ++inserted;
        }
      }
      if (RuleProfileEntry* entry = tasks[i].entry; entry != nullptr) {
        ++entry->counters.firings;
        entry->counters.wall_ns += task_wall[i];
        ++entry->counters.parallel_tasks;
        entry->counters.facts_derived += inserted;
        AttributeStats(entry, task_stats[i]);
      }
    }
  } else {
    for (int r : grouping_rules) {
      LDL_RETURN_IF_ERROR(ApplyGroupingRule(
          program.rules[r], db, options, stats, &derived, nullptr,
          ProfileEntry(profile, program.rules[r], r, stratum_index)));
    }
  }
  if (!normal_rules.empty()) {
    LDL_RETURN_IF_ERROR(Fixpoint(program, normal_rules, stratum_index, db,
                                 options, stats, &derived, profile));
  }
  if (profile != nullptr) {
    stratum_timer.Stop();
    StratumProfile rollup;
    rollup.stratum = stratum_index;
    rollup.wall_ns = stratum_wall;
    rollup.rounds = stats->iterations - rounds_before;
    rollup.facts_derived = stats->facts_derived - facts_before;
    rollup.parallel_tasks = stats->parallel_tasks - tasks_before;
    profile->strata().push_back(rollup);
  }
  return Status::OK();
}

Status Engine::EvaluateStratumDelta(const ProgramIr& program,
                                    const std::vector<int>& rules,
                                    int stratum_index, Database* db,
                                    const FixpointSeed& seed,
                                    const EvalOptions& options, EvalStats* stats,
                                    EvalProfile* profile) {
  uint64_t stratum_wall = 0;
  ScopedWallTimer stratum_timer(profile != nullptr ? &stratum_wall : nullptr);
  const uint64_t rounds_before = stats->iterations;
  const uint64_t facts_before = stats->facts_derived;
  const uint64_t tasks_before = stats->parallel_tasks;

  // Facts and grouping rules contribute nothing here: their inputs are
  // unchanged (a grouping rule with an affected body makes the whole
  // stratum kRecompute), so only the normal rules resume.
  std::vector<int> normal_rules;
  for (int r : rules) {
    const RuleIr& rule = program.rules[r];
    if (!rule.is_fact() && !rule.is_grouping()) normal_rules.push_back(r);
  }
  bool derived = false;
  if (!normal_rules.empty()) {
    LDL_RETURN_IF_ERROR(Fixpoint(program, normal_rules, stratum_index, db,
                                 options, stats, &derived, profile, &seed));
  }
  if (profile != nullptr) {
    stratum_timer.Stop();
    StratumProfile rollup;
    rollup.stratum = stratum_index;
    rollup.mode = StratumMode::kDelta;
    rollup.wall_ns = stratum_wall;
    rollup.rounds = stats->iterations - rounds_before;
    rollup.facts_derived = stats->facts_derived - facts_before;
    rollup.parallel_tasks = stats->parallel_tasks - tasks_before;
    profile->strata().push_back(rollup);
  }
  return Status::OK();
}

Status Engine::RegrowGroupingRule(const RuleIr& rule, Database* db,
                                  const FixpointSeed& seed,
                                  const EvalOptions& options, EvalStats* stats,
                                  bool* derived, RuleProfileEntry* entry) {
  EvalStats local_stats;
  EvalStats* s = entry != nullptr ? &local_stats : stats;
  ScopedWallTimer timer(entry != nullptr ? &entry->counters.wall_ns : nullptr);

  // Z = variables of the non-grouped head arguments, exactly as
  // ComputeGroups partitions (eval/grouping.cc). Instantiation through the
  // interner makes key -> non-group head values injective, so the key
  // identifies the one head fact to replace.
  std::vector<Symbol> z_vars;
  for (size_t i = 0; i < rule.head_args.size(); ++i) {
    if (static_cast<int>(i) == rule.group_index) continue;
    CollectVars(rule.head_args[i], &z_vars);
  }
  const Term* group_var_term = factory_->MakeVar(rule.group_var);

  struct DeltaPartition {
    Tuple head_values;                // instantiated head args (group slot
                                      // overwritten at reconciliation)
    TermFactory::SetBuilder members;  // freshly derived Y values
  };
  std::unordered_map<Tuple, DeltaPartition, TupleHash> partitions;

  // Delta enumeration (semi-naive completeness): any body solution that
  // involves at least one inserted row is found by the variant pinning that
  // occurrence to its [watermark, row_count) window. A solution seen by
  // several variants contributes duplicate members, which the set union
  // absorbs; solutions made only of pre-update rows are already reflected
  // in the materialized groups and are never re-enumerated.
  Tuple key;
  Status inner_status;
  for (size_t occurrence = 0; occurrence < rule.body.size(); ++occurrence) {
    const LiteralIr& occ_literal = rule.body[occurrence];
    if (occ_literal.is_builtin()) continue;  // eligibility bars negation
    PredId pred = occ_literal.pred;
    if (pred >= seed.delta_preds->size() || !(*seed.delta_preds)[pred]) {
      continue;
    }
    const size_t mark =
        pred < seed.watermarks->size() ? (*seed.watermarks)[pred] : 0;
    const size_t rows = db->relation(pred).row_count();
    if (mark >= rows) continue;

    // Fronting the delta occurrence is only a join-order optimization; fall
    // back to the default order when no forced order is evaluable.
    std::vector<int> order;
    StatusOr<std::vector<int>> forced =
        OrderBodyLiterals(*catalog_, rule, static_cast<int>(occurrence));
    if (forced.ok()) {
      order = std::move(forced).value();
    } else {
      LDL_ASSIGN_OR_RETURN(order, OrderBodyLiterals(*catalog_, rule));
    }
    std::shared_ptr<const JoinPlan> plan;
    if (options.use_compiled_plans) {
      plan = plans_->Get(rule, order, &s->plan_cache_hits);
    }
    RuleEvaluator evaluator(factory_, &rule, std::move(order),
                            options.builtin_limits, std::move(plan),
                            options.use_compiled_plans);
    ++s->rule_firings;

    std::vector<LiteralWindow> windows(rule.body.size());
    for (size_t j = 0; j < rule.body.size(); ++j) {
      const LiteralIr& literal = rule.body[j];
      if (!literal.is_builtin()) {
        windows[j] = {0, db->relation(literal.pred).row_count()};
      }
    }
    windows[occurrence] = {mark, rows};
    if (entry != nullptr) entry->counters.delta_rows += rows - mark;

    Status status = evaluator.ForEachSolution(
        *db, windows,
        [&](const SolutionView& view) {
          key.clear();
          key.reserve(z_vars.size());
          for (Symbol var : z_vars) {
            const Term* value = view.Lookup(var);
            if (value == nullptr || !value->ground()) {
              inner_status = InternalError(
                  "grouping key variable unbound in a body solution");
              return false;
            }
            key.push_back(value);
          }
          const Term* y;
          if (view.subst() == nullptr) {
            y = view.Lookup(rule.group_var);
            if (y == nullptr) {
              inner_status = InternalError(
                  "grouped variable unbound in a body solution");
              return false;
            }
          } else {
            bool y_ground = true;
            y = InstantiateGround(*factory_, group_var_term, *view.subst(),
                                  &y_ground);
            if (y == nullptr) {
              if (!y_ground) {
                inner_status = InternalError(
                    "grouped variable unbound in a body solution");
                return false;
              }
              return true;  // outside U: contributes no element
            }
          }
          auto it = partitions.find(key);
          if (it == partitions.end()) {
            InstantiationResult head = evaluator.InstantiateHead(view);
            if (head.unbound) {
              inner_status =
                  InternalError("head variable unbound under grouping");
              return false;
            }
            if (head.outside_universe) return true;
            DeltaPartition partition{std::move(head.tuple),
                                     TermFactory::SetBuilder(factory_)};
            partition.members.Add(y);
            partitions.emplace(std::move(key), std::move(partition));
            key = Tuple();
          } else {
            it->second.members.Add(y);
          }
          return true;
        },
        s);
    LDL_RETURN_IF_ERROR(status);
    LDL_RETURN_IF_ERROR(inner_status);
  }

  // Reconcile each affected partition against the materialized head fact:
  // union the delta members into the existing group (a merge over two
  // canonical sets), replacing the old row; a fresh key inserts a new
  // group. Untouched partitions are never visited -- that is the point.
  Relation& head_rel = db->relation(rule.head_pred);
  std::vector<uint32_t> non_group_cols;
  for (size_t i = 0; i < rule.head_args.size(); ++i) {
    if (static_cast<int>(i) != rule.group_index) {
      non_group_cols.push_back(static_cast<uint32_t>(i));
    }
  }
  for (auto& [partition_key, partition] : partitions) {
    const Term* delta_set = partition.members.Build();
    Tuple old_fact;
    bool found = false;
    const size_t head_rows = head_rel.row_count();
    if (non_group_cols.empty()) {
      // Head is just the grouped set: at most one live row exists.
      head_rel.ForEachRow(0, head_rows, [&](size_t, RowRef row) {
        old_fact.assign(row.begin(), row.end());
        found = true;
      });
    } else {
      Tuple probe_values;
      probe_values.reserve(non_group_cols.size());
      for (uint32_t c : non_group_cols) {
        probe_values.push_back(partition.head_values[c]);
      }
      ++s->index_probes;
      head_rel.ProbeRows(non_group_cols, probe_values, 0, head_rows,
                         [&](size_t row_index) {
                           RowRef row = head_rel.row(row_index);
                           old_fact.assign(row.begin(), row.end());
                           found = true;
                           return false;  // sole producer: row is unique
                         });
      if (found) ++s->probe_hits;
    }
    Tuple new_fact = std::move(partition.head_values);
    if (found) {
      const Term* old_set = old_fact[rule.group_index];
      if (!old_set->is_set()) {
        return InternalError(
            "regrow found a non-set value in a grouped head position");
      }
      const Term* new_set = factory_->SetUnion(old_set, delta_set);
      if (new_set == old_set) continue;  // only duplicate members: no change
      new_fact[rule.group_index] = new_set;
      head_rel.Erase(old_fact);
    } else {
      new_fact[rule.group_index] = delta_set;
    }
    if (db->AddFact(rule.head_pred, new_fact)) ++s->facts_derived;
    ++s->group_regrows;
    *derived = true;
  }

  if (entry != nullptr) {
    ++entry->counters.firings;
    AttributeStats(entry, local_stats);
    stats->Add(local_stats);
  }
  if (db->TotalFacts() > options.max_facts) {
    return ResourceExhaustedError(
        StrCat("database exceeded max_facts = ", options.max_facts,
               " (non-terminating program?)"));
  }
  return Status::OK();
}

Status Engine::EvaluateStratumGroupRegrow(
    const ProgramIr& program, const std::vector<int>& rules, int stratum_index,
    Database* db, const FixpointSeed& seed,
    const std::vector<PredImpact>& impact, const EvalOptions& options,
    EvalStats* stats, EvalProfile* profile) {
  uint64_t stratum_wall = 0;
  ScopedWallTimer stratum_timer(profile != nullptr ? &stratum_wall : nullptr);
  const uint64_t rounds_before = stats->iterations;
  const uint64_t facts_before = stats->facts_derived;
  const uint64_t tasks_before = stats->parallel_tasks;

  // Facts are already materialized. Grouping rules with a kGroupRegrow head
  // regrow in place; grouping rules whose inputs are untouched are skipped.
  // The remaining normal rules have kDelta heads at worst (any consumer of
  // a regrown predicate is escalated to kRecompute by ComputeImpact, which
  // would have made the whole stratum kRecompute), so they resume the
  // seeded semi-naive fixpoint.
  std::vector<int> normal_rules;
  bool derived = false;
  for (int r : rules) {
    const RuleIr& rule = program.rules[r];
    if (rule.is_fact()) continue;
    if (rule.is_grouping()) {
      if (impact[rule.head_pred] != PredImpact::kGroupRegrow) continue;
      LDL_RETURN_IF_ERROR(
          RegrowGroupingRule(rule, db, seed, options, stats, &derived,
                             ProfileEntry(profile, rule, r, stratum_index)));
    } else {
      normal_rules.push_back(r);
    }
  }
  if (!normal_rules.empty()) {
    LDL_RETURN_IF_ERROR(Fixpoint(program, normal_rules, stratum_index, db,
                                 options, stats, &derived, profile, &seed));
  }
  if (profile != nullptr) {
    stratum_timer.Stop();
    StratumProfile rollup;
    rollup.stratum = stratum_index;
    rollup.mode = StratumMode::kGroupRegrow;
    rollup.wall_ns = stratum_wall;
    rollup.rounds = stats->iterations - rounds_before;
    rollup.facts_derived = stats->facts_derived - facts_before;
    rollup.parallel_tasks = stats->parallel_tasks - tasks_before;
    profile->strata().push_back(rollup);
  }
  return Status::OK();
}

Status Engine::EvaluateStratumShrink(
    const ProgramIr& program, const std::vector<int>& rules, int stratum_index,
    Database* db, const FixpointSeed& seed,
    std::vector<std::vector<size_t>>* removed_rows, const EvalOptions& options,
    EvalStats* stats, EvalProfile* profile) {
  uint64_t stratum_wall = 0;
  ScopedWallTimer stratum_timer(profile != nullptr ? &stratum_wall : nullptr);
  const uint64_t rounds_before = stats->iterations;
  const uint64_t facts_before = stats->facts_derived;
  const uint64_t tasks_before = stats->parallel_tasks;

  // Drop ledger entries whose rows came back: a lower stratum's rederive or
  // insert resume can revive a row an earlier phase deleted, and a revived
  // row is no longer a deletion. (The row_count guard covers relations a
  // recomputed stratum cleared, which invalidates old row ids.)
  for (PredId p = 0; p < removed_rows->size(); ++p) {
    std::vector<size_t>& rows = (*removed_rows)[p];
    if (rows.empty()) continue;
    const Relation& rel = db->relation(p);
    rows.erase(std::remove_if(rows.begin(), rows.end(),
                              [&](size_t row) {
                                return row >= rel.row_count() || rel.IsLive(row);
                              }),
               rows.end());
  }

  // Facts never lose support, and grouping rules only appear here with
  // untouched inputs (a shrunk grouping input escalates the stratum to
  // kRecompute), so like the delta path only the normal rules participate
  // in deletion; fact rules still guarantee their tuples survive.
  std::vector<int> normal_rules;
  std::vector<int> fact_rules;
  std::vector<bool> is_head(catalog_->size(), false);
  for (int r : rules) {
    const RuleIr& rule = program.rules[r];
    if (rule.is_fact()) {
      fact_rules.push_back(r);
    } else if (!rule.is_grouping()) {
      normal_rules.push_back(r);
      is_head[rule.head_pred] = true;
    }
  }

  auto has_deletions = [&](PredId p) {
    return p < removed_rows->size() && !(*removed_rows)[p].empty();
  };
  // The pre-update ("old") extent of a body predicate: rows below the
  // previous evaluation's watermark. Rows past it are this batch's
  // insertions (or their consequences), which the old model never saw.
  auto watermark_of = [&](PredId p) {
    size_t mark = p < seed.watermarks->size() ? (*seed.watermarks)[p] : 0;
    return std::min(mark, db->relation(p).row_count());
  };

  // Rules that can lose solutions: at least one positive occurrence of a
  // predicate with settled deletions below.
  std::vector<int> affected_rules;
  bool recursive = false;
  for (int r : normal_rules) {
    const RuleIr& rule = program.rules[r];
    bool affected = false;
    for (const LiteralIr& literal : rule.body) {
      if (literal.is_builtin() || literal.negated) continue;
      if (has_deletions(literal.pred)) affected = true;
      if (literal.pred < is_head.size() && is_head[literal.pred]) {
        recursive = true;
      }
    }
    if (affected) affected_rules.push_back(r);
  }

  // Counting fast path eligibility: every affected head carries exact
  // derivation counts, the stratum is non-recursive (a recursive fixpoint's
  // counts were never enabled anyway, but the check keeps the reasoning
  // local), and no affected rule mentions a deleted predicate in more than
  // one positive position -- the deletion decomposition below pins one
  // occurrence per variant and relies on the same predicate not appearing
  // elsewhere in the body with a different liveness requirement.
  bool counting = !affected_rules.empty() && !recursive;
  for (int r : affected_rules) {
    if (!counting) break;
    const RuleIr& rule = program.rules[r];
    if (!db->relation(rule.head_pred).counted()) counting = false;
    for (size_t i = 0; i < rule.body.size() && counting; ++i) {
      const LiteralIr& a = rule.body[i];
      if (a.is_builtin() || a.negated || !has_deletions(a.pred)) continue;
      for (size_t j = i + 1; j < rule.body.size(); ++j) {
        const LiteralIr& b = rule.body[j];
        if (!b.is_builtin() && !b.negated && b.pred == a.pred) {
          counting = false;
          break;
        }
      }
    }
  }

  if (counting) {
    // ---- Counting fast path: each solution of the old model that involved
    // a deleted row decrements its head fact's derivation count; a fact
    // whose count reaches zero is deleted in turn. The decomposition
    // mirrors the insert-side one: the variant pinning deleted-carrier
    // occurrence i sees the deleted rows of carrier positions *before* i
    // (transiently revived) and not those *after* i, so each lost solution
    // is decremented exactly once. The watermark cap excludes this batch's
    // insertions everywhere: solutions involving them were never counted
    // (the insert resume below adds them against the post-deletion state).
    for (int r : affected_rules) {
      const RuleIr& rule = program.rules[r];
      RuleProfileEntry* entry = ProfileEntry(profile, rule, r, stratum_index);
      Relation& head_rel = db->relation(rule.head_pred);
      for (size_t occurrence = 0; occurrence < rule.body.size(); ++occurrence) {
        const LiteralIr& occ_literal = rule.body[occurrence];
        if (occ_literal.is_builtin() || occ_literal.negated ||
            !has_deletions(occ_literal.pred)) {
          continue;
        }
        // Fronting the pinned occurrence is only a join-order optimization;
        // fall back to the default order when no forced order is evaluable.
        std::vector<int> order;
        StatusOr<std::vector<int>> forced =
            OrderBodyLiterals(*catalog_, rule, static_cast<int>(occurrence));
        if (forced.ok()) {
          order = std::move(forced).value();
        } else {
          LDL_ASSIGN_OR_RETURN(order, OrderBodyLiterals(*catalog_, rule));
        }
        std::shared_ptr<const JoinPlan> plan;
        if (options.use_compiled_plans) {
          plan = plans_->Get(rule, order, &stats->plan_cache_hits);
        }
        RuleEvaluator evaluator(factory_, &rule, std::move(order),
                                options.builtin_limits, std::move(plan),
                                options.use_compiled_plans);

        std::vector<std::pair<Relation*, size_t>> revived;
        for (size_t j = 0; j < occurrence; ++j) {
          const LiteralIr& literal = rule.body[j];
          if (literal.is_builtin() || literal.negated ||
              !has_deletions(literal.pred)) {
            continue;
          }
          Relation& rel = db->relation(literal.pred);
          for (size_t row : (*removed_rows)[literal.pred]) {
            rel.SetLive(row, true);
            revived.emplace_back(&rel, row);
          }
        }
        std::vector<LiteralWindow> windows(rule.body.size());
        for (size_t j = 0; j < rule.body.size(); ++j) {
          const LiteralIr& literal = rule.body[j];
          if (!literal.is_builtin() && !literal.negated) {
            windows[j] = {0, watermark_of(literal.pred)};
          }
        }
        ++stats->rule_firings;
        if (entry != nullptr) {
          ++entry->counters.firings;
          entry->counters.delta_rows +=
              (*removed_rows)[occ_literal.pred].size();
        }
        Relation& occ_rel = db->relation(occ_literal.pred);
        Status inner;
        Status status;
        for (size_t rid : (*removed_rows)[occ_literal.pred]) {
          occ_rel.SetLive(rid, true);
          windows[occurrence] = {rid, rid + 1};
          status = evaluator.ForEachSolution(
              *db, windows,
              [&](const SolutionView& view) {
                InstantiationResult inst = evaluator.InstantiateHead(view);
                if (inst.unbound) {
                  inner = InternalError(
                      "head variable unbound in a body solution");
                  return false;
                }
                if (inst.outside_universe) return true;
                size_t head_row = head_rel.Find(inst.tuple);
                if (head_row == Relation::npos || !head_rel.IsLive(head_row)) {
                  return true;
                }
                ++stats->count_decrements;
                if (head_rel.DecrementDerivation(head_row)) {
                  (*removed_rows)[rule.head_pred].push_back(head_row);
                }
                return true;
              },
              stats);
          occ_rel.SetLive(rid, false);
          if (!status.ok() || !inner.ok()) break;
        }
        for (auto& [rel, row] : revived) rel->SetLive(row, false);
        LDL_RETURN_IF_ERROR(status);
        LDL_RETURN_IF_ERROR(inner);
      }
    }
    ++stats->strata_delta;
  } else if (!affected_rules.empty()) {
    // ---- DRed phase 1: over-delete to a fixpoint against the pre-deletion
    // state. Every settled deletion below is transiently revived and every
    // body window capped at the previous watermark, so joins see exactly
    // the old model. Consequences of each worklist row are *marked* but
    // kept live -- later worklist items still join against the complete old
    // state, which is what makes this an over-approximation -- and fed back
    // through the worklist for the recursive case.
    ++stats->strata_overdeleted;

    struct ShrinkVariant {
      const RuleIr* rule;
      size_t occurrence;
      std::vector<int> order;
      std::shared_ptr<const JoinPlan> plan;
      RuleProfileEntry* entry;
    };
    std::unordered_map<PredId, std::vector<ShrinkVariant>> variants_by_pred;
    for (int r : normal_rules) {
      const RuleIr& rule = program.rules[r];
      RuleProfileEntry* entry = ProfileEntry(profile, rule, r, stratum_index);
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const LiteralIr& literal = rule.body[i];
        if (literal.is_builtin() || literal.negated) continue;
        // Only predicates that can appear on the worklist: deleted body
        // preds and the stratum's own heads.
        if (!has_deletions(literal.pred) &&
            !(literal.pred < is_head.size() && is_head[literal.pred])) {
          continue;
        }
        ShrinkVariant v{&rule, i, {}, nullptr, entry};
        StatusOr<std::vector<int>> forced =
            OrderBodyLiterals(*catalog_, rule, static_cast<int>(i));
        if (forced.ok()) {
          v.order = std::move(forced).value();
        } else {
          LDL_ASSIGN_OR_RETURN(v.order, OrderBodyLiterals(*catalog_, rule));
        }
        if (options.use_compiled_plans) {
          v.plan = plans_->Get(rule, v.order, &stats->plan_cache_hits);
        }
        variants_by_pred[literal.pred].push_back(std::move(v));
      }
    }

    // Revive the settled deletions of every deleted body predicate for the
    // duration of phase 1.
    std::vector<std::pair<Relation*, size_t>> revived;
    std::vector<bool> revived_pred(catalog_->size(), false);
    std::vector<std::pair<PredId, size_t>> worklist;
    for (int r : normal_rules) {
      for (const LiteralIr& literal : program.rules[r].body) {
        if (literal.is_builtin() || literal.negated) continue;
        PredId p = literal.pred;
        if (p >= revived_pred.size() || revived_pred[p] || !has_deletions(p)) {
          continue;
        }
        revived_pred[p] = true;
        Relation& rel = db->relation(p);
        for (size_t row : (*removed_rows)[p]) {
          rel.SetLive(row, true);
          revived.emplace_back(&rel, row);
          worklist.emplace_back(p, row);
        }
      }
    }

    // Over-deleted head rows (marked, still live until phase 1 ends).
    std::vector<std::unordered_set<size_t>> marked(catalog_->size());
    Status phase1;
    for (size_t idx = 0; idx < worklist.size() && phase1.ok(); ++idx) {
      const auto [q, rid] = worklist[idx];
      auto it = variants_by_pred.find(q);
      if (it == variants_by_pred.end()) continue;
      for (ShrinkVariant& v : it->second) {
        if (v.rule->body[v.occurrence].pred != q) continue;
        RuleEvaluator evaluator(factory_, v.rule, v.order,
                                options.builtin_limits, v.plan,
                                options.use_compiled_plans);
        std::vector<LiteralWindow> windows(v.rule->body.size());
        for (size_t j = 0; j < v.rule->body.size(); ++j) {
          const LiteralIr& literal = v.rule->body[j];
          if (!literal.is_builtin() && !literal.negated) {
            windows[j] = {0, watermark_of(literal.pred)};
          }
        }
        windows[v.occurrence] = {rid, rid + 1};
        ++stats->rule_firings;
        if (v.entry != nullptr) {
          ++v.entry->counters.firings;
          ++v.entry->counters.delta_rows;
        }
        Relation& head_rel = db->relation(v.rule->head_pred);
        Status inner;
        Status status = evaluator.ForEachSolution(
            *db, windows,
            [&](const SolutionView& view) {
              InstantiationResult inst = evaluator.InstantiateHead(view);
              if (inst.unbound) {
                inner = InternalError(
                    "head variable unbound in a body solution");
                return false;
              }
              if (inst.outside_universe) return true;
              size_t head_row = head_rel.Find(inst.tuple);
              if (head_row == Relation::npos || !head_rel.IsLive(head_row)) {
                return true;
              }
              if (marked[v.rule->head_pred].insert(head_row).second) {
                worklist.emplace_back(v.rule->head_pred, head_row);
              }
              return true;
            },
            stats);
        phase1 = status.ok() ? inner : status;
        if (!phase1.ok()) break;
      }
    }
    // Deleted rows go back to being tombstones whether or not phase 1
    // succeeded; a clean database state outlives the error.
    for (auto& [rel, row] : revived) rel->SetLive(row, false);
    LDL_RETURN_IF_ERROR(phase1);

    // Tombstone the over-deleted rows (sorted for deterministic order), and
    // abandon any derivation counts DRed bypassed on the affected heads.
    std::vector<std::pair<PredId, size_t>> overdeleted;
    for (PredId h = 0; h < marked.size(); ++h) {
      if (marked[h].empty()) continue;
      std::vector<size_t> rows(marked[h].begin(), marked[h].end());
      std::sort(rows.begin(), rows.end());
      Relation& rel = db->relation(h);
      for (size_t row : rows) {
        rel.SetLive(row, false);
        overdeleted.emplace_back(h, row);
      }
      rel.DisableCounts();
    }

    // ---- DRed phase 2: rederive over-deleted facts that still have a
    // derivation from the surviving state. The head tuple seeds the body
    // evaluation (MatchArgs binds the head variables; the legacy
    // interpreter honors seeded substitutions), so each candidate costs one
    // targeted existence check instead of re-running the stratum. Rederived
    // rows revive in place -- keeping their ids, so downstream deltas are
    // unaffected -- and can support other candidates, hence the fixpoint
    // rounds. Fact-rule tuples survive unconditionally.
    for (int r : fact_rules) {
      const RuleIr& rule = program.rules[r];
      InstantiationResult inst =
          InstantiateArgs(*factory_, rule.head_args, Subst());
      if (inst.unbound || inst.outside_universe) continue;
      Relation& rel = db->relation(rule.head_pred);
      size_t row = rel.Find(inst.tuple);
      if (row != Relation::npos && !rel.IsLive(row)) rel.SetLive(row, true);
    }
    std::unordered_map<PredId, std::vector<RuleEvaluator>> rederivers;
    for (int r : normal_rules) {
      const RuleIr& rule = program.rules[r];
      std::vector<Symbol> head_vars;
      for (const Term* arg : rule.head_args) CollectVars(arg, &head_vars);
      std::vector<int> order;
      StatusOr<std::vector<int>> bound =
          OrderBodyLiterals(*catalog_, rule, -1, &head_vars);
      if (bound.ok()) {
        order = std::move(bound).value();
      } else {
        LDL_ASSIGN_OR_RETURN(order, OrderBodyLiterals(*catalog_, rule));
      }
      rederivers[rule.head_pred].emplace_back(factory_, &rule, std::move(order),
                                              options.builtin_limits, nullptr,
                                              /*use_plan=*/false);
    }
    const std::vector<LiteralWindow> no_windows;
    std::vector<std::pair<PredId, size_t>> dead;
    for (const auto& [h, row] : overdeleted) {
      if (!db->relation(h).IsLive(row)) dead.emplace_back(h, row);
    }
    while (!dead.empty()) {
      ++stats->rederive_rounds;
      bool revived_any = false;
      std::vector<std::pair<PredId, size_t>> still_dead;
      for (const auto& [h, row] : dead) {
        Relation& rel = db->relation(h);
        RowRef tuple = rel.row(row);
        bool found = false;
        auto it = rederivers.find(h);
        if (it != rederivers.end()) {
          for (RuleEvaluator& evaluator : it->second) {
            Subst subst;
            Status inner;
            MatchArgs(*factory_, evaluator.rule().head_args, tuple, &subst,
                      [&]() {
                        Status status = evaluator.ForEachSolutionSeeded(
                            *db, no_windows, &subst,
                            [&](const SolutionView&) {
                              found = true;
                              return false;
                            },
                            stats);
                        if (!status.ok()) {
                          inner = status;
                          return false;
                        }
                        return !found;
                      });
            LDL_RETURN_IF_ERROR(inner);
            if (found) break;
          }
        }
        if (found) {
          rel.SetLive(row, true);
          revived_any = true;
        } else {
          still_dead.emplace_back(h, row);
        }
      }
      dead.swap(still_dead);
      if (!revived_any) break;
    }
    // What stayed dead is deleted for good; strata above see it through the
    // ledger. (The insert resume below can still revive a row -- the next
    // stratum's ledger pruning handles that.)
    for (const auto& [h, row] : dead) (*removed_rows)[h].push_back(row);
  } else {
    // No settled deletion reaches this stratum (everything below was
    // rederived or decremented back to life); only insert deltas remain.
    ++stats->strata_delta;
  }

  // ---- Phase 3: resume the seeded semi-naive insert fixpoint, so a mixed
  // insert+delete batch finishes in one pass. With no insert deltas this
  // finds empty windows and exits immediately.
  bool derived = false;
  if (!normal_rules.empty()) {
    LDL_RETURN_IF_ERROR(Fixpoint(program, normal_rules, stratum_index, db,
                                 options, stats, &derived, profile, &seed));
  }

  if (profile != nullptr) {
    stratum_timer.Stop();
    StratumProfile rollup;
    rollup.stratum = stratum_index;
    rollup.mode = StratumMode::kShrink;
    rollup.wall_ns = stratum_wall;
    rollup.rounds = stats->iterations - rounds_before;
    rollup.facts_derived = stats->facts_derived - facts_before;
    rollup.parallel_tasks = stats->parallel_tasks - tasks_before;
    profile->strata().push_back(rollup);
  }
  return Status::OK();
}

Status Engine::EvaluateIncrementalDelete(
    const ProgramIr& program, const Stratification& stratification,
    Database* db, const std::vector<size_t>& watermarks,
    const std::vector<bool>& changed,
    const std::vector<std::pair<PredId, Tuple>>& removed,
    const EvalOptions& options, EvalStats* stats, EvalProfile* profile) {
  EvalStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  if (!options.profile) profile = nullptr;
  if (profile != nullptr) profile->ReserveRules(program.rules.size());
  ScopedSetInternCounter set_interns(factory_, stats);
  uint64_t total_wall = 0;
  ScopedWallTimer total_timer(profile != nullptr ? &total_wall : nullptr);

  // Settle the EDB deletions up front: tombstone each removed fact's row
  // and record it in the per-predicate ledger. Absent facts are no-ops. A
  // fact inserted and deleted in the same batch sits past its watermark;
  // tombstoning it here is exactly the required cancellation (delta windows
  // skip tombstoned rows).
  std::vector<bool> shrunk(catalog_->size(), false);
  std::vector<std::vector<size_t>> removed_rows(catalog_->size());
  for (const auto& [pred, tuple] : removed) {
    if (pred >= catalog_->size()) continue;
    Relation& rel = db->relation(pred);
    size_t row = rel.Find(tuple);
    if (row == Relation::npos || !rel.IsLive(row)) continue;
    rel.SetLive(row, false);
    removed_rows[pred].push_back(row);
    shrunk[pred] = true;
  }

  std::vector<PredImpact> impact =
      ComputeImpact(*catalog_, program, changed, &shrunk);

  // Delta carriers: as in EvaluateIncremental, plus the shrink-maintained
  // predicates -- on a mixed batch they carry insert deltas too, and their
  // rederived rows keep old ids, so the watermark logic is unchanged.
  std::vector<bool> delta_preds(catalog_->size(), false);
  for (PredId p = 0; p < catalog_->size(); ++p) {
    if ((p < changed.size() && changed[p]) || impact[p] == PredImpact::kDelta ||
        impact[p] == PredImpact::kShrink) {
      delta_preds[p] = true;
    }
  }
  FixpointSeed seed{&watermarks, &delta_preds};

  for (size_t s = 0; s < stratification.strata.size(); ++s) {
    const std::vector<int>& rules = stratification.strata[s];
    PredImpact mode = PredImpact::kClean;
    for (int r : rules) {
      mode = std::max(mode, impact[program.rules[r].head_pred]);
    }
    if (mode == PredImpact::kClean) {
      ++stats->strata_skipped;
      if (profile != nullptr) {
        StratumProfile rollup;
        rollup.stratum = static_cast<int>(s);
        rollup.mode = StratumMode::kSkipped;
        profile->strata().push_back(rollup);
      }
      continue;
    }
    if (mode == PredImpact::kRecompute) {
      // Same as the insert path, except the clear threshold drops to
      // kShrink: a shrink-classified head sharing a recompute stratum never
      // went through DRed, so its kept rows could include facts whose
      // support was deleted -- clearing re-derives it from the maintained
      // inputs. Cleared relations restart their ledgers and counts.
      std::vector<bool> cleared(catalog_->size(), false);
      for (int r : rules) {
        PredId head = program.rules[r].head_pred;
        if (impact[head] >= PredImpact::kShrink && !cleared[head]) {
          cleared[head] = true;
          db->relation(head).Clear();
          removed_rows[head].clear();
        }
      }
      for (int r : rules) {
        PredId head = program.rules[r].head_pred;
        if (!cleared[head]) db->relation(head).DisableCounts();
      }
      ++stats->strata_recomputed;
      LDL_RETURN_IF_ERROR(EvaluateStratum(program, rules, static_cast<int>(s),
                                          db, options, stats, profile));
      if (profile != nullptr) {
        profile->strata().back().mode = StratumMode::kRecomputed;
      }
      continue;
    }
    if (mode == PredImpact::kGroupRegrow) {
      ++stats->strata_regrown;
      LDL_RETURN_IF_ERROR(EvaluateStratumGroupRegrow(
          program, rules, static_cast<int>(s), db, seed, impact, options,
          stats, profile));
      continue;
    }
    if (mode == PredImpact::kShrink) {
      LDL_RETURN_IF_ERROR(EvaluateStratumShrink(
          program, rules, static_cast<int>(s), db, seed, &removed_rows,
          options, stats, profile));
      continue;
    }
    ++stats->strata_delta;
    LDL_RETURN_IF_ERROR(EvaluateStratumDelta(program, rules,
                                             static_cast<int>(s), db, seed,
                                             options, stats, profile));
  }
  if (profile != nullptr) {
    total_timer.Stop();
    profile->add_total_wall_ns(total_wall);
  }
  return Status::OK();
}

Status Engine::EvaluateIncremental(const ProgramIr& program,
                                   const Stratification& stratification,
                                   Database* db,
                                   const std::vector<size_t>& watermarks,
                                   const std::vector<bool>& changed,
                                   const EvalOptions& options, EvalStats* stats,
                                   EvalProfile* profile) {
  EvalStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  if (!options.profile) profile = nullptr;
  if (profile != nullptr) profile->ReserveRules(program.rules.size());
  ScopedSetInternCounter set_interns(factory_, stats);
  uint64_t total_wall = 0;
  ScopedWallTimer total_timer(profile != nullptr ? &total_wall : nullptr);

  std::vector<PredImpact> impact = ComputeImpact(*catalog_, program, changed);

  // Delta carriers for the seeded fixpoints: the changed EDB predicates
  // plus every delta-maintained IDB predicate. (A recomputed predicate is
  // never a carrier -- everything consuming it is itself recomputed, with
  // full windows.)
  std::vector<bool> delta_preds(catalog_->size(), false);
  for (PredId p = 0; p < catalog_->size(); ++p) {
    if ((p < changed.size() && changed[p]) || impact[p] == PredImpact::kDelta) {
      delta_preds[p] = true;
    }
  }
  FixpointSeed seed{&watermarks, &delta_preds};

  for (size_t s = 0; s < stratification.strata.size(); ++s) {
    const std::vector<int>& rules = stratification.strata[s];
    PredImpact mode = PredImpact::kClean;
    for (int r : rules) {
      mode = std::max(mode, impact[program.rules[r].head_pred]);
    }
    if (mode == PredImpact::kClean) {
      ++stats->strata_skipped;
      if (profile != nullptr) {
        StratumProfile rollup;
        rollup.stratum = static_cast<int>(s);
        rollup.mode = StratumMode::kSkipped;
        profile->strata().push_back(rollup);
      }
      continue;
    }
    if (mode == PredImpact::kRecompute) {
      // Clear each recomputed head once, then re-derive the whole stratum
      // from its (already-maintained) inputs. A kGroupRegrow head that
      // shares the stratum is cleared too: EvaluateStratum re-fires its
      // grouping rule from scratch, which would otherwise insert regrown
      // group facts next to the stale ones. Heads classified kDelta or
      // kClean in this stratum keep their rows -- re-deriving them is
      // deduplicated, and any genuinely new rows land past their
      // watermarks where downstream delta strata pick them up.
      std::vector<bool> cleared(catalog_->size(), false);
      for (int r : rules) {
        PredId head = program.rules[r].head_pred;
        if (impact[head] >= PredImpact::kGroupRegrow && !cleared[head]) {
          cleared[head] = true;
          db->relation(head).Clear();
        }
      }
      // Kept heads (kDelta/kClean in this stratum) get their rules re-fired
      // with dedup against the existing rows, so their derivation counts
      // would inflate; abandon them (deletions there fall back to DRed).
      // Cleared heads re-count from scratch: Clear() empties the counts but
      // keeps counting enabled.
      for (int r : rules) {
        PredId head = program.rules[r].head_pred;
        if (!cleared[head]) db->relation(head).DisableCounts();
      }
      ++stats->strata_recomputed;
      LDL_RETURN_IF_ERROR(EvaluateStratum(program, rules, static_cast<int>(s),
                                          db, options, stats, profile));
      if (profile != nullptr) {
        profile->strata().back().mode = StratumMode::kRecomputed;
      }
      continue;
    }
    if (mode == PredImpact::kGroupRegrow) {
      ++stats->strata_regrown;
      LDL_RETURN_IF_ERROR(EvaluateStratumGroupRegrow(
          program, rules, static_cast<int>(s), db, seed, impact, options,
          stats, profile));
      continue;
    }
    ++stats->strata_delta;
    LDL_RETURN_IF_ERROR(EvaluateStratumDelta(program, rules,
                                             static_cast<int>(s), db, seed,
                                             options, stats, profile));
  }
  if (profile != nullptr) {
    total_timer.Stop();
    profile->add_total_wall_ns(total_wall);
  }
  return Status::OK();
}

namespace {

// Turns on derivation counting for the head relations of every
// non-recursive, grouping-free stratum before a from-scratch semi-naive
// evaluation. Counts are only exact when each body solution is enumerated
// once, which holds for the single full-application round a non-recursive
// stratum runs (and for the exactly-decomposed delta resumes later); a
// recursive fixpoint revisits solutions across rounds, and grouping
// reconciliation erases/reinserts head facts, so those strata stay
// uncounted and deletions there go through DRed. EnableCounts is a no-op on
// non-empty relations, so a db that somehow already holds IDB rows simply
// stays uncounted (conservative).
void EnableDerivationCounts(const ProgramIr& program,
                            const Stratification& stratification, Database* db) {
  for (const std::vector<int>& rules : stratification.strata) {
    std::vector<PredId> heads;
    bool eligible = true;
    for (int r : rules) {
      if (program.rules[r].is_grouping()) {
        eligible = false;
        break;
      }
      heads.push_back(program.rules[r].head_pred);
    }
    if (!eligible) continue;
    for (int r : rules) {
      for (const LiteralIr& literal : program.rules[r].body) {
        if (literal.is_builtin() || literal.negated) continue;
        if (std::find(heads.begin(), heads.end(), literal.pred) != heads.end()) {
          eligible = false;  // recursive stratum
          break;
        }
      }
      if (!eligible) break;
    }
    if (!eligible) continue;
    for (PredId head : heads) db->relation(head).EnableCounts();
  }
}

}  // namespace

Status Engine::EvaluateProgram(const ProgramIr& program,
                               const Stratification& stratification, Database* db,
                               const EvalOptions& options, EvalStats* stats,
                               EvalProfile* profile) {
  EvalStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  if (!options.profile) profile = nullptr;
  if (profile != nullptr) profile->ReserveRules(program.rules.size());
  ScopedSetInternCounter set_interns(factory_, stats);
  uint64_t total_wall = 0;
  ScopedWallTimer total_timer(profile != nullptr ? &total_wall : nullptr);
  if (options.mode == EvalOptions::Mode::kSemiNaive) {
    EnableDerivationCounts(program, stratification, db);
  }
  for (size_t s = 0; s < stratification.strata.size(); ++s) {
    LDL_RETURN_IF_ERROR(EvaluateStratum(program, stratification.strata[s],
                                        static_cast<int>(s), db, options, stats,
                                        profile));
  }
  if (profile != nullptr) {
    total_timer.Stop();
    profile->add_total_wall_ns(total_wall);
  }
  return Status::OK();
}

Status Engine::EvaluateSaturating(const ProgramIr& program, Database* db,
                                  const EvalOptions& options, EvalStats* stats,
                                  EvalProfile* profile) {
  EvalStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  if (!options.profile) profile = nullptr;
  if (profile != nullptr) profile->ReserveRules(program.rules.size());
  ScopedSetInternCounter set_interns(factory_, stats);
  uint64_t total_wall = 0;
  ScopedWallTimer total_timer(profile != nullptr ? &total_wall : nullptr);
  const uint64_t rounds_before = stats->iterations;
  const uint64_t facts_before = stats->facts_derived;
  const uint64_t tasks_before = stats->parallel_tasks;

  std::vector<int> positive_rules;
  std::vector<int> grouping_rules;
  std::vector<int> negation_rules;
  for (size_t r = 0; r < program.rules.size(); ++r) {
    const RuleIr& rule = program.rules[r];
    if (rule.is_fact()) {
      InstantiationResult inst = InstantiateArgs(*factory_, rule.head_args, Subst());
      if (inst.unbound) return NotWellFormedError("fact with unbound variables");
      RuleProfileEntry* entry =
          ProfileEntry(profile, rule, static_cast<int>(r), /*stratum=*/-1);
      if (entry != nullptr) ++entry->counters.firings;
      if (!inst.outside_universe && db->AddFact(rule.head_pred, inst.tuple)) {
        ++stats->facts_derived;
        if (entry != nullptr) ++entry->counters.facts_derived;
      }
    } else if (rule.is_grouping()) {
      grouping_rules.push_back(static_cast<int>(r));
    } else if (rule.has_negation()) {
      negation_rules.push_back(static_cast<int>(r));
    } else {
      positive_rules.push_back(static_cast<int>(r));
    }
  }

  // Per grouping rule: partition key -> emitted fact, for reconciliation.
  std::vector<std::unordered_map<Tuple, Tuple, TupleHash>> emitted(
      grouping_rules.size());
  // Per grouping rule: cross-round group cache. Grouping rules re-fire each
  // global round over a monotonically grown database; partitions whose
  // member count is unchanged reuse the cached canonical fact instead of
  // re-sorting and re-interning (see GroupCacheEntry).
  std::vector<GroupCache> group_caches(grouping_rules.size());

  // The saturating evaluator always orders syntactically: it runs in a
  // scratch database where every adorned predicate starts empty (entry
  // statistics carry no signal about the sizes the fixpoint will reach),
  // and it re-enters Fixpoint once per global round, so cost-based
  // planning would be repaid on every round of every sub-millisecond
  // bound query. `sat_options` turns the planner off for the inner
  // fixpoints too. Block execution is off for the same reason: magic
  // rounds push a handful of rows per rule invocation, so block setup
  // costs more than the per-row dispatch it amortizes (DESIGN.md §12).
  EvalOptions sat_options = options;
  sat_options.cost_based = false;
  sat_options.batch = false;
  std::vector<std::vector<int>> negation_orders;
  for (int r : negation_rules) {
    LDL_ASSIGN_OR_RETURN(std::vector<int> order,
                         OrderBodyLiterals(*catalog_, program.rules[r]));
    negation_orders.push_back(std::move(order));
  }
  std::vector<std::vector<int>> grouping_orders;
  for (int r : grouping_rules) {
    LDL_ASSIGN_OR_RETURN(std::vector<int> order,
                         OrderBodyLiterals(*catalog_, program.rules[r]));
    grouping_orders.push_back(std::move(order));
  }

  for (size_t round = 0;; ++round) {
    if (round >= options.max_rounds) {
      return ResourceExhaustedError("saturation exceeded max_rounds");
    }
    bool changed = false;

    // 1. Saturate the positive, non-grouping part. For a given set of magic
    //    facts this fully evaluates every predicate a grouping or negated
    //    body below may consult (§6's "fully evaluate per magic tuple").
    if (!positive_rules.empty()) {
      bool derived = false;
      LDL_RETURN_IF_ERROR(Fixpoint(program, positive_rules, /*stratum_index=*/-1,
                                   db, sat_options, stats, &derived, profile));
      changed = changed || derived;
    }

    // 2. Grouping rules over the saturated state, reconciled per key.
    for (size_t g = 0; g < grouping_rules.size(); ++g) {
      const RuleIr& rule = program.rules[grouping_rules[g]];
      RuleProfileEntry* entry =
          ProfileEntry(profile, rule, grouping_rules[g], /*stratum=*/-1);
      EvalStats group_local;
      EvalStats* gs = entry != nullptr ? &group_local : stats;
      ScopedWallTimer timer(entry != nullptr ? &entry->counters.wall_ns
                                             : nullptr);
      std::shared_ptr<const JoinPlan> plan;
      if (options.use_compiled_plans) {
        plan = plans_->Get(rule, grouping_orders[g], &gs->plan_cache_hits);
      }
      RuleEvaluator evaluator(factory_, &rule, grouping_orders[g],
                              options.builtin_limits, std::move(plan),
                              options.use_compiled_plans);
      ++gs->rule_firings;
      LDL_ASSIGN_OR_RETURN(
          std::vector<GroupResult> groups,
          ComputeGroups(*factory_, evaluator, *db, gs, &group_caches[g],
                        sat_options.batch, sat_options.batch_block_rows));
      for (GroupResult& group : groups) {
        auto it = emitted[g].find(group.key);
        if (it == emitted[g].end()) {
          if (db->AddFact(rule.head_pred, group.fact)) {
            changed = true;
            ++gs->facts_derived;
          }
          emitted[g].emplace(std::move(group.key), std::move(group.fact));
          continue;
        }
        if (it->second == group.fact) continue;
        // The group regrew after it was first emitted. For admissible source
        // programs the per-magic-tuple body is complete before the group
        // first fires, so this indicates a non-layered source (see §6
        // discussion). Replace, but only if the old fact is not claimed by
        // another grouping rule, and require monotone growth.
        const Term* old_set = it->second[rule.group_index];
        const Term* new_set = group.fact[rule.group_index];
        if (!old_set->is_set() || !new_set->is_set() ||
            factory_->SetDifference(old_set, new_set)->size() != 0) {
          return InternalError(
              "a grouped set changed non-monotonically during magic "
              "evaluation; source program is not admissible");
        }
        bool claimed_elsewhere = false;
        for (size_t other = 0; other < emitted.size(); ++other) {
          if (other == g) continue;
          for (const auto& [key, fact] : emitted[other]) {
            if (fact == it->second &&
                program.rules[grouping_rules[other]].head_pred == rule.head_pred) {
              claimed_elsewhere = true;
              break;
            }
          }
          if (claimed_elsewhere) break;
        }
        if (!claimed_elsewhere) db->relation(rule.head_pred).Erase(it->second);
        if (db->AddFact(rule.head_pred, group.fact)) ++gs->facts_derived;
        it->second = std::move(group.fact);
        changed = true;
      }
      if (entry != nullptr) {
        ++entry->counters.firings;
        AttributeStats(entry, group_local);
        stats->Add(group_local);
      }
    }

    // 3. Negation rules over the saturated state.
    for (size_t i = 0; i < negation_rules.size(); ++i) {
      const RuleIr& rule = program.rules[negation_rules[i]];
      bool derived = false;
      LDL_RETURN_IF_ERROR(ApplyRule(
          rule, negation_orders[i], {}, db, options, stats, &derived,
          ProfileEntry(profile, rule, negation_rules[i], /*stratum=*/-1)));
      changed = changed || derived;
    }

    if (!changed) break;
  }
  if (profile != nullptr) {
    total_timer.Stop();
    profile->add_total_wall_ns(total_wall);
    // The saturation loop is unlayered; report it as one pseudo-stratum -1.
    StratumProfile rollup;
    rollup.stratum = -1;
    rollup.wall_ns = total_wall;
    rollup.rounds = stats->iterations - rounds_before;
    rollup.facts_derived = stats->facts_derived - facts_before;
    rollup.parallel_tasks = stats->parallel_tasks - tasks_before;
    profile->strata().push_back(rollup);
  }
  return Status::OK();
}

StatusOr<std::vector<Tuple>> Engine::Query(const LiteralIr& goal,
                                           const Database& db) const {
  if (goal.is_builtin() || goal.negated) {
    return InvalidArgumentError("queries must be positive, non-builtin literals");
  }
  return QueryRelation(factory_, goal, db.relation(goal.pred));
}

StatusOr<std::vector<Tuple>> QueryRelation(TermFactory* factory,
                                           const LiteralIr& goal,
                                           const Relation& relation) {
  std::vector<Tuple> results;
  Subst subst;
  // Ground scons-free goal arguments are interned pointers, so they select
  // rows through the composite hash index instead of a relation scan.
  // MatchArgs still verifies the whole row (patterns, repeated variables).
  std::vector<uint32_t> probe_cols;
  std::vector<const Term*> probe_values;
  for (size_t i = 0; i < goal.args.size(); ++i) {
    const Term* arg = goal.args[i];
    if (arg->ground() && !arg->has_scons()) {
      probe_cols.push_back(static_cast<uint32_t>(i));
      probe_values.push_back(arg);
    }
  }
  auto match_row = [&](RowRef tuple) {
    MatchArgs(*factory, goal.args, tuple, &subst, [&]() {
      results.emplace_back(tuple.begin(), tuple.end());
      return false;  // one match per fact suffices
    });
  };
  if (probe_cols.empty()) {
    relation.ForEachRow(0, relation.row_count(),
                        [&](size_t, RowRef tuple) { match_row(tuple); });
  } else {
    relation.ProbeRows(probe_cols, probe_values, 0, relation.row_count(),
                       [&](size_t row) {
                         match_row(relation.row(row));
                         return true;
                       });
  }
  return results;
}

}  // namespace ldl
