// Cost-based join ordering (DESIGN.md §11).
//
// A CostModel snapshots per-predicate cardinalities and per-column distinct
// estimates (Relation::Stats) at a well-defined point -- round start, on the
// scheduling thread -- so order choices depend only on that snapshot and the
// serial==parallel determinism contract holds. EstimateOrderCost prices a
// candidate order under the standard independence assumptions: a probe on a
// literal with R rows and bound columns c1..ck matches R / max(1, prod
// distinct(ci)) rows per input binding; the work of a step is
// rows_in * (1 + matches) for a probe and rows_in * R for a full scan.
// OrderBodyLiteralsCostBased searches orders with exact Selinger-style
// dynamic programming over subsets when the body has at most
// kMaxDpRelational positive relational literals, and greedily
// (min-estimated-intermediate) beyond that. Both honor the same safety
// constraints as the syntactic OrderBodyLiterals -- built-ins and negations
// run as soon as ready, forced_first pins the semi-naive delta occurrence --
// and reject exactly the same rules (readiness is order-independent once
// every positive literal is scheduled).
#ifndef LDL1_EVAL_COST_H_
#define LDL1_EVAL_COST_H_

#include <vector>

#include "base/status.h"
#include "eval/relation.h"
#include "program/catalog.h"
#include "program/ir.h"

namespace ldl {

// Per-predicate statistics used by the estimator.
struct PredCard {
  double rows = 0;
  std::vector<double> distinct;  // per column, capped at rows
};

// An immutable snapshot of the database's statistics. Take one per planning
// point (program entry, fixpoint round); never share across rounds.
class CostModel {
 public:
  CostModel() = default;

  // Snapshots every predicate that has a relation in `db`.
  static CostModel Snapshot(const Database& db, const Catalog& catalog);

  // Stats for `pred`; empty-relation stats when the predicate has no
  // relation yet.
  const PredCard& Card(PredId pred) const {
    static const PredCard kEmpty;
    return pred < cards_.size() ? cards_[pred] : kEmpty;
  }

 private:
  std::vector<PredCard> cards_;  // indexed by PredId
};

// Estimated cost of evaluating a body in a given order.
struct OrderCost {
  double total_work = 0;  // summed per-step work units
  double out_rows = 1;    // estimated body solutions
  // Estimated intermediate cardinality after each evaluation step, indexed
  // by position in `order` (the REPL :plan printer consumes this).
  std::vector<double> step_rows;
};

// Prices `order` (a full body order from either orderer) against `model`.
// `literal_rows`, when non-null, overrides the row count per body literal
// *occurrence* (indexed by body position; negative = use the model) -- the
// engine uses this to price semi-naive delta windows and round deltas.
OrderCost EstimateOrderCost(const RuleIr& rule, const std::vector<int>& order,
                            const CostModel& model,
                            const std::vector<double>* literal_rows = nullptr);

// Cost-based replacement for OrderBodyLiterals: same contract (forced_first
// pins the first occurrence, `initially_bound` seeds boundness, returns
// kNotWellFormed when a built-in or negation never becomes ready), but the
// positive relational literals are sequenced to minimize estimated total
// work instead of syntactic boundness. Deterministic: ties break on the
// smaller literal index.
StatusOr<std::vector<int>> OrderBodyLiteralsCostBased(
    const Catalog& catalog, const RuleIr& rule, const CostModel& model,
    int forced_first = -1, const std::vector<Symbol>* initially_bound = nullptr,
    const std::vector<double>* literal_rows = nullptr);

// Bodies with at most this many positive relational literals get the exact
// subset DP (2^k states); larger bodies fall back to the greedy search.
inline constexpr int kMaxDpRelational = 8;

}  // namespace ldl

#endif  // LDL1_EVAL_COST_H_
