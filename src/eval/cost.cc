#include "eval/cost.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "base/str_util.h"
#include "eval/rule_eval.h"
#include "term/term_ops.h"

namespace ldl {

CostModel CostModel::Snapshot(const Database& db, const Catalog& catalog) {
  CostModel model;
  model.cards_.resize(catalog.size());
  for (PredId pred = 0; pred < catalog.size(); ++pred) {
    const Relation* relation = db.FindRelation(pred);
    if (relation == nullptr) continue;
    RelationStats stats = relation->Stats();
    PredCard& card = model.cards_[pred];
    card.rows = static_cast<double>(stats.rows);
    card.distinct = std::move(stats.column_distinct);
  }
  return model;
}

namespace {

// Estimated fraction of input bindings surviving (or fan-out produced by) a
// built-in, given which arguments are bound. Heuristic constants -- see
// DESIGN.md §11; built-ins are cheap either way, so the planner only needs
// these to be roughly right relative to relational fan-out.
double BuiltinFactor(const LiteralIr& literal, const std::vector<Symbol>& bound) {
  auto arg_bound = [&](size_t i) {
    return TermVarsBound(literal.args[i], bound);
  };
  if (literal.negated) return 0.5;  // negated built-in is a pure filter
  switch (literal.builtin) {
    case BuiltinKind::kNeq:
    case BuiltinKind::kLt:
    case BuiltinKind::kLe:
    case BuiltinKind::kGt:
    case BuiltinKind::kGe:
      return 0.5;
    case BuiltinKind::kEq:
      // Both sides bound: a filter. One side free: binds it, one result.
      return arg_bound(0) && arg_bound(1) ? 0.5 : 1.0;
    case BuiltinKind::kMember:
    case BuiltinKind::kSubset:
      // First argument free: enumerates the (sub)sets of the bound second
      // argument -- modest fan-out stand-in, real sets are small.
      return arg_bound(0) ? 0.5 : 4.0;
    case BuiltinKind::kPartition:
      return arg_bound(0) ? 4.0 : 1.0;
    default:
      return 1.0;  // functional built-ins bind their output deterministically
  }
}

struct StepPrice {
  double work = 0;
  double out_rows = 0;
};

// Prices one body literal occurrence given the current bound-variable set
// and the estimated number of input bindings. The relational formulas are
// documented in cost.h / DESIGN.md §11.
StepPrice PriceLiteral(const RuleIr& rule, int idx, const CostModel& model,
                       const std::vector<double>* literal_rows,
                       const std::vector<Symbol>& bound, double rows_in) {
  const LiteralIr& literal = rule.body[idx];
  StepPrice price;
  if (literal.is_builtin()) {
    price.work = rows_in;
    price.out_rows = rows_in * BuiltinFactor(literal, bound);
    return price;
  }
  if (literal.negated) {
    // One dedup-table lookup per binding; conservative half selectivity.
    price.work = rows_in;
    price.out_rows = rows_in * 0.5;
    return price;
  }
  const PredCard& card = model.Card(literal.pred);
  double rows = card.rows;
  if (literal_rows != nullptr && idx < static_cast<int>(literal_rows->size()) &&
      (*literal_rows)[idx] >= 0) {
    rows = (*literal_rows)[idx];
  }
  double divisor = 1.0;
  bool any_bound = false;
  for (size_t col = 0; col < literal.args.size(); ++col) {
    if (!TermVarsBound(literal.args[col], bound)) continue;
    any_bound = true;
    // Distinct counts come from the full relation even when `rows` is a
    // delta-window override: the window's values are spread over the same
    // domain, so matches = rows / distinct stays the right expectation.
    double d = col < card.distinct.size() ? card.distinct[col] : 1.0;
    divisor *= std::max(1.0, d);
  }
  double matches = any_bound ? std::min(rows, rows / divisor) : rows;
  // A probe costs one index lookup plus the matches it returns; an unbound
  // literal is a full scan per input binding (floored at one scan).
  price.work =
      any_bound ? rows_in * (1.0 + matches) : std::max(rows, rows_in * rows);
  price.out_rows = rows_in * matches;
  return price;
}

// Mutable scheduling state shared by the DP and greedy searches: which
// literals are placed, the bound-variable set, and the running estimate.
struct ScheduleState {
  std::vector<bool> scheduled;
  std::vector<Symbol> bound;
  double rows = 1.0;
  double work = 0.0;
  std::vector<int> order;
  std::vector<double> step_rows;
};

void Place(const RuleIr& rule, const CostModel& model,
           const std::vector<double>* literal_rows, int idx, ScheduleState* s) {
  StepPrice price =
      PriceLiteral(rule, idx, model, literal_rows, s->bound, s->rows);
  s->work += price.work;
  s->rows = price.out_rows;
  s->order.push_back(idx);
  s->step_rows.push_back(price.out_rows);
  s->scheduled[idx] = true;
  const LiteralIr& literal = rule.body[idx];
  if (!literal.negated) BindLiteralVars(literal, &s->bound);
}

// Schedules every ready built-in / negation -- the same eager closure as the
// syntactic orderer, so both modes interleave filters identically relative
// to the positive literals they depend on.
void Closure(const RuleIr& rule, const CostModel& model,
             const std::vector<double>* literal_rows,
             const std::vector<std::vector<Symbol>>& negation_shared,
             ScheduleState* s) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const LiteralIr& literal = rule.body[i];
      if (s->scheduled[i] || (!literal.is_builtin() && !literal.negated)) {
        continue;
      }
      bool ready;
      if (literal.negated && !literal.is_builtin()) {
        ready = true;
        for (Symbol var : negation_shared[i]) {
          if (std::find(s->bound.begin(), s->bound.end(), var) ==
              s->bound.end()) {
            ready = false;
            break;
          }
        }
      } else {
        ready = LiteralStaticallyReady(literal, s->bound);
      }
      if (ready) {
        Place(rule, model, literal_rows, static_cast<int>(i), s);
        progressed = true;
      }
    }
  }
}

// Exact Selinger-style search: dynamic programming over subsets of the
// remaining positive relational literals. The bound-variable set after a
// prefix depends only on the *set* of positives placed (closure is
// deterministic and monotone in it), so subset states are well-defined.
// Deterministic: states and successors are visited in ascending order and
// only a strictly cheaper path replaces a stored one.
ScheduleState DpSchedule(const RuleIr& rule, const CostModel& model,
                         const std::vector<double>* literal_rows,
                         const std::vector<std::vector<Symbol>>& negation_shared,
                         const ScheduleState& base, const std::vector<int>& rel) {
  size_t m = rel.size();
  size_t full = (size_t{1} << m) - 1;
  std::vector<ScheduleState> dp(full + 1);
  std::vector<bool> seen(full + 1, false);
  dp[0] = base;
  seen[0] = true;
  for (size_t mask = 0; mask <= full; ++mask) {
    if (!seen[mask]) continue;
    for (size_t j = 0; j < m; ++j) {
      if (mask & (size_t{1} << j)) continue;
      ScheduleState next = dp[mask];
      Place(rule, model, literal_rows, rel[j], &next);
      Closure(rule, model, literal_rows, negation_shared, &next);
      size_t successor = mask | (size_t{1} << j);
      if (!seen[successor] || next.work < dp[successor].work) {
        dp[successor] = std::move(next);
        seen[successor] = true;
      }
    }
  }
  return dp[full];
}

// Greedy fallback for wide bodies: at each step place the positive literal
// minimizing the estimated intermediate cardinality (ties: less work, then
// the smaller literal index via ascending iteration + strict comparison).
ScheduleState GreedySchedule(const RuleIr& rule, const CostModel& model,
                             const std::vector<double>* literal_rows,
                             const std::vector<std::vector<Symbol>>& negation_shared,
                             const ScheduleState& base,
                             const std::vector<int>& rel) {
  ScheduleState state = base;
  for (size_t placed = 0; placed < rel.size(); ++placed) {
    bool have_best = false;
    ScheduleState best;
    for (int idx : rel) {
      if (state.scheduled[idx]) continue;
      ScheduleState candidate = state;
      Place(rule, model, literal_rows, idx, &candidate);
      Closure(rule, model, literal_rows, negation_shared, &candidate);
      if (!have_best || candidate.rows < best.rows ||
          (candidate.rows == best.rows && candidate.work < best.work)) {
        best = std::move(candidate);
        have_best = true;
      }
    }
    state = std::move(best);
  }
  return state;
}

}  // namespace

OrderCost EstimateOrderCost(const RuleIr& rule, const std::vector<int>& order,
                            const CostModel& model,
                            const std::vector<double>* literal_rows) {
  OrderCost cost;
  std::vector<Symbol> bound;
  double rows = 1.0;
  for (int idx : order) {
    StepPrice price =
        PriceLiteral(rule, idx, model, literal_rows, bound, rows);
    cost.total_work += price.work;
    rows = price.out_rows;
    cost.step_rows.push_back(rows);
    if (!rule.body[idx].negated) BindLiteralVars(rule.body[idx], &bound);
  }
  cost.out_rows = rows;
  return cost;
}

StatusOr<std::vector<int>> OrderBodyLiteralsCostBased(
    const Catalog& catalog, const RuleIr& rule, const CostModel& model,
    int forced_first, const std::vector<Symbol>* initially_bound,
    const std::vector<double>* literal_rows) {
  size_t n = rule.body.size();
  std::vector<std::vector<Symbol>> negation_shared = NegationSharedVars(rule);

  ScheduleState base;
  base.scheduled.assign(n, false);
  base.order.reserve(n);
  if (initially_bound != nullptr) base.bound = *initially_bound;
  if (forced_first >= 0) Place(rule, model, literal_rows, forced_first, &base);
  Closure(rule, model, literal_rows, negation_shared, &base);

  // The positive relational literals still to sequence.
  std::vector<int> rel;
  for (size_t i = 0; i < n; ++i) {
    const LiteralIr& literal = rule.body[i];
    if (!base.scheduled[i] && !literal.is_builtin() && !literal.negated) {
      rel.push_back(static_cast<int>(i));
    }
  }

  ScheduleState state =
      static_cast<int>(rel.size()) <= kMaxDpRelational
          ? DpSchedule(rule, model, literal_rows, negation_shared, base, rel)
          : GreedySchedule(rule, model, literal_rows, negation_shared, base, rel);

  if (state.order.size() < n) {
    // Only unready built-ins / negations remain. Readiness after all
    // positives are placed is order-independent, so this fails exactly when
    // the syntactic orderer fails -- with the same diagnostic.
    std::string names;
    for (size_t i = 0; i < n; ++i) {
      if (state.scheduled[i]) continue;
      if (!names.empty()) StrAppend(names, ", ");
      StrAppend(names, rule.body[i].is_builtin()
                           ? BuiltinName(rule.body[i].builtin)
                           : catalog.DebugName(rule.body[i].pred));
    }
    return NotWellFormedError(
        StrCat("rule for ", catalog.DebugName(rule.head_pred),
               ": no evaluable order for body literals (", names,
               " never become bound)"));
  }
  return std::move(state.order);
}

}  // namespace ldl
