// Compiled join plans for bottom-up rule evaluation.
//
// A JoinPlan is the compile-once/execute-many form of one (rule, literal
// order) pair: the rule's variables are numbered into dense slots and each
// body literal becomes a LiteralPlan that the evaluator executes over a flat
// slot array instead of a symbol-keyed substitution.
//
//   * kScan: a positive literal whose arguments are all plain variables or
//     ground scons-free constants. The statically bound argument positions
//     form a (possibly composite) probe spec fed from slots/constants; the
//     remaining columns run a match program (bind slot / check slot / check
//     constant) with no generic unification.
//   * kGenericScan: a positive literal with complex argument patterns
//     (functors, sets, scons, ...). Falls back to MatchArgs unification, but
//     still probes on the statically bound columns after instantiating them
//     through a scratch substitution.
//   * kBuiltin / kNegated: evaluated through the existing builtin / NAF
//     machinery over a scratch substitution materialized from the slots the
//     literal mentions.
//
// Plans depend only on the rule structure and the literal order, never on
// the database, so Engine caches them in a PlanCache keyed by a structural
// fingerprint (interned Term pointers are stable for the factory's
// lifetime, which makes the fingerprint collision-free).
#ifndef LDL1_EVAL_PLAN_H_
#define LDL1_EVAL_PLAN_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "program/ir.h"
#include "term/term_ops.h"

namespace ldl {

// A probe key component or head output: read from a slot or a constant.
struct ValueRef {
  int slot = -1;                   // >= 0: read slots[slot]
  const Term* constant = nullptr;  // used when slot < 0
};

enum class MatchOpKind : uint8_t {
  kBind,        // slots[slot] = tuple[column]
  kCheckSlot,   // tuple[column] == slots[slot] (repeated variable)
  kCheckConst,  // tuple[column] == constant
};

struct MatchOp {
  MatchOpKind kind;
  uint32_t column;
  int slot = -1;
  const Term* constant = nullptr;
};

enum class StepKind : uint8_t { kScan, kGenericScan, kBuiltin, kNegated };

// Compiled form of one body literal at its position in the join order.
struct LiteralPlan {
  StepKind kind;
  int literal_index;              // position in RuleIr::body
  PredId pred = kInvalidPred;     // relational literals only

  // kScan: statically bound columns (the probe spec) and the match program
  // for the remaining columns. probe_cols[i] is the column probe[i] feeds.
  std::vector<uint32_t> probe_cols;
  std::vector<ValueRef> probe;
  std::vector<MatchOp> match;

  // kGenericScan: columns whose argument patterns are fully bound under the
  // slots available at this depth; instantiated at runtime to probe keys.
  std::vector<uint32_t> bound_columns;

  // kGenericScan / kBuiltin / kNegated: variables of this literal bound
  // before the step (materialized into the scratch substitution) and
  // variables the step newly binds (harvested back into slots).
  std::vector<std::pair<Symbol, int>> inputs;
  std::vector<std::pair<Symbol, int>> outputs;
};

class JoinPlan {
 public:
  // Compiles `rule` under `order` (from OrderBodyLiterals). Never fails:
  // anything that cannot be specialized becomes a generic step.
  static JoinPlan Compile(const RuleIr& rule, const std::vector<int>& order);

  const std::vector<LiteralPlan>& steps() const { return steps_; }
  size_t slot_count() const { return slot_count_; }

  // All rule variables with their slots, sorted by symbol for lookup.
  const std::vector<std::pair<Symbol, int>>& var_slots() const {
    return var_slots_;
  }
  // Slot of `var`, or -1 if the rule does not mention it.
  int SlotOf(Symbol var) const;

  // True when every head argument is a plain variable or a ground scons-free
  // constant, so head tuples can be built straight from slots.
  bool head_simple() const { return head_simple_; }
  const std::vector<ValueRef>& head() const { return head_; }

 private:
  std::vector<LiteralPlan> steps_;
  std::vector<std::pair<Symbol, int>> var_slots_;
  size_t slot_count_ = 0;
  bool head_simple_ = false;
  std::vector<ValueRef> head_;
};

// Read-only view of one body solution handed to ForEachSolution's yield.
// Backed either by the plan executor's slot array or, on the legacy
// interpreter path, by the live substitution.
class SolutionView {
 public:
  explicit SolutionView(const Subst* subst) : subst_(subst) {}
  SolutionView(const JoinPlan* plan, std::span<const Term* const> slots)
      : plan_(plan), slots_(slots) {}

  // Binding of `var`, or nullptr if unbound in this solution.
  const Term* Lookup(Symbol var) const;

  // Binds every bound variable of this solution into `out`.
  void AppendBindings(Subst* out) const;

  // Non-null on the legacy interpreter path.
  const Subst* subst() const { return subst_; }
  // Non-null on the plan executor path.
  const JoinPlan* plan() const { return plan_; }
  std::span<const Term* const> slots() const { return slots_; }

 private:
  const Subst* subst_ = nullptr;
  const JoinPlan* plan_ = nullptr;
  std::span<const Term* const> slots_;
};

// Engine-level cache of compiled plans keyed by a structural fingerprint of
// (rule, order). Structural keying (head/body predicates and interned term
// pointers) keeps entries valid across temporary ProgramIr instances, e.g.
// the per-query magic rewrites, which may reuse addresses of freed rules.
//
// Internally synchronized: probes take a shared lock and misses compile
// outside the lock before inserting under an exclusive one, so one cache can
// serve many concurrent query threads (ldl::Service shares a single cache
// across its snapshot readers and the writer session).
class PlanCache {
 public:
  // Returns the plan for (rule, order), compiling it on a miss. `hits`, when
  // non-null, is incremented on a cache hit.
  std::shared_ptr<const JoinPlan> Get(const RuleIr& rule,
                                      const std::vector<int>& order,
                                      size_t* hits = nullptr);

  void Clear();
  size_t size() const;

 private:
  struct Entry {
    std::vector<uint64_t> fingerprint;
    std::shared_ptr<const JoinPlan> plan;
  };
  mutable std::shared_mutex mu_;
  std::unordered_map<uint64_t, std::vector<Entry>> entries_;
};

}  // namespace ldl

#endif  // LDL1_EVAL_PLAN_H_
