#include "eval/topdown.h"

#include "base/str_util.h"
#include "eval/bindings.h"
#include "eval/rule_eval.h"
#include "term/unify.h"

namespace ldl {

TopDownEngine::TopDownEngine(TermFactory* factory, Catalog* catalog,
                             const ProgramIr* program,
                             const Stratification* stratification,
                             const Database* edb, TopDownOptions options)
    : factory_(factory),
      catalog_(catalog),
      program_(program),
      stratification_(stratification),
      edb_(edb),
      options_(options) {
  for (const RuleIr& rule : program_->rules) {
    if (rule.head_pred >= idb_.size()) idb_.resize(rule.head_pred + 1, false);
    idb_[rule.head_pred] = true;
  }
}

bool TopDownEngine::IsIdb(PredId pred) const {
  return pred < idb_.size() && idb_[pred];
}

// Rule variables that the head unification bound to ground values.
std::vector<Symbol> TopDownEngine::BoundRuleVars(const Subst& subst) const {
  std::vector<Symbol> bound;
  for (const auto& [var, value] : subst.trail()) {
    const Term* walked = subst.Walk(value);
    if (walked->ground() && !walked->has_scons()) bound.push_back(var);
  }
  return bound;
}

const Term* TopDownEngine::CanonicalVar(size_t index) {
  while (canonical_vars_.size() <= index) {
    canonical_vars_.push_back(factory_->MakeVar(
        factory_->interner()->Intern(StrCat("$cv", canonical_vars_.size()))));
  }
  return canonical_vars_[index];
}

std::vector<const Term*> TopDownEngine::InstantiateCall(const LiteralIr& literal,
                                                        const Subst& subst) {
  // Instantiate under the caller's bindings, then rename residual variables
  // to the shared canonical placeholders in first-occurrence order.
  std::vector<const Term*> instantiated;
  instantiated.reserve(literal.args.size());
  std::vector<Symbol> seen;
  for (const Term* arg : literal.args) {
    const Term* inst = ApplySubst(*factory_, arg, subst);
    if (inst == nullptr) inst = arg;  // outside-U: keep symbolic, matches nothing
    CollectVars(inst, &seen);
    instantiated.push_back(inst);
  }
  Subst renaming;
  for (size_t i = 0; i < seen.size(); ++i) {
    // Guard against binding a placeholder to itself (Walk would cycle).
    if (CanonicalVar(i)->symbol() == seen[i]) continue;
    renaming.Bind(seen[i], CanonicalVar(i));
  }
  std::vector<const Term*> canonical;
  canonical.reserve(instantiated.size());
  for (const Term* t : instantiated) {
    const Term* renamed = ApplySubst(*factory_, t, renaming);
    canonical.push_back(renamed == nullptr ? t : renamed);
  }
  return canonical;
}

StatusOr<TopDownEngine::TableEntry*> TopDownEngine::TableFor(
    PredId pred, const std::vector<const Term*>& pattern) {
  std::string key = StrCat(pred, "|");
  for (const Term* t : pattern) {
    factory_->AppendTo(t, &key);
    key += ',';
  }
  ++stats_.calls;
  auto [it, inserted] = tables_.try_emplace(std::move(key));
  if (inserted) {
    it->second.pred = pred;
    it->second.pattern = pattern;
  }
  return &it->second;
}

Status TopDownEngine::Insert(TableEntry* entry, const Tuple& fact) {
  if (entry->index.insert(fact).second) {
    entry->rows.push_back(fact);
    grew_ = true;
    ++stats_.answers;
    if (++total_rows_ > options_.max_table_rows) {
      return ResourceExhaustedError("top-down tables exceeded max_table_rows");
    }
  }
  return Status::OK();
}

Status TopDownEngine::SolveComplete(PredId pred,
                                    const std::vector<const Term*>& pattern,
                                    TableEntry** entry_out) {
  LDL_ASSIGN_OR_RETURN(TableEntry * entry, TableFor(pred, pattern));
  if (entry->complete) {
    *entry_out = entry;
    return Status::OK();
  }
  // Nested fixpoint: restart expansion until nothing reachable grows. Only
  // tables at or below this predicate's layer participate -- stratification
  // guarantees the subquery never consults higher strata, and tables of
  // enclosing in-progress calls (strictly higher layers) must be neither
  // reset nor marked complete.
  int layer = stratification_->layer_of_pred[pred];
  auto in_scope = [&](const TableEntry& table) {
    return stratification_->layer_of_pred[table.pred] <= layer;
  };
  size_t rounds = 0;
  bool outer_grew = grew_;
  for (;;) {
    if (++rounds > options_.max_rounds) {
      return ResourceExhaustedError("top-down fixpoint exceeded max_rounds");
    }
    ++stats_.restarts;
    for (auto& [key, table] : tables_) {
      if (!table.complete && in_scope(table)) table.started = false;
    }
    grew_ = false;
    LDL_RETURN_IF_ERROR(SolveCall(pred, pattern, 0, &entry));
    if (!grew_) break;
    outer_grew = true;
  }
  grew_ = outer_grew;
  // Everything expanded in the final (quiescent) round is now stable.
  for (auto& [key, table] : tables_) {
    if (table.started && in_scope(table)) table.complete = true;
  }
  *entry_out = entry;
  return Status::OK();
}

Status TopDownEngine::SolveCall(PredId pred,
                                const std::vector<const Term*>& pattern,
                                size_t depth, TableEntry** entry_out) {
  if (depth > options_.max_call_depth) {
    return ResourceExhaustedError("top-down recursion exceeded max_call_depth");
  }
  LDL_ASSIGN_OR_RETURN(TableEntry * entry, TableFor(pred, pattern));
  *entry_out = entry;
  if (entry->complete || entry->started) return Status::OK();
  entry->started = true;

  for (size_t r = 0; r < program_->rules.size(); ++r) {
    const RuleIr& rule = program_->rules[r];
    if (rule.head_pred != pred) continue;
    ++stats_.expansions;
    // Per-rule attribution: each expansion counts as a firing and its wall
    // time accrues to the rule, mirroring the bottom-up paths.
    RuleProfileEntry* rule_profile = nullptr;
    if (profile_ != nullptr) {
      rule_profile = &profile_->EntryFor(static_cast<int>(r),
                                         stratification_->layer_of_rule[r]);
      if (rule_profile->label.empty()) {
        rule_profile->label = FormatRuleLabel(*factory_, *catalog_, rule);
      }
      ++rule_profile->counters.firings;
    }
    ScopedWallTimer timer(
        rule_profile != nullptr ? &rule_profile->counters.wall_ns : nullptr);
    if (rule.is_grouping()) {
      LDL_RETURN_IF_ERROR(ExpandGroupingRule(rule, entry, depth));
    } else {
      LDL_RETURN_IF_ERROR(ExpandRule(rule, entry, depth));
    }
  }
  return Status::OK();
}

Status TopDownEngine::ExpandRule(const RuleIr& rule, TableEntry* entry,
                                 size_t depth) {
  // Unify head arguments with the call pattern; a mismatch prunes the rule.
  Subst subst;
  for (size_t i = 0; i < rule.head_args.size(); ++i) {
    if (!UnifyRigid(*factory_, rule.head_args[i], entry->pattern[i], &subst)) {
      return Status::OK();
    }
  }
  if (rule.is_fact()) {
    InstantiationResult inst = InstantiateArgs(*factory_, rule.head_args, subst);
    if (!inst.unbound && !inst.outside_universe) {
      return Insert(entry, inst.tuple);
    }
    return Status::OK();
  }

  // Order the body with the call's bindings: a bound call must drive
  // built-ins (e.g. partition) before its recursive subgoals, or the
  // subgoals degenerate to free calls.
  std::vector<Symbol> initially_bound = BoundRuleVars(subst);
  LDL_ASSIGN_OR_RETURN(
      std::vector<int> order,
      OrderBodyLiterals(*catalog_, rule, -1, &initially_bound));
  Status inner;
  bool keep_going = true;
  Status status = SolveBody(
      rule, order, 0, &subst, depth, /*complete_mode=*/false,
      [&](const Subst& solution) {
        InstantiationResult inst =
            InstantiateArgs(*factory_, rule.head_args, solution);
        if (inst.unbound) {
          // Head variables tied to the caller's free placeholders stay
          // unbound only if the body never constrained them; range
          // restriction makes this unreachable.
          inner = InternalError("unbound head variable in top-down expansion");
          return false;
        }
        if (!inst.outside_universe) {
          Status insert = Insert(entry, inst.tuple);
          if (!insert.ok()) {
            inner = insert;
            return false;
          }
        }
        return true;
      },
      &keep_going);
  LDL_RETURN_IF_ERROR(status);
  return inner;
}

Status TopDownEngine::ExpandGroupingRule(const RuleIr& rule, TableEntry* entry,
                                         size_t depth) {
  // Do not let a bound grouped argument restrict the body (§6, footnote 6):
  // unify every head position except the grouped one, filter afterwards.
  Subst subst;
  for (size_t i = 0; i < rule.head_args.size(); ++i) {
    if (static_cast<int>(i) == rule.group_index) continue;
    if (!UnifyRigid(*factory_, rule.head_args[i], entry->pattern[i], &subst)) {
      return Status::OK();
    }
  }

  // Z variables: the non-grouped head argument variables.
  std::vector<Symbol> z_vars;
  for (size_t i = 0; i < rule.head_args.size(); ++i) {
    if (static_cast<int>(i) == rule.group_index) continue;
    CollectVars(rule.head_args[i], &z_vars);
  }
  const Term* group_var = factory_->MakeVar(rule.group_var);

  struct Partition {
    Tuple head_values;
    std::vector<const Term*> members;
  };
  std::map<std::string, Partition> partitions;

  std::vector<Symbol> initially_bound = BoundRuleVars(subst);
  LDL_ASSIGN_OR_RETURN(
      std::vector<int> order,
      OrderBodyLiterals(*catalog_, rule, -1, &initially_bound));
  Status inner;
  bool keep_going = true;
  // Complete mode: grouping needs the full body extension for the bound
  // call; stratification keeps the nested fixpoints below this stratum.
  Status status = SolveBody(
      rule, order, 0, &subst, depth, /*complete_mode=*/true,
      [&](const Subst& solution) {
        bool ground = true;
        const Term* y = InstantiateGround(*factory_, group_var, solution, &ground);
        if (y == nullptr) {
          if (!ground) {
            inner = InternalError("grouped variable unbound in top-down body");
            return false;
          }
          return true;  // outside U
        }
        InstantiationResult head =
            InstantiateArgs(*factory_, rule.head_args, solution);
        if (head.unbound) {
          inner = InternalError("head variable unbound under top-down grouping");
          return false;
        }
        if (head.outside_universe) return true;
        std::string key;
        for (size_t i = 0; i < head.tuple.size(); ++i) {
          if (static_cast<int>(i) == rule.group_index) continue;
          factory_->AppendTo(head.tuple[i], &key);
          key += '|';
        }
        Partition& partition = partitions[key];
        if (partition.head_values.empty()) partition.head_values = head.tuple;
        partition.members.push_back(y);
        return true;
      },
      &keep_going);
  LDL_RETURN_IF_ERROR(status);
  LDL_RETURN_IF_ERROR(inner);

  for (auto& [key, partition] : partitions) {
    Tuple fact = partition.head_values;
    fact[rule.group_index] = factory_->MakeSet(partition.members);
    // Filter against the call pattern's grouped position.
    Subst check;
    bool matched = false;
    MatchTerm(*factory_, entry->pattern[rule.group_index],
              fact[rule.group_index], &check, [&]() {
                matched = true;
                return false;
              });
    if (!matched) continue;
    LDL_RETURN_IF_ERROR(Insert(entry, fact));
  }
  return Status::OK();
}

Status TopDownEngine::SolveBody(const RuleIr& rule, const std::vector<int>& order,
                                size_t k, Subst* subst, size_t depth,
                                bool complete_mode,
                                const std::function<bool(const Subst&)>& yield,
                                bool* keep_going) {
  if (k == order.size()) {
    *keep_going = yield(*subst);
    return Status::OK();
  }
  const LiteralIr& literal = rule.body[order[k]];
  Status inner;

  if (literal.is_builtin()) {
    bool builtin_keep_going = true;
    Status status = EvalBuiltin(
        *factory_, literal, subst,
        [&]() {
          Status next = SolveBody(rule, order, k + 1, subst, depth, complete_mode,
                                  yield, keep_going);
          if (!next.ok()) {
            inner = next;
            return false;
          }
          return *keep_going;
        },
        &builtin_keep_going, options_.builtin_limits);
    LDL_RETURN_IF_ERROR(status);
    return inner;
  }

  if (literal.negated) {
    // Complete the subquery, then require that nothing matches.
    std::vector<const Term*> pattern = InstantiateCall(literal, *subst);
    bool any_match = false;
    if (IsIdb(literal.pred)) {
      TableEntry* sub = nullptr;
      LDL_RETURN_IF_ERROR(SolveComplete(literal.pred, pattern, &sub));
      for (const Tuple& row : sub->rows) {
        Subst probe;
        MatchArgs(*factory_, pattern, row, &probe, [&]() {
          any_match = true;
          return false;
        });
        if (any_match) break;
      }
    } else {
      const Relation& relation = edb_->relation(literal.pred);
      relation.ForEachRow(0, relation.row_count(), [&](size_t, RowRef row) {
        if (any_match) return;
        Subst probe;
        MatchArgs(*factory_, pattern, row, &probe, [&]() {
          any_match = true;
          return false;
        });
      });
    }
    if (any_match) return Status::OK();
    return SolveBody(rule, order, k + 1, subst, depth, complete_mode, yield,
                     keep_going);
  }

  // Positive literal.
  auto consume_rows = [&](const std::vector<Tuple>& rows, size_t limit) -> Status {
    for (size_t i = 0; i < limit; ++i) {
      bool matched_keep_going = MatchArgs(
          *factory_, literal.args, rows[i], subst, [&]() {
            Status next = SolveBody(rule, order, k + 1, subst, depth,
                                    complete_mode, yield, keep_going);
            if (!next.ok()) {
              inner = next;
              return false;
            }
            return *keep_going;
          });
      if (!matched_keep_going || !inner.ok() || !*keep_going) break;
    }
    return inner;
  };

  if (IsIdb(literal.pred)) {
    std::vector<const Term*> pattern = InstantiateCall(literal, *subst);
    TableEntry* sub = nullptr;
    if (complete_mode) {
      LDL_RETURN_IF_ERROR(SolveComplete(literal.pred, pattern, &sub));
    } else {
      LDL_RETURN_IF_ERROR(SolveCall(literal.pred, pattern, depth + 1, &sub));
    }
    // Snapshot the size: recursive calls may append to the same table while
    // we iterate; the outer fixpoint picks up late rows.
    return consume_rows(sub->rows, sub->rows.size());
  }

  // EDB scan.
  const Relation& relation = edb_->relation(literal.pred);
  std::vector<Tuple> rows;
  rows.reserve(relation.size());
  relation.ForEachRow(0, relation.row_count(),
                      [&](size_t, RowRef row) { rows.emplace_back(row.begin(), row.end()); });
  return consume_rows(rows, rows.size());
}

StatusOr<std::vector<Tuple>> TopDownEngine::Query(const LiteralIr& goal) {
  if (goal.is_builtin() || goal.negated) {
    return InvalidArgumentError("top-down queries must be positive literals");
  }
  std::vector<const Term*> pattern = InstantiateCall(goal, Subst());
  std::vector<Tuple> results;
  if (!IsIdb(goal.pred)) {
    const Relation& relation = edb_->relation(goal.pred);
    Subst subst;
    relation.ForEachRow(0, relation.row_count(), [&](size_t, RowRef row) {
      MatchArgs(*factory_, goal.args, row, &subst, [&]() {
        results.emplace_back(row.begin(), row.end());
        return false;
      });
    });
    return results;
  }
  TableEntry* entry = nullptr;
  LDL_RETURN_IF_ERROR(SolveComplete(goal.pred, pattern, &entry));
  Subst subst;
  for (const Tuple& row : entry->rows) {
    MatchArgs(*factory_, goal.args, row, &subst, [&]() {
      results.push_back(row);
      return false;
    });
  }
  return results;
}

}  // namespace ldl
