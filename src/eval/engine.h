// Bottom-up evaluation engines.
//
//   * EvaluateProgram: stratified (layer-by-layer) evaluation of an
//     admissible program per Theorem 1. Within a layer the grouping rules
//     are applied once over the layer's input model, then the remaining
//     rules run to fixpoint (Lemma 3.2.3), naively or semi-naively.
//   * EvaluateIncremental: delta-driven maintenance of an already
//     materialized model after EDB insertions. Strata reachable from the
//     changed predicates only through positive non-grouping (>=) edges
//     resume semi-naive fixpoint from the inserted rows; a sole-rule,
//     negation-free grouping head over such inputs regrows only its
//     affected partitions in place; strata reached through a negation
//     edge (or an ineligible grouping edge) are cleared and recomputed;
//     untouched strata are skipped (see program/impact.h).
//   * EvaluateSaturating: evaluation of a magic-rewritten program, which is
//     not layered (§6). Positive non-grouping rules are saturated, then
//     grouping and negation rules fire over the saturated state; the loop
//     repeats until global fixpoint. Grouped facts are reconciled per
//     partition key; a group that would shrink or change retroactively
//     indicates a non-layered source program and raises kInternal.
//
// Parallel execution: with EvalOptions::num_threads > 1 each fixpoint round
// partitions its rule×delta-window variants (sharding large delta windows by
// row range) into tasks on a persistent worker pool. Workers evaluate
// compiled plans against the immutable pre-round database, staging derived
// tuples and stats per task; a single merge barrier then dedups/inserts in
// task order and folds the stats, so the computed model is identical to the
// serial one. num_threads == 1 runs exactly the historical serial path.
#ifndef LDL1_EVAL_ENGINE_H_
#define LDL1_EVAL_ENGINE_H_

#include <memory>
#include <utility>
#include <vector>

#include "base/status.h"
#include "base/worker_pool.h"
#include "eval/grouping.h"
#include "eval/plan.h"
#include "eval/profile.h"
#include "eval/rule_eval.h"
#include "program/impact.h"
#include "program/ir.h"
#include "program/stratify.h"

namespace ldl {

struct EvalOptions {
  enum class Mode {
    kNaive,      // re-apply every rule over the full database each round
    kSemiNaive,  // delta-driven re-application
  };
  Mode mode = Mode::kSemiNaive;
  // Guards against non-terminating programs (function symbols make the
  // universe infinite).
  size_t max_rounds = 1u << 20;
  size_t max_facts = 1u << 26;
  BuiltinLimits builtin_limits;
  // Execute rule bodies through compiled join plans (eval/plan.h). Off runs
  // the legacy substitution interpreter; kept for equivalence testing.
  bool use_compiled_plans = true;
  // Pick join orders with the statistics-driven cost model (eval/cost.h)
  // instead of the syntactic most-bound-args heuristic, and re-cost the
  // semi-naive delta variants each round against the delta-window sizes
  // (adaptive replanning). Order choices read only round-start snapshots,
  // so the serial==parallel determinism contract is unaffected.
  bool cost_based = true;
  // Replanning hysteresis: a delta variant switches to the newly costed
  // order only when estimated_work(current) > ratio * estimated_work(best).
  // Keeps plan churn (and plan-cache pressure) low when estimates wobble.
  double replan_cost_ratio = 2.0;
  // Worker-pool width for intra-stratum parallel evaluation. 1 (the
  // default) is the serial path; > 1 evaluates each round's rule×window
  // variants concurrently with a deterministic merge barrier.
  int num_threads = 1;
  // Collect a per-rule / per-stratum EvalProfile (eval/profile.h) into the
  // EvalProfile* the caller passes alongside stats. Off, the engine never
  // reads the clock; the hot-path cost is one null test per application.
  bool profile = false;
  // Execute compiled plans block-at-a-time through the batch kernels of
  // eval/batch.h: bindings travel in TupleBlocks and head rows are emitted
  // in bulk (DESIGN.md §12). Solution order, derivation counts, and every
  // deterministic counter match the scalar executor exactly. Off forces the
  // scalar tuple-at-a-time path (the equivalence suite runs both); no
  // effect when use_compiled_plans is false, which has no plans to batch.
  bool batch = true;
  // Rows per TupleBlock on the batch path (0 falls back to the default).
  size_t batch_block_rows = kDefaultBlockRows;
};

class Engine {
 public:
  // With a non-null `shared_plans` the engine probes (and fills) the caller's
  // plan cache instead of an internal one. PlanCache is internally
  // synchronized, so many per-query engines -- e.g. the scratch engines
  // ldl::Service spins up for concurrent magic evaluations -- can share one
  // cache and reuse each other's compiled plans.
  explicit Engine(TermFactory* factory, Catalog* catalog,
                  PlanCache* shared_plans = nullptr)
      : factory_(factory),
        catalog_(catalog),
        plans_(shared_plans != nullptr ? shared_plans : &owned_plans_) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Stratified bottom-up evaluation of an admissible program (Theorem 1).
  // With options.profile set and `profile` non-null, per-rule/per-stratum
  // execution profiles are collected into *profile (not cleared first).
  Status EvaluateProgram(const ProgramIr& program,
                         const Stratification& stratification, Database* db,
                         const EvalOptions& options = {}, EvalStats* stats = nullptr,
                         EvalProfile* profile = nullptr);

  // Incremental maintenance of an already-materialized model after EDB
  // insertions (program/impact.h). `db` must hold the model of `program`
  // over the pre-update EDB, with the inserted facts appended after it;
  // `watermarks[p]` is relation(p).row_count() at the end of that
  // evaluation (preds registered since are treated as watermark 0) and
  // `changed[p]` marks the extensional predicates that gained facts. Per
  // stratum: unaffected strata are skipped, strata reachable only through
  // positive non-grouping edges resume semi-naive fixpoint from the rows
  // past the watermarks, eligible grouping heads regrow only the partitions
  // the insertions touch (EvaluateStratumGroupRegrow), and strata reached
  // through a negation edge or an ineligible grouping edge -- where an
  // insertion below can retract facts above -- clear their recomputed heads
  // and re-derive from the maintained inputs (stats->strata_skipped /
  // strata_delta / strata_regrown / strata_recomputed count the four
  // outcomes). The result is the same model EvaluateProgram computes
  // from scratch over the updated EDB. Only insertions are supported here;
  // batches containing deletions go through EvaluateIncrementalDelete
  // below, and rule changes still need a full re-evaluation.
  Status EvaluateIncremental(const ProgramIr& program,
                             const Stratification& stratification, Database* db,
                             const std::vector<size_t>& watermarks,
                             const std::vector<bool>& changed,
                             const EvalOptions& options = {},
                             EvalStats* stats = nullptr,
                             EvalProfile* profile = nullptr);

  // Incremental maintenance after a mixed batch of EDB insertions and
  // deletions (delete-and-rederive, DRed). Inputs are as for
  // EvaluateIncremental -- `db` holds the pre-update model with inserted
  // facts appended past `watermarks` and `changed` marking the inserted-into
  // predicates -- plus `removed`, the EDB facts to delete (absent facts are
  // ignored). Removed rows are tombstoned up front; then per stratum:
  //   * kShrink strata with exact derivation counts (non-recursive,
  //     grouping-free, counted heads, at most one deleted-carrier occurrence
  //     per rule) decrement the counts of the head facts each deleted row
  //     derived and tombstone rows reaching zero (stats->count_decrements);
  //   * other kShrink strata run the two DRed phases -- over-delete to
  //     fixpoint against the pre-deletion state (deleted rows transiently
  //     revived), then rederive over-deleted facts that survive from the
  //     remaining facts (stats->strata_overdeleted / rederive_rounds);
  //   * both then resume the seeded semi-naive insert fixpoint, so mixed
  //     batches finish in the same pass;
  //   * strata reached through grouping or negation fall back to
  //     clear-and-recompute exactly as in EvaluateIncremental, and kDelta /
  //     kGroupRegrow / untouched strata are handled as there.
  // The result is the model EvaluateProgram computes from scratch over the
  // updated EDB.
  Status EvaluateIncrementalDelete(
      const ProgramIr& program, const Stratification& stratification,
      Database* db, const std::vector<size_t>& watermarks,
      const std::vector<bool>& changed,
      const std::vector<std::pair<PredId, Tuple>>& removed,
      const EvalOptions& options = {}, EvalStats* stats = nullptr,
      EvalProfile* profile = nullptr);

  // Saturation evaluation for magic-rewritten (non-layered) programs (§6).
  // Profiled rules carry stratum -1 (the evaluation is unlayered).
  Status EvaluateSaturating(const ProgramIr& program, Database* db,
                            const EvalOptions& options = {},
                            EvalStats* stats = nullptr,
                            EvalProfile* profile = nullptr);

  // Enumerates facts of goal's predicate matching the goal's argument
  // patterns. The goal must be positive and non-builtin. Const and safe to
  // call from concurrent readers of an immutable database (delegates to
  // QueryRelation below).
  StatusOr<std::vector<Tuple>> Query(const LiteralIr& goal,
                                     const Database& db) const;

  TermFactory* factory() const { return factory_; }
  Catalog* catalog() const { return catalog_; }

 private:
  // One schedulable unit of a parallel round: a rule under a fixed literal
  // order (plan pre-fetched on the scheduling thread), restricted to
  // per-literal windows -- possibly a row-range shard of a delta window.
  struct RuleTask {
    const RuleIr* rule;
    const std::vector<int>* order;
    std::shared_ptr<const JoinPlan> plan;
    std::vector<LiteralWindow> windows;
    // Profiling attribution (null entry: profiling off). Only a variant's
    // first shard counts as a firing; delta_rows is this shard's window.
    RuleProfileEntry* profile_entry = nullptr;
    bool counts_firing = true;
    uint64_t delta_rows = 0;
  };

  // Seed for a resumed (incremental) fixpoint: rows past each predicate's
  // watermark form the first round's deltas, and round 0 (full rule
  // application) is skipped -- the database already holds a model of the
  // rules over the pre-update inputs.
  struct FixpointSeed {
    // Row counts at the end of the previous evaluation; preds past the end
    // are treated as watermark 0.
    const std::vector<size_t>* watermarks;
    // Predicates that may carry rows past their watermark (changed EDB
    // preds plus delta-maintained lower-stratum IDB preds).
    const std::vector<bool>* delta_preds;
  };

  Status EvaluateStratum(const ProgramIr& program, const std::vector<int>& rules,
                         int stratum_index, Database* db,
                         const EvalOptions& options, EvalStats* stats,
                         EvalProfile* profile);

  // Delta-resumes a stratum whose predicates can only grow under the
  // update: facts and grouping rules are skipped (their inputs are
  // unchanged) and the normal rules run a seeded semi-naive fixpoint.
  Status EvaluateStratumDelta(const ProgramIr& program,
                              const std::vector<int>& rules, int stratum_index,
                              Database* db, const FixpointSeed& seed,
                              const EvalOptions& options, EvalStats* stats,
                              EvalProfile* profile);

  // Handles a stratum whose worst head impact is kGroupRegrow: eligible
  // grouping rules regrow only the partitions the inserted rows touch
  // (RegrowGroupingRule); the stratum's normal rules -- whose heads are at
  // worst kDelta, since any consumer of a regrown predicate escalates to
  // kRecompute -- resume the seeded semi-naive fixpoint.
  Status EvaluateStratumGroupRegrow(const ProgramIr& program,
                                    const std::vector<int>& rules,
                                    int stratum_index, Database* db,
                                    const FixpointSeed& seed,
                                    const std::vector<PredImpact>& impact,
                                    const EvalOptions& options,
                                    EvalStats* stats, EvalProfile* profile);

  // Handles one kShrink stratum of EvaluateIncrementalDelete: the counting
  // fast path when eligible, the DRed over-delete + rederive phases
  // otherwise, then the seeded insert resume. `removed_rows[p]` holds the
  // tombstoned row ids of each predicate's settled deletions; the handler
  // consumes the entries of the strata below and appends the stratum's own
  // head deletions for the strata above.
  Status EvaluateStratumShrink(const ProgramIr& program,
                               const std::vector<int>& rules, int stratum_index,
                               Database* db, const FixpointSeed& seed,
                               std::vector<std::vector<size_t>>* removed_rows,
                               const EvalOptions& options, EvalStats* stats,
                               EvalProfile* profile);

  // In-place incremental maintenance of one eligible grouping rule (sole
  // rule for its head, negation-free, kDelta body inputs; see
  // program/impact.h). Enumerates only the body solutions that involve at
  // least one row past the seed watermarks, collects the new member values
  // per partition key, and unions them into the existing group facts --
  // replacing each affected head fact instead of clearing the relation.
  Status RegrowGroupingRule(const RuleIr& rule, Database* db,
                            const FixpointSeed& seed,
                            const EvalOptions& options, EvalStats* stats,
                            bool* derived, RuleProfileEntry* entry);

  // Applies one non-grouping rule (optionally with per-literal windows);
  // inserts derived facts. Sets *derived if anything new appeared. A
  // non-null `entry` attributes one firing plus this application's
  // counters and wall time to the rule's profile.
  Status ApplyRule(const RuleIr& rule, const std::vector<int>& order,
                   const std::vector<LiteralWindow>& windows, Database* db,
                   const EvalOptions& options, EvalStats* stats, bool* derived,
                   RuleProfileEntry* entry = nullptr);

  // Runs grouping rule(s) once over the current database, inserting results.
  Status ApplyGroupingRule(const RuleIr& rule, Database* db,
                           const EvalOptions& options, EvalStats* stats,
                           bool* derived,
                           std::vector<GroupResult>* results_out = nullptr,
                           RuleProfileEntry* entry = nullptr);

  // Fixpoint of `rule_indices` (non-grouping rules) over db. Every round
  // evaluates against the round-start snapshot: the serial path passes
  // explicit [0, row_count) windows so rule N never sees rule N-1's
  // same-round inserts -- exactly the parallel snapshot semantics, which
  // keeps profiles (firings, rounds, per-rule counters) identical across
  // pool widths.
  // With a non-null `seed` the fixpoint resumes incrementally: round 0 is
  // skipped, the low watermarks start at the seed's values, and the delta
  // machinery runs regardless of options.mode.
  Status Fixpoint(const ProgramIr& program, const std::vector<int>& rule_indices,
                  int stratum_index, Database* db, const EvalOptions& options,
                  EvalStats* stats, bool* derived_any, EvalProfile* profile,
                  const FixpointSeed* seed = nullptr);

  // Evaluates `tasks` on the worker pool against the (read-only) current
  // database state, then inserts the staged tuples and folds the per-task
  // stats (and per-task profiles, timed on the worker) in task order -- the
  // merge barrier. Sets *derived on any new fact.
  Status RunTasksParallel(const std::vector<RuleTask>& tasks, Database* db,
                          const EvalOptions& options, EvalStats* stats,
                          bool* derived);

  // Profile entry for `rule`, labeled on first touch; null when `profile`
  // is null. Pointers stay valid for the evaluation (the rule table is
  // sized up front by the Evaluate* entry points).
  RuleProfileEntry* ProfileEntry(EvalProfile* profile, const RuleIr& rule,
                                 int rule_index, int stratum);

  // Returns the persistent pool, (re)creating it when the width changes.
  WorkerPool* EnsurePool(int num_threads);

  TermFactory* factory_;
  Catalog* catalog_;
  // Compiled plans survive across Fixpoint/EvaluateSaturating calls (the
  // magic path re-evaluates per query); keyed structurally, so temporary
  // rewritten programs hit the cache on identical rules. plans_ points at
  // owned_plans_ unless the constructor was handed a shared cache.
  PlanCache owned_plans_;
  PlanCache* plans_;
  // Lazily created worker pool for num_threads > 1; persists across rounds
  // and evaluations so round barriers cost a wakeup, not a thread spawn.
  std::unique_ptr<WorkerPool> pool_;
};

// The read-side core of Engine::Query: enumerates the facts of `relation`
// matching the goal's argument patterns, probing the relation's composite
// hash index on all ground scons-free argument positions. Pure read --
// concurrent callers over an immutable relation only contend on the lazy
// index build, which Relation handles internally.
StatusOr<std::vector<Tuple>> QueryRelation(TermFactory* factory,
                                           const LiteralIr& goal,
                                           const Relation& relation);

}  // namespace ldl

#endif  // LDL1_EVAL_ENGINE_H_
