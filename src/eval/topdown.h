// Memoized top-down (QSQ-style) evaluation.
//
// Magic sets (§6) exist to make bottom-up evaluation as goal-directed as
// top-down resolution with memoing ([BMSU86] frames the comparison). This
// engine is that baseline: SLD-style goal expansion with answer tables per
// call pattern, iterated to a fixpoint so recursive calls converge
// (OLDT/QSQR-lite).
//
//   * A call pattern is a predicate plus its argument patterns with the
//     caller's free variables canonically renamed; each pattern owns an
//     answer table.
//   * Recursive calls read the current (partial) table; the root query is
//     re-expanded until no table grows.
//   * Negated and grouping-rule subgoals are evaluated in *complete* mode
//     (their own nested fixpoint) before use -- stratification guarantees
//     those nested evaluations never re-enter the caller's stratum, so the
//     §3.2 semantics is preserved.
//
// Restrictions: head set-patterns unify rigidly against call patterns (the
// evaluation engines' enumerative set matching still applies to body
// literals); calls are never subsumption-checked across tables (a bf call
// and an ff call keep separate tables), matching textbook QSQ.
#ifndef LDL1_EVAL_TOPDOWN_H_
#define LDL1_EVAL_TOPDOWN_H_

#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "eval/builtins.h"
#include "eval/profile.h"
#include "eval/relation.h"
#include "program/ir.h"
#include "program/stratify.h"

namespace ldl {

struct TopDownOptions {
  size_t max_rounds = 1u << 16;      // outer fixpoint restarts
  size_t max_call_depth = 2048;      // SLD recursion depth
  size_t max_table_rows = 1u << 24;  // total answers across tables
  BuiltinLimits builtin_limits;
};

struct TopDownStats {
  size_t calls = 0;        // table lookups (memo hits + misses)
  size_t expansions = 0;   // rule-body evaluations
  size_t answers = 0;      // distinct facts tabled
  size_t restarts = 0;     // outer fixpoint rounds
};

class TopDownEngine {
 public:
  // `edb` supplies the extensional relations; `program` must be analyzed
  // (admissible) with `stratification` matching it.
  TopDownEngine(TermFactory* factory, Catalog* catalog, const ProgramIr* program,
                const Stratification* stratification, const Database* edb,
                TopDownOptions options = {});

  TopDownEngine(const TopDownEngine&) = delete;
  TopDownEngine& operator=(const TopDownEngine&) = delete;

  // Answers `goal` (positive, non-builtin). Tables persist across queries
  // on the same engine instance.
  StatusOr<std::vector<Tuple>> Query(const LiteralIr& goal);

  const TopDownStats& stats() const { return stats_; }
  size_t table_count() const { return tables_.size(); }

  // Attributes rule expansions (firings + wall time) to *profile while
  // solving; null (the default) disables collection. The caller fills the
  // profile's TopDownProfile rollup from stats() afterwards.
  void set_profile(EvalProfile* profile) { profile_ = profile; }

 private:
  struct TableEntry {
    PredId pred = kInvalidPred;
    std::vector<const Term*> pattern;  // canonicalized call arguments
    std::vector<Tuple> rows;
    std::unordered_set<Tuple, TupleHash> index;
    bool started = false;   // expanded in the current restart round
    bool complete = false;  // fixpointed; never re-expanded
  };

  // Canonicalizes the instantiated call arguments (vars renamed to shared
  // placeholders in first-occurrence order) and returns the table.
  StatusOr<TableEntry*> TableFor(PredId pred,
                                 const std::vector<const Term*>& pattern);

  // Runs the call to completion (nested fixpoint); marks reachable tables
  // complete.
  Status SolveComplete(PredId pred, const std::vector<const Term*>& pattern,
                       TableEntry** entry_out);

  // One expansion pass for the call (guarded by `started`).
  Status SolveCall(PredId pred, const std::vector<const Term*>& pattern,
                   size_t depth, TableEntry** entry_out);

  Status ExpandRule(const RuleIr& rule, TableEntry* entry, size_t depth);
  Status ExpandGroupingRule(const RuleIr& rule, TableEntry* entry, size_t depth);

  // Enumerates body solutions; positive IDB subgoals are solved via
  // SolveCall (or SolveComplete when complete_mode).
  Status SolveBody(const RuleIr& rule, const std::vector<int>& order, size_t k,
                   Subst* subst, size_t depth, bool complete_mode,
                   const std::function<bool(const Subst&)>& yield,
                   bool* keep_going);

  Status Insert(TableEntry* entry, const Tuple& fact);
  std::vector<Symbol> BoundRuleVars(const Subst& subst) const;

  bool IsIdb(PredId pred) const;
  std::vector<const Term*> InstantiateCall(const LiteralIr& literal,
                                           const Subst& subst);
  const Term* CanonicalVar(size_t index);

  TermFactory* factory_;
  Catalog* catalog_;
  const ProgramIr* program_;
  const Stratification* stratification_;
  const Database* edb_;
  TopDownOptions options_;
  // Head predicates of *program_, computed at construction. IsIdb consults
  // this instead of the catalog's live has_rules flag so a concurrent
  // re-analysis (ldl::Service writer) cannot flip a subgoal between IDB
  // and EDB treatment mid-evaluation.
  std::vector<bool> idb_;
  TopDownStats stats_;
  EvalProfile* profile_ = nullptr;

  std::map<std::string, TableEntry> tables_;
  std::vector<const Term*> canonical_vars_;
  bool grew_ = false;
  size_t total_rows_ = 0;
};

}  // namespace ldl

#endif  // LDL1_EVAL_TOPDOWN_H_
