// The set-grouping operator (paper §2.2 semantics, §3.2 bottom-up r(M)).
//
// For a grouping rule  p(t1, ..., <Y>, ..., tn) <-- body  the body's
// solution relation is partitioned by the values of Z (all variables of the
// non-grouped head arguments); within each partition the Y values are
// collected into a finite set. Only non-empty groups produce facts.
#ifndef LDL1_EVAL_GROUPING_H_
#define LDL1_EVAL_GROUPING_H_

#include <vector>

#include "base/status.h"
#include "eval/rule_eval.h"

namespace ldl {

// One produced group: the finished head fact plus its partition key (the
// instantiated Z-variable values). The key is what the magic-set scheduler
// uses to reconcile regrown groups.
struct GroupResult {
  Tuple key;
  Tuple fact;
};

// Evaluates `evaluator`'s rule (which must be a grouping rule) over `db` and
// returns one GroupResult per non-empty partition.
StatusOr<std::vector<GroupResult>> ComputeGroups(TermFactory& factory,
                                                 RuleEvaluator& evaluator,
                                                 const Database& db,
                                                 EvalStats* stats);

}  // namespace ldl

#endif  // LDL1_EVAL_GROUPING_H_
