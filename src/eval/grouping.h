// The set-grouping operator (paper §2.2 semantics, §3.2 bottom-up r(M)).
//
// For a grouping rule  p(t1, ..., <Y>, ..., tn) <-- body  the body's
// solution relation is partitioned by the values of Z (all variables of the
// non-grouped head arguments); within each partition the Y values are
// collected into a finite set. Only non-empty groups produce facts.
#ifndef LDL1_EVAL_GROUPING_H_
#define LDL1_EVAL_GROUPING_H_

#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "eval/rule_eval.h"

namespace ldl {

// One produced group: the finished head fact plus its partition key (the
// instantiated Z-variable values). The key is what the magic-set scheduler
// uses to reconcile regrown groups.
struct GroupResult {
  Tuple key;
  Tuple fact;
};

// Cross-round reuse of canonicalized groups. The saturating (magic)
// evaluator recomputes every grouping rule once per global round; most
// partitions do not change between rounds, so re-sorting and re-interning
// their member sets is wasted work. `member_count` is the partition's body
// solution count *including duplicates*: body solutions only accumulate
// across saturation rounds (relations grow monotonically between grouping
// firings), so an unchanged count implies an unchanged member multiset and
// the cached fact can be reused verbatim (EvalStats::groups_reused); any
// growth rebuilds and replaces the entry (groups_built).
struct GroupCacheEntry {
  size_t member_count = 0;
  Tuple fact;
};
using GroupCache = std::unordered_map<Tuple, GroupCacheEntry, TupleHash>;

// Evaluates `evaluator`'s rule (which must be a grouping rule) over `db` and
// returns one GroupResult per non-empty partition. With a non-null `cache`,
// partitions whose member count matches the cached entry reuse the cached
// fact instead of re-canonicalizing (see GroupCacheEntry). With `batch` set
// (and the evaluator holding a compiled plan) the body enumerates
// block-at-a-time and partitioning reads Z/Y values straight from
// precomputed plan slots; partitions, member multisets, and counters are
// identical to the scalar enumeration.
StatusOr<std::vector<GroupResult>> ComputeGroups(
    TermFactory& factory, RuleEvaluator& evaluator, const Database& db,
    EvalStats* stats, GroupCache* cache = nullptr, bool batch = false,
    size_t batch_block_rows = kDefaultBlockRows);

}  // namespace ldl

#endif  // LDL1_EVAL_GROUPING_H_
