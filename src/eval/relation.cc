#include "eval/relation.h"

#include <cassert>

namespace ldl {

bool Relation::Insert(const Tuple& tuple) {
  assert(tuple.size() == arity_);
  auto [it, inserted] = lookup_.emplace(tuple, rows_.size());
  if (!inserted) {
    size_t row = it->second;
    if (live_[row]) return false;
    // Re-insert of a tombstoned fact: revive in place. The row keeps its old
    // id, so delta windows opened after the deletion will not see it; the
    // magic scheduler re-runs affected rules anyway.
    live_[row] = true;
    ++live_count_;
    return true;
  }
  rows_.push_back(tuple);
  live_.push_back(true);
  ++live_count_;
  size_t row = rows_.size() - 1;
  for (uint32_t c = 0; c < arity_; ++c) {
    if (!index_built_.empty() && index_built_[c]) {
      column_index_[c].emplace(tuple[c], row);
    }
  }
  return true;
}

bool Relation::Contains(const Tuple& tuple) const {
  auto it = lookup_.find(tuple);
  return it != lookup_.end() && live_[it->second];
}

bool Relation::Erase(const Tuple& tuple) {
  auto it = lookup_.find(tuple);
  if (it == lookup_.end() || !live_[it->second]) return false;
  live_[it->second] = false;
  --live_count_;
  return true;
}

void Relation::EnsureIndex(uint32_t column) const {
  if (index_built_.empty()) {
    index_built_.assign(arity_, false);
    column_index_.resize(arity_);
  }
  if (index_built_[column]) return;
  index_built_[column] = true;
  for (size_t row = 0; row < rows_.size(); ++row) {
    column_index_[column].emplace(rows_[row][column], row);
  }
}

void Relation::Probe(uint32_t column, const Term* value, size_t from, size_t to,
                     std::vector<size_t>* out) const {
  EnsureIndex(column);
  out->clear();
  auto [begin, end] = column_index_[column].equal_range(value);
  for (auto it = begin; it != end; ++it) {
    size_t row = it->second;
    if (row >= from && row < to && live_[row]) out->push_back(row);
  }
}

std::vector<Tuple> Relation::Snapshot() const {
  std::vector<Tuple> result;
  result.reserve(live_count_);
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (live_[i]) result.push_back(rows_[i]);
  }
  return result;
}

void Relation::Clear() {
  rows_.clear();
  live_.clear();
  live_count_ = 0;
  lookup_.clear();
  column_index_.clear();
  index_built_.clear();
}

Relation& Database::relation(PredId pred) {
  if (relations_.size() <= pred) {
    relations_.reserve(catalog_->size());
    while (relations_.size() < catalog_->size()) {
      relations_.emplace_back(catalog_->info(static_cast<PredId>(relations_.size())).arity);
    }
  }
  return relations_[pred];
}

const Relation& Database::relation(PredId pred) const {
  return const_cast<Database*>(this)->relation(pred);
}

size_t Database::TotalFacts() const {
  size_t total = 0;
  for (const Relation& relation : relations_) total += relation.size();
  return total;
}

void Database::CopyFrom(const Database& other, const std::vector<PredId>& preds) {
  for (PredId pred : preds) {
    const Relation& source = other.relation(pred);
    Relation& target = relation(pred);
    source.ForEachRow(0, source.row_count(),
                      [&](size_t, const Tuple& tuple) { target.Insert(tuple); });
  }
}

}  // namespace ldl
