#include "eval/relation.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace ldl {

size_t Relation::FindRow(RowRef tuple, uint64_t hash) const {
  size_t mask = table_.size() - 1;
  size_t idx = hash & mask;
  while (table_[idx] != kEmptySlot) {
    uint32_t row = table_[idx];
    if (row_hash_[row] == hash &&
        std::equal(tuple.begin(), tuple.end(), data_.begin() + row * arity_)) {
      return row;
    }
    idx = (idx + 1) & mask;
  }
  return kNoRow;
}

void Relation::GrowTable() {
  size_t capacity = table_.empty() ? 16 : table_.size() * 2;
  table_.assign(capacity, kEmptySlot);
  size_t mask = capacity - 1;
  for (size_t row = 0; row < row_count_; ++row) {
    size_t idx = row_hash_[row] & mask;
    while (table_[idx] != kEmptySlot) idx = (idx + 1) & mask;
    table_[idx] = static_cast<uint32_t>(row);
  }
}

bool Relation::Insert(RowRef tuple) {
  assert(tuple.size() == arity_);
  // Grow at 7/8 load (entries are never removed, so load only rises).
  if ((row_count_ + 1) * 8 >= table_.size() * 7) GrowTable();
  uint64_t hash = HashRow(tuple);
  size_t mask = table_.size() - 1;
  size_t idx = hash & mask;
  while (table_[idx] != kEmptySlot) {
    uint32_t row = table_[idx];
    if (row_hash_[row] == hash &&
        std::equal(tuple.begin(), tuple.end(), data_.begin() + row * arity_)) {
      if (live_[row]) {
        if (counted_) {
          // A pinned (saturated) count can never reach zero again, so the
          // counts as a whole stop being trustworthy for deletion.
          if (counts_[row] == UINT32_MAX) {
            DisableCounts();
          } else {
            ++counts_[row];
          }
        }
        return false;
      }
      // Re-insert of a tombstoned fact: revive in place. The row keeps its
      // old id, so delta windows opened after the deletion will not see it;
      // the magic scheduler re-runs affected rules anyway. Index entries for
      // the row were never removed, so no index repair is needed either.
      live_[row] = true;
      ++live_count_;
      if (counted_) counts_[row] = 1;
      return true;
    }
    idx = (idx + 1) & mask;
  }
  size_t row = row_count_++;
  table_[idx] = static_cast<uint32_t>(row);
  data_.insert(data_.end(), tuple.begin(), tuple.end());
  row_hash_.push_back(hash);
  live_.push_back(true);
  ++live_count_;
  if (counted_) counts_.push_back(1);
  // Fold the new row into the per-column distinct sketches (planner stats).
  if (sketches_.size() < arity_) sketches_.resize(arity_, ColumnSketch{});
  for (uint32_t col = 0; col < arity_; ++col) {
    uint64_t pos = tuple[col]->hash() & (kSketchWords * 64 - 1);
    sketches_[col][pos >> 6] |= uint64_t{1} << (pos & 63);
  }
  // Maintain built indexes. Insert only runs in single-writer phases (the
  // merge barrier or serial evaluation), so mutating the maps is safe.
  for (CompositeIndex* index = index_head_.load(std::memory_order_acquire);
       index != nullptr; index = index->next) {
    uint64_t h = 0x7e11ab1eULL;
    for (uint32_t col : index->cols) h = HashCombine(h, tuple[col]->hash());
    index->map[h].push_back(static_cast<uint32_t>(row));
  }
  return true;
}

bool Relation::Contains(RowRef tuple) const {
  if (table_.empty()) return false;
  size_t row = FindRow(tuple, HashRow(tuple));
  return row != kNoRow && live_[row];
}

size_t Relation::Find(RowRef tuple) const {
  if (table_.empty()) return npos;
  size_t row = FindRow(tuple, HashRow(tuple));
  return row == kNoRow ? npos : row;
}

bool Relation::Erase(RowRef tuple) {
  if (table_.empty()) return false;
  size_t row = FindRow(tuple, HashRow(tuple));
  if (row == kNoRow || !live_[row]) return false;
  live_[row] = false;
  --live_count_;
  return true;
}

const Relation::CompositeIndex& Relation::EnsureIndex(
    std::span<const uint32_t> cols) const {
  // Fast path: lock-free walk of the published list.
  for (const CompositeIndex* index = index_head_.load(std::memory_order_acquire);
       index != nullptr; index = index->next) {
    if (std::equal(index->cols.begin(), index->cols.end(), cols.begin(),
                   cols.end())) {
      return *index;
    }
  }
  // Miss: build under the lock, re-checking for a racing builder. The node
  // is fully constructed before the release store publishes it, so readers
  // that observe the new head see a complete index.
  std::lock_guard<std::mutex> lock(index_mu_);
  CompositeIndex* head = index_head_.load(std::memory_order_relaxed);
  for (CompositeIndex* index = head; index != nullptr; index = index->next) {
    if (std::equal(index->cols.begin(), index->cols.end(), cols.begin(),
                   cols.end())) {
      return *index;
    }
  }
  auto* index = new CompositeIndex;
  index->cols.assign(cols.begin(), cols.end());
  index->map.reserve(row_count_);
  // Index tombstoned rows too: a later revival keeps the row id, and probes
  // filter on live_ anyway.
  for (size_t row = 0; row < row_count_; ++row) {
    uint64_t h = 0x7e11ab1eULL;
    for (uint32_t col : index->cols) {
      h = HashCombine(h, data_[row * arity_ + col]->hash());
    }
    index->map[h].push_back(static_cast<uint32_t>(row));
  }
  index->next = head;
  index_head_.store(index, std::memory_order_release);
  return *index;
}

void Relation::FreeIndexes() {
  CompositeIndex* index = index_head_.exchange(nullptr, std::memory_order_acquire);
  while (index != nullptr) {
    CompositeIndex* next = index->next;
    delete index;
    index = next;
  }
}

void Relation::Probe(uint32_t column, const Term* value, size_t from, size_t to,
                     std::vector<size_t>* out) const {
  out->clear();
  ProbeRows({&column, 1}, {&value, 1}, from, to, [&](size_t row) {
    out->push_back(row);
    return true;
  });
}

double Relation::DistinctEstimate(uint32_t column) const {
  if (column >= sketches_.size() || live_count_ == 0) {
    return static_cast<double>(live_count_);
  }
  constexpr double kBits = kSketchWords * 64;
  size_t ones = 0;
  for (uint64_t word : sketches_[column]) ones += std::popcount(word);
  size_t zeros = kSketchWords * 64 - ones;
  // Linear counting: E[distinct] = B * ln(B / zeros). A saturated sketch
  // (zeros == 0) can't discriminate beyond ~B*ln(B); fall back to the row
  // count, which is the true upper bound anyway.
  double estimate = zeros == 0
                        ? static_cast<double>(live_count_)
                        : kBits * std::log(kBits / static_cast<double>(zeros));
  return std::min(estimate, static_cast<double>(live_count_));
}

RelationStats Relation::Stats() const {
  RelationStats stats;
  stats.rows = live_count_;
  stats.raw_rows = row_count_;
  stats.column_distinct.reserve(arity_);
  for (uint32_t col = 0; col < arity_; ++col) {
    stats.column_distinct.push_back(DistinctEstimate(col));
  }
  return stats;
}

std::vector<Tuple> Relation::Snapshot() const {
  std::vector<Tuple> result;
  result.reserve(live_count_);
  for (size_t i = 0; i < row_count_; ++i) {
    if (live_[i]) {
      RowRef r = row(i);
      result.emplace_back(r.begin(), r.end());
    }
  }
  return result;
}

void Relation::Clear() {
  data_.clear();
  row_count_ = 0;
  row_hash_.clear();
  live_.clear();
  live_count_ = 0;
  table_.clear();
  counts_.clear();  // counted_ survives: re-derivation recounts from scratch
  sketches_.clear();
  // Keep the index nodes linked (holders of the relation may still walk
  // them); just drop their contents. Insert repopulates the maps, so a
  // retained index stays consistent with the emptied row store.
  for (CompositeIndex* index = index_head_.load(std::memory_order_acquire);
       index != nullptr; index = index->next) {
    index->map.clear();
  }
  ++epoch_;
}

void Database::Grow() {
  while (relations_.size() < catalog_->size()) {
    relations_.emplace_back(
        catalog_->info(static_cast<PredId>(relations_.size())).arity);
  }
}

Relation& Database::relation(PredId pred) {
  if (relations_.size() <= pred) Grow();
  return relations_[pred];
}

const Relation& Database::relation(PredId pred) const {
  return const_cast<Database*>(this)->relation(pred);
}

size_t Database::TotalFacts() const {
  size_t total = 0;
  for (const Relation& relation : relations_) total += relation.size();
  return total;
}

void Database::CopyFrom(const Database& other, const std::vector<PredId>& preds) {
  for (PredId pred : preds) {
    const Relation& source = other.relation(pred);
    Relation& target = relation(pred);
    source.ForEachRow(0, source.row_count(),
                      [&](size_t, RowRef tuple) { target.Insert(tuple); });
  }
}

}  // namespace ldl
