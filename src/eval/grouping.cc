#include "eval/grouping.h"

#include <unordered_map>
#include <utility>

#include "eval/bindings.h"

namespace ldl {

namespace {

struct Partition {
  Tuple head_values;                // instantiated non-grouped head args
  TermFactory::SetBuilder members;  // collected Y values (deduped at Build)
};
using PartitionMap = std::unordered_map<Tuple, Partition, TupleHash>;

// Canonicalizes the accumulated partitions into GroupResults, consulting
// the cross-round group cache (see GroupCacheEntry). Shared by the batch
// and scalar enumerations in ComputeGroups, so the two paths cannot drift.
std::vector<GroupResult> FinishGroups(const RuleIr& rule,
                                      PartitionMap partitions, EvalStats* stats,
                                      GroupCache* cache) {
  std::vector<GroupResult> results;
  results.reserve(partitions.size());
  for (auto& [partition_key, partition] : partitions) {
    GroupResult result;
    result.key = partition_key;
    const size_t member_count = partition.members.size();
    if (cache != nullptr) {
      auto it = cache->find(partition_key);
      if (it != cache->end() && it->second.member_count == member_count) {
        // Unchanged member multiset (see GroupCacheEntry): reuse the
        // canonical fact without re-sorting or re-interning.
        if (stats != nullptr) ++stats->groups_reused;
        result.fact = it->second.fact;
        results.push_back(std::move(result));
        continue;
      }
    }
    if (stats != nullptr) ++stats->groups_built;
    result.fact = std::move(partition.head_values);
    result.fact[rule.group_index] = partition.members.Build();
    if (cache != nullptr) {
      (*cache)[partition_key] = GroupCacheEntry{member_count, result.fact};
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace

StatusOr<std::vector<GroupResult>> ComputeGroups(
    TermFactory& factory, RuleEvaluator& evaluator, const Database& db,
    EvalStats* stats, GroupCache* cache, bool batch,
    size_t batch_block_rows) {
  const RuleIr& rule = evaluator.rule();
  if (!rule.is_grouping()) {
    return InternalError("ComputeGroups called on a non-grouping rule");
  }

  // Z = variables of the non-grouped head arguments (§2.2). Z may include
  // the grouped variable itself, in which case groups are singletons.
  std::vector<Symbol> z_vars;
  for (size_t i = 0; i < rule.head_args.size(); ++i) {
    if (static_cast<int>(i) == rule.group_index) continue;
    CollectVars(rule.head_args[i], &z_vars);
  }
  const Term* group_var_term = factory.MakeVar(rule.group_var);

  PartitionMap partitions;

  // The key tuple is rebuilt per solution but the buffer is hoisted out of
  // the hot lambda; it only relocates into the map on a fresh partition.
  Tuple key;
  Status inner_status;
  Status status;
  if (batch && evaluator.has_plan()) {
    // Block path: Z and Y values read straight from plan slots resolved
    // once up front (the scalar path's per-solution Lookup binary-searches
    // var_slots every time). Plan-executor slots hold evaluated ground
    // terms, so the key/ground checks mirror the plan branch below exactly.
    const JoinPlan* plan = evaluator.plan();
    std::vector<int> z_slots;
    z_slots.reserve(z_vars.size());
    for (Symbol var : z_vars) z_slots.push_back(plan->SlotOf(var));
    const int group_slot = plan->SlotOf(rule.group_var);
    status = evaluator.ForEachBlock(
        db, {},
        [&](const TupleBlock& block) {
          for (uint32_t idx : block.sel()) {
            const Term* const* src = block.row(idx);
            key.clear();
            key.reserve(z_slots.size());
            for (int slot : z_slots) {
              const Term* value = slot >= 0 ? src[slot] : nullptr;
              if (value == nullptr || !value->ground()) {
                inner_status = InternalError(
                    "grouping key variable unbound in a body solution");
                return false;
              }
              key.push_back(value);
            }
            const Term* y = group_slot >= 0 ? src[group_slot] : nullptr;
            if (y == nullptr) {
              inner_status =
                  InternalError("grouped variable unbound in a body solution");
              return false;
            }
            auto it = partitions.find(key);
            if (it == partitions.end()) {
              SolutionView view(plan, {src, block.width()});
              InstantiationResult head = evaluator.InstantiateHead(view);
              if (head.unbound) {
                inner_status =
                    InternalError("head variable unbound under grouping");
                return false;
              }
              if (head.outside_universe) continue;  // no U-fact for this key
              Partition partition{std::move(head.tuple),
                                  TermFactory::SetBuilder(&factory)};
              partition.members.Add(y);
              partitions.emplace(std::move(key), std::move(partition));
              key = Tuple();
            } else {
              it->second.members.Add(y);
            }
          }
          return true;
        },
        stats, batch_block_rows);
    LDL_RETURN_IF_ERROR(status);
    LDL_RETURN_IF_ERROR(inner_status);
    return FinishGroups(rule, std::move(partitions), stats, cache);
  }
  status = evaluator.ForEachSolution(
      db, {},
      [&](const SolutionView& view) {
        // Key: the Z-variable values.
        key.clear();
        key.reserve(z_vars.size());
        for (Symbol var : z_vars) {
          const Term* value = view.Lookup(var);
          if (value == nullptr || !value->ground()) {
            inner_status = InternalError(
                "grouping key variable unbound in a body solution");
            return false;
          }
          key.push_back(value);
        }
        // Y: the grouped value. Plan-executor slots hold evaluated ground
        // terms already; the legacy substitution may still need the pattern
        // instantiated (scons evaluation, outside-U detection).
        const Term* y;
        if (view.subst() == nullptr) {
          y = view.Lookup(rule.group_var);
          if (y == nullptr) {
            inner_status =
                InternalError("grouped variable unbound in a body solution");
            return false;
          }
        } else {
          bool y_ground = true;
          y = InstantiateGround(factory, group_var_term, *view.subst(), &y_ground);
          if (y == nullptr) {
            if (!y_ground) {
              inner_status =
                  InternalError("grouped variable unbound in a body solution");
              return false;
            }
            return true;  // outside U: contributes no element
          }
        }

        auto it = partitions.find(key);
        if (it == partitions.end()) {
          // Instantiate the head argument values for this partition.
          InstantiationResult head = evaluator.InstantiateHead(view);
          if (head.unbound) {
            inner_status = InternalError("head variable unbound under grouping");
            return false;
          }
          if (head.outside_universe) return true;  // no U-fact for this key
          Partition partition{std::move(head.tuple),
                              TermFactory::SetBuilder(&factory)};
          partition.members.Add(y);
          partitions.emplace(std::move(key), std::move(partition));
          key = Tuple();
        } else {
          it->second.members.Add(y);
        }
        return true;
      },
      stats);
  LDL_RETURN_IF_ERROR(status);
  LDL_RETURN_IF_ERROR(inner_status);
  return FinishGroups(rule, std::move(partitions), stats, cache);
}

}  // namespace ldl
