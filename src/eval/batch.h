// Block-at-a-time execution core for compiled join plans.
//
// The scalar executor in rule_eval.cc moves one binding at a time through a
// recursive ExecStep call per body literal, paying a callback dispatch, a
// branchy tombstone test, and a per-probe key hash for every candidate row.
// This file batches that pipeline: bindings travel in TupleBlocks (flat,
// fixed-capacity chunks of slot rows plus a selection vector), and each
// LiteralPlan step becomes a kernel that consumes a whole input block before
// handing its output block downstream:
//
//   * scan kernel      -- gathers the window's live row ids once per input
//                         block (tombstones filtered in one pass, not per
//                         candidate), then runs the match program over the
//                         dense id array;
//   * probe kernel     -- hashes every selected row's probe key in one pass
//                         over the block, then probes the composite index
//                         with the precomputed hashes;
//   * filter kernels   -- output-free comparison built-ins and ground
//                         negation refine the selection vector in place (no
//                         row copies);
//   * scalar fallbacks -- generic unification, output-producing built-ins,
//                         and residual-variable negation run the exact
//                         per-row logic of the scalar executor inside the
//                         block loop, so set/complex terms lose nothing;
//   * emit kernel      -- head rows for a whole solution block are built
//                         straight from plan slots into a flat RowBuffer
//                         (no per-solution Tuple allocation), which the
//                         engine inserts in bulk at the merge barrier.
//
// Determinism and counter parity: kernels enumerate (input row, candidate
// row) pairs in exactly the scalar executor's depth-first order -- input
// rows in selection order, candidates in ascending row id -- and blocks
// drain fully before the next input row group, so the solution stream, the
// derivation counts (each solution yields exactly one Insert), and every
// EvalStats/RuleProfile counter (tuples_matched, index_probes, probe_hits,
// solutions) are identical to the scalar path. tests/equivalence_test.cc
// asserts this over the corpus; DESIGN.md §12 gives the argument.
#ifndef LDL1_EVAL_BATCH_H_
#define LDL1_EVAL_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "base/status.h"
#include "eval/builtins.h"
#include "eval/plan.h"
#include "eval/relation.h"
#include "program/ir.h"
#include "term/term_ops.h"

namespace ldl {

struct EvalStats;
struct LiteralWindow;

// Default rows per block: sized so a block of typical width (a handful of
// slots) stays inside L1/L2 alongside the probe-hash scratch.
inline constexpr size_t kDefaultBlockRows = 256;

// A fixed-capacity chunk of bound rows. Each row is `width` interned term
// pointers (one per plan slot); `sel` lists the active rows in enumeration
// order (filter kernels narrow it without moving rows; an index may repeat
// when a built-in yields the same binding more than once, preserving the
// scalar executor's duplicate solutions). Rows carry an implicit derivation
// count of one -- every selected row is exactly one body solution, which is
// what keeps Relation's per-row derivation counts exact under batching.
class TupleBlock {
 public:
  void Reset(size_t width, size_t capacity) {
    width_ = width;
    capacity_ = capacity;
    data_.resize(width * capacity);
    sel_.clear();
    rows_ = 0;
  }
  void Clear() {
    sel_.clear();
    rows_ = 0;
  }

  size_t width() const { return width_; }
  size_t capacity() const { return capacity_; }
  size_t row_count() const { return rows_; }
  bool full() const { return rows_ == capacity_; }
  bool empty() const { return sel_.empty(); }

  const std::vector<uint32_t>& sel() const { return sel_; }
  std::vector<uint32_t>* mutable_sel() { return &sel_; }

  const Term** row(size_t i) { return data_.data() + i * width_; }
  const Term* const* row(size_t i) const { return data_.data() + i * width_; }

  // Appends a copy of `src` (width terms) as a selected row and returns the
  // writable copy (kernels bind new slots into it). Caller checks full().
  const Term** AppendRow(const Term* const* src) {
    const Term** dst = row(rows_);
    for (size_t i = 0; i < width_; ++i) dst[i] = src[i];
    sel_.push_back(static_cast<uint32_t>(rows_));
    ++rows_;
    return dst;
  }
  // Drops the most recently appended row (a match program that failed
  // after binding).
  void PopRow() {
    sel_.pop_back();
    --rows_;
  }

 private:
  std::vector<const Term*> data_;
  std::vector<uint32_t> sel_;
  size_t width_ = 0;
  size_t capacity_ = 0;
  size_t rows_ = 0;
};

// Flat accumulator for head tuples of one fixed arity: the batch emit
// buffer. Replaces std::vector<Tuple> (one heap allocation per solution)
// with a single growing array the engine inserts from at the merge barrier.
class RowBuffer {
 public:
  explicit RowBuffer(size_t width) : width_(width) {}

  size_t width() const { return width_; }
  size_t size() const { return rows_; }
  RowRef row(size_t i) const { return {data_.data() + i * width_, width_}; }

  // Reserves one row and returns its writable storage (null for arity 0).
  const Term** AppendRow() {
    data_.resize(data_.size() + width_);
    ++rows_;
    return data_.data() + (rows_ - 1) * width_;
  }
  void AppendRow(const Term* const* src) {
    const Term** dst = AppendRow();
    for (size_t i = 0; i < width_; ++i) dst[i] = src[i];
  }
  void Clear() {
    data_.clear();
    rows_ = 0;
  }

 private:
  size_t width_;
  size_t rows_ = 0;
  std::vector<const Term*> data_;
};

// Receives each block of completed body solutions (all plan slots bound,
// `sel` in enumeration order). Return false to stop the enumeration; the
// stop is block-granular (the delivered block was already counted whole),
// so sinks that need scalar-identical counters must consume every block --
// the engine's sinks only stop on error, where counters are moot.
using BlockFn = std::function<bool(const TupleBlock&)>;

// Drives one compiled (rule, plan) pair block-at-a-time. Construction
// allocates the per-step blocks and scratch once; Run may be called
// repeatedly (the engine reuses one executor per rule application).
class BlockExecutor {
 public:
  BlockExecutor(TermFactory* factory, const RuleIr* rule, const JoinPlan* plan,
                BuiltinLimits limits, size_t block_rows = kDefaultBlockRows);

  // Enumerates body solutions against `db`, handing completed blocks to
  // `sink`. `windows` is indexed by body literal position, as in
  // RuleEvaluator::ForEachSolution. Counter-for-counter equivalent to the
  // scalar plan executor (see file comment).
  Status Run(const Database& db, const std::vector<LiteralWindow>& windows,
             const BlockFn& sink, EvalStats* stats);

 private:
  // Expands `in`'s selected rows through step `depth` into blocks_[depth],
  // flushing downstream whenever a block fills; drains fully on return.
  Status ProcessBlock(const Database& db,
                      const std::vector<LiteralWindow>& windows, size_t depth,
                      TupleBlock& in, const BlockFn& sink, EvalStats* stats);

  TermFactory* factory_;
  const RuleIr* rule_;
  const JoinPlan* plan_;
  BuiltinLimits limits_;
  size_t block_rows_;

  // Per-step working storage. Scratch must be per step, not shared: a flush
  // re-enters ProcessBlock for the downstream step while the upstream step
  // is still iterating its own scratch.
  struct StepScratch {
    std::vector<const Term*> keys;   // probe keys, step.probe.size() per row
    std::vector<uint64_t> hashes;    // precomputed key hash per selected row
    std::vector<uint32_t> live_rows; // gathered live row ids (scan kernel)
    std::vector<uint32_t> sel;       // refined selection (filter kernels)
  };

  bool keep_going_ = true;
  TupleBlock root_;                  // one all-null row feeding step 0
  std::vector<TupleBlock> blocks_;   // blocks_[d]: output block of step d
  std::vector<StepScratch> scratch_;
};

// Emit kernel: builds the head row for every selected solution in `block`
// straight from plan slots into `out`. Only valid for plans with
// head_simple(); returns false if a head slot is unbound (an internal
// error the caller reports).
bool EmitHeadBlock(const JoinPlan& plan, const TupleBlock& block,
                   RowBuffer* out);

}  // namespace ldl

#endif  // LDL1_EVAL_BATCH_H_
