// Fact storage: tuples of interned terms in a flat column-major-free array
// with O(1) dedup via an open-addressing row table, lazily built composite
// (multi-column) hash indexes, stable row ids for semi-naive delta windows,
// and tombstone deletion (needed by the magic-set scheduler's group
// reconciliation).
//
// Concurrency contract: during a parallel fixpoint round the relation is
// read-only -- workers probe and scan, and all Inserts happen at the merge
// barrier on one thread. The only mutation a *read* can trigger is building
// a missing lazy index, so indexes live in an append-only linked list with
// an atomic head: readers walk the list lock-free, builders serialize on a
// mutex and publish fully-constructed nodes with a release store.
#ifndef LDL1_EVAL_RELATION_H_
#define LDL1_EVAL_RELATION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "program/catalog.h"
#include "term/term.h"

namespace ldl {

// A fact's argument vector (owning). Terms are interned, so hashing and
// equality are on pointers.
using Tuple = std::vector<const Term*>;
// A non-owning view of a stored fact.
using RowRef = std::span<const Term* const>;

struct TupleHash {
  size_t operator()(const Tuple& tuple) const {
    uint64_t h = 0x12345;
    for (const Term* t : tuple) h = HashCombine(h, t->hash());
    return static_cast<size_t>(h);
  }
};

// Planner-facing snapshot of a relation's statistics: live cardinality plus
// a per-column distinct-value estimate (capped at `rows`). Cheap to take --
// one popcount pass over the fixed-width sketches. `raw_rows` counts
// tombstoned rows too, so raw_rows - rows is the dead-row bloat a scan still
// pays for (`:stats` reports the ratio); the cost model prices with `rows`
// only.
struct RelationStats {
  size_t rows = 0;
  size_t raw_rows = 0;
  std::vector<double> column_distinct;
};

class Relation {
 public:
  explicit Relation(uint32_t arity = 0) : arity_(arity) {}
  ~Relation() { FreeIndexes(); }

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  uint32_t arity() const { return arity_; }
  void set_arity(uint32_t arity) { arity_ = arity; }

  // Inserts a fact; returns false if it was already present. On a counted
  // relation a duplicate insert increments the row's derivation count (each
  // Insert call is one derivation) and a fresh or revived row starts at 1.
  bool Insert(RowRef tuple);
  bool Contains(RowRef tuple) const;
  // Removes a fact (tombstones the row). Returns false if absent.
  bool Erase(RowRef tuple);

  // Sentinel for "no such row".
  static constexpr size_t npos = static_cast<size_t>(-1);

  // Row id of `tuple` regardless of liveness (tombstoned rows stay in the
  // dedup table), or npos. Callers check IsLive() as needed.
  size_t Find(RowRef tuple) const;

  // Toggles a row's tombstone directly by id. Incremental deletion (DRed)
  // uses this to erase removed rows up front and transiently revive them
  // while enumerating joins against the pre-deletion state. No index repair
  // is needed either way: tombstoned rows keep their index entries.
  void SetLive(size_t row, bool live) {
    if (live_[row] == live) return;
    live_[row] = live;
    live ? ++live_count_ : --live_count_;
  }

  // --- Derivation counting (incremental deletion fast path) ---------------
  //
  // A counted relation tracks, per row, how many distinct rule-body
  // solutions derived it. Counts are maintained by Insert (see above) and
  // are exact only while every evaluation path that derives into the
  // relation enumerates each solution exactly once; paths that cannot
  // guarantee that (stratum recompute over kept rows, DRed rederivation)
  // call DisableCounts() and deletion falls back to delete-and-rederive.

  // Starts counting. No-op unless the relation is empty: counts for
  // pre-existing rows would be guesses, and a wrong count deletes facts
  // that still have support.
  void EnableCounts() {
    if (row_count_ != 0) return;
    counted_ = true;
    counts_.clear();
  }
  // Abandons the counts (they can no longer be trusted).
  void DisableCounts() {
    counted_ = false;
    counts_.clear();
  }
  bool counted() const { return counted_; }
  uint32_t derivation_count(size_t row) const { return counts_[row]; }

  // Removes one derivation of a live row on a counted relation; tombstones
  // the row when its count reaches zero and returns true iff it did.
  bool DecrementDerivation(size_t row) {
    if (counts_[row] > 1) {
      --counts_[row];
      return false;
    }
    counts_[row] = 0;
    SetLive(row, false);
    return true;
  }

  // Number of live facts.
  size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  // Raw row storage; row ids are stable (deletions leave tombstones).
  size_t row_count() const { return row_count_; }
  bool IsLive(size_t row) const { return live_[row]; }
  RowRef row(size_t i) const { return {data_.data() + i * arity_, arity_}; }

  // Calls fn(row_index, tuple) for every live row with index in [from, to).
  template <typename Fn>
  void ForEachRow(size_t from, size_t to, Fn&& fn) const {
    for (size_t i = from; i < to && i < row_count_; ++i) {
      if (live_[i]) fn(i, row(i));
    }
  }

  // Calls fn(row_index) for every live row in [from, to) whose `cols` equal
  // `values` component-wise; stops early when fn returns false. Builds a
  // composite hash index over `cols` on first use and maintains it
  // incrementally on Insert. Keys are combined term hashes, so candidate
  // rows are verified against `values` before the callback fires.
  template <typename Fn>
  void ProbeRows(std::span<const uint32_t> cols,
                 std::span<const Term* const> values, size_t from, size_t to,
                 Fn&& fn) const {
    const CompositeIndex& index = EnsureIndex(cols);
    auto it = index.map.find(HashKey(values));
    if (it == index.map.end()) return;
    for (uint32_t row : it->second) {
      if (row < from || row >= to || !live_[row]) continue;
      const Term* const* tuple = data_.data() + row * arity_;
      bool match = true;
      for (size_t i = 0; i < cols.size(); ++i) {
        if (tuple[cols[i]] != values[i]) {
          match = false;
          break;
        }
      }
      if (match && !fn(row)) return;
    }
  }

  // Combined hash of a probe key, for callers that batch key hashing over a
  // block of bindings before probing (eval/batch.cc). Must be fed back into
  // ProbeRowsHashed with the same `values`.
  static uint64_t ProbeHash(std::span<const Term* const> values) {
    return HashKey(values);
  }

  // ProbeRows with the key hash precomputed via ProbeHash. The batch probe
  // kernel hashes a whole block's keys in one pass, then probes; semantics
  // (verification, liveness, window, early stop) are identical to ProbeRows.
  template <typename Fn>
  void ProbeRowsHashed(std::span<const uint32_t> cols,
                       std::span<const Term* const> values, uint64_t hash,
                       size_t from, size_t to, Fn&& fn) const {
    const CompositeIndex& index = EnsureIndex(cols);
    auto it = index.map.find(hash);
    if (it == index.map.end()) return;
    for (uint32_t row : it->second) {
      if (row < from || row >= to || !live_[row]) continue;
      const Term* const* tuple = data_.data() + row * arity_;
      bool match = true;
      for (size_t i = 0; i < cols.size(); ++i) {
        if (tuple[cols[i]] != values[i]) {
          match = false;
          break;
        }
      }
      if (match && !fn(row)) return;
    }
  }

  // Appends the ids of live rows in [from, to) to `out` in ascending order.
  // The batch scan kernel gathers once per input block, amortizing the
  // per-row tombstone branch across the block's candidates.
  void CollectLiveRows(size_t from, size_t to, std::vector<uint32_t>* out) const {
    if (to > row_count_) to = row_count_;
    for (size_t i = from; i < to; ++i) {
      if (live_[i]) out->push_back(static_cast<uint32_t>(i));
    }
  }

  // Row ids of live facts whose `column` equals `value`, restricted to
  // [from, to). Convenience wrapper over ProbeRows for single-column probes.
  void Probe(uint32_t column, const Term* value, size_t from, size_t to,
             std::vector<size_t>* out) const;

  // Number of indexes built so far (single-column and composite).
  size_t index_count() const {
    size_t count = 0;
    for (const CompositeIndex* index = index_head_.load(std::memory_order_acquire);
         index != nullptr; index = index->next) {
      ++count;
    }
    return count;
  }

  // All live tuples (copy, for tests and result reporting).
  std::vector<Tuple> Snapshot() const;

  // Drops every row and bumps epoch(). Built indexes survive: their nodes
  // stay linked (the append-only contract above means callers may hold
  // references across a clear) with their maps emptied in place, and
  // Insert repopulates them. Incremental maintenance relies on this when it
  // recomputes a stratum in an otherwise-live database.
  void Clear();

  // Incremented on every Clear(). Lets holders of a long-lived Relation
  // reference detect that row ids restarted (e.g. across an incremental
  // recompute round) and refresh any cached row positions.
  uint64_t epoch() const { return epoch_; }

  // --- Planner statistics (eval/cost.h) -----------------------------------
  //
  // Per-column distinct-value estimates via linear-counting sketches: a
  // 1024-bit bitmap per column, one bit set per inserted value hash. The
  // sketches are updated only when a fresh row is appended (a revived
  // tombstone contributed its bits on first insert) and reset by Clear(),
  // so they over-approximate the live distinct count; DistinctEstimate caps
  // the result at size(). Mutation happens in Insert -- single-writer
  // phases only -- and reads happen at round start on the scheduling
  // thread, so the planner never races the sketches.

  // Estimated number of distinct values in `column` among live rows.
  // B * ln(B / zero_bits) with B = 1024, capped at size(); exact for small
  // relations until hash collisions appear (< 2% error below ~300 distinct
  // values).
  double DistinctEstimate(uint32_t column) const;

  // Snapshot of rows + all column estimates, for the cost model.
  RelationStats Stats() const;

 private:
  struct CompositeIndex {
    std::vector<uint32_t> cols;
    // Combined key hash -> row ids. Rows are never removed (tombstoned rows
    // keep their entries so revival needs no index repair); probes filter
    // on live_.
    std::unordered_map<uint64_t, std::vector<uint32_t>> map;
    // Next-older index; the list is append-at-head and never unlinked
    // outside the destructor (Clear() empties the maps but keeps the nodes
    // linked), so readers can walk it lock-free.
    CompositeIndex* next = nullptr;
  };

  static constexpr uint32_t kEmptySlot = static_cast<uint32_t>(-1);
  static constexpr size_t kNoRow = static_cast<size_t>(-1);

  static uint64_t HashKey(std::span<const Term* const> values) {
    uint64_t h = 0x7e11ab1eULL;
    for (const Term* value : values) h = HashCombine(h, value->hash());
    return h;
  }

  static uint64_t HashRow(RowRef tuple) {
    uint64_t h = 0x12345;
    for (const Term* t : tuple) h = HashCombine(h, t->hash());
    return h;
  }

  // Open-addressing lookup in table_; kNoRow when absent. table_ must be
  // non-empty.
  size_t FindRow(RowRef tuple, uint64_t hash) const;
  void GrowTable();

  // Returns the index over `cols`, building and publishing it on first use.
  // Safe to call from concurrent readers; builders serialize on index_mu_.
  const CompositeIndex& EnsureIndex(std::span<const uint32_t> cols) const;
  void FreeIndexes();

  uint32_t arity_;
  // Flat row storage: row i occupies data_[i * arity_, (i + 1) * arity_).
  std::vector<const Term*> data_;
  size_t row_count_ = 0;  // not derivable from data_ when arity_ == 0
  std::vector<uint64_t> row_hash_;  // per-row tuple hash (for table probes)
  std::vector<bool> live_;
  size_t live_count_ = 0;
  // Per-row derivation counts (parallel to live_) when counted_; see the
  // derivation-counting section above. Counts saturate at UINT32_MAX, which
  // Insert treats as "counts no longer trustworthy" and disables them.
  std::vector<uint32_t> counts_;
  bool counted_ = false;
  // Dedup table: power-of-two sized, linear probing, entries are row ids.
  // Tombstoned rows stay in the table so re-insertion revives in place.
  std::vector<uint32_t> table_;
  // Linear-counting distinct sketches, one kSketchWords-word bitmap per
  // column. Lazily sized to arity_ on first fresh insert (set_arity may run
  // after construction).
  static constexpr size_t kSketchWords = 16;  // 1024 bits
  using ColumnSketch = std::array<uint64_t, kSketchWords>;
  std::vector<ColumnSketch> sketches_;
  uint64_t epoch_ = 0;  // bumped by Clear()
  // Built indexes; relations see at most a handful of distinct probe
  // shapes, so a linear walk of the list by column set beats map overhead.
  mutable std::atomic<CompositeIndex*> index_head_{nullptr};
  mutable std::mutex index_mu_;  // serializes index construction
};

// The database: one relation per predicate.
class Database {
 public:
  explicit Database(Catalog* catalog) : catalog_(catalog) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Relation& relation(PredId pred);
  const Relation& relation(PredId pred) const;

  // The relation for `pred`, or nullptr when no relation has been created
  // for it yet. Unlike relation(), never grows the deque, so concurrent
  // readers of a frozen (published) database can look up predicates that
  // were registered in the catalog after the database stopped changing.
  const Relation* FindRelation(PredId pred) const {
    return pred < relations_.size() ? &relations_[pred] : nullptr;
  }

  bool AddFact(PredId pred, RowRef tuple) { return relation(pred).Insert(tuple); }

  // Extends `relations_` to cover every predicate currently registered in
  // the catalog. Called lazily by relation(); exposed for callers that want
  // to pre-size after registering predicates.
  void Grow();

  // Total number of facts across all predicates.
  size_t TotalFacts() const;

  // Copies the facts of `preds` from `other` (used to seed a magic
  // evaluation with the EDB).
  void CopyFrom(const Database& other, const std::vector<PredId>& preds);

  Catalog* catalog() const { return catalog_; }

 private:
  Catalog* catalog_;
  // Deque: growth for predicates registered after the first relation access
  // must not invalidate Relation references the evaluator already holds.
  mutable std::deque<Relation> relations_;
};

}  // namespace ldl

#endif  // LDL1_EVAL_RELATION_H_
