// Fact storage: tuples of interned terms with O(1) dedup, per-column hash
// indexes (built lazily), stable row ids for semi-naive delta windows, and
// tombstone deletion (needed by the magic-set scheduler's group
// reconciliation).
#ifndef LDL1_EVAL_RELATION_H_
#define LDL1_EVAL_RELATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "program/catalog.h"
#include "term/term.h"

namespace ldl {

// A fact's argument vector. Terms are interned, so hashing/equality is on
// pointers.
using Tuple = std::vector<const Term*>;

struct TupleHash {
  size_t operator()(const Tuple& tuple) const {
    uint64_t h = 0x12345;
    for (const Term* t : tuple) h = HashCombine(h, t->hash());
    return static_cast<size_t>(h);
  }
};

class Relation {
 public:
  explicit Relation(uint32_t arity = 0) : arity_(arity) {}

  uint32_t arity() const { return arity_; }
  void set_arity(uint32_t arity) { arity_ = arity; }

  // Inserts a fact; returns false if it was already present.
  bool Insert(const Tuple& tuple);
  bool Contains(const Tuple& tuple) const;
  // Removes a fact (tombstones the row). Returns false if absent.
  bool Erase(const Tuple& tuple);

  // Number of live facts.
  size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  // Raw row storage; rows() indices are stable (deletions leave tombstones).
  size_t row_count() const { return rows_.size(); }
  bool IsLive(size_t row) const { return live_[row]; }
  const Tuple& row(size_t i) const { return rows_[i]; }

  // Calls fn(row_index, tuple) for every live row with index in [from, to).
  template <typename Fn>
  void ForEachRow(size_t from, size_t to, Fn&& fn) const {
    for (size_t i = from; i < to && i < rows_.size(); ++i) {
      if (live_[i]) fn(i, rows_[i]);
    }
  }

  // Row ids of live facts whose `column` equals `value`, restricted to
  // [from, to). Builds a hash index on the column on first use.
  void Probe(uint32_t column, const Term* value, size_t from, size_t to,
             std::vector<size_t>* out) const;

  // All live tuples (copy, for tests and result reporting).
  std::vector<Tuple> Snapshot() const;

  void Clear();

 private:
  void EnsureIndex(uint32_t column) const;

  uint32_t arity_;
  std::vector<Tuple> rows_;
  std::vector<bool> live_;
  size_t live_count_ = 0;
  std::unordered_map<Tuple, size_t, TupleHash> lookup_;  // tuple -> row id
  // Per-column value index; empty vector = not built yet.
  mutable std::vector<std::unordered_multimap<const Term*, size_t>> column_index_;
  mutable std::vector<bool> index_built_;
};

// The database: one relation per predicate.
class Database {
 public:
  explicit Database(Catalog* catalog) : catalog_(catalog) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Relation& relation(PredId pred);
  const Relation& relation(PredId pred) const;

  bool AddFact(PredId pred, const Tuple& tuple) {
    return relation(pred).Insert(tuple);
  }

  // Total number of facts across all predicates.
  size_t TotalFacts() const;

  // Copies the facts of `preds` from `other` (used to seed a magic
  // evaluation with the EDB).
  void CopyFrom(const Database& other, const std::vector<PredId>& preds);

  Catalog* catalog() const { return catalog_; }

 private:
  Catalog* catalog_;
  mutable std::vector<Relation> relations_;
};

}  // namespace ldl

#endif  // LDL1_EVAL_RELATION_H_
