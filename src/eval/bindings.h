// Helpers shared by the rule evaluator: instantiating patterns under a
// substitution into fact tuples, and rendering tuples for diagnostics.
#ifndef LDL1_EVAL_BINDINGS_H_
#define LDL1_EVAL_BINDINGS_H_

#include <optional>
#include <string>

#include "eval/relation.h"
#include "program/ir.h"
#include "term/term_ops.h"

namespace ldl {

// Instantiates `patterns` under `subst`. Returns nullopt when any argument
// is non-ground (a runtime safety failure, reported by the caller) or falls
// outside the universe U (scons on a non-set) -- the latter simply produces
// no fact, per §2.2.
struct InstantiationResult {
  Tuple tuple;
  bool outside_universe = false;  // scons applied to a non-set
  bool unbound = false;           // some variable remained free
};

InstantiationResult InstantiateArgs(TermFactory& factory,
                                    std::span<const Term* const> patterns,
                                    const Subst& subst);

// Instantiates a single pattern; nullptr when outside U or non-ground.
// Sets *ground to false when a variable remained free.
const Term* InstantiateGround(TermFactory& factory, const Term* pattern,
                              const Subst& subst, bool* ground);

// "p(a, {1, 2})" -- for traces and error messages.
std::string FormatFact(const TermFactory& factory, const Catalog& catalog,
                       PredId pred, const Tuple& tuple);
std::string FormatTuple(const TermFactory& factory, const Tuple& tuple);

}  // namespace ldl

#endif  // LDL1_EVAL_BINDINGS_H_
