#include "eval/plan.h"

#include <algorithm>

#include "base/hash.h"

namespace ldl {

namespace {

// True for arguments that probe and match on interned pointer equality:
// ground and scons-free (a ground scons term still needs evaluation before
// it denotes an element of U).
bool IsPointerConstant(const Term* t) { return t->ground() && !t->has_scons(); }

bool IsSimpleArg(const Term* t) { return t->is_var() || IsPointerConstant(t); }

struct SlotTable {
  std::vector<std::pair<Symbol, int>> sorted;  // by symbol

  int Lookup(Symbol var) const {
    auto it = std::lower_bound(
        sorted.begin(), sorted.end(), var,
        [](const std::pair<Symbol, int>& entry, Symbol v) { return entry.first < v; });
    if (it == sorted.end() || it->first != var) return -1;
    return it->second;
  }
};

}  // namespace

JoinPlan JoinPlan::Compile(const RuleIr& rule, const std::vector<int>& order) {
  JoinPlan plan;

  // 1. Number every rule variable (body and head) into a dense slot.
  std::vector<Symbol> vars;
  for (const LiteralIr& literal : rule.body) {
    for (const Term* arg : literal.args) CollectVars(arg, &vars);
  }
  for (const Term* arg : rule.head_args) CollectVars(arg, &vars);
  SlotTable slots;
  for (Symbol var : vars) {
    if (slots.Lookup(var) >= 0) continue;
    int slot = static_cast<int>(slots.sorted.size());
    slots.sorted.emplace_back(var, slot);
    std::sort(slots.sorted.begin(), slots.sorted.end());
  }
  plan.var_slots_ = slots.sorted;
  plan.slot_count_ = slots.sorted.size();

  // 2. Walk the order propagating static boundness, specializing literals.
  std::vector<bool> bound(plan.slot_count_, false);
  plan.steps_.reserve(order.size());
  for (int literal_index : order) {
    const LiteralIr& literal = rule.body[literal_index];
    LiteralPlan step;
    step.literal_index = literal_index;
    step.pred = literal.pred;

    std::vector<Symbol> literal_vars;
    for (const Term* arg : literal.args) CollectVars(arg, &literal_vars);

    auto fill_io = [&]() {
      for (Symbol var : literal_vars) {
        int slot = slots.Lookup(var);
        if (bound[slot]) {
          step.inputs.emplace_back(var, slot);
        } else {
          step.outputs.emplace_back(var, slot);
        }
      }
    };

    if (literal.is_builtin()) {
      step.kind = StepKind::kBuiltin;
      fill_io();
      // Negated built-ins only test; positive ones bind their free variables
      // on every solution (mirrors BindLiteralVars in OrderBodyLiterals).
      if (literal.negated) {
        step.outputs.clear();
      } else {
        for (const auto& [var, slot] : step.outputs) bound[slot] = true;
      }
      plan.steps_.push_back(std::move(step));
      continue;
    }

    if (literal.negated) {
      // Negation-as-failure binds nothing; residual variables are
      // existential under the negation.
      step.kind = StepKind::kNegated;
      fill_io();
      step.outputs.clear();
      plan.steps_.push_back(std::move(step));
      continue;
    }

    bool simple = true;
    for (const Term* arg : literal.args) {
      if (!IsSimpleArg(arg)) {
        simple = false;
        break;
      }
    }

    if (simple) {
      step.kind = StepKind::kScan;
      // Variables already bound within this literal (repeated occurrences).
      std::vector<int> bound_here;
      for (uint32_t column = 0; column < literal.args.size(); ++column) {
        const Term* arg = literal.args[column];
        if (!arg->is_var()) {
          step.probe_cols.push_back(column);
          step.probe.push_back(ValueRef{-1, arg});
          continue;
        }
        int slot = slots.Lookup(arg->symbol());
        if (bound[slot]) {
          step.probe_cols.push_back(column);
          step.probe.push_back(ValueRef{slot, nullptr});
        } else if (std::find(bound_here.begin(), bound_here.end(), slot) !=
                   bound_here.end()) {
          step.match.push_back(MatchOp{MatchOpKind::kCheckSlot, column, slot, nullptr});
        } else {
          step.match.push_back(MatchOp{MatchOpKind::kBind, column, slot, nullptr});
          bound_here.push_back(slot);
        }
      }
      for (int slot : bound_here) bound[slot] = true;
      plan.steps_.push_back(std::move(step));
      continue;
    }

    // Generic fallback; still probe on statically bound columns.
    step.kind = StepKind::kGenericScan;
    fill_io();
    for (uint32_t column = 0; column < literal.args.size(); ++column) {
      const Term* arg = literal.args[column];
      std::vector<Symbol> arg_vars;
      CollectVars(arg, &arg_vars);
      bool all_bound = true;
      for (Symbol var : arg_vars) {
        if (!bound[slots.Lookup(var)]) {
          all_bound = false;
          break;
        }
      }
      if (all_bound) step.bound_columns.push_back(column);
    }
    for (const auto& [var, slot] : step.outputs) bound[slot] = true;
    plan.steps_.push_back(std::move(step));
  }

  // 3. Head emitter: direct slot reads when every argument is simple.
  plan.head_simple_ = true;
  for (const Term* arg : rule.head_args) {
    if (!IsSimpleArg(arg)) {
      plan.head_simple_ = false;
      break;
    }
  }
  if (plan.head_simple_) {
    plan.head_.reserve(rule.head_args.size());
    for (const Term* arg : rule.head_args) {
      if (arg->is_var()) {
        plan.head_.push_back(ValueRef{slots.Lookup(arg->symbol()), nullptr});
      } else {
        plan.head_.push_back(ValueRef{-1, arg});
      }
    }
  }
  return plan;
}

int JoinPlan::SlotOf(Symbol var) const {
  auto it = std::lower_bound(
      var_slots_.begin(), var_slots_.end(), var,
      [](const std::pair<Symbol, int>& entry, Symbol v) { return entry.first < v; });
  if (it == var_slots_.end() || it->first != var) return -1;
  return it->second;
}

const Term* SolutionView::Lookup(Symbol var) const {
  if (subst_ != nullptr) return subst_->Lookup(var);
  int slot = plan_->SlotOf(var);
  if (slot < 0) return nullptr;
  return slots_[slot];
}

void SolutionView::AppendBindings(Subst* out) const {
  if (subst_ != nullptr) {
    for (const auto& [var, value] : subst_->trail()) out->Bind(var, value);
    return;
  }
  for (const auto& [var, slot] : plan_->var_slots()) {
    if (slots_[slot] != nullptr) out->Bind(var, slots_[slot]);
  }
}

namespace {

std::vector<uint64_t> Fingerprint(const RuleIr& rule, const std::vector<int>& order) {
  std::vector<uint64_t> fp;
  fp.reserve(rule.body.size() * 4 + rule.head_args.size() + order.size() + 4);
  fp.push_back(rule.head_pred);
  fp.push_back(static_cast<uint64_t>(rule.group_index + 1));
  fp.push_back(rule.group_var);
  for (const Term* arg : rule.head_args) {
    fp.push_back(reinterpret_cast<uint64_t>(arg));
  }
  fp.push_back(0x1dull << 56 | rule.body.size());
  for (const LiteralIr& literal : rule.body) {
    fp.push_back((static_cast<uint64_t>(literal.negated) << 40) |
                 (static_cast<uint64_t>(literal.builtin) << 32) | literal.pred);
    for (const Term* arg : literal.args) {
      fp.push_back(reinterpret_cast<uint64_t>(arg));
    }
    fp.push_back(0x2eull << 56 | literal.args.size());
  }
  for (int i : order) fp.push_back(0x3full << 56 | static_cast<uint32_t>(i));
  return fp;
}

uint64_t HashFingerprint(const std::vector<uint64_t>& fp) {
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (uint64_t v : fp) h = HashCombine(h, v);
  return h;
}

}  // namespace

std::shared_ptr<const JoinPlan> PlanCache::Get(const RuleIr& rule,
                                               const std::vector<int>& order,
                                               size_t* hits) {
  std::vector<uint64_t> fp = Fingerprint(rule, order);
  uint64_t hash = HashFingerprint(fp);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = entries_.find(hash);
    if (it != entries_.end()) {
      for (const Entry& entry : it->second) {
        if (entry.fingerprint == fp) {
          if (hits != nullptr) ++*hits;
          return entry.plan;
        }
      }
    }
  }
  // Miss: compile outside the lock (racing compilers waste a little work),
  // then insert under the exclusive lock, re-checking for a racing insert so
  // every caller sees one canonical plan per fingerprint.
  auto plan = std::make_shared<const JoinPlan>(JoinPlan::Compile(rule, order));
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::vector<Entry>& bucket = entries_[hash];
  for (const Entry& entry : bucket) {
    if (entry.fingerprint == fp) {
      if (hits != nullptr) ++*hits;
      return entry.plan;
    }
  }
  bucket.push_back(Entry{std::move(fp), plan});
  return plan;
}

void PlanCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  entries_.clear();
}

size_t PlanCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [hash, bucket] : entries_) total += bucket.size();
  return total;
}

}  // namespace ldl
