#include "eval/rule_eval.h"

#include <algorithm>
#include <cassert>

#include "base/str_util.h"
#include "eval/bindings.h"
#include "term/unify.h"

namespace ldl {

bool TermVarsBound(const Term* t, const std::vector<Symbol>& bound) {
  std::vector<Symbol> vars;
  CollectVars(t, &vars);
  for (Symbol var : vars) {
    if (std::find(bound.begin(), bound.end(), var) == bound.end()) return false;
  }
  return true;
}

bool LiteralStaticallyReady(const LiteralIr& literal,
                            const std::vector<Symbol>& bound) {
  auto arg_bound = [&](size_t i) { return TermVarsBound(literal.args[i], bound); };

  if (literal.negated && literal.is_builtin()) {
    for (const Term* arg : literal.args) {
      if (!TermVarsBound(arg, bound)) return false;
    }
    return true;
  }
  switch (literal.builtin) {
    case BuiltinKind::kEq:
      return arg_bound(0) || arg_bound(1);
    case BuiltinKind::kNeq:
    case BuiltinKind::kLt:
    case BuiltinKind::kLe:
    case BuiltinKind::kGt:
    case BuiltinKind::kGe:
      return arg_bound(0) && arg_bound(1);
    case BuiltinKind::kMember:
    case BuiltinKind::kSubset:
      return arg_bound(1);
    case BuiltinKind::kUnion:
      return (arg_bound(0) && arg_bound(1)) || arg_bound(2);
    case BuiltinKind::kIntersection:
    case BuiltinKind::kDifference:
      return arg_bound(0) && arg_bound(1);
    case BuiltinKind::kPartition:
      return arg_bound(0) || (arg_bound(1) && arg_bound(2));
    case BuiltinKind::kCard:
      return arg_bound(0);
    case BuiltinKind::kPlus:
    case BuiltinKind::kMinus:
    case BuiltinKind::kTimes:
      return arg_bound(0) + arg_bound(1) + arg_bound(2) >= 2;
    case BuiltinKind::kDiv:
    case BuiltinKind::kMod:
      return arg_bound(0) && arg_bound(1);
    case BuiltinKind::kNone:
      return true;  // positive relational literals are always evaluable
  }
  return false;
}

void BindLiteralVars(const LiteralIr& literal, std::vector<Symbol>* bound) {
  for (const Term* arg : literal.args) {
    std::vector<Symbol> vars;
    CollectVars(arg, &vars);
    for (Symbol var : vars) {
      if (std::find(bound->begin(), bound->end(), var) == bound->end()) {
        bound->push_back(var);
      }
    }
  }
}

// Number of argument positions fully bound under `bound` (join selectivity
// heuristic).
int BoundArgCount(const LiteralIr& literal, const std::vector<Symbol>& bound) {
  int count = 0;
  for (const Term* arg : literal.args) {
    if (TermVarsBound(arg, bound)) ++count;
  }
  return count;
}

std::vector<std::vector<Symbol>> NegationSharedVars(const RuleIr& rule) {
  size_t n = rule.body.size();
  std::vector<std::vector<Symbol>> shared(n);
  for (size_t i = 0; i < n; ++i) {
    const LiteralIr& literal = rule.body[i];
    if (!literal.negated || literal.is_builtin()) continue;
    std::vector<Symbol> vars;
    for (const Term* arg : literal.args) CollectVars(arg, &vars);
    for (Symbol var : vars) {
      bool elsewhere = false;
      for (const Term* head_arg : rule.head_args) {
        if (OccursIn(head_arg, var)) elsewhere = true;
      }
      for (size_t j = 0; j < n && !elsewhere; ++j) {
        if (j == i) continue;
        for (const Term* arg : rule.body[j].args) {
          if (OccursIn(arg, var)) {
            elsewhere = true;
            break;
          }
        }
      }
      if (elsewhere) shared[i].push_back(var);
    }
  }
  return shared;
}

StatusOr<std::vector<int>> OrderBodyLiterals(
    const Catalog& catalog, const RuleIr& rule, int forced_first,
    const std::vector<Symbol>* initially_bound) {
  size_t n = rule.body.size();
  std::vector<int> order;
  order.reserve(n);
  std::vector<bool> scheduled(n, false);
  std::vector<Symbol> bound;
  if (initially_bound != nullptr) bound = *initially_bound;

  std::vector<std::vector<Symbol>> negation_shared_vars = NegationSharedVars(rule);
  auto negation_ready = [&](size_t i) {
    for (Symbol var : negation_shared_vars[i]) {
      if (std::find(bound.begin(), bound.end(), var) == bound.end()) return false;
    }
    return true;
  };

  if (forced_first >= 0) {
    order.push_back(forced_first);
    scheduled[forced_first] = true;
    BindLiteralVars(rule.body[forced_first], &bound);
  }

  while (order.size() < n) {
    // 1. Schedule every ready built-in / negation (they only filter or bind
    //    deterministically, so running them early is always good).
    bool scheduled_any = true;
    while (scheduled_any) {
      scheduled_any = false;
      for (size_t i = 0; i < n; ++i) {
        const LiteralIr& literal = rule.body[i];
        if (scheduled[i] || (!literal.is_builtin() && !literal.negated)) continue;
        bool ready = literal.negated && !literal.is_builtin()
                         ? negation_ready(i)
                         : LiteralStaticallyReady(literal, bound);
        if (ready) {
          order.push_back(static_cast<int>(i));
          scheduled[i] = true;
          if (!literal.negated) BindLiteralVars(literal, &bound);
          scheduled_any = true;
        }
      }
    }
    if (order.size() == n) break;

    // 2. Schedule the positive relational literal with the most bound
    //    argument positions (ties: textual order).
    int best = -1;
    int best_score = -1;
    for (size_t i = 0; i < n; ++i) {
      const LiteralIr& literal = rule.body[i];
      if (scheduled[i] || literal.is_builtin() || literal.negated) continue;
      int score = BoundArgCount(literal, bound);
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) {
      // Only unready built-ins / negations remain.
      std::string names;
      for (size_t i = 0; i < n; ++i) {
        if (scheduled[i]) continue;
        if (!names.empty()) StrAppend(names, ", ");
        StrAppend(names, rule.body[i].is_builtin()
                             ? BuiltinName(rule.body[i].builtin)
                             : catalog.DebugName(rule.body[i].pred));
      }
      return NotWellFormedError(
          StrCat("rule for ", catalog.DebugName(rule.head_pred),
                 ": no evaluable order for body literals (", names,
                 " never become bound)"));
    }
    order.push_back(best);
    scheduled[best] = true;
    BindLiteralVars(rule.body[best], &bound);
  }
  return order;
}

RuleEvaluator::RuleEvaluator(TermFactory* factory, const RuleIr* rule,
                             std::vector<int> order, BuiltinLimits limits,
                             std::shared_ptr<const JoinPlan> plan, bool use_plan)
    : factory_(factory), rule_(rule), order_(std::move(order)), limits_(limits) {
  if (use_plan) {
    plan_ = plan != nullptr
                ? std::move(plan)
                : std::make_shared<const JoinPlan>(JoinPlan::Compile(*rule_, order_));
    slots_.assign(plan_->slot_count(), nullptr);
  }
}

Status RuleEvaluator::ForEachSolution(const Database& db,
                                      const std::vector<LiteralWindow>& windows,
                                      const SolutionFn& yield, EvalStats* stats) {
  bool keep_going = true;
  if (plan_ != nullptr) {
    std::fill(slots_.begin(), slots_.end(), nullptr);
    return ExecStep(db, windows, 0, yield, stats, &keep_going);
  }
  Subst subst;
  return EvalFrom(db, windows, 0, &subst, yield, stats, &keep_going);
}

Status RuleEvaluator::ForEachSolutionSeeded(
    const Database& db, const std::vector<LiteralWindow>& windows, Subst* subst,
    const SolutionFn& yield, EvalStats* stats) {
  bool keep_going = true;
  return EvalFrom(db, windows, 0, subst, yield, stats, &keep_going);
}

InstantiationResult RuleEvaluator::InstantiateHead(const SolutionView& view) const {
  if (view.plan() != nullptr && view.plan()->head_simple()) {
    // Simple head: every argument reads a slot or is a ground scons-free
    // constant, so no term rebuilding (and no outside-U case) is possible.
    InstantiationResult result;
    const std::vector<ValueRef>& head = view.plan()->head();
    result.tuple.reserve(head.size());
    for (const ValueRef& ref : head) {
      const Term* value = ref.slot >= 0 ? view.slots()[ref.slot] : ref.constant;
      if (value == nullptr) {
        result.unbound = true;
        return result;
      }
      result.tuple.push_back(value);
    }
    return result;
  }
  if (view.subst() != nullptr) {
    return InstantiateArgs(*factory_, rule_->head_args, *view.subst());
  }
  Subst scratch;
  view.AppendBindings(&scratch);
  return InstantiateArgs(*factory_, rule_->head_args, scratch);
}

// ---------------------------------------------------------------------------
// Compiled plan executor: joins run over the flat slot array; only generic
// fallback steps (complex patterns, built-ins, negation) materialize a
// scratch substitution restricted to the variables the literal mentions.
// ---------------------------------------------------------------------------

Status RuleEvaluator::ExecStep(const Database& db,
                               const std::vector<LiteralWindow>& windows,
                               size_t depth, const SolutionFn& yield,
                               EvalStats* stats, bool* keep_going) {
  if (depth == plan_->steps().size()) {
    ++stats->solutions;
    *keep_going = yield(SolutionView(plan_.get(), slots_));
    return Status::OK();
  }
  const LiteralPlan& step = plan_->steps()[depth];
  const LiteralIr& literal = rule_->body[step.literal_index];
  Status status;

  if (step.kind == StepKind::kBuiltin) {
    Subst scratch;
    for (const auto& [var, slot] : step.inputs) scratch.Bind(var, slots_[slot]);
    bool builtin_keep_going = true;
    Status builtin_status = EvalBuiltin(
        *factory_, literal, &scratch,
        [&]() {
          for (const auto& [var, slot] : step.outputs) {
            slots_[slot] = scratch.Lookup(var);
          }
          Status inner = ExecStep(db, windows, depth + 1, yield, stats, keep_going);
          for (const auto& [var, slot] : step.outputs) slots_[slot] = nullptr;
          if (!inner.ok()) {
            status = inner;
            return false;
          }
          return *keep_going;
        },
        &builtin_keep_going, limits_);
    if (!builtin_status.ok()) return builtin_status;
    return status;
  }

  if (step.kind == StepKind::kNegated) {
    // Negation as failure against the (completed) relation.
    Subst scratch;
    for (const auto& [var, slot] : step.inputs) scratch.Bind(var, slots_[slot]);
    InstantiationResult inst = InstantiateArgs(*factory_, literal.args, scratch);
    bool holds;
    if (inst.unbound) {
      // Residual variables are existential under the negation (e.g. the
      // paper's !a(X, Z) with Z local): the negation holds iff *no* fact
      // matches the pattern.
      const Relation& relation = db.relation(literal.pred);
      bool any_match = false;
      relation.ForEachRow(0, relation.row_count(), [&](size_t, RowRef tuple) {
        if (any_match) return;
        ++stats->tuples_matched;
        MatchArgs(*factory_, literal.args, tuple, &scratch, [&]() {
          any_match = true;
          return false;
        });
      });
      holds = !any_match;
    } else {
      // A tuple outside U is not a U-fact, so its negation holds (§2.2).
      holds = inst.outside_universe ||
              !db.relation(literal.pred).Contains(inst.tuple);
    }
    if (!holds) return Status::OK();
    return ExecStep(db, windows, depth + 1, yield, stats, keep_going);
  }

  const Relation& relation = db.relation(step.pred);
  LiteralWindow window;
  if (!windows.empty()) window = windows[step.literal_index];
  size_t to = std::min(window.to, relation.row_count());

  if (step.kind == StepKind::kScan) {
    // Match program over the candidate tuple; returns false when the
    // enumeration should stop (error or yield asked to stop).
    auto try_row = [&](RowRef tuple) -> bool {
      ++stats->tuples_matched;
      bool matched = true;
      for (const MatchOp& op : step.match) {
        switch (op.kind) {
          case MatchOpKind::kBind:
            slots_[op.slot] = tuple[op.column];
            break;
          case MatchOpKind::kCheckSlot:
            if (tuple[op.column] != slots_[op.slot]) matched = false;
            break;
          case MatchOpKind::kCheckConst:
            if (tuple[op.column] != op.constant) matched = false;
            break;
        }
        if (!matched) break;
      }
      bool cont = true;
      if (matched) {
        Status inner = ExecStep(db, windows, depth + 1, yield, stats, keep_going);
        if (!inner.ok()) {
          status = inner;
          cont = false;
        } else {
          cont = *keep_going;
        }
      }
      for (const MatchOp& op : step.match) {
        if (op.kind == MatchOpKind::kBind) slots_[op.slot] = nullptr;
      }
      return cont;
    };

    if (!step.probe.empty()) {
      ++stats->index_probes;
      const Term* key[16];
      std::vector<const Term*> key_heap;
      const Term** values = key;
      if (step.probe.size() > 16) {
        key_heap.resize(step.probe.size());
        values = key_heap.data();
      }
      for (size_t i = 0; i < step.probe.size(); ++i) {
        const ValueRef& ref = step.probe[i];
        values[i] = ref.slot >= 0 ? slots_[ref.slot] : ref.constant;
        assert(values[i] != nullptr);
      }
      relation.ProbeRows(step.probe_cols, {values, step.probe.size()},
                         window.from, to, [&](size_t row) {
                           ++stats->probe_hits;
                           return try_row(relation.row(row));
                         });
      return status;
    }
    bool stopped = false;
    relation.ForEachRow(window.from, to, [&](size_t, RowRef tuple) {
      if (stopped) return;
      if (!try_row(tuple)) stopped = true;
    });
    return status;
  }

  // Generic fallback: full unification against each candidate, still probing
  // on the statically bound columns after instantiating them.
  Subst scratch;
  for (const auto& [var, slot] : step.inputs) scratch.Bind(var, slots_[slot]);

  auto try_row = [&](RowRef tuple) -> bool {
    ++stats->tuples_matched;
    return MatchArgs(*factory_, literal.args, tuple, &scratch, [&]() {
      for (const auto& [var, slot] : step.outputs) {
        slots_[slot] = scratch.Lookup(var);
      }
      Status inner = ExecStep(db, windows, depth + 1, yield, stats, keep_going);
      for (const auto& [var, slot] : step.outputs) slots_[slot] = nullptr;
      if (!inner.ok()) {
        status = inner;
        return false;
      }
      return *keep_going;
    });
  };

  if (!step.bound_columns.empty()) {
    std::vector<const Term*> values;
    values.reserve(step.bound_columns.size());
    std::vector<uint32_t> cols;
    cols.reserve(step.bound_columns.size());
    bool outside_universe = false;
    for (uint32_t column : step.bound_columns) {
      const Term* value = ApplySubst(*factory_, literal.args[column], scratch);
      if (value == nullptr) {
        // Instantiates outside U (scons on a non-set): no fact can match.
        outside_universe = true;
        break;
      }
      // Statically bound columns instantiate to ground scons-free terms;
      // anything else would indicate a compile/runtime boundness mismatch,
      // so skip the column rather than probe with a bad key.
      if (!value->ground() || value->has_scons()) continue;
      cols.push_back(column);
      values.push_back(value);
    }
    if (outside_universe) return status;
    if (!cols.empty()) {
      ++stats->index_probes;
      relation.ProbeRows(cols, values, window.from, to, [&](size_t row) {
        ++stats->probe_hits;
        return try_row(relation.row(row));
      });
      return status;
    }
  }
  bool stopped = false;
  relation.ForEachRow(window.from, to, [&](size_t, RowRef tuple) {
    if (stopped) return;
    if (!try_row(tuple)) stopped = true;
  });
  return status;
}

// ---------------------------------------------------------------------------
// Legacy substitution interpreter: rediscoveres probe columns per tuple via
// ApplySubst and matches through generic unification. Kept as the reference
// implementation the compiled executor is equivalence-tested against.
// ---------------------------------------------------------------------------

Status RuleEvaluator::EvalFrom(const Database& db,
                               const std::vector<LiteralWindow>& windows,
                               size_t depth, Subst* subst, const SolutionFn& yield,
                               EvalStats* stats, bool* keep_going) {
  if (depth == order_.size()) {
    ++stats->solutions;
    *keep_going = yield(SolutionView(subst));
    return Status::OK();
  }
  int literal_index = order_[depth];
  const LiteralIr& literal = rule_->body[literal_index];
  Status status;

  if (literal.is_builtin()) {
    bool builtin_keep_going = true;
    Status builtin_status = EvalBuiltin(
        *factory_, literal, subst,
        [&]() {
          Status inner =
              EvalFrom(db, windows, depth + 1, subst, yield, stats, keep_going);
          if (!inner.ok()) {
            status = inner;
            return false;
          }
          return *keep_going;
        },
        &builtin_keep_going, limits_);
    if (!builtin_status.ok()) return builtin_status;
    return status;
  }

  if (literal.negated) {
    // Negation as failure against the (completed) relation.
    InstantiationResult inst = InstantiateArgs(*factory_, literal.args, *subst);
    bool holds;
    if (inst.unbound) {
      // Residual variables are existential under the negation (e.g. the
      // paper's !a(X, Z) with Z local): the negation holds iff *no* fact
      // matches the pattern.
      const Relation& relation = db.relation(literal.pred);
      bool any_match = false;
      relation.ForEachRow(0, relation.row_count(), [&](size_t, RowRef tuple) {
        if (any_match) return;
        ++stats->tuples_matched;
        MatchArgs(*factory_, literal.args, tuple, subst, [&]() {
          any_match = true;
          return false;
        });
      });
      holds = !any_match;
    } else {
      // A tuple outside U is not a U-fact, so its negation holds (§2.2).
      holds = inst.outside_universe ||
              !db.relation(literal.pred).Contains(inst.tuple);
    }
    if (!holds) return Status::OK();
    return EvalFrom(db, windows, depth + 1, subst, yield, stats, keep_going);
  }

  // Positive relational literal.
  const Relation& relation = db.relation(literal.pred);
  LiteralWindow window;
  if (!windows.empty()) window = windows[literal_index];
  size_t to = std::min(window.to, relation.row_count());

  // Probe an index if some argument instantiates to a ground term.
  int probe_column = -1;
  const Term* probe_value = nullptr;
  for (size_t i = 0; i < literal.args.size(); ++i) {
    const Term* inst = ApplySubst(*factory_, literal.args[i], *subst);
    if (inst != nullptr && inst->ground() && !inst->has_scons()) {
      probe_column = static_cast<int>(i);
      probe_value = inst;
      break;
    }
  }

  auto try_row = [&](RowRef tuple) -> bool {
    ++stats->tuples_matched;
    return MatchArgs(*factory_, literal.args, tuple, subst, [&]() {
      Status inner = EvalFrom(db, windows, depth + 1, subst, yield, stats, keep_going);
      if (!inner.ok()) {
        status = inner;
        return false;
      }
      return *keep_going;
    });
  };

  if (probe_column >= 0) {
    ++stats->index_probes;
    std::vector<size_t> row_ids;
    relation.Probe(static_cast<uint32_t>(probe_column), probe_value, window.from,
                   to, &row_ids);
    stats->probe_hits += row_ids.size();
    for (size_t row : row_ids) {
      if (!try_row(relation.row(row))) break;
    }
    return status;
  }

  bool stopped = false;
  relation.ForEachRow(window.from, to, [&](size_t, RowRef tuple) {
    if (stopped) return;
    if (!try_row(tuple)) stopped = true;
  });
  return status;
}

}  // namespace ldl
