#include "eval/profile.h"

#include <cstdio>

#include "base/str_util.h"
#include "program/catalog.h"
#include "program/ir.h"
#include "term/term.h"

namespace ldl {

const char* ToString(StratumMode mode) {
  switch (mode) {
    case StratumMode::kFull:
      return "full";
    case StratumMode::kSkipped:
      return "skipped";
    case StratumMode::kDelta:
      return "delta";
    case StratumMode::kRecomputed:
      return "recomputed";
    case StratumMode::kGroupRegrow:
      return "group-regrow";
    case StratumMode::kShrink:
      return "shrink";
  }
  return "?";
}

namespace {

// JSON string escaping for rule labels (quotes, backslashes, control
// characters; everything else in our rendered rules is plain ASCII).
std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendLiteral(const TermFactory& factory, const Catalog& catalog,
                   const LiteralIr& literal, std::string* out) {
  if (literal.negated) StrAppend(*out, "!");
  if (literal.is_builtin()) {
    StrAppend(*out, BuiltinName(literal.builtin));
  } else {
    // DebugName renders "name/arity"; the argument list already shows the
    // arity, so keep just the name.
    std::string name = catalog.DebugName(literal.pred);
    StrAppend(*out, name.substr(0, name.rfind('/')));
  }
  StrAppend(*out, "(");
  for (size_t i = 0; i < literal.args.size(); ++i) {
    if (i > 0) StrAppend(*out, ", ");
    StrAppend(*out, factory.ToString(literal.args[i]));
  }
  StrAppend(*out, ")");
}

}  // namespace

std::string FormatLiteral(const TermFactory& factory, const Catalog& catalog,
                          const LiteralIr& literal) {
  std::string out;
  AppendLiteral(factory, catalog, literal, &out);
  return out;
}

std::string FormatRuleLabel(const TermFactory& factory, const Catalog& catalog,
                            const RuleIr& rule) {
  std::string out;
  std::string head = catalog.DebugName(rule.head_pred);
  StrAppend(out, head.substr(0, head.rfind('/')), "(");
  for (size_t i = 0; i < rule.head_args.size(); ++i) {
    if (i > 0) StrAppend(out, ", ");
    if (static_cast<int>(i) == rule.group_index) {
      StrAppend(out, "<", factory.ToString(rule.head_args[i]), ">");
    } else {
      StrAppend(out, factory.ToString(rule.head_args[i]));
    }
  }
  StrAppend(out, ")");
  if (rule.body.empty()) return out;
  StrAppend(out, " :- ");
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i > 0) StrAppend(out, ", ");
    AppendLiteral(factory, catalog, rule.body[i], &out);
  }
  return out;
}

void EvalProfile::Clear() {
  total_wall_ns_ = 0;
  rules_.clear();
  strata_.clear();
  topdown_ = TopDownProfile();
}

void EvalProfile::ReserveRules(size_t rule_count) {
  if (rules_.size() < rule_count) rules_.resize(rule_count);
}

RuleProfileEntry& EvalProfile::EntryFor(int rule_index, int stratum) {
  if (rule_index >= static_cast<int>(rules_.size())) {
    rules_.resize(rule_index + 1);
  }
  RuleProfileEntry& entry = rules_[rule_index];
  if (entry.rule_index < 0) {
    entry.rule_index = rule_index;
    entry.stratum = stratum;
  }
  return entry;
}

std::string EvalProfile::ToJson() const {
  std::string out = "{";
  StrAppend(out, "\"total_wall_ns\": ", total_wall_ns_);

  StrAppend(out, ", \"strata\": [");
  bool first = true;
  for (const StratumProfile& stratum : strata_) {
    if (!first) StrAppend(out, ", ");
    first = false;
    StrAppend(out, "{\"stratum\": ", stratum.stratum,
              ", \"mode\": \"", ToString(stratum.mode), "\"",
              ", \"wall_ns\": ", stratum.wall_ns,
              ", \"rounds\": ", stratum.rounds,
              ", \"facts_derived\": ", stratum.facts_derived,
              ", \"parallel_tasks\": ", stratum.parallel_tasks, "}");
  }
  StrAppend(out, "]");

  StrAppend(out, ", \"rules\": [");
  first = true;
  for (const RuleProfileEntry& entry : rules_) {
    if (entry.rule_index < 0) continue;  // never touched
    if (!first) StrAppend(out, ", ");
    first = false;
    StrAppend(out, "{\"rule\": ", entry.rule_index,
              ", \"stratum\": ", entry.stratum, ", \"label\": \"",
              EscapeJson(entry.label), "\"");
    entry.counters.ForEachField([&](const char* name, uint64_t value) {
      StrAppend(out, ", \"", name, "\": ", value);
    });
    StrAppend(out, "}");
  }
  StrAppend(out, "]");

  if (topdown_.used) {
    StrAppend(out, ", \"topdown\": {\"wall_ns\": ", topdown_.wall_ns,
              ", \"calls\": ", topdown_.calls,
              ", \"expansions\": ", topdown_.expansions,
              ", \"answers\": ", topdown_.answers,
              ", \"restarts\": ", topdown_.restarts,
              ", \"tables\": ", topdown_.tables, "}");
  }
  StrAppend(out, "}");
  return out;
}

}  // namespace ldl
