// Evaluation observability: per-rule and per-stratum execution profiles.
//
// EvalProfile is the structured counterpart of EvalStats: where EvalStats
// folds everything into whole-evaluation totals, EvalProfile attributes
// work (wall time, firings, delta sizes, probe traffic, parallel task
// counts) to individual rules and strata, so a perf change can be judged
// per rule instead of by one wall-clock number. Collection is gated on
// EvalOptions::profile -- when off, the engine never touches a profile and
// the only cost on the hot path is a null-pointer test per rule
// application.
//
// Determinism contract: the fields in LDL_RULE_PROFILE_FIELDS depend only
// on the program, the EDB, and the evaluation mode -- not on the worker
// pool width or scheduling. The engine evaluates every round against the
// round-start snapshot (serial rounds use explicit snapshot windows, see
// Engine::Fixpoint), counts a firing per rule×delta-variant application
// (row-range shards of one window do not count extra), and merges per-task
// profiles at the deterministic round barrier, so `num_threads` 1 and N
// produce identical deterministic fields (tests/profile_test.cc asserts
// this). Fields in LDL_RULE_PROFILE_TIMING_FIELDS (wall time, task counts)
// are scheduling-dependent by nature and excluded from the contract.
#ifndef LDL1_EVAL_PROFILE_H_
#define LDL1_EVAL_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace ldl {

class Catalog;
class TermFactory;
struct LiteralIr;
struct RuleIr;

// Deterministic per-rule counters. Same X-macro discipline as
// LDL_EVAL_STATS_FIELDS: the struct fields, Add(), ForEachField(), and the
// JSON export are all generated from this list, so a counter added here is
// automatically folded at the parallel merge barrier and exported.
#define LDL_RULE_PROFILE_FIELDS(X)                                          \
  X(firings)        /* rule (variant) applications; shards don't count */   \
  X(solutions)      /* body solutions found */                              \
  X(facts_derived)  /* new facts this rule inserted */                      \
  X(delta_rows)     /* delta-window rows driving semi-naive variants */     \
  X(tuples_matched) /* candidate tuples fed to the matcher */               \
  X(index_probes)   /* index lookups issued */                              \
  X(probe_hits)     /* rows returned by index lookups */                    \
  X(groups_built)   /* grouping partitions canonicalized + interned */      \
  X(groups_reused)  /* grouping partitions reused from the group cache */   \
  X(group_regrows)  /* partitions regrown in place by kGroupRegrow */       \
  X(est_rows)       /* cost model's estimated solutions (vs `solutions`) */

// Scheduling- and clock-dependent per-rule fields: vary run-to-run and
// across pool widths.
#define LDL_RULE_PROFILE_TIMING_FIELDS(X)                                \
  X(wall_ns)        /* steady_clock time spent evaluating this rule */   \
  X(parallel_tasks) /* worker-pool tasks (incl. delta shards) */

struct RuleProfile {
#define LDL_RULE_PROFILE_DECLARE(name) uint64_t name = 0;
  LDL_RULE_PROFILE_FIELDS(LDL_RULE_PROFILE_DECLARE)
  LDL_RULE_PROFILE_TIMING_FIELDS(LDL_RULE_PROFILE_DECLARE)
#undef LDL_RULE_PROFILE_DECLARE

  void Add(const RuleProfile& other) {
#define LDL_RULE_PROFILE_ADD(name) name += other.name;
    LDL_RULE_PROFILE_FIELDS(LDL_RULE_PROFILE_ADD)
    LDL_RULE_PROFILE_TIMING_FIELDS(LDL_RULE_PROFILE_ADD)
#undef LDL_RULE_PROFILE_ADD
  }

  // Visits ("name", value) for the deterministic counters, then (when
  // include_timing) the timing counters, in declaration order.
  template <typename Fn>
  void ForEachField(Fn&& fn, bool include_timing = true) const {
#define LDL_RULE_PROFILE_VISIT(name) fn(#name, name);
    LDL_RULE_PROFILE_FIELDS(LDL_RULE_PROFILE_VISIT)
    if (include_timing) {
      LDL_RULE_PROFILE_TIMING_FIELDS(LDL_RULE_PROFILE_VISIT)
    }
#undef LDL_RULE_PROFILE_VISIT
  }
};

// One profiled rule. `rule_index` indexes the evaluated ProgramIr (the
// magic path profiles the rewritten program, so indexes are per
// evaluation, not per source text); `label` is the rendered rule.
struct RuleProfileEntry {
  int rule_index = -1;
  int stratum = -1;  // -1: saturating (magic) evaluation, which is unlayered
  std::string label;
  RuleProfile counters;
};

// How a stratum was treated by the evaluation that produced its rollup.
// kFull is the ordinary from-scratch pass; the rest only appear under
// Engine::EvaluateIncremental.
enum class StratumMode : uint8_t {
  kFull = 0,        // evaluated from scratch
  kSkipped = 1,     // incremental: unaffected by the update
  kDelta = 2,       // incremental: semi-naive resumed from deltas
  kRecomputed = 3,  // incremental: cleared and re-derived
  kGroupRegrow = 4, // incremental: grouped partitions regrown in place
  kShrink = 5,      // incremental: deletions applied via counts or DRed
};

// "full", "skipped", "delta", "recomputed", "group-regrow", "shrink".
const char* ToString(StratumMode mode);

// Per-stratum rollup. `rounds` counts fixpoint iterations inside the
// stratum; wall_ns covers grouping rules, facts, and the fixpoint.
struct StratumProfile {
  int stratum = -1;
  StratumMode mode = StratumMode::kFull;
  uint64_t wall_ns = 0;
  uint64_t rounds = 0;
  uint64_t facts_derived = 0;
  uint64_t parallel_tasks = 0;
};

// Memoized top-down evaluation rollup (populated on QueryStrategy::kTopDown
// only; per-rule expansion work lands in `rules` like the bottom-up paths).
struct TopDownProfile {
  bool used = false;
  uint64_t wall_ns = 0;
  uint64_t calls = 0;
  uint64_t expansions = 0;
  uint64_t answers = 0;
  uint64_t restarts = 0;
  uint64_t tables = 0;
};

class EvalProfile {
 public:
  // Drops all recorded data (a Session reuses one profile per evaluation).
  void Clear();

  // Sizes the rule table for a program of `rule_count` rules so EntryFor
  // never reallocates mid-evaluation (the engine caches entry pointers
  // across fixpoint rounds).
  void ReserveRules(size_t rule_count);

  // Returns the entry for `rule_index`, growing the table as needed. The
  // first touch records `stratum`; the caller supplies the label (labels
  // render catalog names, which the profile does not know).
  RuleProfileEntry& EntryFor(int rule_index, int stratum);

  // Entries in rule-index order, untouched slots skipped.
  const std::vector<RuleProfileEntry>& rules() const { return rules_; }
  std::vector<StratumProfile>& strata() { return strata_; }
  const std::vector<StratumProfile>& strata() const { return strata_; }
  TopDownProfile& topdown() { return topdown_; }
  const TopDownProfile& topdown() const { return topdown_; }

  uint64_t total_wall_ns() const { return total_wall_ns_; }
  void add_total_wall_ns(uint64_t ns) { total_wall_ns_ += ns; }

  // The whole profile as one JSON object:
  //   {"total_wall_ns": ..., "strata": [...], "rules": [...],
  //    "topdown": {...}?}
  // Rule entries list the deterministic counters first, then wall_ns and
  // parallel_tasks. Labels are JSON-escaped.
  std::string ToJson() const;

 private:
  uint64_t total_wall_ns_ = 0;
  std::vector<RuleProfileEntry> rules_;
  std::vector<StratumProfile> strata_;
  TopDownProfile topdown_;
};

// Accumulates steady_clock elapsed time into *sink on destruction; a null
// sink disarms it (the profiling-off path never reads the clock).
class ScopedWallTimer {
 public:
  explicit ScopedWallTimer(uint64_t* sink) : sink_(sink) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedWallTimer() { Stop(); }

  ScopedWallTimer(const ScopedWallTimer&) = delete;
  ScopedWallTimer& operator=(const ScopedWallTimer&) = delete;

  // Accumulates and disarms early (for non-scope-shaped regions).
  void Stop() {
    if (sink_ == nullptr) return;
    *sink_ += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    sink_ = nullptr;
  }

 private:
  uint64_t* sink_;
  std::chrono::steady_clock::time_point start_;
};

// Renders one body literal, e.g. "p(X, Z)" or "!q(X)" (negation as '!').
// The REPL's :plan printer uses this for per-step lines.
std::string FormatLiteral(const TermFactory& factory, const Catalog& catalog,
                          const LiteralIr& literal);

// Renders `rule` for RuleProfileEntry::label, e.g.
// "a(X, Y) :- p(X, Z), a(Z, Y)" (grouped head arguments in <angle
// brackets>, negation as '!').
std::string FormatRuleLabel(const TermFactory& factory, const Catalog& catalog,
                            const RuleIr& rule);

}  // namespace ldl

#endif  // LDL1_EVAL_PROFILE_H_
