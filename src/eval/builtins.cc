#include "eval/builtins.h"

#include <cassert>
#include <cstdint>

#include "base/str_util.h"
#include "parser/parser.h"

namespace ldl {

namespace {

// Resolves literal argument i under subst; returns nullptr when it is not
// (yet) ground or falls outside U.
const Term* GroundArg(TermFactory& factory, const LiteralIr& literal,
                      const Subst& subst, size_t i) {
  const Term* t = ApplySubst(factory, literal.args[i], subst);
  if (t == nullptr || !t->ground()) return nullptr;
  return t;
}

bool IsArithFunctor(const TermFactory& factory, Symbol symbol) {
  std::string_view name = factory.interner()->Lookup(symbol);
  return name == kAddFunctor || name == kSubFunctor || name == kMulFunctor ||
         name == kDivFunctor;
}

}  // namespace

// Raw signed arithmetic here was undefined behavior on boundary inputs
// ("1 + 9223372036854775807", "-9223372036854775808 / -1"); the
// __builtin_*_overflow intrinsics evaluate the full result without UB.
std::optional<int64_t> CheckedAdd(int64_t a, int64_t b) {
  int64_t result;
  if (__builtin_add_overflow(a, b, &result)) return std::nullopt;
  return result;
}

std::optional<int64_t> CheckedSub(int64_t a, int64_t b) {
  int64_t result;
  if (__builtin_sub_overflow(a, b, &result)) return std::nullopt;
  return result;
}

std::optional<int64_t> CheckedMul(int64_t a, int64_t b) {
  int64_t result;
  if (__builtin_mul_overflow(a, b, &result)) return std::nullopt;
  return result;
}

std::optional<int64_t> CheckedDiv(int64_t a, int64_t b) {
  if (b == 0) return std::nullopt;
  if (a == INT64_MIN && b == -1) return std::nullopt;  // -INT64_MIN overflows
  return a / b;
}

std::optional<int64_t> CheckedMod(int64_t a, int64_t b) {
  if (b == 0) return std::nullopt;
  if (a == INT64_MIN && b == -1) return std::nullopt;  // UB though result is 0
  return a % b;
}

std::optional<int64_t> EvalArith(const TermFactory& factory, const Term* t) {
  if (t->is_int()) return t->int_value();
  if (!t->is_func() || t->size() != 2) return std::nullopt;
  std::string_view name = factory.interner()->Lookup(t->symbol());
  std::optional<int64_t> lhs = EvalArith(factory, t->arg(0));
  std::optional<int64_t> rhs = EvalArith(factory, t->arg(1));
  if (!lhs || !rhs) return std::nullopt;
  if (name == kAddFunctor) return CheckedAdd(*lhs, *rhs);
  if (name == kSubFunctor) return CheckedSub(*lhs, *rhs);
  if (name == kMulFunctor) return CheckedMul(*lhs, *rhs);
  if (name == kDivFunctor) return CheckedDiv(*lhs, *rhs);
  return std::nullopt;
}

const Term* NormalizeArith(TermFactory& factory, const Term* t) {
  if (t->is_int() || !t->is_func() || !IsArithFunctor(factory, t->symbol())) {
    return t;
  }
  std::optional<int64_t> value = EvalArith(factory, t);
  return value ? factory.MakeInt(*value) : t;
}

bool BuiltinReady(TermFactory& factory, const LiteralIr& literal,
                  const Subst& subst) {
  auto ground = [&](size_t i) {
    return GroundArg(factory, literal, subst, i) != nullptr;
  };
  if (literal.negated) {
    for (size_t i = 0; i < literal.args.size(); ++i) {
      if (!ground(i)) return false;
    }
    return true;
  }
  switch (literal.builtin) {
    case BuiltinKind::kEq:
      return ground(0) || ground(1);
    case BuiltinKind::kNeq:
    case BuiltinKind::kLt:
    case BuiltinKind::kLe:
    case BuiltinKind::kGt:
    case BuiltinKind::kGe:
      return ground(0) && ground(1);
    case BuiltinKind::kMember:
    case BuiltinKind::kSubset:
      return ground(1);
    case BuiltinKind::kUnion:
      return (ground(0) && ground(1)) || ground(2);
    case BuiltinKind::kIntersection:
    case BuiltinKind::kDifference:
      // Backward modes are unbounded (the free operand may contain
      // arbitrary elements outside the others), so both inputs must be
      // ground.
      return ground(0) && ground(1);
    case BuiltinKind::kPartition:
      return ground(0) || (ground(1) && ground(2));
    case BuiltinKind::kCard:
      return ground(0);
    case BuiltinKind::kPlus:
    case BuiltinKind::kMinus:
    case BuiltinKind::kTimes:
      return ground(0) + ground(1) + ground(2) >= 2;
    case BuiltinKind::kDiv:
    case BuiltinKind::kMod:
      return ground(0) && ground(1);
    case BuiltinKind::kNone:
      return false;
  }
  return false;
}

namespace {

// Enumerates all subsets of `elements`, calling fn(set) for each; returns
// false iff fn stopped.
bool ForEachSubset(TermFactory& factory, std::span<const Term* const> elements,
                   const std::function<bool(const Term*)>& fn) {
  size_t n = elements.size();
  assert(n < 64);
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    std::vector<const Term*> subset;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) subset.push_back(elements[i]);
    }
    if (!fn(factory.MakeSet(subset))) return false;
  }
  return true;
}

class BuiltinEvaluator {
 public:
  BuiltinEvaluator(TermFactory& factory, const LiteralIr& literal, Subst* subst,
                   const MatchCont& yield, const BuiltinLimits& limits)
      : factory_(factory),
        literal_(literal),
        subst_(subst),
        yield_(yield),
        limits_(limits) {}

  Status Run(bool* keep_going) {
    size_t mark = subst_->Mark();
    Status status = Dispatch(keep_going);
    subst_->RollbackTo(mark);
    return status;
  }

 private:
  // Argument i instantiated (still may contain variables) with arithmetic
  // normalized when ground.
  const Term* Inst(size_t i) {
    const Term* t = ApplySubst(factory_, literal_.args[i], *subst_);
    if (t != nullptr && t->ground()) t = NormalizeArith(factory_, t);
    return t;
  }

  Status NotReadyError() {
    return InternalError(StrCat("built-in '", BuiltinName(literal_.builtin),
                                "' reached without an evaluable mode"));
  }

  // Matches pattern argument `i` against ground `value`, yielding solutions.
  bool MatchArg(size_t i, const Term* value) {
    return MatchTerm(factory_, literal_.args[i], value, subst_, yield_);
  }

  Status Dispatch(bool* keep_going) {
    *keep_going = true;
    if (literal_.negated) return DispatchNegated(keep_going);
    switch (literal_.builtin) {
      case BuiltinKind::kEq: return EvalEq(keep_going);
      case BuiltinKind::kNeq: return EvalNeq(keep_going);
      case BuiltinKind::kLt:
      case BuiltinKind::kLe:
      case BuiltinKind::kGt:
      case BuiltinKind::kGe: return EvalComparison(keep_going);
      case BuiltinKind::kMember: return EvalMember(keep_going);
      case BuiltinKind::kUnion: return EvalUnion(keep_going);
      case BuiltinKind::kIntersection: return EvalBinarySetOp(keep_going, true);
      case BuiltinKind::kDifference: return EvalBinarySetOp(keep_going, false);
      case BuiltinKind::kSubset: return EvalSubset(keep_going);
      case BuiltinKind::kPartition: return EvalPartition(keep_going);
      case BuiltinKind::kCard: return EvalCard(keep_going);
      case BuiltinKind::kPlus: return EvalLinear(keep_going, BuiltinKind::kPlus);
      case BuiltinKind::kMinus: return EvalLinear(keep_going, BuiltinKind::kMinus);
      case BuiltinKind::kTimes: return EvalTimes(keep_going);
      case BuiltinKind::kDiv: return EvalDivMod(keep_going, /*mod=*/false);
      case BuiltinKind::kMod: return EvalDivMod(keep_going, /*mod=*/true);
      case BuiltinKind::kNone:
        return InternalError("EvalBuiltin called on a non-built-in literal");
    }
    return InternalError("unknown built-in");
  }

  // A negated built-in: all arguments must be ground; succeeds iff the
  // positive built-in has no solution.
  Status DispatchNegated(bool* keep_going) {
    LiteralIr positive = literal_;
    positive.negated = false;
    bool found = false;
    bool inner_keep_going = true;
    MatchCont stop_on_first = [&found]() {
      found = true;
      return false;  // one solution is enough
    };
    BuiltinEvaluator inner(factory_, positive, subst_, stop_on_first, limits_);
    LDL_RETURN_IF_ERROR(inner.Run(&inner_keep_going));
    if (!found) *keep_going = yield_();
    return Status::OK();
  }

  Status EvalEq(bool* keep_going) {
    const Term* lhs = Inst(0);
    const Term* rhs = Inst(1);
    if (lhs == nullptr || rhs == nullptr) return Status::OK();  // outside U
    bool lhs_ground = lhs->ground();
    bool rhs_ground = rhs->ground();
    if (lhs_ground && rhs_ground) {
      // Residual scons applications were evaluated by ApplySubst; interned
      // equality is pointer equality.
      if (lhs == rhs) *keep_going = yield_();
      return Status::OK();
    }
    if (rhs_ground) {
      *keep_going = MatchTerm(factory_, lhs, rhs, subst_, yield_);
      return Status::OK();
    }
    if (lhs_ground) {
      *keep_going = MatchTerm(factory_, rhs, lhs, subst_, yield_);
      return Status::OK();
    }
    return NotReadyError();
  }

  Status EvalNeq(bool* keep_going) {
    const Term* lhs = Inst(0);
    const Term* rhs = Inst(1);
    if (lhs == nullptr || rhs == nullptr) return Status::OK();
    if (!lhs->ground() || !rhs->ground()) return NotReadyError();
    if (lhs != rhs) *keep_going = yield_();
    return Status::OK();
  }

  Status EvalComparison(bool* keep_going) {
    const Term* lhs = Inst(0);
    const Term* rhs = Inst(1);
    if (lhs == nullptr || rhs == nullptr) return Status::OK();
    if (!lhs->ground() || !rhs->ground()) return NotReadyError();
    // Comparisons are defined on integers (arithmetic already normalized);
    // anything else is false per the paper's built-in convention.
    if (!lhs->is_int() || !rhs->is_int()) return Status::OK();
    int64_t a = lhs->int_value();
    int64_t b = rhs->int_value();
    bool holds = false;
    switch (literal_.builtin) {
      case BuiltinKind::kLt: holds = a < b; break;
      case BuiltinKind::kLe: holds = a <= b; break;
      case BuiltinKind::kGt: holds = a > b; break;
      case BuiltinKind::kGe: holds = a >= b; break;
      default: break;
    }
    if (holds) *keep_going = yield_();
    return Status::OK();
  }

  Status EvalMember(bool* keep_going) {
    const Term* set = Inst(1);
    if (set == nullptr) return Status::OK();
    if (!set->ground()) return NotReadyError();
    if (!set->is_set()) return Status::OK();  // false on non-sets (§2.2 (2))
    const Term* element = Inst(0);
    if (element != nullptr && element->ground()) {
      if (factory_.SetContains(set, element)) *keep_going = yield_();
      return Status::OK();
    }
    for (const Term* candidate : set->args()) {
      if (!MatchArg(0, candidate)) {
        *keep_going = false;
        return Status::OK();
      }
    }
    return Status::OK();
  }

  Status EvalUnion(bool* keep_going) {
    const Term* s1 = Inst(0);
    const Term* s2 = Inst(1);
    const Term* s3 = Inst(2);
    if (s1 == nullptr || s2 == nullptr || s3 == nullptr) return Status::OK();
    bool g1 = s1->ground();
    bool g2 = s2->ground();
    bool g3 = s3->ground();

    if (g1 && g2) {
      if (!s1->is_set() || !s2->is_set()) return Status::OK();
      *keep_going = MatchArg(2, factory_.SetUnion(s1, s2));
      return Status::OK();
    }
    if (!g3) return NotReadyError();
    if (!s3->is_set()) return Status::OK();

    if (g1 || g2) {
      // One operand known: union(A, X, S) requires A subset S and
      // X = (S \ A) u T for T subset A.
      size_t known_index = g1 ? 0 : 1;
      size_t free_index = g1 ? 1 : 0;
      const Term* known = g1 ? s1 : s2;
      if (!known->is_set()) return Status::OK();
      if (factory_.SetDifference(known, s3)->size() != 0) return Status::OK();
      const Term* base = factory_.SetDifference(s3, known);
      if (known->size() > limits_.max_subset_enumeration) {
        return ResourceExhaustedError(
            StrCat("union/3 enumeration over a set of ", known->size(),
                   " elements exceeds the limit"));
      }
      bool cont = ForEachSubset(factory_, known->args(), [&](const Term* extra) {
        return MatchSeq2(known_index, known, free_index,
                         factory_.SetUnion(base, extra));
      });
      *keep_going = cont;
      return Status::OK();
    }

    // Only S3 bound: every element goes to S1 only, S2 only, or both.
    size_t n = s3->size();
    if (n > limits_.max_union_enumeration) {
      return ResourceExhaustedError(
          StrCat("union/3 with only the result bound enumerates 3^", n,
                 " splits; set too large"));
    }
    std::vector<const Term*> left;
    std::vector<const Term*> right;
    bool cont = EnumerateUnionSplits(s3, 0, &left, &right);
    *keep_going = cont;
    return Status::OK();
  }

  // Matches two pattern args against two ground values conjunctively.
  bool MatchSeq2(size_t i1, const Term* v1, size_t i2, const Term* v2) {
    return MatchTerm(factory_, literal_.args[i1], v1, subst_, [&]() {
      return MatchTerm(factory_, literal_.args[i2], v2, subst_, yield_);
    });
  }

  bool EnumerateUnionSplits(const Term* s3, uint32_t i,
                            std::vector<const Term*>* left,
                            std::vector<const Term*>* right) {
    if (i == s3->size()) {
      return MatchSeq2(0, factory_.MakeSet(*left), 1, factory_.MakeSet(*right));
    }
    const Term* element = s3->arg(i);
    struct Choice {
      bool in_left;
      bool in_right;
    };
    static constexpr Choice kChoices[] = {{true, false}, {false, true}, {true, true}};
    for (const Choice& choice : kChoices) {
      if (choice.in_left) left->push_back(element);
      if (choice.in_right) right->push_back(element);
      bool cont = EnumerateUnionSplits(s3, i + 1, left, right);
      if (choice.in_left) left->pop_back();
      if (choice.in_right) right->pop_back();
      if (!cont) return false;
    }
    return true;
  }

  // intersection(S1, S2, S3) / difference(S1, S2, S3) with S1, S2 ground.
  Status EvalBinarySetOp(bool* keep_going, bool intersection) {
    const Term* s1 = Inst(0);
    const Term* s2 = Inst(1);
    if (s1 == nullptr || s2 == nullptr) return Status::OK();
    if (!s1->ground() || !s2->ground()) return NotReadyError();
    if (!s1->is_set() || !s2->is_set()) return Status::OK();
    const Term* result = intersection ? factory_.SetIntersect(s1, s2)
                                      : factory_.SetDifference(s1, s2);
    *keep_going = MatchArg(2, result);
    return Status::OK();
  }

  Status EvalSubset(bool* keep_going) {
    const Term* sub = Inst(0);
    const Term* super = Inst(1);
    if (sub == nullptr || super == nullptr) return Status::OK();
    if (!super->ground()) return NotReadyError();
    if (!super->is_set()) return Status::OK();
    if (sub->ground()) {
      if (sub->is_set() && factory_.SetDifference(sub, super)->size() == 0) {
        *keep_going = yield_();
      }
      return Status::OK();
    }
    if (super->size() > limits_.max_subset_enumeration) {
      return ResourceExhaustedError(
          StrCat("subset/2 enumeration over a set of ", super->size(),
                 " elements exceeds the limit"));
    }
    *keep_going = ForEachSubset(factory_, super->args(), [&](const Term* candidate) {
      return MatchArg(0, candidate);
    });
    return Status::OK();
  }

  Status EvalPartition(bool* keep_going) {
    const Term* whole = Inst(0);
    const Term* s1 = Inst(1);
    const Term* s2 = Inst(2);
    if (whole == nullptr || s1 == nullptr || s2 == nullptr) return Status::OK();
    bool g0 = whole->ground();
    bool g1 = s1->ground();
    bool g2 = s2->ground();

    if (g1 && g2) {
      if (!s1->is_set() || !s2->is_set()) return Status::OK();
      if (factory_.SetIntersect(s1, s2)->size() != 0) return Status::OK();
      *keep_going = MatchArg(0, factory_.SetUnion(s1, s2));
      return Status::OK();
    }
    if (!g0) return NotReadyError();
    if (!whole->is_set()) return Status::OK();

    if (g1 || g2) {
      size_t known_index = g1 ? 1 : 2;
      size_t free_index = g1 ? 2 : 1;
      const Term* known = g1 ? s1 : s2;
      if (!known->is_set()) return Status::OK();
      if (factory_.SetDifference(known, whole)->size() != 0) return Status::OK();
      *keep_going = MatchSeq2(known_index, known, free_index,
                              factory_.SetDifference(whole, known));
      return Status::OK();
    }

    if (whole->size() > limits_.max_subset_enumeration) {
      return ResourceExhaustedError(
          StrCat("partition/3 enumeration over a set of ", whole->size(),
                 " elements exceeds the limit"));
    }
    *keep_going = ForEachSubset(factory_, whole->args(), [&](const Term* part1) {
      return MatchSeq2(1, part1, 2, factory_.SetDifference(whole, part1));
    });
    return Status::OK();
  }

  Status EvalCard(bool* keep_going) {
    const Term* set = Inst(0);
    if (set == nullptr) return Status::OK();
    if (!set->ground()) return NotReadyError();
    if (!set->is_set()) return Status::OK();
    *keep_going = MatchArg(1, factory_.MakeInt(set->size()));
    return Status::OK();
  }

  // plus(A, B, C): A + B = C; minus(A, B, C): A - B = C.
  Status EvalLinear(bool* keep_going, BuiltinKind kind) {
    const Term* a = Inst(0);
    const Term* b = Inst(1);
    const Term* c = Inst(2);
    if (a == nullptr || b == nullptr || c == nullptr) return Status::OK();
    bool minus = kind == BuiltinKind::kMinus;
    auto as_int = [](const Term* t) -> std::optional<int64_t> {
      if (t->ground() && t->is_int()) return t->int_value();
      return std::nullopt;
    };
    std::optional<int64_t> va = as_int(a);
    std::optional<int64_t> vb = as_int(b);
    std::optional<int64_t> vc = as_int(c);
    // Ground non-integers make the predicate false.
    if ((a->ground() && !va) || (b->ground() && !vb) || (c->ground() && !vc)) {
      return Status::OK();
    }
    // A result outside int64 means no representable solution: the built-in
    // is simply not satisfied, like division by zero.
    if (va && vb) {
      std::optional<int64_t> result =
          minus ? CheckedSub(*va, *vb) : CheckedAdd(*va, *vb);
      if (result) *keep_going = MatchArg(2, factory_.MakeInt(*result));
      return Status::OK();
    }
    if (va && vc) {
      std::optional<int64_t> result =
          minus ? CheckedSub(*va, *vc) : CheckedSub(*vc, *va);
      if (result) *keep_going = MatchArg(1, factory_.MakeInt(*result));
      return Status::OK();
    }
    if (vb && vc) {
      std::optional<int64_t> result =
          minus ? CheckedAdd(*vc, *vb) : CheckedSub(*vc, *vb);
      if (result) *keep_going = MatchArg(0, factory_.MakeInt(*result));
      return Status::OK();
    }
    return NotReadyError();
  }

  Status EvalTimes(bool* keep_going) {
    const Term* a = Inst(0);
    const Term* b = Inst(1);
    const Term* c = Inst(2);
    if (a == nullptr || b == nullptr || c == nullptr) return Status::OK();
    auto as_int = [](const Term* t) -> std::optional<int64_t> {
      if (t->ground() && t->is_int()) return t->int_value();
      return std::nullopt;
    };
    std::optional<int64_t> va = as_int(a);
    std::optional<int64_t> vb = as_int(b);
    std::optional<int64_t> vc = as_int(c);
    if ((a->ground() && !va) || (b->ground() && !vb) || (c->ground() && !vc)) {
      return Status::OK();
    }
    if (va && vb) {
      std::optional<int64_t> product = CheckedMul(*va, *vb);
      if (product) *keep_going = MatchArg(2, factory_.MakeInt(*product));
      return Status::OK();
    }
    auto solve = [&](int64_t known, size_t free_index) {
      if (known == 0) {
        // 0 * B = C: false when C != 0; when C == 0 any B works, which is
        // a mode error (unconstrained output).
        if (*vc != 0) {
          *keep_going = true;
          return true;
        }
        return false;
      }
      // Checked: INT64_MIN with known == -1 has no representable quotient
      // (and the raw % / / would be UB), so the predicate is unsatisfied.
      std::optional<int64_t> remainder = CheckedMod(*vc, known);
      std::optional<int64_t> quotient = CheckedDiv(*vc, known);
      if (!remainder || !quotient || *remainder != 0) {
        *keep_going = true;  // no solution
        return true;
      }
      *keep_going = MatchArg(free_index, factory_.MakeInt(*quotient));
      return true;
    };
    if (va && vc) {
      if (solve(*va, 1)) return Status::OK();
      return NotReadyError();
    }
    if (vb && vc) {
      if (solve(*vb, 0)) return Status::OK();
      return NotReadyError();
    }
    return NotReadyError();
  }

  Status EvalDivMod(bool* keep_going, bool mod) {
    const Term* a = Inst(0);
    const Term* b = Inst(1);
    if (a == nullptr || b == nullptr) return Status::OK();
    if (!a->ground() || !b->ground()) return NotReadyError();
    if (!a->is_int() || !b->is_int()) return Status::OK();
    // Checked ops make division by zero and the INT64_MIN / -1 overflow
    // corner "undefined: false" instead of UB.
    std::optional<int64_t> result = mod ? CheckedMod(a->int_value(), b->int_value())
                                        : CheckedDiv(a->int_value(), b->int_value());
    if (!result) return Status::OK();
    *keep_going = MatchArg(2, factory_.MakeInt(*result));
    return Status::OK();
  }

  TermFactory& factory_;
  const LiteralIr& literal_;
  Subst* subst_;
  const MatchCont& yield_;
  const BuiltinLimits& limits_;
};

}  // namespace

Status EvalBuiltin(TermFactory& factory, const LiteralIr& literal, Subst* subst,
                   const MatchCont& yield, bool* keep_going,
                   const BuiltinLimits& limits) {
  BuiltinEvaluator evaluator(factory, literal, subst, yield, limits);
  return evaluator.Run(keep_going);
}

}  // namespace ldl
