#include "eval/batch.h"

#include <algorithm>
#include <cassert>

#include "eval/bindings.h"
#include "eval/rule_eval.h"
#include "term/unify.h"

namespace ldl {

// The kernels below are line-for-line shadows of RuleEvaluator::ExecStep
// (rule_eval.cc): every counter increment, window clamp, and candidate
// visit happens for the same (input binding, candidate row) pairs in the
// same depth-first order. When changing either executor, change both --
// tests/equivalence_test.cc compares models, profiles, and derivation
// counts across the two paths over the whole corpus.

BlockExecutor::BlockExecutor(TermFactory* factory, const RuleIr* rule,
                             const JoinPlan* plan, BuiltinLimits limits,
                             size_t block_rows)
    : factory_(factory),
      rule_(rule),
      plan_(plan),
      limits_(limits),
      block_rows_(block_rows == 0 ? kDefaultBlockRows : block_rows) {
  root_.Reset(plan_->slot_count(), 1);
  blocks_.resize(plan_->steps().size());
  for (TupleBlock& block : blocks_) {
    block.Reset(plan_->slot_count(), block_rows_);
  }
  scratch_.resize(plan_->steps().size());
}

Status BlockExecutor::Run(const Database& db,
                          const std::vector<LiteralWindow>& windows,
                          const BlockFn& sink, EvalStats* stats) {
  keep_going_ = true;
  root_.Clear();
  std::vector<const Term*> nulls(plan_->slot_count(), nullptr);
  root_.AppendRow(nulls.data());
  return ProcessBlock(db, windows, 0, root_, sink, stats);
}

Status BlockExecutor::ProcessBlock(const Database& db,
                                   const std::vector<LiteralWindow>& windows,
                                   size_t depth, TupleBlock& in,
                                   const BlockFn& sink, EvalStats* stats) {
  if (!keep_going_) return Status::OK();
  if (depth == plan_->steps().size()) {
    stats->solutions += in.sel().size();
    keep_going_ = sink(in);
    return Status::OK();
  }
  const LiteralPlan& step = plan_->steps()[depth];
  const LiteralIr& literal = rule_->body[step.literal_index];
  TupleBlock& out = blocks_[depth];
  StepScratch& scratch = scratch_[depth];
  out.Clear();
  Status status;

  // Hands the accumulated output block downstream and resets it. Returns
  // false when the enumeration must stop (error captured in `status`, or
  // the sink asked to stop).
  auto flush = [&]() -> bool {
    if (out.empty()) {
      out.Clear();  // rows may all have been popped; reclaim the storage
      return keep_going_;
    }
    Status inner = ProcessBlock(db, windows, depth + 1, out, sink, stats);
    out.Clear();
    if (!inner.ok()) {
      status = inner;
      keep_going_ = false;
    }
    return keep_going_;
  };

  // --- Built-in step ------------------------------------------------------
  if (step.kind == StepKind::kBuiltin) {
    if (step.outputs.empty()) {
      // Pure filter (comparisons, ground checks): refine the selection
      // vector in place, no row copies. A built-in that yields k times
      // keeps the row k times, preserving the scalar executor's duplicate
      // solutions.
      scratch.sel.clear();
      for (uint32_t idx : in.sel()) {
        const Term* const* src = in.row(idx);
        Subst bindings;
        for (const auto& [var, slot] : step.inputs) bindings.Bind(var, src[slot]);
        bool builtin_keep_going = true;
        Status builtin_status = EvalBuiltin(
            *factory_, literal, &bindings,
            [&]() {
              scratch.sel.push_back(idx);
              return true;
            },
            &builtin_keep_going, limits_);
        if (!builtin_status.ok()) return builtin_status;
      }
      in.mutable_sel()->swap(scratch.sel);
      if (in.empty()) return Status::OK();
      return ProcessBlock(db, windows, depth + 1, in, sink, stats);
    }
    // Expanding built-in (arithmetic, set ops binding new variables): one
    // output row per yield, outputs harvested from the scratch bindings.
    for (uint32_t idx : in.sel()) {
      if (!keep_going_) break;
      const Term* const* src = in.row(idx);
      Subst bindings;
      for (const auto& [var, slot] : step.inputs) bindings.Bind(var, src[slot]);
      bool builtin_keep_going = true;
      Status builtin_status = EvalBuiltin(
          *factory_, literal, &bindings,
          [&]() {
            if (out.full() && !flush()) return false;
            const Term** dst = out.AppendRow(src);
            for (const auto& [var, slot] : step.outputs) {
              dst[slot] = bindings.Lookup(var);
            }
            return keep_going_;
          },
          &builtin_keep_going, limits_);
      if (!builtin_status.ok()) return builtin_status;
      if (!status.ok()) return status;
    }
    if (status.ok() && keep_going_) flush();
    return status;
  }

  // --- Negation step ------------------------------------------------------
  if (step.kind == StepKind::kNegated) {
    // Negation as failure is a pure filter: refine the selection in place.
    scratch.sel.clear();
    const Relation& relation = db.relation(literal.pred);
    for (uint32_t idx : in.sel()) {
      const Term* const* src = in.row(idx);
      Subst bindings;
      for (const auto& [var, slot] : step.inputs) bindings.Bind(var, src[slot]);
      InstantiationResult inst = InstantiateArgs(*factory_, literal.args, bindings);
      bool holds;
      if (inst.unbound) {
        // Residual variables are existential under the negation (e.g. the
        // paper's !a(X, Z) with Z local): the negation holds iff *no* fact
        // matches the pattern.
        bool any_match = false;
        relation.ForEachRow(0, relation.row_count(), [&](size_t, RowRef tuple) {
          if (any_match) return;
          ++stats->tuples_matched;
          MatchArgs(*factory_, literal.args, tuple, &bindings, [&]() {
            any_match = true;
            return false;
          });
        });
        holds = !any_match;
      } else {
        // A tuple outside U is not a U-fact, so its negation holds (§2.2).
        holds = inst.outside_universe || !relation.Contains(inst.tuple);
      }
      if (holds) scratch.sel.push_back(idx);
    }
    in.mutable_sel()->swap(scratch.sel);
    if (in.empty()) return Status::OK();
    return ProcessBlock(db, windows, depth + 1, in, sink, stats);
  }

  const Relation& relation = db.relation(step.pred);
  LiteralWindow window;
  if (!windows.empty()) window = windows[step.literal_index];
  size_t to = std::min(window.to, relation.row_count());

  // --- Specialized scan/probe step ---------------------------------------
  if (step.kind == StepKind::kScan) {
    // Match program over one candidate: append the input row, bind/check
    // against the appended copy (kBind before kCheckSlot on the same slot
    // handles repeated variables within the literal), pop on failure.
    auto try_row = [&](const Term* const* src, RowRef tuple) -> bool {
      ++stats->tuples_matched;
      if (out.full() && !flush()) return false;
      const Term** dst = out.AppendRow(src);
      bool matched = true;
      for (const MatchOp& op : step.match) {
        switch (op.kind) {
          case MatchOpKind::kBind:
            dst[op.slot] = tuple[op.column];
            break;
          case MatchOpKind::kCheckSlot:
            if (tuple[op.column] != dst[op.slot]) matched = false;
            break;
          case MatchOpKind::kCheckConst:
            if (tuple[op.column] != op.constant) matched = false;
            break;
        }
        if (!matched) break;
      }
      if (!matched) out.PopRow();
      return true;
    };

    if (!step.probe.empty()) {
      // Pass 1: materialize every selected row's probe key and hash them in
      // one sweep over the block (one index_probes tick per input binding,
      // as in the scalar executor).
      const size_t key_width = step.probe.size();
      const auto& sel = in.sel();
      stats->index_probes += sel.size();
      scratch.keys.resize(key_width * sel.size());
      scratch.hashes.clear();
      scratch.hashes.reserve(sel.size());
      for (size_t s = 0; s < sel.size(); ++s) {
        const Term* const* src = in.row(sel[s]);
        const Term** key = scratch.keys.data() + s * key_width;
        for (size_t i = 0; i < key_width; ++i) {
          const ValueRef& ref = step.probe[i];
          key[i] = ref.slot >= 0 ? src[ref.slot] : ref.constant;
          assert(key[i] != nullptr);
        }
        scratch.hashes.push_back(Relation::ProbeHash({key, key_width}));
      }
      // Pass 2: probe with the precomputed hashes, input rows in order.
      for (size_t s = 0; s < sel.size(); ++s) {
        if (!keep_going_ || !status.ok()) break;
        const Term* const* src = in.row(sel[s]);
        const Term* const* key = scratch.keys.data() + s * key_width;
        relation.ProbeRowsHashed(step.probe_cols, {key, key_width},
                                 scratch.hashes[s], window.from, to,
                                 [&](size_t row) {
                                   ++stats->probe_hits;
                                   return try_row(src, relation.row(row));
                                 });
      }
      if (status.ok() && keep_going_) flush();
      return status;
    }

    // Unbound scan: gather the window's live row ids once per input block
    // (the per-candidate tombstone branch of ForEachRow amortized across
    // every input row), then run the match program over the dense array.
    scratch.live_rows.clear();
    relation.CollectLiveRows(window.from, to, &scratch.live_rows);
    for (uint32_t idx : in.sel()) {
      if (!keep_going_ || !status.ok()) break;
      const Term* const* src = in.row(idx);
      for (uint32_t row_id : scratch.live_rows) {
        if (!try_row(src, relation.row(row_id))) break;
      }
    }
    if (status.ok() && keep_going_) flush();
    return status;
  }

  // --- Generic fallback step ----------------------------------------------
  // Complex argument patterns (functors, sets, scons): per-row scalar
  // unification, exactly the scalar executor's kGenericScan, inside the
  // block loop. Set/complex terms lose nothing under batching.
  for (uint32_t idx : in.sel()) {
    if (!keep_going_ || !status.ok()) break;
    const Term* const* src = in.row(idx);
    Subst bindings;
    for (const auto& [var, slot] : step.inputs) bindings.Bind(var, src[slot]);

    auto try_row = [&](RowRef tuple) -> bool {
      ++stats->tuples_matched;
      return MatchArgs(*factory_, literal.args, tuple, &bindings, [&]() {
        if (out.full() && !flush()) return false;
        const Term** dst = out.AppendRow(src);
        for (const auto& [var, slot] : step.outputs) {
          dst[slot] = bindings.Lookup(var);
        }
        return keep_going_;
      });
    };

    bool probed = false;
    if (!step.bound_columns.empty()) {
      std::vector<const Term*> values;
      values.reserve(step.bound_columns.size());
      std::vector<uint32_t> cols;
      cols.reserve(step.bound_columns.size());
      bool outside_universe = false;
      for (uint32_t column : step.bound_columns) {
        const Term* value = ApplySubst(*factory_, literal.args[column], bindings);
        if (value == nullptr) {
          // Instantiates outside U (scons on a non-set): no fact can match.
          outside_universe = true;
          break;
        }
        // Statically bound columns instantiate to ground scons-free terms;
        // anything else would indicate a compile/runtime boundness mismatch,
        // so skip the column rather than probe with a bad key.
        if (!value->ground() || value->has_scons()) continue;
        cols.push_back(column);
        values.push_back(value);
      }
      if (outside_universe) continue;
      if (!cols.empty()) {
        ++stats->index_probes;
        relation.ProbeRows(cols, values, window.from, to, [&](size_t row) {
          ++stats->probe_hits;
          return try_row(relation.row(row));
        });
        probed = true;
      }
    }
    if (!probed) {
      bool stopped = false;
      relation.ForEachRow(window.from, to, [&](size_t, RowRef tuple) {
        if (stopped) return;
        if (!try_row(tuple)) stopped = true;
      });
    }
  }
  if (status.ok() && keep_going_) flush();
  return status;
}

bool EmitHeadBlock(const JoinPlan& plan, const TupleBlock& block,
                   RowBuffer* out) {
  assert(plan.head_simple());
  const std::vector<ValueRef>& head = plan.head();
  for (uint32_t idx : block.sel()) {
    const Term* const* src = block.row(idx);
    const Term** dst = out->AppendRow();
    for (size_t i = 0; i < head.size(); ++i) {
      const ValueRef& ref = head[i];
      const Term* value = ref.slot >= 0 ? src[ref.slot] : ref.constant;
      if (value == nullptr) return false;  // caller aborts; partial row is moot
      dst[i] = value;
    }
  }
  return true;
}

Status RuleEvaluator::ForEachBlock(const Database& db,
                                   const std::vector<LiteralWindow>& windows,
                                   const BlockFn& sink, EvalStats* stats,
                                   size_t block_rows) {
  if (plan_ == nullptr) {
    return InternalError("ForEachBlock requires a compiled plan");
  }
  if (batch_ == nullptr) {
    batch_ = std::make_unique<BlockExecutor>(factory_, rule_, plan_.get(),
                                             limits_, block_rows);
  }
  return batch_->Run(db, windows, sink, stats);
}

}  // namespace ldl
