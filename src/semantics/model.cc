#include "semantics/model.h"

#include "base/str_util.h"
#include "eval/bindings.h"
#include "eval/grouping.h"
#include "eval/rule_eval.h"

namespace ldl {

namespace {

// Checks one non-grouping rule: every body solution must put the
// instantiated head in the interpretation.
StatusOr<bool> CheckPlainRule(TermFactory& factory, const Catalog& catalog,
                              const RuleIr& rule, const Database& interpretation,
                              std::string* counterexample) {
  LDL_ASSIGN_OR_RETURN(std::vector<int> order, OrderBodyLiterals(catalog, rule));
  RuleEvaluator evaluator(&factory, &rule, std::move(order));
  EvalStats stats;
  bool satisfied = true;
  Status inner;
  Status status = evaluator.ForEachSolution(
      interpretation, {},
      [&](const SolutionView& view) {
        InstantiationResult inst = evaluator.InstantiateHead(view);
        if (inst.unbound) {
          inner = InternalError("unbound head variable while model checking");
          return false;
        }
        if (inst.outside_universe) return true;  // no U-fact required
        if (!interpretation.relation(rule.head_pred).Contains(inst.tuple)) {
          satisfied = false;
          if (counterexample != nullptr) {
            *counterexample =
                StrCat("missing ", FormatFact(factory, catalog, rule.head_pred,
                                              inst.tuple));
          }
          return false;
        }
        return true;
      },
      &stats);
  LDL_RETURN_IF_ERROR(status);
  LDL_RETURN_IF_ERROR(inner);
  return satisfied;
}

// Checks a grouping rule: per §2.2, for each partition key the
// interpretation must contain the head fact whose grouped column is exactly
// the collected set.
StatusOr<bool> CheckGroupingRule(TermFactory& factory, const Catalog& catalog,
                                 const RuleIr& rule,
                                 const Database& interpretation,
                                 std::string* counterexample) {
  LDL_ASSIGN_OR_RETURN(std::vector<int> order, OrderBodyLiterals(catalog, rule));
  RuleEvaluator evaluator(&factory, &rule, std::move(order));
  EvalStats stats;
  LDL_ASSIGN_OR_RETURN(std::vector<GroupResult> groups,
                       ComputeGroups(factory, evaluator, interpretation, &stats));
  for (const GroupResult& group : groups) {
    if (!interpretation.relation(rule.head_pred).Contains(group.fact)) {
      if (counterexample != nullptr) {
        *counterexample = StrCat(
            "missing grouped fact ",
            FormatFact(factory, catalog, rule.head_pred, group.fact));
      }
      return false;
    }
  }
  return true;
}

}  // namespace

StatusOr<bool> IsModel(TermFactory& factory, const Catalog& catalog,
                       const ProgramIr& program, const Database& interpretation,
                       std::string* counterexample) {
  for (const RuleIr& rule : program.rules) {
    if (rule.is_fact()) {
      InstantiationResult inst =
          InstantiateArgs(factory, rule.head_args, Subst());
      if (inst.unbound) return InvalidArgumentError("fact with variables");
      if (inst.outside_universe) continue;
      if (!interpretation.relation(rule.head_pred).Contains(inst.tuple)) {
        if (counterexample != nullptr) {
          *counterexample = StrCat(
              "missing fact ",
              FormatFact(factory, catalog, rule.head_pred, inst.tuple));
        }
        return false;
      }
      continue;
    }
    StatusOr<bool> ok =
        rule.is_grouping()
            ? CheckGroupingRule(factory, catalog, rule, interpretation,
                                counterexample)
            : CheckPlainRule(factory, catalog, rule, interpretation,
                             counterexample);
    LDL_RETURN_IF_ERROR(ok.status());
    if (!*ok) return false;
  }
  return true;
}

bool FactDominated(TermFactory& factory, const Tuple& e,
                   const Tuple& e_prime) {
  if (e.size() != e_prime.size()) return false;
  for (size_t i = 0; i < e.size(); ++i) {
    if (e[i]->is_set() && e_prime[i]->is_set()) {
      // Subset test: e[i] subseteq e_prime[i].
      if (factory.SetDifference(e[i], e_prime[i])->size() != 0) return false;
    } else if (e[i] != e_prime[i]) {
      return false;
    }
  }
  return true;
}

bool ElementDominated(TermFactory& factory, const Term* e, const Term* e_prime) {
  if (e == e_prime) return true;  // (i): interned equality
  if (e->is_set() && e_prime->is_set()) {
    // (iii): every element of e dominated by some element of e'.
    for (const Term* a : e->args()) {
      bool dominated = false;
      for (const Term* b : e_prime->args()) {
        if (ElementDominated(factory, a, b)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) return false;
    }
    return true;
  }
  if (e->is_func() && e_prime->is_func() && e->symbol() == e_prime->symbol() &&
      e->size() == e_prime->size()) {
    // (ii): component-wise.
    for (uint32_t i = 0; i < e->size(); ++i) {
      if (!ElementDominated(factory, e->arg(i), e_prime->arg(i))) return false;
    }
    return true;
  }
  return false;
}

bool FactDeepDominated(TermFactory& factory, const Tuple& e, const Tuple& e_prime) {
  if (e.size() != e_prime.size()) return false;
  for (size_t i = 0; i < e.size(); ++i) {
    if (!ElementDominated(factory, e[i], e_prime[i])) return false;
  }
  return true;
}

bool FactSetDominated(TermFactory& factory,
                      const std::vector<LabeledFact>& a,
                      const std::vector<LabeledFact>& b) {
  for (const LabeledFact& fact_a : a) {
    bool dominated = false;
    for (const LabeledFact& fact_b : b) {
      if (fact_a.first == fact_b.first &&
          FactDominated(factory, fact_a.second, fact_b.second)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

std::vector<LabeledFact> ModelDifference(const Database& m1, const Database& m2,
                                         const std::vector<PredId>& preds) {
  std::vector<LabeledFact> result;
  for (PredId pred : preds) {
    const Relation& r1 = m1.relation(pred);
    const Relation& r2 = m2.relation(pred);
    r1.ForEachRow(0, r1.row_count(), [&](size_t, RowRef tuple) {
      if (!r2.Contains(tuple)) result.emplace_back(pred, Tuple(tuple.begin(), tuple.end()));
    });
  }
  return result;
}

bool DifferenceDominated(TermFactory& factory, const Database& m1,
                         const Database& m2, const std::vector<PredId>& preds) {
  return FactSetDominated(factory, ModelDifference(m1, m2, preds),
                          ModelDifference(m2, m1, preds));
}

}  // namespace ldl
