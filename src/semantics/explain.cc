#include "semantics/explain.h"

#include <set>
#include <unordered_set>

#include "base/str_util.h"
#include "eval/bindings.h"
#include "eval/grouping.h"
#include "eval/rule_eval.h"
#include "term/unify.h"

namespace ldl {

namespace {

constexpr size_t kMaxGroupPremises = 8;

class Explainer {
 public:
  Explainer(TermFactory& factory, const Catalog& catalog, const ProgramIr& program,
            const Database& model, const ExplainOptions& options)
      : factory_(factory),
        catalog_(catalog),
        program_(program),
        model_(model),
        options_(options) {}

  StatusOr<std::unique_ptr<Derivation>> Run(PredId pred, const Tuple& fact) {
    return ExplainFact(pred, fact, 0);
  }

 private:
  using PathKey = std::pair<PredId, Tuple>;
  struct PathKeyHash {
    size_t operator()(const PathKey& key) const {
      return TupleHash()(key.second) * 1000003 + key.first;
    }
  };

  StatusOr<std::unique_ptr<Derivation>> ExplainFact(PredId pred, const Tuple& fact,
                                                    size_t depth) {
    if (!model_.relation(pred).Contains(fact)) {
      return NotFoundError(StrCat(FormatFact(factory_, catalog_, pred, fact),
                                  " is not in the model"));
    }
    auto node = std::make_unique<Derivation>();
    node->pred = pred;
    node->fact = fact;

    if (!catalog_.info(pred).has_rules) return node;  // EDB leaf

    if (depth >= options_.max_depth) {
      node->notes.push_back("... (max depth reached)");
      return node;
    }
    PathKey key{pred, fact};
    if (!path_.insert(key).second) {
      node->notes.push_back("... (already being derived above)");
      return node;
    }

    Status status = WitnessRules(pred, fact, depth, node.get());
    path_.erase(key);
    if (!status.ok()) return status;
    if (node->rule_index < 0 && node->notes.empty()) {
      // In the model, intensional, but no witnessing rule: it must have been
      // loaded as a fact of an intensional predicate.
      node->notes.push_back("asserted as a fact");
    }
    return node;
  }

  // Tries each rule for `pred`; fills in the first witness found.
  Status WitnessRules(PredId pred, const Tuple& fact, size_t depth,
                      Derivation* node) {
    for (size_t r = 0; r < program_.rules.size(); ++r) {
      const RuleIr& rule = program_.rules[r];
      if (rule.head_pred != pred) continue;
      if (rule.is_fact()) {
        InstantiationResult inst =
            InstantiateArgs(factory_, rule.head_args, Subst());
        if (!inst.unbound && !inst.outside_universe && inst.tuple == fact) {
          node->rule_index = static_cast<int>(r);
          return Status::OK();
        }
        continue;
      }
      StatusOr<bool> witnessed =
          rule.is_grouping() ? WitnessGroupingRule(rule, r, fact, depth, node)
                             : WitnessPlainRule(rule, r, fact, depth, node);
      LDL_RETURN_IF_ERROR(witnessed.status());
      if (*witnessed) return Status::OK();
    }
    return Status::OK();
  }

  StatusOr<bool> WitnessPlainRule(const RuleIr& rule, size_t rule_index,
                                  const Tuple& fact, size_t depth,
                                  Derivation* node) {
    LDL_ASSIGN_OR_RETURN(std::vector<int> order, OrderBodyLiterals(catalog_, rule));
    RuleEvaluator evaluator(&factory_, &rule, std::move(order));
    EvalStats stats;
    // Capture the first body solution whose instantiated head equals `fact`.
    std::vector<std::pair<Symbol, const Term*>> witness;
    bool found = false;
    Status status = evaluator.ForEachSolution(
        model_, {},
        [&](const SolutionView& view) {
          InstantiationResult inst = evaluator.InstantiateHead(view);
          if (inst.unbound || inst.outside_universe || inst.tuple != fact) {
            return true;
          }
          Subst bindings;
          view.AppendBindings(&bindings);
          witness = bindings.trail();
          found = true;
          return false;
        },
        &stats);
    LDL_RETURN_IF_ERROR(status);
    if (!found) return false;

    node->rule_index = static_cast<int>(rule_index);
    Subst subst;
    for (const auto& [var, value] : witness) subst.Bind(var, value);
    for (const LiteralIr& literal : rule.body) {
      LDL_RETURN_IF_ERROR(AttachPremise(literal, subst, depth, node));
    }
    return true;
  }

  StatusOr<bool> WitnessGroupingRule(const RuleIr& rule, size_t rule_index,
                                     const Tuple& fact, size_t depth,
                                     Derivation* node) {
    LDL_ASSIGN_OR_RETURN(std::vector<int> order, OrderBodyLiterals(catalog_, rule));
    RuleEvaluator evaluator(&factory_, &rule, order);
    EvalStats stats;
    LDL_ASSIGN_OR_RETURN(std::vector<GroupResult> groups,
                         ComputeGroups(factory_, evaluator, model_, &stats));
    for (const GroupResult& group : groups) {
      if (group.fact != fact) continue;
      node->rule_index = static_cast<int>(rule_index);
      const Term* grouped_set = fact[rule.group_index];
      node->notes.push_back(StrCat("grouped ", grouped_set->size(),
                                   " element(s) into ",
                                   factory_.ToString(grouped_set)));
      // Premises: the body solutions contributing to this partition,
      // capped for readability. Reuses the order computed above.
      RuleEvaluator premise_evaluator(&factory_, &rule, std::move(order));
      std::set<std::pair<PredId, Tuple>> seen;
      size_t skipped = 0;
      Status inner;
      Status status = premise_evaluator.ForEachSolution(
          model_, {},
          [&](const SolutionView& view) {
            Subst subst;
            view.AppendBindings(&subst);
            InstantiationResult inst =
                InstantiateArgs(factory_, rule.head_args, subst);
            // Same partition iff the non-grouped head values agree.
            if (inst.unbound || inst.outside_universe) return true;
            bool same = true;
            for (size_t i = 0; i < fact.size(); ++i) {
              if (static_cast<int>(i) == rule.group_index) continue;
              if (inst.tuple[i] != fact[i]) same = false;
            }
            if (!same) return true;
            for (const LiteralIr& literal : rule.body) {
              if (literal.is_builtin() || literal.negated) continue;
              InstantiationResult args =
                  InstantiateArgs(factory_, literal.args, subst);
              if (args.unbound || args.outside_universe) continue;
              if (!seen.insert({literal.pred, args.tuple}).second) continue;
              if (seen.size() > kMaxGroupPremises) {
                ++skipped;
                continue;
              }
              Status attach = AttachFactPremise(literal.pred, args.tuple,
                                                depth, node);
              if (!attach.ok()) {
                inner = attach;
                return false;
              }
            }
            return true;
          },
          &stats);
      LDL_RETURN_IF_ERROR(status);
      LDL_RETURN_IF_ERROR(inner);
      if (skipped > 0) {
        node->notes.push_back(StrCat("... and ", skipped, " more supporting facts"));
      }
      return true;
    }
    return false;
  }

  Status AttachPremise(const LiteralIr& literal, const Subst& subst, size_t depth,
                       Derivation* node) {
    if (literal.is_builtin()) {
      InstantiationResult inst = InstantiateArgs(factory_, literal.args, subst);
      if (!inst.unbound && !inst.outside_universe) {
        std::string text(BuiltinName(literal.builtin));
        StrAppend(text, FormatTuple(factory_, inst.tuple),
                  literal.negated ? " fails" : " holds");
        node->notes.push_back(std::move(text));
      }
      return Status::OK();
    }
    InstantiationResult inst = InstantiateArgs(factory_, literal.args, subst);
    if (literal.negated) {
      std::string rendered =
          inst.unbound
              ? StrCat("no matching ", catalog_.DebugName(literal.pred), " fact")
              : StrCat("not ",
                       FormatFact(factory_, catalog_, literal.pred, inst.tuple));
      node->notes.push_back(std::move(rendered));
      return Status::OK();
    }
    if (inst.unbound || inst.outside_universe) {
      return InternalError("unbound positive premise during explanation");
    }
    return AttachFactPremise(literal.pred, inst.tuple, depth, node);
  }

  Status AttachFactPremise(PredId pred, const Tuple& fact, size_t depth,
                           Derivation* node) {
    LDL_ASSIGN_OR_RETURN(std::unique_ptr<Derivation> premise,
                         ExplainFact(pred, fact, depth + 1));
    node->premises.push_back(std::move(premise));
    return Status::OK();
  }

  TermFactory& factory_;
  const Catalog& catalog_;
  const ProgramIr& program_;
  const Database& model_;
  const ExplainOptions& options_;
  std::unordered_set<PathKey, PathKeyHash> path_;
};

void FormatNode(const TermFactory& factory, const Catalog& catalog,
                const Derivation& node, size_t indent, std::string* out) {
  StrAppend(*out, std::string(indent * 2, ' '),
            FormatFact(factory, catalog, node.pred, node.fact));
  if (node.rule_index >= 0) {
    StrAppend(*out, "   [rule ", node.rule_index + 1, "]");
  } else if (!catalog.info(node.pred).has_rules) {
    StrAppend(*out, "   [edb]");
  }
  StrAppend(*out, '\n');
  for (const std::string& note : node.notes) {
    StrAppend(*out, std::string(indent * 2 + 2, ' '), "(", note, ")\n");
  }
  for (const auto& premise : node.premises) {
    FormatNode(factory, catalog, *premise, indent + 1, out);
  }
}

}  // namespace

StatusOr<std::unique_ptr<Derivation>> Explain(TermFactory& factory,
                                              const Catalog& catalog,
                                              const ProgramIr& program,
                                              const Database& model, PredId pred,
                                              const Tuple& fact,
                                              const ExplainOptions& options) {
  Explainer explainer(factory, catalog, program, model, options);
  return explainer.Run(pred, fact);
}

std::string FormatDerivation(const TermFactory& factory, const Catalog& catalog,
                             const Derivation& derivation) {
  std::string out;
  FormatNode(factory, catalog, derivation, 0, &out);
  return out;
}

}  // namespace ldl
