// Why-provenance over the materialized model: for a fact in the standard
// model, reconstruct a derivation tree (which rule fired, under which
// bindings, supported by which body facts). Negated literals are justified
// by absence; grouping rules by the set of body solutions that contributed
// the grouped elements.
//
// Explanation works against the *computed* model, so it never re-runs the
// fixpoint; it searches for one witness rule instance per fact (facts in
// the EDB are leaves). Cycles cannot occur on a true derivation of minimal
// depth, but the searcher guards against them with a path set anyway.
#ifndef LDL1_SEMANTICS_EXPLAIN_H_
#define LDL1_SEMANTICS_EXPLAIN_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "eval/engine.h"

namespace ldl {

struct Derivation {
  PredId pred = kInvalidPred;
  Tuple fact;
  // -1 for EDB leaves; otherwise the index of the witnessing rule in the
  // program.
  int rule_index = -1;
  // Supporting facts (positive body literals); empty for leaves.
  std::vector<std::unique_ptr<Derivation>> premises;
  // Human-readable notes for non-fact justifications ("not a(x, _)",
  // "grouped 3 elements").
  std::vector<std::string> notes;
};

struct ExplainOptions {
  // Maximum derivation depth before truncating with a "..." note.
  size_t max_depth = 32;
};

// Finds a derivation for `fact` of `pred` in `model` under `program`.
// Returns kNotFound if the fact is not in the model or no rule witnesses it.
StatusOr<std::unique_ptr<Derivation>> Explain(TermFactory& factory,
                                              const Catalog& catalog,
                                              const ProgramIr& program,
                                              const Database& model, PredId pred,
                                              const Tuple& fact,
                                              const ExplainOptions& options = {});

// Renders the tree with indentation:
//   anc(a, c)                        [rule 2]
//     parent(a, b)                   [edb]
//     anc(b, c)                      [rule 1]
//       parent(b, c)                 [edb]
std::string FormatDerivation(const TermFactory& factory, const Catalog& catalog,
                             const Derivation& derivation);

}  // namespace ldl

#endif  // LDL1_SEMANTICS_EXPLAIN_H_
