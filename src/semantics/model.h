// Declarative model checking for LDL1 interpretations (paper §2.2-§2.4).
//
// The evaluation engine *computes* the standard model; this module *checks*
// the model-theoretic definitions directly, so the paper's semantic
// examples (interpretations that are or are not models, the failure of
// model intersection, non-standard minimality) are executable:
//
//   * IsModel: does an interpretation (a Database of U-facts) satisfy every
//     rule, with the §2.2 truth definition for grouping heads?
//   * FactDominated: the §2.4 domination order e <= e' on U-facts
//     (set-valued columns compared by subset, others by equality);
//   * FactSetDominated: A <= B iff a preserving function maps a subset of B
//     onto A, which reduces to: every fact of A is dominated by some fact
//     of B with the same predicate;
//   * DifferenceDominated(M1, M2): the minimality comparison
//     (M1 - M2) <= (M2 - M1). A model M is §2.4-minimal iff no model M'
//     different from M has DifferenceDominated(M', M).
#ifndef LDL1_SEMANTICS_MODEL_H_
#define LDL1_SEMANTICS_MODEL_H_

#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "eval/engine.h"

namespace ldl {

// A labeled fact: predicate plus argument tuple.
using LabeledFact = std::pair<PredId, Tuple>;

// True iff `interpretation` satisfies every rule of `program` (§2.2).
// Built-in predicates have their fixed interpretation; a negated literal is
// satisfied by fact absence. For a grouping rule, the §2.2 semantics
// requires, per partition key, the fact carrying *exactly* the grouped set.
// On failure (when the result is false) *counterexample names a violated
// rule instance.
StatusOr<bool> IsModel(TermFactory& factory, const Catalog& catalog,
                       const ProgramIr& program, const Database& interpretation,
                       std::string* counterexample = nullptr);

// e <= e' (§2.4): same arity, set-valued positions compared by subset,
// everything else by equality.
bool FactDominated(TermFactory& factory, const Tuple& e, const Tuple& e_prime);

// The §2.4 *remark*'s more elaborate domination on U-elements, applied
// recursively:
//   (i)   e <= e;
//   (ii)  f(s1..sn) <= f(s1'..sn') if si <= si' for all i;
//   (iii) for sets c, c': c <= c' if every a in c is dominated by some
//         b in c'.
// The paper claims all its results hold under this order as well.
bool ElementDominated(TermFactory& factory, const Term* e, const Term* e_prime);

// FactDominated under the elaborate order: every column compared by
// ElementDominated.
bool FactDeepDominated(TermFactory& factory, const Tuple& e, const Tuple& e_prime);

// A <= B via a preserving function (§2.4): every fact of A is dominated by
// some same-predicate fact of B.
bool FactSetDominated(TermFactory& factory,
                      const std::vector<LabeledFact>& a,
                      const std::vector<LabeledFact>& b);

// All facts of m1 that are not facts of m2, over `preds` (pass the union of
// interesting predicates; built-ins are never stored).
std::vector<LabeledFact> ModelDifference(const Database& m1, const Database& m2,
                                         const std::vector<PredId>& preds);

// (M1 - M2) <= (M2 - M1): M1 improves on M2 in the §2.4 order.
bool DifferenceDominated(TermFactory& factory, const Database& m1,
                         const Database& m2, const std::vector<PredId>& preds);

}  // namespace ldl

#endif  // LDL1_SEMANTICS_MODEL_H_
