#include "ldl/ldl.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "base/str_util.h"
#include "eval/bindings.h"
#include "parser/parser.h"

namespace ldl {

namespace {

// The one authoritative strategy-name table: ToString, ParseQueryStrategy
// and QueryStrategyNames all derive from it, so a new strategy added here
// shows up in every help text and error message.
struct StrategyName {
  QueryStrategy strategy;
  const char* canonical;
  const char* alias = nullptr;  // accepted by Parse, never printed
};
constexpr StrategyName kStrategyNames[] = {
    {QueryStrategy::kModel, "model"},
    {QueryStrategy::kMagic, "magic"},
    {QueryStrategy::kMagicSupplementary, "magic-sup", "magic-supplementary"},
    {QueryStrategy::kMagicSupplementary, "magic-sup", "sup"},
    {QueryStrategy::kTopDown, "topdown", "top-down"},
};

}  // namespace

const char* ToString(QueryStrategy strategy) {
  for (const StrategyName& entry : kStrategyNames) {
    if (entry.strategy == strategy) return entry.canonical;
  }
  return "?";
}

const char* QueryStrategyNames() { return "model, magic, magic-sup, topdown"; }

StatusOr<QueryStrategy> ParseQueryStrategy(std::string_view name) {
  for (const StrategyName& entry : kStrategyNames) {
    if (name == entry.canonical ||
        (entry.alias != nullptr && name == entry.alias)) {
      return entry.strategy;
    }
  }
  return InvalidArgumentError(StrCat("unknown query strategy '", name,
                                     "' (expected one of: ",
                                     QueryStrategyNames(), ")"));
}

std::vector<std::string> FormatFacts(const Session& session, PredId pred,
                                     const std::vector<Tuple>& tuples) {
  std::vector<std::string> out;
  out.reserve(tuples.size());
  for (const Tuple& tuple : tuples) out.push_back(session.FormatFact(pred, tuple));
  std::sort(out.begin(), out.end());
  return out;
}

Session::Session(PlanCache* shared_plans)
    : factory_(&interner_),
      catalog_(&interner_),
      engine_(&factory_, &catalog_, shared_plans),
      db_(std::make_unique<Database>(&catalog_)) {}

Status Session::Load(std::string_view source) {
  LDL_ASSIGN_OR_RETURN(ProgramAst parsed, ParseProgram(source, &interner_));
  for (RuleAst& rule : parsed.rules) ast_.rules.push_back(std::move(rule));
  for (QueryAst& query : parsed.queries) ast_.queries.push_back(std::move(query));
  analyzed_ = false;
  evaluated_ = false;
  ClearPendingDelta();
  return Status::OK();
}

Status Session::AddFacts(std::string_view source) {
  LDL_ASSIGN_OR_RETURN(ProgramAst parsed, ParseProgram(source, &interner_));

  // Anything beyond ground facts -- or any complication below (facts of
  // derived predicates, LDL1.5 text expanding into rules, lowering
  // trouble) -- takes the conservative Load() path: accumulate the parsed
  // text and invalidate the analysis.
  auto fallback = [&]() {
    for (RuleAst& rule : parsed.rules) ast_.rules.push_back(std::move(rule));
    for (QueryAst& query : parsed.queries) {
      ast_.queries.push_back(std::move(query));
    }
    analyzed_ = false;
    evaluated_ = false;
    ClearPendingDelta();
    return Status::OK();
  };

  bool facts_only = parsed.queries.empty();
  for (const RuleAst& rule : parsed.rules) {
    if (!rule.is_fact()) {
      facts_only = false;
      break;
    }
  }
  if (!facts_only) return fallback();
  if (!analyzed_) {
    // No analysis to preserve; accumulate like Load() (which already left
    // the session un-analyzed).
    for (RuleAst& rule : parsed.rules) ast_.rules.push_back(std::move(rule));
    return Status::OK();
  }

  // Mirror Analyze() for just these clauses: expand, check they are still
  // plain facts, and lower them against the live catalog.
  ProgramAst fact_ast;
  fact_ast.rules = parsed.rules;
  StatusOr<ProgramAst> expanded =
      ExpandLdl15(fact_ast, &interner_, ldl15_options_);
  if (!expanded.ok()) return fallback();  // the error resurfaces in Analyze()
  struct LoweredFact {
    PredId pred;
    Tuple tuple;
    bool outside_universe;
  };
  std::vector<LoweredFact> lowered;
  lowered.reserve(expanded->rules.size());
  for (const RuleAst& rule : expanded->rules) {
    if (!rule.is_fact()) return fallback();
    // Facts of predicates with proper rules stay in the program (they take
    // part in stratification and magic rewriting) -- full path. LowerRule
    // leaves has_rules untouched for facts, so this incremental path never
    // perturbs the flag concurrent snapshot readers consult.
    PredId existing = catalog_.Find(
        rule.head.predicate, static_cast<uint32_t>(rule.head.args.size()));
    if (existing != kInvalidPred && catalog_.info(existing).has_rules) {
      return fallback();
    }
    StatusOr<RuleIr> ir = LowerRule(factory_, catalog_, rule, /*source_index=*/-1);
    if (!ir.ok()) return fallback();
    InstantiationResult inst = InstantiateArgs(factory_, ir->head_args, Subst());
    if (inst.unbound) return fallback();  // "fact with variables", per Analyze
    lowered.push_back(
        {ir->head_pred, std::move(inst.tuple), inst.outside_universe});
  }

  // Commit: the analysis stays valid. Register the EDB delta; if a model
  // is live, append the rows directly and mark genuinely new facts as the
  // pending delta for the next (incremental) Evaluate().
  for (RuleAst& rule : parsed.rules) ast_.rules.push_back(std::move(rule));
  for (LoweredFact& fact : lowered) {
    if (std::find(edb_preds_.begin(), edb_preds_.end(), fact.pred) ==
        edb_preds_.end()) {
      edb_preds_.push_back(fact.pred);
    }
    if (fact.outside_universe) continue;
    AppendEdbFact(fact.pred, fact.tuple);
    if (evaluated_) {
      Relation& rel = db_->relation(fact.pred);
      const size_t rows_before = rel.row_count();
      if (db_->AddFact(fact.pred, fact.tuple)) {
        if (rel.row_count() == rows_before) {
          // The insert revived a tombstoned row: an earlier incremental
          // deletion already retracted its consequences, and the insert
          // delta machinery cannot window a revived row sitting below the
          // watermark. Conservative fallback: drop the model and let the
          // next Evaluate() rebuild from scratch.
          InvalidateModel();
        } else {
          MarkChanged(fact.pred);
        }
      } else if (!pending_removed_.empty()) {
        // The fact is already a live model row: if its deletion is still
        // pending from an earlier RemoveFacts, re-adding it cancels the
        // deletion.
        std::pair<PredId, Tuple> key{fact.pred, fact.tuple};
        auto it =
            std::find(pending_removed_.begin(), pending_removed_.end(), key);
        if (it != pending_removed_.end()) pending_removed_.erase(it);
      }
    }
  }
  return Status::OK();
}

Status Session::RemoveFacts(std::string_view source) {
  LDL_ASSIGN_OR_RETURN(ProgramAst parsed, ParseProgram(source, &interner_));
  if (!parsed.queries.empty()) {
    return InvalidArgumentError("RemoveFacts accepts only facts");
  }
  for (const RuleAst& rule : parsed.rules) {
    if (!rule.is_fact()) {
      return InvalidArgumentError("RemoveFacts accepts only facts");
    }
  }
  LDL_RETURN_IF_ERROR(EnsureAnalyzed());
  ProgramAst fact_ast;
  fact_ast.rules = std::move(parsed.rules);
  LDL_ASSIGN_OR_RETURN(ProgramAst expanded,
                       ExpandLdl15(fact_ast, &interner_, ldl15_options_));
  // Pass 1: validate and lower the whole batch before touching any session
  // state, so an error anywhere in the batch (derived predicate,
  // non-ground fact, non-fact clause) leaves the session observably
  // unchanged -- RemoveFacts is all-or-nothing.
  std::vector<std::pair<PredId, Tuple>> batch;
  batch.reserve(expanded.rules.size());
  for (const RuleAst& rule : expanded.rules) {
    if (!rule.is_fact()) {
      return InvalidArgumentError("RemoveFacts accepts only facts");
    }
    PredId existing = catalog_.Find(
        rule.head.predicate, static_cast<uint32_t>(rule.head.args.size()));
    if (existing == kInvalidPred) continue;  // unknown predicate: no-op
    if (catalog_.info(existing).has_rules) {
      return InvalidArgumentError(
          "RemoveFacts cannot remove facts of a derived predicate");
    }
    LDL_ASSIGN_OR_RETURN(RuleIr ir,
                         LowerRule(factory_, catalog_, rule, /*source_index=*/-1));
    InstantiationResult inst = InstantiateArgs(factory_, ir.head_args, Subst());
    if (inst.unbound) {
      return InvalidArgumentError("RemoveFacts needs ground facts");
    }
    if (inst.outside_universe) continue;
    batch.emplace_back(ir.head_pred, std::move(inst.tuple));
  }
  // Pass 2: apply. Each removal cancels one EDB occurrence; the fact only
  // becomes a pending deletion for the live model when its *last*
  // occurrence goes (multiset semantics).
  for (std::pair<PredId, Tuple>& fact : batch) {
    if (!EraseEdbFact(fact)) continue;  // absent: no-op
    // Remember the cancellation: Analyze() rebuilds edb_facts_ from the
    // AST, which still carries the removed fact's clause.
    ++removed_edb_counts_[fact];
    if (evaluated_ && edb_index_.find(fact) == edb_index_.end()) {
      pending_removed_.push_back(std::move(fact));
      pending_delta_ = true;
    }
  }
  return Status::OK();
}

void Session::InvalidateModel() {
  evaluated_ = false;
  evaluated_with_profile_ = false;
  ClearPendingDelta();
}

Status Session::LoadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return NotFoundError(StrCat("cannot open ", path));
  std::ostringstream buffer;
  buffer << file.rdbuf();
  Status status = Load(buffer.str());
  if (!status.ok()) {
    return Status(status.code(), StrCat(path, ": ", status.message()));
  }
  return status;
}

Status Session::Analyze() {
  LDL_ASSIGN_OR_RETURN(expanded_ast_, ExpandLdl15(ast_, &interner_, ldl15_options_));
  LDL_ASSIGN_OR_RETURN(ProgramIr all, LowerProgram(factory_, catalog_, expanded_ast_));
  LDL_RETURN_IF_ERROR(CheckProgramWellformed(catalog_, all, wellformed_options_));

  // Split ground facts of extensional predicates out of the rule set: they
  // seed the database directly. Facts of predicates that also have proper
  // rules stay in the program (they take part in stratification and magic
  // rewriting).
  std::vector<bool> has_proper_rule(catalog_.size(), false);
  for (const RuleIr& rule : all.rules) {
    if (!rule.is_fact()) has_proper_rule[rule.head_pred] = true;
  }
  program_.rules.clear();
  edb_facts_.clear();
  edb_preds_.clear();
  std::vector<bool> edb_seen(catalog_.size(), false);
  for (RuleIr& rule : all.rules) {
    if (rule.is_fact() && !has_proper_rule[rule.head_pred]) {
      InstantiationResult inst =
          InstantiateArgs(factory_, rule.head_args, Subst());
      if (inst.unbound) {
        return NotWellFormedError("fact with variables");  // caught earlier
      }
      if (!inst.outside_universe) {
        edb_facts_.emplace_back(rule.head_pred, std::move(inst.tuple));
      }
      if (!edb_seen[rule.head_pred]) {
        edb_seen[rule.head_pred] = true;
        edb_preds_.push_back(rule.head_pred);
      }
      // Extensional predicates carry no rules.
      catalog_.mutable_info(rule.head_pred).has_rules = false;
    } else {
      program_.rules.push_back(std::move(rule));
    }
  }

  // Apply accumulated RemoveFacts() cancellations: the AST still carries
  // the removed facts' clauses, so each recorded removal cancels one
  // occurrence of the rebuilt fact.
  RebuildEdbIndex();
  for (const auto& [removed, count] : removed_edb_counts_) {
    for (size_t i = 0; i < count && EraseEdbFact(removed); ++i) {
    }
  }

  LDL_ASSIGN_OR_RETURN(stratification_, Stratify(catalog_, program_));
  analyzed_ = true;
  evaluated_ = false;
  ++analysis_epoch_;
  ClearPendingDelta();
  return Status::OK();
}

Status Session::EnsureAnalyzed() {
  if (analyzed_) return Status::OK();
  return Analyze();
}

bool Session::SameEvalConfig(const EvalOptions& options) const {
  const EvalOptions& last = last_eval_options_;
  return options.mode == last.mode && options.max_rounds == last.max_rounds &&
         options.max_facts == last.max_facts &&
         options.use_compiled_plans == last.use_compiled_plans &&
         options.cost_based == last.cost_based &&
         options.replan_cost_ratio == last.replan_cost_ratio &&
         options.num_threads == last.num_threads &&
         options.batch == last.batch &&
         options.batch_block_rows == last.batch_block_rows &&
         options.builtin_limits.max_union_enumeration ==
             last.builtin_limits.max_union_enumeration &&
         options.builtin_limits.max_subset_enumeration ==
             last.builtin_limits.max_subset_enumeration;
}

void Session::RecordWatermarks() {
  eval_watermarks_.resize(catalog_.size());
  for (PredId p = 0; p < catalog_.size(); ++p) {
    eval_watermarks_[p] = db_->relation(p).row_count();
  }
}

void Session::MarkChanged(PredId pred) {
  if (pending_changed_.size() < catalog_.size()) {
    pending_changed_.resize(catalog_.size(), false);
  }
  pending_changed_[pred] = true;
  pending_delta_ = true;
}

void Session::ClearPendingDelta() {
  pending_changed_.assign(pending_changed_.size(), false);
  pending_removed_.clear();
  pending_delta_ = false;
}

void Session::AppendEdbFact(PredId pred, const Tuple& tuple) {
  edb_index_[{pred, tuple}].push_back(edb_facts_.size());
  edb_facts_.emplace_back(pred, tuple);
}

bool Session::EraseEdbFact(const std::pair<PredId, Tuple>& fact) {
  auto it = edb_index_.find(fact);
  if (it == edb_index_.end()) return false;
  size_t pos = it->second.back();
  it->second.pop_back();
  if (it->second.empty()) edb_index_.erase(it);
  size_t last = edb_facts_.size() - 1;
  if (pos != last) {
    // Swap-and-pop: the final fact moves into the vacated slot; retarget
    // its index entry from `last` to `pos`.
    edb_facts_[pos] = std::move(edb_facts_[last]);
    std::vector<size_t>& positions = edb_index_[edb_facts_[pos]];
    *std::find(positions.begin(), positions.end(), last) = pos;
  }
  edb_facts_.pop_back();
  return true;
}

void Session::RebuildEdbIndex() {
  edb_index_.clear();
  for (size_t i = 0; i < edb_facts_.size(); ++i) {
    edb_index_[edb_facts_[i]].push_back(i);
  }
}

Status Session::Evaluate(const EvalOptions& options) {
  LDL_RETURN_IF_ERROR(EnsureAnalyzed());
  if (evaluated_ && (!options.profile || evaluated_with_profile_) &&
      SameEvalConfig(options)) {
    if (!pending_delta_) {
      // Nothing changed since the model was materialized under this same
      // configuration: the model, stats and profile are all current.
      ++eval_cache_hits_;
      return Status::OK();
    }
  }
  if (evaluated_ && pending_delta_) {
    return pending_removed_.empty() ? EvaluateIncremental(options)
                                    : EvaluateIncrementalDelete(options);
  }

  db_ = std::make_unique<Database>(&catalog_);
  for (const auto& [pred, tuple] : edb_facts_) db_->AddFact(pred, tuple);
  last_eval_stats_ = EvalStats();
  last_eval_profile_.Clear();
  LDL_RETURN_IF_ERROR(engine_.EvaluateProgram(
      program_, stratification_, db_.get(), options, &last_eval_stats_,
      options.profile ? &last_eval_profile_ : nullptr));
  evaluated_ = true;
  evaluated_with_profile_ = options.profile;
  last_eval_options_ = options;
  ++full_evals_;
  RecordWatermarks();
  ClearPendingDelta();
  return Status::OK();
}

Status Session::EvaluateIncremental(const EvalOptions& options) {
  last_eval_stats_ = EvalStats();
  last_eval_profile_.Clear();
  LDL_RETURN_IF_ERROR(engine_.EvaluateIncremental(
      program_, stratification_, db_.get(), eval_watermarks_, pending_changed_,
      options, &last_eval_stats_,
      options.profile ? &last_eval_profile_ : nullptr));
  evaluated_with_profile_ = options.profile;
  last_eval_options_ = options;
  ++incremental_evals_;
  RecordWatermarks();
  ClearPendingDelta();
  return Status::OK();
}

Status Session::EvaluateIncrementalDelete(const EvalOptions& options) {
  last_eval_stats_ = EvalStats();
  last_eval_profile_.Clear();
  Status status = engine_.EvaluateIncrementalDelete(
      program_, stratification_, db_.get(), eval_watermarks_, pending_changed_,
      pending_removed_, options, &last_eval_stats_,
      options.profile ? &last_eval_profile_ : nullptr);
  if (!status.ok()) {
    // A failure mid-maintenance can leave the database half-updated; drop
    // the model so the next evaluation rebuilds from scratch.
    InvalidateModel();
    return status;
  }
  evaluated_with_profile_ = options.profile;
  last_eval_options_ = options;
  ++incremental_evals_;
  RecordWatermarks();
  ClearPendingDelta();
  return Status::OK();
}

Status Session::EvaluateInto(const Stratification& stratification, Database* db,
                             const EvalOptions& options) {
  LDL_RETURN_IF_ERROR(EnsureAnalyzed());
  for (const auto& [pred, tuple] : edb_facts_) db->AddFact(pred, tuple);
  return engine_.EvaluateProgram(program_, stratification, db, options);
}

Status Session::EnsureEvaluated(const EvalOptions& options) {
  // A cached model evaluated without profiling can't serve a profiled
  // query; re-run the (idempotent) evaluation to collect the profile. A
  // pending EDB delta routes through Evaluate() for incremental
  // maintenance.
  if (evaluated_ && !pending_delta_ &&
      (!options.profile || evaluated_with_profile_)) {
    return Status::OK();
  }
  return Evaluate(options);
}

StatusOr<LiteralIr> Session::ParseGoal(std::string_view goal_text) {
  LDL_ASSIGN_OR_RETURN(LiteralAst goal_ast, ParseLiteralText(goal_text, &interner_));
  if (goal_ast.negated || goal_ast.builtin != BuiltinKind::kNone) {
    return InvalidArgumentError("queries must be positive relational literals");
  }
  return LowerLiteral(factory_, catalog_, goal_ast);
}

StatusOr<QueryResult> QueryViaTopDown(TermFactory* factory, Catalog* catalog,
                                      const ProgramIr& program,
                                      const Stratification& stratification,
                                      const std::vector<PredId>& edb_preds,
                                      const LiteralIr& goal,
                                      const QueryOptions& options,
                                      const EdbSeeder& seed_edb) {
  // Memoized top-down evaluation against a fresh EDB.
  QueryResult result;
  Database edb(catalog);
  seed_edb(&edb, edb_preds);
  TopDownOptions topdown_options;
  topdown_options.builtin_limits = options.eval.builtin_limits;
  TopDownEngine topdown(factory, catalog, &program, &stratification, &edb,
                        topdown_options);
  if (options.eval.profile) {
    result.profile.ReserveRules(program.rules.size());
    topdown.set_profile(&result.profile);
  }
  uint64_t topdown_wall = 0;
  ScopedWallTimer timer(options.eval.profile ? &topdown_wall : nullptr);
  LDL_ASSIGN_OR_RETURN(result.tuples, topdown.Query(goal));
  timer.Stop();
  result.stats.facts_derived = topdown.stats().answers;
  result.stats.rule_firings = topdown.stats().expansions;
  result.stats.iterations = topdown.stats().restarts;
  if (options.eval.profile) {
    result.profile.add_total_wall_ns(topdown_wall);
    TopDownProfile& rollup = result.profile.topdown();
    rollup.used = true;
    rollup.wall_ns = topdown_wall;
    rollup.calls = topdown.stats().calls;
    rollup.expansions = topdown.stats().expansions;
    rollup.answers = topdown.stats().answers;
    rollup.restarts = topdown.stats().restarts;
    rollup.tables = topdown.table_count();
  }
  return result;
}

StatusOr<QueryResult> QueryViaMagic(Engine* engine, const ProgramIr& program,
                                    const LiteralIr& goal,
                                    const QueryOptions& options,
                                    const EdbSeeder& seed_edb,
                                    std::mutex* rewrite_mu) {
  // Rewrite for this goal and evaluate in a scratch database seeded with
  // the EDB. The rewrite registers adorned/magic predicates in the shared
  // catalog, so concurrent callers serialize it under `rewrite_mu`;
  // evaluation below runs outside the lock.
  QueryResult result;
  MagicOptions magic_options;
  magic_options.supplementary =
      options.strategy == QueryStrategy::kMagicSupplementary;
  StatusOr<MagicProgram> magic = [&] {
    std::unique_lock<std::mutex> lock;
    if (rewrite_mu != nullptr) lock = std::unique_lock<std::mutex>(*rewrite_mu);
    return MagicRewrite(program, engine->catalog(), goal, magic_options);
  }();
  LDL_RETURN_IF_ERROR(magic.status());
  Database magic_db(engine->catalog());
  // Only EDB predicates the rewritten program consults.
  seed_edb(&magic_db, magic->edb_preds);
  LDL_RETURN_IF_ERROR(engine->EvaluateSaturating(magic->rules, &magic_db,
                                                 options.eval, &result.stats,
                                                 &result.profile));
  LiteralIr adorned_goal = goal;
  adorned_goal.pred = magic->answer_pred;
  LDL_ASSIGN_OR_RETURN(result.tuples, engine->Query(adorned_goal, magic_db));
  return result;
}

StatusOr<PreparedQuery> Session::Prepare(std::string_view goal_text) {
  LDL_RETURN_IF_ERROR(EnsureAnalyzed());
  LDL_ASSIGN_OR_RETURN(LiteralIr goal, ParseGoal(goal_text));
  return PreparedQuery(goal_text, std::move(goal));
}

StatusOr<QueryResult> Session::Query(std::string_view goal_text,
                                     const QueryOptions& options) {
  LDL_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(goal_text));
  return Query(prepared, options);
}

StatusOr<QueryResult> Session::Query(const PreparedQuery& prepared,
                                     const QueryOptions& options) {
  LDL_RETURN_IF_ERROR(EnsureAnalyzed());
  if (!prepared.valid()) {
    return InvalidArgumentError("query was not prepared");
  }
  const LiteralIr& goal = prepared.goal();
  // The session is single-threaded, so scratch evaluations can seed
  // straight from the edb_facts_ list.
  EdbSeeder seeder = [this](Database* scratch,
                            const std::vector<PredId>& preds) {
    for (const auto& [pred, tuple] : edb_facts_) {
      if (std::find(preds.begin(), preds.end(), pred) != preds.end()) {
        scratch->AddFact(pred, tuple);
      }
    }
  };

  const bool goal_has_rules = catalog_.info(goal.pred).has_rules;
  if (options.strategy == QueryStrategy::kTopDown && goal_has_rules) {
    return QueryViaTopDown(&factory_, &catalog_, program_, stratification_,
                           edb_preds_, goal, options, seeder);
  }
  const bool magic_strategy =
      options.strategy == QueryStrategy::kMagic ||
      options.strategy == QueryStrategy::kMagicSupplementary;
  if (!magic_strategy || !goal_has_rules) {
    QueryResult result;
    LDL_RETURN_IF_ERROR(EnsureEvaluated(options.eval));
    LDL_ASSIGN_OR_RETURN(result.tuples, engine_.Query(goal, *db_));
    result.stats = last_eval_stats_;
    if (options.eval.profile) result.profile = last_eval_profile_;
    return result;
  }
  return QueryViaMagic(&engine_, program_, goal, options, seeder);
}

StatusOr<std::string> Session::Explain(std::string_view fact_text,
                                       const ExplainOptions& options) {
  LDL_RETURN_IF_ERROR(EnsureEvaluated({}));
  LDL_ASSIGN_OR_RETURN(LiteralIr goal, ParseGoal(fact_text));
  InstantiationResult inst = InstantiateArgs(factory_, goal.args, Subst());
  if (inst.unbound) {
    return InvalidArgumentError("Explain needs a ground fact, not a pattern");
  }
  if (inst.outside_universe) {
    return InvalidArgumentError("fact lies outside the LDL1 universe");
  }
  LDL_ASSIGN_OR_RETURN(std::unique_ptr<Derivation> derivation,
                       ldl::Explain(factory_, catalog_, program_, *db_,
                                    goal.pred, inst.tuple, options));
  return FormatDerivation(factory_, catalog_, *derivation);
}

StatusOr<std::vector<TerminationWarning>> Session::TerminationWarnings() {
  LDL_RETURN_IF_ERROR(EnsureAnalyzed());
  return AnalyzeTermination(catalog_, program_);
}

std::string Session::FormatFact(PredId pred, const Tuple& tuple) const {
  return ldl::FormatFact(factory_, catalog_, pred, tuple);
}

std::string Session::FormatTuple(const Tuple& tuple) const {
  return ldl::FormatTuple(factory_, tuple);
}

}  // namespace ldl
