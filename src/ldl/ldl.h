// ldl::Session -- the public entry point of the library.
//
// Typical use:
//
//   ldl::Session session;
//   LDL_RETURN_IF_ERROR(session.Load(R"(
//     parent(adam, bob).  parent(bob, carl).
//     ancestor(X, Y) :- parent(X, Y).
//     ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
//   )"));
//   auto answers = session.Query("ancestor(adam, X)");
//
// Load() accepts full LDL1.5 (sets, grouping, negation, complex head/body
// terms); Analyze() macro-expands to LDL1, lowers, checks well-formedness
// and admissibility, and stratifies. Evaluate() materializes the standard
// minimal model bottom-up (Theorem 1). Query() answers a goal using the
// selected QueryStrategy: against the materialized model, via the
// Generalized Magic Sets rewriting (§6) in a fresh database, or through the
// memoized top-down baseline.
#ifndef LDL1_LDL_LDL_H_
#define LDL1_LDL_LDL_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ast/ast.h"
#include "base/status.h"
#include "eval/engine.h"
#include "program/lower.h"
#include "program/stratify.h"
#include "program/termination.h"
#include "program/wellformed.h"
#include "rewrite/ldl15.h"
#include "eval/topdown.h"
#include "rewrite/magic.h"
#include "semantics/explain.h"

namespace ldl {

// How Session::Query answers a goal.
enum class QueryStrategy {
  // Match the goal against the materialized minimal model (evaluating it
  // bottom-up first if needed).
  kModel,
  // Compile the Generalized Magic Sets rewriting (§6) for the goal's
  // binding pattern and evaluate it in a scratch database seeded with the
  // EDB.
  kMagic,
  // kMagic, with supplementary predicates (shared prefix joins).
  kMagicSupplementary,
  // The memoized top-down engine (QSQ-style) -- the baseline §6's magic
  // sets mimic.
  kTopDown,
};

// "model", "magic", "magic-sup", "topdown".
const char* ToString(QueryStrategy strategy);
// Inverse of ToString (a few aliases are also accepted); kInvalidArgument
// naming the valid strategies on unknown names.
StatusOr<QueryStrategy> ParseQueryStrategy(std::string_view name);
// The canonical names as one comma-separated list, for help text and error
// messages: "model, magic, magic-sup, topdown".
const char* QueryStrategyNames();

struct QueryOptions {
  QueryStrategy strategy = QueryStrategy::kModel;
  EvalOptions eval;
};

struct QueryResult {
  std::vector<Tuple> tuples;
  // Stats of the evaluation that answered the query (the magic/top-down
  // run under those strategies, otherwise the last full Evaluate()).
  EvalStats stats;
  // Per-rule / per-stratum execution profile of that same evaluation.
  // Populated only when QueryOptions::eval.profile is set (under kModel the
  // materializing Evaluate() must itself have run with profiling on).
  EvalProfile profile;
};

class Service;

// A goal parsed, checked and lowered once, queryable many times. Hot goals
// skip the per-call reparse; ldl::Service additionally requires prepared
// goals on its concurrent read path so querying never mutates shared parser
// state. A PreparedQuery stays valid for the lifetime of the Session or
// Service that prepared it -- PredIds and interned terms survive later
// Load()/Analyze() rounds -- though answers always reflect the model it is
// asked against, not the one it was prepared under.
class PreparedQuery {
 public:
  PreparedQuery() = default;

  // The goal text this query was prepared from.
  const std::string& text() const { return text_; }
  const LiteralIr& goal() const { return goal_; }
  bool valid() const { return goal_.pred != kInvalidPred; }

 private:
  friend class Session;
  friend class Service;
  PreparedQuery(std::string_view text, LiteralIr goal)
      : text_(text), goal_(std::move(goal)) {}

  std::string text_;
  LiteralIr goal_ = {};
};

// Seeds a scratch evaluation database with the EDB facts of exactly the
// predicates in `preds`. Both shared goal executors below take one of
// these: Session feeds from its edb_facts_ list, ModelSnapshot copies from
// its frozen database.
using EdbSeeder =
    std::function<void(Database* scratch, const std::vector<PredId>& preds)>;

// Answers `goal` through the Generalized Magic Sets rewriting (§6) in a
// scratch database seeded via `seed_edb`. The rewrite registers adorned and
// magic predicates in the engine's catalog; callers whose catalog is shared
// across threads pass `rewrite_mu` to serialize that mutation (evaluation
// itself runs outside the lock). Shared by Session::Query and
// ModelSnapshot::Query.
StatusOr<QueryResult> QueryViaMagic(Engine* engine, const ProgramIr& program,
                                    const LiteralIr& goal,
                                    const QueryOptions& options,
                                    const EdbSeeder& seed_edb,
                                    std::mutex* rewrite_mu = nullptr);

// Answers `goal` with the memoized top-down engine over a scratch EDB
// seeded via `seed_edb` (with `edb_preds` as the seeding filter). Shared by
// Session::Query and ModelSnapshot::Query.
StatusOr<QueryResult> QueryViaTopDown(TermFactory* factory, Catalog* catalog,
                                      const ProgramIr& program,
                                      const Stratification& stratification,
                                      const std::vector<PredId>& edb_preds,
                                      const LiteralIr& goal,
                                      const QueryOptions& options,
                                      const EdbSeeder& seed_edb);

// Hash for (pred, tuple) EDB fact keys. Tuples hold interned terms, so
// pair equality is element-wise pointer equality and the hash mixes the
// terms' interned hashes.
struct EdbFactHash {
  size_t operator()(const std::pair<PredId, Tuple>& key) const {
    return static_cast<size_t>(HashCombine(TupleHash()(key.second), key.first));
  }
};

class Session {
 public:
  // With a non-null `shared_plans` the session's engine probes the caller's
  // (internally synchronized) plan cache instead of an engine-private one;
  // ldl::Service uses this to share compiled plans between its writer
  // session and the per-query scratch engines of concurrent readers.
  explicit Session(PlanCache* shared_plans = nullptr);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Parses and accumulates rules, facts and stored queries. May be called
  // repeatedly; invalidates previous analysis.
  Status Load(std::string_view source);

  // Load() for a file on disk (.ldl program text).
  Status LoadFile(const std::string& path);

  // Incremental update entry point: parses `source` and, when it contains
  // only ground facts of extensional predicates and the session is already
  // analyzed, registers them as a pending EDB delta -- the materialized
  // model (if any) stays alive and the next Evaluate()/Query() maintains
  // it via Engine::EvaluateIncremental instead of re-deriving everything.
  // Anything else (rules, stored queries, facts of derived predicates,
  // LDL1.5 text that expands into rules) falls back to Load() semantics
  // and invalidates the analysis. Always safe to call; never changes the
  // final model vs. Load() + full re-evaluation.
  Status AddFacts(std::string_view source);

  // Removes previously loaded ground EDB facts (each removal cancels one
  // occurrence; absent facts are ignored). `source` must contain only
  // facts. The batch is atomic: it is validated in full before any state
  // changes, so an error (stored query, proper rule, derived predicate,
  // non-ground fact) leaves the session observably unchanged. A live
  // materialized model survives deletions -- the facts whose last
  // occurrence was removed become a pending deletion delta and the next
  // Evaluate()/Query() maintains the model incrementally via
  // Engine::EvaluateIncrementalDelete (derivation-count decrements or
  // DRed over-delete/rederive; strata reached through grouping or
  // negation still recompute conservatively).
  Status RemoveFacts(std::string_view source);

  // Drops the materialized model (analysis stays valid); the next
  // Evaluate() rebuilds from scratch. For tests and benchmarks that need
  // to force the full path.
  void InvalidateModel();

  // Expands LDL1.5, lowers, checks well-formedness, stratifies. Idempotent;
  // called implicitly by Evaluate()/Query().
  Status Analyze();

  // Bottom-up stratified evaluation into the session database. With a
  // current model and no pending changes under the same options this is a
  // cheap cache hit; with only pending EDB insertions (AddFacts) it
  // maintains the model incrementally; otherwise it materializes from
  // scratch. last_eval_stats()/last_eval_profile() always describe the run
  // that produced the current model (the incremental one after a delta
  // maintenance pass).
  Status Evaluate(const EvalOptions& options = {});

  // Evaluates the analyzed program under a caller-supplied layering into
  // `db` (seeded with the EDB facts). Used to exercise Theorem 2: any valid
  // layering yields the same standard model.
  Status EvaluateInto(const Stratification& stratification, Database* db,
                      const EvalOptions& options = {});

  // Parses, checks and lowers `goal_text` (e.g. "young(john, S)") into a
  // PreparedQuery that can be executed many times without reparsing.
  // Analyzes on demand.
  StatusOr<PreparedQuery> Prepare(std::string_view goal_text);

  // Answers `goal_text`. Under kModel the session model must be (or will
  // be) materialized via Evaluate(). Equivalent to Prepare() + Query(); hot
  // callers prepare once and reuse.
  StatusOr<QueryResult> Query(std::string_view goal_text,
                              const QueryOptions& options = {});

  // Answers a previously prepared goal, skipping the parse.
  StatusOr<QueryResult> Query(const PreparedQuery& prepared,
                              const QueryOptions& options = {});

  // Why-provenance: a rendered derivation tree for `fact_text` (e.g.
  // "anc(a, c)") against the materialized model. Returns kNotFound when the
  // fact is not in the model.
  StatusOr<std::string> Explain(std::string_view fact_text,
                                const ExplainOptions& options = {});

  // Advisory §7 finiteness warnings for the analyzed program (recursive
  // rules constructing new terms in their heads). Analyzes on demand.
  StatusOr<std::vector<TerminationWarning>> TerminationWarnings();

  // Formats a database fact.
  std::string FormatFact(PredId pred, const Tuple& tuple) const;
  // Formats just the tuple: "(a, {1, 2})".
  std::string FormatTuple(const Tuple& tuple) const;

  // Configuration (set before Analyze()).
  void set_ldl15_options(const Ldl15Options& options) { ldl15_options_ = options; }
  void set_wellformed_options(const WellformedOptions& options) {
    wellformed_options_ = options;
  }

  // Introspection. Const overloads let read-only callers (printers,
  // analyses, tests) take a `const Session&`.
  Interner& interner() { return interner_; }
  const Interner& interner() const { return interner_; }
  TermFactory& factory() { return factory_; }
  const TermFactory& factory() const { return factory_; }
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  Database& database() { return *db_; }
  const Database& database() const { return *db_; }
  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }
  const ProgramIr& program() const { return program_; }
  const ProgramAst& ast() const { return ast_; }
  const ProgramAst& expanded_ast() const { return expanded_ast_; }
  const Stratification& stratification() const { return stratification_; }
  const std::vector<QueryAst>& stored_queries() const { return ast_.queries; }
  const EvalStats& last_eval_stats() const { return last_eval_stats_; }
  // Profile of the last Evaluate(); empty unless it ran with
  // EvalOptions::profile set.
  const EvalProfile& last_eval_profile() const { return last_eval_profile_; }
  bool evaluated() const { return evaluated_; }
  // Extensional predicates discovered by the last Analyze() (plus any
  // AddFacts() since).
  const std::vector<PredId>& edb_preds() const { return edb_preds_; }
  // How the session's Evaluate() calls resolved (for tests and benches):
  // cache hits (model already current), incremental maintenance runs, and
  // full from-scratch materializations.
  size_t eval_cache_hits() const { return eval_cache_hits_; }
  size_t incremental_evals() const { return incremental_evals_; }
  size_t full_evals() const { return full_evals_; }
  // Bumped every time Analyze() rebuilds the program/stratification.
  // ldl::Service uses it to decide whether a new snapshot can share the
  // previous snapshot's analyzed-program state.
  uint64_t analysis_epoch() const { return analysis_epoch_; }

 private:
  Status EnsureAnalyzed();
  Status EnsureEvaluated(const EvalOptions& options);
  StatusOr<LiteralIr> ParseGoal(std::string_view goal_text);
  // Delta-maintains the live model from the pending changed predicates.
  Status EvaluateIncremental(const EvalOptions& options);
  // Delta-maintains the live model from a batch with pending deletions
  // (and possibly insertions too). On engine failure the model is dropped
  // so a half-applied maintenance pass can never be observed.
  Status EvaluateIncrementalDelete(const EvalOptions& options);
  // edb_facts_ mutation helpers that keep edb_index_ consistent.
  void AppendEdbFact(PredId pred, const Tuple& tuple);
  // Erases one occurrence (swap-and-pop; edb_facts_ order is not stable).
  // False when the fact has no occurrence.
  bool EraseEdbFact(const std::pair<PredId, Tuple>& fact);
  void RebuildEdbIndex();
  // Snapshots per-predicate row counts after a successful evaluation (the
  // deltas of the next incremental round start past these).
  void RecordWatermarks();
  // Marks `pred` as carrying new EDB rows since the last evaluation.
  void MarkChanged(PredId pred);
  void ClearPendingDelta();
  // True when `options` matches the configuration of the last evaluation
  // closely enough to reuse its model and stats verbatim.
  bool SameEvalConfig(const EvalOptions& options) const;

  Interner interner_;
  TermFactory factory_;
  Catalog catalog_;
  Engine engine_;

  ProgramAst ast_;           // as loaded (LDL1.5)
  ProgramAst expanded_ast_;  // after ExpandLdl15
  ProgramIr program_;        // non-fact rules
  std::vector<std::pair<PredId, Tuple>> edb_facts_;
  std::vector<PredId> edb_preds_;
  Stratification stratification_;
  std::unique_ptr<Database> db_;

  Ldl15Options ldl15_options_;
  WellformedOptions wellformed_options_;
  EvalStats last_eval_stats_;
  EvalProfile last_eval_profile_;
  bool analyzed_ = false;
  bool evaluated_ = false;
  uint64_t analysis_epoch_ = 0;
  // Whether the cached evaluation collected a profile (EnsureEvaluated
  // re-runs when a profiled query hits an unprofiled cached model).
  bool evaluated_with_profile_ = false;

  // Incremental maintenance state. eval_watermarks_[p] is relation(p)'s
  // row count at the end of the last evaluation; rows appended past it are
  // the pending deltas of the predicates flagged in pending_changed_.
  std::vector<size_t> eval_watermarks_;
  std::vector<bool> pending_changed_;
  bool pending_delta_ = false;
  // Occurrence positions of each distinct fact in edb_facts_ (duplicates
  // share one key). Keeps RemoveFacts and the Analyze() cancellation
  // replay O(1) per fact instead of a list scan.
  std::unordered_map<std::pair<PredId, Tuple>, std::vector<size_t>, EdbFactHash>
      edb_index_;
  // RemoveFacts() cancellations, multiset-correct: how many occurrences of
  // each fact to drop after Analyze() rebuilds edb_facts_ from the AST
  // (which still holds the removed facts' clauses).
  std::unordered_map<std::pair<PredId, Tuple>, size_t, EdbFactHash>
      removed_edb_counts_;
  // Facts whose *last* EDB occurrence was removed while a model was live:
  // the deletion half of the pending delta, consumed by the next
  // EvaluateIncrementalDelete().
  std::vector<std::pair<PredId, Tuple>> pending_removed_;
  // Options of the evaluation that produced the current model (cache key).
  EvalOptions last_eval_options_;
  size_t eval_cache_hits_ = 0;
  size_t incremental_evals_ = 0;
  size_t full_evals_ = 0;
};

// Formats query-result tuples as sorted fact strings, e.g.
// "ancestor(adam, bob)" -- handy for golden tests and examples.
std::vector<std::string> FormatFacts(const Session& session, PredId pred,
                                     const std::vector<Tuple>& tuples);

}  // namespace ldl

#endif  // LDL1_LDL_LDL_H_
