// ldl::Service -- concurrent serving facade over a Session.
//
// A Service multiplexes many concurrent read queries against an immutable,
// refcounted ModelSnapshot while serializing writes through the Session's
// incremental-maintenance path:
//
//   ldl::Service service;
//   LDL_RETURN_IF_ERROR(service.Load("edge(1, 2). path(X, Y) :- ..."));
//   LDL_ASSIGN_OR_RETURN(ldl::PreparedQuery goal, service.Prepare("path(1, X)"));
//   // Any number of threads, concurrently with AddFacts/RemoveFacts:
//   auto result = service.Query(goal);
//
// Concurrency contract:
//   * Load/AddFacts/RemoveFacts are serialized on a writer mutex. Each
//     successful write re-evaluates the model (incrementally when the
//     update is a pure EDB delta) and atomically publishes a fresh
//     snapshot. Failed writes publish nothing; readers keep the last good
//     model.
//   * Query/Prepare run concurrently with each other and with writes.
//     Readers never block writers and writes never block readers: a reader
//     holds whichever snapshot was current when it started and keeps it
//     alive (shared_ptr) even if the writer publishes past it.
//   * kModel queries match directly against the snapshot's frozen database
//     (lock-free: the relation index list publishes atomically). kMagic and
//     kTopDown build per-call scratch databases seeded from the snapshot;
//     the magic rewrite mutates the shared catalog, so rewrites serialize
//     on a catalog mutex (shared with write-side analysis) while the
//     evaluation itself runs outside any lock. Compiled plans are shared
//     across all of this through one internally-synchronized PlanCache.
//
// Every observed answer set therefore equals what a serial Session would
// produce at some published version -- the linearization point is the
// snapshot acquisition.
#ifndef LDL1_LDL_SERVICE_H_
#define LDL1_LDL_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "base/snapshot.h"
#include "ldl/ldl.h"

namespace ldl {

// X-macro over the Service serving counters: X(name, description). Drives
// the ServiceStats struct, FormatServiceStats and the REPL's stats display,
// so a counter added here shows up everywhere.
#define LDL_SERVICE_STATS_FIELDS(X)                                         \
  X(queries_served, "queries answered (all strategies, all snapshots)")     \
  X(prepares, "goals prepared")                                             \
  X(writes_applied, "successful Load/AddFacts/RemoveFacts calls")           \
  X(snapshots_published, "model snapshots published")                       \
  X(analyses_shared, "publications that reused the prior analysis")         \
  X(snapshot_refs, "references on the live snapshot (incl. the service's)")

// A point-in-time copy of the serving counters (Service::stats()).
struct ServiceStats {
#define LDL_SERVICE_STAT_MEMBER(name, description) uint64_t name = 0;
  LDL_SERVICE_STATS_FIELDS(LDL_SERVICE_STAT_MEMBER)
#undef LDL_SERVICE_STAT_MEMBER
};

// "queries_served=12 snapshots_published=3 ..." -- one line, field order as
// declared in LDL_SERVICE_STATS_FIELDS.
std::string FormatServiceStats(const ServiceStats& stats);

// One published, immutable model version. Snapshots are refcounted: a
// reader that acquired one keeps it valid for as long as it holds the
// pointer, across any number of later publications. All members are frozen
// after publication; Query is genuinely const and thread-safe.
class ModelSnapshot {
 public:
  ModelSnapshot(const ModelSnapshot&) = delete;
  ModelSnapshot& operator=(const ModelSnapshot&) = delete;

  // Answers `prepared` against this snapshot's model. Thread-safe: kModel
  // probes the frozen database; kMagic/kTopDown evaluate in per-call
  // scratch databases seeded from it. `stats` of a kModel result are those
  // of the evaluation that built the snapshot.
  StatusOr<QueryResult> Query(const PreparedQuery& prepared,
                              const QueryOptions& options = {}) const;

  // Publication number (1 for the first snapshot the Service published).
  uint64_t version() const { return version_; }
  // The frozen materialized model.
  const Database& database() const { return *db_; }
  size_t total_facts() const { return db_->TotalFacts(); }
  // The service-shared term factory (for formatting answers).
  const TermFactory& factory() const { return *factory_; }

 private:
  friend class Service;

  // Analyzed-program state, shared between consecutive snapshots while the
  // rule set is unchanged (EDB-only deltas republish the model without
  // copying the program).
  struct Analysis {
    ProgramIr program;
    Stratification stratification;
    std::vector<PredId> edb_preds;
    uint64_t epoch = 0;  // Session::analysis_epoch() this was captured at
  };

  ModelSnapshot() = default;

  // Shared thread-safe infrastructure owned by the Service (terms, catalog
  // and compiled plans are append-only across snapshots).
  TermFactory* factory_ = nullptr;
  Catalog* catalog_ = nullptr;
  PlanCache* plans_ = nullptr;
  std::mutex* catalog_mu_ = nullptr;  // serializes magic rewrites vs. analysis

  std::shared_ptr<const Analysis> analysis_;
  std::unique_ptr<Database> db_;  // deep copy, pre-grown, never mutated
  std::vector<char> has_rules_;   // per-pred, captured at publication
  EvalStats eval_stats_;          // of the evaluation that built the model
  uint64_t version_ = 0;
};

class Service {
 public:
  // `eval` configures the write-side evaluations (thread count, profiling,
  // limits); it is fixed at construction so writes need no extra locking
  // around options.
  explicit Service(const EvalOptions& eval = {});

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // --- Write path: serialized, each success publishes a snapshot. ---

  // Loads program text (rules, facts, stored queries), re-evaluates and
  // publishes. Parse/analysis errors leave the previous snapshot serving.
  Status Load(std::string_view source);
  // Adds ground EDB facts; the model is maintained incrementally when
  // possible (Session::AddFacts semantics) and republished.
  Status AddFacts(std::string_view source);
  // Removes ground EDB facts; re-evaluates and republishes.
  Status RemoveFacts(std::string_view source);

  // --- Read path: concurrent, wait-free against writers. ---

  // Parses, checks and lowers `goal_text` once for repeated querying.
  // Thread-safe (interner, term factory and catalog are internally
  // synchronized); may register a new predicate for unseen goals.
  StatusOr<PreparedQuery> Prepare(std::string_view goal_text);

  // Answers `prepared` against the currently published snapshot.
  StatusOr<QueryResult> Query(const PreparedQuery& prepared,
                              const QueryOptions& options = {}) const;
  // Prepare() + Query() for one-off goals.
  StatusOr<QueryResult> Query(std::string_view goal_text,
                              const QueryOptions& options = {});

  // The current snapshot, pinned for the caller's lifetime of the pointer.
  // Never null: the constructor publishes an (empty) version 1.
  std::shared_ptr<const ModelSnapshot> snapshot() const {
    return slot_.Acquire();
  }

  // Point-in-time serving counters.
  ServiceStats stats() const;

 private:
  // Runs `mutate` + re-evaluation on the writer session and publishes the
  // result; everything under write_mu_, the catalog-mutating parts also
  // under catalog_mu_.
  template <typename Fn>
  Status Apply(Fn&& mutate);
  // Builds and publishes a snapshot of the writer's current model. Caller
  // holds write_mu_ (and nothing else).
  void PublishLocked();

  const EvalOptions eval_options_;
  PlanCache plans_;  // internally synchronized; shared by all engines
  mutable std::mutex write_mu_;  // serializes writers
  // Serializes catalog mutation: write-side lowering/analysis and
  // read-side magic rewrites. Never held during evaluation.
  mutable std::mutex catalog_mu_;
  Session writer_;  // guarded by write_mu_
  SnapshotSlot<ModelSnapshot> slot_;

  mutable std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> prepares_{0};
  std::atomic<uint64_t> writes_applied_{0};
  std::atomic<uint64_t> analyses_shared_{0};
};

}  // namespace ldl

#endif  // LDL1_LDL_SERVICE_H_
