#include "ldl/service.h"

#include <sstream>
#include <utility>

#include "base/str_util.h"
#include "parser/parser.h"
#include "program/lower.h"

namespace ldl {

std::string FormatServiceStats(const ServiceStats& stats) {
  std::ostringstream out;
  const char* sep = "";
#define LDL_SERVICE_STAT_FORMAT(name, description) \
  out << sep << #name << "=" << stats.name;        \
  sep = " ";
  LDL_SERVICE_STATS_FIELDS(LDL_SERVICE_STAT_FORMAT)
#undef LDL_SERVICE_STAT_FORMAT
  return out.str();
}

StatusOr<QueryResult> ModelSnapshot::Query(const PreparedQuery& prepared,
                                           const QueryOptions& options) const {
  if (!prepared.valid()) {
    return InvalidArgumentError("query was not prepared");
  }
  const LiteralIr& goal = prepared.goal();
  // Dispatch on the has_rules view captured at publication, not the live
  // catalog: a concurrent Load() must not flip this snapshot's strategy
  // choice mid-flight.
  const bool goal_has_rules =
      goal.pred < has_rules_.size() && has_rules_[goal.pred] != 0;

  // Scratch evaluations seed from the frozen database. FindRelation (not
  // relation()) so predicates registered after publication never trigger
  // growth of the frozen deque.
  EdbSeeder seeder = [this](Database* scratch,
                            const std::vector<PredId>& preds) {
    for (PredId pred : preds) {
      const Relation* relation = db_->FindRelation(pred);
      if (relation == nullptr) continue;
      relation->ForEachRow(0, relation->row_count(),
                           [&](size_t, RowRef row) { scratch->AddFact(pred, row); });
    }
  };

  if (options.strategy == QueryStrategy::kTopDown && goal_has_rules) {
    return QueryViaTopDown(factory_, catalog_, analysis_->program,
                           analysis_->stratification, analysis_->edb_preds,
                           goal, options, seeder);
  }
  const bool magic_strategy =
      options.strategy == QueryStrategy::kMagic ||
      options.strategy == QueryStrategy::kMagicSupplementary;
  if (magic_strategy && goal_has_rules) {
    Engine engine(factory_, catalog_, plans_);
    return QueryViaMagic(&engine, analysis_->program, goal, options, seeder,
                         catalog_mu_);
  }

  // Model strategy (and trivially, goals without rules): match against the
  // frozen materialized model.
  QueryResult result;
  const Relation* relation = db_->FindRelation(goal.pred);
  if (relation != nullptr) {
    LDL_ASSIGN_OR_RETURN(result.tuples, QueryRelation(factory_, goal, *relation));
  }
  result.stats = eval_stats_;
  return result;
}

Service::Service(const EvalOptions& eval) : eval_options_(eval) {
  // Publish version 1 (the empty model) so snapshot() is never null and
  // queries before the first Load() answer from an empty database.
  std::lock_guard<std::mutex> write_lock(write_mu_);
  {
    std::lock_guard<std::mutex> catalog_lock(catalog_mu_);
    Status status = writer_.Evaluate(eval_options_);
    (void)status;  // the empty program cannot fail to evaluate
  }
  PublishLocked();
}

template <typename Fn>
Status Service::Apply(Fn&& mutate) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  {
    // Analysis and incremental lowering mutate the catalog, which
    // concurrent magic rewrites read and extend: serialize them. The
    // model evaluation itself also runs under this lock -- it keeps
    // Apply simple and only stalls magic *rewrites* (not magic
    // evaluations, nor model/top-down reads) while a write is in flight.
    std::lock_guard<std::mutex> catalog_lock(catalog_mu_);
    LDL_RETURN_IF_ERROR(mutate(&writer_));
    LDL_RETURN_IF_ERROR(writer_.Evaluate(eval_options_));
  }
  PublishLocked();
  writes_applied_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Service::Load(std::string_view source) {
  return Apply([source](Session* session) { return session->Load(source); });
}

Status Service::AddFacts(std::string_view source) {
  return Apply(
      [source](Session* session) { return session->AddFacts(source); });
}

Status Service::RemoveFacts(std::string_view source) {
  return Apply(
      [source](Session* session) { return session->RemoveFacts(source); });
}

void Service::PublishLocked() {
  std::shared_ptr<ModelSnapshot> snapshot(new ModelSnapshot());
  snapshot->factory_ = &writer_.factory();
  snapshot->catalog_ = &writer_.catalog();
  snapshot->plans_ = &plans_;
  snapshot->catalog_mu_ = &catalog_mu_;

  // Share the previous snapshot's analyzed program when the rule set is
  // unchanged (the common case for EDB-only deltas); copy it fresh
  // otherwise.
  std::shared_ptr<const ModelSnapshot> previous = slot_.Acquire();
  if (previous != nullptr && previous->analysis_ != nullptr &&
      previous->analysis_->epoch == writer_.analysis_epoch()) {
    snapshot->analysis_ = previous->analysis_;
    analyses_shared_.fetch_add(1, std::memory_order_relaxed);
  } else {
    auto analysis = std::make_shared<ModelSnapshot::Analysis>();
    analysis->program = writer_.program();
    analysis->stratification = writer_.stratification();
    analysis->edb_preds = writer_.edb_preds();
    analysis->epoch = writer_.analysis_epoch();
    snapshot->analysis_ = std::move(analysis);
  }

  // Freeze the model: deep-copy every live fact and pre-grow the relation
  // deque to the full current catalog so no read can ever mutate it.
  const size_t pred_count = writer_.catalog().size();
  auto db = std::make_unique<Database>(&writer_.catalog());
  db->Grow();
  std::vector<PredId> all_preds(pred_count);
  for (PredId p = 0; p < pred_count; ++p) all_preds[p] = p;
  db->CopyFrom(writer_.database(), all_preds);
  snapshot->db_ = std::move(db);

  snapshot->has_rules_.resize(pred_count);
  for (PredId p = 0; p < pred_count; ++p) {
    snapshot->has_rules_[p] = writer_.catalog().info(p).has_rules ? 1 : 0;
  }
  snapshot->eval_stats_ = writer_.last_eval_stats();
  snapshot->version_ = slot_.version() + 1;  // write_mu_ held: no racing Publish
  slot_.Publish(std::move(snapshot));
}

StatusOr<PreparedQuery> Service::Prepare(std::string_view goal_text) {
  // Interner, term factory and catalog are internally synchronized, so
  // preparation runs concurrently with queries and writes.
  LDL_ASSIGN_OR_RETURN(LiteralAst goal_ast,
                       ParseLiteralText(goal_text, &writer_.interner()));
  if (goal_ast.negated || goal_ast.builtin != BuiltinKind::kNone) {
    return InvalidArgumentError("queries must be positive relational literals");
  }
  LDL_ASSIGN_OR_RETURN(
      LiteralIr goal,
      LowerLiteral(writer_.factory(), writer_.catalog(), goal_ast));
  prepares_.fetch_add(1, std::memory_order_relaxed);
  return PreparedQuery(goal_text, std::move(goal));
}

StatusOr<QueryResult> Service::Query(const PreparedQuery& prepared,
                                     const QueryOptions& options) const {
  std::shared_ptr<const ModelSnapshot> snapshot = slot_.Acquire();
  StatusOr<QueryResult> result = snapshot->Query(prepared, options);
  if (result.ok()) queries_served_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

StatusOr<QueryResult> Service::Query(std::string_view goal_text,
                                     const QueryOptions& options) {
  LDL_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(goal_text));
  return Query(prepared, options);
}

ServiceStats Service::stats() const {
  ServiceStats out;
  out.queries_served = queries_served_.load(std::memory_order_relaxed);
  out.prepares = prepares_.load(std::memory_order_relaxed);
  out.writes_applied = writes_applied_.load(std::memory_order_relaxed);
  out.snapshots_published = slot_.version();
  out.analyses_shared = analyses_shared_.load(std::memory_order_relaxed);
  out.snapshot_refs = static_cast<uint64_t>(slot_.snapshot_refs());
  return out;
}

}  // namespace ldl
