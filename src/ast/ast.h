// Parse-level abstract syntax for LDL1 / LDL1.5 programs (paper §2.1, §4).
//
// The AST is deliberately richer than the internal rule representation: it
// keeps grouping brackets <t> wherever they occur (heads and, for LDL1.5,
// bodies), enumerated sets, tuples, and infix arithmetic already lowered to
// function applications. The rewrite passes in src/rewrite/ operate on this
// AST; lowering to the evaluator's RuleIr happens afterwards and only
// accepts plain LDL1 (at most one top-level <Var> per head, none in bodies).
#ifndef LDL1_AST_AST_H_
#define LDL1_AST_AST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/interner.h"

namespace ldl {

enum class TermExprKind : uint8_t {
  kInt,      // 42
  kAtom,     // john
  kString,   // "war and peace"
  kVar,      // X  (anonymous "_" is renamed to a fresh variable at parse time)
  kFunc,     // f(t1, ..., tn); reserved functors: scons, '.', tuple,
             // $add/$sub/$mul/$div/$mod (from infix arithmetic)
  kSetEnum,  // {t1, ..., tn}; {} is the empty set constant
  kGroup,    // <t>: set grouping in heads, set patterns in LDL1.5 bodies
};

// Reserved functor used for §4.2 tuple head terms written "(a, b, c)".
inline constexpr const char kTupleFunctor[] = "tuple";

struct TermExpr {
  TermExprKind kind = TermExprKind::kAtom;
  Symbol symbol = 0;        // atom / string text / var name / functor
  int64_t int_value = 0;    // kInt payload
  std::vector<TermExpr> args;  // children: func args, set elements, group body

  static TermExpr Int(int64_t value);
  static TermExpr Atom(Symbol name);
  static TermExpr String(Symbol text);
  static TermExpr Var(Symbol name);
  static TermExpr Func(Symbol functor, std::vector<TermExpr> args);
  static TermExpr SetEnum(std::vector<TermExpr> elements);
  static TermExpr Group(TermExpr inner);

  bool is_var() const { return kind == TermExprKind::kVar; }
  bool is_group() const { return kind == TermExprKind::kGroup; }
  // True if any kGroup occurs in this term (at any depth).
  bool ContainsGroup() const;
  // Appends all distinct variable names in first-occurrence order.
  void CollectVars(std::vector<Symbol>* out) const;

  bool operator==(const TermExpr& other) const;
};

// Built-in predicates (paper §2.1-2.2 plus the arithmetic the examples use).
enum class BuiltinKind : uint8_t {
  kNone = 0,    // ordinary (EDB/IDB) predicate
  kEq,          // =(a, b)
  kNeq,         // /=(a, b)
  kLt, kLe, kGt, kGe,  // arithmetic comparisons
  kMember,      // member(t, S)
  kUnion,       // union(S1, S2, S3): S1 u S2 = S3
  kIntersection,  // intersection(S1, S2, S3): S1 n S2 = S3 (library extension)
  kDifference,    // difference(S1, S2, S3): S1 \ S2 = S3 (library extension)
  kSubset,      // subset(S1, S2)
  kPartition,   // partition(S, S1, S2): S1 u S2 = S, S1 n S2 = {}
  kCard,        // card(S, N)
  kPlus, kMinus, kTimes, kDiv, kMod,  // 3-ary functional arithmetic
};

// Returns kNone if (name, arity) is not a built-in.
BuiltinKind LookupBuiltin(std::string_view name, size_t arity);
const char* BuiltinName(BuiltinKind kind);

struct LiteralAst {
  bool negated = false;
  Symbol predicate = 0;          // meaningless when builtin != kNone
  BuiltinKind builtin = BuiltinKind::kNone;
  std::vector<TermExpr> args;
};

struct RuleAst {
  LiteralAst head;
  std::vector<LiteralAst> body;  // empty for facts

  bool is_fact() const { return body.empty(); }
};

struct QueryAst {
  LiteralAst goal;
};

struct ProgramAst {
  std::vector<RuleAst> rules;
  std::vector<QueryAst> queries;
};

// Pretty-printing back to concrete syntax (parseable round trip).
class AstPrinter {
 public:
  explicit AstPrinter(const Interner* interner) : interner_(interner) {}

  std::string ToString(const TermExpr& term) const;
  std::string ToString(const LiteralAst& literal) const;
  std::string ToString(const RuleAst& rule) const;
  std::string ToString(const ProgramAst& program) const;

  void Append(const TermExpr& term, std::string* out) const;
  void Append(const LiteralAst& literal, std::string* out) const;
  void Append(const RuleAst& rule, std::string* out) const;

 private:
  const Interner* interner_;
};

}  // namespace ldl

#endif  // LDL1_AST_AST_H_
