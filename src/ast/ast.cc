#include "ast/ast.h"

#include <algorithm>

#include "base/str_util.h"

namespace ldl {

TermExpr TermExpr::Int(int64_t value) {
  TermExpr t;
  t.kind = TermExprKind::kInt;
  t.int_value = value;
  return t;
}

TermExpr TermExpr::Atom(Symbol name) {
  TermExpr t;
  t.kind = TermExprKind::kAtom;
  t.symbol = name;
  return t;
}

TermExpr TermExpr::String(Symbol text) {
  TermExpr t;
  t.kind = TermExprKind::kString;
  t.symbol = text;
  return t;
}

TermExpr TermExpr::Var(Symbol name) {
  TermExpr t;
  t.kind = TermExprKind::kVar;
  t.symbol = name;
  return t;
}

TermExpr TermExpr::Func(Symbol functor, std::vector<TermExpr> args) {
  TermExpr t;
  t.kind = TermExprKind::kFunc;
  t.symbol = functor;
  t.args = std::move(args);
  return t;
}

TermExpr TermExpr::SetEnum(std::vector<TermExpr> elements) {
  TermExpr t;
  t.kind = TermExprKind::kSetEnum;
  t.args = std::move(elements);
  return t;
}

TermExpr TermExpr::Group(TermExpr inner) {
  TermExpr t;
  t.kind = TermExprKind::kGroup;
  t.args.push_back(std::move(inner));
  return t;
}

bool TermExpr::ContainsGroup() const {
  if (kind == TermExprKind::kGroup) return true;
  for (const TermExpr& arg : args) {
    if (arg.ContainsGroup()) return true;
  }
  return false;
}

void TermExpr::CollectVars(std::vector<Symbol>* out) const {
  if (kind == TermExprKind::kVar) {
    if (std::find(out->begin(), out->end(), symbol) == out->end()) {
      out->push_back(symbol);
    }
    return;
  }
  for (const TermExpr& arg : args) arg.CollectVars(out);
}

bool TermExpr::operator==(const TermExpr& other) const {
  return kind == other.kind && symbol == other.symbol &&
         int_value == other.int_value && args == other.args;
}

BuiltinKind LookupBuiltin(std::string_view name, size_t arity) {
  struct Entry {
    const char* name;
    size_t arity;
    BuiltinKind kind;
  };
  static constexpr Entry kEntries[] = {
      {"=", 2, BuiltinKind::kEq},        {"/=", 2, BuiltinKind::kNeq},
      {"<", 2, BuiltinKind::kLt},        {"<=", 2, BuiltinKind::kLe},
      {">", 2, BuiltinKind::kGt},        {">=", 2, BuiltinKind::kGe},
      {"member", 2, BuiltinKind::kMember},
      {"union", 3, BuiltinKind::kUnion},
      {"intersection", 3, BuiltinKind::kIntersection},
      {"difference", 3, BuiltinKind::kDifference},
      {"subset", 2, BuiltinKind::kSubset},
      {"partition", 3, BuiltinKind::kPartition},
      {"card", 2, BuiltinKind::kCard},
      {"+", 3, BuiltinKind::kPlus},      {"plus", 3, BuiltinKind::kPlus},
      {"-", 3, BuiltinKind::kMinus},     {"minus", 3, BuiltinKind::kMinus},
      {"*", 3, BuiltinKind::kTimes},     {"times", 3, BuiltinKind::kTimes},
      {"/", 3, BuiltinKind::kDiv},       {"div", 3, BuiltinKind::kDiv},
      {"mod", 3, BuiltinKind::kMod},
  };
  for (const Entry& entry : kEntries) {
    if (entry.arity == arity && name == entry.name) return entry.kind;
  }
  return BuiltinKind::kNone;
}

const char* BuiltinName(BuiltinKind kind) {
  switch (kind) {
    case BuiltinKind::kNone: return "<none>";
    case BuiltinKind::kEq: return "=";
    case BuiltinKind::kNeq: return "/=";
    case BuiltinKind::kLt: return "<";
    case BuiltinKind::kLe: return "<=";
    case BuiltinKind::kGt: return ">";
    case BuiltinKind::kGe: return ">=";
    case BuiltinKind::kMember: return "member";
    case BuiltinKind::kUnion: return "union";
    case BuiltinKind::kIntersection: return "intersection";
    case BuiltinKind::kDifference: return "difference";
    case BuiltinKind::kSubset: return "subset";
    case BuiltinKind::kPartition: return "partition";
    case BuiltinKind::kCard: return "card";
    case BuiltinKind::kPlus: return "plus";
    case BuiltinKind::kMinus: return "minus";
    case BuiltinKind::kTimes: return "times";
    case BuiltinKind::kDiv: return "div";
    case BuiltinKind::kMod: return "mod";
  }
  return "<unknown>";
}

void AstPrinter::Append(const TermExpr& term, std::string* out) const {
  switch (term.kind) {
    case TermExprKind::kInt:
      StrAppend(*out, term.int_value);
      break;
    case TermExprKind::kAtom:
    case TermExprKind::kVar:
      StrAppend(*out, interner_->Lookup(term.symbol));
      break;
    case TermExprKind::kString:
      StrAppend(*out, '"', interner_->Lookup(term.symbol), '"');
      break;
    case TermExprKind::kFunc: {
      std::string_view functor = interner_->Lookup(term.symbol);
      if (functor == kTupleFunctor) {
        StrAppend(*out, '(');
      } else {
        StrAppend(*out, functor, '(');
      }
      for (size_t i = 0; i < term.args.size(); ++i) {
        if (i > 0) StrAppend(*out, ", ");
        Append(term.args[i], out);
      }
      StrAppend(*out, ')');
      break;
    }
    case TermExprKind::kSetEnum: {
      StrAppend(*out, '{');
      for (size_t i = 0; i < term.args.size(); ++i) {
        if (i > 0) StrAppend(*out, ", ");
        Append(term.args[i], out);
      }
      StrAppend(*out, '}');
      break;
    }
    case TermExprKind::kGroup:
      StrAppend(*out, '<');
      // "<-27>" would lex as the "<-" rule arrow; keep a space before a
      // negative integer payload.
      if (term.args[0].kind == TermExprKind::kInt && term.args[0].int_value < 0) {
        StrAppend(*out, ' ');
      }
      Append(term.args[0], out);
      StrAppend(*out, '>');
      break;
  }
}

void AstPrinter::Append(const LiteralAst& literal, std::string* out) const {
  if (literal.negated) StrAppend(*out, "!");
  if (literal.builtin != BuiltinKind::kNone) {
    // Binary comparisons print infix; other built-ins print prefix.
    switch (literal.builtin) {
      case BuiltinKind::kEq:
      case BuiltinKind::kNeq:
      case BuiltinKind::kLt:
      case BuiltinKind::kLe:
      case BuiltinKind::kGt:
      case BuiltinKind::kGe:
        Append(literal.args[0], out);
        StrAppend(*out, ' ', BuiltinName(literal.builtin), ' ');
        Append(literal.args[1], out);
        return;
      default:
        StrAppend(*out, BuiltinName(literal.builtin));
        break;
    }
  } else {
    StrAppend(*out, interner_->Lookup(literal.predicate));
  }
  if (!literal.args.empty()) {
    StrAppend(*out, '(');
    for (size_t i = 0; i < literal.args.size(); ++i) {
      if (i > 0) StrAppend(*out, ", ");
      Append(literal.args[i], out);
    }
    StrAppend(*out, ')');
  }
}

void AstPrinter::Append(const RuleAst& rule, std::string* out) const {
  Append(rule.head, out);
  if (!rule.body.empty()) {
    StrAppend(*out, " :- ");
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) StrAppend(*out, ", ");
      Append(rule.body[i], out);
    }
  }
  StrAppend(*out, '.');
}

std::string AstPrinter::ToString(const TermExpr& term) const {
  std::string out;
  Append(term, &out);
  return out;
}

std::string AstPrinter::ToString(const LiteralAst& literal) const {
  std::string out;
  Append(literal, &out);
  return out;
}

std::string AstPrinter::ToString(const RuleAst& rule) const {
  std::string out;
  Append(rule, &out);
  return out;
}

std::string AstPrinter::ToString(const ProgramAst& program) const {
  std::string out;
  for (const RuleAst& rule : program.rules) {
    Append(rule, &out);
    StrAppend(out, '\n');
  }
  for (const QueryAst& query : program.queries) {
    StrAppend(out, "? ");
    Append(query.goal, &out);
    StrAppend(out, ".\n");
  }
  return out;
}

}  // namespace ldl
