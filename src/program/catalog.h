// Predicate catalog: maps (name, arity) pairs to dense PredIds and records
// per-predicate metadata discovered during lowering (EDB/IDB, grouped
// argument positions).
//
// Concurrency contract (what ldl::Service relies on): registration
// (GetOrCreate) and Find serialize on an internal shared_mutex, while
// info()/mutable_info()/size() are lock-free. PredicateInfo entries live in
// fixed-size chunks behind atomic chunk pointers, so a registered entry's
// address is stable for the catalog's lifetime and readers never observe a
// partially moved entry. The `name`/`arity`/`grouped_args` fields of an
// entry are written only while the predicate is being registered or by
// passes the caller serializes externally (lowering, magic rewriting);
// `has_rules` flips on re-analysis while concurrent snapshot queries read
// it, so it is a relaxed-atomic flag.
#ifndef LDL1_PROGRAM_CATALOG_H_
#define LDL1_PROGRAM_CATALOG_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/interner.h"
#include "base/status.h"

namespace ldl {

using PredId = uint32_t;
inline constexpr PredId kInvalidPred = static_cast<PredId>(-1);

// Relaxed-atomic bool with value-copy semantics so the structs holding it
// stay copyable. Used for per-predicate flags that concurrent readers
// consult while a (externally serialized) writer updates them.
class AtomicFlag {
 public:
  AtomicFlag(bool value = false) : value_(value) {}  // NOLINT: implicit
  AtomicFlag(const AtomicFlag& other) : value_(other.get()) {}
  AtomicFlag& operator=(const AtomicFlag& other) {
    set(other.get());
    return *this;
  }
  AtomicFlag& operator=(bool value) {
    set(value);
    return *this;
  }
  operator bool() const { return get(); }  // NOLINT: implicit

 private:
  bool get() const { return value_.load(std::memory_order_relaxed); }
  void set(bool value) { value_.store(value, std::memory_order_relaxed); }
  std::atomic<bool> value_;
};

struct PredicateInfo {
  Symbol name = 0;
  uint32_t arity = 0;
  // True once some rule derives this predicate (it is intensional). Atomic:
  // snapshot query paths read it while a writer re-analyzes.
  AtomicFlag has_rules = false;
  // Argument positions that are grouped (<X>) in some rule head deriving
  // this predicate. Magic-set adornment must never bind these (§6,
  // footnote 6).
  std::vector<bool> grouped_args;

  bool AnyGroupedArg() const {
    for (bool g : grouped_args) {
      if (g) return true;
    }
    return false;
  }
};

class Catalog {
 public:
  explicit Catalog(Interner* interner) : interner_(interner) {}
  ~Catalog();

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Returns the id for (name, arity), registering it on first sight.
  // Thread-safe (exclusive lock).
  PredId GetOrCreate(Symbol name, uint32_t arity);
  PredId GetOrCreate(std::string_view name, uint32_t arity);

  // Returns kInvalidPred if unknown. Thread-safe (shared lock).
  PredId Find(Symbol name, uint32_t arity) const;
  PredId Find(std::string_view name, uint32_t arity) const;

  // Lock-free; valid for any id returned by GetOrCreate/Find. The reference
  // is stable for the catalog's lifetime.
  const PredicateInfo& info(PredId id) const { return *Slot(id); }
  PredicateInfo& mutable_info(PredId id) { return *Slot(id); }

  // "name/arity" for diagnostics.
  std::string DebugName(PredId id) const;

  size_t size() const { return count_.load(std::memory_order_acquire); }

  Interner* interner() const { return interner_; }

 private:
  // 512 infos per chunk; 8192 chunk slots cap the catalog at 4M predicates
  // (far beyond any program plus its per-query magic rewrites).
  static constexpr size_t kChunkBits = 9;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kMaxChunks = size_t{1} << 13;

  static uint64_t Key(Symbol name, uint32_t arity) {
    return (static_cast<uint64_t>(name) << 32) | arity;
  }

  PredicateInfo* Slot(PredId id) const {
    return chunks_[id >> kChunkBits].load(std::memory_order_acquire) +
           (id & (kChunkSize - 1));
  }

  Interner* interner_;
  mutable std::shared_mutex mu_;  // guards index_ and chunk creation
  std::unordered_map<uint64_t, PredId> index_;
  // Chunked stable storage: slots are appended under mu_ and published with
  // the release store of count_ (or the caller's own synchronization when it
  // hands the id across threads); readers index without locking.
  std::array<std::atomic<PredicateInfo*>, kMaxChunks> chunks_{};
  std::atomic<size_t> count_{0};
};

}  // namespace ldl

#endif  // LDL1_PROGRAM_CATALOG_H_
