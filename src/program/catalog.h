// Predicate catalog: maps (name, arity) pairs to dense PredIds and records
// per-predicate metadata discovered during lowering (EDB/IDB, grouped
// argument positions).
#ifndef LDL1_PROGRAM_CATALOG_H_
#define LDL1_PROGRAM_CATALOG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/interner.h"
#include "base/status.h"

namespace ldl {

using PredId = uint32_t;
inline constexpr PredId kInvalidPred = static_cast<PredId>(-1);

struct PredicateInfo {
  Symbol name = 0;
  uint32_t arity = 0;
  // True once some rule derives this predicate (it is intensional).
  bool has_rules = false;
  // Argument positions that are grouped (<X>) in some rule head deriving
  // this predicate. Magic-set adornment must never bind these (§6,
  // footnote 6).
  std::vector<bool> grouped_args;

  bool AnyGroupedArg() const {
    for (bool g : grouped_args) {
      if (g) return true;
    }
    return false;
  }
};

class Catalog {
 public:
  explicit Catalog(Interner* interner) : interner_(interner) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Returns the id for (name, arity), registering it on first sight.
  PredId GetOrCreate(Symbol name, uint32_t arity);
  PredId GetOrCreate(std::string_view name, uint32_t arity);

  // Returns kInvalidPred if unknown.
  PredId Find(Symbol name, uint32_t arity) const;
  PredId Find(std::string_view name, uint32_t arity) const;

  const PredicateInfo& info(PredId id) const { return infos_[id]; }
  PredicateInfo& mutable_info(PredId id) { return infos_[id]; }

  // "name/arity" for diagnostics.
  std::string DebugName(PredId id) const;

  size_t size() const { return infos_.size(); }

  Interner* interner() const { return interner_; }

 private:
  static uint64_t Key(Symbol name, uint32_t arity) {
    return (static_cast<uint64_t>(name) << 32) | arity;
  }

  Interner* interner_;
  std::unordered_map<uint64_t, PredId> index_;
  std::vector<PredicateInfo> infos_;
};

}  // namespace ldl

#endif  // LDL1_PROGRAM_CATALOG_H_
