#include "program/impact.h"

#include <algorithm>

namespace ldl {

const char* ToString(PredImpact impact) {
  switch (impact) {
    case PredImpact::kClean:
      return "clean";
    case PredImpact::kDelta:
      return "delta";
    case PredImpact::kRecompute:
      return "recompute";
  }
  return "?";
}

std::vector<PredImpact> ComputeImpact(const Catalog& catalog,
                                      const ProgramIr& program,
                                      const std::vector<bool>& changed) {
  std::vector<PredImpact> impact(catalog.size(), PredImpact::kClean);
  for (PredId p = 0; p < impact.size() && p < changed.size(); ++p) {
    if (changed[p]) impact[p] = PredImpact::kDelta;
  }

  // Propagate to fixpoint. Strict edges (grouping rules and negated body
  // literals, the `>` of §3.1) escalate any non-clean input to kRecompute;
  // positive edges carry the input's own classification. Recursion makes a
  // single pass insufficient, and head updates can feed earlier rules, so
  // iterate until stable; each pass only raises classifications, so the
  // loop terminates within 2 * |rules| passes.
  bool dirty = true;
  while (dirty) {
    dirty = false;
    for (const RuleIr& rule : program.rules) {
      if (rule.is_fact()) continue;
      PredImpact head = impact[rule.head_pred];
      for (const LiteralIr& literal : rule.body) {
        if (literal.is_builtin()) continue;
        PredImpact body = impact[literal.pred];
        if (body == PredImpact::kClean) continue;
        PredImpact via = (rule.is_grouping() || literal.negated)
                             ? PredImpact::kRecompute
                             : body;
        head = std::max(head, via);
      }
      if (head > impact[rule.head_pred]) {
        impact[rule.head_pred] = head;
        dirty = true;
      }
    }
  }
  return impact;
}

}  // namespace ldl
