#include "program/impact.h"

#include <algorithm>

namespace ldl {

const char* ToString(PredImpact impact) {
  switch (impact) {
    case PredImpact::kClean:
      return "clean";
    case PredImpact::kDelta:
      return "delta";
    case PredImpact::kShrink:
      return "shrink";
    case PredImpact::kGroupRegrow:
      return "group-regrow";
    case PredImpact::kRecompute:
      return "recompute";
  }
  return "?";
}

std::vector<PredImpact> ComputeImpact(const Catalog& catalog,
                                      const ProgramIr& program,
                                      const std::vector<bool>& changed,
                                      const std::vector<bool>* shrunk) {
  std::vector<PredImpact> impact(catalog.size(), PredImpact::kClean);
  for (PredId p = 0; p < impact.size() && p < changed.size(); ++p) {
    if (changed[p]) impact[p] = PredImpact::kDelta;
  }
  // Deletions dominate insertions: a predicate both inserted into and
  // deleted from is kShrink, and the shrink path also resumes the seeded
  // insert deltas after rederivation.
  if (shrunk != nullptr) {
    for (PredId p = 0; p < impact.size() && p < shrunk->size(); ++p) {
      if ((*shrunk)[p]) impact[p] = PredImpact::kShrink;
    }
  }

  // A grouping head is eligible for in-place regrowth only when the
  // grouping rule is the *sole* rule (including fact rules) deriving its
  // head: the regrow path replaces the head facts keyed by partition, which
  // is unsound if another rule contributes facts to the same predicate.
  std::vector<size_t> rules_per_head(catalog.size(), 0);
  for (const RuleIr& rule : program.rules) {
    if (rule.head_pred < rules_per_head.size()) ++rules_per_head[rule.head_pred];
  }

  // Propagate to fixpoint. Strict edges (negated body literals, the `>` of
  // §3.1) escalate any non-clean input to kRecompute. A grouping rule over
  // kDelta inputs regrows its partitions in place (kGroupRegrow) when it is
  // negation-free and the sole rule for its head, else it too recomputes --
  // in particular a grouping rule over a kShrink input recomputes, since
  // the regrow path only handles member sets *growing*. Positive
  // non-grouping edges carry the input's own classification (kDelta stays
  // kDelta, kShrink stays kShrink) -- except that consuming a kGroupRegrow
  // predicate forces kRecompute: the regrow retracts and reinserts facts,
  // which neither the monotone delta machinery nor DRed tracks. Recursion
  // makes a single pass insufficient, and head updates can feed earlier
  // rules, so iterate until stable; each pass only raises classifications,
  // so the loop terminates within 4 * |rules| passes.
  bool dirty = true;
  while (dirty) {
    dirty = false;
    for (const RuleIr& rule : program.rules) {
      if (rule.is_fact()) continue;
      PredImpact head = impact[rule.head_pred];
      for (const LiteralIr& literal : rule.body) {
        if (literal.is_builtin()) continue;
        PredImpact body = impact[literal.pred];
        if (body == PredImpact::kClean) continue;
        PredImpact via;
        if (literal.negated) {
          via = PredImpact::kRecompute;
        } else if (rule.is_grouping()) {
          const bool regrowable = body == PredImpact::kDelta &&
                                  !rule.has_negation() &&
                                  rules_per_head[rule.head_pred] == 1;
          via = regrowable ? PredImpact::kGroupRegrow : PredImpact::kRecompute;
        } else {
          via = body >= PredImpact::kGroupRegrow ? PredImpact::kRecompute
                                                 : body;
        }
        head = std::max(head, via);
      }
      if (head > impact[rule.head_pred]) {
        impact[rule.head_pred] = head;
        dirty = true;
      }
    }
  }
  return impact;
}

}  // namespace ldl
