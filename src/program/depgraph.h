// Predicate dependency graph with the paper's >= and > relations (§3.1).
//
//   p >= q : some rule derives p without grouping and uses q positively.
//   p >  q : some rule derives p with grouping in the head and uses q
//            (positively or negatively), or uses q negated.
//
// A program is admissible iff no dependency cycle contains a strict (>)
// edge, i.e. iff no strongly connected component contains a strict edge.
#ifndef LDL1_PROGRAM_DEPGRAPH_H_
#define LDL1_PROGRAM_DEPGRAPH_H_

#include <vector>

#include "program/catalog.h"
#include "program/ir.h"

namespace ldl {

struct DepEdge {
  PredId from = kInvalidPred;  // the head (dependent) predicate
  PredId to = kInvalidPred;    // the body (dependee) predicate
  bool strict = false;         // true for >, false for >=
  int rule_index = -1;         // rule that induced the edge (diagnostics)
};

class DepGraph {
 public:
  // Builds the dependency graph of `program` over `catalog`'s predicates.
  static DepGraph Build(const Catalog& catalog, const ProgramIr& program);

  size_t node_count() const { return adjacency_.size(); }
  const std::vector<DepEdge>& edges() const { return edges_; }
  // Outgoing edge indices (into edges()) for predicate `p`.
  const std::vector<int>& out_edges(PredId p) const { return adjacency_[p]; }

  // Tarjan SCC. Returns component id per predicate; components are numbered
  // in reverse topological order (a component only depends on components
  // with smaller ids).
  std::vector<int> StronglyConnectedComponents(int* component_count) const;

 private:
  std::vector<DepEdge> edges_;
  std::vector<std::vector<int>> adjacency_;  // PredId -> edge indices
};

}  // namespace ldl

#endif  // LDL1_PROGRAM_DEPGRAPH_H_
