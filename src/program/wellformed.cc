#include "program/wellformed.h"

#include <algorithm>

#include "base/str_util.h"
#include "term/term_ops.h"

namespace ldl {

namespace {

void AddVars(const Term* t, std::vector<Symbol>* vars) {
  CollectVars(t, vars);
}

bool Bound(const std::vector<Symbol>& bound, Symbol var) {
  return std::find(bound.begin(), bound.end(), var) != bound.end();
}

bool AllBound(const Term* t, const std::vector<Symbol>& bound) {
  std::vector<Symbol> vars;
  CollectVars(t, &vars);
  for (Symbol var : vars) {
    if (!Bound(bound, var)) return false;
  }
  return true;
}

void BindAll(const Term* t, std::vector<Symbol>* bound) {
  std::vector<Symbol> vars;
  CollectVars(t, &vars);
  for (Symbol var : vars) {
    if (!Bound(*bound, var)) bound->push_back(var);
  }
}

// One propagation step for a built-in: given the currently bound variables,
// bind whatever the built-in can produce. Returns true if new variables were
// bound.
bool PropagateBuiltin(const LiteralIr& literal, std::vector<Symbol>* bound) {
  size_t before = bound->size();
  const std::vector<const Term*>& args = literal.args;
  auto arg_bound = [&](size_t i) { return AllBound(args[i], *bound); };
  auto bind_arg = [&](size_t i) { BindAll(args[i], bound); };

  switch (literal.builtin) {
    case BuiltinKind::kEq:
      // X = t binds either side once the other is fully bound.
      if (arg_bound(0)) bind_arg(1);
      if (arg_bound(1)) bind_arg(0);
      break;
    case BuiltinKind::kMember:
      // member(X, S): S must be bound; then X gets bound by enumeration.
      if (arg_bound(1)) bind_arg(0);
      break;
    case BuiltinKind::kUnion:
      // union(S1, S2, S3): any two (or S3 alone) determine the rest by
      // enumeration.
      if (arg_bound(0) && arg_bound(1)) bind_arg(2);
      if (arg_bound(2)) {
        bind_arg(0);
        bind_arg(1);
      }
      break;
    case BuiltinKind::kSubset:
      if (arg_bound(1)) bind_arg(0);
      break;
    case BuiltinKind::kIntersection:
    case BuiltinKind::kDifference:
      if (arg_bound(0) && arg_bound(1)) bind_arg(2);
      break;
    case BuiltinKind::kPartition:
      if (arg_bound(0)) {
        bind_arg(1);
        bind_arg(2);
      }
      if (arg_bound(1) && arg_bound(2)) bind_arg(0);
      break;
    case BuiltinKind::kCard:
      if (arg_bound(0)) bind_arg(1);
      break;
    case BuiltinKind::kPlus:
    case BuiltinKind::kMinus:
    case BuiltinKind::kTimes:
    case BuiltinKind::kDiv:
    case BuiltinKind::kMod: {
      int bound_count = arg_bound(0) + arg_bound(1) + arg_bound(2);
      if (bound_count >= 2) {
        bind_arg(0);
        bind_arg(1);
        bind_arg(2);
      }
      break;
    }
    default:
      break;  // comparisons bind nothing
  }
  return bound->size() > before;
}

// True if `var` occurs in the head or in a body literal other than `index`.
bool OccursOutsideLiteral(const RuleIr& rule, size_t index, Symbol var) {
  for (const Term* arg : rule.head_args) {
    if (OccursIn(arg, var)) return true;
  }
  for (size_t j = 0; j < rule.body.size(); ++j) {
    if (j == index) continue;
    for (const Term* arg : rule.body[j].args) {
      if (OccursIn(arg, var)) return true;
    }
  }
  return false;
}

}  // namespace

Status CheckRuleWellformed(const Catalog& catalog, const RuleIr& rule,
                           const WellformedOptions& options) {
  std::string where = StrCat("rule for ", catalog.DebugName(rule.head_pred));

  // §2.1 (3): all body predicates of a grouping rule are positive.
  if (options.strict_grouping_positivity && rule.is_grouping() &&
      rule.has_negation()) {
    return NotWellFormedError(
        StrCat(where, ": a grouping rule may not contain negated literals "
                      "(paper §2.1, restriction 3)"));
  }

  // Facts must be ground (§7).
  if (rule.is_fact()) {
    for (const Term* arg : rule.head_args) {
      if (!arg->ground()) {
        return NotWellFormedError(
            StrCat(where, ": facts may not contain variables (paper §7)"));
      }
    }
    return Status::OK();
  }

  if (!options.require_range_restriction) return Status::OK();

  // Boundness fixpoint: positive non-builtin literals bind all their
  // variables; built-ins propagate per their modes.
  std::vector<Symbol> bound;
  for (const LiteralIr& literal : rule.body) {
    if (!literal.is_builtin() && !literal.negated) {
      for (const Term* arg : literal.args) AddVars(arg, &bound);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const LiteralIr& literal : rule.body) {
      if (literal.is_builtin() && !literal.negated) {
        changed = PropagateBuiltin(literal, &bound) || changed;
      }
    }
  }

  auto check_all_bound = [&](const Term* t, std::string_view context) -> Status {
    std::vector<Symbol> vars;
    CollectVars(t, &vars);
    for (Symbol var : vars) {
      if (!Bound(bound, var)) {
        return NotWellFormedError(
            StrCat(where, ": variable ", catalog.interner()->Lookup(var), " in ",
                   context,
                   " is not bound by a positive body literal (range "
                   "restriction, paper §7)"));
      }
    }
    return Status::OK();
  };

  for (const Term* arg : rule.head_args) {
    LDL_RETURN_IF_ERROR(check_all_bound(arg, "the head"));
  }
  for (size_t li = 0; li < rule.body.size(); ++li) {
    const LiteralIr& literal = rule.body[li];
    if (literal.negated && !literal.is_builtin()) {
      // Variables under negation may be existential (the paper's own §6
      // rule 5 uses !a(X, Z) with Z occurring nowhere else): a variable is
      // fine if it is positively bound, or if it occurs only inside this
      // literal. A variable shared between two negated literals (and bound
      // nowhere) has no sensible scope; reject it.
      std::vector<Symbol> vars;
      for (const Term* arg : literal.args) CollectVars(arg, &vars);
      for (Symbol var : vars) {
        if (Bound(bound, var)) continue;
        bool appears_elsewhere = OccursOutsideLiteral(rule, li, var);
        if (appears_elsewhere) {
          return NotWellFormedError(StrCat(
              where, ": variable ", catalog.interner()->Lookup(var),
              " under negation is shared with other literals but never "
              "positively bound"));
        }
      }
    } else if (literal.is_builtin() && literal.negated) {
      for (const Term* arg : literal.args) {
        LDL_RETURN_IF_ERROR(check_all_bound(arg, "a negated built-in"));
      }
    } else if (literal.is_builtin()) {
      // Comparisons require both sides bound; other built-ins were covered
      // by the propagation fixpoint -- any residual unbound variable means
      // no evaluable mode exists.
      for (const Term* arg : literal.args) {
        LDL_RETURN_IF_ERROR(check_all_bound(arg, StrCat("built-in '",
                                                        BuiltinName(literal.builtin),
                                                        "'")));
      }
    }
  }
  return Status::OK();
}

Status CheckProgramWellformed(const Catalog& catalog, const ProgramIr& program,
                              const WellformedOptions& options) {
  for (const RuleIr& rule : program.rules) {
    LDL_RETURN_IF_ERROR(CheckRuleWellformed(catalog, rule, options));
  }
  return Status::OK();
}

}  // namespace ldl
