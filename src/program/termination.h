// Conservative finiteness analysis (paper §7).
//
// The paper leaves open a syntactic guard against programs whose bottom-up
// fixpoint is infinite (the LDL1 universe is infinite under function
// application, e.g. int(s(X)) :- int(X)). This module implements the
// standard conservative warning: a *recursive* rule whose head constructs
// new terms around variables (function application, scons, or a set
// enumeration containing variables) can grow the active domain without
// bound. The analysis is advisory -- constructing heads are often fine
// (e.g. the §1 tc program builds singletons {X} over a finite part
// domain), so warnings are surfaced, not errors; Engine's max_facts /
// max_rounds guards remain the hard backstop.
#ifndef LDL1_PROGRAM_TERMINATION_H_
#define LDL1_PROGRAM_TERMINATION_H_

#include <string>
#include <vector>

#include "program/catalog.h"
#include "program/ir.h"

namespace ldl {

struct TerminationWarning {
  int rule_index = -1;  // index into ProgramIr::rules
  PredId head_pred = kInvalidPred;
  std::string message;
};

// Returns one warning per recursive rule with a constructing head.
std::vector<TerminationWarning> AnalyzeTermination(const Catalog& catalog,
                                                   const ProgramIr& program);

}  // namespace ldl

#endif  // LDL1_PROGRAM_TERMINATION_H_
