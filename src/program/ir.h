// Internal rule representation consumed by the evaluator.
//
// Lowered from the AST by program/lower.h after the LDL1.5 rewrites: bodies
// contain no grouping brackets, and a head has at most one top-level grouped
// variable, recorded out-of-band in RuleIr::group_index / group_var.
#ifndef LDL1_PROGRAM_IR_H_
#define LDL1_PROGRAM_IR_H_

#include <cstdint>
#include <vector>

#include "ast/ast.h"
#include "program/catalog.h"
#include "term/term.h"

namespace ldl {

struct LiteralIr {
  bool negated = false;
  BuiltinKind builtin = BuiltinKind::kNone;
  PredId pred = kInvalidPred;  // valid iff builtin == kNone
  std::vector<const Term*> args;

  bool is_builtin() const { return builtin != BuiltinKind::kNone; }
};

struct RuleIr {
  PredId head_pred = kInvalidPred;
  // Head argument patterns. At group_index (if >= 0) the stored pattern is
  // the grouped variable itself.
  std::vector<const Term*> head_args;
  int group_index = -1;
  Symbol group_var = 0;
  std::vector<LiteralIr> body;
  int source_index = -1;  // rule index in the originating ProgramAst

  bool is_grouping() const { return group_index >= 0; }
  bool is_fact() const { return body.empty(); }
  bool has_negation() const {
    for (const LiteralIr& literal : body) {
      if (literal.negated) return true;
    }
    return false;
  }
};

struct ProgramIr {
  std::vector<RuleIr> rules;
};

}  // namespace ldl

#endif  // LDL1_PROGRAM_IR_H_
