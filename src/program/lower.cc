#include "program/lower.h"

#include "base/str_util.h"

namespace ldl {

StatusOr<const Term*> LowerTerm(TermFactory& factory, const TermExpr& expr) {
  switch (expr.kind) {
    case TermExprKind::kInt:
      return factory.MakeInt(expr.int_value);
    case TermExprKind::kAtom:
      return factory.MakeAtom(expr.symbol);
    case TermExprKind::kString:
      return factory.MakeString(expr.symbol);
    case TermExprKind::kVar:
      return factory.MakeVar(expr.symbol);
    case TermExprKind::kFunc: {
      std::vector<const Term*> args;
      args.reserve(expr.args.size());
      for (const TermExpr& arg : expr.args) {
        LDL_ASSIGN_OR_RETURN(const Term* lowered, LowerTerm(factory, arg));
        args.push_back(lowered);
      }
      if (args.empty()) {
        return NotWellFormedError("function terms must have at least one argument");
      }
      return factory.MakeFunc(expr.symbol, args);
    }
    case TermExprKind::kSetEnum: {
      std::vector<const Term*> elements;
      elements.reserve(expr.args.size());
      for (const TermExpr& element : expr.args) {
        LDL_ASSIGN_OR_RETURN(const Term* lowered, LowerTerm(factory, element));
        elements.push_back(lowered);
      }
      return factory.MakeSet(elements);
    }
    case TermExprKind::kGroup:
      return NotWellFormedError(
          "grouping brackets <...> are only allowed as a top-level head "
          "argument in LDL1; run the LDL1.5 rewriter for complex terms");
  }
  return InternalError("unknown TermExprKind");
}

StatusOr<LiteralIr> LowerLiteral(TermFactory& factory, Catalog& catalog,
                                 const LiteralAst& literal) {
  LiteralIr ir;
  ir.negated = literal.negated;
  ir.builtin = literal.builtin;
  ir.args.reserve(literal.args.size());
  for (const TermExpr& arg : literal.args) {
    LDL_ASSIGN_OR_RETURN(const Term* lowered, LowerTerm(factory, arg));
    ir.args.push_back(lowered);
  }
  if (literal.builtin == BuiltinKind::kNone) {
    ir.pred = catalog.GetOrCreate(literal.predicate,
                                  static_cast<uint32_t>(literal.args.size()));
  }
  return ir;
}

StatusOr<RuleIr> LowerRule(TermFactory& factory, Catalog& catalog,
                           const RuleAst& rule, int source_index) {
  RuleIr ir;
  ir.source_index = source_index;
  ir.head_pred = catalog.GetOrCreate(rule.head.predicate,
                                     static_cast<uint32_t>(rule.head.args.size()));
  // Only proper rules claim the flag: ground facts lowered through here
  // (Session::AddFacts, EDB clauses) must not flip it even transiently --
  // concurrent snapshot readers consult it lock-free.
  if (!rule.body.empty()) catalog.mutable_info(ir.head_pred).has_rules = true;

  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    const TermExpr& arg = rule.head.args[i];
    if (arg.is_group()) {
      if (ir.group_index >= 0) {
        return NotWellFormedError(StrCat(
            "rule head for ", catalog.DebugName(ir.head_pred),
            " has more than one grouped argument (paper §2.1, restriction 2)"));
      }
      const TermExpr& inner = arg.args[0];
      if (!inner.is_var()) {
        return NotWellFormedError(
            "a head group must contain a plain variable in LDL1; run the "
            "LDL1.5 rewriter for complex head terms");
      }
      ir.group_index = static_cast<int>(i);
      ir.group_var = inner.symbol;
      ir.head_args.push_back(factory.MakeVar(inner.symbol));
      catalog.mutable_info(ir.head_pred).grouped_args[i] = true;
      continue;
    }
    if (arg.ContainsGroup()) {
      return NotWellFormedError(
          "nested grouping in head arguments requires the LDL1.5 rewriter");
    }
    LDL_ASSIGN_OR_RETURN(const Term* lowered, LowerTerm(factory, arg));
    ir.head_args.push_back(lowered);
  }

  ir.body.reserve(rule.body.size());
  for (const LiteralAst& literal : rule.body) {
    for (const TermExpr& arg : literal.args) {
      if (arg.ContainsGroup()) {
        return NotWellFormedError(
            "grouping brackets in rule bodies require the LDL1.5 rewriter "
            "(paper §2.1, restriction 1 / §4.1)");
      }
    }
    LDL_ASSIGN_OR_RETURN(LiteralIr lowered, LowerLiteral(factory, catalog, literal));
    ir.body.push_back(std::move(lowered));
  }
  return ir;
}

StatusOr<ProgramIr> LowerProgram(TermFactory& factory, Catalog& catalog,
                                 const ProgramAst& program) {
  ProgramIr ir;
  ir.rules.reserve(program.rules.size());
  for (size_t i = 0; i < program.rules.size(); ++i) {
    LDL_ASSIGN_OR_RETURN(
        RuleIr rule,
        LowerRule(factory, catalog, program.rules[i], static_cast<int>(i)));
    ir.rules.push_back(std::move(rule));
  }
  return ir;
}

}  // namespace ldl
