#include "program/catalog.h"

#include <cassert>
#include <mutex>

#include "base/str_util.h"

namespace ldl {

Catalog::~Catalog() {
  for (auto& chunk : chunks_) {
    delete[] chunk.load(std::memory_order_relaxed);
  }
}

PredId Catalog::GetOrCreate(Symbol name, uint32_t arity) {
  uint64_t key = Key(name, arity);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  size_t id = count_.load(std::memory_order_relaxed);
  size_t chunk_index = id >> kChunkBits;
  assert(chunk_index < kMaxChunks && "catalog predicate limit exceeded");
  PredicateInfo* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new PredicateInfo[kChunkSize];
    chunks_[chunk_index].store(chunk, std::memory_order_release);
  }
  PredicateInfo& info = chunk[id & (kChunkSize - 1)];
  info.name = name;
  info.arity = arity;
  info.grouped_args.assign(arity, false);
  index_.emplace(key, static_cast<PredId>(id));
  // Publish after the entry is fully initialized so lock-free info() readers
  // that learn the id through size() never see a half-built slot.
  count_.store(id + 1, std::memory_order_release);
  return static_cast<PredId>(id);
}

PredId Catalog::GetOrCreate(std::string_view name, uint32_t arity) {
  return GetOrCreate(interner_->Intern(name), arity);
}

PredId Catalog::Find(Symbol name, uint32_t arity) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(Key(name, arity));
  return it == index_.end() ? kInvalidPred : it->second;
}

PredId Catalog::Find(std::string_view name, uint32_t arity) const {
  Symbol symbol;
  if (!interner_->Find(name, &symbol)) return kInvalidPred;
  return Find(symbol, arity);
}

std::string Catalog::DebugName(PredId id) const {
  const PredicateInfo& info = this->info(id);
  return StrCat(interner_->Lookup(info.name), "/", info.arity);
}

}  // namespace ldl
