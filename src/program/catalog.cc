#include "program/catalog.h"

#include "base/str_util.h"

namespace ldl {

PredId Catalog::GetOrCreate(Symbol name, uint32_t arity) {
  uint64_t key = Key(name, arity);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  PredId id = static_cast<PredId>(infos_.size());
  index_.emplace(key, id);
  PredicateInfo info;
  info.name = name;
  info.arity = arity;
  info.grouped_args.assign(arity, false);
  infos_.push_back(std::move(info));
  return id;
}

PredId Catalog::GetOrCreate(std::string_view name, uint32_t arity) {
  return GetOrCreate(interner_->Intern(name), arity);
}

PredId Catalog::Find(Symbol name, uint32_t arity) const {
  auto it = index_.find(Key(name, arity));
  return it == index_.end() ? kInvalidPred : it->second;
}

PredId Catalog::Find(std::string_view name, uint32_t arity) const {
  Symbol symbol;
  if (!interner_->Find(name, &symbol)) return kInvalidPred;
  return Find(symbol, arity);
}

std::string Catalog::DebugName(PredId id) const {
  const PredicateInfo& info = infos_[id];
  return StrCat(interner_->Lookup(info.name), "/", info.arity);
}

}  // namespace ldl
