// Update-impact analysis for incremental model maintenance (§3.1).
//
// After an EDB insertion the layering relations tell us exactly how each
// predicate's materialized relation can change:
//
//   * A predicate reachable from a changed predicate only through positive,
//     non-grouping body literals (the `>=` edges of §3.1) can only *gain*
//     facts -- its relation grows monotonically, so semi-naive evaluation
//     can resume from the inserted deltas against the existing model.
//   * Dually, a predicate reachable from a *shrunk* (deleted-from) EDB
//     predicate through the same positive non-grouping edges can only
//     *lose* facts (kShrink). The engine handles those strata with
//     delete-and-rederive (DRed) -- or a plain derivation-count decrement
//     for non-recursive counted strata -- instead of a full recompute.
//   * A predicate reached through at least one grouping or negation edge
//     (the strict `>` edges) may *lose* facts: an insertion below can grow
//     a grouped set (replacing the old group fact) or satisfy a negated
//     literal (retracting a derivation). Such predicates -- and everything
//     that consumes them, positively or not -- must be recomputed from
//     their (already-maintained) inputs.
//   * Grouping is a special case of the strict edge: a grouped head fact
//     changes only by its member set *growing* under an insert-only delta,
//     and the partition key pins exactly which facts are replaced. When the
//     grouping rule is the sole rule for its head, has no negated body
//     literal, and its body inputs are at worst kDelta, the engine can
//     regrow just the affected partitions in place (kGroupRegrow) instead
//     of clearing the whole relation. Because the replacement is a
//     retract-and-reinsert, anything consuming a regrown predicate -- even
//     positively -- still escalates to kRecompute.
//
// ComputeImpact propagates this classification to a fixpoint over the rule
// set; Engine::EvaluateIncremental consumes it per stratum.
#ifndef LDL1_PROGRAM_IMPACT_H_
#define LDL1_PROGRAM_IMPACT_H_

#include <cstdint>
#include <vector>

#include "program/catalog.h"
#include "program/ir.h"

namespace ldl {

// How an EDB update can affect a predicate's materialized relation.
// Ordered by severity so propagation can take the max. kShrink sits between
// kDelta and kGroupRegrow: through a positive edge it stays kShrink (losses
// propagate as losses, possibly mixed with gains), while a grouping or
// negation edge over it escalates to kRecompute just like the regrow case.
enum class PredImpact : uint8_t {
  kClean = 0,        // unreachable from any changed predicate: skip
  kDelta = 1,        // grows monotonically: resume semi-naive from deltas
  kShrink = 2,       // may lose facts (and gain, on mixed batches): DRed
  kGroupRegrow = 3,  // sole-rule grouping head: regrow affected partitions
  kRecompute = 4,    // may shrink or change arbitrarily: clear and recompute
};

const char* ToString(PredImpact impact);

// Classifies every predicate given the set of changed (inserted-into) EDB
// predicates and, optionally, the set of shrunk (deleted-from) ones. Both
// are indexed by PredId; ids at or past their end are treated as unchanged.
// The result has one entry per catalog predicate.
std::vector<PredImpact> ComputeImpact(const Catalog& catalog,
                                      const ProgramIr& program,
                                      const std::vector<bool>& changed,
                                      const std::vector<bool>* shrunk = nullptr);

}  // namespace ldl

#endif  // LDL1_PROGRAM_IMPACT_H_
