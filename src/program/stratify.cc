#include "program/stratify.h"

#include <algorithm>

#include "base/str_util.h"

namespace ldl {

namespace {

// Finds a strict edge inside an SCC and renders the offending cycle for the
// error message.
Status AdmissibilityError(const Catalog& catalog, const DepGraph& graph,
                          const std::vector<int>& component, const DepEdge& bad) {
  // Walk from bad.to back to bad.from inside the component (DFS).
  std::vector<PredId> path;
  std::vector<bool> visited(catalog.size(), false);
  std::vector<PredId> stack = {bad.to};
  std::vector<PredId> parent(catalog.size(), kInvalidPred);
  visited[bad.to] = true;
  bool found = bad.to == bad.from;
  while (!stack.empty() && !found) {
    PredId node = stack.back();
    stack.pop_back();
    for (int edge_index : graph.out_edges(node)) {
      const DepEdge& edge = graph.edges()[edge_index];
      if (component[edge.to] != component[bad.from] || visited[edge.to]) continue;
      visited[edge.to] = true;
      parent[edge.to] = node;
      if (edge.to == bad.from) {
        found = true;
        break;
      }
      stack.push_back(edge.to);
    }
  }
  std::string cycle = catalog.DebugName(bad.from);
  StrAppend(cycle, bad.strict ? " > " : " >= ", catalog.DebugName(bad.to));
  if (found && bad.to != bad.from) {
    // Render the return path bad.to ->* bad.from (recorded via parent links).
    std::vector<PredId> chain;
    for (PredId node = bad.from; node != kInvalidPred && node != bad.to;
         node = parent[node]) {
      chain.push_back(node);
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      StrAppend(cycle, " >= ", catalog.DebugName(*it));
    }
  }
  return NotAdmissibleError(
      StrCat("program is not admissible (paper §3.1): dependency cycle through "
             "a strict edge: ", cycle,
             " (grouping or negation inside recursion)"));
}

StatusOr<Stratification> StratifyImpl(const Catalog& catalog,
                                      const ProgramIr& program, bool fine) {
  DepGraph graph = DepGraph::Build(catalog, program);
  int component_count = 0;
  std::vector<int> component = graph.StronglyConnectedComponents(&component_count);

  // Admissibility: no strict edge inside a component.
  for (const DepEdge& edge : graph.edges()) {
    if (edge.strict && component[edge.from] == component[edge.to]) {
      return AdmissibilityError(catalog, graph, component, edge);
    }
  }

  // Component ids are in reverse topological order: for any edge u -> v
  // (u depends on v), component[v] <= component[u]. Compute layers by a
  // forward pass over components in increasing id order.
  std::vector<int> component_layer(component_count, 0);
  if (fine) {
    // One layer per component, topological position as the layer index.
    for (int c = 0; c < component_count; ++c) component_layer[c] = c;
  } else {
    // Minimal layering: layer(u) >= layer(v) (+1 when strict).
    // Process predicates grouped by component in increasing id order so that
    // all dependencies are final before a component is sealed.
    std::vector<std::vector<PredId>> members(component_count);
    for (PredId p = 0; p < catalog.size(); ++p) {
      members[component[p]].push_back(p);
    }
    for (int c = 0; c < component_count; ++c) {
      int layer = 0;
      for (PredId p : members[c]) {
        for (int edge_index : graph.out_edges(p)) {
          const DepEdge& edge = graph.edges()[edge_index];
          int dep_component = component[edge.to];
          if (dep_component == c) continue;  // same SCC, non-strict
          int required = component_layer[dep_component] + (edge.strict ? 1 : 0);
          layer = std::max(layer, required);
        }
      }
      component_layer[c] = layer;
    }
  }

  Stratification result;
  result.layer_of_pred.resize(catalog.size());
  int max_layer = 0;
  for (PredId p = 0; p < catalog.size(); ++p) {
    result.layer_of_pred[p] = component_layer[component[p]];
    max_layer = std::max(max_layer, result.layer_of_pred[p]);
  }
  result.strata.assign(max_layer + 1, {});
  result.layer_of_rule.resize(program.rules.size());
  for (size_t r = 0; r < program.rules.size(); ++r) {
    int layer = result.layer_of_pred[program.rules[r].head_pred];
    result.layer_of_rule[r] = layer;
    result.strata[layer].push_back(static_cast<int>(r));
  }
  return result;
}

}  // namespace

StatusOr<Stratification> Stratify(const Catalog& catalog, const ProgramIr& program) {
  return StratifyImpl(catalog, program, /*fine=*/false);
}

StatusOr<Stratification> StratifyFine(const Catalog& catalog,
                                      const ProgramIr& program) {
  return StratifyImpl(catalog, program, /*fine=*/true);
}

}  // namespace ldl
