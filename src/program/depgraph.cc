#include "program/depgraph.h"

#include <algorithm>

namespace ldl {

DepGraph DepGraph::Build(const Catalog& catalog, const ProgramIr& program) {
  DepGraph graph;
  graph.adjacency_.resize(catalog.size());
  for (size_t r = 0; r < program.rules.size(); ++r) {
    const RuleIr& rule = program.rules[r];
    for (const LiteralIr& literal : rule.body) {
      if (literal.is_builtin()) continue;
      DepEdge edge;
      edge.from = rule.head_pred;
      edge.to = literal.pred;
      // Paper §3.1: grouping heads depend strictly on *all* body predicates;
      // negated body predicates are strict regardless of the head.
      edge.strict = rule.is_grouping() || literal.negated;
      edge.rule_index = static_cast<int>(r);
      graph.adjacency_[edge.from].push_back(static_cast<int>(graph.edges_.size()));
      graph.edges_.push_back(edge);
    }
  }
  return graph;
}

namespace {

// Iterative Tarjan to survive deep rule chains without stack overflow.
struct TarjanState {
  const DepGraph* graph;
  std::vector<int> index;    // -1 = unvisited
  std::vector<int> lowlink;
  std::vector<bool> on_stack;
  std::vector<PredId> stack;
  std::vector<int> component;
  int next_index = 0;
  int component_count = 0;

  void Run(PredId root) {
    struct Frame {
      PredId node;
      size_t edge_pos;
    };
    std::vector<Frame> frames;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const std::vector<int>& out = graph->out_edges(frame.node);
      if (frame.edge_pos < out.size()) {
        PredId next = graph->edges()[out[frame.edge_pos++]].to;
        if (index[next] == -1) {
          index[next] = lowlink[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back({next, 0});
        } else if (on_stack[next]) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[next]);
        }
        continue;
      }
      // All edges done: close the node.
      PredId node = frame.node;
      frames.pop_back();
      if (!frames.empty()) {
        PredId parent = frames.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[node]);
      }
      if (lowlink[node] == index[node]) {
        for (;;) {
          PredId member = stack.back();
          stack.pop_back();
          on_stack[member] = false;
          component[member] = component_count;
          if (member == node) break;
        }
        ++component_count;
      }
    }
  }
};

}  // namespace

std::vector<int> DepGraph::StronglyConnectedComponents(int* component_count) const {
  TarjanState state;
  state.graph = this;
  size_t n = adjacency_.size();
  state.index.assign(n, -1);
  state.lowlink.assign(n, 0);
  state.on_stack.assign(n, false);
  state.component.assign(n, -1);
  for (PredId p = 0; p < n; ++p) {
    if (state.index[p] == -1) state.Run(p);
  }
  *component_count = state.component_count;
  return std::move(state.component);
}

}  // namespace ldl
