// Admissibility check and layering (stratification) of LDL1 programs
// (paper §3.1, Lemma 3.1).
#ifndef LDL1_PROGRAM_STRATIFY_H_
#define LDL1_PROGRAM_STRATIFY_H_

#include <vector>

#include "base/status.h"
#include "program/catalog.h"
#include "program/depgraph.h"
#include "program/ir.h"

namespace ldl {

struct Stratification {
  // Layer number per predicate (index = PredId). EDB predicates and
  // predicates untouched by rules are in layer 0.
  std::vector<int> layer_of_pred;
  // Stratum per rule (== layer of its head predicate).
  std::vector<int> layer_of_rule;
  // Rule indices grouped by layer, lowest first. Layer 0 may be empty of
  // rules (pure EDB).
  std::vector<std::vector<int>> strata;

  int layer_count() const { return static_cast<int>(strata.size()); }
};

// Checks admissibility and computes the canonical (minimal) layering: each
// predicate is placed in the lowest layer consistent with
//   p >= q  =>  layer(p) >= layer(q)
//   p >  q  =>  layer(p) >  layer(q).
//
// Returns kNotAdmissible with a cycle diagnostic when the program has a
// dependency cycle through a strict edge (e.g. the paper's even/int
// program), per Lemma 3.1.
StatusOr<Stratification> Stratify(const Catalog& catalog, const ProgramIr& program);

// An alternative, maximally fine layering: every strongly connected
// component gets its own layer, in topological order. Also a valid layering
// per §3.1; used to exercise Theorem 2 (any two layerings produce the same
// standard model).
StatusOr<Stratification> StratifyFine(const Catalog& catalog,
                                      const ProgramIr& program);

}  // namespace ldl

#endif  // LDL1_PROGRAM_STRATIFY_H_
