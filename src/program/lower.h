// Lowering from the parse-level AST to the evaluator's RuleIr.
//
// Accepts plain LDL1 only: grouping brackets may appear solely as a single
// top-level <Var> head argument. LDL1.5 constructs (nested groups, body set
// patterns, complex head terms) must be macro-expanded first by
// rewrite/ldl15.h; lowering reports kNotWellFormed for leftovers.
#ifndef LDL1_PROGRAM_LOWER_H_
#define LDL1_PROGRAM_LOWER_H_

#include "ast/ast.h"
#include "base/status.h"
#include "program/catalog.h"
#include "program/ir.h"
#include "term/term.h"

namespace ldl {

// Lowers one parse-level term. Groups are rejected.
StatusOr<const Term*> LowerTerm(TermFactory& factory, const TermExpr& expr);

// Lowers a body/query literal (no grouping anywhere).
StatusOr<LiteralIr> LowerLiteral(TermFactory& factory, Catalog& catalog,
                                 const LiteralAst& literal);

// Lowers a full rule, registering predicates in the catalog and recording
// grouped argument positions on the head predicate.
StatusOr<RuleIr> LowerRule(TermFactory& factory, Catalog& catalog,
                           const RuleAst& rule, int source_index);

// Lowers every rule of the program.
StatusOr<ProgramIr> LowerProgram(TermFactory& factory, Catalog& catalog,
                                 const ProgramAst& program);

}  // namespace ldl

#endif  // LDL1_PROGRAM_LOWER_H_
