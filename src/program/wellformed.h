// Static well-formedness checks (paper §2.1 and the §7 syntactic safety
// restriction).
//
//   * a grouping rule's body literals must all be positive (§2.1, (3));
//   * facts must be ground (§7: "facts may not have variables as arguments");
//   * range restriction / safety: every variable occurring in the head, in a
//     negated literal, or in a comparison must be bound by the positive part
//     of the body. Built-ins bind variables according to their modes (e.g.
//     +(A, B, C) binds any one argument once the other two are bound;
//     member(X, S) binds X once S is bound), so boundness is computed as a
//     fixpoint.
#ifndef LDL1_PROGRAM_WELLFORMED_H_
#define LDL1_PROGRAM_WELLFORMED_H_

#include "base/status.h"
#include "program/catalog.h"
#include "program/ir.h"

namespace ldl {

struct WellformedOptions {
  // Enforce the §7 range restriction. On by default; the paper discusses it
  // as the syntactic guard against grouping sets "out of" the universe.
  bool require_range_restriction = true;
  // Enforce §2.1 restriction (3): no negated literals in grouping-rule
  // bodies. Off by default because the paper's own §6 running example
  // (young(X, <Y>) <-- !a(X, Z), sg(X, Y)) violates it; stratification
  // already guarantees the negated predicate is complete before the
  // grouping rule fires, so the relaxed form is safe.
  bool strict_grouping_positivity = false;
};

// Checks one rule.
Status CheckRuleWellformed(const Catalog& catalog, const RuleIr& rule,
                           const WellformedOptions& options = {});

// Checks every rule of the program.
Status CheckProgramWellformed(const Catalog& catalog, const ProgramIr& program,
                              const WellformedOptions& options = {});

}  // namespace ldl

#endif  // LDL1_PROGRAM_WELLFORMED_H_
