#include "program/termination.h"

#include "base/str_util.h"
#include "program/depgraph.h"

namespace ldl {

namespace {

// True if the head argument builds a new term around a variable: a function
// application (incl. scons) or set enumeration with a variable inside.
bool ConstructsAroundVariable(const Term* t) {
  switch (t->kind()) {
    case TermKind::kInt:
    case TermKind::kAtom:
    case TermKind::kString:
    case TermKind::kVar:
      return false;
    case TermKind::kFunc:
    case TermKind::kSet:
      return !t->ground();
  }
  return false;
}

}  // namespace

std::vector<TerminationWarning> AnalyzeTermination(const Catalog& catalog,
                                                   const ProgramIr& program) {
  DepGraph graph = DepGraph::Build(catalog, program);
  int component_count = 0;
  std::vector<int> component = graph.StronglyConnectedComponents(&component_count);

  std::vector<TerminationWarning> warnings;
  for (size_t r = 0; r < program.rules.size(); ++r) {
    const RuleIr& rule = program.rules[r];
    bool recursive = false;
    for (const LiteralIr& literal : rule.body) {
      if (!literal.is_builtin() && !literal.negated &&
          component[literal.pred] == component[rule.head_pred]) {
        recursive = true;
        break;
      }
    }
    if (!recursive) continue;
    for (size_t i = 0; i < rule.head_args.size(); ++i) {
      if (static_cast<int>(i) == rule.group_index) continue;
      if (ConstructsAroundVariable(rule.head_args[i])) {
        TerminationWarning warning;
        warning.rule_index = static_cast<int>(r);
        warning.head_pred = rule.head_pred;
        warning.message = StrCat(
            "recursive rule for ", catalog.DebugName(rule.head_pred),
            " constructs a new term in head argument ", i + 1,
            "; the bottom-up fixpoint may be infinite (paper §7)");
        warnings.push_back(std::move(warning));
        break;
      }
    }
  }
  return warnings;
}

}  // namespace ldl
