// Small string helpers shared across the library.
#ifndef LDL1_BASE_STR_UTIL_H_
#define LDL1_BASE_STR_UTIL_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace ldl {

namespace internal {
inline void StrAppendOne(std::string& out, std::string_view piece) { out += piece; }
inline void StrAppendOne(std::string& out, const char* piece) { out += piece; }
inline void StrAppendOne(std::string& out, const std::string& piece) { out += piece; }
inline void StrAppendOne(std::string& out, char piece) { out += piece; }
template <typename T>
  requires std::is_integral_v<T> && (!std::is_same_v<T, char>)
inline void StrAppendOne(std::string& out, T piece) {
  out += std::to_string(piece);
}
}  // namespace internal

// Concatenates the string representations of the arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::string result;
  (internal::StrAppendOne(result, args), ...);
  return result;
}

template <typename... Args>
void StrAppend(std::string& out, const Args&... args) {
  (internal::StrAppendOne(out, args), ...);
}

// Joins the elements of `pieces` (anything streamable to std::ostream)
// separated by `sep`.
template <typename Container>
std::string StrJoin(const Container& pieces, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& piece : pieces) {
    if (!first) os << sep;
    first = false;
    os << piece;
  }
  return os.str();
}

// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// True if `text` begins with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

}  // namespace ldl

#endif  // LDL1_BASE_STR_UTIL_H_
