#include "base/interner.h"

#include <cassert>
#include <mutex>

#include "base/str_util.h"

namespace ldl {

Interner::Interner() {
  Intern("");  // Symbol 0 == empty string.
}

Symbol Interner::Intern(std::string_view text) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(std::string(text));
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [inserted, ok] =
      index_.emplace(std::string(text), static_cast<Symbol>(strings_.size()));
  if (ok) strings_.push_back(&inserted->first);
  return inserted->second;
}

std::string_view Interner::Lookup(Symbol symbol) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  assert(symbol < strings_.size());
  return *strings_[symbol];
}

bool Interner::Find(std::string_view text, Symbol* symbol) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(std::string(text));
  if (it == index_.end()) return false;
  *symbol = it->second;
  return true;
}

size_t Interner::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return strings_.size();
}

Symbol Interner::Fresh(std::string_view prefix) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (;;) {
    std::string candidate = StrCat(prefix, "$", std::to_string(fresh_counter_++));
    if (index_.find(candidate) != index_.end()) continue;
    auto [inserted, ok] =
        index_.emplace(std::move(candidate), static_cast<Symbol>(strings_.size()));
    (void)ok;
    strings_.push_back(&inserted->first);
    return inserted->second;
  }
}

}  // namespace ldl
