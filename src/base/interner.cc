#include "base/interner.h"

#include <cassert>

#include "base/str_util.h"

namespace ldl {

Interner::Interner() {
  Intern("");  // Symbol 0 == empty string.
}

Symbol Interner::Intern(std::string_view text) {
  auto it = index_.find(std::string(text));
  if (it != index_.end()) return it->second;
  auto [inserted, ok] =
      index_.emplace(std::string(text), static_cast<Symbol>(strings_.size()));
  (void)ok;
  strings_.push_back(&inserted->first);
  return inserted->second;
}

std::string_view Interner::Lookup(Symbol symbol) const {
  assert(symbol < strings_.size());
  return *strings_[symbol];
}

bool Interner::Find(std::string_view text, Symbol* symbol) const {
  auto it = index_.find(std::string(text));
  if (it == index_.end()) return false;
  *symbol = it->second;
  return true;
}

Symbol Interner::Fresh(std::string_view prefix) {
  for (;;) {
    std::string candidate = StrCat(prefix, "$", std::to_string(fresh_counter_++));
    if (index_.find(candidate) == index_.end()) return Intern(candidate);
  }
}

}  // namespace ldl
