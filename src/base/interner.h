// String interning: maps each distinct string to a dense 32-bit id.
//
// Predicate names, function symbols, atom constants and variable names are all
// interned once at parse time; the rest of the system deals only in Symbol
// ids, making comparisons and hashing O(1).
//
// Thread-safety: the interner is internally synchronized (writers take an
// exclusive lock, Lookup/Find take a shared lock) so the parallel evaluator's
// workers may resolve symbol text -- e.g. for the total term order or
// arithmetic functor checks -- while the main thread stays quiescent, and so
// a stray Intern from a worker cannot corrupt the table. Returned views stay
// valid for the interner's lifetime (ids point at node-stable strings).
#ifndef LDL1_BASE_INTERNER_H_
#define LDL1_BASE_INTERNER_H_

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ldl {

// Dense id for an interned string. Value 0 is reserved for the empty string.
using Symbol = uint32_t;

class Interner {
 public:
  Interner();

  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  // Returns the id for `text`, interning it on first sight.
  Symbol Intern(std::string_view text);

  // Returns the text for an id produced by this interner. The view stays
  // valid for the interner's lifetime.
  std::string_view Lookup(Symbol symbol) const;

  // Returns true and sets *symbol if `text` is already interned.
  bool Find(std::string_view text, Symbol* symbol) const;

  size_t size() const;

  // Returns a symbol guaranteed not to collide with any user-visible name,
  // of the form "<prefix>$<n>". Used by the rewrite passes to mint fresh
  // predicate names and variables.
  Symbol Fresh(std::string_view prefix);

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, Symbol> index_;
  std::vector<const std::string*> strings_;  // id -> text (stable pointers)
  uint64_t fresh_counter_ = 0;
};

}  // namespace ldl

#endif  // LDL1_BASE_INTERNER_H_
