// SnapshotSlot<T> -- atomic publication of immutable, refcounted state.
//
// The serving pattern (ldl::Service): a single writer builds a fresh
// immutable T, then Publish()es it; any number of concurrent readers
// Acquire() the current version as a shared_ptr<const T> and keep using it
// for as long as they like -- a later Publish never invalidates what a
// reader already holds, it only retires the slot's own reference. The last
// holder (reader or slot) frees the snapshot.
//
// Publish and Acquire are both tiny critical sections on one mutex (a
// shared_ptr copy / move), so readers never wait on snapshot *construction*
// and writers never wait on readers *using* a snapshot -- only on the
// pointer swap itself.
#ifndef LDL1_BASE_SNAPSHOT_H_
#define LDL1_BASE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

namespace ldl {

template <typename T>
class SnapshotSlot {
 public:
  SnapshotSlot() = default;

  SnapshotSlot(const SnapshotSlot&) = delete;
  SnapshotSlot& operator=(const SnapshotSlot&) = delete;

  // Installs `snapshot` as the current version and returns its version
  // number (1 for the first publication). The previous snapshot is released
  // (and destroyed here if no reader still holds it).
  uint64_t Publish(std::shared_ptr<const T> snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(snapshot);
    return ++version_;
  }

  // The current snapshot (nullptr before the first Publish). The returned
  // reference stays valid across later publications.
  std::shared_ptr<const T> Acquire() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  // Number of publications so far.
  uint64_t version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }

  // References currently held on the live snapshot, including the slot's
  // own (0 when nothing was published). Approximate by nature -- readers
  // acquire and release concurrently -- but exact when quiescent; Service
  // surfaces it as a serving stat.
  long snapshot_refs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_ ? current_.use_count() : 0;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const T> current_;
  uint64_t version_ = 0;
};

}  // namespace ldl

#endif  // LDL1_BASE_SNAPSHOT_H_
