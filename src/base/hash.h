// Hash combinators used by the term layer and relation indexes.
#ifndef LDL1_BASE_HASH_H_
#define LDL1_BASE_HASH_H_

#include <cstddef>
#include <cstdint>

namespace ldl {

// 64-bit mix (splitmix64 finalizer); good avalanche for pointer/int keys.
inline uint64_t HashMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Order-dependent combination of two hashes.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return HashMix(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

// FNV-1a over raw bytes, for strings.
inline uint64_t HashBytes(const void* data, size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace ldl

#endif  // LDL1_BASE_HASH_H_
