// Status / StatusOr error handling for the ldl1 library.
//
// The library does not use C++ exceptions. Every fallible operation returns a
// Status (or StatusOr<T> when it also produces a value). Status carries an
// error code and a human-readable message; the OK status carries neither and
// is cheap to copy.
#ifndef LDL1_BASE_STATUS_H_
#define LDL1_BASE_STATUS_H_

#include <cassert>
#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace ldl {

// Broad error categories. Fine-grained context goes in the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kParseError,        // surface syntax could not be parsed
  kNotAdmissible,     // program violates the layering restriction (paper §3.1)
  kNotWellFormed,     // grouping-rule / range-restriction violation (§2.1, §7)
  kNotFound,          // unknown predicate, file, etc.
  kUnsupported,       // feature intentionally out of scope
  kResourceExhausted, // iteration/derivation limits hit
  kInternal,          // invariant violation inside the library
};

// Returns a stable lower-case name, e.g. "parse_error".
const char* StatusCodeToString(StatusCode code);

// Value-semantic error holder. OK is represented by a null rep pointer, so
// returning and testing OK statuses never allocates.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }
  // Empty string for OK.
  const std::string& message() const;

  // "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors mirroring the StatusCode enumerators.
Status InvalidArgumentError(std::string message);
Status ParseError(std::string message);
Status NotAdmissibleError(std::string message);
Status NotWellFormedError(std::string message);
Status NotFoundError(std::string message);
Status UnsupportedError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);

// Union of a Status and a T. Access to the value is checked by assertion.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT: implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

// Propagates a non-OK Status out of the enclosing function.
#define LDL_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::ldl::Status _ldl_status = (expr);      \
    if (!_ldl_status.ok()) return _ldl_status; \
  } while (false)

// Evaluates a StatusOr expression, propagating errors, else binds the value.
#define LDL_ASSIGN_OR_RETURN(lhs, expr)                      \
  LDL_ASSIGN_OR_RETURN_IMPL_(                                \
      LDL_STATUS_CONCAT_(_ldl_statusor, __LINE__), lhs, expr)

#define LDL_STATUS_CONCAT_INNER_(a, b) a##b
#define LDL_STATUS_CONCAT_(a, b) LDL_STATUS_CONCAT_INNER_(a, b)
#define LDL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace ldl

#endif  // LDL1_BASE_STATUS_H_
