// Bump-pointer arena allocator.
//
// All terms of the LDL1 universe are hash-consed and live for the lifetime of
// their TermFactory; an arena gives us cheap allocation, perfect locality for
// the evaluator's hot loops, and a single point of release. Objects allocated
// from an arena must be trivially destructible or have their destructors
// managed by the caller (the term layer only stores trivially destructible
// payloads plus out-of-line arrays, so nothing needs destruction).
#ifndef LDL1_BASE_ARENA_H_
#define LDL1_BASE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ldl {

class Arena {
 public:
  // `block_size` is the granularity of the underlying malloc'd blocks;
  // oversized requests get a dedicated block.
  explicit Arena(size_t block_size = 64 * 1024);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `size` bytes aligned to `align` (a power of two). Never fails
  // except by crashing on OOM, matching the no-exceptions policy.
  void* Allocate(size_t size, size_t align = alignof(std::max_align_t));

  // Allocates and value-initializes a T. T must be trivially destructible.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::New requires trivially destructible types");
    void* mem = Allocate(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  // Allocates an uninitialized array of n Ts.
  template <typename T>
  T* NewArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::NewArray requires trivially destructible types");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  // Total bytes handed out (excluding block slack).
  size_t bytes_allocated() const { return bytes_allocated_; }
  // Total bytes reserved from the system.
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size;
  };

  void AddBlock(size_t min_size);

  size_t block_size_;
  std::vector<Block> blocks_;
  char* ptr_ = nullptr;   // next free byte in the current block
  char* end_ = nullptr;   // one past the current block
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace ldl

#endif  // LDL1_BASE_ARENA_H_
