#include "base/status.h"

namespace ldl {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kNotAdmissible:
      return "not_admissible";
    case StatusCode::kNotWellFormed:
      return "not_well_formed";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_ != nullptr) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ == nullptr ? nullptr : std::make_unique<Rep>(*other.rep_);
  }
  return *this;
}

const std::string& Status::message() const {
  return rep_ == nullptr ? kEmptyString : rep_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code());
  result += ": ";
  result += message();
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status NotAdmissibleError(std::string message) {
  return Status(StatusCode::kNotAdmissible, std::move(message));
}
Status NotWellFormedError(std::string message) {
  return Status(StatusCode::kNotWellFormed, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status UnsupportedError(std::string message) {
  return Status(StatusCode::kUnsupported, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace ldl
