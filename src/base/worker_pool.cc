#include "base/worker_pool.h"

namespace ldl {

WorkerPool::WorkerPool(int thread_count)
    : thread_count_(thread_count < 1 ? 1 : thread_count) {
  workers_.reserve(thread_count_ - 1);
  for (int i = 0; i < thread_count_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::DrainTasks(const std::function<void(size_t)>& fn,
                            size_t task_count) {
  for (;;) {
    size_t task = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (task >= task_count) return;
    fn(task);
  }
}

void WorkerPool::Run(size_t task_count, const std::function<void(size_t)>& fn) {
  if (task_count == 0) return;
  if (workers_.empty()) {
    for (size_t task = 0; task < task_count; ++task) fn(task);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    task_count_ = task_count;
    next_task_.store(0, std::memory_order_relaxed);
    busy_workers_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  DrainTasks(fn, task_count);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return busy_workers_ == 0; });
  job_ = nullptr;
}

void WorkerPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(size_t)>* fn;
    size_t task_count;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      fn = job_;
      task_count = task_count_;
    }
    DrainTasks(*fn, task_count);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--busy_workers_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace ldl
