#include "base/arena.h"

#include <cstdlib>

namespace ldl {

Arena::Arena(size_t block_size) : block_size_(block_size) {}

void Arena::AddBlock(size_t min_size) {
  size_t size = min_size > block_size_ ? min_size : block_size_;
  Block block{std::make_unique<char[]>(size), size};
  ptr_ = block.data.get();
  end_ = ptr_ + size;
  bytes_reserved_ += size;
  blocks_.push_back(std::move(block));
}

void* Arena::Allocate(size_t size, size_t align) {
  if (size == 0) size = 1;
  uintptr_t current = reinterpret_cast<uintptr_t>(ptr_);
  uintptr_t aligned = (current + align - 1) & ~(align - 1);
  size_t needed = (aligned - current) + size;
  if (ptr_ == nullptr || static_cast<size_t>(end_ - ptr_) < needed) {
    AddBlock(size + align);
    current = reinterpret_cast<uintptr_t>(ptr_);
    aligned = (current + align - 1) & ~(align - 1);
    needed = (aligned - current) + size;
  }
  ptr_ += needed;
  bytes_allocated_ += size;
  return reinterpret_cast<void*>(aligned);
}

}  // namespace ldl
