// A persistent pool of worker threads with a parallel-for primitive.
//
// The bottom-up engine evaluates many independent rule×delta-window tasks per
// fixpoint round, with a merge barrier between rounds. Rounds can be very
// short (microseconds on small deltas), so the pool keeps its threads alive
// across rounds -- spawning per round would dwarf the work. Workers sleep on
// a condition variable between rounds; tasks within a round are claimed
// dynamically off an atomic counter so skewed task sizes still balance.
#ifndef LDL1_BASE_WORKER_POOL_H_
#define LDL1_BASE_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ldl {

class WorkerPool {
 public:
  // A pool of `thread_count` execution lanes: `thread_count - 1` spawned
  // workers plus the thread that calls Run. thread_count must be >= 1.
  explicit WorkerPool(int thread_count);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int thread_count() const { return thread_count_; }

  // Runs fn(task_index) for every index in [0, task_count), distributing
  // tasks across the pool; the calling thread participates. Returns once
  // every task has finished (a full barrier). `fn` must not throw and must
  // not re-enter Run on the same pool.
  void Run(size_t task_count, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  // Claims and runs tasks until the current round is exhausted.
  void DrainTasks(const std::function<void(size_t)>& fn, size_t task_count);

  const int thread_count_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;  // workers wait here between rounds
  std::condition_variable done_cv_;   // Run waits here for the round to end
  uint64_t generation_ = 0;           // bumped once per Run
  bool shutdown_ = false;
  const std::function<void(size_t)>* job_ = nullptr;
  size_t task_count_ = 0;
  int busy_workers_ = 0;  // spawned workers still inside the current round

  std::atomic<size_t> next_task_{0};
};

}  // namespace ldl

#endif  // LDL1_BASE_WORKER_POOL_H_
