// The paper's §1 bill-of-materials program: grouping + set recursion +
// arithmetic. Reproduces the paper's exact instance, then runs a larger
// randomly generated part hierarchy where the magic-set rewriting is what
// makes the query tractable (full bottom-up evaluation of the partition
// rule derives a cost for every disjoint union of part sets).
#include <cstdio>

#include "ldl/ldl.h"
#include "workload/workload.h"

namespace {

constexpr const char* kBomProgram = R"(
  part(P, <S>) :- p(P, S).
  tc({X}, C) :- q(X, C).
  tc({X}, C) :- part(X, S), tc(S, C).
  tc(S, C) :- partition(S, S1, S2), tc(S1, C1), tc(S2, C2), +(C1, C2, C).
  result(X, C) :- tc({X}, C).
)";

int RunPaperInstance() {
  std::printf("== the paper's instance (§1) ==\n");
  ldl::Session session;
  ldl::Status status = session.Load(R"(
    p(1, 2). p(1, 7). p(2, 3). p(2, 4). p(3, 5). p(3, 6).
    q(4, 20). q(5, 10). q(6, 15). q(7, 200).
  )");
  if (status.ok()) status = session.Load(kBomProgram);
  if (status.ok()) status = session.Evaluate();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  for (const char* goal :
       {"result(1, C)", "result(2, C)", "result(3, C)", "result(7, C)"}) {
    auto result = session.Query(goal);
    if (!result.ok()) continue;
    for (const ldl::Tuple& tuple : result->tuples) {
      std::printf("  %s -> cost %lld\n", goal,
                  static_cast<long long>(tuple[1]->int_value()));
    }
  }
  std::printf("  (expected from the paper: tc({1}) = 245, tc({2}) = 45, "
              "tc({3}) = 25)\n\n");
  return 0;
}

int RunGeneratedInstance() {
  std::printf("== generated hierarchy, magic evaluation ==\n");
  // part_of/cost from the workload generator; rename to the program's p/q.
  ldl::BomWorkload workload = ldl::MakeBom(18, /*seed=*/7);
  ldl::Session session;
  ldl::Status status = session.Load(workload.facts);
  if (status.ok()) {
    status = session.Load(R"(
      p(P, S) :- part_of(P, S).
      q(X, C) :- cost(X, C).
    )");
  }
  if (status.ok()) status = session.Load(kBomProgram);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  // Query the root's cost through magic sets: only the part sets reachable
  // from the root are ever partitioned.
  ldl::QueryOptions magic;
  magic.strategy = ldl::QueryStrategy::kMagic;
  std::string goal = "result(" + workload.root + ", C)";
  auto result = session.Query(goal, magic);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  for (const ldl::Tuple& tuple : result->tuples) {
    std::printf("  %s -> cost %lld   (%zu parts, %zu leaves; %zu facts "
                "derived under magic)\n",
                goal.c_str(), static_cast<long long>(tuple[1]->int_value()),
                workload.part_count, workload.leaf_count,
                result->stats.facts_derived);
  }
  return 0;
}

}  // namespace

int main() {
  int rc = RunPaperInstance();
  if (rc != 0) return rc;
  return RunGeneratedInstance();
}
