// §4.2: complex head terms over the teacher/student/class/day relation --
// the paper's three worked groupings, under both the paper's semantics (ii)
// and the alternative (ii)'.
#include <cstdio>

#include <algorithm>

#include "ldl/ldl.h"

namespace {

constexpr const char* kFacts = R"(
  r(smith, ann, math, mon).
  r(smith, ann, math, wed).
  r(smith, bob, art,  mon).
  r(jones, ann, bio,  thu).
  r(jones, cat, bio,  thu).
)";

constexpr const char* kViews = R"(
  % (T, <S>, <D>): per teacher, the students and the days.
  by_teacher(T, <S>, <D>) :- r(T, S, C, D).

  % (T, <h(S, <D>)>): per teacher, tuples of (student, the student's days
  % across all teachers).
  with_days(T, <h(S, <D>)>) :- r(T, S, C, D).

  % ((T, S), <(C, <D>)>): per teacher/student pair, (class, days the class
  % is taught by anyone).
  classes((T, S), <(C, <D>)>) :- r(T, S, C, D).
)";

void Show(ldl::Session& session, const char* pred, uint32_t arity) {
  ldl::PredId id = session.catalog().Find(pred, arity);
  if (id == ldl::kInvalidPred) return;
  auto tuples = session.database().relation(id).Snapshot();
  std::vector<std::string> lines = FormatFacts(session, id, tuples);
  std::printf("%s:\n", pred);
  for (const std::string& line : lines) std::printf("  %s\n", line.c_str());
  std::printf("\n");
}

int Run(bool alternative) {
  ldl::Session session;
  if (alternative) {
    ldl::Ldl15Options options;
    options.alternative_grouping = true;
    session.set_ldl15_options(options);
  }
  ldl::Status status = session.Load(kFacts);
  if (status.ok()) status = session.Load(kViews);
  if (status.ok()) status = session.Evaluate();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("===== %s semantics =====\n\n",
              alternative ? "alternative (ii)'" : "paper (ii)");
  Show(session, "by_teacher", 3);
  Show(session, "with_days", 2);
  Show(session, "classes", 2);
  return 0;
}

}  // namespace

int main() {
  int rc = Run(/*alternative=*/false);
  if (rc == 0) rc = Run(/*alternative=*/true);
  return rc;
}
