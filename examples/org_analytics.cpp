// A fuller application: organizational analytics over an employee graph.
// Exercises the whole language surface together -- recursion (management
// chain), grouping (teams, skill sets), set built-ins (subset for staffing),
// stratified negation (unstaffable projects) -- and answers the same
// question with all three query strategies.
#include <cstdio>

#include "base/str_util.h"
#include "ldl/ldl.h"
#include "workload/workload.h"

namespace {

// Deterministic synthetic org: a management tree plus random skills.
std::string MakeOrg(size_t people, uint64_t seed) {
  ldl::Rng rng(seed);
  std::string out;
  const char* skills[] = {"sql", "cpp", "ml", "ops", "ui"};
  for (size_t i = 1; i < people; ++i) {
    ldl::StrAppend(out, "manages(e", rng.Below(i), ", e", i, ").\n");
  }
  for (size_t i = 0; i < people; ++i) {
    size_t k = 1 + rng.Below(3);
    for (size_t s = 0; s < k; ++s) {
      ldl::StrAppend(out, "has_skill(e", i, ", ", skills[rng.Below(5)], ").\n");
    }
  }
  // Projects and their required skills.
  out +=
      "needs(warehouse, sql). needs(warehouse, ops).\n"
      "needs(engine, cpp).\n"
      "needs(moonshot, ml). needs(moonshot, cpp). needs(moonshot, ui).\n";
  return out;
}

constexpr const char* kRules = R"(
  % Transitive management.
  reports_to(E, M) :- manages(M, E).
  reports_to(E, M) :- manages(M, X), reports_to(E, X).

  % Each manager's full organization, as a set.
  org(M, <E>) :- reports_to(E, M).

  % Skill profiles as sets.
  skill_set(E, <S>) :- has_skill(E, S).
  required(P, <S>) :- needs(P, S).

  % An employee can staff a project when the required skills are a subset
  % of theirs.
  can_staff(E, P) :- skill_set(E, Skills), required(P, Req),
                     subset(Req, Skills).

  % Projects nobody can staff alone.
  project(P) :- needs(P, _).
  person(E) :- has_skill(E, _).
  unstaffable(P) :- project(P), !can_staff(E, P).

  % Managers whose org contains someone for every project.
  versatile(M) :- org(M, Team), project(P), can_staff(E, P),
                  member(E, Team).
)";

void Show(ldl::Session& session, const char* title, const char* goal,
          const ldl::QueryOptions& options) {
  auto result = session.Query(goal, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", goal,
                 result.status().ToString().c_str());
    return;
  }
  std::printf("%-28s ? %-18s -> %zu answer(s), %zu facts derived\n", title,
              goal, result->tuples.size(), result->stats.facts_derived);
  size_t shown = 0;
  for (const ldl::Tuple& tuple : result->tuples) {
    if (++shown > 4) {
      std::printf("    ...\n");
      break;
    }
    std::printf("    %s\n", session.FormatTuple(tuple).c_str());
  }
}

}  // namespace

int main() {
  ldl::Session session;
  ldl::Status status = session.Load(MakeOrg(60, 11));
  if (status.ok()) status = session.Load(kRules);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }

  ldl::QueryOptions full;
  ldl::QueryOptions magic;
  magic.strategy = ldl::QueryStrategy::kMagic;
  ldl::QueryOptions topdown;
  topdown.strategy = ldl::QueryStrategy::kTopDown;

  Show(session, "full evaluation", "unstaffable(P)", full);
  Show(session, "full evaluation", "org(e0, Team)", full);
  Show(session, "magic sets", "reports_to(e42, M)", magic);
  Show(session, "top-down (memoized)", "reports_to(e42, M)", topdown);
  Show(session, "magic sets", "can_staff(E, moonshot)", magic);

  // Provenance for one answer.
  auto staffers = session.Query("can_staff(E, engine)");
  if (staffers.ok() && !staffers->tuples.empty()) {
    std::string fact = ldl::StrCat(
        "can_staff(", session.factory().ToString(staffers->tuples[0][0]),
        ", engine)");
    auto why = session.Explain(fact);
    if (why.ok()) {
      std::printf("\nwhy %s?\n%s", fact.c_str(), why->c_str());
    }
  }
  return 0;
}
