// §5: running Kuper's LPS bounded-universal rules through the LDL1
// translation (Theorem 3). Defines disj/2 and subset/2 over a generated
// catalog of candidate set pairs.
#include <cstdio>

#include <algorithm>

#include "eval/bindings.h"
#include "eval/engine.h"
#include "parser/parser.h"
#include "program/lower.h"
#include "program/stratify.h"
#include "rewrite/lps.h"

using namespace ldl;

namespace {

Status Run() {
  Interner interner;
  ProgramAst program;

  // disj(X, Y) <-- (ALL e1 in X)(ALL e2 in Y) e1 /= e2.
  {
    LpsRule rule;
    LDL_ASSIGN_OR_RETURN(rule.head, ParseLiteralText("disj(X, Y)", &interner));
    rule.quantifiers.push_back({interner.Intern("E1"), interner.Intern("X")});
    rule.quantifiers.push_back({interner.Intern("E2"), interner.Intern("Y")});
    LDL_ASSIGN_OR_RETURN(LiteralAst neq, ParseLiteralText("E1 /= E2", &interner));
    rule.body.push_back(neq);
    LDL_RETURN_IF_ERROR(
        TranslateLpsRule(rule, interner.Intern("pairs"), &interner, &program));
  }
  // subs(X, Y) <-- (ALL e in X) member(e, Y).
  {
    LpsRule rule;
    LDL_ASSIGN_OR_RETURN(rule.head, ParseLiteralText("subs(X, Y)", &interner));
    rule.quantifiers.push_back({interner.Intern("E"), interner.Intern("X")});
    LDL_ASSIGN_OR_RETURN(LiteralAst member,
                         ParseLiteralText("member(E, Y)", &interner));
    rule.body.push_back(member);
    LDL_RETURN_IF_ERROR(
        TranslateLpsRule(rule, interner.Intern("pairs"), &interner, &program));
  }

  // Candidate set pairs to test (the bottom-up domain; see rewrite/lps.h).
  LDL_ASSIGN_OR_RETURN(ProgramAst facts, ParseProgram(R"(
    pairs({1, 2}, {3, 4}).
    pairs({1, 2}, {2, 3}).
    pairs({1}, {1, 2, 3}).
    pairs({2, 3}, {1, 2, 3}).
    pairs({7}, {8}).
  )",
                                                      &interner));
  for (RuleAst& rule : facts.rules) program.rules.push_back(std::move(rule));

  TermFactory factory(&interner);
  Catalog catalog(&interner);
  LDL_ASSIGN_OR_RETURN(ProgramIr ir, LowerProgram(factory, catalog, program));
  LDL_ASSIGN_OR_RETURN(Stratification strat, Stratify(catalog, ir));
  Database db(&catalog);
  Engine engine(&factory, &catalog);
  LDL_RETURN_IF_ERROR(engine.EvaluateProgram(ir, strat, &db));

  for (const char* pred : {"disj", "subs"}) {
    PredId id = catalog.Find(pred, 2);
    std::vector<std::string> lines;
    for (const Tuple& tuple : db.relation(id).Snapshot()) {
      lines.push_back(FormatFact(factory, catalog, id, tuple));
    }
    std::sort(lines.begin(), lines.end());
    std::printf("%s holds for:\n", pred);
    for (const std::string& line : lines) std::printf("  %s\n", line.c_str());
  }
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
