// The paper's §1 set-enumeration example: bundles of up to three books
// whose total price stays under a budget. Demonstrates that enumerated sets
// deduplicate (a "triple" of the same cheap book is the singleton set) and
// that the same title at different prices collapses by title.
#include <cstdio>

#include "ldl/ldl.h"
#include "workload/workload.h"

int main() {
  ldl::Session session;
  ldl::Status status = session.Load(ldl::Books(12, /*max_price=*/60, /*seed=*/3));
  if (status.ok()) {
    status = session.Load(R"(
      book_deal({X, Y, Z}) :- book(X, Px), book(Y, Py), book(Z, Pz),
                              Px + Py + Pz < 100.
    )");
  }
  if (status.ok()) status = session.Evaluate();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }

  auto deals = session.Query("book_deal(S)");
  if (!deals.ok()) {
    std::fprintf(stderr, "query failed: %s\n", deals.status().ToString().c_str());
    return 1;
  }
  size_t singles = 0;
  size_t doubles = 0;
  size_t triples = 0;
  for (const ldl::Tuple& tuple : deals->tuples) {
    switch (tuple[0]->size()) {
      case 1: ++singles; break;
      case 2: ++doubles; break;
      default: ++triples; break;
    }
  }
  std::printf("book deals under 100: %zu total (%zu singletons, %zu pairs, "
              "%zu triples)\n",
              deals->tuples.size(), singles, doubles, triples);
  size_t shown = 0;
  for (const ldl::Tuple& tuple : deals->tuples) {
    if (++shown > 8) {
      std::printf("  ...\n");
      break;
    }
    std::printf("  book_deal%s\n", session.FormatTuple(tuple).c_str());
  }
  return 0;
}
