// The paper's §6 running example: young(X, S) holds when X has no
// descendants and S is the set of everyone in X's generation. Shows the
// full stratified evaluation and the Generalized Magic Sets evaluation for
// the bound query young(<leaf>, S), with derivation counts side by side.
#include <cstdio>

#include "base/str_util.h"
#include "ldl/ldl.h"
#include "workload/workload.h"

int main() {
  // A family forest: 3 sibling roots, branching 2, depth 4.
  ldl::SameGenerationWorkload workload = ldl::MakeSameGeneration(3, 2, 4);

  ldl::Session session;
  ldl::Status status = session.Load(workload.facts);
  if (status.ok()) {
    status = session.Load(R"(
      a(X, Y) :- p(X, Y).
      a(X, Y) :- a(X, Z), a(Z, Y).
      sg(X, Y) :- siblings(X, Y).
      sg(X, Y) :- p(Z1, X), sg(Z1, Z2), p(Z2, Y).
      young(X, <Y>) :- !a(X, Z), sg(X, Y).
    )");
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }

  std::string goal = ldl::StrCat("young(", workload.a_leaf, ", S)");
  std::printf("people: %zu   query: ? %s\n\n", workload.person_count,
              goal.c_str());

  // Full stratified evaluation, then match the goal against the model.
  auto full = session.Query(goal);
  if (!full.ok()) {
    std::fprintf(stderr, "full query failed: %s\n",
                 full.status().ToString().c_str());
    return 1;
  }
  std::printf("stratified evaluation: %zu facts derived, %zu answers\n",
              full->stats.facts_derived, full->tuples.size());

  // Magic evaluation of the same goal.
  ldl::QueryOptions magic;
  magic.strategy = ldl::QueryStrategy::kMagic;
  auto fast = session.Query(goal, magic);
  if (!fast.ok()) {
    std::fprintf(stderr, "magic query failed: %s\n",
                 fast.status().ToString().c_str());
    return 1;
  }
  std::printf("magic evaluation:      %zu facts derived, %zu answers\n\n",
              fast->stats.facts_derived, fast->tuples.size());

  for (const ldl::Tuple& tuple : fast->tuples) {
    std::printf("  young%s\n", session.FormatTuple(tuple).c_str());
  }

  // A person with descendants is not young (the query fails), and by the
  // semantics of <>, the query also fails when the generation set is empty.
  std::string inner_goal = ldl::StrCat("young(", workload.an_inner, ", S)");
  auto inner = session.Query(inner_goal, magic);
  if (inner.ok()) {
    std::printf("\n? %s  =>  %zu answers (has descendants)\n",
                inner_goal.c_str(), inner->tuples.size());
  }
  return 0;
}
