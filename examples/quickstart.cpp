// Quickstart: load an LDL1 program, evaluate it bottom-up, pose queries.
//
//   $ ./quickstart
//
// Covers the paper's §1 opening examples: the ancestor transitive closure
// and the two-layer excl_ancestor program with stratified negation.
#include <cstdio>

#include "ldl/ldl.h"

int main() {
  ldl::Session session;

  // Facts and rules in LDL1 concrete syntax. ":-", "<-" and "<--" are
  // interchangeable; "!p", "~p" and "not p" all negate.
  ldl::Status status = session.Load(R"(
    parent(abe, bob).   parent(abe, bea).
    parent(bob, carl).  parent(bea, cora).
    parent(carl, dina).

    ancestor(X, Y) :- parent(X, Y).
    ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).

    person(X) :- parent(X, _).
    person(X) :- parent(_, X).

    % X is an ancestor of Y but not of Z (paper §1, with an explicit person
    % domain for Z so the rule is safe bottom-up).
    excl_ancestor(X, Y, Z) :- ancestor(X, Y), person(Z), !ancestor(X, Z).

    % Group every person's descendants into one set.
    descendants(X, <Y>) :- ancestor(X, Y).
  )");
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Evaluate the stratified program (Theorem 1: the standard minimal model).
  status = session.Evaluate();
  if (!status.ok()) {
    std::fprintf(stderr, "evaluate failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const ldl::EvalStats& stats = session.last_eval_stats();
  std::printf("evaluated: %zu facts derived in %zu fixpoint rounds\n\n",
              stats.facts_derived, stats.iterations);

  auto show = [&](const char* goal) {
    auto result = session.Query(goal);
    if (!result.ok()) {
      std::fprintf(stderr, "query %s failed: %s\n", goal,
                   result.status().ToString().c_str());
      return;
    }
    std::printf("? %s  =>  %zu answers\n", goal, result->tuples.size());
    for (const ldl::Tuple& tuple : result->tuples) {
      std::printf("    %s\n", session.FormatTuple(tuple).c_str());
    }
  };

  show("ancestor(abe, X)");
  show("descendants(abe, S)");
  // abe is an ancestor of everyone else, so the only Z abe is *not* an
  // ancestor of is abe: the first query succeeds, the second fails.
  show("excl_ancestor(abe, carl, abe)");
  show("excl_ancestor(abe, carl, cora)");

  // The same ancestor query through the Generalized Magic Sets rewriting
  // (§6): same answers, far fewer derivations on large databases.
  ldl::QueryOptions magic;
  magic.strategy = ldl::QueryStrategy::kMagic;
  auto result = session.Query("ancestor(bob, X)", magic);
  if (result.ok()) {
    std::printf("\nmagic ? ancestor(bob, X)  =>  %zu answers, %zu facts derived\n",
                result->tuples.size(), result->stats.facts_derived);
  }
  return 0;
}
