// B11: concurrent serving throughput (ldl::Service). N reader threads
// answer a prepared kModel goal against the published snapshot, optionally
// while one writer thread applies fresh EDB deltas (AddFacts ->
// incremental maintenance -> snapshot republication). Reported counters:
//
//   qps         reader queries per second of wall time (manual timing)
//   lat_p50_us  per-query latency, 50th percentile (microseconds)
//   lat_p99_us  per-query latency, 99th percentile
//   snapshots   versions published over the whole run (writer arm only > 2)
//
// readers=1/writer=0 bounds the facade overhead against a bare
// Session::Query; the reader sweep shows snapshot reads scaling (on a
// multi-core host -- a single-core container serializes the threads, so
// qps stays flat there and only the isolation properties are exercised).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "ldl/service.h"
#include "workload/workload.h"

namespace {

constexpr size_t kChain = 256;            // anc over a 256-node parent chain
constexpr size_t kQueriesPerReader = 128;  // per iteration
constexpr size_t kWriterUpdates = 8;       // per iteration (writer arm)

double Percentile(std::vector<double>* sorted_us, double q) {
  if (sorted_us->empty()) return 0;
  size_t index = static_cast<size_t>(q * (sorted_us->size() - 1));
  return (*sorted_us)[index];
}

// args: {readers, with_writer}
void BM_ServiceServe(benchmark::State& state) {
  const size_t readers = static_cast<size_t>(state.range(0));
  const bool with_writer = state.range(1) != 0;

  ldl::Service service;
  std::string program = ldl::ParentChain(kChain, "parent");
  program +=
      "anc(X, Y) :- parent(X, Y).\n"
      "anc(X, Y) :- parent(X, Z), anc(Z, Y).\n";
  ldl::Status status = service.Load(program);
  if (!status.ok()) {
    state.SkipWithError(status.ToString().c_str());
    return;
  }
  auto prepared = service.Prepare("anc(p0, X)");
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  // Warm: materialize + compile the probe plan before timing.
  auto warm = service.Query(*prepared);
  if (!warm.ok() || warm->tuples.size() != kChain) {
    state.SkipWithError("warmup query failed");
    return;
  }

  std::vector<double> latencies_us;
  size_t total_queries = 0;
  std::atomic<size_t> fresh_constant{0};  // unique insert per writer update
  std::atomic<size_t> errors{0};
  for (auto _ : state) {
    std::vector<std::vector<double>> per_reader(readers);
    auto begin = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(readers + 1);
    for (size_t r = 0; r < readers; ++r) {
      threads.emplace_back([&, r] {
        std::vector<double>& latencies = per_reader[r];
        latencies.reserve(kQueriesPerReader);
        for (size_t i = 0; i < kQueriesPerReader; ++i) {
          auto t0 = std::chrono::steady_clock::now();
          auto result = service.Query(*prepared);
          auto t1 = std::chrono::steady_clock::now();
          // Writers only ever append disconnected components, so the
          // answer set of the probed chain never changes.
          if (!result.ok() || result->tuples.size() != kChain) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
          latencies.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
      });
    }
    if (with_writer) {
      threads.emplace_back([&] {
        for (size_t w = 0; w < kWriterUpdates; ++w) {
          size_t id = fresh_constant.fetch_add(1, std::memory_order_relaxed);
          std::string fact = "parent(zza" + std::to_string(id) + ", zzb" +
                             std::to_string(id) + ").";
          if (!service.AddFacts(fact).ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    auto end = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(end - begin).count());
    total_queries += readers * kQueriesPerReader;
    for (std::vector<double>& latencies : per_reader) {
      latencies_us.insert(latencies_us.end(), latencies.begin(),
                          latencies.end());
    }
  }
  if (errors.load() != 0) {
    state.SkipWithError("concurrent queries failed or saw a torn model");
    return;
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  state.counters["qps"] = benchmark::Counter(static_cast<double>(total_queries),
                                             benchmark::Counter::kIsRate);
  state.counters["lat_p50_us"] = Percentile(&latencies_us, 0.50);
  state.counters["lat_p99_us"] = Percentile(&latencies_us, 0.99);
  state.counters["snapshots"] =
      static_cast<double>(service.stats().snapshots_published);
}

}  // namespace

BENCHMARK(BM_ServiceServe)
    ->UseManualTime()
    ->ArgNames({"readers", "writer"})
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
