// B4: cost of the set-grouping operator (§2.2 semantics). Sweeps the number
// of groups (suppliers) and the group size (parts per supplier). Expected
// shape: near-linear in the number of input tuples; hash-consed canonical
// sets amortize duplicate groups.
#include "bench/bench_util.h"
#include "workload/workload.h"

namespace {

constexpr const char* kRules = "sp(S, <P>) :- supplies(S, P).\n";

void BM_GroupBySupplier(benchmark::State& state) {
  size_t suppliers = static_cast<size_t>(state.range(0));
  size_t parts_per = static_cast<size_t>(state.range(1));
  std::string facts =
      ldl::SupplierParts(suppliers, parts_per, /*part_pool=*/parts_per * 4,
                         /*seed=*/11);
  ldl::EvalOptions options;
  options.profile = ldl_bench::ProfileRequested();
  ldl::EvalStats last;
  ldl::EvalProfile last_profile;
  for (auto _ : state) {
    auto session = ldl_bench::MakeSession(state, facts, kRules);
    if (session == nullptr) return;
    ldl::Status status = session->Evaluate(options);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    last = session->last_eval_stats();
    if (options.profile) last_profile = session->last_eval_profile();
  }
  state.SetItemsProcessed(state.iterations() * suppliers * parts_per);
  ldl_bench::RecordStats(state, last);
  ldl_bench::MaybeDumpProfile("GroupBySupplier/" + std::to_string(suppliers) +
                                  "/" + std::to_string(parts_per),
                              last_profile);
}

// Grouping plus downstream set predicates: cardinality filter and member
// expansion back out of the set.
void BM_GroupAndReexpand(benchmark::State& state) {
  size_t suppliers = static_cast<size_t>(state.range(0));
  std::string facts = ldl::SupplierParts(suppliers, 12, 48, /*seed=*/13);
  const char* rules =
      "sp(S, <P>) :- supplies(S, P).\n"
      "big(S) :- sp(S, Ps), card(Ps, N), N >= 8.\n"
      "pair(S, P) :- sp(S, Ps), member(P, Ps).\n";
  ldl::EvalOptions options;
  options.profile = ldl_bench::ProfileRequested();
  ldl::EvalStats last;
  ldl::EvalProfile last_profile;
  for (auto _ : state) {
    auto session = ldl_bench::MakeSession(state, facts, rules);
    if (session == nullptr) return;
    ldl::Status status = session->Evaluate(options);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    last = session->last_eval_stats();
    if (options.profile) last_profile = session->last_eval_profile();
  }
  ldl_bench::RecordStats(state, last);
  ldl_bench::MaybeDumpProfile("GroupAndReexpand/" + std::to_string(suppliers),
                              last_profile);
}

// Evaluation-focused variants: the session (parse + analyze) is built once
// outside the timing loop, so the series isolates grouping *evaluation*.
// Each iteration drops the materialized model and re-derives it from the
// resident EDB.
void BM_GroupingEval(benchmark::State& state) {
  size_t suppliers = static_cast<size_t>(state.range(0));
  size_t parts_per = static_cast<size_t>(state.range(1));
  std::string facts =
      ldl::SupplierParts(suppliers, parts_per, /*part_pool=*/parts_per * 4,
                         /*seed=*/11);
  auto session = ldl_bench::MakeSession(state, facts, kRules);
  if (session == nullptr) return;
  ldl::EvalOptions options;
  options.profile = ldl_bench::ProfileRequested();
  for (auto _ : state) {
    session->InvalidateModel();
    ldl::Status status = session->Evaluate(options);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * suppliers * parts_per);
  ldl_bench::RecordStats(state, session->last_eval_stats());
  ldl_bench::MaybeDumpProfile("GroupingEval/" + std::to_string(suppliers) +
                                  "/" + std::to_string(parts_per),
                              session->last_eval_profile());
}

// An scons accumulator chain evaluated bottom-up: acc(k, {0..k-1}) grows by
// one SetInsert per fixpoint round, the quadratic set-construction pattern
// the term layer's merge-based SetInsert targets.
void BM_GroupingSconsAccumulate(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::string facts;
  for (size_t i = 0; i < n; ++i) {
    facts += "succ(" + std::to_string(i) + ", " + std::to_string(i + 1) + ").\n";
  }
  const char* rules =
      "acc(0, {}).\n"
      "acc(M, scons(N, S)) :- succ(N, M), acc(N, S).\n";
  auto session = ldl_bench::MakeSession(state, facts, rules);
  if (session == nullptr) return;
  ldl::EvalOptions options;
  options.profile = ldl_bench::ProfileRequested();
  for (auto _ : state) {
    session->InvalidateModel();
    ldl::Status status = session->Evaluate(options);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
  ldl_bench::RecordStats(state, session->last_eval_stats());
  ldl_bench::MaybeDumpProfile("GroupingSconsAccumulate/" + std::to_string(n),
                              session->last_eval_profile());
}

// Magic-path grouping: every query runs a saturating evaluation in a scratch
// database, recomputing groups each global round until fixpoint -- the loop
// the EvaluateSaturating group cache targets.
void BM_GroupingMagicQuery(benchmark::State& state) {
  size_t suppliers = static_cast<size_t>(state.range(0));
  std::string facts = ldl::SupplierParts(suppliers, 16, 64, /*seed=*/11);
  auto session = ldl_bench::MakeSession(state, facts, kRules);
  if (session == nullptr) return;
  ldl::QueryOptions options;
  options.strategy = ldl::QueryStrategy::kMagic;
  options.eval.profile = ldl_bench::ProfileRequested();
  ldl::EvalStats last;
  size_t answers = 0;
  for (auto _ : state) {
    auto result = session->Query("sp(s0, X)", options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    answers = result->tuples.size();
    last = result->stats;
  }
  benchmark::DoNotOptimize(answers);
  ldl_bench::RecordStats(state, last);
}

}  // namespace

BENCHMARK(BM_GroupBySupplier)
    ->Args({100, 10})->Args({400, 10})->Args({1600, 10})->Args({6400, 10})
    ->Args({400, 40})->Args({400, 160})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroupAndReexpand)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroupingEval)
    ->Args({400, 10})->Args({1600, 10})->Args({400, 40})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroupingSconsAccumulate)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroupingMagicQuery)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
