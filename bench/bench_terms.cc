// B6: term-infrastructure ablation. Hash-consing makes structural equality
// a pointer compare and set canonicalization a one-time cost; this is the
// "manual memory for terms" effort the reproduction band calls out.
// Micro-benchmarks: interning throughput, canonical set construction,
// set-pattern matching, substitution with scons evaluation.
#include <benchmark/benchmark.h>

#include <vector>

#include "term/term.h"
#include "term/term_ops.h"
#include "term/unify.h"
#include "workload/workload.h"

namespace {

using ldl::Interner;
using ldl::Subst;
using ldl::Term;
using ldl::TermFactory;

void BM_InternIntsHot(benchmark::State& state) {
  Interner interner;
  TermFactory factory(&interner);
  for (int i = 0; i < 1024; ++i) factory.MakeInt(i);  // warm
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(factory.MakeInt(i++ & 1023));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_InternFuncTerms(benchmark::State& state) {
  Interner interner;
  TermFactory factory(&interner);
  const Term* a = factory.MakeAtom("a");
  int64_t i = 0;
  for (auto _ : state) {
    const Term* args[] = {a, factory.MakeInt(i++ & 255)};
    benchmark::DoNotOptimize(factory.MakeFunc("f", args));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CanonicalSetConstruction(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Interner interner;
  TermFactory factory(&interner);
  ldl::Rng rng(7);
  std::vector<const Term*> elements;
  for (size_t i = 0; i < n; ++i) {
    elements.push_back(factory.MakeInt(static_cast<int64_t>(rng.Next() % 100000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(factory.MakeSet(elements));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_SetInsertChain(benchmark::State& state) {
  // scons-style incremental construction: n inserts, each re-canonicalizing.
  size_t n = static_cast<size_t>(state.range(0));
  Interner interner;
  TermFactory factory(&interner);
  for (auto _ : state) {
    const Term* set = factory.EmptySet();
    for (size_t i = 0; i < n; ++i) {
      set = factory.SetInsert(factory.MakeInt(static_cast<int64_t>(i)), set);
    }
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_PointerEqualityVsStructural(benchmark::State& state) {
  // With interning, deep equality is a pointer compare.
  Interner interner;
  TermFactory factory(&interner);
  std::vector<const Term*> sets;
  for (int s = 0; s < 64; ++s) {
    std::vector<const Term*> elements;
    for (int i = 0; i < 32; ++i) elements.push_back(factory.MakeInt(i + s));
    sets.push_back(factory.MakeSet(elements));
  }
  size_t i = 0;
  size_t equal = 0;
  for (auto _ : state) {
    const Term* a = sets[i & 63];
    const Term* b = sets[(i * 7 + 3) & 63];
    equal += (a == b);
    ++i;
  }
  benchmark::DoNotOptimize(equal);
  state.SetItemsProcessed(state.iterations());
}

void BM_MatchSetPattern(benchmark::State& state) {
  // {X, Y, Z} against an n-element ground set: the §2.2 enumerative match.
  size_t n = static_cast<size_t>(state.range(0));
  Interner interner;
  TermFactory factory(&interner);
  std::vector<const Term*> pattern_elems = {
      factory.MakeVar("X"), factory.MakeVar("Y"), factory.MakeVar("Z")};
  const Term* pattern = factory.MakeSet(pattern_elems);
  std::vector<const Term*> ground_elems;
  for (size_t i = 0; i < n; ++i) {
    ground_elems.push_back(factory.MakeInt(static_cast<int64_t>(i)));
  }
  const Term* ground = factory.MakeSet(ground_elems);
  Subst subst;
  for (auto _ : state) {
    size_t solutions = 0;
    ldl::MatchTerm(factory, pattern, ground, &subst, [&]() {
      ++solutions;
      return true;
    });
    benchmark::DoNotOptimize(solutions);
  }
}

void BM_ApplySubstWithScons(benchmark::State& state) {
  Interner interner;
  TermFactory factory(&interner);
  Subst subst;
  std::vector<const Term*> elements;
  for (int i = 0; i < 16; ++i) elements.push_back(factory.MakeInt(i));
  subst.Bind(interner.Intern("S"), factory.MakeSet(elements));
  subst.Bind(interner.Intern("X"), factory.MakeInt(99));
  const Term* scons_args[] = {factory.MakeVar("X"), factory.MakeVar("S")};
  const Term* pattern = factory.MakeFunc("scons", scons_args);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ldl::ApplySubst(factory, pattern, subst));
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_InternIntsHot);
BENCHMARK(BM_InternFuncTerms);
BENCHMARK(BM_CanonicalSetConstruction)->Arg(4)->Arg(32)->Arg(256);
BENCHMARK(BM_SetInsertChain)->Arg(8)->Arg(64)->Arg(256);
BENCHMARK(BM_PointerEqualityVsStructural);
BENCHMARK(BM_MatchSetPattern)->Arg(2)->Arg(3)->Arg(5);
BENCHMARK(BM_ApplySubstWithScons);

BENCHMARK_MAIN();
