// B1: §6's efficiency claim on the classic recursive workload. A bound
// ancestor query over a parent chain of n people: full (semi-naive)
// evaluation materializes the O(n^2) closure, magic evaluation touches only
// the ~n/12 relevant suffix. Expected shape: magic wins by a factor that
// grows with n.
#include "base/str_util.h"
#include "bench/bench_util.h"
#include "workload/workload.h"

namespace {

constexpr const char* kRules =
    "a(X, Y) :- p(X, Y).\n"
    "a(X, Y) :- p(X, Z), a(Z, Y).\n";

// The query target sits near the end of the chain: only a short suffix is
// relevant.
std::string Goal(size_t n) {
  return ldl::StrCat("a(p", n - n / 12 - 1, ", X)");
}

void BM_AncestorFull(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::string facts = ldl::ParentChain(n, "p");
  std::string goal = Goal(n);
  ldl::QueryOptions options;
  options.eval.profile = ldl_bench::ProfileRequested();
  ldl::EvalStats last;
  ldl::EvalProfile last_profile;
  for (auto _ : state) {
    auto session = ldl_bench::MakeSession(state, facts, kRules);
    if (session == nullptr) return;
    auto result = session->Query(goal, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->tuples.size());
    last = result->stats;
    if (options.eval.profile) last_profile = result->profile;
  }
  ldl_bench::RecordStats(state, last);
  ldl_bench::MaybeDumpProfile(ldl::StrCat("AncestorFull/", n), last_profile);
}

// Thread sweep of the full evaluation: args are {chain length, worker
// threads}. The materialized closure is the parallel engine's target
// workload -- big deltas that shard across the pool.
void BM_AncestorFullThreads(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::string facts = ldl::ParentChain(n, "p");
  std::string goal = Goal(n);
  ldl::QueryOptions options;
  options.eval.num_threads = static_cast<int>(state.range(1));
  options.eval.profile = ldl_bench::ProfileRequested();
  ldl::EvalStats last;
  ldl::EvalProfile last_profile;
  for (auto _ : state) {
    auto session = ldl_bench::MakeSession(state, facts, kRules);
    if (session == nullptr) return;
    auto result = session->Query(goal, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->tuples.size());
    last = result->stats;
    if (options.eval.profile) last_profile = result->profile;
  }
  ldl_bench::RecordStats(state, last);
  ldl_bench::MaybeDumpProfile(
      ldl::StrCat("AncestorFullThreads/", n, "/", state.range(1)),
      last_profile);
}

void BM_AncestorMagic(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::string facts = ldl::ParentChain(n, "p");
  std::string goal = Goal(n);
  ldl::QueryOptions options;
  options.strategy = ldl::QueryStrategy::kMagic;
  options.eval.profile = ldl_bench::ProfileRequested();
  ldl::EvalStats last;
  ldl::EvalProfile last_profile;
  for (auto _ : state) {
    auto session = ldl_bench::MakeSession(state, facts, kRules);
    if (session == nullptr) return;
    auto result = session->Query(goal, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->tuples.size());
    last = result->stats;
    if (options.eval.profile) last_profile = result->profile;
  }
  ldl_bench::RecordStats(state, last);
  ldl_bench::MaybeDumpProfile(ldl::StrCat("AncestorMagic/", n), last_profile);
}

// Random-tree variant: the relevant subgraph is the subtree below the
// queried node.
// Memoized top-down baseline: the strategy magic sets mimic bottom-up.
void BM_AncestorTopDown(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::string facts = ldl::ParentChain(n, "p");
  std::string goal = Goal(n);
  ldl::QueryOptions options;
  options.strategy = ldl::QueryStrategy::kTopDown;
  options.eval.profile = ldl_bench::ProfileRequested();
  ldl::EvalStats last;
  ldl::EvalProfile last_profile;
  for (auto _ : state) {
    auto session = ldl_bench::MakeSession(state, facts, kRules);
    if (session == nullptr) return;
    auto result = session->Query(goal, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->tuples.size());
    last = result->stats;
    if (options.eval.profile) last_profile = result->profile;
  }
  ldl_bench::RecordStats(state, last);
  ldl_bench::MaybeDumpProfile(ldl::StrCat("AncestorTopDown/", n), last_profile);
}

// Supplementary-magic ablation: same answers, shared prefix joins.
void BM_AncestorSupplementary(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::string facts = ldl::ParentChain(n, "p");
  std::string goal = Goal(n);
  ldl::QueryOptions options;
  options.strategy = ldl::QueryStrategy::kMagicSupplementary;
  options.eval.profile = ldl_bench::ProfileRequested();
  ldl::EvalStats last;
  ldl::EvalProfile last_profile;
  for (auto _ : state) {
    auto session = ldl_bench::MakeSession(state, facts, kRules);
    if (session == nullptr) return;
    auto result = session->Query(goal, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->tuples.size());
    last = result->stats;
    if (options.eval.profile) last_profile = result->profile;
  }
  ldl_bench::RecordStats(state, last);
  ldl_bench::MaybeDumpProfile(ldl::StrCat("AncestorSupplementary/", n),
                              last_profile);
}

void BM_AncestorTreeMagic(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::string facts = ldl::ParentRandomTree(n, /*seed=*/17, "p");
  std::string goal = ldl::StrCat("a(p", n / 2, ", X)");
  ldl::QueryOptions options;
  options.strategy = ldl::QueryStrategy::kMagic;
  options.eval.profile = ldl_bench::ProfileRequested();
  ldl::EvalStats last;
  ldl::EvalProfile last_profile;
  for (auto _ : state) {
    auto session = ldl_bench::MakeSession(state, facts, kRules);
    if (session == nullptr) return;
    auto result = session->Query(goal, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    last = result->stats;
    if (options.eval.profile) last_profile = result->profile;
  }
  ldl_bench::RecordStats(state, last);
  ldl_bench::MaybeDumpProfile(ldl::StrCat("AncestorTreeMagic/", n),
                              last_profile);
}

}  // namespace

// Full evaluation is quadratic in n; cap its sweep lower.
BENCHMARK(BM_AncestorFull)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AncestorFullThreads)
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4})
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_AncestorMagic)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AncestorSupplementary)->Arg(128)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AncestorTopDown)->Arg(128)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AncestorTreeMagic)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
