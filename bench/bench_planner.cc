// B12: cost-based join ordering vs the syntactic most-bound-args heuristic
// (DESIGN.md §11).
//
// SkewedJoin: a three-way join whose textual order explodes an intermediate
// result. The syntactic orderer starts with `big` (textual tie at zero bound
// arguments) and fans every row out through `fan` (fan-out F per key) before
// `sel` filters, doing ~N*F index probes; the cost-based planner sees the
// cardinalities, starts from the 4-row `sel`, and probes back through `fan`
// and `big` in ~N operations. Both orders derive the same N-fact model, so
// the gap is pure join-order work and grows with F.
//
// DeltaDrift: non-linear closure through a tiny mapping relation. The
// entry-time orders are priced against an empty IDB; as the fixpoint grows
// `t`, the cheap side of the delta variants flips and adaptive replanning
// (EvalStats::replans) switches orders mid-run.
#include <string>

#include "base/str_util.h"
#include "bench/bench_util.h"

namespace {

constexpr const char* kSkewedRules =
    "join(X, Y) :- big(X, Z), fan(Z, W), sel(W, Y).\n";

// `big` is skewed onto 4 join keys, each `fan`ning out to kFanOut distinct
// values, of which `sel` keeps one per key.
constexpr size_t kFanOut = 32;

std::string SkewedFacts(size_t n) {
  std::string facts;
  facts.reserve(n * 24);
  for (size_t i = 0; i < n; ++i) {
    ldl::StrAppend(facts, "big(b", i, ", k", i % 4, ").\n");
  }
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < kFanOut; ++j) {
      ldl::StrAppend(facts, "fan(k", i, ", w", i, "_", j, ").\n");
    }
    ldl::StrAppend(facts, "sel(w", i, "_0, s", i, ").\n");
  }
  return facts;
}

// Chain closure whose recursive rule has three positive literals, so the
// delta variant pinning the second occurrence has a real ordering choice
// (probe the growing `t` vs the constant `f`) that flips as `t` grows.
constexpr const char* kDriftRules =
    "t(X, Y) :- e(X, Y).\n"
    "t(X, W) :- t(X, Z), t(Z, Y), f(Y, W).\n";

std::string DriftFacts(size_t n) {
  std::string facts;
  facts.reserve(n * 28);
  for (size_t i = 0; i + 1 < n; ++i) {
    ldl::StrAppend(facts, "e(c", i, ", c", i + 1, ").\n");
  }
  for (size_t i = 0; i < n; ++i) {
    ldl::StrAppend(facts, "f(c", i, ", c", i, ").\n");
  }
  return facts;
}

void RunPlanner(benchmark::State& state, const std::string& facts,
                const char* rules, bool cost_based, const char* name) {
  ldl::EvalOptions options;
  options.cost_based = cost_based;
  options.profile = ldl_bench::ProfileRequested();
  ldl::EvalStats last;
  ldl::EvalProfile last_profile;
  // Session (parsing, analysis) set up once; each iteration re-materializes
  // the model so the timed region is the evaluation under the chosen
  // planning mode.
  auto session = ldl_bench::MakeSession(state, facts, rules);
  if (session == nullptr) return;
  for (auto _ : state) {
    session->InvalidateModel();
    ldl::Status status = session->Evaluate(options);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    last = session->last_eval_stats();
    if (options.profile) last_profile = session->last_eval_profile();
  }
  ldl_bench::RecordStats(state, last);
  ldl_bench::MaybeDumpProfile(
      name + ("/" + std::to_string(state.range(0))), last_profile);
}

void BM_SkewedJoinSyntactic(benchmark::State& state) {
  RunPlanner(state, SkewedFacts(static_cast<size_t>(state.range(0))),
             kSkewedRules, /*cost_based=*/false, "SkewedJoinSyntactic");
}
void BM_SkewedJoinCostBased(benchmark::State& state) {
  RunPlanner(state, SkewedFacts(static_cast<size_t>(state.range(0))),
             kSkewedRules, /*cost_based=*/true, "SkewedJoinCostBased");
}
void BM_DeltaDriftSyntactic(benchmark::State& state) {
  RunPlanner(state, DriftFacts(static_cast<size_t>(state.range(0))),
             kDriftRules, /*cost_based=*/false, "DeltaDriftSyntactic");
}
void BM_DeltaDriftCostBased(benchmark::State& state) {
  RunPlanner(state, DriftFacts(static_cast<size_t>(state.range(0))),
             kDriftRules, /*cost_based=*/true, "DeltaDriftCostBased");
}

}  // namespace

BENCHMARK(BM_SkewedJoinSyntactic)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SkewedJoinCostBased)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DeltaDriftSyntactic)->Arg(48)->Arg(96)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DeltaDriftCostBased)->Arg(48)->Arg(96)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
