// Shared helpers for the benchmark binaries. Each bench reproduces one
// claim from DESIGN.md (B1-B11) and prints the series EXPERIMENTS.md records.
#ifndef LDL1_BENCH_BENCH_UTIL_H_
#define LDL1_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "ldl/ldl.h"

namespace ldl_bench {

// Profiling hook for `run_benches.sh --profile`: when LDL_BENCH_PROFILE_DIR
// names a directory, the evaluation benches flip EvalOptions::profile on and
// dump the last iteration's per-rule profile to <dir>/<name>.profile.json.
// With the variable unset (every normal timing run) both helpers are no-ops,
// so profiling cost never leaks into the recorded series.
inline const char* ProfileDir() { return std::getenv("LDL_BENCH_PROFILE_DIR"); }

inline bool ProfileRequested() { return ProfileDir() != nullptr; }

inline void MaybeDumpProfile(const std::string& name,
                             const ldl::EvalProfile& profile) {
  const char* dir = ProfileDir();
  if (dir == nullptr) return;
  std::string file = name;
  for (char& c : file) {
    if (c == '/' || c == ' ') c = '_';
  }
  std::ofstream out(std::string(dir) + "/" + file + ".profile.json");
  out << profile.ToJson() << '\n';
}

// Builds a fresh session with `facts` and `rules` loaded; aborts the
// benchmark on error.
inline std::unique_ptr<ldl::Session> MakeSession(benchmark::State& state,
                                                 const std::string& facts,
                                                 const std::string& rules) {
  auto session = std::make_unique<ldl::Session>();
  ldl::Status status = session->Load(facts);
  if (status.ok()) status = session->Load(rules);
  if (status.ok()) status = session->Analyze();
  if (!status.ok()) {
    state.SkipWithError(status.ToString().c_str());
    return nullptr;
  }
  return session;
}

inline void RecordStats(benchmark::State& state, const ldl::EvalStats& stats) {
  state.counters["facts"] = static_cast<double>(stats.facts_derived);
  state.counters["solutions"] = static_cast<double>(stats.solutions);
  state.counters["rounds"] = static_cast<double>(stats.iterations);
  state.counters["matched"] = static_cast<double>(stats.tuples_matched);
  state.counters["probes"] = static_cast<double>(stats.index_probes);
  state.counters["probe_hits"] = static_cast<double>(stats.probe_hits);
  state.counters["plan_hits"] = static_cast<double>(stats.plan_cache_hits);
  // Incremental-maintenance counters (zero for full evaluations).
  state.counters["strata_skipped"] = static_cast<double>(stats.strata_skipped);
  state.counters["strata_delta"] = static_cast<double>(stats.strata_delta);
  state.counters["strata_recomputed"] =
      static_cast<double>(stats.strata_recomputed);
  state.counters["strata_regrown"] = static_cast<double>(stats.strata_regrown);
  // Incremental-deletion counters (DESIGN.md §10).
  state.counters["strata_overdeleted"] =
      static_cast<double>(stats.strata_overdeleted);
  state.counters["rederive_rounds"] =
      static_cast<double>(stats.rederive_rounds);
  state.counters["count_decrements"] =
      static_cast<double>(stats.count_decrements);
  // Set-term / grouping fast-path counters (DESIGN.md §8).
  state.counters["groups_built"] = static_cast<double>(stats.groups_built);
  state.counters["groups_reused"] = static_cast<double>(stats.groups_reused);
  state.counters["group_regrows"] = static_cast<double>(stats.group_regrows);
  state.counters["set_interns"] = static_cast<double>(stats.set_interns);
  // Cost-based planner counters (DESIGN.md §11).
  state.counters["plans_reordered"] =
      static_cast<double>(stats.plans_reordered);
  state.counters["replans"] = static_cast<double>(stats.replans);
}

}  // namespace ldl_bench

#endif  // LDL1_BENCH_BENCH_UTIL_H_
