// Shared helpers for the benchmark binaries. Each bench reproduces one
// claim from DESIGN.md (B1-B8) and prints the series EXPERIMENTS.md records.
#ifndef LDL1_BENCH_BENCH_UTIL_H_
#define LDL1_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "ldl/ldl.h"

namespace ldl_bench {

// Builds a fresh session with `facts` and `rules` loaded; aborts the
// benchmark on error.
inline std::unique_ptr<ldl::Session> MakeSession(benchmark::State& state,
                                                 const std::string& facts,
                                                 const std::string& rules) {
  auto session = std::make_unique<ldl::Session>();
  ldl::Status status = session->Load(facts);
  if (status.ok()) status = session->Load(rules);
  if (status.ok()) status = session->Analyze();
  if (!status.ok()) {
    state.SkipWithError(status.ToString().c_str());
    return nullptr;
  }
  return session;
}

inline void RecordStats(benchmark::State& state, const ldl::EvalStats& stats) {
  state.counters["facts"] = static_cast<double>(stats.facts_derived);
  state.counters["solutions"] = static_cast<double>(stats.solutions);
  state.counters["rounds"] = static_cast<double>(stats.iterations);
  state.counters["matched"] = static_cast<double>(stats.tuples_matched);
  state.counters["probes"] = static_cast<double>(stats.index_probes);
  state.counters["probe_hits"] = static_cast<double>(stats.probe_hits);
  state.counters["plan_hits"] = static_cast<double>(stats.plan_cache_hits);
}

}  // namespace ldl_bench

#endif  // LDL1_BENCH_BENCH_UTIL_H_
