// B5: cost of the §3.1 layering analysis (dependency graph + Tarjan SCC +
// minimal layer assignment) on synthetic programs of growing size.
// Expected shape: near-linear in the number of rules.
#include <benchmark/benchmark.h>

#include "parser/parser.h"
#include "program/lower.h"
#include "program/stratify.h"
#include "workload/workload.h"

namespace {

void BM_Stratify(benchmark::State& state) {
  size_t layers = static_cast<size_t>(state.range(0));
  size_t per_layer = static_cast<size_t>(state.range(1));
  std::string source = ldl::SyntheticStratifiedProgram(layers, per_layer);

  ldl::Interner interner;
  ldl::TermFactory factory(&interner);
  ldl::Catalog catalog(&interner);
  auto ast = ldl::ParseProgram(source, &interner);
  if (!ast.ok()) {
    state.SkipWithError(ast.status().ToString().c_str());
    return;
  }
  auto ir = ldl::LowerProgram(factory, catalog, *ast);
  if (!ir.ok()) {
    state.SkipWithError(ir.status().ToString().c_str());
    return;
  }

  for (auto _ : state) {
    auto strat = ldl::Stratify(catalog, *ir);
    if (!strat.ok()) {
      state.SkipWithError(strat.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(strat->strata.size());
  }
  state.counters["rules"] = static_cast<double>(ir->rules.size());
  state.counters["preds"] = static_cast<double>(catalog.size());
  state.SetItemsProcessed(state.iterations() * ir->rules.size());
}

void BM_ParseAndLower(benchmark::State& state) {
  size_t layers = static_cast<size_t>(state.range(0));
  std::string source = ldl::SyntheticStratifiedProgram(layers, 4);
  for (auto _ : state) {
    ldl::Interner interner;
    ldl::TermFactory factory(&interner);
    ldl::Catalog catalog(&interner);
    auto ast = ldl::ParseProgram(source, &interner);
    if (!ast.ok()) {
      state.SkipWithError(ast.status().ToString().c_str());
      return;
    }
    auto ir = ldl::LowerProgram(factory, catalog, *ast);
    benchmark::DoNotOptimize(ir.ok());
  }
  state.SetBytesProcessed(state.iterations() * source.size());
}

}  // namespace

BENCHMARK(BM_Stratify)
    ->Args({16, 4})->Args({64, 4})->Args({256, 4})->Args({1024, 4})
    ->Args({256, 16});
BENCHMARK(BM_ParseAndLower)->Arg(64)->Arg(256)->Arg(1024);

BENCHMARK_MAIN();
