#!/usr/bin/env bash
# Runs every Google-benchmark binary in the build tree and collects the
# results into one JSON array at BENCH_engine.json (repo root by default).
#
# Usage: bench/run_benches.sh [--threads] [build_dir] [output_json]
#   --threads    run only the worker-pool sweep benchmarks (names matching
#                'Threads') and APPEND their reports to the output JSON
#                instead of rewriting it
#   build_dir    defaults to ./build
#   output_json  defaults to <repo_root>/BENCH_engine.json
#
# Pass a benchmark filter through BENCH_FILTER, e.g.
#   BENCH_FILTER='TcSemiNaive|AncestorMagic' bench/run_benches.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
append=0
if [[ "${1:-}" == "--threads" ]]; then
  append=1
  shift
fi
build_dir="${1:-${repo_root}/build}"
output="${2:-${repo_root}/BENCH_engine.json}"
filter="${BENCH_FILTER:-}"
if [[ ${append} -eq 1 ]]; then
  filter="${filter:-Threads}"
fi

bench_dir="${build_dir}/bench"
if [[ ! -d "${bench_dir}" ]]; then
  echo "error: ${bench_dir} not found; configure and build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

runs=()
for binary in "${bench_dir}"/bench_*; do
  [[ -x "${binary}" && -f "${binary}" ]] || continue
  name="$(basename "${binary}")"
  json="${tmp_dir}/${name}.json"
  echo "== ${name}" >&2
  args=(--benchmark_format=json --benchmark_out="${json}" \
        --benchmark_out_format=json)
  if [[ -n "${filter}" ]]; then
    args+=("--benchmark_filter=${filter}")
  fi
  "${binary}" "${args[@]}" > /dev/null || {
    echo "warning: ${name} exited nonzero; skipping" >&2
    continue
  }
  # A filter that matches nothing leaves an empty report behind.
  [[ -s "${json}" ]] || continue
  runs+=("${json}")
done

if [[ ${#runs[@]} -eq 0 ]]; then
  echo "error: no bench_* binaries under ${bench_dir}" >&2
  exit 1
fi

# Concatenate the per-binary reports into one JSON array, tagging each entry
# with the binary it came from. In append mode, existing entries are kept and
# the new reports are added after them.
APPEND="${append}" python3 - "${output}" "${runs[@]}" <<'PY'
import json
import os
import sys

output, *paths = sys.argv[1:]
merged = []
if os.environ.get("APPEND") == "1" and os.path.exists(output):
    with open(output) as f:
        merged = json.load(f)
for path in paths:
    with open(path) as f:
        report = json.load(f)
    report["binary"] = os.path.basename(path)[: -len(".json")]
    merged.append(report)
with open(output, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {output} ({len(merged)} benchmark binaries)")
PY
