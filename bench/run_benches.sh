#!/usr/bin/env bash
# Runs every Google-benchmark binary in the build tree and collects the
# results into one JSON array at BENCH_engine.json (repo root by default).
#
# Usage: bench/run_benches.sh [--threads | --profile | --filter <regex>] \
#                              [build_dir] [output_json]
#   --threads    run only the worker-pool sweep benchmarks (names matching
#                'Threads') and APPEND their reports to the output JSON
#                instead of rewriting it
#   --profile    re-run the evaluation benches with per-rule profiling on
#                (LDL_BENCH_PROFILE_DIR) and collect the EvalProfile JSON each
#                benchmark dumps into BENCH_profile.json, keyed by benchmark
#                name; wall times in the profiles include the profiling
#                overhead, so the timing series of record stays BENCH_engine.json
#   --filter RE  run only the benchmarks whose names match RE and print their
#                deltas against the committed baseline WITHOUT touching the
#                output JSON -- a quick check of the benches a change targets
#                that cannot invalidate the committed full-suite report
#   build_dir    defaults to ./build
#   output_json  defaults to <repo_root>/BENCH_engine.json
#                (<repo_root>/BENCH_profile.json under --profile)
#
# Pass a benchmark filter through BENCH_FILTER, e.g.
#   BENCH_FILTER='TcSemiNaive|AncestorMagic' bench/run_benches.sh
# (unlike --filter, BENCH_FILTER alone still rewrites the output JSON).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
append=0
profile=0
no_write=0
if [[ "${1:-}" == "--threads" ]]; then
  append=1
  shift
elif [[ "${1:-}" == "--profile" ]]; then
  profile=1
  shift
elif [[ "${1:-}" == "--filter" ]]; then
  no_write=1
  shift
  if [[ -z "${1:-}" ]]; then
    echo "error: --filter needs a benchmark-name regex" >&2
    exit 1
  fi
  BENCH_FILTER="$1"
  shift
fi
build_dir="${1:-${repo_root}/build}"
default_output="${repo_root}/BENCH_engine.json"
if [[ ${profile} -eq 1 ]]; then
  default_output="${repo_root}/BENCH_profile.json"
fi
output="${2:-${default_output}}"
filter="${BENCH_FILTER:-}"
if [[ ${append} -eq 1 ]]; then
  filter="${filter:-Threads}"
fi

bench_dir="${build_dir}/bench"
if [[ ! -d "${bench_dir}" ]]; then
  echo "error: ${bench_dir} not found; configure and build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

# Refuse to record timings from an unoptimized engine. The gate reads the
# repo's own CMakeCache (the Debian libbenchmark package self-reports
# library_build_type "debug" no matter how we build, so that field cannot be
# trusted); the build type lands on every merged entry as engine_build_type.
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
  "${build_dir}/CMakeCache.txt" 2>/dev/null || true)"
case "${build_type}" in
  Release|RelWithDebInfo) ;;
  *)
    echo "error: ${build_dir} is configured as '${build_type:-<empty>}';" >&2
    echo "benchmark timings are only recorded from an optimized build." >&2
    echo "Reconfigure first:" >&2
    echo "  cmake -B ${build_dir} -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo" >&2
    echo "  cmake --build ${build_dir} -j" >&2
    exit 1
    ;;
esac
export ENGINE_BUILD_TYPE="${build_type}"

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

if [[ ${profile} -eq 1 ]]; then
  # Each evaluation benchmark writes <name>.profile.json here (bench_util.h);
  # one short iteration per benchmark is enough for a profile.
  export LDL_BENCH_PROFILE_DIR="${tmp_dir}/profiles"
  mkdir -p "${LDL_BENCH_PROFILE_DIR}"
fi

runs=()
for binary in "${bench_dir}"/bench_*; do
  [[ -x "${binary}" && -f "${binary}" ]] || continue
  name="$(basename "${binary}")"
  json="${tmp_dir}/${name}.json"
  echo "== ${name}" >&2
  args=(--benchmark_format=json --benchmark_out="${json}" \
        --benchmark_out_format=json)
  if [[ ${profile} -eq 1 ]]; then
    args+=(--benchmark_min_time=0.01)
  fi
  if [[ -n "${filter}" ]]; then
    args+=("--benchmark_filter=${filter}")
  fi
  "${binary}" "${args[@]}" > /dev/null || {
    echo "warning: ${name} exited nonzero; skipping" >&2
    continue
  }
  # A filter that matches nothing leaves an empty report behind.
  [[ -s "${json}" ]] || continue
  runs+=("${json}")
done

if [[ ${#runs[@]} -eq 0 ]]; then
  echo "error: no bench_* binaries under ${bench_dir}" >&2
  exit 1
fi

if [[ ${profile} -eq 1 ]]; then
  # Merge the per-benchmark EvalProfile dumps into one object keyed by
  # benchmark name ('/' in names became '_' in the file names).
  python3 - "${output}" "${LDL_BENCH_PROFILE_DIR}" <<'PY'
import json
import os
import sys

output, profile_dir = sys.argv[1:]
merged = {}
for entry in sorted(os.listdir(profile_dir)):
    if not entry.endswith(".profile.json"):
        continue
    with open(os.path.join(profile_dir, entry)) as f:
        merged[entry[: -len(".profile.json")]] = json.load(f)
if not merged:
    sys.exit("error: no benchmark wrote a profile; rebuild the bench binaries")
with open(output, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {output} ({len(merged)} benchmark profiles)")
PY
  exit 0
fi

# Concatenate the per-binary reports into one JSON array, tagging each entry
# with the binary it came from. In append mode, existing entries are kept and
# the new reports are added after them. Before overwriting, each benchmark's
# real_time is compared against the previously committed report so a run
# prints a one-line delta per benchmark (regressions are visible without
# diffing JSON by hand). Under --filter the deltas are the whole point: the
# subset run prints them and leaves the committed report untouched.
APPEND="${append}" NO_WRITE="${no_write}" \
  python3 - "${output}" "${runs[@]}" <<'PY'
import json
import os
import sys

output, *paths = sys.argv[1:]
merged = []
baseline = {}
if os.path.exists(output):
    with open(output) as f:
        previous = json.load(f)
    if os.environ.get("APPEND") == "1":
        merged = previous
    for report in previous:
        for bench in report.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            baseline.setdefault(bench["name"], bench.get("real_time"))
for path in paths:
    with open(path) as f:
        report = json.load(f)
    report["binary"] = os.path.basename(path)[: -len(".json")]
    # The repo engine's build type (gated above); the library_build_type the
    # benchmark library reports describes libbenchmark itself, not libldl1.
    report["engine_build_type"] = os.environ.get("ENGINE_BUILD_TYPE", "")
    merged.append(report)
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name, new = bench["name"], bench.get("real_time")
        unit = bench.get("time_unit", "ns")
        old = baseline.get(name)
        if old and new is not None:
            pct = 100.0 * (new - old) / old
            print(f"  {name}: {old:.3g} -> {new:.3g} {unit} ({pct:+.1f}%)")
        elif new is not None:
            print(f"  {name}: {new:.3g} {unit} (new)")
if os.environ.get("NO_WRITE") == "1":
    print(f"left {output} untouched (--filter run)")
else:
    with open(output, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"wrote {output} ({len(merged)} benchmark binaries)")
PY
