// B7: LDL1.5 -> LDL1 macro expansion (§4) overhead. The paper presents the
// extensions as compile-time rewrites; this bench verifies the expansion is
// negligible next to evaluation (microseconds per rule).
#include <benchmark/benchmark.h>

#include "base/str_util.h"
#include "parser/parser.h"
#include "rewrite/ldl15.h"
#include "rewrite/neg_to_grouping.h"

namespace {

std::string ComplexHeadProgram(size_t rules) {
  std::string out;
  for (size_t i = 0; i < rules; ++i) {
    ldl::StrAppend(out, "v", i, "(T, <h(S, <D>)>) :- r", i, "(T, S, C, D).\n");
  }
  return out;
}

std::string BodyPatternProgram(size_t rules) {
  std::string out;
  for (size_t i = 0; i < rules; ++i) {
    ldl::StrAppend(out, "e", i, "(X) :- s", i, "(<f(X, <Y>)>).\n");
  }
  return out;
}

std::string NegationProgram(size_t rules) {
  std::string out;
  for (size_t i = 0; i < rules; ++i) {
    ldl::StrAppend(out, "d", i, "(X) :- p", i, "(X), !q", i, "(X).\n");
  }
  return out;
}

void RunExpansion(benchmark::State& state, const std::string& source) {
  for (auto _ : state) {
    ldl::Interner interner;
    auto ast = ldl::ParseProgram(source, &interner);
    if (!ast.ok()) {
      state.SkipWithError(ast.status().ToString().c_str());
      return;
    }
    auto expanded = ldl::ExpandLdl15(*ast, &interner);
    if (!expanded.ok()) {
      state.SkipWithError(expanded.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(expanded->rules.size());
  }
}

void BM_ExpandComplexHeads(benchmark::State& state) {
  RunExpansion(state, ComplexHeadProgram(static_cast<size_t>(state.range(0))));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ExpandBodyPatterns(benchmark::State& state) {
  RunExpansion(state, BodyPatternProgram(static_cast<size_t>(state.range(0))));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_EliminateNegation(benchmark::State& state) {
  std::string source = NegationProgram(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    ldl::Interner interner;
    auto ast = ldl::ParseProgram(source, &interner);
    if (!ast.ok()) {
      state.SkipWithError(ast.status().ToString().c_str());
      return;
    }
    auto positive = ldl::EliminateNegation(*ast, &interner);
    if (!positive.ok()) {
      state.SkipWithError(positive.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(positive->rules.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

}  // namespace

BENCHMARK(BM_ExpandComplexHeads)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_ExpandBodyPatterns)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_EliminateNegation)->Arg(16)->Arg(64)->Arg(256);

BENCHMARK_MAIN();
