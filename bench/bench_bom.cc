// B8: the §1 bill-of-materials workload end-to-end. The paper's tc program
// partitions sets bottom-up, which derives a cost for *every* disjoint
// union of part sets -- exponential in the number of parts. The magic-set
// rewriting restricts partitioning to the sets actually reachable from the
// queried root, which is what makes the program usable. Expected shape:
// full evaluation blows up past ~12 parts; magic scales to hundreds.
#include "base/str_util.h"
#include "bench/bench_util.h"
#include "workload/workload.h"

namespace {

constexpr const char* kProgram =
    "p(P, S) :- part_of(P, S).\n"
    "q(X, C) :- cost(X, C).\n"
    "part(P, <S>) :- p(P, S).\n"
    "tc({X}, C) :- q(X, C).\n"
    "tc({X}, C) :- part(X, S), tc(S, C).\n"
    "tc(S, C) :- partition(S, S1, S2), tc(S1, C1), tc(S2, C2), +(C1, C2, C).\n"
    "result(X, C) :- tc({X}, C).\n";

void RunBom(benchmark::State& state, bool magic) {
  size_t parts = static_cast<size_t>(state.range(0));
  ldl::BomWorkload workload = ldl::MakeBom(parts, /*seed=*/21);
  std::string goal = ldl::StrCat("result(", workload.root, ", C)");
  ldl::QueryOptions options;
  options.strategy =
      magic ? ldl::QueryStrategy::kMagic : ldl::QueryStrategy::kModel;
  options.eval.profile = ldl_bench::ProfileRequested();
  ldl::EvalStats last;
  ldl::EvalProfile last_profile;
  for (auto _ : state) {
    auto session = ldl_bench::MakeSession(state, workload.facts, kProgram);
    if (session == nullptr) return;
    auto result = session->Query(goal, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    if (result->tuples.empty()) {
      state.SkipWithError("no cost derived for the root");
      return;
    }
    last = result->stats;
    if (options.eval.profile) last_profile = result->profile;
  }
  state.counters["leaves"] = static_cast<double>(workload.leaf_count);
  ldl_bench::RecordStats(state, last);
  ldl_bench::MaybeDumpProfile(
      ldl::StrCat(magic ? "BomMagic/" : "BomFull/", parts), last_profile);
}

void BM_BomFull(benchmark::State& state) { RunBom(state, false); }
void BM_BomMagic(benchmark::State& state) { RunBom(state, true); }

}  // namespace

// Full evaluation derives O(2^parts) tc facts: keep the sweep tiny.
BENCHMARK(BM_BomFull)->Arg(8)->Arg(10)->Arg(12)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BomMagic)->Arg(8)->Arg(12)->Arg(24)->Arg(48)->Arg(96)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
