// B2: the paper's §6 running example end-to-end. young(<leaf>, S) over a
// family forest; magic evaluation explores only the queried person's
// ancestor chain and generation, while full evaluation materializes a, sg
// and young for everyone. Expected shape: the gap grows with the forest
// depth; magic never loses on bound queries.
#include "base/str_util.h"
#include "bench/bench_util.h"
#include "workload/workload.h"

namespace {

constexpr const char* kRules =
    "a(X, Y) :- p(X, Y).\n"
    "a(X, Y) :- a(X, Z), a(Z, Y).\n"
    "sg(X, Y) :- siblings(X, Y).\n"
    "sg(X, Y) :- p(Z1, X), sg(Z1, Z2), p(Z2, Y).\n"
    "young(X, <Y>) :- !a(X, Z), sg(X, Y).\n";

void RunYoung(benchmark::State& state, bool magic, bool supplementary = false) {
  size_t depth = static_cast<size_t>(state.range(0));
  ldl::SameGenerationWorkload workload = ldl::MakeSameGeneration(3, 2, depth);
  std::string goal = ldl::StrCat("young(", workload.a_leaf, ", S)");
  ldl::QueryOptions options;
  options.strategy = supplementary ? ldl::QueryStrategy::kMagicSupplementary
                     : magic        ? ldl::QueryStrategy::kMagic
                                    : ldl::QueryStrategy::kModel;
  options.eval.profile = ldl_bench::ProfileRequested();
  ldl::EvalStats last;
  ldl::EvalProfile last_profile;
  for (auto _ : state) {
    auto session = ldl_bench::MakeSession(state, workload.facts, kRules);
    if (session == nullptr) return;
    auto result = session->Query(goal, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    if (result->tuples.size() != 1) {
      state.SkipWithError("expected exactly one young answer");
      return;
    }
    last = result->stats;
    if (options.eval.profile) last_profile = result->profile;
  }
  state.counters["people"] = static_cast<double>(workload.person_count);
  ldl_bench::RecordStats(state, last);
  ldl_bench::MaybeDumpProfile(
      ldl::StrCat(supplementary ? "YoungSupplementary/"
                  : magic       ? "YoungMagic/"
                                : "YoungFull/",
                  depth),
      last_profile);
}

void BM_YoungFull(benchmark::State& state) { RunYoung(state, false); }
void BM_YoungMagic(benchmark::State& state) { RunYoung(state, true); }
void BM_YoungSupplementary(benchmark::State& state) {
  RunYoung(state, true, /*supplementary=*/true);
}

}  // namespace

BENCHMARK(BM_YoungFull)->Arg(3)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_YoungMagic)->Arg(3)->Arg(4)->Arg(5)->Arg(6)->Arg(7)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_YoungSupplementary)->Arg(3)->Arg(5)->Arg(7)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
