// B9: incremental model maintenance (Session::AddFacts/RemoveFacts +
// Engine::EvaluateIncremental{,Delete}) vs full re-materialization on EDB
// inserts and deletes.
// Each iteration inserts one fresh fact into an already-materialized model
// and re-evaluates, then answers a query against the maintained model. The
// incremental arm resumes the affected strata from the delta; the full arm
// forces InvalidateModel() so the same insert pays a from-scratch
// evaluation. Expected shape: on positive recursive programs (tc, ancestor)
// the incremental arm wins by orders of magnitude at >= 1k-fact EDBs; on
// grouping programs an insert-only delta takes the partition-regrow path
// (strata_regrown/group_regrows counters), so the incremental arm stays
// flat while the full arm rebuilds every group. A no-op Evaluate (cache
// hit) bounds the bookkeeping overhead from below.
#include <string>

#include "bench/bench_util.h"
#include "workload/workload.h"

namespace {

struct Workload {
  std::string facts;
  std::string rules;
  // Makes the i-th inserted fact (fresh constants: disconnected component).
  std::string (*insert)(size_t i);
  const char* query;  // goal answered after each insert
};

std::string TcInsert(size_t i) {
  return "e(zza" + std::to_string(i) + ", zzb" + std::to_string(i) + ").";
}
std::string AncestorInsert(size_t i) {
  return "parent(zza" + std::to_string(i) + ", zzb" + std::to_string(i) + ").";
}
std::string GroupingInsert(size_t i) {
  return "supplies(zzs" + std::to_string(i) + ", part" +
         std::to_string(i % 7) + ").";
}

Workload MakeTc(size_t edb) {
  return {ldl::RandomGraph(/*nodes=*/edb / 4, /*edges=*/edb, /*seed=*/11, "e"),
          "t(X, Y) :- e(X, Y).\n"
          "t(X, Y) :- t(X, Z), e(Z, Y).\n",
          TcInsert, "t(zza0, X)"};
}
Workload MakeAncestor(size_t edb) {
  return {ldl::ParentChain(edb, "parent"),
          "anc(X, Y) :- parent(X, Y).\n"
          "anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
          AncestorInsert, "anc(zza0, X)"};
}
Workload MakeGrouping(size_t edb) {
  return {ldl::SupplierParts(/*suppliers=*/edb / 16, /*parts_per=*/16,
                             /*part_pool=*/128, /*seed=*/11),
          "by_supplier(S, <P>) :- supplies(S, P).\n",
          GroupingInsert, "by_supplier(zzs0, X)"};
}

// One insert -> re-evaluate -> query round per iteration. `incremental`
// keeps the maintained model; the baseline invalidates it first so every
// round re-materializes from scratch. The EDB grows by one fact per
// iteration in both arms (identical work, and negligible next to the IDB).
void RunInsertQuery(benchmark::State& state, const Workload& workload,
                    bool incremental, const char* name) {
  auto session = ldl_bench::MakeSession(state, workload.facts, workload.rules);
  if (session == nullptr) return;
  ldl::EvalOptions options;
  options.profile = ldl_bench::ProfileRequested();
  ldl::Status status = session->Evaluate(options);
  if (!status.ok()) {
    state.SkipWithError(status.ToString().c_str());
    return;
  }
  ldl::QueryOptions query_options;
  query_options.eval = options;
  size_t i = 0;
  size_t answers = 0;
  for (auto _ : state) {
    status = session->AddFacts(workload.insert(i++));
    if (status.ok() && !incremental) {
      session->InvalidateModel();
    }
    if (status.ok()) status = session->Evaluate(options);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    auto result = session->Query(workload.query, query_options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    answers = result->tuples.size();
  }
  benchmark::DoNotOptimize(answers);
  ldl_bench::RecordStats(state, session->last_eval_stats());
  state.counters["incremental_evals"] =
      static_cast<double>(session->incremental_evals());
  state.counters["full_evals"] = static_cast<double>(session->full_evals());
  ldl_bench::MaybeDumpProfile(
      name + ("/" + std::to_string(state.range(0))),
      session->last_eval_profile());
}

void BM_TcInsertIncremental(benchmark::State& state) {
  RunInsertQuery(state, MakeTc(state.range(0)), /*incremental=*/true,
                 "TcInsertIncremental");
}
void BM_TcInsertFull(benchmark::State& state) {
  RunInsertQuery(state, MakeTc(state.range(0)), /*incremental=*/false,
                 "TcInsertFull");
}
void BM_AncestorInsertIncremental(benchmark::State& state) {
  RunInsertQuery(state, MakeAncestor(state.range(0)), /*incremental=*/true,
                 "AncestorInsertIncremental");
}
void BM_AncestorInsertFull(benchmark::State& state) {
  RunInsertQuery(state, MakeAncestor(state.range(0)), /*incremental=*/false,
                 "AncestorInsertFull");
}
void BM_GroupingInsertIncremental(benchmark::State& state) {
  RunInsertQuery(state, MakeGrouping(state.range(0)), /*incremental=*/true,
                 "GroupingInsertIncremental");
}
void BM_GroupingInsertFull(benchmark::State& state) {
  RunInsertQuery(state, MakeGrouping(state.range(0)), /*incremental=*/false,
                 "GroupingInsertFull");
}

// One delete -> re-evaluate -> query round per iteration. The deleted fact
// is a disconnected component inserted (and settled) outside the timed
// region, so each round measures exactly one single-fact deletion against
// an already-materialized model. The incremental arm runs DRed (recursive
// strata, strata_overdeleted) or counter decrements (non-recursive strata,
// count_decrements); the baseline invalidates the model so the same
// deletion pays a from-scratch evaluation.
void RunDeleteQuery(benchmark::State& state, const Workload& workload,
                    bool incremental, const char* name) {
  auto session = ldl_bench::MakeSession(state, workload.facts, workload.rules);
  if (session == nullptr) return;
  ldl::EvalOptions options;
  options.profile = ldl_bench::ProfileRequested();
  ldl::Status status = session->Evaluate(options);
  if (!status.ok()) {
    state.SkipWithError(status.ToString().c_str());
    return;
  }
  ldl::QueryOptions query_options;
  query_options.eval = options;
  size_t i = 0;
  size_t answers = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string fact = workload.insert(i++);
    status = session->AddFacts(fact);
    if (status.ok()) status = session->Evaluate(options);
    state.ResumeTiming();
    if (status.ok()) status = session->RemoveFacts(fact);
    if (status.ok() && !incremental) {
      session->InvalidateModel();
    }
    if (status.ok()) status = session->Evaluate(options);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    auto result = session->Query(workload.query, query_options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    answers = result->tuples.size();
  }
  benchmark::DoNotOptimize(answers);
  ldl_bench::RecordStats(state, session->last_eval_stats());
  state.counters["incremental_evals"] =
      static_cast<double>(session->incremental_evals());
  state.counters["full_evals"] = static_cast<double>(session->full_evals());
  ldl_bench::MaybeDumpProfile(
      name + ("/" + std::to_string(state.range(0))),
      session->last_eval_profile());
}

// Non-recursive projection over the same random graph: deletions here are
// pure derivation-counter decrements, no DRed over-delete pass.
Workload MakeProjection(size_t edb) {
  return {ldl::RandomGraph(/*nodes=*/edb / 4, /*edges=*/edb, /*seed=*/11, "e"),
          "r(X) :- e(X, Y).\n", TcInsert, "r(zza0)"};
}

void BM_TcDeleteIncremental(benchmark::State& state) {
  RunDeleteQuery(state, MakeTc(state.range(0)), /*incremental=*/true,
                 "TcDeleteIncremental");
}
void BM_TcDeleteFull(benchmark::State& state) {
  RunDeleteQuery(state, MakeTc(state.range(0)), /*incremental=*/false,
                 "TcDeleteFull");
}
void BM_AncestorDeleteIncremental(benchmark::State& state) {
  RunDeleteQuery(state, MakeAncestor(state.range(0)), /*incremental=*/true,
                 "AncestorDeleteIncremental");
}
void BM_AncestorDeleteFull(benchmark::State& state) {
  RunDeleteQuery(state, MakeAncestor(state.range(0)), /*incremental=*/false,
                 "AncestorDeleteFull");
}
void BM_ProjectionDeleteIncremental(benchmark::State& state) {
  RunDeleteQuery(state, MakeProjection(state.range(0)), /*incremental=*/true,
                 "ProjectionDeleteIncremental");
}
void BM_ProjectionDeleteFull(benchmark::State& state) {
  RunDeleteQuery(state, MakeProjection(state.range(0)), /*incremental=*/false,
                 "ProjectionDeleteFull");
}

// Evaluate() with a current model and no pending delta: the cache-hit
// floor every maintained round sits on top of.
void BM_NoopEvaluateCacheHit(benchmark::State& state) {
  Workload workload = MakeTc(state.range(0));
  auto session = ldl_bench::MakeSession(state, workload.facts, workload.rules);
  if (session == nullptr) return;
  ldl::Status status = session->Evaluate();
  if (!status.ok()) {
    state.SkipWithError(status.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    status = session->Evaluate();
    benchmark::DoNotOptimize(status.ok());
  }
  state.counters["cache_hits"] =
      static_cast<double>(session->eval_cache_hits());
}

}  // namespace

BENCHMARK(BM_TcInsertIncremental)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TcInsertFull)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AncestorInsertIncremental)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AncestorInsertFull)->Arg(1024)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GroupingInsertIncremental)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GroupingInsertFull)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TcDeleteIncremental)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TcDeleteFull)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AncestorDeleteIncremental)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AncestorDeleteFull)->Arg(1024)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ProjectionDeleteIncremental)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ProjectionDeleteFull)->Arg(1024)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NoopEvaluateCacheHit)->Arg(1024)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
