// B13: block-at-a-time execution vs the tuple-at-a-time scalar executor
// (DESIGN.md §12).
//
// Two join-heavy materializations where the scalar executor pays a deep
// recursive call per binding and a hash-index touch per probe:
//
// TcDense: semi-naive transitive closure over a dense expander-ish digraph
// (out-degree 3, tiny diameter). Deltas stay thousands of rows wide for the
// few rounds the fixpoint needs, so per-round fixed costs vanish and the
// timed region is the classic Datalog hot loop: probe the delta block
// against e's hash index, once per (delta row x successor).
//
// ProjJoin: the skewed three-way join from B12 projected onto its 4-value
// join key, under the (default) cost-based order. The body enumerates
// n x fan-out solutions but the head dedupes them into 16 facts, so
// insertion cost disappears and what remains is pure per-row executor
// overhead -- exactly what blocks amortize.
//
// Both arms derive identical models, counters, and solution order
// (tests/equivalence_test.cc); the gap is executor dispatch only. The batch
// arms sweep EvalOptions::batch_block_rows over {64, 256, 1024} to place the
// default (256).
#include <string>

#include "base/str_util.h"
#include "bench/bench_util.h"

namespace {

constexpr const char* kTcRules =
    "t(X, Y) :- e(X, Y).\n"
    "t(X, Y) :- e(X, Z), t(Z, Y).\n";

// n nodes, each with three deterministic out-edges: the successor ring plus
// two multiplicative strides. The ring makes the graph strongly connected
// (closure = n^2 facts); the strides shrink the diameter to a handful of
// rounds, so deltas are n^2-scale wide.
std::string TcFacts(size_t n) {
  std::string facts;
  facts.reserve(n * 50);
  for (size_t i = 0; i < n; ++i) {
    ldl::StrAppend(facts, "e(c", i, ", c", (i + 1) % n, ").\n");
    ldl::StrAppend(facts, "e(c", i, ", c", (i * 7 + 3) % n, ").\n");
    ldl::StrAppend(facts, "e(c", i, ", c", (i * 13 + 5) % n, ").\n");
  }
  return facts;
}

constexpr const char* kJoinRules =
    "hub(Z, Y) :- big(X, Z), fan(Z, W), sel(W, Y).\n";

constexpr size_t kFanOut = 32;

std::string JoinFacts(size_t n) {
  std::string facts;
  facts.reserve(n * 24);
  for (size_t i = 0; i < n; ++i) {
    ldl::StrAppend(facts, "big(b", i, ", k", i % 4, ").\n");
  }
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < kFanOut; ++j) {
      ldl::StrAppend(facts, "fan(k", i, ", w", i, "_", j, ").\n");
      ldl::StrAppend(facts, "sel(w", i, "_", j, ", s", i % 4, ").\n");
    }
  }
  return facts;
}

// Scalar arm when block_rows == 0; batch arm with the given block size
// otherwise. Everything else (cost-based planning, semi-naive mode) is the
// default configuration, so the measured gap is executor dispatch only.
void RunBatch(benchmark::State& state, const std::string& facts,
              const char* rules, size_t block_rows, const char* name) {
  ldl::EvalOptions options;
  options.batch = block_rows > 0;
  if (block_rows > 0) options.batch_block_rows = block_rows;
  options.profile = ldl_bench::ProfileRequested();
  ldl::EvalStats last;
  ldl::EvalProfile last_profile;
  auto session = ldl_bench::MakeSession(state, facts, rules);
  if (session == nullptr) return;
  for (auto _ : state) {
    session->InvalidateModel();
    ldl::Status status = session->Evaluate(options);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    last = session->last_eval_stats();
    if (options.profile) last_profile = session->last_eval_profile();
  }
  ldl_bench::RecordStats(state, last);
  ldl_bench::MaybeDumpProfile(
      name + ("/" + std::to_string(state.range(0))), last_profile);
}

void BM_TcDenseScalar(benchmark::State& state) {
  RunBatch(state, TcFacts(static_cast<size_t>(state.range(0))), kTcRules,
           /*block_rows=*/0, "TcDenseScalar");
}
void BM_TcDenseBatch(benchmark::State& state) {
  RunBatch(state, TcFacts(static_cast<size_t>(state.range(0))), kTcRules,
           static_cast<size_t>(state.range(1)), "TcDenseBatch");
}
void BM_ProjJoinScalar(benchmark::State& state) {
  RunBatch(state, JoinFacts(static_cast<size_t>(state.range(0))), kJoinRules,
           /*block_rows=*/0, "ProjJoinScalar");
}
void BM_ProjJoinBatch(benchmark::State& state) {
  RunBatch(state, JoinFacts(static_cast<size_t>(state.range(0))), kJoinRules,
           static_cast<size_t>(state.range(1)), "ProjJoinBatch");
}

}  // namespace

BENCHMARK(BM_TcDenseScalar)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TcDenseBatch)
    ->Args({128, 64})->Args({128, 256})->Args({128, 1024})
    ->Args({256, 64})->Args({256, 256})->Args({256, 1024})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProjJoinScalar)->Arg(1 << 14)->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProjJoinBatch)
    ->Args({1 << 14, 64})->Args({1 << 14, 256})->Args({1 << 14, 1024})
    ->Args({1 << 16, 64})->Args({1 << 16, 256})->Args({1 << 16, 1024})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
