// B10: set-term algebra throughput (paper §2.2). Canonical sets are sorted
// and deduplicated under the factory's total term order, so the binary set
// operations can run as linear merges over the operands instead of
// collect-and-re-canonicalize. This bench sweeps the operand cardinality for
// each operation, over both int elements (cheap comparator) and atom
// elements (interner-text comparator), plus the scons-style insert chain
// that dominates set-building LDL1 programs.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "term/term.h"
#include "workload/workload.h"

namespace {

using ldl::Interner;
using ldl::Term;
using ldl::TermFactory;

std::vector<const Term*> IntElements(TermFactory& factory, size_t n,
                                     size_t start, size_t stride) {
  std::vector<const Term*> elements;
  elements.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    elements.push_back(
        factory.MakeInt(static_cast<int64_t>(start + i * stride)));
  }
  return elements;
}

std::vector<const Term*> AtomElements(TermFactory& factory, size_t n,
                                      size_t start, size_t stride) {
  std::vector<const Term*> elements;
  elements.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    elements.push_back(factory.MakeAtom("e" + std::to_string(start + i * stride)));
  }
  return elements;
}

// a = evens, b = odds: fully interleaved merge, |a U b| = 2n.
void BM_SetUnionDisjoint(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Interner interner;
  TermFactory factory(&interner);
  const Term* a = factory.MakeSet(IntElements(factory, n, 0, 2));
  const Term* b = factory.MakeSet(IntElements(factory, n, 1, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(factory.SetUnion(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}

// b overlaps the upper half of a: the union dedups n/2 shared elements.
void BM_SetUnionOverlap(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Interner interner;
  TermFactory factory(&interner);
  const Term* a = factory.MakeSet(IntElements(factory, n, 0, 1));
  const Term* b = factory.MakeSet(IntElements(factory, n, n / 2, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(factory.SetUnion(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}

void BM_SetDifferenceHalf(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Interner interner;
  TermFactory factory(&interner);
  const Term* a = factory.MakeSet(IntElements(factory, n, 0, 1));
  const Term* b = factory.MakeSet(IntElements(factory, n, n / 2, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(factory.SetDifference(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_SetIntersectHalf(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Interner interner;
  TermFactory factory(&interner);
  const Term* a = factory.MakeSet(IntElements(factory, n, 0, 1));
  const Term* b = factory.MakeSet(IntElements(factory, n, n / 2, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(factory.SetIntersect(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

// scons-chain construction over atom elements: the comparator goes through
// interner text, so canonicalization cost -- not hashing -- dominates.
void BM_SetInsertChainAtoms(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Interner interner;
  TermFactory factory(&interner);
  std::vector<const Term*> elements = AtomElements(factory, n, 0, 1);
  for (auto _ : state) {
    const Term* set = factory.EmptySet();
    for (const Term* element : elements) {
      set = factory.SetInsert(element, set);
    }
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

// Nested-set elements: comparator and hash recurse one level.
void BM_SetUnionNested(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Interner interner;
  TermFactory factory(&interner);
  std::vector<const Term*> singletons_a;
  std::vector<const Term*> singletons_b;
  for (size_t i = 0; i < n; ++i) {
    const Term* even[] = {factory.MakeInt(static_cast<int64_t>(2 * i))};
    const Term* odd[] = {factory.MakeInt(static_cast<int64_t>(2 * i + 1))};
    singletons_a.push_back(factory.MakeSet(even));
    singletons_b.push_back(factory.MakeSet(odd));
  }
  const Term* a = factory.MakeSet(singletons_a);
  const Term* b = factory.MakeSet(singletons_b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(factory.SetUnion(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}

}  // namespace

BENCHMARK(BM_SetUnionDisjoint)->Arg(16)->Arg(128)->Arg(1024);
BENCHMARK(BM_SetUnionOverlap)->Arg(16)->Arg(128)->Arg(1024);
BENCHMARK(BM_SetDifferenceHalf)->Arg(16)->Arg(128)->Arg(1024);
BENCHMARK(BM_SetIntersectHalf)->Arg(16)->Arg(128)->Arg(1024);
BENCHMARK(BM_SetInsertChainAtoms)->Arg(8)->Arg(64)->Arg(256);
BENCHMARK(BM_SetUnionNested)->Arg(16)->Arg(128);

BENCHMARK_MAIN();
