// B3: naive vs semi-naive bottom-up evaluation (the Theorem 1 computation).
// On transitive closure over a chain, naive evaluation re-derives every old
// fact each round (O(depth) redundant passes); semi-naive only extends the
// frontier. Expected shape: semi-naive wins by roughly the chain depth in
// body solutions, and in wall-clock by a growing factor.
#include "bench/bench_util.h"
#include "workload/workload.h"

namespace {

constexpr const char* kLinearRules =
    "t(X, Y) :- e(X, Y).\n"
    "t(X, Y) :- t(X, Z), e(Z, Y).\n";

// Non-linear closure doubles the path length each round; stresses the
// two-delta-variant machinery.
constexpr const char* kNonLinearRules =
    "t(X, Y) :- e(X, Y).\n"
    "t(X, Y) :- t(X, Z), t(Z, Y).\n";

void RunClosure(benchmark::State& state, ldl::EvalOptions::Mode mode,
                const char* rules, const char* name) {
  size_t n = static_cast<size_t>(state.range(0));
  std::string facts = ldl::ParentChain(n, "e");
  ldl::EvalOptions options;
  options.mode = mode;
  options.profile = ldl_bench::ProfileRequested();
  ldl::EvalStats last;
  ldl::EvalProfile last_profile;
  for (auto _ : state) {
    auto session = ldl_bench::MakeSession(state, facts, rules);
    if (session == nullptr) return;
    ldl::Status status = session->Evaluate(options);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    last = session->last_eval_stats();
    if (options.profile) last_profile = session->last_eval_profile();
  }
  ldl_bench::RecordStats(state, last);
  ldl_bench::MaybeDumpProfile(name + ("/" + std::to_string(n)), last_profile);
}

void BM_TcNaive(benchmark::State& state) {
  RunClosure(state, ldl::EvalOptions::Mode::kNaive, kLinearRules, "TcNaive");
}
void BM_TcSemiNaive(benchmark::State& state) {
  RunClosure(state, ldl::EvalOptions::Mode::kSemiNaive, kLinearRules,
             "TcSemiNaive");
}
void BM_TcNonLinearSemiNaive(benchmark::State& state) {
  RunClosure(state, ldl::EvalOptions::Mode::kSemiNaive, kNonLinearRules,
             "TcNonLinearSemiNaive");
}

// Thread sweep over the linear-closure workload: args are {chain length,
// worker threads}. threads=1 is exactly the serial engine path.
void BM_TcSemiNaiveThreads(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::string facts = ldl::ParentChain(n, "e");
  ldl::EvalOptions options;
  options.num_threads = static_cast<int>(state.range(1));
  options.profile = ldl_bench::ProfileRequested();
  ldl::EvalStats last;
  ldl::EvalProfile last_profile;
  for (auto _ : state) {
    auto session = ldl_bench::MakeSession(state, facts, kLinearRules);
    if (session == nullptr) return;
    ldl::Status status = session->Evaluate(options);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    last = session->last_eval_stats();
    if (options.profile) last_profile = session->last_eval_profile();
  }
  ldl_bench::RecordStats(state, last);
  ldl_bench::MaybeDumpProfile("TcSemiNaiveThreads/" + std::to_string(n) + "/" +
                                  std::to_string(state.range(1)),
                              last_profile);
}

void BM_TcRandomGraph(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::string facts = ldl::RandomGraph(n, 3 * n, /*seed=*/5, "e");
  ldl::EvalOptions options;
  options.mode = state.range(1) == 0 ? ldl::EvalOptions::Mode::kNaive
                                     : ldl::EvalOptions::Mode::kSemiNaive;
  options.profile = ldl_bench::ProfileRequested();
  ldl::EvalStats last;
  ldl::EvalProfile last_profile;
  for (auto _ : state) {
    auto session = ldl_bench::MakeSession(state, facts, kLinearRules);
    if (session == nullptr) return;
    ldl::Status status = session->Evaluate(options);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    last = session->last_eval_stats();
    if (options.profile) last_profile = session->last_eval_profile();
  }
  ldl_bench::RecordStats(state, last);
  ldl_bench::MaybeDumpProfile("TcRandomGraph/" + std::to_string(n) + "/" +
                                  std::to_string(state.range(1)),
                              last_profile);
}

}  // namespace

BENCHMARK(BM_TcNaive)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TcSemiNaive)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TcNonLinearSemiNaive)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TcRandomGraph)
    ->Args({64, 0})->Args({64, 1})->Args({128, 0})->Args({128, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TcSemiNaiveThreads)
    ->Args({512, 1})->Args({512, 2})->Args({512, 4})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
