// Cost-based join ordering (DESIGN.md §11): distinct-sketch accuracy on
// Relation, order flips on skewed EDBs, adaptive replanning mid-fixpoint,
// and model equivalence between the cost-based and syntactic orderers.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "base/str_util.h"
#include "eval/cost.h"
#include "eval/relation.h"
#include "ldl/ldl.h"

namespace ldl {
namespace {

// ---------------------------------------------------------------------------
// Distinct-value sketches on Relation.

class SketchTest : public ::testing::Test {
 protected:
  Tuple T(std::initializer_list<int> values) {
    Tuple t;
    for (int v : values) t.push_back(factory_.MakeInt(v));
    return t;
  }

  Interner interner_;
  TermFactory factory_{&interner_};
};

TEST_F(SketchTest, DistinctEstimateTracksSmallCounts) {
  // Linear counting is near-exact while the bitmap is mostly empty: 8
  // distinct values in column 1 must estimate close to 8 even across 400
  // rows, and never above the live row count.
  Relation r(2);
  for (int i = 0; i < 400; ++i) r.Insert(T({i, i % 8}));
  double unique = r.DistinctEstimate(0);
  double skewed = r.DistinctEstimate(1);
  EXPECT_GE(skewed, 6.0);
  EXPECT_LE(skewed, 12.0);
  // 400 distinct fills ~1/3 of the 1024-bit sketch; linear counting stays
  // within ~12% there.
  EXPECT_GE(unique, 350.0);
  EXPECT_LE(unique, 450.0);
}

TEST_F(SketchTest, DistinctEstimateCappedByLiveRows) {
  Relation r(1);
  for (int i = 0; i < 50; ++i) r.Insert(T({i}));
  EXPECT_LE(r.DistinctEstimate(0), 50.0);
  // Out-of-range columns and empty relations degrade to the live count.
  EXPECT_EQ(r.DistinctEstimate(7), 50.0);
  r.Clear();
  EXPECT_EQ(r.DistinctEstimate(0), 0.0);
}

TEST_F(SketchTest, StatsSeparateLiveFromStoredRows) {
  // Erase tombstones rows in place; `rows` must track the live count while
  // `raw_rows` keeps the storage footprint, so consumers can tell a small
  // relation from a bloated one.
  Relation r(1);
  for (int i = 0; i < 100; ++i) r.Insert(T({i}));
  for (int i = 0; i < 90; ++i) r.Erase(T({i}));
  RelationStats stats = r.Stats();
  EXPECT_EQ(stats.rows, 10u);
  EXPECT_EQ(stats.raw_rows, 100u);
  // The distinct sketch never claims more values than live rows.
  EXPECT_LE(stats.column_distinct[0], 10.0);
}

TEST_F(SketchTest, StatsSnapshotMatchesEstimates) {
  Relation r(2);
  for (int i = 0; i < 100; ++i) r.Insert(T({i, 0}));
  RelationStats stats = r.Stats();
  EXPECT_EQ(stats.rows, 100u);
  ASSERT_EQ(stats.column_distinct.size(), 2u);
  EXPECT_EQ(stats.column_distinct[0], r.DistinctEstimate(0));
  EXPECT_EQ(stats.column_distinct[1], r.DistinctEstimate(1));
  // Column 1 holds a single value.
  EXPECT_GE(stats.column_distinct[1], 1.0);
  EXPECT_LE(stats.column_distinct[1], 2.0);
}

// ---------------------------------------------------------------------------
// End-to-end planning.

// Skewed three-way join (bench_planner's B12 workload in miniature):
// textual order explodes big x fan before sel filters; the cost-based
// order starts from the 4-row sel.
std::string SkewedProgram(size_t n, size_t fan_out) {
  std::string text = "join(X, Y) :- big(X, Z), fan(Z, W), sel(W, Y).\n";
  for (size_t i = 0; i < n; ++i) {
    StrAppend(text, "big(b", i, ", k", i % 4, ").\n");
  }
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < fan_out; ++j) {
      StrAppend(text, "fan(k", i, ", w", i, "_", j, ").\n");
    }
    StrAppend(text, "sel(w", i, "_0, s", i, ").\n");
  }
  return text;
}

// Non-linear closure through a tiny mapping relation: the best order for
// the delta variant pinning the second t-occurrence flips as t grows.
std::string DriftProgram(size_t n) {
  std::string text =
      "t(X, Y) :- e(X, Y).\n"
      "t(X, W) :- t(X, Z), t(Z, Y), f(Y, W).\n";
  for (size_t i = 0; i + 1 < n; ++i) {
    StrAppend(text, "e(c", i, ", c", i + 1, ").\n");
  }
  for (size_t i = 0; i < n; ++i) {
    StrAppend(text, "f(c", i, ", c", i, ").\n");
  }
  return text;
}

using ModelText = std::map<std::string, std::vector<std::string>>;

ModelText Materialize(Session& session) {
  ModelText model;
  for (PredId pred = 0; pred < session.catalog().size(); ++pred) {
    std::vector<std::string> rows;
    for (const Tuple& tuple : session.database().relation(pred).Snapshot()) {
      rows.push_back(session.FormatTuple(tuple));
    }
    std::sort(rows.begin(), rows.end());
    model[session.catalog().DebugName(pred)] = std::move(rows);
  }
  return model;
}

EvalStats EvaluateWith(Session& session, bool cost_based, int threads = 1) {
  EvalOptions options;
  options.cost_based = cost_based;
  options.num_threads = threads;
  Status status = session.Evaluate(options);
  EXPECT_TRUE(status.ok()) << status;
  return session.last_eval_stats();
}

TEST(Planner, SkewedEdbFlipsJoinOrder) {
  std::string program = SkewedProgram(/*n=*/512, /*fan_out=*/8);

  Session syntactic;
  ASSERT_TRUE(syntactic.Load(program).ok());
  EvalStats syn = EvaluateWith(syntactic, /*cost_based=*/false);

  Session cost;
  ASSERT_TRUE(cost.Load(program).ok());
  EvalStats est = EvaluateWith(cost, /*cost_based=*/true);

  // Same model either way.
  EXPECT_EQ(Materialize(cost), Materialize(syntactic));
  // The cost-based order differs from the syntactic one...
  EXPECT_EQ(syn.plans_reordered, 0u);
  EXPECT_GE(est.plans_reordered, 1u);
  // ...and avoids the big x fan intermediate: the syntactic order probes
  // once per (big row x fan-out) pair, the cost-based order once per
  // surviving binding.
  EXPECT_GT(syn.index_probes, 8 * est.index_probes);
}

TEST(Planner, CostBasedOrderStartsFromSmallRelation) {
  std::string program = SkewedProgram(/*n=*/512, /*fan_out=*/8);
  Session session;
  ASSERT_TRUE(session.Load(program).ok());
  ASSERT_TRUE(session.Evaluate().ok());

  const RuleIr* join_rule = nullptr;
  for (const RuleIr& rule : session.program().rules) {
    if (rule.body.size() == 3) join_rule = &rule;
  }
  ASSERT_NE(join_rule, nullptr);

  CostModel model =
      CostModel::Snapshot(session.database(), session.catalog());
  auto order = OrderBodyLiteralsCostBased(session.catalog(), *join_rule, model);
  ASSERT_TRUE(order.ok()) << order.status();
  ASSERT_EQ(order->size(), 3u);
  // Body is big(X,Z), fan(Z,W), sel(W,Y): the planner scans sel (4 rows)
  // and probes back through fan, then big.
  EXPECT_EQ((*order)[0], 2);
  EXPECT_EQ((*order)[1], 1);
  EXPECT_EQ((*order)[2], 0);

  OrderCost chosen = EstimateOrderCost(*join_rule, *order, model);
  OrderCost textual = EstimateOrderCost(*join_rule, {0, 1, 2}, model);
  EXPECT_LT(chosen.total_work, textual.total_work);
  ASSERT_EQ(chosen.step_rows.size(), 3u);
}

TEST(Planner, AdaptiveReplanSwitchesMidFixpoint) {
  std::string program = DriftProgram(/*n=*/32);

  Session syntactic;
  ASSERT_TRUE(syntactic.Load(program).ok());
  EvalStats syn = EvaluateWith(syntactic, /*cost_based=*/false);
  EXPECT_EQ(syn.replans, 0u);

  Session cost;
  ASSERT_TRUE(cost.Load(program).ok());
  EvalStats est = EvaluateWith(cost, /*cost_based=*/true);

  // The entry-time order is priced against an empty t; as t outgrows f the
  // delta variants switch orders mid-fixpoint.
  EXPECT_GE(est.replans, 1u);
  EXPECT_EQ(Materialize(cost), Materialize(syntactic));
}

TEST(Planner, DeterministicAcrossThreads) {
  // Planning inputs are round-start snapshots taken on the scheduling
  // thread, so the deterministic counters (including the planner's) match
  // at every pool width.
  std::string program = DriftProgram(/*n=*/24);
  EvalStats reference;
  ModelText reference_model;
  for (int threads : {1, 4}) {
    Session session;
    ASSERT_TRUE(session.Load(program).ok());
    EvalStats stats = EvaluateWith(session, /*cost_based=*/true, threads);
    if (threads == 1) {
      reference = stats;
      reference_model = Materialize(session);
      continue;
    }
    EXPECT_EQ(stats.replans, reference.replans);
    EXPECT_EQ(stats.plans_reordered, reference.plans_reordered);
    EXPECT_EQ(stats.facts_derived, reference.facts_derived);
    EXPECT_EQ(Materialize(session), reference_model);
  }
}

TEST(Planner, MostlyDeletedRelationFlipsJoinOrder) {
  // Tombstone-bloat regression: after retracting most of `shrunk`, its
  // storage still holds every dead row, but the cost model must price it by
  // live count. 400 stored / 4 live flips the scan leader from `keep` (40
  // rows) to `shrunk`; a model built on raw counts would keep the old order.
  std::string program = "join(X, Y) :- shrunk(X, Z), keep(Z, Y).\n";
  for (size_t i = 0; i < 400; ++i) {
    StrAppend(program, "shrunk(a", i, ", k", i % 4, ").\n");
  }
  for (size_t i = 0; i < 40; ++i) {
    StrAppend(program, "keep(k", i % 4, ", v", i, ").\n");
  }
  Session session;
  ASSERT_TRUE(session.Load(program).ok());
  ASSERT_TRUE(session.Evaluate().ok());

  const RuleIr* join_rule = nullptr;
  for (const RuleIr& rule : session.program().rules) {
    if (rule.body.size() == 2) join_rule = &rule;
  }
  ASSERT_NE(join_rule, nullptr);

  CostModel before = CostModel::Snapshot(session.database(), session.catalog());
  auto order_before =
      OrderBodyLiteralsCostBased(session.catalog(), *join_rule, before);
  ASSERT_TRUE(order_before.ok()) << order_before.status();
  // 40-row keep leads while shrunk holds 400 live rows.
  EXPECT_EQ((*order_before)[0], 1);

  std::string removal;
  for (size_t i = 4; i < 400; ++i) {
    StrAppend(removal, "shrunk(a", i, ", k", i % 4, ").\n");
  }
  ASSERT_TRUE(session.RemoveFacts(removal).ok());
  // The deletion delta is applied by the next evaluation (DRed).
  ASSERT_TRUE(session.Evaluate().ok());

  PredId shrunk = session.catalog().Find("shrunk", 2);
  ASSERT_NE(shrunk, kInvalidPred);
  RelationStats stats = session.database().relation(shrunk).Stats();
  EXPECT_EQ(stats.rows, 4u);
  EXPECT_EQ(stats.raw_rows, 400u);

  CostModel after = CostModel::Snapshot(session.database(), session.catalog());
  EXPECT_EQ(after.Card(shrunk).rows, 4.0);
  auto order_after =
      OrderBodyLiteralsCostBased(session.catalog(), *join_rule, after);
  ASSERT_TRUE(order_after.ok()) << order_after.status();
  // 4 live rows beat 40: the mostly-deleted relation now leads.
  EXPECT_EQ((*order_after)[0], 0);
}

TEST(Planner, ProfileRecordsEstimatedRows) {
  std::string program = SkewedProgram(/*n=*/64, /*fan_out=*/4);
  Session session;
  ASSERT_TRUE(session.Load(program).ok());
  EvalOptions options;
  options.profile = true;
  ASSERT_TRUE(session.Evaluate(options).ok());
  uint64_t est_rows = 0;
  uint64_t solutions = 0;
  for (const RuleProfileEntry& entry : session.last_eval_profile().rules()) {
    if (entry.rule_index < 0) continue;
    est_rows += entry.counters.est_rows;
    solutions += entry.counters.solutions;
  }
  // The estimate need not be exact, but must be present and in the right
  // ballpark for this exactly-estimable workload (64 join results).
  EXPECT_GT(est_rows, 0u);
  EXPECT_GT(solutions, 0u);
  EXPECT_LE(est_rows, 4 * solutions);
  EXPECT_GE(4 * est_rows, solutions);
}

}  // namespace
}  // namespace ldl
