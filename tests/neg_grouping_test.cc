// §3.3: grouping can express negation.
#include <gtest/gtest.h>

#include <algorithm>

#include "eval/bindings.h"
#include "eval/engine.h"
#include "ldl/ldl.h"
#include "parser/parser.h"
#include "program/lower.h"
#include "program/stratify.h"
#include "rewrite/neg_to_grouping.h"

namespace ldl {
namespace {

// Parses `source`, applies EliminateNegation, evaluates the transformed
// program bottom-up, and returns the facts of pred/arity (formatted and
// sorted).
StatusOr<std::vector<std::string>> RunTransformed(const std::string& source,
                                                  const char* pred,
                                                  uint32_t arity) {
  Interner interner;
  TermFactory factory(&interner);
  Catalog catalog(&interner);
  LDL_ASSIGN_OR_RETURN(ProgramAst ast, ParseProgram(source, &interner));
  LDL_ASSIGN_OR_RETURN(ProgramAst positive, EliminateNegation(ast, &interner));
  LDL_ASSIGN_OR_RETURN(ProgramIr ir, LowerProgram(factory, catalog, positive));
  LDL_ASSIGN_OR_RETURN(Stratification strat, Stratify(catalog, ir));
  Database db(&catalog);
  Engine engine(&factory, &catalog);
  LDL_RETURN_IF_ERROR(engine.EvaluateProgram(ir, strat, &db));
  PredId id = catalog.Find(pred, arity);
  if (id == kInvalidPred) return NotFoundError(pred);
  std::vector<std::string> out;
  for (const Tuple& tuple : db.relation(id).Snapshot()) {
    out.push_back(FormatFact(factory, catalog, id, tuple));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(NegToGrouping, TransformedProgramIsPositive) {
  Interner interner;
  auto ast = ParseProgram(
      "p(a). p(b). q(a).\n"
      "only_p(X) :- p(X), !q(X).",
      &interner);
  ASSERT_TRUE(ast.ok());
  auto positive = EliminateNegation(*ast, &interner);
  ASSERT_TRUE(positive.ok()) << positive.status();
  for (const RuleAst& rule : positive->rules) {
    for (const LiteralAst& literal : rule.body) {
      EXPECT_FALSE(literal.negated && literal.builtin == BuiltinKind::kNone);
    }
  }
  // 4 auxiliary rules per negated literal + the original rules.
  EXPECT_EQ(positive->rules.size(), 4u + 4u);
}

TEST(NegToGrouping, ModelsAgreeOnOriginalPredicates) {
  const char* source =
      "p(a). p(b). p(c). q(a). q(c).\n"
      "only_p(X) :- p(X), !q(X).";
  // Reference: stratified evaluation of the original program.
  Session reference;
  ASSERT_TRUE(reference.Load(source).ok());
  ASSERT_TRUE(reference.Evaluate().ok());
  PredId ref_pred = reference.catalog().Find("only_p", 1);
  auto ref_facts = FormatFacts(
      reference, ref_pred, reference.database().relation(ref_pred).Snapshot());

  auto facts = RunTransformed(source, "only_p", 1);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, ref_facts);
  EXPECT_EQ(*facts, (std::vector<std::string>{"only_p(b)"}));
}

TEST(NegToGrouping, WorksWithArityTwoAndTermArgs) {
  const char* source =
      "e(1, 2). e(2, 3). n(1). n(2). n(3).\n"
      "noedge(X, Y) :- n(X), n(Y), !e(X, Y).";
  auto facts = RunTransformed(source, "noedge", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(facts->size(), 7u);  // 9 pairs - 2 edges
}

TEST(NegToGrouping, TransformedProgramRemainsAdmissible) {
  Interner interner;
  auto ast = ParseProgram(
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- par(X, Z), anc(Z, Y).\n"
      "excl(X, Y, Z) :- anc(X, Y), !anc(X, Z).",
      &interner);
  ASSERT_TRUE(ast.ok());
  auto positive = EliminateNegation(*ast, &interner);
  ASSERT_TRUE(positive.ok()) << positive.status();
  TermFactory factory(&interner);
  Catalog catalog(&interner);
  auto ir = LowerProgram(factory, catalog, *positive);
  ASSERT_TRUE(ir.ok()) << ir.status();
  EXPECT_TRUE(Stratify(catalog, *ir).ok());
}

TEST(NegToGrouping, BottomConstantIsReserved) {
  Interner interner;
  auto ast = ParseProgram("p($bottom) :- q(X), !r(X).", &interner);
  // "$bottom" does not lex as a name; build the clash through the body.
  if (!ast.ok()) GTEST_SKIP() << "reserved name unlexable, reservation moot";
  EXPECT_FALSE(EliminateNegation(*ast, &interner).ok());
}

TEST(NegToGrouping, MultipleNegationsInOneRule) {
  const char* source =
      "p(a). p(b). p(c). q(a). r(b).\n"
      "neither(X) :- p(X), !q(X), !r(X).";
  auto facts = RunTransformed(source, "neither", 1);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"neither(c)"}));
}

}  // namespace
}  // namespace ldl
