// Property tests for the merge-based set operations (term/term.h): every
// fast-path result must equal the term a naive MakeSet over the reference
// multiset would intern. Because sets are hash-consed, "equal" is pointer
// equality, so one EXPECT_EQ per case checks canonical form, sortedness,
// dedup, and interning at once. The element universes deliberately mix
// ints, atoms, function terms, the empty set, and nested sets so the
// CompareTerms total order is exercised across kinds.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "term/term.h"
#include "workload/workload.h"

namespace ldl {
namespace {

class SetOpsTest : public ::testing::Test {
 protected:
  // Naive reference: hand the raw element list to MakeSet, which sorts and
  // deduplicates from scratch. The merge-based paths must agree with it.
  const Term* RefSet(const std::vector<const Term*>& elems) {
    return factory_.MakeSet(elems);
  }

  const Term* RefUnion(const Term* a, const Term* b) {
    std::vector<const Term*> elems(a->args().begin(), a->args().end());
    elems.insert(elems.end(), b->args().begin(), b->args().end());
    return RefSet(elems);
  }

  const Term* RefDifference(const Term* a, const Term* b) {
    std::vector<const Term*> elems;
    for (const Term* e : a->args()) {
      if (!factory_.SetContains(b, e)) elems.push_back(e);
    }
    return RefSet(elems);
  }

  const Term* RefIntersect(const Term* a, const Term* b) {
    std::vector<const Term*> elems;
    for (const Term* e : a->args()) {
      if (factory_.SetContains(b, e)) elems.push_back(e);
    }
    return RefSet(elems);
  }

  // A pool of distinct candidate elements spanning every term kind a ground
  // set can hold, including nested sets and sets-of-sets.
  std::vector<const Term*> ElementPool() {
    std::vector<const Term*> pool;
    for (int i = 0; i < 12; ++i) pool.push_back(factory_.MakeInt(i - 4));
    for (const char* a : {"a", "b", "c", "zebra"})
      pool.push_back(factory_.MakeAtom(a));
    pool.push_back(factory_.MakeString("a"));
    const Term* f_args[] = {factory_.MakeInt(1), factory_.MakeAtom("a")};
    pool.push_back(factory_.MakeFunc("f", f_args));
    pool.push_back(factory_.EmptySet());
    const Term* inner1[] = {factory_.MakeInt(1)};
    pool.push_back(factory_.MakeSet(inner1));
    const Term* inner2[] = {factory_.MakeInt(1), factory_.MakeAtom("b")};
    const Term* nested = factory_.MakeSet(inner2);
    pool.push_back(nested);
    const Term* outer[] = {nested, factory_.EmptySet()};
    pool.push_back(factory_.MakeSet(outer));
    return pool;
  }

  // Random multiset drawn from the pool: duplicates are likely (size can
  // exceed the pool) and size 0 (the empty set) occurs regularly.
  std::vector<const Term*> RandomElems(Rng& rng,
                                       const std::vector<const Term*>& pool,
                                       size_t max_size) {
    std::vector<const Term*> elems;
    size_t n = rng.Below(max_size + 1);
    elems.reserve(n);
    for (size_t i = 0; i < n; ++i)
      elems.push_back(pool[rng.Below(pool.size())]);
    return elems;
  }

  Interner interner_;
  TermFactory factory_{&interner_};
};

// ------------------------------------------------------------ SetBuilder --

TEST_F(SetOpsTest, BuilderMatchesMakeSetRandomized) {
  const std::vector<const Term*> pool = ElementPool();
  Rng rng(42);
  TermFactory::SetBuilder builder(&factory_);
  for (int round = 0; round < 200; ++round) {
    std::vector<const Term*> elems = RandomElems(rng, pool, 30);
    for (const Term* e : elems) builder.Add(e);
    const Term* built = builder.Build();  // resets the builder
    EXPECT_EQ(built, RefSet(elems));
    EXPECT_TRUE(builder.empty()) << "Build must reset the builder";
  }
}

TEST_F(SetOpsTest, BuilderEmptyAndDuplicates) {
  TermFactory::SetBuilder builder(&factory_);
  EXPECT_EQ(builder.Build(), factory_.EmptySet());
  const Term* a = factory_.MakeAtom("a");
  builder.Add(a);
  builder.Add(a);
  builder.Add(a);
  const Term* expected[] = {a};
  EXPECT_EQ(builder.Build(), factory_.MakeSet(expected));
}

TEST_F(SetOpsTest, BuilderIsReusableAfterBuild) {
  TermFactory::SetBuilder builder(&factory_);
  builder.Add(factory_.MakeInt(1));
  const Term* first = builder.Build();
  builder.Add(factory_.MakeInt(2));
  const Term* one_elem[] = {factory_.MakeInt(1)};
  const Term* two_elem[] = {factory_.MakeInt(2)};
  EXPECT_EQ(first, factory_.MakeSet(one_elem));
  EXPECT_EQ(builder.Build(), factory_.MakeSet(two_elem));
}

// ------------------------------------------------------------- SetInsert --

TEST_F(SetOpsTest, InsertMatchesMakeSetRandomized) {
  const std::vector<const Term*> pool = ElementPool();
  Rng rng(7);
  for (int round = 0; round < 200; ++round) {
    std::vector<const Term*> base_elems = RandomElems(rng, pool, 20);
    const Term* set = RefSet(base_elems);
    const Term* element = pool[rng.Below(pool.size())];
    base_elems.push_back(element);
    EXPECT_EQ(factory_.SetInsert(element, set), RefSet(base_elems));
  }
}

TEST_F(SetOpsTest, InsertExistingElementIsIdentity) {
  const std::vector<const Term*> pool = ElementPool();
  Rng rng(8);
  for (int round = 0; round < 100; ++round) {
    std::vector<const Term*> elems = RandomElems(rng, pool, 20);
    if (elems.empty()) continue;
    const Term* set = RefSet(elems);
    const Term* element = elems[rng.Below(elems.size())];
    // No-growth fast path: pointer-identical result, not just equal.
    EXPECT_EQ(factory_.SetInsert(element, set), set);
  }
}

TEST_F(SetOpsTest, InsertNestedSetElement) {
  const Term* one = factory_.MakeInt(1);
  const Term* inner_elems[] = {one};
  const Term* inner = factory_.MakeSet(inner_elems);
  const Term* s = factory_.SetInsert(inner, factory_.EmptySet());
  const Term* expected[] = {inner};
  EXPECT_EQ(s, factory_.MakeSet(expected));
  // {1} and 1 are distinct elements.
  const Term* s2 = factory_.SetInsert(one, s);
  const Term* expected2[] = {one, inner};
  EXPECT_EQ(s2, factory_.MakeSet(expected2));
  EXPECT_EQ(s2->size(), 2u);
}

// --------------------------------------------- Union / Difference / Meet --

TEST_F(SetOpsTest, BinaryOpsMatchNaiveReferenceRandomized) {
  const std::vector<const Term*> pool = ElementPool();
  Rng rng(1234);
  for (int round = 0; round < 300; ++round) {
    const Term* a = RefSet(RandomElems(rng, pool, 25));
    const Term* b = RefSet(RandomElems(rng, pool, 25));
    EXPECT_EQ(factory_.SetUnion(a, b), RefUnion(a, b));
    EXPECT_EQ(factory_.SetDifference(a, b), RefDifference(a, b));
    EXPECT_EQ(factory_.SetIntersect(a, b), RefIntersect(a, b));
  }
}

TEST_F(SetOpsTest, AlgebraicLawsRandomized) {
  const std::vector<const Term*> pool = ElementPool();
  Rng rng(99);
  const Term* empty = factory_.EmptySet();
  for (int round = 0; round < 100; ++round) {
    const Term* a = RefSet(RandomElems(rng, pool, 25));
    const Term* b = RefSet(RandomElems(rng, pool, 25));
    // Pointer equality everywhere: interning makes the laws exact.
    EXPECT_EQ(factory_.SetUnion(a, b), factory_.SetUnion(b, a));
    EXPECT_EQ(factory_.SetIntersect(a, b), factory_.SetIntersect(b, a));
    EXPECT_EQ(factory_.SetUnion(a, a), a);
    EXPECT_EQ(factory_.SetIntersect(a, a), a);
    EXPECT_EQ(factory_.SetDifference(a, a), empty);
    EXPECT_EQ(factory_.SetUnion(a, empty), a);
    EXPECT_EQ(factory_.SetIntersect(a, empty), empty);
    EXPECT_EQ(factory_.SetDifference(a, empty), a);
    EXPECT_EQ(factory_.SetDifference(empty, a), empty);
    // a = (a \ b) U (a n b), and the two parts are disjoint.
    const Term* diff = factory_.SetDifference(a, b);
    const Term* meet = factory_.SetIntersect(a, b);
    EXPECT_EQ(factory_.SetUnion(diff, meet), a);
    EXPECT_EQ(factory_.SetIntersect(diff, meet), empty);
  }
}

TEST_F(SetOpsTest, UnionNoGrowthReturnsOperandPointer) {
  const std::vector<const Term*> pool = ElementPool();
  Rng rng(55);
  for (int round = 0; round < 100; ++round) {
    std::vector<const Term*> elems = RandomElems(rng, pool, 25);
    const Term* a = RefSet(elems);
    // A random subset of a.
    std::vector<const Term*> sub;
    for (const Term* e : a->args()) {
      if (rng.Below(2) == 0) sub.push_back(e);
    }
    const Term* b = RefSet(sub);
    // b subset of a: both orders must return `a` itself, not a copy.
    EXPECT_EQ(factory_.SetUnion(a, b), a);
    EXPECT_EQ(factory_.SetUnion(b, a), a);
  }
}

TEST_F(SetOpsTest, OpsOverSetsOfSets) {
  // Operands whose elements are themselves sets: ordering is by the set
  // total order (cardinality first), and interning still canonicalizes.
  auto set_of = [&](std::initializer_list<int> xs) {
    std::vector<const Term*> elems;
    for (int x : xs) elems.push_back(factory_.MakeInt(x));
    return factory_.MakeSet(elems);
  };
  const Term* s1 = set_of({1});
  const Term* s12 = set_of({1, 2});
  const Term* s3 = set_of({3});
  const Term* a_elems[] = {s1, s12};
  const Term* b_elems[] = {s12, s3};
  const Term* a = factory_.MakeSet(a_elems);
  const Term* b = factory_.MakeSet(b_elems);
  const Term* union_elems[] = {s1, s12, s3};
  const Term* meet_elems[] = {s12};
  const Term* diff_elems[] = {s1};
  EXPECT_EQ(factory_.SetUnion(a, b), factory_.MakeSet(union_elems));
  EXPECT_EQ(factory_.SetIntersect(a, b), factory_.MakeSet(meet_elems));
  EXPECT_EQ(factory_.SetDifference(a, b), factory_.MakeSet(diff_elems));
}

// ------------------------------------------------------- Intern counting --

TEST_F(SetOpsTest, SetInternedCountTracksDistinctSets) {
  size_t before = factory_.set_interned_count();
  const Term* a = factory_.MakeAtom("a");
  const Term* elems[] = {a};
  const Term* s = factory_.MakeSet(elems);
  EXPECT_EQ(factory_.set_interned_count(), before + 1);
  // Re-interning the same set and no-growth ops add nothing.
  factory_.MakeSet(elems);
  factory_.SetInsert(a, s);
  factory_.SetUnion(s, s);
  EXPECT_EQ(factory_.set_interned_count(), before + 1);
  // A genuinely new set bumps the counter.
  factory_.SetInsert(factory_.MakeAtom("b"), s);
  EXPECT_EQ(factory_.set_interned_count(), before + 2);
}

}  // namespace
}  // namespace ldl
