// Golden tests over the .ldl example corpus: every program loads, analyzes,
// evaluates, and its stored queries answer as expected.
#include <gtest/gtest.h>

#include "ldl/ldl.h"

namespace ldl {
namespace {

std::string CorpusPath(const char* name) {
  return std::string(LDL1_CORPUS_DIR) + "/" + name;
}

StatusOr<std::vector<std::string>> RunStoredQueries(Session& session) {
  std::vector<std::string> all;
  AstPrinter printer(&session.interner());
  for (const QueryAst& query : session.stored_queries()) {
    std::string goal = printer.ToString(query.goal);
    LDL_ASSIGN_OR_RETURN(QueryResult result, session.Query(goal));
    for (const Tuple& tuple : result.tuples) {
      all.push_back(goal + " -> " + session.FormatTuple(tuple));
    }
  }
  std::sort(all.begin(), all.end());
  return all;
}

TEST(Corpus, Ancestor) {
  Session session;
  ASSERT_TRUE(session.LoadFile(CorpusPath("ancestor.ldl")).ok());
  auto answers = RunStoredQueries(session);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(answers->size(), 5u);  // abe's five descendants
}

TEST(Corpus, Bom) {
  Session session;
  ASSERT_TRUE(session.LoadFile(CorpusPath("bom.ldl")).ok());
  auto answers = RunStoredQueries(session);
  ASSERT_TRUE(answers.ok()) << answers.status();
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0], "result(1, C) -> (1, 245)");
}

TEST(Corpus, Young) {
  Session session;
  ASSERT_TRUE(session.LoadFile(CorpusPath("young.ldl")).ok());
  auto answers = RunStoredQueries(session);
  ASSERT_TRUE(answers.ok()) << answers.status();
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0], "young(ella, S) -> (ella, {bob})");
}

TEST(Corpus, School) {
  Session session;
  ASSERT_TRUE(session.LoadFile(CorpusPath("school.ldl")).ok());
  auto answers = RunStoredQueries(session);
  ASSERT_TRUE(answers.ok()) << answers.status();
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0],
            "by_teacher(smith, S, D) -> (smith, {ann, bob}, {mon, wed})");
}

TEST(Corpus, Sets) {
  Session session;
  ASSERT_TRUE(session.LoadFile(CorpusPath("sets.ldl")).ok());
  auto answers = RunStoredQueries(session);
  ASSERT_TRUE(answers.ok()) << answers.status();
  // elems(X) over {1,2,3} and {2,4}: 1, 2, 3, 4.
  EXPECT_EQ(answers->size(), 4u);
  // Spot-check the derived relations too.
  PredId unions = session.catalog().Find("unions", 1);
  EXPECT_GE(session.database().relation(unions).size(), 4u);
  PredId common = session.catalog().Find("common", 1);
  auto rows = session.database().relation(common).Snapshot();
  bool found = false;
  for (const Tuple& tuple : rows) {
    if (session.FormatTuple(tuple) == "({2})") found = true;
  }
  EXPECT_TRUE(found) << "intersection of {1,2,3} and {2,4} is {2}";
}

TEST(Corpus, MissingFileIsNotFound) {
  Session session;
  EXPECT_EQ(session.LoadFile(CorpusPath("nope.ldl")).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace ldl
