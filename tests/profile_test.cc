// EvalProfile: per-rule attribution, the cross-thread determinism contract
// (profile.h), JSON export, and the profiling-off path.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "eval/profile.h"
#include "ldl/ldl.h"

namespace ldl {
namespace {

// parent chain n0 -> n1 -> ... -> n<n>, plus the transitive closure rules.
std::string AncestorChain(int length) {
  std::string src;
  for (int i = 0; i < length; ++i) {
    src += "parent(n" + std::to_string(i) + ", n" + std::to_string(i + 1) + ").\n";
  }
  src +=
      "anc(X, Y) :- parent(X, Y).\n"
      "anc(X, Y) :- parent(X, Z), anc(Z, Y).\n";
  return src;
}

// The deterministic (non-timing) counters per touched rule, keyed by rule
// index, plus the rule's stratum and label.
struct RuleSnapshot {
  int stratum;
  std::string label;
  std::map<std::string, uint64_t> counters;
  bool operator==(const RuleSnapshot& other) const {
    return stratum == other.stratum && label == other.label &&
           counters == other.counters;
  }
};

std::map<int, RuleSnapshot> NonTimingFields(const EvalProfile& profile) {
  std::map<int, RuleSnapshot> out;
  for (const RuleProfileEntry& entry : profile.rules()) {
    if (entry.rule_index < 0) continue;
    RuleSnapshot snapshot;
    snapshot.stratum = entry.stratum;
    snapshot.label = entry.label;
    entry.counters.ForEachField(
        [&](const char* name, uint64_t value) { snapshot.counters[name] = value; },
        /*include_timing=*/false);
    out[entry.rule_index] = std::move(snapshot);
  }
  return out;
}

EvalProfile ProfiledEvaluate(const std::string& source, int num_threads,
                             EvalOptions::Mode mode = EvalOptions::Mode::kSemiNaive) {
  Session session;
  EXPECT_TRUE(session.Load(source).ok());
  EvalOptions options;
  options.mode = mode;
  options.num_threads = num_threads;
  options.profile = true;
  Status status = session.Evaluate(options);
  EXPECT_TRUE(status.ok()) << status;
  return session.last_eval_profile();
}

TEST(Profile, CollectsPerRuleCounters) {
  EvalProfile profile = ProfiledEvaluate(AncestorChain(10), 1);
  std::map<int, RuleSnapshot> rules = NonTimingFields(profile);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].label, "anc(X, Y) :- parent(X, Y)");
  EXPECT_EQ(rules[1].label, "anc(X, Y) :- parent(X, Z), anc(Z, Y)");
  // The base rule fires once (round 0) and derives every parent edge.
  EXPECT_EQ(rules[0].counters["firings"], 1u);
  EXPECT_EQ(rules[0].counters["facts_derived"], 10u);
  // The recursive rule re-fires per semi-naive round and derives the rest
  // of the closure: 10*11/2 total anc facts, minus the 10 base edges.
  EXPECT_GT(rules[1].counters["firings"], 1u);
  EXPECT_EQ(rules[1].counters["facts_derived"], 45u);
  EXPECT_GT(rules[1].counters["delta_rows"], 0u);
  ASSERT_EQ(profile.strata().size(), 1u);
  EXPECT_EQ(profile.strata()[0].stratum, 0);
  EXPECT_GT(profile.strata()[0].rounds, 1u);
  EXPECT_EQ(profile.strata()[0].facts_derived, 55u);
  EXPECT_FALSE(profile.topdown().used);
}

TEST(Profile, DeterministicAcrossThreadWidths) {
  // Long enough that delta windows exceed the sharding threshold, so the
  // 4-thread run really splits windows into row-range shards.
  const std::string source = AncestorChain(150);
  EvalProfile serial = ProfiledEvaluate(source, 1);
  EvalProfile parallel = ProfiledEvaluate(source, 4);
  EXPECT_EQ(NonTimingFields(serial), NonTimingFields(parallel));
  ASSERT_EQ(serial.strata().size(), parallel.strata().size());
  for (size_t i = 0; i < serial.strata().size(); ++i) {
    EXPECT_EQ(serial.strata()[i].rounds, parallel.strata()[i].rounds) << i;
    EXPECT_EQ(serial.strata()[i].facts_derived,
              parallel.strata()[i].facts_derived)
        << i;
  }
  // The parallel run did schedule pool tasks (a timing-class field, so it
  // may differ across widths -- but it must be nonzero at width 4).
  uint64_t tasks = 0;
  for (const StratumProfile& stratum : parallel.strata()) {
    tasks += stratum.parallel_tasks;
  }
  EXPECT_GT(tasks, 0u);
}

TEST(Profile, DeterministicAcrossThreadWidthsNaive) {
  const std::string source = AncestorChain(40);
  EvalProfile serial = ProfiledEvaluate(source, 1, EvalOptions::Mode::kNaive);
  EvalProfile parallel = ProfiledEvaluate(source, 4, EvalOptions::Mode::kNaive);
  EXPECT_EQ(NonTimingFields(serial), NonTimingFields(parallel));
}

TEST(Profile, OffByDefaultCollectsNothing) {
  Session session;
  ASSERT_TRUE(session.Load(AncestorChain(5)).ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_TRUE(session.last_eval_profile().rules().empty());
  EXPECT_TRUE(session.last_eval_profile().strata().empty());
  EXPECT_EQ(session.last_eval_profile().total_wall_ns(), 0u);
}

TEST(Profile, StratifiedProgramReportsPerStratumRollups) {
  EvalProfile profile = ProfiledEvaluate(
      "edge(a, b). edge(b, c).\n"
      "reach(X, Y) :- edge(X, Y).\n"
      "reach(X, Y) :- edge(X, Z), reach(Z, Y).\n"
      "unreachable(X, Y) :- edge(X, _), edge(_, Y), ~reach(X, Y).\n",
      1);
  // Negation forces >= 2 strata; each evaluated stratum reports a rollup.
  EXPECT_GE(profile.strata().size(), 2u);
  std::map<int, RuleSnapshot> rules = NonTimingFields(profile);
  bool saw_negation = false;
  for (const auto& [index, rule] : rules) {
    if (rule.label.find('!') != std::string::npos) {
      saw_negation = true;
      EXPECT_GT(rule.stratum, 0) << rule.label;
    }
  }
  EXPECT_TRUE(saw_negation);
}

TEST(Profile, ProfiledQueryAfterUnprofiledEvaluationReevaluates) {
  Session session;
  ASSERT_TRUE(session.Load(AncestorChain(5)).ok());
  // First query materializes the model without profiling...
  ASSERT_TRUE(session.Query("anc(n0, X)").ok());
  EXPECT_TRUE(session.last_eval_profile().rules().empty());
  // ...so a later profiled query must re-evaluate, not return the empty
  // profile of the cached model.
  QueryOptions options;
  options.eval.profile = true;
  auto result = session.Query("anc(n0, X)", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->tuples.size(), 5u);
  EXPECT_FALSE(result->profile.rules().empty());
  EXPECT_FALSE(result->profile.strata().empty());
}

TEST(Profile, MagicQueryProfilesRewrittenRules) {
  Session session;
  ASSERT_TRUE(session.Load(AncestorChain(10)).ok());
  QueryOptions options;
  options.strategy = QueryStrategy::kMagic;
  options.eval.profile = true;
  auto result = session.Query("anc(n0, X)", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->tuples.size(), 10u);
  // The profile covers the rewritten (magic) program: unlayered, so every
  // rule and the single pseudo-stratum carry stratum -1.
  EXPECT_FALSE(result->profile.rules().empty());
  for (const RuleProfileEntry& entry : result->profile.rules()) {
    if (entry.rule_index < 0) continue;
    EXPECT_EQ(entry.stratum, -1);
  }
  ASSERT_EQ(result->profile.strata().size(), 1u);
  EXPECT_EQ(result->profile.strata()[0].stratum, -1);
  EXPECT_GT(result->profile.strata()[0].facts_derived, 0u);
}

TEST(Profile, TopDownQueryFillsRollup) {
  Session session;
  ASSERT_TRUE(session.Load(AncestorChain(10)).ok());
  QueryOptions options;
  options.strategy = QueryStrategy::kTopDown;
  options.eval.profile = true;
  auto result = session.Query("anc(n0, X)", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->tuples.size(), 10u);
  EXPECT_TRUE(result->profile.topdown().used);
  EXPECT_GT(result->profile.topdown().calls, 0u);
  EXPECT_GT(result->profile.topdown().expansions, 0u);
  EXPECT_GT(result->profile.topdown().tables, 0u);
  std::map<int, RuleSnapshot> rules = NonTimingFields(result->profile);
  ASSERT_FALSE(rules.empty());
  uint64_t firings = 0;
  for (auto& [index, rule] : rules) firings += rule.counters["firings"];
  EXPECT_EQ(firings, result->profile.topdown().expansions);
}

TEST(Profile, ToJsonShape) {
  EvalProfile profile = ProfiledEvaluate(AncestorChain(5), 2);
  std::string json = profile.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key :
       {"\"total_wall_ns\"", "\"strata\"", "\"rules\"", "\"label\"",
        "\"firings\"", "\"delta_rows\"", "\"wall_ns\"", "\"parallel_tasks\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Labels are quoted rule renderings; braces stay balanced.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(Profile, LabelEscapesJsonMetacharacters) {
  Session session;
  // p needs a proper rule so its quoted-string fact stays in the profiled
  // program instead of being split off as pure EDB.
  ASSERT_TRUE(
      session.Load("p(\"a\\\"b\"). p(X) :- q(X). q(c). q(X) :- p(X).").ok());
  EvalOptions options;
  options.profile = true;
  ASSERT_TRUE(session.Evaluate(options).ok());
  std::string json = session.last_eval_profile().ToJson();
  // The embedded quote in the constant must arrive escaped.
  EXPECT_EQ(json.find("a\"b"), std::string::npos);
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);
}

}  // namespace
}  // namespace ldl
