// Dependency-graph construction and SCC computation (§3.1 machinery).
#include <gtest/gtest.h>

#include <set>

#include "base/str_util.h"
#include "parser/parser.h"
#include "program/depgraph.h"
#include "program/lower.h"

namespace ldl {
namespace {

class DepGraphTest : public ::testing::Test {
 protected:
  void Build(const std::string& source) {
    auto ast = ParseProgram(source, &interner_);
    ASSERT_TRUE(ast.ok()) << ast.status();
    auto ir = LowerProgram(factory_, catalog_, *ast);
    ASSERT_TRUE(ir.ok()) << ir.status();
    program_ = std::move(*ir);
    graph_ = DepGraph::Build(catalog_, program_);
  }

  PredId Pred(const char* name, uint32_t arity) {
    PredId id = catalog_.Find(name, arity);
    EXPECT_NE(id, kInvalidPred) << name;
    return id;
  }

  // (from, to, strict) triples for easy assertions.
  std::multiset<std::tuple<PredId, PredId, bool>> Edges() {
    std::multiset<std::tuple<PredId, PredId, bool>> result;
    for (const DepEdge& edge : graph_.edges()) {
      result.insert({edge.from, edge.to, edge.strict});
    }
    return result;
  }

  Interner interner_;
  TermFactory factory_{&interner_};
  Catalog catalog_{&interner_};
  ProgramIr program_;
  DepGraph graph_;
};

TEST_F(DepGraphTest, PositiveBodyGivesLooseEdges) {
  Build("a(X) :- b(X), c(X).");
  auto edges = Edges();
  EXPECT_EQ(edges.size(), 2u);
  EXPECT_TRUE(edges.count({Pred("a", 1), Pred("b", 1), false}));
  EXPECT_TRUE(edges.count({Pred("a", 1), Pred("c", 1), false}));
}

TEST_F(DepGraphTest, NegationGivesStrictEdge) {
  Build("a(X) :- b(X), !c(X).");
  auto edges = Edges();
  EXPECT_TRUE(edges.count({Pred("a", 1), Pred("b", 1), false}));
  EXPECT_TRUE(edges.count({Pred("a", 1), Pred("c", 1), true}));
}

TEST_F(DepGraphTest, GroupingHeadMakesAllBodyEdgesStrict) {
  // §3.1 clause (2): a grouping head depends strictly on *every* body
  // predicate, positive or not.
  Build("g(K, <V>) :- b(K), e(K, V).");
  auto edges = Edges();
  EXPECT_TRUE(edges.count({Pred("g", 2), Pred("b", 1), true}));
  EXPECT_TRUE(edges.count({Pred("g", 2), Pred("e", 2), true}));
}

TEST_F(DepGraphTest, BuiltinsContributeNoEdges) {
  Build("a(X, S) :- b(X), s(S), member(X, S), X < 9.");
  EXPECT_EQ(graph_.edges().size(), 2u);
}

TEST_F(DepGraphTest, DuplicateBodyOccurrencesGiveDuplicateEdges) {
  Build("a(X, Y) :- e(X, Z), e(Z, Y).");
  auto edges = Edges();
  EXPECT_EQ(edges.count({Pred("a", 2), Pred("e", 2), false}), 2u);
}

TEST_F(DepGraphTest, EdgeRecordsOriginRule) {
  Build("a(X) :- b(X).\nc(X) :- a(X).");
  ASSERT_EQ(graph_.edges().size(), 2u);
  EXPECT_EQ(graph_.edges()[0].rule_index, 0);
  EXPECT_EQ(graph_.edges()[1].rule_index, 1);
}

TEST_F(DepGraphTest, SccGroupsMutualRecursion) {
  Build(
      "a(X) :- b(X).\n"
      "b(X) :- a(X).\n"
      "c(X) :- a(X).\n"
      "base(1).");
  int count = 0;
  std::vector<int> component = graph_.StronglyConnectedComponents(&count);
  EXPECT_EQ(component[Pred("a", 1)], component[Pred("b", 1)]);
  EXPECT_NE(component[Pred("a", 1)], component[Pred("c", 1)]);
  // Reverse-topological numbering: dependencies have smaller ids.
  EXPECT_LT(component[Pred("a", 1)], component[Pred("c", 1)]);
}

TEST_F(DepGraphTest, SccReverseTopologicalOrder) {
  Build(
      "l3(X) :- l2(X).\n"
      "l2(X) :- l1(X).\n"
      "l1(X) :- base(X).");
  int count = 0;
  std::vector<int> component = graph_.StronglyConnectedComponents(&count);
  EXPECT_LT(component[Pred("base", 1)], component[Pred("l1", 1)]);
  EXPECT_LT(component[Pred("l1", 1)], component[Pred("l2", 1)]);
  EXPECT_LT(component[Pred("l2", 1)], component[Pred("l3", 1)]);
}

TEST_F(DepGraphTest, DeepChainDoesNotOverflowTheStack) {
  // 4000-deep dependency chain: the iterative Tarjan must handle it.
  std::string source;
  for (int i = 0; i < 4000; ++i) {
    source += StrCat("p", i + 1, "(X) :- p", i, "(X).\n");
  }
  Build(source);
  int count = 0;
  std::vector<int> component = graph_.StronglyConnectedComponents(&count);
  EXPECT_EQ(count, static_cast<int>(catalog_.size()));
}

TEST_F(DepGraphTest, LargeCycleIsOneComponent) {
  std::string source;
  for (int i = 0; i < 500; ++i) {
    source += StrCat("c", i, "(X) :- c", (i + 1) % 500, "(X).\n");
  }
  Build(source);
  int count = 0;
  std::vector<int> component = graph_.StronglyConnectedComponents(&count);
  EXPECT_EQ(count, 1);
  for (int c : component) EXPECT_EQ(c, 0);
}

}  // namespace
}  // namespace ldl
