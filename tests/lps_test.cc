// §5: translation of LPS bounded-universal rules into LDL1 (Theorem 3).
#include <gtest/gtest.h>

#include <algorithm>

#include "eval/bindings.h"
#include "eval/engine.h"
#include "parser/parser.h"
#include "program/lower.h"
#include "program/stratify.h"
#include "rewrite/lps.h"

namespace ldl {
namespace {

class LpsTest : public ::testing::Test {
 protected:
  // Builds an LPS rule head <- (ALL v in SetVar)... [body] and translates it.
  Status Translate(const char* head, std::vector<std::pair<const char*, const char*>>
                                         quantifiers,
                   std::vector<const char*> body, const char* domain_pred) {
    LpsRule rule;
    auto head_ast = ParseLiteralText(head, &interner_);
    LDL_RETURN_IF_ERROR(head_ast.status());
    rule.head = *head_ast;
    for (auto [x, set] : quantifiers) {
      rule.quantifiers.push_back(
          LpsQuantifier{interner_.Intern(x), interner_.Intern(set)});
    }
    for (const char* literal_text : body) {
      auto literal = ParseLiteralText(literal_text, &interner_);
      LDL_RETURN_IF_ERROR(literal.status());
      rule.body.push_back(*literal);
    }
    return TranslateLpsRule(rule, interner_.Intern(domain_pred), &interner_,
                            &program_);
  }

  // Adds plain LDL1 rules/facts alongside the translation.
  Status Add(const std::string& source) {
    auto parsed = ParseProgram(source, &interner_);
    LDL_RETURN_IF_ERROR(parsed.status());
    for (RuleAst& rule : parsed->rules) program_.rules.push_back(std::move(rule));
    return Status::OK();
  }

  StatusOr<std::vector<std::string>> Eval(const char* pred, uint32_t arity) {
    TermFactory factory(&interner_);
    Catalog catalog(&interner_);
    LDL_ASSIGN_OR_RETURN(ProgramIr ir, LowerProgram(factory, catalog, program_));
    LDL_ASSIGN_OR_RETURN(Stratification strat, Stratify(catalog, ir));
    Database db(&catalog);
    Engine engine(&factory, &catalog);
    LDL_RETURN_IF_ERROR(engine.EvaluateProgram(ir, strat, &db));
    PredId id = catalog.Find(pred, arity);
    if (id == kInvalidPred) return NotFoundError(pred);
    std::vector<std::string> out;
    for (const Tuple& tuple : db.relation(id).Snapshot()) {
      out.push_back(FormatFact(factory, catalog, id, tuple));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  Interner interner_;
  ProgramAst program_;
};

TEST_F(LpsTest, DisjointSets) {
  // disj(X, Y) <- (ALL x in X)(ALL y in Y) x /= y   (paper §5 example).
  ASSERT_TRUE(Translate("disj(X, Y)", {{"E1", "X"}, {"E2", "Y"}}, {"E1 /= E2"},
                        "cand")
                  .ok());
  ASSERT_TRUE(Add("cand({1, 2}, {3, 4}).\n"
                  "cand({1, 2}, {2, 3}).\n"
                  "cand({5}, {6}).")
                  .ok());
  auto facts = Eval("disj", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"disj({1, 2}, {3, 4})",
                                              "disj({5}, {6})"}));
}

TEST_F(LpsTest, SubsetViaMember) {
  // subset(X, Y) <- (ALL x in X) member(x, Y).
  ASSERT_TRUE(
      Translate("subs(X, Y)", {{"E", "X"}}, {"member(E, Y)"}, "cand").ok());
  ASSERT_TRUE(Add("cand({1}, {1, 2}).\n"
                  "cand({1, 3}, {1, 2}).\n"
                  "cand({2, 1}, {1, 2, 9}).")
                  .ok());
  auto facts = Eval("subs", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"subs({1, 2}, {1, 2, 9})",
                                              "subs({1}, {1, 2})"}));
}

TEST_F(LpsTest, EmptySetCaveatFromPaper) {
  // The paper's sketch fails on empty quantification sets (the universally
  // quantified body should be vacuously true); we reproduce the sketch
  // faithfully, so the fact is absent. Documented in rewrite/lps.h.
  ASSERT_TRUE(Translate("disj(X, Y)", {{"E1", "X"}, {"E2", "Y"}}, {"E1 /= E2"},
                        "cand")
                  .ok());
  ASSERT_TRUE(Add("cand({}, {1}).").ok());
  auto facts = Eval("disj", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_TRUE(facts->empty());
}

TEST_F(LpsTest, BodyWithExtraPredicates) {
  // all_even(X) <- (ALL x in X) even(x).
  ASSERT_TRUE(
      Translate("all_even(X)", {{"E", "X"}}, {"even(E)"}, "cand").ok());
  ASSERT_TRUE(Add("even(0). even(2). even(4).\n"
                  "cand({0, 2}). cand({2, 3}). cand({4}).")
                  .ok());
  auto facts = Eval("all_even", 1);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts,
            (std::vector<std::string>{"all_even({0, 2})", "all_even({4})"}));
}

TEST_F(LpsTest, RejectsMalformedRules) {
  LpsRule no_quantifiers;
  auto head = ParseLiteralText("p(X)", &interner_);
  ASSERT_TRUE(head.ok());
  no_quantifiers.head = *head;
  EXPECT_FALSE(TranslateLpsRule(no_quantifiers, interner_.Intern("d"), &interner_,
                                &program_)
                   .ok());
}

}  // namespace
}  // namespace ldl
