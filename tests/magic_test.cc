// §6: sips, adornment, Generalized Magic Sets, and the equivalence theorems.
#include <gtest/gtest.h>

#include <algorithm>

#include "base/str_util.h"
#include "ldl/ldl.h"
#include "parser/parser.h"
#include "rewrite/adorn.h"
#include "rewrite/magic.h"
#include "rewrite/sip.h"
#include "workload/workload.h"

namespace ldl {
namespace {

constexpr const char* kAncestorRules =
    "a(X, Y) :- p(X, Y).\n"
    "a(X, Y) :- a(X, Z), a(Z, Y).\n";

constexpr const char* kYoungRules =
    // The paper's §6 running example, rules 1-5.
    "a(X, Y) :- p(X, Y).\n"
    "a(X, Y) :- a(X, Z), a(Z, Y).\n"
    "sg(X, Y) :- siblings(X, Y).\n"
    "sg(X, Y) :- p(Z1, X), sg(Z1, Z2), p(Z2, Y).\n"
    "young(X, <Y>) :- !a(X, Z), sg(X, Y).\n";

// ------------------------------------------------------------------- sips --

TEST(Sip, LeftToRightBindingFlow) {
  Session session;
  ASSERT_TRUE(session.Load(kAncestorRules).ok());
  ASSERT_TRUE(session.Analyze().ok());
  // Rule 2: a(X, Y) :- a(X, Z), a(Z, Y) with head adornment bf.
  const RuleIr* rule2 = nullptr;
  for (const RuleIr& rule : session.program().rules) {
    if (rule.body.size() == 2) rule2 = &rule;
  }
  ASSERT_NE(rule2, nullptr);
  Sip sip = BuildLeftToRightSip(session.catalog(), *rule2, "bf");
  // First occurrence sees X bound: "bf"; its outputs bind Z, so the second
  // sees "bf" too -- the paper's sip for rule 2.
  EXPECT_EQ(sip.literal_adornments[0], "bf");
  EXPECT_EQ(sip.literal_adornments[1], "bf");
  ASSERT_EQ(sip.arcs.size(), 2u);
  EXPECT_EQ(sip.arcs[0].target, 0);
  EXPECT_EQ(sip.arcs[1].target, 1);
  // Second arc's sources include the head pseudo-node and occurrence 0.
  EXPECT_EQ(sip.arcs[1].sources, (std::vector<int>{-1, 0}));
}

TEST(Sip, GroupedHeadArgumentPassesNoBindings) {
  Session session;
  ASSERT_TRUE(session.Load(kYoungRules).ok());
  ASSERT_TRUE(session.Analyze().ok());
  const RuleIr* young_rule = nullptr;
  for (const RuleIr& rule : session.program().rules) {
    if (rule.is_grouping()) young_rule = &rule;
  }
  ASSERT_NE(young_rule, nullptr);
  // Even if a caller somehow bound the grouped position, its variable must
  // not flow into the body.
  Sip sip = BuildLeftToRightSip(session.catalog(), *young_rule, "bb");
  // Body: !a(X, Z), sg(X, Y). X is bound (head position 0), Y is not.
  EXPECT_EQ(sip.literal_adornments[0], "bf");
  EXPECT_EQ(sip.literal_adornments[1], "bf");
}

TEST(Sip, QueryAdornmentForcesGroupedPositionsFree) {
  Session session;
  ASSERT_TRUE(session.Load(kYoungRules).ok());
  ASSERT_TRUE(session.Analyze().ok());
  Interner& interner = session.interner();
  auto goal_ast = ParseLiteralText("young(john, {a})", &interner);
  ASSERT_TRUE(goal_ast.ok());
  auto goal = LowerLiteral(session.factory(), session.catalog(), *goal_ast);
  ASSERT_TRUE(goal.ok());
  // Both args are ground, but position 1 is grouped: adornment stays bf.
  EXPECT_EQ(QueryAdornment(session.catalog(), *goal), "bf");
}

// -------------------------------------------------------------- adornment --

TEST(Adorn, ProducesReachableAdornedRules) {
  Session session;
  ASSERT_TRUE(session.Load(kYoungRules).ok());
  ASSERT_TRUE(session.Analyze().ok());
  auto goal_ast = ParseLiteralText("young(john, S)", &session.interner());
  ASSERT_TRUE(goal_ast.ok());
  auto goal = LowerLiteral(session.factory(), session.catalog(), *goal_ast);
  ASSERT_TRUE(goal.ok());
  auto adorned = AdornProgram(session.program(), &session.catalog(), *goal);
  ASSERT_TRUE(adorned.ok()) << adorned.status();
  EXPECT_EQ(adorned->query_adornment, "bf");
  // The paper's adorned program: young__bf, a__bf, sg__bf (5 rules).
  EXPECT_EQ(adorned->rules.rules.size(), 5u);
  Catalog& catalog = session.catalog();
  EXPECT_NE(catalog.Find("young__bf", 2), kInvalidPred);
  EXPECT_NE(catalog.Find("a__bf", 2), kInvalidPred);
  EXPECT_NE(catalog.Find("sg__bf", 2), kInvalidPred);
  // No free-free versions are reachable.
  EXPECT_EQ(catalog.Find("a__ff", 2), kInvalidPred);
}

TEST(Adorn, GoalOnExtensionalPredicateFails) {
  Session session;
  ASSERT_TRUE(session.Load("p(a, b).\n").ok());
  ASSERT_TRUE(session.Analyze().ok());
  auto goal_ast = ParseLiteralText("p(a, X)", &session.interner());
  ASSERT_TRUE(goal_ast.ok());
  auto goal = LowerLiteral(session.factory(), session.catalog(), *goal_ast);
  ASSERT_TRUE(goal.ok());
  EXPECT_FALSE(AdornProgram(session.program(), &session.catalog(), *goal).ok());
}

// ------------------------------------------------------------ magic rules --

TEST(Magic, RewriteShapeMatchesPaper) {
  // The paper's rewritten rule set 1'-11' (modulo rule numbering): one seed,
  // magic rules for a, sg (two each: from rule 2 twice / rules 4, 5), one
  // magic rule for a from rule 5, and five modified rules.
  Session session;
  ASSERT_TRUE(session.Load(kYoungRules).ok());
  ASSERT_TRUE(session.Analyze().ok());
  auto goal_ast = ParseLiteralText("young(john, S)", &session.interner());
  auto goal = LowerLiteral(session.factory(), session.catalog(), *goal_ast);
  ASSERT_TRUE(goal.ok());
  auto magic = MagicRewrite(session.program(), &session.catalog(), *goal);
  ASSERT_TRUE(magic.ok()) << magic.status();
  Catalog& catalog = session.catalog();
  PredId m_young = catalog.Find("m_young__bf", 1);
  PredId m_a = catalog.Find("m_a__bf", 1);
  PredId m_sg = catalog.Find("m_sg__bf", 1);
  ASSERT_NE(m_young, kInvalidPred);
  ASSERT_NE(m_a, kInvalidPred);
  ASSERT_NE(m_sg, kInvalidPred);

  size_t seeds = 0;
  size_t magic_rules = 0;
  size_t modified = 0;
  for (const RuleIr& rule : magic->rules.rules) {
    if (rule.head_pred == m_young || rule.head_pred == m_a ||
        rule.head_pred == m_sg) {
      if (rule.is_fact()) {
        ++seeds;
      } else {
        ++magic_rules;
        // Every magic rule starts from a magic literal.
        EXPECT_FALSE(rule.body.empty());
      }
    } else {
      ++modified;
      // Every modified rule is guarded by its head's magic literal.
      ASSERT_FALSE(rule.body.empty());
      EXPECT_TRUE(rule.body[0].pred == m_young || rule.body[0].pred == m_a ||
                  rule.body[0].pred == m_sg);
    }
  }
  EXPECT_EQ(seeds, 1u);      // 11': magic_young(john)
  EXPECT_EQ(modified, 5u);   // 6'-10'
  // 1' is the trivially cyclic magic rule the paper notes "may be deleted";
  // our generator emits it too: rules 2 (x2), 4, 5 produce 5 magic rules.
  EXPECT_EQ(magic_rules, 5u);
}

TEST(Magic, AnswersMatchFullEvaluationOnBoundQuery) {
  Session session;
  ASSERT_TRUE(session.Load(ParentChain(30, "p")).ok());
  ASSERT_TRUE(session.Load(kAncestorRules).ok());
  auto full = session.Query("a(p0, X)");
  ASSERT_TRUE(full.ok()) << full.status();
  QueryOptions magic_options;
  magic_options.strategy = ldl::QueryStrategy::kMagic;
  auto magic = session.Query("a(p0, X)", magic_options);
  ASSERT_TRUE(magic.ok()) << magic.status();
  EXPECT_EQ(full->tuples.size(), 30u);
  EXPECT_EQ(magic->tuples.size(), 30u);
}

TEST(Magic, TouchesFewerTuplesThanFullEvaluation) {
  Session session;
  ASSERT_TRUE(session.Load(ParentChain(120, "p")).ok());
  ASSERT_TRUE(session
                  .Load("a(X, Y) :- p(X, Y).\n"
                        "a(X, Y) :- p(X, Z), a(Z, Y).")
                  .ok());
  QueryOptions magic_options;
  magic_options.strategy = ldl::QueryStrategy::kMagic;
  auto magic = session.Query("a(p110, X)", magic_options);
  ASSERT_TRUE(magic.ok()) << magic.status();
  EXPECT_EQ(magic->tuples.size(), 10u);
  auto full = session.Query("a(p110, X)");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->tuples.size(), 10u);
  // §6's efficiency claim: the bound query restricts computation.
  EXPECT_LT(magic->stats.facts_derived, full->stats.facts_derived / 10);
}

TEST(Magic, YoungRunningExampleEndToEnd) {
  SameGenerationWorkload workload = MakeSameGeneration(3, 2, 3);
  Session session;
  ASSERT_TRUE(session.Load(workload.facts).ok());
  ASSERT_TRUE(session.Load(kYoungRules).ok());

  QueryOptions magic_options;
  magic_options.strategy = ldl::QueryStrategy::kMagic;
  std::string goal = StrCat("young(", workload.a_leaf, ", S)");
  auto magic = session.Query(goal, magic_options);
  ASSERT_TRUE(magic.ok()) << magic.status();
  auto full = session.Query(goal);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_EQ(magic->tuples.size(), full->tuples.size());
  if (!full->tuples.empty()) {
    EXPECT_EQ(session.FormatTuple(magic->tuples[0]),
              session.FormatTuple(full->tuples[0]));
  }
  // A person with descendants is not young -- the magic query fails like the
  // full one.
  std::string inner_goal = StrCat("young(", workload.an_inner, ", S)");
  auto inner = session.Query(inner_goal, magic_options);
  ASSERT_TRUE(inner.ok()) << inner.status();
  EXPECT_TRUE(inner->tuples.empty());
}

// Property sweep (Theorems 3/4): on random workloads, the magic-rewritten
// program computes exactly the answers of the stratified evaluation, for
// queries over recursion, negation and grouping.
struct MagicCase {
  const char* name;
  const char* rules;
  const char* goal_pattern;  // %s replaced by a constant
  const char* goal_constant;
  const char* facts_kind;    // "tree" or "sg"
};

class MagicEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(MagicEquivalenceSweep, MagicEqualsStratified) {
  int seed = GetParam();
  SameGenerationWorkload workload = MakeSameGeneration(2, 2, 2 + seed % 2);
  Session session;
  ASSERT_TRUE(session.Load(workload.facts).ok());
  ASSERT_TRUE(session.Load(ParentRandomTree(25, seed, "p")).ok());
  ASSERT_TRUE(session.Load(kYoungRules).ok());

  for (const std::string& goal :
       {StrCat("a(x0, X)"), StrCat("sg(", workload.a_leaf, ", X)"),
        StrCat("young(", workload.a_leaf, ", S)")}) {
    auto full = session.Query(goal);
    ASSERT_TRUE(full.ok()) << goal << ": " << full.status();
    QueryOptions magic_options;
    magic_options.strategy = ldl::QueryStrategy::kMagic;
    auto magic = session.Query(goal, magic_options);
    ASSERT_TRUE(magic.ok()) << goal << ": " << magic.status();

    auto render = [&](const std::vector<Tuple>& tuples) {
      std::vector<std::string> out;
      for (const Tuple& tuple : tuples) out.push_back(session.FormatTuple(tuple));
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(render(full->tuples), render(magic->tuples)) << goal;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MagicEquivalenceSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Adorn, MultipleAdornmentsForOnePredicate) {
  // anc is consulted bound-first by one rule and bound-second by another:
  // both adorned versions must be generated, each with its own magic
  // predicate, and the answers must match full evaluation.
  Session session;
  ASSERT_TRUE(session.Load(ParentChain(20, "p")).ok());
  ASSERT_TRUE(session
                  .Load("anc(X, Y) :- p(X, Y).\n"
                        "anc(X, Y) :- p(X, Z), anc(Z, Y).\n"
                        "rel(A, B) :- anc(A, B).\n"
                        "rel(A, B) :- anc(B, A).")
                  .ok());
  ASSERT_TRUE(session.Analyze().ok());
  auto goal_ast = ParseLiteralText("rel(p5, X)", &session.interner());
  ASSERT_TRUE(goal_ast.ok());
  auto goal = LowerLiteral(session.factory(), session.catalog(), *goal_ast);
  ASSERT_TRUE(goal.ok());
  auto adorned = AdornProgram(session.program(), &session.catalog(), *goal);
  ASSERT_TRUE(adorned.ok()) << adorned.status();
  EXPECT_NE(session.catalog().Find("anc__bf", 2), kInvalidPred);
  EXPECT_NE(session.catalog().Find("anc__fb", 2), kInvalidPred);

  QueryOptions magic;
  magic.strategy = ldl::QueryStrategy::kMagic;
  auto full = session.Query("rel(p5, X)");
  auto fast = session.Query("rel(p5, X)", magic);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(fast.ok()) << fast.status();
  EXPECT_EQ(full->tuples.size(), fast->tuples.size());
  EXPECT_EQ(fast->tuples.size(), 20u);  // 15 descendants + 5 ancestors of p5
}

// Supplementary magic ([BR87]) computes the same answers with shared
// prefix joins.
TEST(SupplementaryMagic, AnswersMatchPlainMagic) {
  Session session;
  ASSERT_TRUE(session.Load(ParentChain(60, "p")).ok());
  ASSERT_TRUE(session.Load(kYoungRules).ok());
  ASSERT_TRUE(session.Load(MakeSameGeneration(2, 2, 3).facts).ok());

  for (const char* goal : {"a(x0, X)", "sg(x3, X)", "young(x3, S)"}) {
    QueryOptions plain;
    plain.strategy = ldl::QueryStrategy::kMagic;
    QueryOptions supplementary = plain;
    supplementary.strategy = ldl::QueryStrategy::kMagicSupplementary;
    auto a = session.Query(goal, plain);
    auto b = session.Query(goal, supplementary);
    ASSERT_TRUE(a.ok()) << goal << ": " << a.status();
    ASSERT_TRUE(b.ok()) << goal << ": " << b.status();
    auto render = [&](const std::vector<Tuple>& tuples) {
      std::vector<std::string> out;
      for (const Tuple& t : tuples) out.push_back(session.FormatTuple(t));
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(render(a->tuples), render(b->tuples)) << goal;
  }
}

TEST(SupplementaryMagic, EmitsSupChains) {
  Session session;
  ASSERT_TRUE(session.Load(kYoungRules).ok());
  ASSERT_TRUE(session.Analyze().ok());
  auto goal_ast = ParseLiteralText("young(john, S)", &session.interner());
  auto goal = LowerLiteral(session.factory(), session.catalog(), *goal_ast);
  ASSERT_TRUE(goal.ok());
  MagicOptions options;
  options.supplementary = true;
  auto magic = MagicRewrite(session.program(), &session.catalog(), *goal, options);
  ASSERT_TRUE(magic.ok()) << magic.status();
  // Every rule with a non-empty body got a sup_0 chain; count sup preds.
  size_t sup_rules = 0;
  for (const RuleIr& rule : magic->rules.rules) {
    std::string name(
        session.interner().Lookup(session.catalog().info(rule.head_pred).name));
    if (name.rfind("sup$", 0) == 0) ++sup_rules;
  }
  EXPECT_GE(sup_rules, 5u);  // at least one sup_0 per original rule
}

TEST(SupplementaryMagic, BomPartitionRuleWorks) {
  // The partition built-in precedes its inputs textually; the supplementary
  // scheduler must defer it and still produce an evaluable chain.
  BomWorkload workload = MakeBom(16, 3);
  Session session;
  ASSERT_TRUE(session.Load(workload.facts).ok());
  ASSERT_TRUE(session.Load(
      "p(P, S) :- part_of(P, S).\n"
      "q(X, C) :- cost(X, C).\n"
      "part(P, <S>) :- p(P, S).\n"
      "tc({X}, C) :- q(X, C).\n"
      "tc({X}, C) :- part(X, S), tc(S, C).\n"
      "tc(S, C) :- partition(S, S1, S2), tc(S1, C1), tc(S2, C2), +(C1, C2, C).\n"
      "result(X, C) :- tc({X}, C).").ok());
  QueryOptions plain;
  plain.strategy = ldl::QueryStrategy::kMagic;
  QueryOptions supplementary = plain;
  supplementary.strategy = ldl::QueryStrategy::kMagicSupplementary;
  std::string goal = StrCat("result(", workload.root, ", C)");
  auto a = session.Query(goal, plain);
  auto b = session.Query(goal, supplementary);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a->tuples.size(), 1u);
  ASSERT_EQ(b->tuples.size(), 1u);
  EXPECT_EQ(a->tuples[0][1], b->tuples[0][1]);
}

}  // namespace
}  // namespace ldl
