#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "base/arena.h"
#include "base/hash.h"
#include "base/interner.h"
#include "base/status.h"
#include "base/str_util.h"

namespace ldl {
namespace {

// ---------------------------------------------------------------- Status --

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status status = ParseError("bad token");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_EQ(status.message(), "bad token");
  EXPECT_EQ(status.ToString(), "parse_error: bad token");
}

TEST(Status, CopyPreservesError) {
  Status status = NotAdmissibleError("cycle");
  Status copy = status;
  EXPECT_EQ(copy, status);
  Status assigned;
  assigned = status;
  EXPECT_EQ(assigned.code(), StatusCode::kNotAdmissible);
}

TEST(Status, AllConstructorsMapCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseError("").code(), StatusCode::kParseError);
  EXPECT_EQ(NotAdmissibleError("").code(), StatusCode::kNotAdmissible);
  EXPECT_EQ(NotWellFormedError("").code(), StatusCode::kNotWellFormed);
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(UnsupportedError("").code(), StatusCode::kUnsupported);
  EXPECT_EQ(ResourceExhaustedError("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "parse_error");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotAdmissible), "not_admissible");
}

StatusOr<int> ReturnsValue() { return 42; }
StatusOr<int> ReturnsError() { return InvalidArgumentError("nope"); }
Status UsesAssignOrReturn(int* out) {
  LDL_ASSIGN_OR_RETURN(*out, ReturnsValue());
  return Status::OK();
}
Status PropagatesError(int* out) {
  LDL_ASSIGN_OR_RETURN(*out, ReturnsError());
  return Status::OK();
}

TEST(StatusOr, ValueAndError) {
  auto ok = ReturnsValue();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  auto err = ReturnsError();
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOr, Macros) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(&out).ok());
  EXPECT_EQ(out, 42);
  out = 0;
  Status status = PropagatesError(&out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 0);
}

// ----------------------------------------------------------------- Arena --

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(256);
  std::set<void*> seen;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(24, 8);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
    EXPECT_TRUE(seen.insert(p).second);
    memset(p, 0xAB, 24);  // must be writable
  }
  EXPECT_GE(arena.bytes_allocated(), 2400u);
  EXPECT_GT(arena.block_count(), 1u);
}

TEST(Arena, OversizedRequestGetsDedicatedBlock) {
  Arena arena(64);
  void* big = arena.Allocate(1000);
  memset(big, 0, 1000);
  void* small = arena.Allocate(8);
  EXPECT_NE(big, small);
  EXPECT_GE(arena.bytes_reserved(), 1000u);
}

TEST(Arena, NewConstructsObjects) {
  Arena arena;
  struct Pod {
    int a;
    double b;
  };
  Pod* pod = arena.New<Pod>(Pod{7, 2.5});
  EXPECT_EQ(pod->a, 7);
  EXPECT_EQ(pod->b, 2.5);
  int* array = arena.NewArray<int>(16);
  for (int i = 0; i < 16; ++i) array[i] = i;
  EXPECT_EQ(array[15], 15);
}

TEST(Arena, ZeroSizeAllocationIsValid) {
  Arena arena;
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
}

// -------------------------------------------------------------- Interner --

TEST(Interner, InternIsIdempotent) {
  Interner interner;
  Symbol a = interner.Intern("hello");
  Symbol b = interner.Intern("hello");
  EXPECT_EQ(a, b);
  EXPECT_EQ(interner.Lookup(a), "hello");
}

TEST(Interner, DistinctStringsGetDistinctIds) {
  Interner interner;
  Symbol a = interner.Intern("a");
  Symbol b = interner.Intern("b");
  EXPECT_NE(a, b);
}

TEST(Interner, EmptyStringIsSymbolZero) {
  Interner interner;
  EXPECT_EQ(interner.Intern(""), 0u);
}

TEST(Interner, FindDoesNotIntern) {
  Interner interner;
  Symbol out = 0;
  EXPECT_FALSE(interner.Find("missing", &out));
  size_t before = interner.size();
  EXPECT_FALSE(interner.Find("missing", &out));
  EXPECT_EQ(interner.size(), before);
  Symbol interned = interner.Intern("missing");
  ASSERT_TRUE(interner.Find("missing", &out));
  EXPECT_EQ(out, interned);
}

TEST(Interner, FreshNeverCollides) {
  Interner interner;
  interner.Intern("q$0");
  Symbol fresh1 = interner.Fresh("q");
  Symbol fresh2 = interner.Fresh("q");
  EXPECT_NE(fresh1, fresh2);
  EXPECT_NE(interner.Lookup(fresh1), "q$0");
}

TEST(Interner, LookupViewsStayValidAfterGrowth) {
  Interner interner;
  Symbol first = interner.Intern("first");
  std::string_view view = interner.Lookup(first);
  for (int i = 0; i < 1000; ++i) interner.Intern(StrCat("filler", i));
  EXPECT_EQ(view, "first");
  EXPECT_EQ(interner.Lookup(first), "first");
}

// --------------------------------------------------------------- StrUtil --

TEST(StrUtil, StrCatMixesTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", size_t{2}, 'c'), "a1b2c");
  EXPECT_EQ(StrCat(-5, "x"), "-5x");
  EXPECT_EQ(StrCat(), "");
}

TEST(StrUtil, StrJoin) {
  std::vector<std::string> pieces = {"a", "b", "c"};
  EXPECT_EQ(StrJoin(pieces, ", "), "a, b, c");
  EXPECT_EQ(StrJoin(std::vector<int>{1, 2}, "-"), "1-2");
  EXPECT_EQ(StrJoin(std::vector<std::string>{}, ","), "");
}

TEST(StrUtil, StrSplitKeepsEmptyPieces) {
  auto pieces = StrSplit("a,,b", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
}

TEST(StrUtil, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StrUtil, Affixes) {
  EXPECT_TRUE(StartsWith("magic_anc", "magic_"));
  EXPECT_FALSE(StartsWith("m", "magic_"));
  EXPECT_TRUE(EndsWith("p__bf", "__bf"));
  EXPECT_FALSE(EndsWith("bf", "__bf"));
}

// ------------------------------------------------------------------ Hash --

TEST(Hash, MixSpreadsBits) {
  EXPECT_NE(HashMix(1), HashMix(2));
  EXPECT_NE(HashMix(0), 0u);
}

TEST(Hash, CombineIsOrderDependent) {
  EXPECT_NE(HashCombine(HashMix(1), HashMix(2)),
            HashCombine(HashMix(2), HashMix(1)));
}

TEST(Hash, BytesMatchesContent) {
  EXPECT_EQ(HashBytes("abc", 3), HashBytes("abc", 3));
  EXPECT_NE(HashBytes("abc", 3), HashBytes("abd", 3));
}

}  // namespace
}  // namespace ldl
