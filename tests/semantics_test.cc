// Executable versions of the paper's §2.2-§2.4 semantic examples: model
// checking, the failure of model intersection, the Russell-Whitehead
// program, and the non-standard minimality order.
#include <gtest/gtest.h>

#include "parser/parser.h"
#include "program/lower.h"
#include "program/stratify.h"
#include "eval/bindings.h"
#include "semantics/model.h"

namespace ldl {
namespace {

class SemanticsTest : public ::testing::Test {
 protected:
  void LoadProgram(const std::string& source) {
    auto ast = ParseProgram(source, &interner_);
    ASSERT_TRUE(ast.ok()) << ast.status();
    auto ir = LowerProgram(factory_, catalog_, *ast);
    ASSERT_TRUE(ir.ok()) << ir.status();
    program_ = std::move(*ir);
  }

  // Builds an interpretation from fact text like "q(1). p({1, 2}).".
  std::unique_ptr<Database> Interp(const std::string& facts) {
    auto db = std::make_unique<Database>(&catalog_);
    auto ast = ParseProgram(facts, &interner_);
    EXPECT_TRUE(ast.ok()) << ast.status();
    for (const RuleAst& rule : ast->rules) {
      EXPECT_TRUE(rule.is_fact());
      auto ir = LowerRule(factory_, catalog_, rule, -1);
      EXPECT_TRUE(ir.ok()) << ir.status();
      InstantiationResult inst =
          InstantiateArgs(factory_, ir->head_args, Subst());
      EXPECT_FALSE(inst.unbound);
      if (!inst.outside_universe) db->AddFact(ir->head_pred, inst.tuple);
    }
    return db;
  }

  bool CheckModel(const Database& db, std::string* why = nullptr) {
    auto result = IsModel(factory_, catalog_, program_, db, why);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() && *result;
  }

  std::vector<PredId> AllPreds() {
    std::vector<PredId> preds;
    for (PredId p = 0; p < catalog_.size(); ++p) preds.push_back(p);
    return preds;
  }

  Interner interner_;
  TermFactory factory_{&interner_};
  Catalog catalog_{&interner_};
  ProgramIr program_;
};

// §2.2: the q/p/r/h example: {r(1), h({1}), p({1}), q({1})} is a model,
// {r(1), h({1}), p({1,2})} is not.
TEST_F(SemanticsTest, Section22ModelExample) {
  LoadProgram(
      "q(X) :- p(X), h(X).\n"
      "p(<X>) :- r(X).\n"
      "r(1).\n"
      "h({1}).");
  auto good = Interp("r(1). h({1}). p({1}). q({1}).");
  EXPECT_TRUE(CheckModel(*good));

  std::string why;
  auto bad = Interp("r(1). h({1}). p({1, 2}).");
  EXPECT_FALSE(CheckModel(*bad, &why));
  // The grouping rule demands exactly p({1}).
  EXPECT_NE(why.find("p({1})"), std::string::npos) << why;

  // Adding p({1}) back fixes grouping but the q rule then fires on p({1})?
  // No: q(X) :- p(X), h(X) needs h(S) too; h({1}) holds, p({1}) holds, so
  // q({1}) is required.
  auto partial = Interp("r(1). h({1}). p({1}). p({1, 2}).");
  EXPECT_FALSE(CheckModel(*partial, &why));
  EXPECT_NE(why.find("q({1})"), std::string::npos) << why;
}

// §2.3: models are not closed under intersection.
TEST_F(SemanticsTest, Section23IntersectionFails) {
  LoadProgram("p(<X>) :- q(X).");
  auto model_a = Interp("q(1). q(2). p({1, 2}).");
  auto model_b = Interp("q(2). q(3). p({2, 3}).");
  EXPECT_TRUE(CheckModel(*model_a));
  EXPECT_TRUE(CheckModel(*model_b));
  // A n B = {q(2)}: not a model, p({2}) is missing.
  std::string why;
  auto intersection = Interp("q(2).");
  EXPECT_FALSE(CheckModel(*intersection, &why));
  EXPECT_NE(why.find("p({2})"), std::string::npos) << why;
}

// §2.3: the Russell-Whitehead program p(<X>) <- p(X), p(1) has no model;
// every candidate interpretation we try fails, and each failure demands a
// strictly larger p-fact (the regress the paper describes).
TEST_F(SemanticsTest, Section23NoModelRegress) {
  LoadProgram(
      "p(1).\n"
      "p(<X>) :- p(X).");
  const char* candidates[] = {
      "p(1).",
      "p(1). p({1}).",
      "p(1). p({1}). p({1, {1}}).",
      "p(1). p({1}). p({1, {1}}). p({1, {1}, {1, {1}}}).",
  };
  for (const char* candidate : candidates) {
    auto db = Interp(candidate);
    std::string why;
    EXPECT_FALSE(CheckModel(*db, &why)) << candidate;
    EXPECT_NE(why.find("missing grouped fact"), std::string::npos) << why;
  }
}

// §2.4: the paper's minimality example. M1 = {q(1), q(2), p({1,2})} and
// M2 = {q(1), p({1})} are both models; M2 improves on M1 in the domination
// order, so M1 is not minimal.
TEST_F(SemanticsTest, Section24MinimalityOrder) {
  LoadProgram(
      "q(1).\n"
      "p(<X>) :- q(X).\n"
      "q(2) :- p({1, 2}).");
  auto m1 = Interp("q(1). q(2). p({1, 2}).");
  auto m2 = Interp("q(1). p({1}).");
  EXPECT_TRUE(CheckModel(*m1));
  EXPECT_TRUE(CheckModel(*m2));
  // (M2 - M1) = {p({1})} <= (M1 - M2) = {q(2), p({1,2})}.
  EXPECT_TRUE(DifferenceDominated(factory_, *m2, *m1, AllPreds()));
  EXPECT_FALSE(DifferenceDominated(factory_, *m1, *m2, AllPreds()));
}

// §2.4 remark: the program without a unique minimal model. M = {q(1),
// w({1}, 7)} is not a model (grouping demands p({1}), which would force
// q(7), which would force a bigger group...). M1 = M u {q(2), p({1,2})} and
// M2 = M u {q(3), p({1,3})} are both models, and neither dominates the
// other.
TEST_F(SemanticsTest, Section24NoUniqueMinimalModel) {
  LoadProgram(
      "p(<X>) :- q(X).\n"
      "q(Y) :- w(S, Y), p(S).\n"
      "q(1).\n"
      "w({1}, 7).");
  std::string why;
  auto m = Interp("q(1). w({1}, 7).");
  EXPECT_FALSE(CheckModel(*m, &why));
  EXPECT_NE(why.find("p({1})"), std::string::npos) << why;

  // Adding p({1}) triggers the w-rule: q(7) becomes required.
  auto with_p = Interp("q(1). w({1}, 7). p({1}).");
  EXPECT_FALSE(CheckModel(*with_p, &why));
  EXPECT_NE(why.find("q(7)"), std::string::npos) << why;

  // ... and with q(7) the group must regrow: p({1, 7}) required.
  auto with_q7 = Interp("q(1). w({1}, 7). p({1}). q(7).");
  EXPECT_FALSE(CheckModel(*with_q7, &why));
  EXPECT_NE(why.find("p({1, 7})"), std::string::npos) << why;

  // The paper's two incomparable models.
  auto m1 = Interp("q(1). w({1}, 7). q(2). p({1, 2}).");
  auto m2 = Interp("q(1). w({1}, 7). q(3). p({1, 3}).");
  EXPECT_TRUE(CheckModel(*m1)) << why;
  EXPECT_TRUE(CheckModel(*m2));
  EXPECT_FALSE(DifferenceDominated(factory_, *m1, *m2, AllPreds()));
  EXPECT_FALSE(DifferenceDominated(factory_, *m2, *m1, AllPreds()));
}

// Fact domination basics.
TEST_F(SemanticsTest, FactDomination) {
  auto set = [&](std::initializer_list<int> xs) {
    std::vector<const Term*> elements;
    for (int x : xs) elements.push_back(factory_.MakeInt(x));
    return factory_.MakeSet(elements);
  };
  const Term* a = factory_.MakeAtom("a");
  // Set columns compare by subset.
  EXPECT_TRUE(FactDominated(factory_, {a, set({1})}, {a, set({1, 2})}));
  EXPECT_FALSE(FactDominated(factory_, {a, set({1, 2})}, {a, set({1})}));
  EXPECT_TRUE(FactDominated(factory_, {a, set({})}, {a, set({1})}));
  // Non-set columns compare by equality.
  EXPECT_FALSE(FactDominated(factory_, {factory_.MakeAtom("b"), set({1})},
                             {a, set({1, 2})}));
  // Mixed kinds at a position: only equality counts.
  EXPECT_FALSE(FactDominated(factory_, {set({})}, {a}));
  EXPECT_TRUE(FactDominated(factory_, {a}, {a}));
}

// The engine's standard model is §2.2-sound: IsModel holds for what
// stratified evaluation computes, on a program exercising grouping,
// negation and recursion together.
TEST_F(SemanticsTest, ComputedModelIsAModel) {
  LoadProgram(
      "e(1, 2). e(2, 3). e(3, 4). n(1). n(2). n(3). n(4).\n"
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- t(X, Z), e(Z, Y).\n"
      "sink(X) :- n(X), !e(X, Z).\n"
      "reach(X, <Y>) :- t(X, Y).");
  auto strat = Stratify(catalog_, program_);
  ASSERT_TRUE(strat.ok()) << strat.status();
  Database db(&catalog_);
  Engine engine(&factory_, &catalog_);
  ASSERT_TRUE(engine.EvaluateProgram(program_, *strat, &db).ok());
  std::string why;
  EXPECT_TRUE(CheckModel(db, &why)) << why;

  // Dropping a derived fact breaks modelhood.
  PredId t = catalog_.Find("t", 2);
  ASSERT_TRUE(db.relation(t).Erase(
      Tuple{factory_.MakeInt(1), factory_.MakeInt(4)}));
  EXPECT_FALSE(CheckModel(db, &why));
}

}  // namespace
}  // namespace ldl
