// Incremental model maintenance (Engine::EvaluateIncremental /
// Engine::EvaluateIncrementalDelete via Session::AddFacts and
// Session::RemoveFacts): after EDB insertions and deletions the maintained
// model must be bit-identical to a from-scratch evaluation -- across the
// corpus programs
// (positive recursion, stratified negation, grouping, magic-rewritten
// stored queries), every QueryStrategy, and 1- and 4-thread evaluation --
// while strata are skipped / delta-resumed / recomputed exactly as the
// paper's >= / > layering edges (§3.1) dictate.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "ldl/ldl.h"
#include "program/impact.h"
#include "workload/workload.h"

namespace ldl {
namespace {

std::vector<std::string> CorpusPrograms() {
  std::vector<std::string> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(LDL1_CORPUS_DIR)) {
    if (entry.path().extension() == ".ldl") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

// The full model as text: predicate name -> sorted formatted tuples
// (comparable across sessions; interned pointers differ per factory).
using ModelText = std::map<std::string, std::vector<std::string>>;

ModelText Materialize(Session& session) {
  ModelText model;
  for (PredId pred = 0; pred < session.catalog().size(); ++pred) {
    std::vector<std::string> rows;
    for (const Tuple& tuple : session.database().relation(pred).Snapshot()) {
      rows.push_back(session.FormatTuple(tuple));
    }
    std::sort(rows.begin(), rows.end());
    model[session.catalog().DebugName(pred)] = std::move(rows);
  }
  return model;
}

// Stored-query answers under `strategy`, with errors folded into the
// result so both sessions must agree on failures too.
std::vector<std::string> StoredQueryAnswers(Session& session,
                                            QueryStrategy strategy,
                                            const EvalOptions& eval) {
  std::vector<std::string> all;
  AstPrinter printer(&session.interner());
  QueryOptions query_options;
  query_options.strategy = strategy;
  query_options.eval = eval;
  for (const QueryAst& query : session.stored_queries()) {
    std::string goal = printer.ToString(query.goal);
    auto result = session.Query(goal, query_options);
    if (!result.ok()) {
      all.push_back(goal + " -> error: " + result.status().ToString());
      continue;
    }
    for (const Tuple& tuple : result->tuples) {
      all.push_back(goal + " -> " + session.FormatTuple(tuple));
    }
  }
  std::sort(all.begin(), all.end());
  return all;
}

bool PlainAtomText(const std::string& text) {
  if (text.empty() || text[0] < 'a' || text[0] > 'z') return false;
  return text.find_first_not_of(
             "abcdefghijklmnopqrstuvwxyz"
             "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_") == std::string::npos;
}

// `count` random new fact lines over the session's EDB predicates:
// columns recombined from existing tuples (hitting live join keys), with
// an occasional fresh atom so unseen constants appear too.
std::vector<std::string> GenerateFacts(Session& session, size_t count,
                                       uint64_t seed) {
  Rng rng(seed);
  struct PredFacts {
    std::string name;
    std::vector<Tuple> tuples;
  };
  std::vector<PredFacts> preds;
  for (PredId pred : session.edb_preds()) {
    if (session.catalog().info(pred).arity == 0) continue;
    std::vector<Tuple> tuples = session.database().relation(pred).Snapshot();
    if (tuples.empty()) continue;
    std::string name = session.catalog().DebugName(pred);
    preds.push_back({name.substr(0, name.rfind('/')), std::move(tuples)});
  }
  std::vector<std::string> facts;
  if (preds.empty()) return facts;
  size_t fresh = 0;
  for (size_t i = 0; i < count; ++i) {
    const PredFacts& p = preds[rng.Below(preds.size())];
    const size_t arity = p.tuples[0].size();
    std::string text = p.name + "(";
    for (size_t col = 0; col < arity; ++col) {
      if (col > 0) text += ", ";
      const Tuple& donor = p.tuples[rng.Below(p.tuples.size())];
      std::string rendered = session.factory().ToString(donor[col]);
      if (rng.Below(4) == 0 && PlainAtomText(rendered)) {
        rendered = "zz" + std::to_string(fresh++);
      }
      text += rendered;
    }
    text += ").";
    facts.push_back(std::move(text));
  }
  return facts;
}

// `count` random removal lines sampled from the session's live EDB rows
// (Snapshot() returns live rows only, so every line names a present fact).
std::vector<std::string> GenerateRemovals(Session& session, size_t count,
                                          uint64_t seed) {
  Rng rng(seed);
  struct PredFacts {
    std::string name;
    std::vector<Tuple> tuples;
  };
  std::vector<PredFacts> preds;
  for (PredId pred : session.edb_preds()) {
    if (session.catalog().info(pred).arity == 0) continue;
    std::vector<Tuple> tuples = session.database().relation(pred).Snapshot();
    if (tuples.empty()) continue;
    std::string name = session.catalog().DebugName(pred);
    preds.push_back({name.substr(0, name.rfind('/')), std::move(tuples)});
  }
  std::vector<std::string> removals;
  if (preds.empty()) return removals;
  for (size_t i = 0; i < count; ++i) {
    const PredFacts& p = preds[rng.Below(preds.size())];
    const Tuple& victim = p.tuples[rng.Below(p.tuples.size())];
    std::string text = p.name + "(";
    for (size_t col = 0; col < victim.size(); ++col) {
      if (col > 0) text += ", ";
      text += session.factory().ToString(victim[col]);
    }
    text += ").";
    removals.push_back(std::move(text));
  }
  return removals;
}

constexpr QueryStrategy kStrategies[] = {
    QueryStrategy::kModel, QueryStrategy::kMagic,
    QueryStrategy::kMagicSupplementary, QueryStrategy::kTopDown};

// The tentpole equivalence: randomized insert batches over every corpus
// program; the incrementally maintained session must match a from-scratch
// session on the full model and on stored-query answers under every
// strategy, at 1 and 4 threads -- without ever re-materializing.
TEST(Incremental, RandomizedInsertsMatchScratchAcrossCorpus) {
  std::vector<std::string> programs = CorpusPrograms();
  ASSERT_FALSE(programs.empty());
  uint64_t seed = 17;
  for (const std::string& path : programs) {
    // Generate the insert batches once per program, from a throwaway
    // evaluated session.
    std::vector<std::string> all_facts;
    {
      Session generator;
      ASSERT_TRUE(generator.LoadFile(path).ok()) << path;
      ASSERT_TRUE(generator.Evaluate().ok()) << path;
      all_facts = GenerateFacts(generator, /*count=*/12, ++seed);
    }
    if (all_facts.empty()) continue;  // no non-nullary EDB to perturb

    for (int threads : {1, 4}) {
      EvalOptions options;
      options.num_threads = threads;

      Session incremental;
      ASSERT_TRUE(incremental.LoadFile(path).ok()) << path;
      ASSERT_TRUE(incremental.Evaluate(options).ok()) << path;
      Session scratch;
      ASSERT_TRUE(scratch.LoadFile(path).ok()) << path;

      // Three batches of four facts, re-evaluating after each batch.
      for (size_t batch = 0; batch < all_facts.size(); batch += 4) {
        std::string text;
        for (size_t i = batch; i < batch + 4 && i < all_facts.size(); ++i) {
          text += all_facts[i] + "\n";
        }
        ASSERT_TRUE(incremental.AddFacts(text).ok()) << path << "\n" << text;
        ASSERT_TRUE(incremental.Evaluate(options).ok()) << path;
        ASSERT_TRUE(scratch.Load(text).ok()) << path;
      }
      ASSERT_TRUE(scratch.Evaluate(options).ok()) << path;

      // Pure EDB inserts must never force a re-materialization: one full
      // evaluation up front, then only cache hits and incremental rounds.
      EXPECT_EQ(incremental.full_evals(), 1u) << path;
      EXPECT_EQ(Materialize(incremental), Materialize(scratch))
          << path << " threads=" << threads;
      for (QueryStrategy strategy : kStrategies) {
        EXPECT_EQ(StoredQueryAnswers(incremental, strategy, options),
                  StoredQueryAnswers(scratch, strategy, options))
            << path << " threads=" << threads << " strategy="
            << ToString(strategy);
      }
    }
  }
}

// Repeated single-fact inserts into a recursive positive program, checked
// against scratch after every round (the watermark bookkeeping must stay
// right across many incremental rounds, serial and parallel).
TEST(Incremental, RepeatedSingleInsertsStayConsistent) {
  const std::string rules =
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n";
  const std::string base = RandomGraph(/*nodes=*/24, /*edges=*/60, /*seed=*/3);
  Rng rng(99);
  for (int threads : {1, 4}) {
    EvalOptions options;
    options.num_threads = threads;
    Session incremental;
    ASSERT_TRUE(incremental.Load(base + rules).ok());
    ASSERT_TRUE(incremental.Evaluate(options).ok());
    std::string accumulated;
    for (int round = 0; round < 10; ++round) {
      std::string fact = "edge(n" + std::to_string(rng.Below(24)) + ", n" +
                         std::to_string(rng.Below(24)) + ").";
      accumulated += fact + "\n";
      ASSERT_TRUE(incremental.AddFacts(fact).ok());
      ASSERT_TRUE(incremental.Evaluate(options).ok());
      Session scratch;
      ASSERT_TRUE(scratch.Load(base + rules + accumulated).ok());
      ASSERT_TRUE(scratch.Evaluate(options).ok());
      ASSERT_EQ(Materialize(incremental), Materialize(scratch))
          << "threads=" << threads << " round=" << round;
    }
    EXPECT_EQ(incremental.full_evals(), 1u);
  }
}

TEST(Incremental, PositiveChainResumesWithoutRecompute) {
  Session session;
  ASSERT_TRUE(session
                  .Load("e(n0, n1). e(n1, n2).\n"
                        "tc(X, Y) :- e(X, Y).\n"
                        "tc(X, Y) :- tc(X, Z), e(Z, Y).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  ASSERT_TRUE(session.AddFacts("e(n2, n3).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.incremental_evals(), 1u);
  const EvalStats& stats = session.last_eval_stats();
  EXPECT_EQ(stats.strata_recomputed, 0u);
  EXPECT_GE(stats.strata_delta, 1u);
  auto result = session.Query("tc(n0, X)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 3u);  // n1, n2, n3
}

TEST(Incremental, NegationInsertionRetractsDerivedFacts) {
  Session session;
  ASSERT_TRUE(session
                  .Load("item(a). item(b). blocked(b).\n"
                        "ok(X) :- item(X), !blocked(X).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  PredId ok = session.catalog().Find("ok", 1);
  ASSERT_NE(ok, kInvalidPred);
  EXPECT_EQ(session.database().relation(ok).size(), 1u);  // ok(a)

  // Inserting below a `>` edge retracts ok(a): the stratum must be
  // recomputed, not delta-resumed.
  ASSERT_TRUE(session.AddFacts("blocked(a).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.incremental_evals(), 1u);
  EXPECT_GE(session.last_eval_stats().strata_recomputed, 1u);
  EXPECT_EQ(session.database().relation(ok).size(), 0u);
}

TEST(Incremental, GroupingInsertionRegrowsGroups) {
  Session session;
  ASSERT_TRUE(session
                  .Load("supplies(s1, p1).\n"
                        "by_supplier(S, <P>) :- supplies(S, P).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  ASSERT_TRUE(session.AddFacts("supplies(s1, p2).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.incremental_evals(), 1u);
  // A sole-rule, negation-free grouping head over an insert-only delta is
  // regrown in place: no stratum is cleared and recomputed.
  EXPECT_GE(session.last_eval_stats().strata_regrown, 1u);
  EXPECT_GE(session.last_eval_stats().group_regrows, 1u);
  EXPECT_EQ(session.last_eval_stats().strata_recomputed, 0u);
  // The old group fact by_supplier(s1, {p1}) must be gone, replaced by the
  // regrown set -- the retraction grouping's `>` edge exists for.
  PredId by = session.catalog().Find("by_supplier", 2);
  ASSERT_NE(by, kInvalidPred);
  auto rows = session.database().relation(by).Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(session.FormatTuple(rows[0]), "(s1, {p1, p2})");
}

// A fresh partition key appearing in the delta must insert a brand-new
// group fact, while existing keys keep their facts untouched (pointer
// identity through the regrow, since the untouched partition is never
// re-canonicalized).
TEST(Incremental, GroupRegrowInsertsFreshKeys) {
  Session session;
  ASSERT_TRUE(session
                  .Load("supplies(s1, p1).\n"
                        "by_supplier(S, <P>) :- supplies(S, P).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  PredId by = session.catalog().Find("by_supplier", 2);
  ASSERT_NE(by, kInvalidPred);
  ASSERT_EQ(session.database().relation(by).size(), 1u);
  const Term* s1_set = session.database().relation(by).row(0)[1];

  ASSERT_TRUE(session.AddFacts("supplies(s2, p2).\nsupplies(s2, p3).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_GE(session.last_eval_stats().strata_regrown, 1u);
  auto rows = session.database().relation(by).Snapshot();
  std::vector<std::string> formatted;
  for (const Tuple& row : rows) formatted.push_back(session.FormatTuple(row));
  std::sort(formatted.begin(), formatted.end());
  ASSERT_EQ(formatted.size(), 2u);
  EXPECT_EQ(formatted[0], "(s1, {p1})");
  EXPECT_EQ(formatted[1], "(s2, {p2, p3})");
  // The untouched s1 partition still holds the identical interned set.
  for (const Tuple& row : session.database().relation(by).Snapshot()) {
    if (session.FormatTuple(row) == "(s1, {p1})") EXPECT_EQ(row[1], s1_set);
  }
}

// Insert-driven regrowth must agree with a from-scratch evaluation on the
// full model and on query answers under every strategy, serial and
// parallel. The randomized batches recombine live join keys, so existing
// partitions grow, duplicate members arrive, and fresh keys appear.
TEST(Incremental, GroupRegrowMatchesScratchRandomized) {
  const std::string rules = "by_supplier(S, <P>) :- supplies(S, P).\n";
  std::string base;
  Rng rng(1234);
  for (int i = 0; i < 20; ++i) {
    base += "supplies(s" + std::to_string(rng.Below(5)) + ", part" +
            std::to_string(rng.Below(9)) + ").\n";
  }
  auto answers = [](Session& session, QueryStrategy strategy,
                    const EvalOptions& eval) {
    std::vector<std::string> all;
    QueryOptions query_options;
    query_options.strategy = strategy;
    query_options.eval = eval;
    auto result = session.Query("by_supplier(s1, PS).", query_options);
    if (!result.ok()) {
      all.push_back("error: " + result.status().ToString());
    } else {
      for (const Tuple& tuple : result->tuples) {
        all.push_back(session.FormatTuple(tuple));
      }
    }
    std::sort(all.begin(), all.end());
    return all;
  };
  for (int threads : {1, 4}) {
    EvalOptions options;
    options.num_threads = threads;
    Session incremental;
    ASSERT_TRUE(incremental.Load(base + rules).ok());
    ASSERT_TRUE(incremental.Evaluate(options).ok());
    std::string accumulated;
    size_t regrown = 0;
    for (int round = 0; round < 8; ++round) {
      std::string fact = "supplies(s" + std::to_string(rng.Below(7)) +
                         ", part" + std::to_string(rng.Below(11)) + ").";
      accumulated += fact + "\n";
      ASSERT_TRUE(incremental.AddFacts(fact).ok());
      ASSERT_TRUE(incremental.Evaluate(options).ok());
      regrown += incremental.last_eval_stats().strata_regrown;
      // The pure grouping program never needs a clear-and-recompute.
      EXPECT_EQ(incremental.last_eval_stats().strata_recomputed, 0u);

      // Materialize before any queries: a kMagic query would register its
      // rewrite scratch predicates in the catalog and skew the comparison.
      Session scratch;
      ASSERT_TRUE(scratch.Load(base + rules + accumulated).ok());
      ASSERT_TRUE(scratch.Evaluate(options).ok());
      ASSERT_EQ(Materialize(incremental), Materialize(scratch))
          << "threads=" << threads << " round=" << round;
    }
    EXPECT_EQ(incremental.full_evals(), 1u) << "threads=" << threads;
    EXPECT_GE(regrown, 1u) << "threads=" << threads;

    Session scratch;
    ASSERT_TRUE(scratch.Load(base + rules + accumulated).ok());
    ASSERT_TRUE(scratch.Evaluate(options).ok());
    for (QueryStrategy strategy : kStrategies) {
      EXPECT_EQ(answers(incremental, strategy, options),
                answers(scratch, strategy, options))
          << "threads=" << threads << " strategy=" << ToString(strategy);
    }
  }
}

// Deletions reaching a grouping stratum widen past both the regrow fast
// path and DRed (a grouped set can shrink, which neither expresses): the
// stratum is cleared and recomputed -- but inside one incremental
// maintenance pass, with the model staying alive throughout.
TEST(Incremental, GroupDeletionRecomputesStratumIncrementally) {
  Session session;
  ASSERT_TRUE(session
                  .Load("supplies(s1, p1).\n"
                        "supplies(s1, p2).\n"
                        "by_supplier(S, <P>) :- supplies(S, P).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.full_evals(), 1u);
  ASSERT_TRUE(session.RemoveFacts("supplies(s1, p2).").ok());
  EXPECT_TRUE(session.evaluated());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.full_evals(), 1u);
  EXPECT_EQ(session.incremental_evals(), 1u);
  EXPECT_GE(session.last_eval_stats().strata_recomputed, 1u);
  EXPECT_EQ(session.last_eval_stats().strata_overdeleted, 0u);
  EXPECT_EQ(session.last_eval_stats().strata_regrown, 0u);
  EXPECT_EQ(session.last_eval_stats().group_regrows, 0u);
  PredId by = session.catalog().Find("by_supplier", 2);
  ASSERT_NE(by, kInvalidPred);
  auto rows = session.database().relation(by).Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(session.FormatTuple(rows[0]), "(s1, {p1})");
}

TEST(Incremental, RecomputeCascadesDownstream) {
  Session session;
  ASSERT_TRUE(session
                  .Load("supplies(s1, p1).\n"
                        "flagged(s9).\n"
                        "by_supplier(S, <P>) :- supplies(S, P).\n"
                        "summary(S) :- by_supplier(S, P), !flagged(S).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  ASSERT_TRUE(session.AddFacts("supplies(s2, p2).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  // The grouping head and its downstream consumer are both classified
  // kRecompute (the minimal stratification may fold them into one layer,
  // so count strata >= 1 and check both relations re-derived correctly).
  EXPECT_GE(session.last_eval_stats().strata_recomputed, 1u);
  PredId by = session.catalog().Find("by_supplier", 2);
  ASSERT_NE(by, kInvalidPred);
  EXPECT_EQ(session.database().relation(by).size(), 2u);
  PredId summary = session.catalog().Find("summary", 1);
  ASSERT_NE(summary, kInvalidPred);
  EXPECT_EQ(session.database().relation(summary).size(), 2u);
}

TEST(Incremental, UntouchedStrataAreSkipped) {
  // Two independent branches; the negation puts `safe` in a higher
  // stratum than the tc fixpoint. Touching only `e` must skip it.
  Session session;
  ASSERT_TRUE(session
                  .Load("e(n0, n1).\n"
                        "tc(X, Y) :- e(X, Y).\n"
                        "tc(X, Y) :- tc(X, Z), e(Z, Y).\n"
                        "f(m1). g(m2).\n"
                        "safe(X) :- f(X), !g(X).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  ASSERT_TRUE(session.AddFacts("e(n1, n2).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  const EvalStats& stats = session.last_eval_stats();
  EXPECT_GE(stats.strata_skipped, 1u);
  EXPECT_GE(stats.strata_delta, 1u);
  EXPECT_EQ(stats.strata_recomputed, 0u);
}

TEST(Incremental, NewPredicateFactsSkipEveryStratum) {
  Session session;
  ASSERT_TRUE(session
                  .Load("e(n0, n1). tc(X, Y) :- e(X, Y).\n"
                        "tc(X, Y) :- tc(X, Z), e(Z, Y).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  // A fact of a brand-new predicate touches no rule at all.
  ASSERT_TRUE(session.AddFacts("zzz(9).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.incremental_evals(), 1u);
  const EvalStats& stats = session.last_eval_stats();
  EXPECT_EQ(stats.strata_delta, 0u);
  EXPECT_EQ(stats.strata_recomputed, 0u);
  auto result = session.Query("zzz(X)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 1u);
}

TEST(Incremental, DuplicateInsertIsCacheHit) {
  Session session;
  ASSERT_TRUE(session.Load("e(n0, n1). tc(X, Y) :- e(X, Y).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  // Re-adding an existing fact appends no rows: the model stays current
  // and the next Evaluate must not run at all.
  ASSERT_TRUE(session.AddFacts("e(n0, n1).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.eval_cache_hits(), 1u);
  EXPECT_EQ(session.incremental_evals(), 0u);
  EXPECT_EQ(session.full_evals(), 1u);
}

TEST(Incremental, IdbFactFallsBackToFullEvaluation) {
  Session session;
  ASSERT_TRUE(session
                  .Load("e(n0, n1). tc(X, Y) :- e(X, Y).\n"
                        "tc(X, Y) :- tc(X, Z), e(Z, Y).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  // tc has rules: the fact must take part in stratification, so AddFacts
  // degrades to Load() and the next Evaluate re-materializes.
  ASSERT_TRUE(session.AddFacts("tc(q1, q2).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.full_evals(), 2u);
  EXPECT_EQ(session.incremental_evals(), 0u);
  auto result = session.Query("tc(q1, X)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 1u);
}

TEST(Incremental, RuleTextFallsBackToLoad) {
  Session session;
  ASSERT_TRUE(session.Load("e(n0, n1). tc(X, Y) :- e(X, Y).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  ASSERT_TRUE(session.AddFacts("rev(Y, X) :- e(X, Y).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.full_evals(), 2u);
  auto result = session.Query("rev(n1, X)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 1u);
}

TEST(Incremental, RemoveFactsMaintainsModelViaDRed) {
  Session session;
  ASSERT_TRUE(session
                  .Load("e(n0, n1). e(n1, n2).\n"
                        "tc(X, Y) :- e(X, Y).\n"
                        "tc(X, Y) :- tc(X, Z), e(Z, Y).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  ASSERT_TRUE(session.RemoveFacts("e(n1, n2).").ok());
  // The model survives the deletion: the next Evaluate() runs DRed
  // maintenance instead of dropping the fixpoint.
  EXPECT_TRUE(session.evaluated());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.full_evals(), 1u);
  EXPECT_EQ(session.incremental_evals(), 1u);
  EXPECT_GE(session.last_eval_stats().strata_overdeleted, 1u);
  auto result = session.Query("tc(n0, X)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 1u);  // only n1 remains reachable

  // The removal survives re-analysis (a later Load re-analyzes from the
  // AST, which still carries the removed clause) ...
  ASSERT_TRUE(session.Load("f(k).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  result = session.Query("tc(n0, X)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 1u);

  // ... while re-Loading the fact itself brings it back.
  ASSERT_TRUE(session.Load("e(n1, n2).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  result = session.Query("tc(n0, X)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 2u);
}

TEST(Incremental, RemoveAbsentFactIsNoOp) {
  Session session;
  ASSERT_TRUE(session.Load("e(n0, n1). tc(X, Y) :- e(X, Y).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  ASSERT_TRUE(session.RemoveFacts("e(z8, z9).").ok());
  EXPECT_TRUE(session.evaluated());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.eval_cache_hits(), 1u);
  EXPECT_FALSE(session.RemoveFacts("tc(n0, n1).").ok());  // derived pred
  EXPECT_FALSE(session.RemoveFacts("bad(X) :- e(X, Y).").ok());  // not a fact
}

// Satellite bugfix: a batch that fails validation partway through must not
// have removed its earlier (valid) facts -- RemoveFacts is all-or-nothing.
TEST(Incremental, RemoveFactsBatchIsAtomicOnError) {
  Session session;
  ASSERT_TRUE(session
                  .Load("e(n0, n1). e(n1, n2).\n"
                        "tc(X, Y) :- e(X, Y).\n"
                        "tc(X, Y) :- tc(X, Z), e(Z, Y).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());

  // Valid fact first, derived-predicate error second.
  EXPECT_FALSE(session.RemoveFacts("e(n0, n1). tc(n0, n1).").ok());
  EXPECT_TRUE(session.evaluated());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.eval_cache_hits(), 1u);  // nothing pending: cache hit

  // Valid fact first, non-ground error second.
  EXPECT_FALSE(session.RemoveFacts("e(n0, n1). e(X, n2).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.eval_cache_hits(), 2u);

  auto result = session.Query("tc(n0, X)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 2u);  // e(n0, n1) was never removed
  QueryOptions magic;
  magic.strategy = QueryStrategy::kMagic;
  result = session.Query("tc(n0, X)", magic);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 2u);
}

// Satellite bugfix: the EDB is a multiset. Each RemoveFacts line cancels
// exactly one occurrence; the model only loses the fact when the last
// occurrence goes, and the cancellation count survives re-analysis.
TEST(Incremental, DuplicateOccurrencesCancelOneAtATime) {
  Session session;
  ASSERT_TRUE(
      session.Load("e(n0, n1). e(n0, n1).\ntc(X, Y) :- e(X, Y).").ok());
  ASSERT_TRUE(session.Evaluate().ok());

  // First removal cancels one of two occurrences: the model is unchanged.
  ASSERT_TRUE(session.RemoveFacts("e(n0, n1).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.eval_cache_hits(), 1u);
  auto result = session.Query("tc(n0, X)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 1u);

  // Second removal cancels the last occurrence: incremental deletion.
  ASSERT_TRUE(session.RemoveFacts("e(n0, n1).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.incremental_evals(), 1u);
  result = session.Query("tc(n0, X)");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tuples.empty());

  // Re-analysis replays both cancellations against the AST's two clauses.
  ASSERT_TRUE(session.Load("f(q).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  result = session.Query("tc(n0, X)");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tuples.empty());
}

// Non-recursive strata keep per-row derivation counts: deleting one
// supporting fact is a counter decrement, and a row with an alternative
// derivation survives without any rederivation pass.
TEST(Incremental, CountingDecrementHandlesAlternativeDerivations) {
  Session session;
  ASSERT_TRUE(session
                  .Load("a(p). a(q). b(p).\n"
                        "r(X) :- a(X).\n"
                        "r(X) :- b(X).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());

  // r(p) is derived twice (via a and via b): removing a(p) decrements its
  // count to one and the row stays live.
  ASSERT_TRUE(session.RemoveFacts("a(p).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.incremental_evals(), 1u);
  EXPECT_GE(session.last_eval_stats().count_decrements, 1u);
  EXPECT_EQ(session.last_eval_stats().strata_overdeleted, 0u);
  auto result = session.Query("r(X)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 2u);  // r(p), r(q)

  // Removing b(p) drops the last derivation: r(p) goes.
  ASSERT_TRUE(session.RemoveFacts("b(p).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_GE(session.last_eval_stats().count_decrements, 1u);
  result = session.Query("r(X)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 1u);  // r(q)
}

// Recursive strata run full DRed: the over-delete phase marks everything
// transitively supported by the removed fact, and the rederive phase
// restores the rows that have an alternative proof from surviving facts.
TEST(Incremental, DRedRederivesAlternativePaths) {
  const std::string rules =
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), e(Z, Y).\n";
  Session session;
  ASSERT_TRUE(
      session.Load("e(a, b). e(b, c). e(a, c). e(c, d).\n" + rules).ok());
  ASSERT_TRUE(session.Evaluate().ok());

  // Removing e(b, c) over-deletes tc(a, c) and tc(a, d) too (they were
  // derived through b), but both rederive via the surviving e(a, c).
  ASSERT_TRUE(session.RemoveFacts("e(b, c).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.incremental_evals(), 1u);
  EXPECT_GE(session.last_eval_stats().strata_overdeleted, 1u);
  EXPECT_GE(session.last_eval_stats().rederive_rounds, 1u);

  auto result = session.Query("tc(b, X)");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tuples.empty());
  result = session.Query("tc(a, X)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 3u);  // b, c, d all still reachable

  Session scratch;
  ASSERT_TRUE(scratch.Load("e(a, b). e(a, c). e(c, d).\n" + rules).ok());
  ASSERT_TRUE(scratch.Evaluate().ok());
  EXPECT_EQ(Materialize(session), Materialize(scratch));
}

// A batch mixing insertions and deletions resolves in one incremental
// round: deletions settle first (DRed), then the insert delta resumes.
TEST(Incremental, MixedInsertDeleteBatchMatchesScratch) {
  const std::string rules =
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), e(Z, Y).\n";
  for (int threads : {1, 4}) {
    EvalOptions options;
    options.num_threads = threads;
    Session session;
    ASSERT_TRUE(
        session.Load("e(a, b). e(b, c). e(c, d).\n" + rules).ok());
    ASSERT_TRUE(session.Evaluate(options).ok());
    ASSERT_TRUE(session.AddFacts("e(d, f). e(b, g).").ok());
    ASSERT_TRUE(session.RemoveFacts("e(a, b).").ok());
    ASSERT_TRUE(session.Evaluate(options).ok());
    EXPECT_EQ(session.full_evals(), 1u) << "threads=" << threads;
    EXPECT_EQ(session.incremental_evals(), 1u) << "threads=" << threads;

    Session scratch;
    ASSERT_TRUE(
        scratch.Load("e(b, c). e(c, d). e(d, f). e(b, g).\n" + rules).ok());
    ASSERT_TRUE(scratch.Evaluate(options).ok());
    EXPECT_EQ(Materialize(session), Materialize(scratch))
        << "threads=" << threads;
  }
}

// Removing a fact and re-adding it before the next Evaluate() cancels the
// pending deletion: the model is unchanged and never re-materialized.
TEST(Incremental, RemoveThenReaddBeforeEvaluateCancelsOut) {
  Session session;
  ASSERT_TRUE(session
                  .Load("e(n0, n1). e(n1, n2).\n"
                        "tc(X, Y) :- e(X, Y).\n"
                        "tc(X, Y) :- tc(X, Z), e(Z, Y).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  ASSERT_TRUE(session.RemoveFacts("e(n1, n2).").ok());
  ASSERT_TRUE(session.AddFacts("e(n1, n2).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_TRUE(session.evaluated());
  EXPECT_EQ(session.full_evals(), 1u);
  auto result = session.Query("tc(n0, X)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 2u);
}

// Removing a fact, evaluating, and re-adding the same fact must restore
// the original model (the engine falls back to a full pass if the re-add
// revives a tombstoned row below the delta watermark).
TEST(Incremental, RemoveThenReaddAfterEvaluateStaysConsistent) {
  Session session;
  ASSERT_TRUE(session
                  .Load("e(n0, n1). e(n1, n2).\n"
                        "tc(X, Y) :- e(X, Y).\n"
                        "tc(X, Y) :- tc(X, Z), e(Z, Y).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  ASSERT_TRUE(session.RemoveFacts("e(n1, n2).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  ASSERT_TRUE(session.AddFacts("e(n1, n2).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  auto result = session.Query("tc(n0, X)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 2u);  // n1 and n2 both reachable again
}

// The deletion-side tentpole equivalence: alternating randomized insert
// and removal batches over every corpus program; the DRed-maintained
// session must match a scratch session that replays the same script,
// on the full model and on stored-query answers under every strategy.
TEST(Incremental, RandomizedInsertDeleteMatchesScratchAcrossCorpus) {
  std::vector<std::string> programs = CorpusPrograms();
  ASSERT_FALSE(programs.empty());
  uint64_t seed = 400;
  for (const std::string& path : programs) {
    for (int threads : {1, 4}) {
      EvalOptions options;
      options.num_threads = threads;

      Session incremental;
      ASSERT_TRUE(incremental.LoadFile(path).ok()) << path;
      ASSERT_TRUE(incremental.Evaluate(options).ok()) << path;

      // Alternate insert and removal batches, re-evaluating after each;
      // record the script so a scratch session can replay it verbatim.
      std::vector<std::pair<bool, std::string>> script;  // {is_removal, text}
      for (int round = 0; round < 6; ++round) {
        const bool removing = (round % 2) == 1;
        std::vector<std::string> lines =
            removing ? GenerateRemovals(incremental, 3, ++seed)
                     : GenerateFacts(incremental, 3, ++seed);
        if (lines.empty()) continue;  // no non-nullary EDB rows to touch
        std::string text;
        for (const std::string& line : lines) text += line + "\n";
        if (removing) {
          ASSERT_TRUE(incremental.RemoveFacts(text).ok())
              << path << "\n" << text;
        } else {
          ASSERT_TRUE(incremental.AddFacts(text).ok()) << path << "\n" << text;
        }
        ASSERT_TRUE(incremental.Evaluate(options).ok()) << path;
        script.emplace_back(removing, std::move(text));
      }
      if (script.empty()) continue;

      Session scratch;
      ASSERT_TRUE(scratch.LoadFile(path).ok()) << path;
      for (const auto& [removing, text] : script) {
        if (removing) {
          ASSERT_TRUE(scratch.RemoveFacts(text).ok()) << path << "\n" << text;
        } else {
          ASSERT_TRUE(scratch.AddFacts(text).ok()) << path << "\n" << text;
        }
      }
      ASSERT_TRUE(scratch.Evaluate(options).ok()) << path;

      EXPECT_EQ(Materialize(incremental), Materialize(scratch))
          << path << " threads=" << threads;
      for (QueryStrategy strategy : kStrategies) {
        EXPECT_EQ(StoredQueryAnswers(incremental, strategy, options),
                  StoredQueryAnswers(scratch, strategy, options))
            << path << " threads=" << threads << " strategy="
            << ToString(strategy);
      }
    }
  }
}

// Satellite regression: a Relation reference (with a built index) held
// across an incremental recompute round stays valid -- the clear keeps the
// index nodes linked, bumps the epoch, and repopulates on re-derivation.
TEST(Incremental, HeldRelationReferenceSurvivesRecompute) {
  // The negated body literal makes the grouping rule ineligible for
  // in-place regrowth, so the insertion still takes the clear-and-recompute
  // path this test exercises.
  Session session;
  ASSERT_TRUE(session
                  .Load("supplies(s1, p1).\n"
                        "banned(p9).\n"
                        "by_supplier(S, <P>) :- supplies(S, P), !banned(P).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  PredId by = session.catalog().Find("by_supplier", 2);
  PredId supplies = session.catalog().Find("supplies", 2);
  ASSERT_NE(by, kInvalidPred);
  const Relation& held = session.database().relation(by);
  const Term* s1 = session.database().relation(supplies).row(0)[0];
  // Build a column-0 index on the held reference before the update.
  std::vector<size_t> rows;
  held.Probe(0, s1, 0, held.row_count(), &rows);
  ASSERT_EQ(rows.size(), 1u);
  const uint64_t epoch_before = held.epoch();
  const size_t indexes_before = held.index_count();

  ASSERT_TRUE(session.AddFacts("supplies(s1, p2).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  ASSERT_GE(session.last_eval_stats().strata_recomputed, 1u);

  // Same relation object, new epoch; the retained index answers probes
  // over the recomputed rows.
  EXPECT_EQ(&held, &session.database().relation(by));
  EXPECT_GT(held.epoch(), epoch_before);
  EXPECT_GE(held.index_count(), indexes_before);
  held.Probe(0, s1, 0, held.row_count(), &rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(session.FormatTuple(Tuple(held.row(rows[0]).begin(),
                                      held.row(rows[0]).end())),
            "(s1, {p1, p2})");
}

// ComputeImpact unit coverage: the classification the per-stratum
// decisions are built on.
TEST(Incremental, ImpactClassification) {
  Session session;
  ASSERT_TRUE(session
                  .Load("e(n0, n1).\n"
                        "tc(X, Y) :- e(X, Y).\n"
                        "tc(X, Y) :- tc(X, Z), e(Z, Y).\n"
                        "lonely(X) :- tc(X, X), !e(X, X).\n"
                        "members(X, <Y>) :- tc(X, Y).\n"
                        "viewm(X, S) :- members(X, S).\n"
                        "guarded(X, <Y>) :- tc(X, Y), !e(X, X).\n"
                        "dual(X, <Y>) :- tc(X, Y).\n"
                        "dual(n7, n8).\n"
                        "other(m7).")
                  .ok());
  ASSERT_TRUE(session.Analyze().ok());
  const Catalog& catalog = session.catalog();
  std::vector<bool> changed(catalog.size(), false);
  changed[catalog.Find("e", 2)] = true;
  std::vector<PredImpact> impact =
      ComputeImpact(catalog, session.program(), changed);
  EXPECT_EQ(impact[catalog.Find("e", 2)], PredImpact::kDelta);
  EXPECT_EQ(impact[catalog.Find("tc", 2)], PredImpact::kDelta);
  // lonely consumes e through a negated literal: strict edge.
  EXPECT_EQ(impact[catalog.Find("lonely", 1)], PredImpact::kRecompute);
  // members groups over a delta body as its head's sole negation-free
  // rule: regrown in place.
  EXPECT_EQ(impact[catalog.Find("members", 2)], PredImpact::kGroupRegrow);
  // A consumer of a regrown predicate sees retract-and-reinsert
  // replacements, which the monotone delta machinery cannot track.
  EXPECT_EQ(impact[catalog.Find("viewm", 2)], PredImpact::kRecompute);
  // A negated body literal disqualifies the grouping rule from regrowth.
  EXPECT_EQ(impact[catalog.Find("guarded", 2)], PredImpact::kRecompute);
  // A second rule for the head (here a fact) does too: foreign facts make
  // keyed replacement unsound.
  EXPECT_EQ(impact[catalog.Find("dual", 2)], PredImpact::kRecompute);
  EXPECT_EQ(impact[catalog.Find("other", 1)], PredImpact::kClean);

  // Deletion seeding: a shrunk EDB classifies downstream positive
  // consumers as kShrink (DRed-maintainable); grouping and negation over
  // a shrinking body still escalate to recompute.
  std::vector<bool> none(catalog.size(), false);
  std::vector<bool> shrunk(catalog.size(), false);
  shrunk[catalog.Find("e", 2)] = true;
  impact = ComputeImpact(catalog, session.program(), none, &shrunk);
  EXPECT_EQ(impact[catalog.Find("e", 2)], PredImpact::kShrink);
  EXPECT_EQ(impact[catalog.Find("tc", 2)], PredImpact::kShrink);
  EXPECT_EQ(impact[catalog.Find("lonely", 1)], PredImpact::kRecompute);
  EXPECT_EQ(impact[catalog.Find("members", 2)], PredImpact::kRecompute);
  EXPECT_EQ(impact[catalog.Find("viewm", 2)], PredImpact::kRecompute);
  EXPECT_EQ(impact[catalog.Find("other", 1)], PredImpact::kClean);

  // Deletions dominate insertions: a predicate both changed and shrunk is
  // classified kShrink, not kDelta.
  impact = ComputeImpact(catalog, session.program(), changed, &shrunk);
  EXPECT_EQ(impact[catalog.Find("e", 2)], PredImpact::kShrink);
  EXPECT_EQ(impact[catalog.Find("tc", 2)], PredImpact::kShrink);
}

}  // namespace
}  // namespace ldl
