// End-to-end test of the ldl_repl binary: pipe a script through it and
// check the rendered answers, strata, provenance and warnings.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace ldl {
namespace {

// Runs the repl with `input` on stdin; returns stdout.
std::string RunRepl(const std::string& input, const std::string& args = "") {
  std::string command = "printf '%s' '" + input + "' | " +
                        std::string(LDL1_REPL_BINARY) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  char buffer[512];
  while (fgets(buffer, sizeof buffer, pipe) != nullptr) output += buffer;
  pclose(pipe);
  return output;
}

TEST(Repl, AnswersQueries) {
  std::string out = RunRepl(
      "parent(a,b).\n"
      "parent(b,c).\n"
      "anc(X,Y) :- parent(X,Y).\n"
      "anc(X,Y) :- parent(X,Z), anc(Z,Y).\n"
      "? anc(a,X).\n"
      ":quit\n");
  EXPECT_NE(out.find("(a, b)"), std::string::npos) << out;
  EXPECT_NE(out.find("(a, c)"), std::string::npos) << out;
  EXPECT_NE(out.find("2 answer(s)"), std::string::npos) << out;
}

TEST(Repl, StrataAndPreds) {
  std::string out = RunRepl(
      "p(a). q(X) :- p(X), !r(X). r(a).\n"
      ":strata\n"
      ":preds\n"
      ":quit\n");
  EXPECT_NE(out.find("layer 0"), std::string::npos) << out;
  EXPECT_NE(out.find("layer 1"), std::string::npos) << out;
  EXPECT_NE(out.find("q/1"), std::string::npos) << out;
}

TEST(Repl, MagicModeAndStats) {
  std::string out = RunRepl(
      "e(1,2). e(2,3).\n"
      "t(X,Y) :- e(X,Y).\n"
      "t(X,Y) :- e(X,Z), t(Z,Y).\n"
      ":magic on\n"
      "? t(1,X).\n"
      ":stats\n"
      ":quit\n");
  EXPECT_NE(out.find("[magic]"), std::string::npos) << out;
  EXPECT_NE(out.find("firings="), std::string::npos) << out;
}

TEST(Repl, WhyProvenance) {
  std::string out = RunRepl(
      "parent(a,b).\n"
      "anc(X,Y) :- parent(X,Y).\n"
      ":why anc(a, b)\n"
      ":quit\n");
  EXPECT_NE(out.find("anc(a, b)   [rule"), std::string::npos) << out;
  EXPECT_NE(out.find("parent(a, b)   [edb]"), std::string::npos) << out;
}

TEST(Repl, WarningsCommand) {
  std::string out = RunRepl(
      "int(z).\n"
      "int(s(X)) :- int(X).\n"
      ":warnings\n"
      ":quit\n");
  EXPECT_NE(out.find("may be infinite"), std::string::npos) << out;
}

TEST(Repl, ErrorsAreReportedNotFatal) {
  std::string out = RunRepl(
      "p(a.\n"          // parse error
      "p(a).\n"         // still works afterwards
      "? p(X).\n"
      ":quit\n");
  EXPECT_NE(out.find("parse_error"), std::string::npos) << out;
  EXPECT_NE(out.find("1 answer(s)"), std::string::npos) << out;
}

TEST(Repl, LoadsCorpusFile) {
  std::string out = RunRepl("? young(ella, S).\n:quit\n",
                            std::string(LDL1_CORPUS_DIR) + "/young.ldl");
  EXPECT_NE(out.find("loaded"), std::string::npos) << out;
  EXPECT_NE(out.find("{bob}"), std::string::npos) << out;
}

}  // namespace
}  // namespace ldl
