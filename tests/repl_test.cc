// End-to-end test of the ldl_repl binary: pipe a script through it and
// check the rendered answers, strata, provenance and warnings.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <string>

namespace ldl {
namespace {

// Runs the repl with `input` on stdin; returns the merged stdout+stderr and
// optionally the process exit code.
std::string RunRepl(const std::string& input, const std::string& args = "",
                    int* exit_code = nullptr) {
  std::string command = "printf '%s' '" + input + "' | " +
                        std::string(LDL1_REPL_BINARY) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  char buffer[512];
  while (fgets(buffer, sizeof buffer, pipe) != nullptr) output += buffer;
  int status = pclose(pipe);
  if (exit_code != nullptr) {
    *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return output;
}

// As RunRepl, but keeps the streams separate: returns stdout, stores stderr.
std::string RunReplSplit(const std::string& input, std::string* err_out,
                         int* exit_code = nullptr) {
  std::string err_file = ::testing::TempDir() + "/repl_stderr.txt";
  std::string command = "printf '%s' '" + input + "' | " +
                        std::string(LDL1_REPL_BINARY) + " 2>" + err_file;
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  char buffer[512];
  while (fgets(buffer, sizeof buffer, pipe) != nullptr) output += buffer;
  int status = pclose(pipe);
  if (exit_code != nullptr) {
    *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  err_out->clear();
  FILE* err = fopen(err_file.c_str(), "r");
  if (err != nullptr) {
    while (fgets(buffer, sizeof buffer, err) != nullptr) *err_out += buffer;
    fclose(err);
    remove(err_file.c_str());
  }
  return output;
}

TEST(Repl, AnswersQueries) {
  std::string out = RunRepl(
      "parent(a,b).\n"
      "parent(b,c).\n"
      "anc(X,Y) :- parent(X,Y).\n"
      "anc(X,Y) :- parent(X,Z), anc(Z,Y).\n"
      "? anc(a,X).\n"
      ":quit\n");
  EXPECT_NE(out.find("(a, b)"), std::string::npos) << out;
  EXPECT_NE(out.find("(a, c)"), std::string::npos) << out;
  EXPECT_NE(out.find("2 answer(s)"), std::string::npos) << out;
}

TEST(Repl, StrataAndPreds) {
  std::string out = RunRepl(
      "p(a). q(X) :- p(X), !r(X). r(a).\n"
      ":strata\n"
      ":preds\n"
      ":quit\n");
  EXPECT_NE(out.find("layer 0"), std::string::npos) << out;
  EXPECT_NE(out.find("layer 1"), std::string::npos) << out;
  EXPECT_NE(out.find("q/1"), std::string::npos) << out;
}

TEST(Repl, MagicModeAndStats) {
  std::string out = RunRepl(
      "e(1,2). e(2,3).\n"
      "t(X,Y) :- e(X,Y).\n"
      "t(X,Y) :- e(X,Z), t(Z,Y).\n"
      ":magic on\n"
      "? t(1,X).\n"
      ":stats\n"
      ":quit\n");
  EXPECT_NE(out.find("[magic]"), std::string::npos) << out;
  EXPECT_NE(out.find("firings="), std::string::npos) << out;
}

TEST(Repl, PlanDumpsJoinOrderWithEstimates) {
  // sel has 2 rows against big's 6: the cost-based planner schedules it
  // first and the step lines carry row counts and estimated output sizes.
  std::string out = RunRepl(
      "big(b1, k1). big(b2, k1). big(b3, k1).\n"
      "big(b4, k2). big(b5, k2). big(b6, k2).\n"
      "sel(k1, s1). sel(k9, s9).\n"
      "join(X, Y) :- big(X, Z), sel(Z, Y).\n"
      ":plan join/2\n"
      ":stats\n"
      ":quit\n");
  EXPECT_NE(out.find("rule: join(X, Y) :- big(X, Z), sel(Z, Y)"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("1. sel(Z, Y)"), std::string::npos) << out;
  EXPECT_NE(out.find("[2 rows]"), std::string::npos) << out;
  EXPECT_NE(out.find("2. big(X, Z)"), std::string::npos) << out;
  EXPECT_NE(out.find("est total work"), std::string::npos) << out;
  // The planner counters surface in :stats alongside the engine counters.
  EXPECT_NE(out.find("plans_reordered="), std::string::npos) << out;
  EXPECT_NE(out.find("replans="), std::string::npos) << out;
}

TEST(Repl, StrategyListsValidNames) {
  std::string out = RunRepl(
      ":strategy\n"
      ":strategy warp\n"
      ":quit\n");
  EXPECT_NE(out.find("strategy: model (valid: model, magic, magic-sup, topdown)"),
            std::string::npos)
      << out;
  // Unknown names report the same list.
  EXPECT_NE(out.find("expected one of: model, magic, magic-sup, topdown"),
            std::string::npos)
      << out;
}

TEST(Repl, ServeAnswersConcurrently) {
  std::string out = RunRepl(
      "e(1,2). e(2,3). e(3,4).\n"
      "t(X,Y) :- e(X,Y).\n"
      "t(X,Y) :- e(X,Z), t(Z,Y).\n"
      ":serve 2 t(1, X)\n"
      ":quit\n");
  EXPECT_NE(out.find("served 51 queries over 2 thread(s), 3 answer(s) each"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("queries_served=51"), std::string::npos) << out;
  EXPECT_NE(out.find("snapshots_published=2"), std::string::npos) << out;
}

TEST(Repl, RetractRemovesFacts) {
  std::string out = RunRepl(
      "e(1,2). e(2,3).\n"
      "t(X,Y) :- e(X,Y).\n"
      "t(X,Y) :- e(X,Z), t(Z,Y).\n"
      "? t(1,X).\n"
      ":retract e(2,3).\n"
      "? t(1,X).\n"
      ":retract t(1,2).\n"
      ":quit\n");
  EXPECT_NE(out.find("2 answer(s)"), std::string::npos) << out;
  EXPECT_NE(out.find("retracted"), std::string::npos) << out;
  EXPECT_NE(out.find("1 answer(s)"), std::string::npos) << out;
  // Derived predicates cannot be retracted; the error is reported inline.
  EXPECT_NE(out.find("derived predicate"), std::string::npos) << out;
}

TEST(Repl, WhyProvenance) {
  std::string out = RunRepl(
      "parent(a,b).\n"
      "anc(X,Y) :- parent(X,Y).\n"
      ":why anc(a, b)\n"
      ":quit\n");
  EXPECT_NE(out.find("anc(a, b)   [rule"), std::string::npos) << out;
  EXPECT_NE(out.find("parent(a, b)   [edb]"), std::string::npos) << out;
}

TEST(Repl, WarningsCommand) {
  std::string out = RunRepl(
      "int(z).\n"
      "int(s(X)) :- int(X).\n"
      ":warnings\n"
      ":quit\n");
  EXPECT_NE(out.find("may be infinite"), std::string::npos) << out;
}

TEST(Repl, ErrorsAreReportedNotFatal) {
  std::string out = RunRepl(
      "p(a.\n"          // parse error
      "p(a).\n"         // still works afterwards
      "? p(X).\n"
      ":quit\n");
  EXPECT_NE(out.find("parse_error"), std::string::npos) << out;
  EXPECT_NE(out.find("1 answer(s)"), std::string::npos) << out;
}

TEST(Repl, BatchModeExitsNonzeroOnFailure) {
  int code = -1;
  RunRepl("p(a.\np(a).\n? p(X).\n:quit\n", "", &code);
  EXPECT_EQ(code, 1);  // a statement failed, even though later ones worked
  RunRepl("p(a).\n? p(X).\n:quit\n", "", &code);
  EXPECT_EQ(code, 0);
  RunRepl(":bogus\n:quit\n", "", &code);
  EXPECT_EQ(code, 1);
}

TEST(Repl, ErrorsGoToStderrNotStdout) {
  std::string err;
  int code = -1;
  std::string out = RunReplSplit("p(a.\np(a).\n? p(X).\n:quit\n", &err, &code);
  EXPECT_EQ(code, 1);
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
  EXPECT_NE(err.find("parse_error"), std::string::npos) << err;
  EXPECT_NE(out.find("1 answer(s)"), std::string::npos) << out;
}

TEST(Repl, ProfileDumpEmitsJson) {
  std::string out = RunRepl(
      "parent(a,b).\n"
      "parent(b,c).\n"
      "anc(X,Y) :- parent(X,Y).\n"
      "anc(X,Y) :- parent(X,Z), anc(Z,Y).\n"
      ":profile on\n"
      "? anc(a,X).\n"
      ":profile dump\n"
      ":quit\n");
  EXPECT_NE(out.find("profile: on"), std::string::npos) << out;
  EXPECT_NE(out.find("\"total_wall_ns\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"rules\""), std::string::npos) << out;
  EXPECT_NE(out.find("anc(X, Y) :- parent(X, Z), anc(Z, Y)"), std::string::npos)
      << out;
}

TEST(Repl, ProfileDumpToFile) {
  std::string path = ::testing::TempDir() + "/repl_profile.json";
  std::string out = RunRepl(
      "e(1,2).\n"
      "t(X,Y) :- e(X,Y).\n"
      ":profile on\n"
      "? t(1,X).\n"
      ":profile dump " + path + "\n"
      ":quit\n");
  EXPECT_NE(out.find("profile written to"), std::string::npos) << out;
  FILE* file = fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buffer[512];
  while (fgets(buffer, sizeof buffer, file) != nullptr) contents += buffer;
  fclose(file);
  remove(path.c_str());
  EXPECT_NE(contents.find("\"firings\""), std::string::npos) << contents;
}

TEST(Repl, LoadsCorpusFile) {
  std::string out = RunRepl("? young(ella, S).\n:quit\n",
                            std::string(LDL1_CORPUS_DIR) + "/young.ldl");
  EXPECT_NE(out.find("loaded"), std::string::npos) << out;
  EXPECT_NE(out.find("{bob}"), std::string::npos) << out;
}

}  // namespace
}  // namespace ldl
