// Facade behaviors: incremental loading, re-analysis, error propagation,
// formatting, stored queries.
#include <gtest/gtest.h>

#include "ldl/ldl.h"

namespace ldl {
namespace {

TEST(Session, IncrementalLoadInvalidatesAnalysis) {
  Session session;
  ASSERT_TRUE(session.Load("p(a).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  ASSERT_TRUE(session.Load("q(X) :- p(X).").ok());
  auto result = session.Query("q(X)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->tuples.size(), 1u);
}

TEST(Session, ParseErrorsSurface) {
  Session session;
  Status status = session.Load("p(a");
  EXPECT_EQ(status.code(), StatusCode::kParseError);
}

TEST(Session, AnalysisErrorsSurfaceOnQuery) {
  Session session;
  ASSERT_TRUE(session.Load("p(1). p(<X>) :- p(X).").ok());
  auto result = session.Query("p(X)");
  EXPECT_EQ(result.status().code(), StatusCode::kNotAdmissible);
}

TEST(Session, QueryValidation) {
  Session session;
  ASSERT_TRUE(session.Load("p(a).").ok());
  EXPECT_FALSE(session.Query("!p(X)").ok());
  EXPECT_FALSE(session.Query("X = 1").ok());
  EXPECT_FALSE(session.Query("p(").ok());
}

TEST(Session, QueryOnUnknownPredicate) {
  Session session;
  ASSERT_TRUE(session.Load("p(a).").ok());
  // Unknown predicates simply have empty relations.
  auto result = session.Query("zzz(X)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->tuples.empty());
}

TEST(Session, StoredQueriesAreKept) {
  Session session;
  ASSERT_TRUE(session.Load("p(a).\n? p(X).").ok());
  ASSERT_EQ(session.stored_queries().size(), 1u);
}

TEST(Session, FormatFactRendersSets) {
  Session session;
  ASSERT_TRUE(session.Load("p(a, {1, 2}).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  PredId p = session.catalog().Find("p", 2);
  auto rows = session.database().relation(p).Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(session.FormatFact(p, rows[0]), "p(a, {1, 2})");
  EXPECT_EQ(session.FormatTuple(rows[0]), "(a, {1, 2})");
}

TEST(Session, EvaluateIsRepeatable) {
  Session session;
  ASSERT_TRUE(session.Load("e(1, 2). e(2, 3).\n"
                           "t(X, Y) :- e(X, Y).\n"
                           "t(X, Y) :- t(X, Z), e(Z, Y).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  size_t first = session.database().TotalFacts();
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.database().TotalFacts(), first);
}

TEST(Session, RepeatEvaluateIsACacheHit) {
  Session session;
  ASSERT_TRUE(session.Load("e(1, 2). t(X, Y) :- e(X, Y).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  ASSERT_TRUE(session.Evaluate().ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(session.full_evals(), 1u);
  EXPECT_EQ(session.eval_cache_hits(), 2u);

  // A different evaluation configuration is not a hit...
  EvalOptions naive;
  naive.mode = EvalOptions::Mode::kNaive;
  ASSERT_TRUE(session.Evaluate(naive).ok());
  EXPECT_EQ(session.full_evals(), 2u);
  // ... but repeating it is.
  ASSERT_TRUE(session.Evaluate(naive).ok());
  EXPECT_EQ(session.eval_cache_hits(), 3u);

  // InvalidateModel forces the next Evaluate to rematerialize.
  session.InvalidateModel();
  EXPECT_FALSE(session.evaluated());
  ASSERT_TRUE(session.Evaluate(naive).ok());
  EXPECT_EQ(session.full_evals(), 3u);
}

TEST(Session, MagicFallsBackForExtensionalGoals) {
  Session session;
  ASSERT_TRUE(session.Load("p(a, b).").ok());
  QueryOptions options;
  options.strategy = ldl::QueryStrategy::kMagic;
  auto result = session.Query("p(a, X)", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->tuples.size(), 1u);
}

TEST(Session, MagicQueryDoesNotPolluteSessionDatabase) {
  Session session;
  ASSERT_TRUE(session.Load("p(a, b). p(b, c).\n"
                           "anc(X, Y) :- p(X, Y).\n"
                           "anc(X, Y) :- p(X, Z), anc(Z, Y).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  size_t facts = session.database().TotalFacts();
  QueryOptions options;
  options.strategy = ldl::QueryStrategy::kMagic;
  ASSERT_TRUE(session.Query("anc(a, X)", options).ok());
  EXPECT_EQ(session.database().TotalFacts(), facts);
}

TEST(Session, DuplicateFactsCollapse) {
  Session session;
  ASSERT_TRUE(session.Load("p(a). p(a). p({1, 1}). p({1}).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  PredId p = session.catalog().Find("p", 1);
  EXPECT_EQ(session.database().relation(p).size(), 2u);  // p(a), p({1})
}

TEST(Session, SconsFactsEvaluate) {
  Session session;
  ASSERT_TRUE(session.Load("p(scons(1, scons(2, {}))).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  auto result = session.Query("p({1, 2})");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 1u);
}

TEST(Session, ConstIntrospectionAccessors) {
  Session session;
  ASSERT_TRUE(session.Load("p(a). q(X) :- p(X).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  const Session& view = session;
  PredId p = view.catalog().Find("p", 1);
  ASSERT_NE(p, kInvalidPred);
  EXPECT_EQ(view.database().relation(p).size(), 1u);
  EXPECT_FALSE(view.program().rules.empty());
  EXPECT_GT(view.interner().size(), 0u);
  EXPECT_EQ(view.factory().interner(), &view.interner());
  EXPECT_EQ(view.engine().catalog(), &view.catalog());
}

TEST(Session, QueryStrategyToStringParseRoundTrip) {
  for (QueryStrategy strategy :
       {QueryStrategy::kModel, QueryStrategy::kMagic,
        QueryStrategy::kMagicSupplementary, QueryStrategy::kTopDown}) {
    auto parsed = ParseQueryStrategy(ToString(strategy));
    ASSERT_TRUE(parsed.ok()) << ToString(strategy);
    EXPECT_EQ(*parsed, strategy);
  }
  // Aliases accepted by Parse but never printed by ToString.
  EXPECT_EQ(*ParseQueryStrategy("magic-supplementary"),
            QueryStrategy::kMagicSupplementary);
  EXPECT_EQ(*ParseQueryStrategy("sup"), QueryStrategy::kMagicSupplementary);
  EXPECT_EQ(*ParseQueryStrategy("top-down"), QueryStrategy::kTopDown);
  // Unknown names fail with a message enumerating the canonical names.
  auto bad = ParseQueryStrategy("bottom-up");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find(QueryStrategyNames()),
            std::string::npos);
}

TEST(Session, PreparedQueryReuseAcrossStrategies) {
  Session session;
  ASSERT_TRUE(session.Load(R"(
    edge(1, 2). edge(2, 3). edge(3, 4).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )").ok());
  auto prepared = session.Prepare("path(1, X)");
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE(prepared->valid());
  EXPECT_EQ(prepared->text(), "path(1, X)");
  for (QueryStrategy strategy :
       {QueryStrategy::kModel, QueryStrategy::kMagic,
        QueryStrategy::kMagicSupplementary, QueryStrategy::kTopDown}) {
    QueryOptions options;
    options.strategy = strategy;
    auto result = session.Query(*prepared, options);
    ASSERT_TRUE(result.ok()) << ToString(strategy);
    EXPECT_EQ(result->tuples.size(), 3u) << ToString(strategy);
  }
}

TEST(Session, PreparedQuerySurvivesAddFacts) {
  Session session;
  ASSERT_TRUE(session.Load("edge(1, 2). path(X, Y) :- edge(X, Y).").ok());
  auto prepared = session.Prepare("path(X, Y)");
  ASSERT_TRUE(prepared.ok());
  auto before = session.Query(*prepared);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->tuples.size(), 1u);
  // Answers reflect the model at query time, not preparation time.
  ASSERT_TRUE(session.AddFacts("edge(2, 3).").ok());
  auto after = session.Query(*prepared);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->tuples.size(), 2u);
}

TEST(Session, DefaultPreparedQueryRejected) {
  Session session;
  ASSERT_TRUE(session.Load("p(a).").ok());
  PreparedQuery unprepared;
  EXPECT_FALSE(unprepared.valid());
  EXPECT_FALSE(session.Query(unprepared).ok());
}

TEST(Session, LastEvalStatsPopulated) {
  Session session;
  ASSERT_TRUE(session.Load("e(1, 2).\nt(X, Y) :- e(X, Y).").ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_GT(session.last_eval_stats().rule_firings, 0u);
  EXPECT_GT(session.last_eval_stats().facts_derived, 0u);
}

}  // namespace
}  // namespace ldl
