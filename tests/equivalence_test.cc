// Equivalence of the evaluation strategies over the .ldl example corpus:
// naive and semi-naive fixpoints, each with compiled join plans and with the
// legacy substitution interpreter, must produce identical models (including
// the grouping and stratified-negation programs). Stored queries (which
// exercise the magic-rewritten saturating evaluation) must agree too.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "ldl/ldl.h"

namespace ldl {
namespace {

std::vector<std::string> CorpusPrograms() {
  std::vector<std::string> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(LDL1_CORPUS_DIR)) {
    if (entry.path().extension() == ".ldl") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

// The full model as text: predicate name -> sorted formatted tuples.
// Formatting makes snapshots comparable across sessions (interned term
// pointers differ between factories).
using ModelText = std::map<std::string, std::vector<std::string>>;

ModelText Materialize(Session& session) {
  ModelText model;
  for (PredId pred = 0; pred < session.catalog().size(); ++pred) {
    std::vector<std::string> rows;
    for (const Tuple& tuple : session.database().relation(pred).Snapshot()) {
      rows.push_back(session.FormatTuple(tuple));
    }
    std::sort(rows.begin(), rows.end());
    model[session.catalog().DebugName(pred)] = std::move(rows);
  }
  return model;
}

// Answers stored queries through the magic-set rewriting, so the saturating
// evaluator (grouping reconciliation and all) runs under `eval` too.
std::vector<std::string> StoredQueryAnswers(Session& session,
                                            const EvalOptions& eval) {
  std::vector<std::string> all;
  AstPrinter printer(&session.interner());
  QueryOptions query_options;
  query_options.use_magic = true;
  query_options.eval = eval;
  for (const QueryAst& query : session.stored_queries()) {
    std::string goal = printer.ToString(query.goal);
    auto result = session.Query(goal, query_options);
    EXPECT_TRUE(result.ok()) << goal << ": " << result.status();
    if (!result.ok()) continue;
    for (const Tuple& tuple : result->tuples) {
      all.push_back(goal + " -> " + session.FormatTuple(tuple));
    }
  }
  std::sort(all.begin(), all.end());
  return all;
}

struct Config {
  const char* name;
  EvalOptions::Mode mode;
  bool use_compiled_plans;
};

constexpr Config kConfigs[] = {
    {"naive/legacy", EvalOptions::Mode::kNaive, false},
    {"naive/plans", EvalOptions::Mode::kNaive, true},
    {"semi-naive/legacy", EvalOptions::Mode::kSemiNaive, false},
    {"semi-naive/plans", EvalOptions::Mode::kSemiNaive, true},
};

TEST(Equivalence, CorpusModelsAgreeAcrossStrategies) {
  std::vector<std::string> programs = CorpusPrograms();
  ASSERT_FALSE(programs.empty());
  for (const std::string& path : programs) {
    ModelText reference;
    std::vector<std::string> reference_answers;
    for (const Config& config : kConfigs) {
      Session session;
      ASSERT_TRUE(session.LoadFile(path).ok()) << path;
      EvalOptions options;
      options.mode = config.mode;
      options.use_compiled_plans = config.use_compiled_plans;
      Status status = session.Evaluate(options);
      ASSERT_TRUE(status.ok()) << path << " [" << config.name << "]: " << status;
      ModelText model = Materialize(session);
      std::vector<std::string> answers = StoredQueryAnswers(session, options);
      if (&config == &kConfigs[0]) {
        reference = std::move(model);
        reference_answers = std::move(answers);
        EXPECT_FALSE(reference.empty()) << path;
        continue;
      }
      EXPECT_EQ(model, reference) << path << " [" << config.name
                                  << "] diverges from " << kConfigs[0].name;
      EXPECT_EQ(answers, reference_answers)
          << path << " [" << config.name << "] query answers diverge";
    }
  }
}

}  // namespace
}  // namespace ldl
