// Equivalence of the evaluation strategies over the .ldl example corpus:
// naive and semi-naive fixpoints, each with compiled join plans and with the
// legacy substitution interpreter, must produce identical models (including
// the grouping and stratified-negation programs). Stored queries (which
// exercise the magic-rewritten saturating evaluation) must agree too.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "ldl/ldl.h"
#include "workload/workload.h"

namespace ldl {
namespace {

std::vector<std::string> CorpusPrograms() {
  std::vector<std::string> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(LDL1_CORPUS_DIR)) {
    if (entry.path().extension() == ".ldl") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

// The full model as text: predicate name -> sorted formatted tuples.
// Formatting makes snapshots comparable across sessions (interned term
// pointers differ between factories).
using ModelText = std::map<std::string, std::vector<std::string>>;

ModelText Materialize(Session& session) {
  ModelText model;
  for (PredId pred = 0; pred < session.catalog().size(); ++pred) {
    std::vector<std::string> rows;
    for (const Tuple& tuple : session.database().relation(pred).Snapshot()) {
      rows.push_back(session.FormatTuple(tuple));
    }
    std::sort(rows.begin(), rows.end());
    model[session.catalog().DebugName(pred)] = std::move(rows);
  }
  return model;
}

// Answers stored queries through the magic-set rewriting, so the saturating
// evaluator (grouping reconciliation and all) runs under `eval` too.
std::vector<std::string> StoredQueryAnswers(
    Session& session, const EvalOptions& eval,
    QueryStrategy strategy = QueryStrategy::kMagic) {
  std::vector<std::string> all;
  AstPrinter printer(&session.interner());
  QueryOptions query_options;
  query_options.strategy = strategy;
  query_options.eval = eval;
  for (const QueryAst& query : session.stored_queries()) {
    std::string goal = printer.ToString(query.goal);
    auto result = session.Query(goal, query_options);
    EXPECT_TRUE(result.ok()) << goal << ": " << result.status();
    if (!result.ok()) continue;
    for (const Tuple& tuple : result->tuples) {
      all.push_back(goal + " -> " + session.FormatTuple(tuple));
    }
  }
  std::sort(all.begin(), all.end());
  return all;
}

struct Config {
  const char* name;
  EvalOptions::Mode mode;
  bool use_compiled_plans;
  int threads = 1;
  bool batch = true;
};

constexpr Config kConfigs[] = {
    {"naive/legacy", EvalOptions::Mode::kNaive, false},
    {"naive/plans", EvalOptions::Mode::kNaive, true},
    {"semi-naive/legacy", EvalOptions::Mode::kSemiNaive, false},
    {"semi-naive/plans", EvalOptions::Mode::kSemiNaive, true},
    // Threads axis: the parallel evaluator must reproduce the serial model
    // at every pool width (1 runs the serial code path by construction).
    {"semi-naive/plans/t2", EvalOptions::Mode::kSemiNaive, true, 2},
    {"semi-naive/plans/t4", EvalOptions::Mode::kSemiNaive, true, 4},
    {"semi-naive/plans/t8", EvalOptions::Mode::kSemiNaive, true, 8},
    {"naive/plans/t4", EvalOptions::Mode::kNaive, true, 4},
    {"semi-naive/legacy/t4", EvalOptions::Mode::kSemiNaive, false, 4},
    // Batch axis: the block-at-a-time executor (on by default above) vs the
    // scalar tuple-at-a-time executor forced via EvalOptions::batch = false.
    {"naive/plans/scalar", EvalOptions::Mode::kNaive, true, 1, false},
    {"semi-naive/plans/scalar", EvalOptions::Mode::kSemiNaive, true, 1, false},
    {"semi-naive/plans/t4/scalar", EvalOptions::Mode::kSemiNaive, true, 4, false},
};

TEST(Equivalence, CorpusModelsAgreeAcrossStrategies) {
  std::vector<std::string> programs = CorpusPrograms();
  ASSERT_FALSE(programs.empty());
  for (const std::string& path : programs) {
    ModelText reference;
    std::vector<std::string> reference_answers;
    for (const Config& config : kConfigs) {
      Session session;
      ASSERT_TRUE(session.LoadFile(path).ok()) << path;
      EvalOptions options;
      options.mode = config.mode;
      options.use_compiled_plans = config.use_compiled_plans;
      options.num_threads = config.threads;
      options.batch = config.batch;
      Status status = session.Evaluate(options);
      ASSERT_TRUE(status.ok()) << path << " [" << config.name << "]: " << status;
      ModelText model = Materialize(session);
      std::vector<std::string> answers = StoredQueryAnswers(session, options);
      if (&config == &kConfigs[0]) {
        reference = std::move(model);
        reference_answers = std::move(answers);
        EXPECT_FALSE(reference.empty()) << path;
        continue;
      }
      EXPECT_EQ(model, reference) << path << " [" << config.name
                                  << "] diverges from " << kConfigs[0].name;
      EXPECT_EQ(answers, reference_answers)
          << path << " [" << config.name << "] query answers diverge";
    }
  }
}

// Cost-based join ordering must be invisible in the model: over the whole
// corpus, the cost-based orderer produces the same models and stored-query
// answers as the syntactic orderer, under every query strategy and at both
// serial and parallel pool widths.
TEST(Equivalence, CostBasedMatchesSyntacticAcrossStrategies) {
  constexpr QueryStrategy kStrategies[] = {
      QueryStrategy::kModel, QueryStrategy::kMagic,
      QueryStrategy::kMagicSupplementary, QueryStrategy::kTopDown};
  std::vector<std::string> programs = CorpusPrograms();
  ASSERT_FALSE(programs.empty());
  for (const std::string& path : programs) {
    Session reference;
    ASSERT_TRUE(reference.LoadFile(path).ok()) << path;
    EvalOptions syntactic;
    syntactic.cost_based = false;
    Status status = reference.Evaluate(syntactic);
    ASSERT_TRUE(status.ok()) << path << ": " << status;
    ModelText reference_model = Materialize(reference);
    std::map<QueryStrategy, std::vector<std::string>> reference_answers;
    for (QueryStrategy strategy : kStrategies) {
      reference_answers[strategy] =
          StoredQueryAnswers(reference, syntactic, strategy);
    }

    for (int threads : {1, 4}) {
      Session session;
      ASSERT_TRUE(session.LoadFile(path).ok()) << path;
      EvalOptions cost_based;
      cost_based.cost_based = true;
      cost_based.num_threads = threads;
      status = session.Evaluate(cost_based);
      ASSERT_TRUE(status.ok()) << path << " t" << threads << ": " << status;
      EXPECT_EQ(Materialize(session), reference_model)
          << path << " [cost-based t" << threads
          << "] diverges from the syntactic order";
      for (QueryStrategy strategy : kStrategies) {
        EXPECT_EQ(StoredQueryAnswers(session, cost_based, strategy),
                  reference_answers[strategy])
            << path << " [cost-based t" << threads << " " << ToString(strategy)
            << "] query answers diverge";
      }
    }
  }
}

// One line per profiled rule with its deterministic (non-timing) counters.
// Entries arrive in rule-index order, which is itself deterministic, so the
// rendered vectors compare directly.
std::vector<std::string> DeterministicProfileLines(const EvalProfile& profile) {
  std::vector<std::string> lines;
  for (const RuleProfileEntry& entry : profile.rules()) {
    std::string line = "#" + std::to_string(entry.rule_index) + "@" +
                       std::to_string(entry.stratum) + " " + entry.label;
    entry.counters.ForEachField(
        [&](const char* name, uint64_t value) {
          line += " " + std::string(name) + "=" + std::to_string(value);
        },
        /*include_timing=*/false);
    lines.push_back(std::move(line));
  }
  return lines;
}

// Every EvalStats counter, rendered (all of them are deterministic for a
// fixed thread count, so batch on/off must not move any).
std::vector<std::string> StatsLines(const EvalStats& stats) {
  std::vector<std::string> lines;
  stats.ForEachField([&](const char* name, size_t value) {
    lines.push_back(std::string(name) + "=" + std::to_string(value));
  });
  return lines;
}

// Per-fact derivation counts of every counted relation (the DRed deletion
// fast path's input -- a batch/scalar mismatch here would silently corrupt
// incremental deletes).
std::map<std::string, uint32_t> DerivationCounts(Session& session) {
  std::map<std::string, uint32_t> counts;
  for (PredId pred = 0; pred < session.catalog().size(); ++pred) {
    const Relation& relation = session.database().relation(pred);
    if (!relation.counted()) continue;
    std::string name = session.catalog().DebugName(pred);
    for (size_t row = 0; row < relation.row_count(); ++row) {
      if (!relation.IsLive(row)) continue;
      Tuple tuple(relation.row(row).begin(), relation.row(row).end());
      counts[name + "(" + session.FormatTuple(tuple) + ")"] =
          relation.derivation_count(row);
    }
  }
  return counts;
}

// The batch executor's contract (DESIGN.md §12): with everything else held
// fixed, batch on/off must be invisible -- identical models, identical
// stored-query answers under every strategy, identical deterministic
// profile counters, identical EvalStats, and identical per-fact derivation
// counts, at serial and parallel widths.
TEST(Equivalence, BatchMatchesScalarProfilesAndCounts) {
  constexpr QueryStrategy kStrategies[] = {
      QueryStrategy::kModel, QueryStrategy::kMagic,
      QueryStrategy::kMagicSupplementary, QueryStrategy::kTopDown};
  std::vector<std::string> programs = CorpusPrograms();
  ASSERT_FALSE(programs.empty());
  for (const std::string& path : programs) {
    for (int threads : {1, 4}) {
      ModelText reference_model;
      std::vector<std::string> reference_profile;
      std::vector<std::string> reference_stats;
      std::map<std::string, uint32_t> reference_counts;
      std::map<QueryStrategy, std::vector<std::string>> reference_answers;
      for (bool batch : {false, true}) {
        Session session;
        ASSERT_TRUE(session.LoadFile(path).ok()) << path;
        EvalOptions options;
        options.batch = batch;
        options.num_threads = threads;
        options.profile = true;
        Status status = session.Evaluate(options);
        ASSERT_TRUE(status.ok())
            << path << " t" << threads << " batch=" << batch << ": " << status;
        ModelText model = Materialize(session);
        std::vector<std::string> profile =
            DeterministicProfileLines(session.last_eval_profile());
        std::vector<std::string> stats = StatsLines(session.last_eval_stats());
        std::map<std::string, uint32_t> counts = DerivationCounts(session);
        std::map<QueryStrategy, std::vector<std::string>> answers;
        for (QueryStrategy strategy : kStrategies) {
          answers[strategy] = StoredQueryAnswers(session, options, strategy);
        }
        if (!batch) {
          reference_model = std::move(model);
          reference_profile = std::move(profile);
          reference_stats = std::move(stats);
          reference_counts = std::move(counts);
          reference_answers = std::move(answers);
          continue;
        }
        std::string label = path + " t" + std::to_string(threads);
        EXPECT_EQ(model, reference_model) << label << " model diverges";
        EXPECT_EQ(profile, reference_profile) << label << " profile diverges";
        EXPECT_EQ(stats, reference_stats) << label << " stats diverge";
        EXPECT_EQ(counts, reference_counts)
            << label << " derivation counts diverge";
        for (QueryStrategy strategy : kStrategies) {
          EXPECT_EQ(answers[strategy], reference_answers[strategy])
              << label << " " << ToString(strategy) << " answers diverge";
        }
      }
    }
  }
}

// Stress the delta-window sharding path: transitive closure of a random
// graph with a few hub nodes produces large, skewed per-round deltas, so
// windows get split into row-range shards (>= 64 rows each). The parallel
// model and query answers must match the serial reference at every width.
TEST(Equivalence, ParallelShardedDeltasMatchSerial) {
  std::string edges = RandomGraph(/*nodes=*/60, /*edges=*/240, /*seed=*/7);
  // Hubs: node h0 reaches everything, skewing the delta toward h0 rows.
  for (int i = 0; i < 60; i += 2) {
    edges += "edge(h0, n" + std::to_string(i) + ").\n";
  }
  std::string program = edges +
                        "tc(X, Y) :- edge(X, Y).\n"
                        "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n";

  ModelText reference;
  EvalStats reference_stats;
  for (int threads : {1, 2, 4, 8}) {
    Session session;
    ASSERT_TRUE(session.Load(program).ok());
    EvalOptions options;
    options.num_threads = threads;
    ASSERT_TRUE(session.Evaluate(options).ok());
    ModelText model = Materialize(session);
    if (threads == 1) {
      reference = std::move(model);
      reference_stats = session.last_eval_stats();
      continue;
    }
    EXPECT_EQ(model, reference) << "threads=" << threads;
    // Facts derived is a property of the model, not the schedule.
    EXPECT_EQ(session.last_eval_stats().facts_derived,
              reference_stats.facts_derived)
        << "threads=" << threads;
    // The deltas here are big enough that sharding must actually trigger.
    EXPECT_GT(session.last_eval_stats().delta_shards, 0u)
        << "threads=" << threads;
    EXPECT_GT(session.last_eval_stats().parallel_tasks, 0u)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace ldl
