#include <gtest/gtest.h>

#include "base/str_util.h"
#include "ldl/ldl.h"
#include "workload/workload.h"

namespace ldl {
namespace {

// Evaluates `source` and returns the sorted fact strings for `pred/arity`.
StatusOr<std::vector<std::string>> Facts(Session& session, const char* pred,
                                         uint32_t arity) {
  LDL_RETURN_IF_ERROR(session.Evaluate());
  PredId id = session.catalog().Find(pred, arity);
  if (id == kInvalidPred) return NotFoundError(pred);
  std::vector<Tuple> tuples = session.database().relation(id).Snapshot();
  return FormatFacts(session, id, tuples);
}

TEST(Engine, TransitiveClosureChain) {
  Session session;
  ASSERT_TRUE(session.Load(ParentChain(5)).ok());
  ASSERT_TRUE(session
                  .Load("anc(X, Y) :- parent(X, Y).\n"
                        "anc(X, Y) :- parent(X, Z), anc(Z, Y).")
                  .ok());
  auto facts = Facts(session, "anc", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(facts->size(), 15u);  // chain of 6 nodes: 5+4+3+2+1
}

TEST(Engine, NaiveAndSemiNaiveAgree) {
  for (auto mode : {EvalOptions::Mode::kNaive, EvalOptions::Mode::kSemiNaive}) {
    Session session;
    ASSERT_TRUE(session.Load(ParentRandomTree(40, 7)).ok());
    ASSERT_TRUE(session
                    .Load("anc(X, Y) :- parent(X, Y).\n"
                          "anc(X, Y) :- anc(X, Z), parent(Z, Y).")
                    .ok());
    EvalOptions options;
    options.mode = mode;
    ASSERT_TRUE(session.Evaluate(options).ok());
    PredId anc = session.catalog().Find("anc", 2);
    static size_t naive_count = 0;
    if (mode == EvalOptions::Mode::kNaive) {
      naive_count = session.database().relation(anc).size();
    } else {
      EXPECT_EQ(session.database().relation(anc).size(), naive_count);
    }
  }
}

TEST(Engine, ParallelFixpointMatchesSerial) {
  std::string program = ParentRandomTree(80, 11) +
                        "anc(X, Y) :- parent(X, Y).\n"
                        "anc(X, Y) :- anc(X, Z), parent(Z, Y).\n"
                        "same(X, Y) :- anc(Z, X), anc(Z, Y).\n";
  std::vector<std::string> reference;
  for (int threads : {1, 2, 4, 8}) {
    Session session;
    ASSERT_TRUE(session.Load(program).ok());
    EvalOptions options;
    options.num_threads = threads;
    ASSERT_TRUE(session.Evaluate(options).ok());
    PredId same = session.catalog().Find("same", 2);
    std::vector<std::string> facts =
        FormatFacts(session, same, session.database().relation(same).Snapshot());
    if (threads == 1) {
      reference = std::move(facts);
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(facts, reference) << "threads=" << threads;
      EXPECT_GT(session.last_eval_stats().parallel_tasks, 0u);
    }
  }
}

TEST(Engine, ParallelGroupingMatchesSerial) {
  // Two grouping rules in one stratum take the concurrent grouping path.
  std::string program =
      "p(1, 2). p(1, 7). p(2, 3). p(2, 4). p(3, 5). p(3, 6).\n"
      "part(P, <S>) :- p(P, S).\n"
      "rev(S, <P>) :- p(P, S).\n";
  for (int threads : {1, 4}) {
    Session session;
    ASSERT_TRUE(session.Load(program).ok());
    EvalOptions options;
    options.num_threads = threads;
    ASSERT_TRUE(session.Evaluate(options).ok());
    PredId part = session.catalog().Find("part", 2);
    EXPECT_EQ(FormatFacts(session, part,
                          session.database().relation(part).Snapshot()),
              (std::vector<std::string>{"part(1, {2, 7})", "part(2, {3, 4})",
                                        "part(3, {5, 6})"}))
        << "threads=" << threads;
    PredId rev = session.catalog().Find("rev", 2);
    EXPECT_EQ(session.database().relation(rev).size(), 6u)
        << "threads=" << threads;
  }
}

TEST(Engine, SemiNaiveDoesLessMatching) {
  auto run = [&](EvalOptions::Mode mode) {
    Session session;
    EXPECT_TRUE(session.Load(ParentChain(60)).ok());
    EXPECT_TRUE(session
                    .Load("anc(X, Y) :- parent(X, Y).\n"
                          "anc(X, Y) :- anc(X, Z), parent(Z, Y).")
                    .ok());
    EvalOptions options;
    options.mode = mode;
    EXPECT_TRUE(session.Evaluate(options).ok());
    return session.last_eval_stats();
  };
  EvalStats naive = run(EvalOptions::Mode::kNaive);
  EvalStats semi = run(EvalOptions::Mode::kSemiNaive);
  EXPECT_EQ(naive.facts_derived, semi.facts_derived);
  EXPECT_LT(semi.solutions, naive.solutions)
      << "semi-naive must not re-derive old facts each round";
}

TEST(Engine, PlanCacheHitsAcrossFixpointRounds) {
  Session session;
  ASSERT_TRUE(session.Load(ParentChain(30)).ok());
  ASSERT_TRUE(session
                  .Load("anc(X, Y) :- parent(X, Y).\n"
                        "anc(X, Y) :- anc(X, Z), parent(Z, Y).")
                  .ok());
  ASSERT_TRUE(session.Evaluate().ok());
  // Every round after the first reuses the compiled (rule, order) plans.
  EXPECT_GT(session.last_eval_stats().plan_cache_hits, 0u);
  EXPECT_GT(session.last_eval_stats().probe_hits, 0u);
}

TEST(Engine, CompositeProbesReduceMatching) {
  // The join on (X, Y) is selective only when both columns probe together:
  // each X has 10 wide(X, Y, _) rows but only one matches a given Y.
  std::string facts;
  for (int x = 0; x < 10; ++x) {
    facts += StrCat("narrow(", x, ", ", x, ").\n");
    for (int y = 0; y < 10; ++y) {
      facts += StrCat("wide(", x, ", ", y, ", ", 10 * x + y, ").\n");
    }
  }
  auto run = [&](bool use_plans) {
    Session session;
    EXPECT_TRUE(session.Load(facts).ok());
    EXPECT_TRUE(session.Load("out(X, Z) :- narrow(X, Y), wide(X, Y, Z).").ok());
    EvalOptions options;
    options.use_compiled_plans = use_plans;
    EXPECT_TRUE(session.Evaluate(options).ok());
    return session.last_eval_stats();
  };
  EvalStats planned = run(true);
  EvalStats legacy = run(false);
  EXPECT_EQ(planned.facts_derived, legacy.facts_derived);
  EXPECT_EQ(planned.solutions, legacy.solutions);
  // The legacy interpreter probes one column and filters the rest per tuple;
  // the compiled plan probes the composite (X, Y) index.
  EXPECT_LT(planned.tuples_matched, legacy.tuples_matched / 2);
}

TEST(Engine, DoubleRecursionWorks) {
  // a(X,Y) :- a(X,Z), a(Z,Y): two recursive occurrences in one rule.
  Session session;
  ASSERT_TRUE(session.Load(ParentChain(8, "e")).ok());
  ASSERT_TRUE(session
                  .Load("a(X, Y) :- e(X, Y).\n"
                        "a(X, Y) :- a(X, Z), a(Z, Y).")
                  .ok());
  auto facts = Facts(session, "a", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(facts->size(), 36u);  // 9 nodes: C(9,2)
}

TEST(Engine, GroupingCollectsPerKey) {
  Session session;
  ASSERT_TRUE(session
                  .Load("p(1, 2). p(1, 7). p(2, 3). p(2, 4). p(3, 5). p(3, 6).\n"
                        "part(P, <S>) :- p(P, S).")
                  .ok());
  auto facts = Facts(session, "part", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{
                        "part(1, {2, 7})", "part(2, {3, 4})", "part(3, {5, 6})"}));
}

TEST(Engine, GroupingNeverProducesEmptySets) {
  Session session;
  ASSERT_TRUE(session
                  .Load("q(1).\n"
                        "g(X, <Y>) :- q(X), p(X, Y).")  // p is empty
                  .ok());
  auto facts = Facts(session, "g", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_TRUE(facts->empty());
}

TEST(Engine, GroupingKeyedByZVariables) {
  // The key is the set of variables in non-grouped head args; f(A) counts.
  Session session;
  ASSERT_TRUE(session
                  .Load("r(1, a). r(1, b). r(2, c).\n"
                        "g(f(K), <V>) :- r(K, V).")
                  .ok());
  auto facts = Facts(session, "g", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"g(f(1), {a, b})", "g(f(2), {c})"}));
}

TEST(Engine, GroupedVariableAlsoInKeyGivesSingletons) {
  // §2.2: when X appears both plainly and as <X>, groups are singletons.
  Session session;
  ASSERT_TRUE(session.Load("q(1). q(2).\ns(X, <X>) :- q(X).").ok());
  auto facts = Facts(session, "s", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"s(1, {1})", "s(2, {2})"}));
}

TEST(Engine, StratifiedNegation) {
  Session session;
  ASSERT_TRUE(session
                  .Load("node(a). node(b). node(c).\n"
                        "edge(a, b).\n"
                        "reach(a).\n"
                        "reach(Y) :- reach(X), edge(X, Y).\n"
                        "unreach(X) :- node(X), !reach(X).")
                  .ok());
  auto facts = Facts(session, "unreach", 1);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"unreach(c)"}));
}

TEST(Engine, ExistentialNegation) {
  // leaf(X) :- node(X), !edge(X, Z): Z existential under the negation.
  Session session;
  ASSERT_TRUE(session
                  .Load("node(a). node(b). node(c).\n"
                        "edge(a, b). edge(b, c).\n"
                        "leaf(X) :- node(X), !edge(X, Z).")
                  .ok());
  auto facts = Facts(session, "leaf", 1);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"leaf(c)"}));
}

TEST(Engine, SetEnumerationHeads) {
  Session session;
  ASSERT_TRUE(session
                  .Load("item(1). item(2).\n"
                        "pair({X, Y}) :- item(X), item(Y), X < Y.")
                  .ok());
  auto facts = Facts(session, "pair", 1);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"pair({1, 2})"}));
}

TEST(Engine, SetPatternsInBodies) {
  Session session;
  ASSERT_TRUE(session
                  .Load("s({1, 2}). s({3}). s({}).\n"
                        "both(X, Y) :- s({X, Y}), X /= Y.")
                  .ok());
  auto facts = Facts(session, "both", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"both(1, 2)", "both(2, 1)"}));
}

TEST(Engine, SconsInHeadBuildsSets) {
  Session session;
  ASSERT_TRUE(session
                  .Load("base({2}).\n"
                        "bigger(scons(1, S)) :- base(S).")
                  .ok());
  auto facts = Facts(session, "bigger", 1);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"bigger({1, 2})"}));
}

TEST(Engine, SconsOnNonSetProducesNoFact) {
  Session session;
  ASSERT_TRUE(session
                  .Load("base(a).\n"
                        "bad(scons(1, X)) :- base(X).")
                  .ok());
  auto facts = Facts(session, "bad", 1);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_TRUE(facts->empty());
}

TEST(Engine, ArithmeticChains) {
  Session session;
  ASSERT_TRUE(session
                  .Load("n(1). n(2). n(3).\n"
                        "sumsq(X, R) :- n(X), *(X, X, S), +(S, 1, R).")
                  .ok());
  auto facts = Facts(session, "sumsq", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"sumsq(1, 2)", "sumsq(2, 5)",
                                              "sumsq(3, 10)"}));
}

TEST(Engine, NonTerminatingProgramHitsLimit) {
  Session session;
  ASSERT_TRUE(session
                  .Load("n(z).\n"
                        "n(s(X)) :- n(X).")
                  .ok());
  EvalOptions options;
  options.max_facts = 1000;
  Status status = session.Evaluate(options);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(Engine, QueryMatchesPatterns) {
  Session session;
  ASSERT_TRUE(session.Load("p(1, {1, 2}). p(2, {3}). p(3, {1, 2}).").ok());
  auto result = session.Query("p(X, {1, 2})");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->tuples.size(), 2u);
  auto all = session.Query("p(X, S)");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->tuples.size(), 3u);
  auto none = session.Query("p(9, S)");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->tuples.empty());
}

TEST(Engine, MultipleStrataPipeline) {
  // Grouping output feeds negation feeds grouping again.
  Session session;
  ASSERT_TRUE(session
                  .Load("owns(ann, dog). owns(ann, cat). owns(bob, dog).\n"
                        "pets(P, <A>) :- owns(P, A).\n"
                        "multi(P) :- pets(P, S), card(S, N), N > 1.\n"
                        "single(P) :- owns(P, _), !multi(P).\n"
                        "singles(<P>) :- single(P).")
                  .ok());
  auto facts = Facts(session, "singles", 1);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"singles({bob})"}));
}

TEST(Engine, FactsForIntensionalPredicates) {
  // A predicate with both facts and rules: facts participate in the fixpoint.
  Session session;
  ASSERT_TRUE(session
                  .Load("anc(x, y).\n"
                        "parent(y, z).\n"
                        "anc(A, B) :- parent(A, B).\n"
                        "anc(A, B) :- anc(A, C), anc(C, B).")
                  .ok());
  auto facts = Facts(session, "anc", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"anc(x, y)", "anc(x, z)",
                                              "anc(y, z)"}));
}

TEST(Engine, SaturatingReconcilesRegrownGroups) {
  // A deliberately non-layered program (the shape magic rewriting emits):
  // the grouping rule fires before the negation rule adds another p fact,
  // so the group must regrow monotonically and the stale group fact must be
  // replaced, not duplicated.
  Session session;
  ASSERT_TRUE(session
                  .Load("m(a).\n"
                        "e(a, 1). e(a, 2).\n"
                        "p(X, Y) :- m(X), e(X, Y).\n"
                        "p(X, 3) :- m(X), !blocked(X).\n"
                        "g(X, <Y>) :- p(X, Y).")
                  .ok());
  ASSERT_TRUE(session.Analyze().ok());
  Database db(&session.catalog());
  EvalStats stats;
  // Feed EDB facts and run the saturating scheduler directly on the whole
  // rule set (ignoring layers).
  ASSERT_TRUE(session.EvaluateInto(session.stratification(), &db).ok());
  Database db2(&session.catalog());
  Session session2;  // fresh session to get raw EDB + saturating run
  ASSERT_TRUE(session2.Load("m(a).\ne(a, 1). e(a, 2).\n"
                            "p(X, Y) :- m(X), e(X, Y).\n"
                            "p(X, 3) :- m(X), !blocked(X).\n"
                            "g(X, <Y>) :- p(X, Y).")
                  .ok());
  ASSERT_TRUE(session2.Analyze().ok());
  Database sat_db(&session2.catalog());
  // Seed EDB via EvaluateInto on an empty stratification? Simpler: evaluate
  // normally (the program *is* stratified), then compare with saturating.
  ASSERT_TRUE(session2.EvaluateInto(session2.stratification(), &sat_db).ok());
  Database sat_db2(&session2.catalog());
  PredId m = session2.catalog().Find("m", 1);
  PredId e = session2.catalog().Find("e", 2);
  sat_db2.CopyFrom(sat_db, {m, e});
  EvalStats sat_stats;
  ASSERT_TRUE(session2.engine()
                  .EvaluateSaturating(session2.program(), &sat_db2, {}, &sat_stats)
                  .ok());
  PredId g = session2.catalog().Find("g", 2);
  auto groups = sat_db2.relation(g).Snapshot();
  ASSERT_EQ(groups.size(), 1u) << "stale group must be replaced";
  EXPECT_EQ(session2.FormatFact(g, groups[0]), "g(a, {1, 2, 3})");
}

// Parameterized: naive and semi-naive produce identical models on random
// graph workloads of varying density.
class ModeEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(ModeEquivalenceSweep, SameModel) {
  int seed = GetParam();
  auto run = [&](EvalOptions::Mode mode) {
    Session session;
    EXPECT_TRUE(session.Load(RandomGraph(12, 30, seed)).ok());
    EXPECT_TRUE(session
                    .Load("tc(X, Y) :- edge(X, Y).\n"
                          "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n"
                          "sink(X) :- edge(_, X), !edge(X, _).\n"
                          "reachset(X, <Y>) :- tc(X, Y).")
                    .ok());
    EvalOptions options;
    options.mode = mode;
    EXPECT_TRUE(session.Evaluate(options).ok());
    std::vector<std::string> all;
    for (const char* pred : {"tc", "sink", "reachset"}) {
      uint32_t arity = std::string(pred) == "sink" ? 1 : 2;
      PredId id = session.catalog().Find(pred, arity);
      auto tuples = session.database().relation(id).Snapshot();
      for (const auto& f : FormatFacts(session, id, tuples)) all.push_back(f);
    }
    std::sort(all.begin(), all.end());
    return all;
  };
  EXPECT_EQ(run(EvalOptions::Mode::kNaive), run(EvalOptions::Mode::kSemiNaive));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModeEquivalenceSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 17, 23));

}  // namespace
}  // namespace ldl
