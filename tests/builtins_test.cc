#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>

#include "eval/builtins.h"
#include "parser/parser.h"
#include "program/lower.h"

namespace ldl {
namespace {

class BuiltinsTest : public ::testing::Test {
 protected:
  LiteralIr Lit(BuiltinKind kind, std::initializer_list<const char*> args,
                bool negated = false) {
    LiteralIr literal;
    literal.builtin = kind;
    literal.negated = negated;
    for (const char* text : args) {
      auto expr = ParseTermText(text, &interner_);
      EXPECT_TRUE(expr.ok()) << text << ": " << expr.status();
      auto term = LowerTerm(factory_, *expr);
      EXPECT_TRUE(term.ok()) << text;
      literal.args.push_back(*term);
    }
    return literal;
  }

  // Runs the builtin with an optional pre-binding; returns solutions as
  // sorted strings.
  StatusOr<std::multiset<std::string>> Run(
      const LiteralIr& literal,
      std::initializer_list<std::pair<const char*, const char*>> bindings = {}) {
    Subst subst;
    for (auto [var, value] : bindings) {
      auto expr = ParseTermText(value, &interner_);
      EXPECT_TRUE(expr.ok());
      auto term = LowerTerm(factory_, *expr);
      EXPECT_TRUE(term.ok());
      subst.Bind(interner_.Intern(var), *term);
    }
    std::multiset<std::string> solutions;
    size_t base = subst.size();
    bool keep_going = true;
    Status status = EvalBuiltin(
        factory_, literal, &subst,
        [&]() {
          std::vector<std::string> parts;
          for (size_t i = base; i < subst.trail().size(); ++i) {
            parts.push_back(std::string(interner_.Lookup(subst.trail()[i].first)) +
                            "=" + factory_.ToString(subst.trail()[i].second));
          }
          std::sort(parts.begin(), parts.end());
          std::string joined;
          for (const auto& p : parts) joined += p + ";";
          solutions.insert(joined);
          return true;
        },
        &keep_going);
    if (!status.ok()) return status;
    return solutions;
  }

  size_t Count(const LiteralIr& literal,
               std::initializer_list<std::pair<const char*, const char*>> b = {}) {
    auto result = Run(literal, b);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? result->size() : 0;
  }

  Interner interner_;
  TermFactory factory_{&interner_};
};

// --------------------------------------------------------------- equality --

TEST_F(BuiltinsTest, EqBindsEitherSide) {
  auto sols = Run(Lit(BuiltinKind::kEq, {"X", "{1, 2}"}));
  ASSERT_TRUE(sols.ok());
  ASSERT_EQ(sols->size(), 1u);
  EXPECT_EQ(*sols->begin(), "X={1, 2};");
  EXPECT_EQ(Count(Lit(BuiltinKind::kEq, {"3", "Y"})), 1u);
}

TEST_F(BuiltinsTest, EqChecksGroundTerms) {
  EXPECT_EQ(Count(Lit(BuiltinKind::kEq, {"{1, 2}", "{2, 1}"})), 1u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kEq, {"{1}", "{2}"})), 0u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kEq, {"a", "a"})), 1u);
}

TEST_F(BuiltinsTest, EqNormalizesArithmetic) {
  // C = 1 + 2 binds C to 3 (the paper's tc example uses +(C1,C2,C)).
  auto sols = Run(Lit(BuiltinKind::kEq, {"C", "X"}), {{"X", "3"}});
  ASSERT_TRUE(sols.ok());
  EXPECT_EQ(*sols->begin(), "C=3;");
}

TEST_F(BuiltinsTest, EqEnumeratesSetPatterns) {
  // {A, B} = {1, 2} has two solutions.
  EXPECT_EQ(Count(Lit(BuiltinKind::kEq, {"{A, B}", "{1, 2}"})), 2u);
}

TEST_F(BuiltinsTest, EqEvaluatesScons) {
  EXPECT_EQ(Count(Lit(BuiltinKind::kEq, {"scons(1, {2})", "{1, 2}"})), 1u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kEq, {"scons(1, {1})", "{1}"})), 1u);
  // scons on a non-set is outside U: equality is false.
  EXPECT_EQ(Count(Lit(BuiltinKind::kEq, {"scons(1, a)", "{1}"})), 0u);
}

TEST_F(BuiltinsTest, Neq) {
  EXPECT_EQ(Count(Lit(BuiltinKind::kNeq, {"1", "2"})), 1u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kNeq, {"{1}", "{1}"})), 0u);
}

// ------------------------------------------------------------ comparisons --

TEST_F(BuiltinsTest, Comparisons) {
  EXPECT_EQ(Count(Lit(BuiltinKind::kLt, {"1", "2"})), 1u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kLt, {"2", "2"})), 0u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kLe, {"2", "2"})), 1u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kGt, {"3", "2"})), 1u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kGe, {"2", "3"})), 0u);
  // Non-integers compare false (paper's "otherwise false" convention).
  EXPECT_EQ(Count(Lit(BuiltinKind::kLt, {"a", "b"})), 0u);
}

// ---------------------------------------------------------------- member --

TEST_F(BuiltinsTest, MemberEnumerates) {
  EXPECT_EQ(Count(Lit(BuiltinKind::kMember, {"X", "{1, 2, 3}"})), 3u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kMember, {"2", "{1, 2, 3}"})), 1u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kMember, {"9", "{1, 2, 3}"})), 0u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kMember, {"X", "{}"})), 0u);
}

TEST_F(BuiltinsTest, MemberOnNonSetIsFalse) {
  EXPECT_EQ(Count(Lit(BuiltinKind::kMember, {"X", "a"})), 0u);
}

TEST_F(BuiltinsTest, MemberWithPatternElement) {
  // member(f(X), {f(1), g(2), f(3)}) enumerates X in {1, 3}.
  EXPECT_EQ(Count(Lit(BuiltinKind::kMember, {"f(X)", "{f(1), g(2), f(3)}"})), 2u);
}

TEST_F(BuiltinsTest, NegatedMember) {
  EXPECT_EQ(Count(Lit(BuiltinKind::kMember, {"4", "{1, 2}"}, true)), 1u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kMember, {"1", "{1, 2}"}, true)), 0u);
}

// ------------------------------------------------------------------ union --

TEST_F(BuiltinsTest, UnionForward) {
  auto sols = Run(Lit(BuiltinKind::kUnion, {"{1, 2}", "{2, 3}", "S"}));
  ASSERT_TRUE(sols.ok());
  ASSERT_EQ(sols->size(), 1u);
  EXPECT_EQ(*sols->begin(), "S={1, 2, 3};");
  EXPECT_EQ(Count(Lit(BuiltinKind::kUnion, {"{1}", "{2}", "{1, 2}"})), 1u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kUnion, {"{1}", "{2}", "{1, 2, 3}"})), 0u);
}

TEST_F(BuiltinsTest, UnionBackwardEnumeratesSplits) {
  // union(S1, S2, {1, 2}): each element in S1 only, S2 only, or both: 9.
  EXPECT_EQ(Count(Lit(BuiltinKind::kUnion, {"S1", "S2", "{1, 2}"})), 9u);
  // Singleton: 3 splits.
  EXPECT_EQ(Count(Lit(BuiltinKind::kUnion, {"S1", "S2", "{1}"})), 3u);
}

TEST_F(BuiltinsTest, UnionOneSideKnown) {
  // union({1}, S2, {1, 2}): S2 must contain 2, may contain 1: 2 solutions.
  EXPECT_EQ(Count(Lit(BuiltinKind::kUnion, {"{1}", "S2", "{1, 2}"})), 2u);
  // union({3}, S2, {1, 2}): 3 not in result: no solutions.
  EXPECT_EQ(Count(Lit(BuiltinKind::kUnion, {"{3}", "S2", "{1, 2}"})), 0u);
}

TEST_F(BuiltinsTest, UnionEnumerationLimit) {
  std::string big = "{";
  for (int i = 0; i < 14; ++i) big += (i ? ", " : "") + std::to_string(i);
  big += "}";
  LiteralIr literal = Lit(BuiltinKind::kUnion, {"S1", "S2", big.c_str()});
  auto result = Run(literal);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(BuiltinsTest, IntersectionAndDifference) {
  auto sols = Run(Lit(BuiltinKind::kIntersection, {"{1, 2, 3}", "{2, 3, 4}", "S"}));
  ASSERT_TRUE(sols.ok());
  EXPECT_EQ(*sols->begin(), "S={2, 3};");
  EXPECT_EQ(Count(Lit(BuiltinKind::kIntersection, {"{1}", "{2}", "{}"})), 1u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kIntersection, {"{1}", "{1}", "{2}"})), 0u);
  sols = Run(Lit(BuiltinKind::kDifference, {"{1, 2, 3}", "{2}", "S"}));
  ASSERT_TRUE(sols.ok());
  EXPECT_EQ(*sols->begin(), "S={1, 3};");
  EXPECT_EQ(Count(Lit(BuiltinKind::kDifference, {"{1}", "{1}", "{}"})), 1u);
  // Non-sets make the predicate false.
  EXPECT_EQ(Count(Lit(BuiltinKind::kIntersection, {"a", "{1}", "S"})), 0u);
  // Both inputs must be bound.
  Subst empty;
  EXPECT_FALSE(BuiltinReady(factory_,
                            Lit(BuiltinKind::kDifference, {"{1}", "S2", "S3"}),
                            empty));
}

// ---------------------------------------------------------------- subset --

TEST_F(BuiltinsTest, SubsetCheckAndEnumerate) {
  EXPECT_EQ(Count(Lit(BuiltinKind::kSubset, {"{1}", "{1, 2}"})), 1u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kSubset, {"{3}", "{1, 2}"})), 0u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kSubset, {"{}", "{1, 2}"})), 1u);
  // Enumeration: all 2^3 subsets.
  EXPECT_EQ(Count(Lit(BuiltinKind::kSubset, {"S", "{1, 2, 3}"})), 8u);
}

// -------------------------------------------------------------- partition --

TEST_F(BuiltinsTest, PartitionModes) {
  // Forward: compute the whole from disjoint parts.
  EXPECT_EQ(Count(Lit(BuiltinKind::kPartition, {"S", "{1}", "{2}"})), 1u);
  // Overlapping parts are not a partition.
  EXPECT_EQ(Count(Lit(BuiltinKind::kPartition, {"S", "{1, 2}", "{2}"})), 0u);
  // Backward: enumerate all 2^n disjoint splits.
  EXPECT_EQ(Count(Lit(BuiltinKind::kPartition, {"{1, 2}", "A", "B"})), 4u);
  // One part known.
  EXPECT_EQ(Count(Lit(BuiltinKind::kPartition, {"{1, 2}", "{1}", "B"})), 1u);
  auto sols = Run(Lit(BuiltinKind::kPartition, {"{1, 2}", "{1}", "B"}));
  ASSERT_TRUE(sols.ok());
  EXPECT_EQ(*sols->begin(), "B={2};");
  // All three ground: verify.
  EXPECT_EQ(Count(Lit(BuiltinKind::kPartition, {"{1, 2}", "{1}", "{2}"})), 1u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kPartition, {"{1, 2}", "{1}", "{1, 2}"})), 0u);
}

// ------------------------------------------------------------------- card --

TEST_F(BuiltinsTest, Card) {
  auto sols = Run(Lit(BuiltinKind::kCard, {"{a, b, c}", "N"}));
  ASSERT_TRUE(sols.ok());
  EXPECT_EQ(*sols->begin(), "N=3;");
  EXPECT_EQ(Count(Lit(BuiltinKind::kCard, {"{}", "0"})), 1u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kCard, {"{a}", "2"})), 0u);
}

// ------------------------------------------------------------- arithmetic --

TEST_F(BuiltinsTest, PlusAllModes) {
  auto sols = Run(Lit(BuiltinKind::kPlus, {"1", "2", "C"}));
  ASSERT_TRUE(sols.ok());
  EXPECT_EQ(*sols->begin(), "C=3;");
  sols = Run(Lit(BuiltinKind::kPlus, {"1", "B", "3"}));
  EXPECT_EQ(*sols->begin(), "B=2;");
  sols = Run(Lit(BuiltinKind::kPlus, {"A", "2", "3"}));
  EXPECT_EQ(*sols->begin(), "A=1;");
  EXPECT_EQ(Count(Lit(BuiltinKind::kPlus, {"1", "2", "3"})), 1u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kPlus, {"1", "2", "4"})), 0u);
}

TEST_F(BuiltinsTest, MinusModes) {
  auto sols = Run(Lit(BuiltinKind::kMinus, {"5", "2", "C"}));
  EXPECT_EQ(*sols->begin(), "C=3;");
  sols = Run(Lit(BuiltinKind::kMinus, {"5", "B", "3"}));
  EXPECT_EQ(*sols->begin(), "B=2;");
  sols = Run(Lit(BuiltinKind::kMinus, {"A", "2", "3"}));
  EXPECT_EQ(*sols->begin(), "A=5;");
}

TEST_F(BuiltinsTest, TimesModes) {
  auto sols = Run(Lit(BuiltinKind::kTimes, {"3", "4", "C"}));
  EXPECT_EQ(*sols->begin(), "C=12;");
  sols = Run(Lit(BuiltinKind::kTimes, {"3", "B", "12"}));
  EXPECT_EQ(*sols->begin(), "B=4;");
  // Non-divisible: no solution.
  EXPECT_EQ(Count(Lit(BuiltinKind::kTimes, {"3", "B", "13"})), 0u);
  // 0 * B = 5: false.
  EXPECT_EQ(Count(Lit(BuiltinKind::kTimes, {"0", "B", "5"})), 0u);
}

TEST_F(BuiltinsTest, DivMod) {
  auto sols = Run(Lit(BuiltinKind::kDiv, {"7", "2", "C"}));
  EXPECT_EQ(*sols->begin(), "C=3;");
  sols = Run(Lit(BuiltinKind::kMod, {"7", "2", "C"}));
  EXPECT_EQ(*sols->begin(), "C=1;");
  EXPECT_EQ(Count(Lit(BuiltinKind::kDiv, {"7", "0", "C"})), 0u);
}

TEST_F(BuiltinsTest, ArithmeticOnNonIntegersIsFalse) {
  EXPECT_EQ(Count(Lit(BuiltinKind::kPlus, {"a", "2", "C"})), 0u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kPlus, {"{1}", "2", "C"})), 0u);
}

// ------------------------------------------------- int64 overflow guards --
//
// Regression tests for the signed-overflow UB fix: every arithmetic mode
// must treat an out-of-range result as "builtin unsatisfied" (no solution),
// the same contract as division by zero -- never wrap around or trap.

TEST_F(BuiltinsTest, CheckedHelpersAtInt64Boundaries) {
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  EXPECT_FALSE(CheckedAdd(kMax, 1).has_value());
  EXPECT_FALSE(CheckedAdd(kMin, -1).has_value());
  EXPECT_EQ(CheckedAdd(kMax, 0).value_or(0), kMax);
  EXPECT_EQ(CheckedAdd(kMin, kMax).value_or(0), -1);
  EXPECT_FALSE(CheckedSub(kMin, 1).has_value());
  EXPECT_FALSE(CheckedSub(kMax, -1).has_value());
  EXPECT_FALSE(CheckedSub(0, kMin).has_value());  // -kMin is out of range
  EXPECT_EQ(CheckedSub(kMin, 0).value_or(0), kMin);
  EXPECT_FALSE(CheckedMul(kMax, 2).has_value());
  EXPECT_FALSE(CheckedMul(kMin, -1).has_value());
  EXPECT_FALSE(CheckedMul(kMin, 2).has_value());
  EXPECT_EQ(CheckedMul(kMin, 1).value_or(0), kMin);
  EXPECT_EQ(CheckedMul(kMax, -1).value_or(0), kMin + 1);
  EXPECT_FALSE(CheckedDiv(kMin, -1).has_value());
  EXPECT_FALSE(CheckedDiv(1, 0).has_value());
  EXPECT_EQ(CheckedDiv(kMin, 1).value_or(0), kMin);
  EXPECT_EQ(CheckedDiv(kMin, -2).value_or(0), kMin / -2);
  EXPECT_FALSE(CheckedMod(kMin, -1).has_value());
  EXPECT_FALSE(CheckedMod(1, 0).has_value());
  EXPECT_EQ(CheckedMod(kMin, 2).value_or(1), 0);
}

TEST_F(BuiltinsTest, PlusOverflowIsUnsatisfied) {
  // Forward: MAX + 1 has no int64 value.
  EXPECT_EQ(Count(Lit(BuiltinKind::kPlus, {"9223372036854775807", "1", "C"})), 0u);
  // Backward (A + b = c solved as A = c - b): MAX - (-1) overflows.
  EXPECT_EQ(Count(Lit(BuiltinKind::kPlus, {"A", "-1", "9223372036854775807"})), 0u);
  // In-range boundary results still satisfy.
  EXPECT_EQ(Count(Lit(BuiltinKind::kPlus, {"9223372036854775806", "1",
                                           "9223372036854775807"})), 1u);
}

TEST_F(BuiltinsTest, MinusOverflowIsUnsatisfied) {
  // Forward: MAX - (-1) overflows.
  EXPECT_EQ(Count(Lit(BuiltinKind::kMinus, {"9223372036854775807", "-1", "C"})), 0u);
  // Backward (B from a - B = c solved as B = a - c): -2 - MAX overflows
  // (-1 - MAX is exactly INT64_MIN, so it still satisfies).
  EXPECT_EQ(Count(Lit(BuiltinKind::kMinus, {"-2", "B", "9223372036854775807"})), 0u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kMinus, {"-1", "B", "9223372036854775807"})), 1u);
  // Backward (A from A - b = c solved as A = c + b): MAX + 1 overflows.
  EXPECT_EQ(Count(Lit(BuiltinKind::kMinus, {"A", "1", "9223372036854775807"})), 0u);
}

TEST_F(BuiltinsTest, TimesOverflowIsUnsatisfied) {
  // Forward: 2^62 * 2 = 2^63 is out of range.
  EXPECT_EQ(Count(Lit(BuiltinKind::kTimes, {"4611686018427387904", "2", "C"})), 0u);
  EXPECT_EQ(Count(Lit(BuiltinKind::kTimes, {"3037000500", "3037000500", "C"})), 0u);
  // Backward solve at the boundary (2^62 * B = MAX-1): the checked div/mod
  // path reports non-divisible instead of misbehaving.
  EXPECT_EQ(Count(Lit(BuiltinKind::kTimes, {"4611686018427387904", "B",
                                            "9223372036854775806"})), 0u);
}

TEST_F(BuiltinsTest, DivModMinByMinusOneIsUnsatisfied) {
  // INT64_MIN is not writable as a literal (the lexer rejects
  // 9223372036854775808), so splice the boundary operands in directly.
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  LiteralIr div = Lit(BuiltinKind::kDiv, {"A", "B", "C"});
  div.args[0] = factory_.MakeInt(kMin);
  div.args[1] = factory_.MakeInt(-1);
  EXPECT_EQ(Count(div), 0u);
  LiteralIr mod = Lit(BuiltinKind::kMod, {"A", "B", "C"});
  mod.args[0] = factory_.MakeInt(kMin);
  mod.args[1] = factory_.MakeInt(-1);
  EXPECT_EQ(Count(mod), 0u);
  // kMin / 1 is fine.
  div.args[1] = factory_.MakeInt(1);
  EXPECT_EQ(Count(div), 1u);
}

TEST_F(BuiltinsTest, EvalArithOverflowIsNullopt) {
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  auto binop = [&](const char* functor, int64_t a, int64_t b) {
    const Term* args[] = {factory_.MakeInt(a), factory_.MakeInt(b)};
    return EvalArith(factory_, factory_.MakeFunc(functor, args));
  };
  EXPECT_FALSE(binop("$add", kMax, 1).has_value());
  EXPECT_FALSE(binop("$sub", kMin, 1).has_value());
  EXPECT_FALSE(binop("$mul", kMax, kMax).has_value());
  EXPECT_FALSE(binop("$div", kMin, -1).has_value());
  EXPECT_EQ(binop("$add", kMax, -1).value_or(0), kMax - 1);
}

// -------------------------------------------------------------- readiness --

TEST_F(BuiltinsTest, ReadyChecks) {
  Subst empty;
  EXPECT_FALSE(BuiltinReady(factory_, Lit(BuiltinKind::kMember, {"X", "S"}), empty));
  EXPECT_TRUE(
      BuiltinReady(factory_, Lit(BuiltinKind::kMember, {"X", "{1}"}), empty));
  EXPECT_FALSE(BuiltinReady(factory_, Lit(BuiltinKind::kEq, {"X", "Y"}), empty));
  EXPECT_TRUE(BuiltinReady(factory_, Lit(BuiltinKind::kEq, {"X", "1"}), empty));
  EXPECT_FALSE(
      BuiltinReady(factory_, Lit(BuiltinKind::kPlus, {"A", "B", "3"}), empty));
  EXPECT_TRUE(
      BuiltinReady(factory_, Lit(BuiltinKind::kPlus, {"1", "B", "3"}), empty));
  Subst bound;
  bound.Bind(interner_.Intern("S"), factory_.EmptySet());
  EXPECT_TRUE(BuiltinReady(factory_, Lit(BuiltinKind::kMember, {"X", "S"}), bound));
}

// ---------------------------------------------------------- EvalArith unit --

TEST_F(BuiltinsTest, EvalArithExpressions) {
  auto term = [&](const char* text) {
    auto expr = ParseTermText(text, &interner_);
    EXPECT_TRUE(expr.ok());
    auto lowered = LowerTerm(factory_, *expr);
    EXPECT_TRUE(lowered.ok());
    return *lowered;
  };
  // The parser lowers infix arithmetic inside comparison contexts; here we
  // construct $add terms via the factory.
  const Term* one = factory_.MakeInt(1);
  const Term* two = factory_.MakeInt(2);
  const Term* add_args[] = {one, two};
  const Term* add = factory_.MakeFunc("$add", add_args);
  EXPECT_EQ(EvalArith(factory_, add).value_or(-1), 3);
  EXPECT_EQ(NormalizeArith(factory_, add), factory_.MakeInt(3));
  EXPECT_FALSE(EvalArith(factory_, term("a")).has_value());
  const Term* div_args[] = {one, factory_.MakeInt(0)};
  EXPECT_FALSE(EvalArith(factory_, factory_.MakeFunc("$div", div_args)).has_value());
}

}  // namespace
}  // namespace ldl
