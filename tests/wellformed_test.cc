#include <gtest/gtest.h>

#include "parser/parser.h"
#include "program/lower.h"
#include "program/wellformed.h"

namespace ldl {
namespace {

class WellformedTest : public ::testing::Test {
 protected:
  Status Check(const std::string& source, const WellformedOptions& options = {}) {
    auto ast = ParseProgram(source, &interner_);
    if (!ast.ok()) return ast.status();
    auto ir = LowerProgram(factory_, catalog_, *ast);
    if (!ir.ok()) return ir.status();
    return CheckProgramWellformed(catalog_, *ir, options);
  }

  Interner interner_;
  TermFactory factory_{&interner_};
  Catalog catalog_{&interner_};
};

TEST_F(WellformedTest, SimpleRulesPass) {
  EXPECT_TRUE(Check("a(X, Y) :- p(X, Z), q(Z, Y).").ok());
}

TEST_F(WellformedTest, HeadVariableMustBeBound) {
  Status status = Check("a(X, Y) :- p(X, X).");
  EXPECT_EQ(status.code(), StatusCode::kNotWellFormed);
  EXPECT_NE(status.message().find("Y"), std::string::npos);
}

TEST_F(WellformedTest, FactsMustBeGround) {
  EXPECT_EQ(Check("p(X).").code(), StatusCode::kNotWellFormed);
  EXPECT_TRUE(Check("p(a). p({1, 2}). p(f(a, {b})).").ok());
}

TEST_F(WellformedTest, BuiltinsBindOutputs) {
  // C is bound by +(C1, C2, C) once C1, C2 are bound.
  EXPECT_TRUE(Check("t(C) :- q(C1), q(C2), +(C1, C2, C).").ok());
  // X is bound by member once S is bound.
  EXPECT_TRUE(Check("m(X) :- s(S), member(X, S).").ok());
  // S3 bound by union of two bound sets.
  EXPECT_TRUE(Check("u(S3) :- s(S1), s(S2), union(S1, S2, S3).").ok());
  // partition binds both parts from the whole.
  EXPECT_TRUE(Check("pp(A, B) :- s(S), partition(S, A, B).").ok());
  // card binds the count.
  EXPECT_TRUE(Check("c(N) :- s(S), card(S, N).").ok());
  // equality chains propagate.
  EXPECT_TRUE(Check("e(Y) :- p(X), Y = X.").ok());
  EXPECT_TRUE(Check("e2(Z) :- p(X), Y = X, Z = Y.").ok());
}

TEST_F(WellformedTest, UnboundBuiltinChainsFail) {
  EXPECT_EQ(Check("t(C) :- q(C1), +(C1, C2, C).").code(),
            StatusCode::kNotWellFormed);
  EXPECT_EQ(Check("m(X) :- member(X, S).").code(), StatusCode::kNotWellFormed);
  EXPECT_EQ(Check("e(Y) :- Y = Z.").code(), StatusCode::kNotWellFormed);
}

TEST_F(WellformedTest, ComparisonsNeedBothSidesBound) {
  EXPECT_TRUE(Check("lt(X) :- p(X), X < 10.").ok());
  EXPECT_EQ(Check("lt(X) :- p(X), X < Y.").code(), StatusCode::kNotWellFormed);
}

TEST_F(WellformedTest, ExistentialNegationVariablesAreAllowed) {
  // The paper's §6 rule 5: Z occurs only under the negation.
  EXPECT_TRUE(Check("young(X, <Y>) :- !a(X, Z), sg(X, Y).").ok());
}

TEST_F(WellformedTest, SharedUnboundNegationVariableFails) {
  // W is shared between two negated literals and bound nowhere.
  Status status = Check("bad(X) :- p(X), !q(X, W), !r(W).");
  EXPECT_EQ(status.code(), StatusCode::kNotWellFormed);
}

TEST_F(WellformedTest, NegatedBuiltinNeedsGroundArgs) {
  EXPECT_TRUE(Check("n(X) :- p(X), s(S), !member(X, S).").ok());
  EXPECT_EQ(Check("n(X) :- p(X), !member(X, S).").code(),
            StatusCode::kNotWellFormed);
}

TEST_F(WellformedTest, GroupingWithNegationDependsOnOption) {
  const char* source = "young(X, <Y>) :- !a(X, Z), sg(X, Y).";
  EXPECT_TRUE(Check(source).ok());  // relaxed default (the paper's §6 usage)
  WellformedOptions strict;
  strict.strict_grouping_positivity = true;
  EXPECT_EQ(Check(source, strict).code(), StatusCode::kNotWellFormed);
}

TEST_F(WellformedTest, RangeRestrictionCanBeDisabled) {
  WellformedOptions options;
  options.require_range_restriction = false;
  EXPECT_TRUE(Check("a(X, Y) :- p(X, X).", options).ok());
}

TEST_F(WellformedTest, MultipleGroupsInHeadRejectedAtLowering) {
  auto ast = ParseProgram("g(<X>, <Y>) :- p(X, Y).", &interner_);
  ASSERT_TRUE(ast.ok());
  auto ir = LowerProgram(factory_, catalog_, *ast);
  EXPECT_EQ(ir.status().code(), StatusCode::kNotWellFormed);
}

TEST_F(WellformedTest, BodyGroupRejectedAtLowering) {
  auto ast = ParseProgram("g(X) :- p(<X>).", &interner_);
  ASSERT_TRUE(ast.ok());
  auto ir = LowerProgram(factory_, catalog_, *ast);
  EXPECT_EQ(ir.status().code(), StatusCode::kNotWellFormed);
}

TEST_F(WellformedTest, NonVariableGroupRejectedAtLowering) {
  auto ast = ParseProgram("g(<f(X)>) :- p(X).", &interner_);
  ASSERT_TRUE(ast.ok());
  auto ir = LowerProgram(factory_, catalog_, *ast);
  EXPECT_EQ(ir.status().code(), StatusCode::kNotWellFormed);
}

TEST_F(WellformedTest, GroupedVariableCountsAsHeadBinding) {
  // The grouped variable must itself be bound by the body.
  EXPECT_TRUE(Check("g(P, <S>) :- p(P, S).").ok());
  EXPECT_EQ(Check("g(P, <S>) :- p(P, P2), q(P2).").code(),
            StatusCode::kNotWellFormed);
}

}  // namespace
}  // namespace ldl
