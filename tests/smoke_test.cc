// End-to-end smoke test over the core pipeline (parse -> lower -> stratify
// -> evaluate -> query); the real suites live in the *_test.cc files.
#include <gtest/gtest.h>

#include "eval/engine.h"
#include "parser/parser.h"
#include "program/lower.h"
#include "program/stratify.h"
#include "program/wellformed.h"

namespace ldl {
namespace {

TEST(Smoke, AncestorTransitiveClosure) {
  Interner interner;
  TermFactory factory(&interner);
  Catalog catalog(&interner);

  const char* source = R"(
    parent(adam, bob).
    parent(bob, carl).
    parent(carl, dora).
    ancestor(X, Y) :- parent(X, Y).
    ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
  )";
  auto ast = ParseProgram(source, &interner);
  ASSERT_TRUE(ast.ok()) << ast.status();
  auto ir = LowerProgram(factory, catalog, *ast);
  ASSERT_TRUE(ir.ok()) << ir.status();
  ASSERT_TRUE(CheckProgramWellformed(catalog, *ir).ok());
  auto strat = Stratify(catalog, *ir);
  ASSERT_TRUE(strat.ok()) << strat.status();

  Database db(&catalog);
  Engine engine(&factory, &catalog);
  EvalStats stats;
  Status status = engine.EvaluateProgram(*ir, *strat, &db, {}, &stats);
  ASSERT_TRUE(status.ok()) << status;

  PredId ancestor = catalog.Find("ancestor", 2);
  ASSERT_NE(ancestor, kInvalidPred);
  EXPECT_EQ(db.relation(ancestor).size(), 6u);  // chain of 4: 3+2+1

  auto goal = ParseLiteralText("ancestor(adam, X)", &interner);
  ASSERT_TRUE(goal.ok()) << goal.status();
  auto goal_ir = LowerLiteral(factory, catalog, *goal);
  ASSERT_TRUE(goal_ir.ok());
  auto answers = engine.Query(*goal_ir, db);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 3u);
}

TEST(Smoke, GroupingAndNegation) {
  Interner interner;
  TermFactory factory(&interner);
  Catalog catalog(&interner);

  const char* source = R"(
    supplies(s1, nut). supplies(s1, bolt).
    supplies(s2, cam).
    banned(s2).
    supplier_parts(S, <P>) :- supplies(S, P).
    ok_supplier(S) :- supplies(S, _), !banned(S).
  )";
  auto ast = ParseProgram(source, &interner);
  ASSERT_TRUE(ast.ok()) << ast.status();
  auto ir = LowerProgram(factory, catalog, *ast);
  ASSERT_TRUE(ir.ok()) << ir.status();
  auto strat = Stratify(catalog, *ir);
  ASSERT_TRUE(strat.ok()) << strat.status();

  Database db(&catalog);
  Engine engine(&factory, &catalog);
  ASSERT_TRUE(engine.EvaluateProgram(*ir, *strat, &db).ok());

  PredId sp = catalog.Find("supplier_parts", 2);
  ASSERT_NE(sp, kInvalidPred);
  auto rows = db.relation(sp).Snapshot();
  ASSERT_EQ(rows.size(), 2u);
  // s1 -> {bolt, nut}
  const Term* s1 = factory.MakeAtom("s1");
  bool found_s1 = false;
  for (const Tuple& row : rows) {
    if (row[0] == s1) {
      found_s1 = true;
      EXPECT_TRUE(row[1]->is_set());
      EXPECT_EQ(row[1]->size(), 2u);
    }
  }
  EXPECT_TRUE(found_s1);

  PredId ok = catalog.Find("ok_supplier", 1);
  EXPECT_EQ(db.relation(ok).size(), 1u);
}

}  // namespace
}  // namespace ldl
