// Randomized cross-checking: generate random admissible programs (layered
// by construction, range-restricted by construction) over random EDBs, then
// verify, per seed:
//
//   1. naive and semi-naive evaluation compute the same model;
//   2. the computed model satisfies IsModel (§2.2);
//   3. for bound goals on derived predicates, magic-set evaluation (plain
//      and supplementary) and the memoized top-down engine all return
//      exactly the stratified answers (Theorems 3/4 of §6 and the
//      bottom-up/top-down equivalence they rest on).
#include <gtest/gtest.h>

#include <algorithm>

#include "base/str_util.h"
#include "ldl/ldl.h"
#include "semantics/model.h"
#include "workload/workload.h"

namespace ldl {
namespace {

// Generates a random layered program over EDB predicates e/2 and b/1.
// Derived predicates d0..d<n-1> are assigned increasing layers; a rule for
// d<i> uses strictly lower predicates (and possibly d<i> itself positively),
// negation and grouping only over strictly lower ones.
class ProgramGenerator {
 public:
  explicit ProgramGenerator(uint64_t seed) : rng_(seed) {}

  std::string Generate(size_t derived_count) {
    std::string out;
    // Random EDB.
    size_t nodes = 4 + rng_.Below(5);
    size_t edges = nodes + rng_.Below(2 * nodes);
    StrAppend(out, RandomGraph(nodes, edges, rng_.Next(), "e"));
    for (size_t i = 0; i < nodes; ++i) StrAppend(out, "b(n", i, ").\n");

    for (size_t i = 0; i < derived_count; ++i) {
      arities_.push_back(1 + rng_.Below(2));  // d<i> has arity 1 or 2
      size_t kind = rng_.Below(6);
      if (kind == 0 && i > 0) {
        EmitGroupingRule(out, i);
      } else if (kind == 1 && i > 0) {
        EmitNegationRule(out, i);
      } else if (kind == 2) {
        EmitRecursiveRules(out, i);
      } else {
        EmitPlainRule(out, i);
      }
    }
    return out;
  }

  const std::vector<uint32_t>& arities() const { return arities_; }

 private:
  // A positive literal over a strictly lower predicate, using vars X, Y.
  std::string LowerLiteral(size_t i, const char* x, const char* y) {
    if (i == 0 || rng_.Below(2) == 0) {
      return rng_.Below(2) == 0 ? StrCat("e(", x, ", ", y, ")")
                                : StrCat("b(", x, "), e(", x, ", ", y, ")");
    }
    size_t j = rng_.Below(i);
    if (arities_[j] == 1) {
      return StrCat("d", j, "(", x, "), e(", x, ", ", y, ")");
    }
    return StrCat("d", j, "(", x, ", ", y, ")");
  }

  void EmitPlainRule(std::string& out, size_t i) {
    if (arities_[i] == 1) {
      StrAppend(out, "d", i, "(X) :- ", LowerLiteral(i, "X", "Y"), ".\n");
    } else {
      StrAppend(out, "d", i, "(X, Y) :- ", LowerLiteral(i, "X", "Y"), ".\n");
    }
  }

  void EmitRecursiveRules(std::string& out, size_t i) {
    // Arity-2 transitive-style recursion seeded from a lower literal.
    arities_[i] = 2;
    StrAppend(out, "d", i, "(X, Y) :- ", LowerLiteral(i, "X", "Y"), ".\n");
    StrAppend(out, "d", i, "(X, Y) :- d", i, "(X, Z), e(Z, Y).\n");
  }

  void EmitNegationRule(std::string& out, size_t i) {
    size_t j = rng_.Below(i);
    std::string negated = arities_[j] == 1 ? StrCat("!d", j, "(X)")
                                           : StrCat("!d", j, "(X, Z)");
    if (arities_[i] == 1) {
      StrAppend(out, "d", i, "(X) :- b(X), ", negated, ".\n");
    } else {
      StrAppend(out, "d", i, "(X, Y) :- e(X, Y), ", negated, ".\n");
    }
  }

  void EmitGroupingRule(std::string& out, size_t i) {
    arities_[i] = 2;
    size_t j = rng_.Below(i);
    if (arities_[j] == 1) {
      StrAppend(out, "d", i, "(X, <Y>) :- d", j, "(X), e(X, Y).\n");
    } else {
      StrAppend(out, "d", i, "(X, <Y>) :- d", j, "(X, Y).\n");
    }
  }

  Rng rng_;
  std::vector<uint32_t> arities_;
};

std::vector<std::string> AllDerivedFacts(Session& session, size_t derived_count,
                                         const std::vector<uint32_t>& arities) {
  std::vector<std::string> all;
  for (size_t i = 0; i < derived_count; ++i) {
    PredId pred = session.catalog().Find(StrCat("d", i), arities[i]);
    if (pred == kInvalidPred) continue;
    auto tuples = session.database().relation(pred).Snapshot();
    for (auto& line : FormatFacts(session, pred, tuples)) all.push_back(line);
  }
  std::sort(all.begin(), all.end());
  return all;
}

class FuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSweep, EnginesAgreeAndModelHolds) {
  ProgramGenerator generator(GetParam());
  constexpr size_t kDerived = 6;
  std::string source = generator.Generate(kDerived);
  SCOPED_TRACE(source);

  // 1. naive vs semi-naive.
  std::vector<std::string> reference;
  Session session;  // kept for magic checks below (semi-naive)
  {
    Session naive_session;
    ASSERT_TRUE(naive_session.Load(source).ok());
    EvalOptions naive;
    naive.mode = EvalOptions::Mode::kNaive;
    ASSERT_TRUE(naive_session.Evaluate(naive).ok());
    reference =
        AllDerivedFacts(naive_session, kDerived, generator.arities());
  }
  ASSERT_TRUE(session.Load(source).ok());
  ASSERT_TRUE(session.Evaluate().ok());
  EXPECT_EQ(AllDerivedFacts(session, kDerived, generator.arities()), reference);

  // 2. the computed interpretation is a §2.2 model.
  std::string why;
  auto is_model = IsModel(session.factory(), session.catalog(), session.program(),
                          session.database(), &why);
  ASSERT_TRUE(is_model.ok()) << is_model.status();
  EXPECT_TRUE(*is_model) << why;

  // 3. magic answers match stratified answers on bound goals.
  QueryOptions magic;
  magic.strategy = ldl::QueryStrategy::kMagic;
  QueryOptions supplementary = magic;
  supplementary.strategy = ldl::QueryStrategy::kMagicSupplementary;
  QueryOptions topdown;
  topdown.strategy = ldl::QueryStrategy::kTopDown;
  for (size_t i = 0; i < kDerived; ++i) {
    PredId pred = session.catalog().Find(StrCat("d", i), generator.arities()[i]);
    if (pred == kInvalidPred || !session.catalog().info(pred).has_rules) continue;
    const Relation& relation = session.database().relation(pred);
    // Bind the first argument to a value that occurs (if any) and to one
    // that does not.
    std::vector<std::string> goals;
    if (!relation.empty()) {
      goals.push_back(StrCat(
          "d", i, "(", session.factory().ToString(relation.row(0)[0]),
          generator.arities()[i] == 2 ? ", X)" : ")"));
    }
    goals.push_back(StrCat("d", i, "(n0",
                           generator.arities()[i] == 2 ? ", X)" : ")"));
    for (const std::string& goal : goals) {
      auto full = session.Query(goal);
      ASSERT_TRUE(full.ok()) << goal << ": " << full.status();
      auto fast = session.Query(goal, magic);
      ASSERT_TRUE(fast.ok()) << goal << ": " << fast.status();
      auto sup = session.Query(goal, supplementary);
      ASSERT_TRUE(sup.ok()) << goal << ": " << sup.status();
      auto td = session.Query(goal, topdown);
      ASSERT_TRUE(td.ok()) << goal << ": " << td.status();
      auto render = [&](const std::vector<Tuple>& tuples) {
        std::vector<std::string> out;
        for (const Tuple& tuple : tuples) {
          out.push_back(session.FormatTuple(tuple));
        }
        std::sort(out.begin(), out.end());
        return out;
      };
      EXPECT_EQ(render(full->tuples), render(fast->tuples)) << goal;
      EXPECT_EQ(render(full->tuples), render(sup->tuples)) << goal;
      EXPECT_EQ(render(full->tuples), render(td->tuples)) << goal;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

}  // namespace
}  // namespace ldl
