#include <gtest/gtest.h>

#include "term/term_ops.h"

namespace ldl {
namespace {

class TermOpsTest : public ::testing::Test {
 protected:
  const Term* Var(const char* name) { return factory_.MakeVar(name); }
  const Term* Atom(const char* name) { return factory_.MakeAtom(name); }
  const Term* Int(int64_t v) { return factory_.MakeInt(v); }
  Symbol Sym(const char* name) { return interner_.Intern(name); }

  Interner interner_;
  TermFactory factory_{&interner_};
};

// ------------------------------------------------------------------ Subst --

TEST_F(TermOpsTest, BindAndLookup) {
  Subst subst;
  EXPECT_EQ(subst.Lookup(Sym("X")), nullptr);
  subst.Bind(Sym("X"), Atom("a"));
  EXPECT_EQ(subst.Lookup(Sym("X")), Atom("a"));
  EXPECT_EQ(subst.Lookup(Sym("Y")), nullptr);
}

TEST_F(TermOpsTest, MarkAndRollback) {
  Subst subst;
  subst.Bind(Sym("X"), Atom("a"));
  size_t mark = subst.Mark();
  subst.Bind(Sym("Y"), Atom("b"));
  subst.Bind(Sym("Z"), Atom("c"));
  EXPECT_EQ(subst.size(), 3u);
  subst.RollbackTo(mark);
  EXPECT_EQ(subst.size(), 1u);
  EXPECT_EQ(subst.Lookup(Sym("X")), Atom("a"));
  EXPECT_EQ(subst.Lookup(Sym("Y")), nullptr);
}

TEST_F(TermOpsTest, WalkFollowsChains) {
  Subst subst;
  subst.Bind(Sym("X"), Var("Y"));
  subst.Bind(Sym("Y"), Atom("a"));
  EXPECT_EQ(subst.Walk(Var("X")), Atom("a"));
  EXPECT_EQ(subst.Walk(Var("Z")), Var("Z"));  // unbound stays
  EXPECT_EQ(subst.Walk(Atom("a")), Atom("a"));  // non-var unchanged
}

// ------------------------------------------------------------- ApplySubst --

TEST_F(TermOpsTest, SubstituteIntoFunction) {
  Subst subst;
  subst.Bind(Sym("X"), Int(1));
  const Term* args[] = {Var("X"), Var("Y")};
  const Term* pattern = factory_.MakeFunc("f", args);
  const Term* result = ApplySubst(factory_, pattern, subst);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(factory_.ToString(result), "f(1, Y)");
  EXPECT_FALSE(result->ground());
}

TEST_F(TermOpsTest, SubstituteIntoSetRecanonicalizes) {
  Subst subst;
  subst.Bind(Sym("X"), Int(1));
  subst.Bind(Sym("Y"), Int(1));  // X and Y collapse to the same element
  const Term* elems[] = {Var("X"), Var("Y"), Int(2)};
  const Term* pattern = factory_.MakeSet(elems);
  const Term* result = ApplySubst(factory_, pattern, subst);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->size(), 2u);
  EXPECT_EQ(factory_.ToString(result), "{1, 2}");
}

TEST_F(TermOpsTest, SconsEvaluatesToSetInsertion) {
  Subst subst;
  const Term* one_set_elems[] = {Int(1)};
  subst.Bind(Sym("S"), factory_.MakeSet(one_set_elems));
  const Term* scons_args[] = {Int(2), Var("S")};
  const Term* pattern = factory_.MakeFunc("scons", scons_args);
  const Term* result = ApplySubst(factory_, pattern, subst);
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->is_set());
  EXPECT_EQ(factory_.ToString(result), "{1, 2}");
}

TEST_F(TermOpsTest, SconsOfExistingElementIsIdentity) {
  Subst subst;
  const Term* elems[] = {Int(1)};
  subst.Bind(Sym("S"), factory_.MakeSet(elems));
  const Term* scons_args[] = {Int(1), Var("S")};
  const Term* result =
      ApplySubst(factory_, factory_.MakeFunc("scons", scons_args), subst);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->size(), 1u);
}

TEST_F(TermOpsTest, SconsOnNonSetIsOutsideUniverse) {
  // scons(1, a) denotes an object outside U (paper §2.2, restriction 1).
  Subst subst;
  subst.Bind(Sym("S"), Atom("a"));
  const Term* scons_args[] = {Int(1), Var("S")};
  const Term* result =
      ApplySubst(factory_, factory_.MakeFunc("scons", scons_args), subst);
  EXPECT_EQ(result, nullptr);
}

TEST_F(TermOpsTest, NestedSconsChainEvaluates) {
  // scons(1, scons(2, {})) -> {1, 2}.
  const Term* inner_args[] = {Int(2), factory_.EmptySet()};
  const Term* inner = factory_.MakeFunc("scons", inner_args);
  const Term* outer_args[] = {Int(1), inner};
  const Term* outer = factory_.MakeFunc("scons", outer_args);
  const Term* result = ApplySubst(factory_, outer, Subst());
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(factory_.ToString(result), "{1, 2}");
}

TEST_F(TermOpsTest, UnboundSconsStaysSymbolic) {
  const Term* scons_args[] = {Var("X"), Var("S")};
  const Term* pattern = factory_.MakeFunc("scons", scons_args);
  const Term* result = ApplySubst(factory_, pattern, Subst());
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->has_scons());
  EXPECT_FALSE(result->ground());
}

TEST_F(TermOpsTest, GroundTermFastPath) {
  const Term* args[] = {Atom("a"), Int(1)};
  const Term* t = factory_.MakeFunc("f", args);
  EXPECT_EQ(ApplySubst(factory_, t, Subst()), t);
}

// --------------------------------------------------------------- Var walks --

TEST_F(TermOpsTest, CollectVarsInOrder) {
  const Term* args[] = {Var("Y"), Var("X"), Var("Y")};
  const Term* t = factory_.MakeFunc("f", args);
  std::vector<Symbol> vars;
  CollectVars(t, &vars);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], Sym("Y"));
  EXPECT_EQ(vars[1], Sym("X"));
}

TEST_F(TermOpsTest, CollectVarsInsideSets) {
  const Term* elems[] = {Var("X"), Atom("a")};
  std::vector<Symbol> vars;
  CollectVars(factory_.MakeSet(elems), &vars);
  EXPECT_EQ(vars.size(), 1u);
}

TEST_F(TermOpsTest, OccursIn) {
  const Term* args[] = {Var("X")};
  const Term* t = factory_.MakeFunc("f", args);
  EXPECT_TRUE(OccursIn(t, Sym("X")));
  EXPECT_FALSE(OccursIn(t, Sym("Y")));
  EXPECT_FALSE(OccursIn(Atom("a"), Sym("X")));
}

TEST_F(TermOpsTest, SizeAndDepth) {
  EXPECT_EQ(TermSize(Atom("a")), 1u);
  EXPECT_EQ(TermDepth(Atom("a")), 1u);
  const Term* args[] = {Atom("a"), Atom("b")};
  const Term* f = factory_.MakeFunc("f", args);
  EXPECT_EQ(TermSize(f), 3u);
  EXPECT_EQ(TermDepth(f), 2u);
  const Term* elems[] = {f, Int(1)};
  const Term* s = factory_.MakeSet(elems);
  EXPECT_EQ(TermSize(s), 5u);
  EXPECT_EQ(TermDepth(s), 3u);
}

}  // namespace
}  // namespace ldl
