#include <gtest/gtest.h>

#include "eval/relation.h"

namespace ldl {
namespace {

class RelationTest : public ::testing::Test {
 protected:
  Tuple T(std::initializer_list<int> values) {
    Tuple t;
    for (int v : values) t.push_back(factory_.MakeInt(v));
    return t;
  }

  Interner interner_;
  TermFactory factory_{&interner_};
};

TEST_F(RelationTest, InsertDeduplicates) {
  Relation r(2);
  EXPECT_TRUE(r.Insert(T({1, 2})));
  EXPECT_FALSE(r.Insert(T({1, 2})));
  EXPECT_TRUE(r.Insert(T({2, 1})));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(T({1, 2})));
  EXPECT_FALSE(r.Contains(T({3, 3})));
}

TEST_F(RelationTest, EraseTombstones) {
  Relation r(1);
  r.Insert(T({1}));
  r.Insert(T({2}));
  EXPECT_TRUE(r.Erase(T({1})));
  EXPECT_FALSE(r.Erase(T({1})));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_FALSE(r.Contains(T({1})));
  // Row storage keeps the slot (stable row ids for delta windows).
  EXPECT_EQ(r.row_count(), 2u);
  int seen = 0;
  r.ForEachRow(0, r.row_count(), [&](size_t, RowRef) { ++seen; });
  EXPECT_EQ(seen, 1);
}

TEST_F(RelationTest, ReviveAfterErase) {
  Relation r(1);
  r.Insert(T({1}));
  r.Erase(T({1}));
  EXPECT_TRUE(r.Insert(T({1})));
  EXPECT_TRUE(r.Contains(T({1})));
  EXPECT_EQ(r.size(), 1u);
}

TEST_F(RelationTest, WindowedIteration) {
  Relation r(1);
  for (int i = 0; i < 10; ++i) r.Insert(T({i}));
  std::vector<int64_t> seen;
  r.ForEachRow(4, 7, [&](size_t, RowRef t) {
    seen.push_back(t[0]->int_value());
  });
  EXPECT_EQ(seen, (std::vector<int64_t>{4, 5, 6}));
}

TEST_F(RelationTest, ProbeFindsMatchingRows) {
  Relation r(2);
  r.Insert(T({1, 10}));
  r.Insert(T({2, 20}));
  r.Insert(T({1, 30}));
  std::vector<size_t> rows;
  r.Probe(0, factory_.MakeInt(1), 0, r.row_count(), &rows);
  EXPECT_EQ(rows.size(), 2u);
  r.Probe(1, factory_.MakeInt(20), 0, r.row_count(), &rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(r.row(rows[0])[0]->int_value(), 2);
}

TEST_F(RelationTest, ProbeRespectsWindowAndTombstones) {
  Relation r(1);
  for (int i = 0; i < 5; ++i) r.Insert(T({1}));  // dedup: only one row!
  Relation r2(2);
  for (int i = 0; i < 5; ++i) r2.Insert(T({1, i}));
  std::vector<size_t> rows;
  r2.Probe(0, factory_.MakeInt(1), 2, 4, &rows);
  EXPECT_EQ(rows.size(), 2u);
  r2.Erase(T({1, 2}));
  r2.Probe(0, factory_.MakeInt(1), 2, 4, &rows);
  EXPECT_EQ(rows.size(), 1u);
}

TEST_F(RelationTest, IndexStaysFreshAcrossInserts) {
  Relation r(1);
  r.Insert(T({1}));
  std::vector<size_t> rows;
  r.Probe(0, factory_.MakeInt(1), 0, r.row_count(), &rows);  // builds index
  r.Insert(T({2}));
  r.Probe(0, factory_.MakeInt(2), 0, r.row_count(), &rows);
  EXPECT_EQ(rows.size(), 1u);
}

std::vector<size_t> CompositeProbe(const Relation& r,
                                   std::vector<uint32_t> cols,
                                   const Tuple& values, size_t from, size_t to) {
  std::vector<size_t> rows;
  r.ProbeRows(cols, values, from, to, [&](size_t row) {
    rows.push_back(row);
    return true;
  });
  return rows;
}

TEST_F(RelationTest, CompositeProbeMatchesMultipleColumns) {
  Relation r(3);
  r.Insert(T({1, 2, 3}));
  r.Insert(T({1, 5, 3}));
  r.Insert(T({1, 2, 4}));
  r.Insert(T({2, 2, 3}));
  auto rows = CompositeProbe(r, {0, 2}, T({1, 3}), 0, r.row_count());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(r.row(rows[0])[1]->int_value() + r.row(rows[1])[1]->int_value(), 7);
  EXPECT_EQ(r.index_count(), 1u);
  // A different column set builds a second index.
  rows = CompositeProbe(r, {1, 2}, T({2, 3}), 0, r.row_count());
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(r.index_count(), 2u);
}

TEST_F(RelationTest, CompositeProbeTombstoneEraseAndRevive) {
  Relation r(2);
  r.Insert(T({1, 2}));
  r.Insert(T({1, 3}));
  auto rows = CompositeProbe(r, {0, 1}, T({1, 2}), 0, r.row_count());
  ASSERT_EQ(rows.size(), 1u);
  size_t original_row = rows[0];
  // Erased rows are filtered out of probes but keep their index entries.
  r.Erase(T({1, 2}));
  EXPECT_TRUE(CompositeProbe(r, {0, 1}, T({1, 2}), 0, r.row_count()).empty());
  // Revival reuses the row id; the probe sees it again without index repair.
  EXPECT_TRUE(r.Insert(T({1, 2})));
  rows = CompositeProbe(r, {0, 1}, T({1, 2}), 0, r.row_count());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], original_row);
}

TEST_F(RelationTest, CompositeProbeRespectsDeltaWindow) {
  Relation r(2);
  for (int i = 0; i < 6; ++i) r.Insert(T({1, i}));
  r.Insert(T({2, 0}));
  // Rows 2..4 form the delta window; only they may be returned.
  auto rows = CompositeProbe(r, {0}, T({1}), 2, 5);
  ASSERT_EQ(rows.size(), 3u);
  for (size_t row : rows) {
    EXPECT_GE(row, 2u);
    EXPECT_LT(row, 5u);
  }
}

TEST_F(RelationTest, CompositeIndexBuiltBeforeVsAfterInserts) {
  // `before` builds its index on an empty relation and maintains it
  // incrementally; `after` builds it over existing rows on first probe.
  Relation before(2);
  EXPECT_TRUE(CompositeProbe(before, {0, 1}, T({1, 1}), 0, 0).empty());
  Relation after(2);
  for (int i = 0; i < 8; ++i) {
    Tuple t = T({i % 2, i});
    before.Insert(t);
    after.Insert(t);
  }
  auto from_before = CompositeProbe(before, {0, 1}, T({0, 4}), 0, 8);
  auto from_after = CompositeProbe(after, {0, 1}, T({0, 4}), 0, 8);
  EXPECT_EQ(from_before, from_after);
  ASSERT_EQ(from_before.size(), 1u);
  EXPECT_EQ(before.row(from_before[0])[1]->int_value(), 4);
}

TEST_F(RelationTest, SnapshotSkipsTombstones) {
  Relation r(1);
  r.Insert(T({1}));
  r.Insert(T({2}));
  r.Erase(T({1}));
  auto snapshot = r.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0][0]->int_value(), 2);
}

TEST_F(RelationTest, ZeroArityRelation) {
  Relation r(0);
  EXPECT_TRUE(r.Insert(Tuple{}));
  EXPECT_FALSE(r.Insert(Tuple{}));
  EXPECT_TRUE(r.Contains(Tuple{}));
  EXPECT_TRUE(r.Erase(Tuple{}));
  EXPECT_FALSE(r.Contains(Tuple{}));
}

TEST_F(RelationTest, DatabaseLazyRelations) {
  Catalog catalog(&interner_);
  PredId p = catalog.GetOrCreate("p", 2);
  PredId q = catalog.GetOrCreate("q", 1);
  Database db(&catalog);
  db.AddFact(p, T({1, 2}));
  db.AddFact(q, T({3}));
  EXPECT_EQ(db.relation(p).arity(), 2u);
  EXPECT_EQ(db.TotalFacts(), 2u);
  // Registering new predicates after the fact still works.
  PredId r = catalog.GetOrCreate("r", 3);
  db.AddFact(r, T({1, 2, 3}));
  EXPECT_EQ(db.TotalFacts(), 3u);
}

TEST_F(RelationTest, DatabaseGrowsForLateRegisteredPredicates) {
  Catalog catalog(&interner_);
  PredId p = catalog.GetOrCreate("p", 1);
  Database db(&catalog);
  db.AddFact(p, T({1}));
  // References handed out before growth must survive it (the evaluator holds
  // Relation references across nested relation() calls).
  const Relation& held = db.relation(p);
  for (int i = 0; i < 64; ++i) {
    PredId q = catalog.GetOrCreate(("q" + std::to_string(i)).c_str(), 1);
    db.AddFact(q, T({i}));
  }
  EXPECT_EQ(&held, &db.relation(p));
  EXPECT_TRUE(held.Contains(T({1})));
  EXPECT_EQ(db.TotalFacts(), 65u);
  // Explicit pre-sizing covers every registered predicate.
  PredId last = catalog.GetOrCreate("late", 2);
  db.Grow();
  EXPECT_EQ(db.relation(last).arity(), 2u);
}

TEST_F(RelationTest, ClearRetainsIndexesAndBumpsEpoch) {
  Relation r(2);
  r.Insert(T({1, 10}));
  r.Insert(T({2, 20}));
  std::vector<size_t> rows;
  r.Probe(0, factory_.MakeInt(1), 0, r.row_count(), &rows);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(r.index_count(), 1u);
  const uint64_t epoch = r.epoch();

  // Clear keeps the (now empty) index structures linked for concurrent
  // readers and advances the epoch so caches can notice the wipe.
  r.Clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.row_count(), 0u);
  EXPECT_EQ(r.index_count(), 1u);
  EXPECT_GT(r.epoch(), epoch);
  r.Probe(0, factory_.MakeInt(1), 0, r.row_count(), &rows);
  EXPECT_TRUE(rows.empty());

  // Refilling after a clear dedups and probes correctly again.
  EXPECT_TRUE(r.Insert(T({1, 40})));
  EXPECT_FALSE(r.Insert(T({1, 40})));
  r.Probe(0, factory_.MakeInt(1), 0, r.row_count(), &rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(r.index_count(), 1u);  // the retained index was reused
}

TEST_F(RelationTest, DatabaseCopyFrom) {
  Catalog catalog(&interner_);
  PredId p = catalog.GetOrCreate("p", 1);
  PredId q = catalog.GetOrCreate("q", 1);
  Database source(&catalog);
  source.AddFact(p, T({1}));
  source.AddFact(q, T({2}));
  Database target(&catalog);
  target.CopyFrom(source, {p});
  EXPECT_EQ(target.relation(p).size(), 1u);
  EXPECT_EQ(target.relation(q).size(), 0u);
}

}  // namespace
}  // namespace ldl
