#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "parser/lexer.h"
#include "parser/parser.h"

namespace ldl {
namespace {

// ------------------------------------------------------------------ Lexer --

TEST(Lexer, BasicTokens) {
  auto tokens = Tokenize("p(X, 42) :- q(X).");
  ASSERT_TRUE(tokens.ok()) << tokens.status();
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, std::vector<TokenKind>({
                       TokenKind::kName, TokenKind::kLParen, TokenKind::kVarName,
                       TokenKind::kComma, TokenKind::kInt, TokenKind::kRParen,
                       TokenKind::kIf, TokenKind::kName, TokenKind::kLParen,
                       TokenKind::kVarName, TokenKind::kRParen, TokenKind::kDot,
                       TokenKind::kEof}));
}

TEST(Lexer, ArrowVariantsAllMeanIf) {
  for (const char* arrow : {":-", "<-", "<--"}) {
    auto tokens = Tokenize(arrow);
    ASSERT_TRUE(tokens.ok());
    EXPECT_EQ((*tokens)[0].kind, TokenKind::kIf) << arrow;
  }
}

TEST(Lexer, ComparisonOperators) {
  auto tokens = Tokenize("< <= > >= = /= !=");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, std::vector<TokenKind>(
                       {TokenKind::kLAngle, TokenKind::kLe, TokenKind::kRAngle,
                        TokenKind::kGe, TokenKind::kEq, TokenKind::kNeq,
                        TokenKind::kNeq, TokenKind::kEof}));
}

TEST(Lexer, CommentsAreSkipped) {
  auto tokens = Tokenize("a % rest of line\n# another\nb");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 3u);  // a, b, eof
}

TEST(Lexer, StringsWithEscapes) {
  auto tokens = Tokenize(R"("a\"b\n")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "a\"b\n");
}

TEST(Lexer, UnterminatedStringIsError) {
  EXPECT_FALSE(Tokenize("\"abc").ok());
}

TEST(Lexer, LineAndColumnTracking) {
  auto tokens = Tokenize("a\n  b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[1].column, 3);
}

TEST(Lexer, AnonymousVariable) {
  auto tokens = Tokenize("_ _x X");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kAnonVar);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kVarName);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kVarName);
}

TEST(Lexer, DigitPrefixedIdentifierIsError) {
  EXPECT_FALSE(Tokenize("12abc").ok());
}

// ----------------------------------------------------------------- Parser --

class ParserTest : public ::testing::Test {
 protected:
  TermExpr Term(const std::string& text) {
    auto result = ParseTermText(text, &interner_);
    EXPECT_TRUE(result.ok()) << text << ": " << result.status();
    return result.ok() ? *result : TermExpr{};
  }
  std::string RoundTrip(const std::string& text) {
    return AstPrinter(&interner_).ToString(Term(text));
  }
  Interner interner_;
};

TEST_F(ParserTest, SimpleTerms) {
  EXPECT_EQ(Term("42").kind, TermExprKind::kInt);
  EXPECT_EQ(Term("-7").int_value, -7);
  EXPECT_EQ(Term("john").kind, TermExprKind::kAtom);
  EXPECT_EQ(Term("X").kind, TermExprKind::kVar);
  EXPECT_EQ(Term("\"hi\"").kind, TermExprKind::kString);
}

TEST_F(ParserTest, IntLiteralBounds) {
  // INT64_MAX parses; one past it is a lex error, not a silent wraparound
  // (the digit accumulation used to overflow, which is UB on int64).
  EXPECT_EQ(Term("9223372036854775807").int_value,
            std::numeric_limits<int64_t>::max());
  auto too_big = ParseTermText("9223372036854775808", &interner_);
  ASSERT_FALSE(too_big.ok());
  EXPECT_NE(too_big.status().message().find("int64"), std::string::npos);
  EXPECT_FALSE(ParseTermText("99999999999999999999999", &interner_).ok());
}

TEST_F(ParserTest, StructuredTerms) {
  TermExpr f = Term("f(a, X, 3)");
  EXPECT_EQ(f.kind, TermExprKind::kFunc);
  EXPECT_EQ(f.args.size(), 3u);
  TermExpr set = Term("{1, 2, a}");
  EXPECT_EQ(set.kind, TermExprKind::kSetEnum);
  EXPECT_EQ(set.args.size(), 3u);
  EXPECT_EQ(Term("{}").kind, TermExprKind::kSetEnum);
  EXPECT_TRUE(Term("{}").args.empty());
  TermExpr group = Term("<X>");
  EXPECT_EQ(group.kind, TermExprKind::kGroup);
  EXPECT_TRUE(group.args[0].is_var());
}

TEST_F(ParserTest, NestedGroups) {
  TermExpr t = Term("<h(S, <D>)>");
  EXPECT_TRUE(t.is_group());
  EXPECT_EQ(t.args[0].kind, TermExprKind::kFunc);
  EXPECT_TRUE(t.args[0].args[1].is_group());
}

TEST_F(ParserTest, TupleTerms) {
  TermExpr t = Term("(X, Y, <Z>)");
  EXPECT_EQ(t.kind, TermExprKind::kFunc);
  EXPECT_EQ(interner_.Lookup(t.symbol), "tuple");
  EXPECT_EQ(t.args.size(), 3u);
  // A parenthesized single term is not a tuple.
  EXPECT_EQ(Term("(X)").kind, TermExprKind::kVar);
}

TEST_F(ParserTest, Lists) {
  EXPECT_EQ(RoundTrip("[1, 2]"), ".(1, .(2, []))");
  EXPECT_EQ(RoundTrip("[H | T]"), ".(H, T)");
  EXPECT_EQ(RoundTrip("[]"), "[]");
}

TEST_F(ParserTest, RoundTripPrinting) {
  for (const char* text :
       {"f(a, X, 3)", "{1, 2, a}", "<X>", "scons(X, S)", "f(g(h(1)))"}) {
    EXPECT_EQ(RoundTrip(text), text);
  }
}

TEST_F(ParserTest, AnonymousVarsAreRenamedApart) {
  TermExpr t = Term("f(_, _)");
  ASSERT_EQ(t.args.size(), 2u);
  EXPECT_TRUE(t.args[0].is_var());
  EXPECT_NE(t.args[0].symbol, t.args[1].symbol);
}

TEST(ParserRules, FactAndRule) {
  Interner interner;
  auto program = ParseProgram("p(a). q(X) :- p(X).", &interner);
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_EQ(program->rules.size(), 2u);
  EXPECT_TRUE(program->rules[0].is_fact());
  EXPECT_EQ(program->rules[1].body.size(), 1u);
}

TEST(ParserRules, NegationForms) {
  Interner interner;
  auto program = ParseProgram(
      "a(X) :- b(X), !c(X).\n"
      "d(X) :- b(X), not c(X).\n"
      "e(X) :- b(X), ~c(X).",
      &interner);
  ASSERT_TRUE(program.ok()) << program.status();
  for (const RuleAst& rule : program->rules) {
    ASSERT_EQ(rule.body.size(), 2u);
    EXPECT_FALSE(rule.body[0].negated);
    EXPECT_TRUE(rule.body[1].negated);
  }
}

TEST(ParserRules, ComparisonsAndArithmetic) {
  Interner interner;
  auto program = ParseProgram(
      "deal(X, Y) :- book(X, Px), book(Y, Py), Px + Py < 100.\n"
      "tc(C) :- q(C1), q(C2), +(C1, C2, C).\n"
      "eq(X, Y) :- p(X), Y = X.\n"
      "ne(X) :- p(X), X /= 3.",
      &interner);
  ASSERT_TRUE(program.ok()) << program.status();
  const RuleAst& deal = program->rules[0];
  ASSERT_EQ(deal.body.size(), 3u);
  EXPECT_EQ(deal.body[2].builtin, BuiltinKind::kLt);
  EXPECT_EQ(deal.body[2].args[0].kind, TermExprKind::kFunc);  // $add
  const RuleAst& tc = program->rules[1];
  EXPECT_EQ(tc.body[2].builtin, BuiltinKind::kPlus);
  EXPECT_EQ(program->rules[2].body[1].builtin, BuiltinKind::kEq);
  EXPECT_EQ(program->rules[3].body[1].builtin, BuiltinKind::kNeq);
}

TEST(ParserRules, BuiltinRecognition) {
  Interner interner;
  auto program = ParseProgram(
      "a(X) :- s(S), member(X, S).\n"
      "b(S) :- s(S1), s(S2), union(S1, S2, S).\n"
      "c(S, N) :- s(S), card(S, N).",
      &interner);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->rules[0].body[1].builtin, BuiltinKind::kMember);
  EXPECT_EQ(program->rules[1].body[2].builtin, BuiltinKind::kUnion);
  EXPECT_EQ(program->rules[2].body[1].builtin, BuiltinKind::kCard);
}

TEST(ParserRules, MemberWithWrongArityIsOrdinaryPredicate) {
  Interner interner;
  auto program = ParseProgram("a(X) :- member(X, S, T).", &interner);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->rules[0].body[0].builtin, BuiltinKind::kNone);
}

TEST(ParserRules, GroupingHead) {
  Interner interner;
  auto program = ParseProgram("part(P, <S>) :- p(P, S).", &interner);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_TRUE(program->rules[0].head.args[1].is_group());
}

TEST(ParserRules, Queries) {
  Interner interner;
  auto program = ParseProgram("? young(john, S).\n?- anc(X, Y).", &interner);
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_EQ(program->queries.size(), 2u);
  EXPECT_EQ(interner.Lookup(program->queries[0].goal.predicate), "young");
}

TEST(ParserRules, SetEnumerationInHead) {
  Interner interner;
  auto program = ParseProgram(
      "book_deal({X, Y, Z}) :- book(X, Px), book(Y, Py), book(Z, Pz), "
      "Px + Py + Pz < 100.",
      &interner);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->rules[0].head.args[0].kind, TermExprKind::kSetEnum);
}

TEST(ParserRules, ZeroArityPredicates) {
  Interner interner;
  auto program = ParseProgram("flag. go :- flag.", &interner);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_TRUE(program->rules[0].head.args.empty());
}

TEST(ParserRules, Errors) {
  Interner interner;
  EXPECT_FALSE(ParseProgram("p(a)", &interner).ok());        // missing dot
  EXPECT_FALSE(ParseProgram("p(a,).", &interner).ok());      // dangling comma
  EXPECT_FALSE(ParseProgram(":- p(a).", &interner).ok());    // headless
  EXPECT_FALSE(ParseProgram("!p(a) :- q.", &interner).ok()); // negated head
  EXPECT_FALSE(ParseProgram("X = 3.", &interner).ok());      // builtin head
  EXPECT_FALSE(ParseProgram("p(a) :- q(b]).", &interner).ok());
  auto err = ParseProgram("p(a) :-\nq(", &interner);
  ASSERT_FALSE(err.ok());
  // Error message carries position info.
  EXPECT_NE(err.status().message().find("line 2"), std::string::npos)
      << err.status();
}

TEST(ParserRules, ParseLiteralTextConvenience) {
  Interner interner;
  auto goal = ParseLiteralText("young(john, S)", &interner);
  ASSERT_TRUE(goal.ok()) << goal.status();
  EXPECT_EQ(goal->args.size(), 2u);
  EXPECT_FALSE(ParseLiteralText("young(john", &interner).ok());
}

}  // namespace
}  // namespace ldl
