// LDL1.5 macro expansion tests (paper §4).
#include <gtest/gtest.h>

#include "ldl/ldl.h"
#include "parser/parser.h"

namespace ldl {
namespace {

StatusOr<std::vector<std::string>> EvalAndFetch(Session& session,
                                                const char* pred, uint32_t arity) {
  LDL_RETURN_IF_ERROR(session.Evaluate());
  PredId id = session.catalog().Find(pred, arity);
  if (id == kInvalidPred) return NotFoundError(pred);
  auto tuples = session.database().relation(id).Snapshot();
  return FormatFacts(session, id, tuples);
}

// ------------------------------------------------------- §4.1 body groups --

TEST(Ldl15Body, GroupTermMatchesUniformSets) {
  // p(<X>) in a body matches p-facts whose argument is a set; X ranges over
  // the elements.
  Session session;
  ASSERT_TRUE(session
                  .Load("p({1, 2}). p({3}).\n"
                        "elem(X) :- p(<X>).")
                  .ok());
  auto facts = EvalAndFetch(session, "elem", 1);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts,
            (std::vector<std::string>{"elem(1)", "elem(2)", "elem(3)"}));
}

TEST(Ldl15Body, UniformStructureRequired) {
  // The paper's §4.1 example: p(<<X>>) matches p({{1,2},{3},{4,5}}) but not
  // p({{1,2}, 3, {4,5}}) because 3 is not a set.
  Session session;
  ASSERT_TRUE(session
                  .Load("p({{1, 2}, {3}, {4, 5}}).\n"
                        "p({{6, 7}, 8}).\n"
                        "inner(X) :- p(<<X>>).")
                  .ok());
  auto facts = EvalAndFetch(session, "inner", 1);
  ASSERT_TRUE(facts.ok()) << facts.status();
  // Only elements of the uniform fact's inner sets appear; 6 and 7 do not
  // (their enclosing set contains the non-set 8).
  EXPECT_EQ(*facts, (std::vector<std::string>{"inner(1)", "inner(2)", "inner(3)",
                                              "inner(4)", "inner(5)"}));
}

TEST(Ldl15Body, StructuredGroupPattern) {
  // q(<f(X)>) requires every element to be an f-term.
  Session session;
  ASSERT_TRUE(session
                  .Load("q({f(1), f(2)}). q({f(3), g(4)}).\n"
                        "got(X) :- q(<f(X)>).")
                  .ok());
  auto facts = EvalAndFetch(session, "got", 1);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"got(1)", "got(2)"}));
}

TEST(Ldl15Body, GroupInsideNegationIsRejected) {
  Session session;
  ASSERT_TRUE(session.Load("bad(X) :- q(X), !p(<X>).").ok());
  EXPECT_EQ(session.Analyze().code(), StatusCode::kNotWellFormed);
}

// ------------------------------------------------------- §4.2 head terms --

constexpr const char* kSchool =
    // r(Teacher, Student, Class, Day)
    "r(smith, ann, math, mon).\n"
    "r(smith, ann, math, wed).\n"
    "r(smith, bob, art, mon).\n"
    "r(jones, ann, bio, thu).\n";

TEST(Ldl15Head, MultipleGroupsDistribute) {
  // (T, <S>, <D>): per teacher, the set of students and the set of days.
  Session session;
  ASSERT_TRUE(session.Load(kSchool).ok());
  ASSERT_TRUE(session.Load("ex1(T, <S>, <D>) :- r(T, S, C, D).").ok());
  auto facts = EvalAndFetch(session, "ex1", 3);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{
                        "ex1(jones, {ann}, {thu})",
                        "ex1(smith, {ann, bob}, {mon, wed})"}));
}

TEST(Ldl15Head, NestedGroupingKeyedByInnerVars) {
  // The paper's second example: (T, <h(S, <D>)>). The inner day-set is per
  // student *across all teachers* ("not necessarily with this teacher").
  Session session;
  ASSERT_TRUE(session.Load(kSchool).ok());
  ASSERT_TRUE(session.Load("ex2(T, <h(S, <D>)>) :- r(T, S, C, D).").ok());
  auto facts = EvalAndFetch(session, "ex2", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  // ann's days are {mon, wed, thu} globally -- including under teacher
  // smith, jones' thu appears because the inner group is keyed by S only.
  EXPECT_EQ(*facts,
            (std::vector<std::string>{
                "ex2(jones, {h(ann, {mon, thu, wed})})",
                "ex2(smith, {h(ann, {mon, thu, wed}), h(bob, {mon})})"}));
}

TEST(Ldl15Head, AlternativeGroupingSemantics) {
  // (ii)': the inner group is keyed by the outer variables too, so ann's
  // days under smith exclude jones' thu.
  Session session;
  Ldl15Options options;
  options.alternative_grouping = true;
  session.set_ldl15_options(options);
  ASSERT_TRUE(session.Load(kSchool).ok());
  ASSERT_TRUE(session.Load("ex2(T, <h(S, <D>)>) :- r(T, S, C, D).").ok());
  auto facts = EvalAndFetch(session, "ex2", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{
                        "ex2(jones, {h(ann, {thu})})",
                        "ex2(smith, {h(ann, {mon, wed}), h(bob, {mon})})"}));
}

TEST(Ldl15Head, TupleKeysWithNestedGroups) {
  // The paper's third example: ((T, S), <(C, <D>)>) -- per teacher/student
  // pair, the set of (class, days-class-is-taught-by-anyone) tuples.
  Session session;
  ASSERT_TRUE(session.Load(kSchool).ok());
  ASSERT_TRUE(session.Load("ex3((T, S), <(C, <D>)>) :- r(T, S, C, D).").ok());
  auto facts = EvalAndFetch(session, "ex3", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{
                        "ex3((jones, ann), {(bio, {thu})})",
                        "ex3((smith, ann), {(math, {mon, wed})})",
                        "ex3((smith, bob), {(art, {mon})})"}));
}

TEST(Ldl15Head, ThreeGroupsDistribute) {
  // Distribution (i) over three grouped positions at once.
  Session session;
  ASSERT_TRUE(session.Load(kSchool).ok());
  ASSERT_TRUE(session.Load("ex4(T, <S>, <C>, <D>) :- r(T, S, C, D).").ok());
  auto facts = EvalAndFetch(session, "ex4", 4);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{
                        "ex4(jones, {ann}, {bio}, {thu})",
                        "ex4(smith, {ann, bob}, {art, math}, {mon, wed})"}));
}

TEST(Ldl15Head, MixedPlainAndGroupedArgs) {
  // A group-free structured argument stays in place while the groups are
  // distributed around it.
  Session session;
  ASSERT_TRUE(session
                  .Load("e(1, a). e(1, b). e(2, c).\n"
                        "m(tag(K), <V>, K) :- e(K, V).")
                  .ok());
  auto facts = EvalAndFetch(session, "m", 3);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"m(tag(1), {a, b}, 1)",
                                              "m(tag(2), {c}, 2)"}));
}

TEST(Ldl15Head, GroupOfConstant) {
  Session session;
  ASSERT_TRUE(session.Load("q(1).\nmarked(<ok>) :- q(_).").ok());
  auto facts = EvalAndFetch(session, "marked", 1);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"marked({ok})"}));
}

TEST(Ldl15Head, GroupOfStructuredTerm) {
  // <g(X, Y)> collects g-tuples.
  Session session;
  ASSERT_TRUE(session
                  .Load("e(1, a). e(1, b). e(2, c).\n"
                        "byk(K, <g(K, V)>) :- e(K, V).")
                  .ok());
  auto facts = EvalAndFetch(session, "byk", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{
                        "byk(1, {g(1, a), g(1, b)})", "byk(2, {g(2, c)})"}));
}

TEST(Ldl15Head, NestingInsideFunctor) {
  // p(X, wrap(<D>)): rule (iii) -- the group nests inside a non-grouped
  // functor, keyed by the head variables outside groups (X).
  Session session;
  ASSERT_TRUE(session
                  .Load("e(1, a). e(1, b). e(2, c).\n"
                        "w(K, wrap(<V>)) :- e(K, V).")
                  .ok());
  auto facts = EvalAndFetch(session, "w", 2);
  ASSERT_TRUE(facts.ok()) << facts.status();
  EXPECT_EQ(*facts, (std::vector<std::string>{"w(1, wrap({a, b}))",
                                              "w(2, wrap({c}))"}));
}

TEST(Ldl15Head, ExpansionPreservesPlainRules) {
  Interner interner;
  auto ast = ParseProgram("anc(X, Y) :- p(X, Y).\ng(K, <V>) :- e(K, V).",
                          &interner);
  ASSERT_TRUE(ast.ok());
  auto expanded = ExpandLdl15(*ast, &interner);
  ASSERT_TRUE(expanded.ok()) << expanded.status();
  EXPECT_EQ(expanded->rules.size(), 2u);  // already plain LDL1
}

TEST(Ldl15Head, QueriesMayNotContainGroups) {
  Interner interner;
  auto ast = ParseProgram("? p(<X>).", &interner);
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(ExpandLdl15(*ast, &interner).status().code(),
            StatusCode::kNotWellFormed);
}

}  // namespace
}  // namespace ldl
