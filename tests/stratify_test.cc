#include <gtest/gtest.h>

#include "parser/parser.h"
#include "program/depgraph.h"
#include "program/lower.h"
#include "program/stratify.h"
#include "workload/workload.h"

namespace ldl {
namespace {

class StratifyTest : public ::testing::Test {
 protected:
  StatusOr<Stratification> StratifyText(const std::string& source) {
    auto ast = ParseProgram(source, &interner_);
    if (!ast.ok()) return ast.status();
    auto ir = LowerProgram(factory_, catalog_, *ast);
    if (!ir.ok()) return ir.status();
    program_ = std::move(*ir);
    return Stratify(catalog_, program_);
  }

  int LayerOf(const char* name, uint32_t arity, const Stratification& s) {
    PredId pred = catalog_.Find(name, arity);
    EXPECT_NE(pred, kInvalidPred) << name;
    return s.layer_of_pred[pred];
  }

  Interner interner_;
  TermFactory factory_{&interner_};
  Catalog catalog_{&interner_};
  ProgramIr program_;
};

TEST_F(StratifyTest, SimpleProgramIsOneLayer) {
  auto s = StratifyText(
      "ancestor(X, Y) :- parent(X, Y).\n"
      "ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(LayerOf("ancestor", 2, *s), LayerOf("parent", 2, *s));
}

TEST_F(StratifyTest, NegationForcesHigherLayer) {
  // The paper's excl_ancestor program (§1) has two layers.
  auto s = StratifyText(
      "ancestor(X, Y) :- parent(X, Y).\n"
      "ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n"
      "excl_ancestor(X, Y, Z) :- ancestor(X, Y), !ancestor(X, Z).");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(LayerOf("excl_ancestor", 3, *s), LayerOf("ancestor", 2, *s) + 1);
}

TEST_F(StratifyTest, GroupingForcesHigherLayer) {
  auto s = StratifyText("part(P, <S>) :- p(P, S).");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(LayerOf("part", 2, *s), LayerOf("p", 2, *s) + 1);
}

TEST_F(StratifyTest, EvenOddIsInadmissible) {
  // The paper's §1 example: even depends negatively on itself through int.
  auto s = StratifyText(
      "int(z).\n"
      "int(s(X)) :- int(X).\n"
      "even(z).\n"
      "even(s(X)) :- int(X), !even(X).");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kNotAdmissible);
  EXPECT_NE(s.status().message().find("even"), std::string::npos);
}

TEST_F(StratifyTest, GroupingSelfRecursionIsInadmissible) {
  // §2.3: p(<X>) <- p(X) has no model; rejected syntactically.
  auto s = StratifyText(
      "p(1).\n"
      "p(<X>) :- p(X).");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kNotAdmissible);
}

TEST_F(StratifyTest, GroupingCycleThroughTwoPredicatesIsInadmissible) {
  // §2.4's program: q depends on p which groups over q.
  auto s = StratifyText(
      "q(1).\n"
      "p(<X>) :- q(X).\n"
      "q(2) :- p({1, 2}).");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kNotAdmissible);
}

TEST_F(StratifyTest, MutualPositiveRecursionIsFine) {
  auto s = StratifyText(
      "a(X) :- b(X).\n"
      "b(X) :- a(X).\n"
      "a(X) :- base(X).");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(LayerOf("a", 1, *s), LayerOf("b", 1, *s));
}

TEST_F(StratifyTest, NegationInsideMutualRecursionIsInadmissible) {
  auto s = StratifyText(
      "a(X) :- b(X).\n"
      "b(X) :- base(X), !a(X).");
  ASSERT_FALSE(s.ok());
}

TEST_F(StratifyTest, LayersChainThroughMultipleNegations) {
  auto s = StratifyText(
      "l1(X) :- base(X).\n"
      "l2(X) :- base(X), !l1(X).\n"
      "l3(X) :- base(X), !l2(X).\n"
      "l4(X) :- l3(X), l1(X).");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(LayerOf("l1", 1, *s), 0);
  EXPECT_EQ(LayerOf("l2", 1, *s), 1);
  EXPECT_EQ(LayerOf("l3", 1, *s), 2);
  EXPECT_EQ(LayerOf("l4", 1, *s), 2);  // minimal: >= l3, >= l1
}

TEST_F(StratifyTest, RulesGroupedByLayerInOrder) {
  auto s = StratifyText(
      "d(X) :- c(X).\n"
      "c(X) :- base(X), !b(X).\n"
      "b(X) :- base(X).");
  ASSERT_TRUE(s.ok()) << s.status();
  ASSERT_EQ(s->strata.size(), 2u);
  // Layer 0 holds the b rule; layer 1 the c and d rules.
  EXPECT_EQ(s->strata[0].size(), 1u);
  EXPECT_EQ(s->strata[1].size(), 2u);
  for (const std::vector<int>& stratum : s->strata) {
    for (int r : stratum) {
      EXPECT_EQ(s->layer_of_rule[r],
                s->layer_of_pred[program_.rules[r].head_pred]);
    }
  }
}

TEST_F(StratifyTest, FineLayeringIsAlsoValid) {
  auto coarse = StratifyText(
      "anc(X, Y) :- parent(X, Y).\n"
      "anc(X, Y) :- parent(X, Z), anc(Z, Y).\n"
      "top(X) :- anc(X, _), !anc(_, X).");
  ASSERT_TRUE(coarse.ok());
  auto fine = StratifyFine(catalog_, program_);
  ASSERT_TRUE(fine.ok());
  // Validity of a layering: p >= q => layer(p) >= layer(q); p > q => strictly.
  DepGraph graph = DepGraph::Build(catalog_, program_);
  for (const Stratification* s : {&*coarse, &*fine}) {
    for (const DepEdge& edge : graph.edges()) {
      if (edge.strict) {
        EXPECT_GT(s->layer_of_pred[edge.from], s->layer_of_pred[edge.to]);
      } else {
        EXPECT_GE(s->layer_of_pred[edge.from], s->layer_of_pred[edge.to]);
      }
    }
  }
  // Fine layering has at least as many layers.
  EXPECT_GE(fine->strata.size(), coarse->strata.size());
}

TEST_F(StratifyTest, DepGraphEdgeKinds) {
  auto s = StratifyText(
      "g(P, <S>) :- p(P, S).\n"
      "n(X) :- base(X), !p(X, X).\n"
      "pos(X) :- base(X).");
  ASSERT_TRUE(s.ok()) << s.status();
  DepGraph graph = DepGraph::Build(catalog_, program_);
  int strict = 0;
  int loose = 0;
  for (const DepEdge& edge : graph.edges()) {
    (edge.strict ? strict : loose)++;
  }
  // g > p (grouping), n >= base, n > p (negation), pos >= base.
  EXPECT_EQ(strict, 2);
  EXPECT_EQ(loose, 2);
}

// Parameterized sweep: synthetic layered programs of growing depth must
// stratify with exactly `layers` + 1 layers (layer 0 = EDB-only preds get 0;
// the synthetic generator introduces one negation per layer crossing).
class SyntheticLayersSweep : public StratifyTest,
                             public ::testing::WithParamInterface<int> {};

TEST_P(SyntheticLayersSweep, LayerCountMatches) {
  int layers = GetParam();
  auto s = StratifyText(SyntheticStratifiedProgram(layers, 3));
  ASSERT_TRUE(s.ok()) << s.status();
  // Negations cross at layers 2..layers; the minimal layering therefore has
  // `layers` distinct values for the generated predicates.
  int max_layer = 0;
  for (int layer : s->layer_of_pred) max_layer = std::max(max_layer, layer);
  EXPECT_EQ(max_layer, layers - 1);
}

INSTANTIATE_TEST_SUITE_P(Depths, SyntheticLayersSweep,
                         ::testing::Values(2, 3, 5, 8, 13));

}  // namespace
}  // namespace ldl
