// §7 finiteness analysis and the elaborate §2.4 domination order.
#include <gtest/gtest.h>

#include "ldl/ldl.h"
#include "semantics/model.h"

namespace ldl {
namespace {

StatusOr<std::vector<TerminationWarning>> Warnings(const std::string& source) {
  Session session;
  LDL_RETURN_IF_ERROR(session.Load(source));
  return session.TerminationWarnings();
}

TEST(Termination, FlagsFunctionBuildingRecursion) {
  auto warnings = Warnings(
      "int(z).\n"
      "int(s(X)) :- int(X).");
  ASSERT_TRUE(warnings.ok()) << warnings.status();
  ASSERT_EQ(warnings->size(), 1u);
  EXPECT_NE((*warnings)[0].message.find("int/1"), std::string::npos);
}

TEST(Termination, FlagsSetBuildingRecursion) {
  auto warnings = Warnings(
      "acc({}).\n"
      "acc(scons(X, S)) :- acc(S), item(X).\n"
      "item(1).");
  ASSERT_TRUE(warnings.ok()) << warnings.status();
  EXPECT_EQ(warnings->size(), 1u);
}

TEST(Termination, PlainRecursionIsClean) {
  auto warnings = Warnings(
      "anc(X, Y) :- parent(X, Y).\n"
      "anc(X, Y) :- parent(X, Z), anc(Z, Y).");
  ASSERT_TRUE(warnings.ok()) << warnings.status();
  EXPECT_TRUE(warnings->empty());
}

TEST(Termination, NonRecursiveConstructionIsClean) {
  // Building terms in non-recursive rules cannot grow the domain unboundedly.
  auto warnings = Warnings(
      "wrap(f(X)) :- base(X).\n"
      "pairs({X, Y}) :- base(X), base(Y).\n"
      "base(1).");
  ASSERT_TRUE(warnings.ok()) << warnings.status();
  EXPECT_TRUE(warnings->empty());
}

TEST(Termination, BomStyleRecursionIsFlaggedAdvisory) {
  // tc({X}, C) :- part(X, S), tc(S, C): head builds a singleton inside the
  // tc SCC. The program terminates (finite part domain), but the
  // conservative analysis flags it -- that is the documented advisory
  // nature of the check.
  auto warnings = Warnings(
      "tc({X}, C) :- part(X, S), tc(S, C).\n"
      "tc({X}, C) :- q(X, C).\n"
      "q(1, 5).\n"
      "part(2, {1}).");
  ASSERT_TRUE(warnings.ok()) << warnings.status();
  EXPECT_EQ(warnings->size(), 1u);
}

TEST(Termination, GroupedArgumentDoesNotCount) {
  // The grouped position is constructed by the engine, not the rule; and
  // grouping rules cannot be recursive anyway.
  auto warnings = Warnings("g(K, <V>) :- e(K, V).\ne(1, 2).");
  ASSERT_TRUE(warnings.ok()) << warnings.status();
  EXPECT_TRUE(warnings->empty());
}

// --------------------------------------------- elaborate domination (§2.4) --

class DeepDominationTest : public ::testing::Test {
 protected:
  const Term* Set(std::initializer_list<const Term*> xs) {
    std::vector<const Term*> v(xs);
    return factory_.MakeSet(v);
  }
  const Term* Int(int64_t v) { return factory_.MakeInt(v); }
  const Term* F(const Term* a) {
    const Term* args[] = {a};
    return factory_.MakeFunc("f", args);
  }

  Interner interner_;
  TermFactory factory_{&interner_};
};

TEST_F(DeepDominationTest, ReflexiveOnEverything) {
  const Term* t = F(Set({Int(1), Int(2)}));
  EXPECT_TRUE(ElementDominated(factory_, t, t));
}

TEST_F(DeepDominationTest, SetsCompareByDominatedMembers) {
  // {1} <= {1, 2}; {1, 2} </= {1}.
  EXPECT_TRUE(ElementDominated(factory_, Set({Int(1)}), Set({Int(1), Int(2)})));
  EXPECT_FALSE(ElementDominated(factory_, Set({Int(1), Int(2)}), Set({Int(1)})));
  // {} <= anything set-shaped.
  EXPECT_TRUE(ElementDominated(factory_, Set({}), Set({Int(9)})));
}

TEST_F(DeepDominationTest, NestedSetsDominateRecursively) {
  // {{1}} <= {{1, 2}}: the inner set is dominated, not equal -- the shallow
  // §2.4 order would reject this, the elaborate one accepts it.
  const Term* small = Set({Set({Int(1)})});
  const Term* big = Set({Set({Int(1), Int(2)})});
  EXPECT_TRUE(ElementDominated(factory_, small, big));
  EXPECT_FALSE(ElementDominated(factory_, big, small));
  EXPECT_FALSE(FactDominated(factory_, {small}, {big}))
      << "shallow order requires subset, {{1}} is not a subset of {{1,2}}";
  EXPECT_TRUE(FactDeepDominated(factory_, {small}, {big}));
}

TEST_F(DeepDominationTest, FunctionTermsComparePointwise) {
  EXPECT_TRUE(ElementDominated(factory_, F(Set({Int(1)})), F(Set({Int(1), Int(2)}))));
  EXPECT_FALSE(ElementDominated(factory_, F(Int(1)), F(Int(2))));
  // Different functors are incomparable.
  const Term* g_args[] = {Int(1)};
  EXPECT_FALSE(
      ElementDominated(factory_, F(Int(1)), factory_.MakeFunc("g", g_args)));
}

TEST_F(DeepDominationTest, MixedKindsOnlyEqual) {
  EXPECT_FALSE(ElementDominated(factory_, Int(1), Set({Int(1)})));
  EXPECT_FALSE(ElementDominated(factory_, Set({}), Int(0)));
}

}  // namespace
}  // namespace ldl
