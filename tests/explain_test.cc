// Why-provenance over the materialized model.
#include <gtest/gtest.h>

#include "ldl/ldl.h"

namespace ldl {
namespace {

TEST(Explain, TransitiveChainWitness) {
  Session session;
  ASSERT_TRUE(session
                  .Load("parent(a, b). parent(b, c). parent(c, d).\n"
                        "anc(X, Y) :- parent(X, Y).\n"
                        "anc(X, Y) :- parent(X, Z), anc(Z, Y).")
                  .ok());
  auto tree = session.Explain("anc(a, d)");
  ASSERT_TRUE(tree.ok()) << tree.status();
  // The witness bottoms out in EDB leaves and cites both rules.
  EXPECT_NE(tree->find("anc(a, d)"), std::string::npos);
  EXPECT_NE(tree->find("parent(c, d)   [edb]"), std::string::npos);
  EXPECT_NE(tree->find("[rule"), std::string::npos);
}

TEST(Explain, EdbFactIsLeaf) {
  Session session;
  ASSERT_TRUE(session.Load("p(a, b).").ok());
  auto tree = session.Explain("p(a, b)");
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(*tree, "p(a, b)   [edb]\n");
}

TEST(Explain, MissingFactIsNotFound) {
  Session session;
  ASSERT_TRUE(session.Load("p(a).").ok());
  EXPECT_EQ(session.Explain("p(zzz)").status().code(), StatusCode::kNotFound);
}

TEST(Explain, PatternsAreRejected) {
  Session session;
  ASSERT_TRUE(session.Load("p(a).").ok());
  EXPECT_EQ(session.Explain("p(X)").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Explain, NegationJustifiedByAbsence) {
  Session session;
  ASSERT_TRUE(session
                  .Load("node(a). node(b). edge(a, b).\n"
                        "sink(X) :- node(X), !edge(X, Z).")
                  .ok());
  auto tree = session.Explain("sink(b)");
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_NE(tree->find("node(b)   [edb]"), std::string::npos);
  EXPECT_NE(tree->find("no matching edge/2 fact"), std::string::npos);
}

TEST(Explain, GroupingListsContributors) {
  Session session;
  ASSERT_TRUE(session
                  .Load("e(1, a). e(1, b). e(2, c).\n"
                        "g(K, <V>) :- e(K, V).")
                  .ok());
  auto tree = session.Explain("g(1, {a, b})");
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_NE(tree->find("grouped 2 element(s)"), std::string::npos);
  EXPECT_NE(tree->find("e(1, a)"), std::string::npos);
  EXPECT_NE(tree->find("e(1, b)"), std::string::npos);
  EXPECT_EQ(tree->find("e(2, c)"), std::string::npos)
      << "other partitions do not support this group";
}

TEST(Explain, BuiltinsAppearAsNotes) {
  Session session;
  ASSERT_TRUE(session
                  .Load("n(2). n(3).\n"
                        "sum(X, Y, S) :- n(X), n(Y), +(X, Y, S).")
                  .ok());
  auto tree = session.Explain("sum(2, 3, 5)");
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_NE(tree->find("plus(2, 3, 5) holds"), std::string::npos);
}

TEST(Explain, SetFactsExplainable) {
  Session session;
  ASSERT_TRUE(session
                  .Load("s({1, 2}).\n"
                        "twice(U) :- s(A), union(A, A, U).")
                  .ok());
  auto tree = session.Explain("twice({1, 2})");
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_NE(tree->find("s({1, 2})   [edb]"), std::string::npos);
}

TEST(Explain, DepthLimitTruncates) {
  Session session;
  ASSERT_TRUE(session.Load(
                         "e(n0, n1). e(n1, n2). e(n2, n3). e(n3, n4).\n"
                         "t(X, Y) :- e(X, Y).\n"
                         "t(X, Y) :- e(X, Z), t(Z, Y).")
                  .ok());
  ExplainOptions options;
  options.max_depth = 2;
  auto tree = session.Explain("t(n0, n4)", options);
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_NE(tree->find("max depth reached"), std::string::npos);
}

TEST(Explain, AssertedIntensionalFact) {
  // A fact loaded for a predicate that also has rules.
  Session session;
  ASSERT_TRUE(session
                  .Load("anc(x, y).\n"
                        "parent(q, r).\n"
                        "anc(A, B) :- parent(A, B).")
                  .ok());
  auto tree = session.Explain("anc(x, y)");
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_NE(tree->find("[rule 1]"), std::string::npos);
}

}  // namespace
}  // namespace ldl
