#include <gtest/gtest.h>

#include <set>

#include "term/unify.h"

namespace ldl {
namespace {

class UnifyTest : public ::testing::Test {
 protected:
  const Term* Var(const char* name) { return factory_.MakeVar(name); }
  const Term* Atom(const char* name) { return factory_.MakeAtom(name); }
  const Term* Int(int64_t v) { return factory_.MakeInt(v); }
  Symbol Sym(const char* name) { return interner_.Intern(name); }
  const Term* Set(std::initializer_list<const Term*> elems) {
    std::vector<const Term*> v(elems);
    return factory_.MakeSet(v);
  }

  // All solutions as strings "X=...;Y=..." (sorted) for easy assertions.
  std::multiset<std::string> Solutions(const Term* pattern, const Term* ground) {
    std::multiset<std::string> result;
    Subst subst;
    MatchTerm(factory_, pattern, ground, &subst, [&]() {
      std::vector<std::string> bindings;
      for (const auto& [var, value] : subst.trail()) {
        bindings.push_back(std::string(interner_.Lookup(var)) + "=" +
                           factory_.ToString(value));
      }
      std::sort(bindings.begin(), bindings.end());
      std::string joined;
      for (const auto& b : bindings) joined += b + ";";
      result.insert(joined);
      return true;
    });
    return result;
  }

  size_t SolutionCount(const Term* pattern, const Term* ground) {
    return Solutions(pattern, ground).size();
  }

  Interner interner_;
  TermFactory factory_{&interner_};
};

// ------------------------------------------------------ deterministic part --

TEST_F(UnifyTest, VariableBindsToAnything) {
  auto sols = Solutions(Var("X"), Set({Int(1)}));
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(*sols.begin(), "X={1};");
}

TEST_F(UnifyTest, ConstantsMatchOnlyThemselves) {
  EXPECT_EQ(SolutionCount(Int(1), Int(1)), 1u);
  EXPECT_EQ(SolutionCount(Int(1), Int(2)), 0u);
  EXPECT_EQ(SolutionCount(Atom("a"), Atom("a")), 1u);
  EXPECT_EQ(SolutionCount(Atom("a"), Atom("b")), 0u);
  EXPECT_EQ(SolutionCount(Atom("a"), Int(1)), 0u);
}

TEST_F(UnifyTest, FunctionStructureMustAgree) {
  const Term* pat_args[] = {Var("X"), Atom("b")};
  const Term* pattern = factory_.MakeFunc("f", pat_args);
  const Term* g1_args[] = {Int(1), Atom("b")};
  EXPECT_EQ(SolutionCount(pattern, factory_.MakeFunc("f", g1_args)), 1u);
  const Term* g2_args[] = {Int(1), Atom("c")};
  EXPECT_EQ(SolutionCount(pattern, factory_.MakeFunc("f", g2_args)), 0u);
  EXPECT_EQ(SolutionCount(pattern, factory_.MakeFunc("g", g1_args)), 0u);
}

TEST_F(UnifyTest, RepeatedVariableMustMatchConsistently) {
  const Term* pat_args[] = {Var("X"), Var("X")};
  const Term* pattern = factory_.MakeFunc("f", pat_args);
  const Term* same_args[] = {Int(1), Int(1)};
  EXPECT_EQ(SolutionCount(pattern, factory_.MakeFunc("f", same_args)), 1u);
  const Term* diff_args[] = {Int(1), Int(2)};
  EXPECT_EQ(SolutionCount(pattern, factory_.MakeFunc("f", diff_args)), 0u);
}

// ------------------------------------------------------------ set matching --

TEST_F(UnifyTest, SetPatternEnumeratesPermutations) {
  // {X, Y} vs {1, 2}: two solutions.
  const Term* pattern = Set({Var("X"), Var("Y")});
  auto sols = Solutions(pattern, Set({Int(1), Int(2)}));
  EXPECT_EQ(sols.size(), 2u);
  EXPECT_TRUE(sols.count("X=1;Y=2;"));
  EXPECT_TRUE(sols.count("X=2;Y=1;"));
}

TEST_F(UnifyTest, SetPatternCollapsesOnSingleton) {
  // {X, Y} vs {1}: X = Y = 1 (duplicates collapse, paper §1 book_deal).
  auto sols = Solutions(Set({Var("X"), Var("Y")}), Set({Int(1)}));
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(*sols.begin(), "X=1;Y=1;");
}

TEST_F(UnifyTest, SetPatternRequiresExactCover) {
  // {X} cannot match {1, 2}: one pattern element cannot cover two.
  EXPECT_EQ(SolutionCount(Set({Var("X")}), Set({Int(1), Int(2)})), 0u);
}

TEST_F(UnifyTest, SetPatternWithConstant) {
  // {1, X} vs {1, 2}: X must cover 2.
  auto sols = Solutions(Set({Int(1), Var("X")}), Set({Int(1), Int(2)}));
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(*sols.begin(), "X=2;");
  // {1, X} vs {2, 3}: the constant 1 is not a member.
  EXPECT_EQ(SolutionCount(Set({Int(1), Var("X")}), Set({Int(2), Int(3)})), 0u);
}

TEST_F(UnifyTest, EmptySetPattern) {
  EXPECT_EQ(SolutionCount(Set({}), Set({})), 1u);
  EXPECT_EQ(SolutionCount(Set({}), Set({Int(1)})), 0u);
  EXPECT_EQ(SolutionCount(Set({Var("X")}), Set({})), 0u);
}

TEST_F(UnifyTest, SetMismatchesOtherKinds) {
  EXPECT_EQ(SolutionCount(Set({Var("X")}), Atom("a")), 0u);
  EXPECT_EQ(SolutionCount(Atom("a"), Set({Atom("a")})), 0u);
}

TEST_F(UnifyTest, NestedSetPatterns) {
  // {{X}} vs {{1}}.
  auto sols = Solutions(Set({Set({Var("X")})}), Set({Set({Int(1)})}));
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(*sols.begin(), "X=1;");
  // {{X}, Y} vs {{1}, {2}}: X from one inner set, Y the other (or Y covers
  // both? no -- exact cover, Y must take the remaining element; but X's set
  // may also be covered by Y).
  auto sols2 =
      Solutions(Set({Set({Var("X")}), Var("Y")}), Set({Set({Int(1)}), Set({Int(2)})}));
  // Solutions: X=1,Y={2}; X=2,Y={1}; X=1,Y={1}? no: then {2} uncovered.
  EXPECT_EQ(sols2.size(), 2u);
  EXPECT_TRUE(sols2.count("X=1;Y={2};"));
  EXPECT_TRUE(sols2.count("X=2;Y={1};"));
}

TEST_F(UnifyTest, ThreeElementPatternOverTwoElements) {
  // {X, Y, Z} vs {1, 2}: assignments covering both elements: 2^3 total maps
  // minus those missing 1 or 2 = 8 - 2 = 6.
  const Term* pattern = Set({Var("X"), Var("Y"), Var("Z")});
  EXPECT_EQ(SolutionCount(pattern, Set({Int(1), Int(2)})), 6u);
}

// ---------------------------------------------------------- scons matching --

TEST_F(UnifyTest, SconsMatchesElementAndRest) {
  // scons(X, S) vs {1}: X=1 with S={} or S={1}.
  const Term* args[] = {Var("X"), Var("S")};
  const Term* pattern = factory_.MakeFunc("scons", args);
  auto sols = Solutions(pattern, Set({Int(1)}));
  EXPECT_EQ(sols.size(), 2u);
  EXPECT_TRUE(sols.count("S={};X=1;"));
  EXPECT_TRUE(sols.count("S={1};X=1;"));
}

TEST_F(UnifyTest, SconsOnTwoElementSet) {
  const Term* args[] = {Var("X"), Var("S")};
  const Term* pattern = factory_.MakeFunc("scons", args);
  auto sols = Solutions(pattern, Set({Int(1), Int(2)}));
  // X=1: S={2} or {1,2}; X=2: S={1} or {1,2}.
  EXPECT_EQ(sols.size(), 4u);
  EXPECT_TRUE(sols.count("S={2};X=1;"));
  EXPECT_TRUE(sols.count("S={1, 2};X=1;"));
}

TEST_F(UnifyTest, SconsNeverMatchesEmptySetOrNonSet) {
  const Term* args[] = {Var("X"), Var("S")};
  const Term* pattern = factory_.MakeFunc("scons", args);
  EXPECT_EQ(SolutionCount(pattern, Set({})), 0u);
  EXPECT_EQ(SolutionCount(pattern, Atom("a")), 0u);
}

TEST_F(UnifyTest, GroundSconsPatternEvaluates) {
  // scons(1, {2}) as a pattern must match the ground set {1, 2}.
  const Term* args[] = {Int(1), Set({Int(2)})};
  const Term* pattern = factory_.MakeFunc("scons", args);
  EXPECT_EQ(SolutionCount(pattern, Set({Int(1), Int(2)})), 1u);
  EXPECT_EQ(SolutionCount(pattern, Set({Int(1)})), 0u);
}

// -------------------------------------------------------------- MatchArgs --

TEST_F(UnifyTest, MatchArgsJoinsSharedVariables) {
  const Term* patterns[] = {Var("X"), Var("X")};
  const Term* ground_ok[] = {Int(1), Int(1)};
  const Term* ground_bad[] = {Int(1), Int(2)};
  Subst subst;
  int count = 0;
  MatchArgs(factory_, patterns, ground_ok, &subst, [&]() {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
  count = 0;
  MatchArgs(factory_, patterns, ground_bad, &subst, [&]() {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);
}

TEST_F(UnifyTest, EarlyStopPropagates) {
  const Term* pattern = Set({Var("X"), Var("Y")});
  Subst subst;
  int count = 0;
  bool finished = MatchTerm(factory_, pattern, Set({Int(1), Int(2)}), &subst, [&]() {
    ++count;
    return false;  // stop after the first solution
  });
  EXPECT_FALSE(finished);
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(subst.empty());  // rolled back
}

// -------------------------------------------------------------- UnifyRigid --

TEST_F(UnifyTest, RigidUnifyBindsBothDirections) {
  Subst subst;
  EXPECT_TRUE(UnifyRigid(factory_, Var("X"), Atom("a"), &subst));
  EXPECT_EQ(subst.Lookup(Sym("X")), Atom("a"));
  EXPECT_TRUE(UnifyRigid(factory_, Atom("b"), Var("Y"), &subst));
  EXPECT_EQ(subst.Lookup(Sym("Y")), Atom("b"));
}

TEST_F(UnifyTest, RigidUnifyOccursCheck) {
  Subst subst;
  const Term* args[] = {Var("X")};
  EXPECT_FALSE(UnifyRigid(factory_, Var("X"), factory_.MakeFunc("f", args), &subst));
  EXPECT_TRUE(subst.empty());
}

TEST_F(UnifyTest, RigidUnifyRollsBackOnFailure) {
  Subst subst;
  const Term* pat1_args[] = {Var("X"), Atom("a")};
  const Term* pat2_args[] = {Int(1), Atom("b")};
  EXPECT_FALSE(UnifyRigid(factory_, factory_.MakeFunc("f", pat1_args),
                          factory_.MakeFunc("f", pat2_args), &subst));
  EXPECT_TRUE(subst.empty());
}

// ----------------------------------------------- parameterized cover sweep --

// Property: the number of solutions of an all-variable k-element set pattern
// against an n-element ground set equals the number of surjections [k] -> [n]
// (assignments covering every ground element).
class SetCoverSweep : public UnifyTest,
                      public ::testing::WithParamInterface<std::pair<int, int>> {};

size_t Surjections(int k, int n) {
  // Inclusion-exclusion: sum_{i=0..n} (-1)^i C(n,i) (n-i)^k.
  auto comb = [](int n_, int r_) {
    double c = 1;
    for (int i = 0; i < r_; ++i) c = c * (n_ - i) / (i + 1);
    return static_cast<long long>(c + 0.5);
  };
  long long total = 0;
  for (int i = 0; i <= n; ++i) {
    long long term = comb(n, i);
    long long power = 1;
    for (int j = 0; j < k; ++j) power *= (n - i);
    total += (i % 2 == 0 ? 1 : -1) * term * power;
  }
  return static_cast<size_t>(total);
}

TEST_P(SetCoverSweep, SolutionCountMatchesSurjections) {
  auto [k, n] = GetParam();
  std::vector<const Term*> pattern_elems;
  for (int i = 0; i < k; ++i) {
    pattern_elems.push_back(factory_.MakeVar(std::string(1, 'A' + i)));
  }
  std::vector<const Term*> ground_elems;
  for (int i = 0; i < n; ++i) ground_elems.push_back(factory_.MakeInt(i));
  const Term* pattern = factory_.MakeSet(pattern_elems);
  const Term* ground = factory_.MakeSet(ground_elems);
  EXPECT_EQ(SolutionCount(pattern, ground), Surjections(k, n));
}

INSTANTIATE_TEST_SUITE_P(Covers, SetCoverSweep,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 1},
                                           std::pair{2, 2}, std::pair{3, 2},
                                           std::pair{3, 3}, std::pair{4, 2},
                                           std::pair{4, 3}, std::pair{2, 3},
                                           std::pair{5, 4}));

}  // namespace
}  // namespace ldl
