// Property test: printing a program and re-parsing it is the identity on
// the AST (modulo nothing -- the printer emits canonical concrete syntax).
// Random programs are generated over the full AST surface: constants,
// variables, functions, tuples, enumerated sets, head groups, negation,
// comparisons and built-ins.
#include <gtest/gtest.h>

#include "ast/ast.h"
#include "base/str_util.h"
#include "parser/parser.h"
#include "workload/workload.h"

namespace ldl {
namespace {

class AstGenerator {
 public:
  AstGenerator(Interner* interner, uint64_t seed) : interner_(interner), rng_(seed) {}

  TermExpr RandomTerm(int depth, bool allow_group) {
    int kind = static_cast<int>(rng_.Below(depth <= 0 ? 4 : (allow_group ? 8 : 7)));
    switch (kind) {
      case 0:
        return TermExpr::Int(static_cast<int64_t>(rng_.Below(100)) - 50);
      case 1:
        return TermExpr::Atom(interner_->Intern(Name("c")));
      case 2:
        return TermExpr::Var(interner_->Intern(UpperName()));
      case 3:
        return TermExpr::String(interner_->Intern(Name("s")));
      case 4: {  // function
        std::vector<TermExpr> args;
        size_t n = 1 + rng_.Below(3);
        for (size_t i = 0; i < n; ++i) {
          args.push_back(RandomTerm(depth - 1, false));
        }
        return TermExpr::Func(interner_->Intern(Name("f")), std::move(args));
      }
      case 5: {  // enumerated set
        std::vector<TermExpr> elements;
        size_t n = rng_.Below(3);
        for (size_t i = 0; i < n; ++i) {
          elements.push_back(RandomTerm(depth - 1, false));
        }
        return TermExpr::SetEnum(std::move(elements));
      }
      case 6: {  // tuple
        std::vector<TermExpr> args;
        size_t n = 2 + rng_.Below(2);
        for (size_t i = 0; i < n; ++i) {
          args.push_back(RandomTerm(depth - 1, false));
        }
        return TermExpr::Func(interner_->Intern(kTupleFunctor), std::move(args));
      }
      default:  // group (head positions only)
        return TermExpr::Group(RandomTerm(depth - 1, false));
    }
  }

  LiteralAst RandomLiteral(bool head) {
    LiteralAst literal;
    if (!head && rng_.Below(5) == 0) {
      // Comparison built-in.
      literal.builtin =
          rng_.Below(2) == 0 ? BuiltinKind::kLt : BuiltinKind::kNeq;
      literal.args.push_back(RandomTerm(1, false));
      literal.args.push_back(RandomTerm(1, false));
      return literal;
    }
    if (!head && rng_.Below(6) == 0) {
      literal.builtin = BuiltinKind::kMember;
      literal.args.push_back(RandomTerm(1, false));
      literal.args.push_back(RandomTerm(1, false));
      return literal;
    }
    literal.negated = !head && rng_.Below(4) == 0;
    literal.predicate = interner_->Intern(Name("p"));
    size_t arity = rng_.Below(4);
    for (size_t i = 0; i < arity; ++i) {
      literal.args.push_back(RandomTerm(2, head));
    }
    return literal;
  }

  RuleAst RandomRule() {
    RuleAst rule;
    rule.head = RandomLiteral(/*head=*/true);
    size_t body = rng_.Below(4);
    for (size_t i = 0; i < body; ++i) {
      rule.body.push_back(RandomLiteral(/*head=*/false));
    }
    return rule;
  }

 private:
  std::string Name(const char* prefix) {
    return StrCat(prefix, rng_.Below(12));
  }
  std::string UpperName() { return StrCat("V", rng_.Below(8)); }

  Interner* interner_;
  Rng rng_;
};

class RoundTripSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripSweep, PrintParsePrintIsStable) {
  Interner interner;
  AstGenerator generator(&interner, GetParam());
  ProgramAst program;
  for (int i = 0; i < 40; ++i) program.rules.push_back(generator.RandomRule());

  AstPrinter printer(&interner);
  std::string first = printer.ToString(program);
  auto reparsed = ParseProgram(first, &interner);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << first;
  std::string second = printer.ToString(*reparsed);
  EXPECT_EQ(first, second);
  // Structural equality of terms and literals (anonymous-variable renaming
  // aside, the generator never emits '_').
  ASSERT_EQ(program.rules.size(), reparsed->rules.size());
  for (size_t r = 0; r < program.rules.size(); ++r) {
    EXPECT_EQ(program.rules[r].head.args, reparsed->rules[r].head.args)
        << "rule " << r << ": " << printer.ToString(program.rules[r]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace ldl
