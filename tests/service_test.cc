// ldl::Service: snapshot isolation, concurrent serving, and a
// linearizability stress check -- every answer set a reader observes must
// equal what a serial Session produces at the snapshot's published version.
#include "ldl/service.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "eval/bindings.h"
#include "ldl/ldl.h"

namespace ldl {
namespace {

constexpr char kPathProgram[] = R"(
  edge(1, 2). edge(2, 3). edge(3, 4).
  path(X, Y) :- edge(X, Y).
  path(X, Y) :- edge(X, Z), path(Z, Y).
)";

// Canonical, session-independent rendering of an answer set (Term pointers
// differ between interners, strings do not).
std::vector<std::string> Render(const TermFactory& factory,
                                const std::vector<Tuple>& tuples) {
  std::vector<std::string> out;
  out.reserve(tuples.size());
  for (const Tuple& tuple : tuples) out.push_back(FormatTuple(factory, tuple));
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Service, ServesEmptyModelBeforeLoad) {
  Service service;
  EXPECT_EQ(service.snapshot()->version(), 1u);
  auto result = service.Query("p(X)");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tuples.empty());
}

TEST(Service, AnswersMatchSessionAcrossStrategies) {
  Service service;
  ASSERT_TRUE(service.Load(kPathProgram).ok());

  Session session;
  ASSERT_TRUE(session.Load(kPathProgram).ok());
  auto expected = session.Query("path(1, X)");
  ASSERT_TRUE(expected.ok());
  std::vector<std::string> want =
      Render(session.factory(), expected->tuples);
  ASSERT_EQ(want.size(), 3u);

  auto prepared = service.Prepare("path(1, X)");
  ASSERT_TRUE(prepared.ok());
  for (QueryStrategy strategy :
       {QueryStrategy::kModel, QueryStrategy::kMagic,
        QueryStrategy::kMagicSupplementary, QueryStrategy::kTopDown}) {
    QueryOptions options;
    options.strategy = strategy;
    auto result = service.Query(*prepared, options);
    ASSERT_TRUE(result.ok()) << ToString(strategy);
    EXPECT_EQ(Render(service.snapshot()->factory(), result->tuples), want)
        << ToString(strategy);
  }
}

TEST(Service, SnapshotPinnedAcrossWrites) {
  Service service;
  ASSERT_TRUE(service.Load(kPathProgram).ok());
  auto prepared = service.Prepare("path(1, X)");
  ASSERT_TRUE(prepared.ok());

  std::shared_ptr<const ModelSnapshot> pinned = service.snapshot();
  uint64_t pinned_version = pinned->version();
  auto before = pinned->Query(*prepared);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->tuples.size(), 3u);

  ASSERT_TRUE(service.AddFacts("edge(4, 5).").ok());

  // The service answers from the new model...
  auto after = service.Query(*prepared);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->tuples.size(), 4u);
  EXPECT_GT(service.snapshot()->version(), pinned_version);
  // ...while the pinned snapshot still answers from the old one.
  auto still_before = pinned->Query(*prepared);
  ASSERT_TRUE(still_before.ok());
  EXPECT_EQ(still_before->tuples.size(), 3u);
}

TEST(Service, FailedWriteKeepsServing) {
  Service service;
  ASSERT_TRUE(service.Load(kPathProgram).ok());
  uint64_t version = service.snapshot()->version();
  EXPECT_FALSE(service.Load("edge(1, ").ok());
  EXPECT_EQ(service.snapshot()->version(), version);
  auto result = service.Query("path(1, X)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 3u);
}

TEST(Service, StatsCountServingActivity) {
  Service service;
  ASSERT_TRUE(service.Load(kPathProgram).ok());
  auto prepared = service.Prepare("path(X, Y)");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(service.Query(*prepared).ok());
  ASSERT_TRUE(service.Query(*prepared).ok());
  // An EDB-only delta republished the model without re-analyzing.
  ASSERT_TRUE(service.AddFacts("edge(4, 5).").ok());
  ASSERT_TRUE(service.Query(*prepared).ok());

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries_served, 3u);
  EXPECT_EQ(stats.prepares, 1u);
  EXPECT_EQ(stats.writes_applied, 2u);  // Load + AddFacts
  EXPECT_EQ(stats.snapshots_published, 3u);  // ctor + Load + AddFacts
  EXPECT_GE(stats.analyses_shared, 1u);
  EXPECT_GE(stats.snapshot_refs, 1u);

  std::string formatted = FormatServiceStats(stats);
  EXPECT_NE(formatted.find("queries_served=3"), std::string::npos);
  EXPECT_NE(formatted.find("snapshots_published=3"), std::string::npos);
}

// --- Linearizability stress ---
//
// One writer applies a fixed sequence of EDB inserts/removes while reader
// threads hammer queries. Every reader pins a snapshot, queries it, and
// checks the answer set against the expected model at that snapshot's
// version, precomputed with a serial Session. TSan (the tsan preset runs
// this test) checks the synchronization; the version check makes snapshot
// isolation observable.

// The update script. Version numbering: the Service constructor publishes
// v1 (empty), Load(kPathProgram) publishes v2, update i publishes v2+i.
const char* const kUpdates[] = {
    "edge(4, 5).", "edge(5, 6).", "-edge(1, 2).",
    "edge(1, 2).", "edge(6, 7).", "-edge(3, 4).",
};
constexpr size_t kNumUpdates = sizeof(kUpdates) / sizeof(kUpdates[0]);

Status ApplyUpdate(Session* session, const char* update) {
  if (update[0] == '-') return session->RemoveFacts(update + 1);
  return session->AddFacts(update);
}

Status ApplyUpdate(Service* service, const char* update) {
  if (update[0] == '-') return service->RemoveFacts(update + 1);
  return service->AddFacts(update);
}

void RunStress(QueryStrategy strategy, size_t eval_threads) {
  // Expected answer set per published version, from a serial Session.
  std::vector<std::vector<std::string>> expected(kNumUpdates + 3);
  {
    Session session;
    ASSERT_TRUE(session.Load(kPathProgram).ok());
    for (size_t i = 0; i <= kNumUpdates; ++i) {
      if (i > 0) ASSERT_TRUE(ApplyUpdate(&session, kUpdates[i - 1]).ok());
      auto result = session.Query("path(X, Y)");
      ASSERT_TRUE(result.ok());
      expected[2 + i] = Render(session.factory(), result->tuples);
    }
  }

  EvalOptions eval;
  eval.num_threads = eval_threads;
  Service service(eval);
  ASSERT_TRUE(service.Load(kPathProgram).ok());
  auto prepared = service.Prepare("path(X, Y)");
  ASSERT_TRUE(prepared.ok());

  QueryOptions options;
  options.strategy = strategy;
  options.eval.num_threads = eval_threads;

  std::atomic<bool> done{false};
  std::atomic<size_t> failures{0};
  constexpr size_t kReaders = 3;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  const TermFactory* factory = &service.snapshot()->factory();
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      size_t spins = 0;
      while (!done.load(std::memory_order_acquire) || spins < 2) {
        ++spins;
        std::shared_ptr<const ModelSnapshot> snapshot = service.snapshot();
        uint64_t version = snapshot->version();
        auto result = snapshot->Query(*prepared, options);
        if (!result.ok() || version < 2 || version >= expected.size() ||
            Render(*factory, result->tuples) != expected[version]) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }

  for (size_t i = 0; i < kNumUpdates; ++i) {
    ASSERT_TRUE(ApplyUpdate(&service, kUpdates[i]).ok()) << kUpdates[i];
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(failures.load(), 0u) << "a reader observed an answer set that no "
                                    "published version explains";
  EXPECT_EQ(service.snapshot()->version(), 2 + kNumUpdates);
}

TEST(ServiceStress, ModelSingleThreadEval) { RunStress(QueryStrategy::kModel, 1); }
TEST(ServiceStress, ModelParallelEval) { RunStress(QueryStrategy::kModel, 4); }
TEST(ServiceStress, MagicSingleThreadEval) { RunStress(QueryStrategy::kMagic, 1); }
TEST(ServiceStress, MagicParallelEval) { RunStress(QueryStrategy::kMagic, 4); }
TEST(ServiceStress, TopDownSingleThreadEval) { RunStress(QueryStrategy::kTopDown, 1); }
TEST(ServiceStress, TopDownParallelEval) { RunStress(QueryStrategy::kTopDown, 4); }

// Concurrent Prepare against concurrent writes: preparation lowers through
// the shared (internally synchronized) interner/factory/catalog.
TEST(ServiceStress, ConcurrentPrepareAndWrite) {
  Service service;
  ASSERT_TRUE(service.Load(kPathProgram).ok());
  std::atomic<bool> done{false};
  std::atomic<size_t> failures{0};
  std::thread preparer([&] {
    size_t i = 0;
    while (!done.load(std::memory_order_acquire) || i < 4) {
      std::string goal = "path(" + std::to_string(1 + (i++ % 7)) + ", X)";
      auto prepared = service.Prepare(goal);
      if (!prepared.ok() || !service.Query(*prepared).ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  });
  for (size_t i = 0; i < kNumUpdates; ++i) {
    ASSERT_TRUE(ApplyUpdate(&service, kUpdates[i]).ok());
  }
  done.store(true, std::memory_order_release);
  preparer.join();
  EXPECT_EQ(failures.load(), 0u);
}

}  // namespace
}  // namespace ldl
